//! Quickstart: train a small CNN, emulate number formats on it, and
//! inject a fault — the whole GoldenEye pipeline in one file.
//!
//! Run with: `cargo run --release --example quickstart`

use goldeneye::{accuracy_sweep, GoldenEye, InjectionPlan};
use inject::SiteKind;
use models::{train, ResNet, ResNetConfig, SyntheticDataset, TrainConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // 1. A model and a dataset. The synthetic task stands in for ImageNet;
    //    everything is seeded and reproducible.
    let mut rng = StdRng::seed_from_u64(0);
    let model = ResNet::new(ResNetConfig::tiny(4), &mut rng);
    let train_data = SyntheticDataset::generate(128, 16, 4, 1);
    let test_data = SyntheticDataset::generate(64, 16, 4, 2);

    // 2. Train it briefly.
    println!("training a tiny ResNet...");
    let logs = train(
        &model,
        &train_data,
        &TrainConfig { epochs: 8, batch_size: 16, lr: 3e-3, ..Default::default() },
    );
    let native_acc = models::evaluate(&model, &test_data, 64, 32);
    println!(
        "trained: final train acc {:.1}%, held-out acc {:.1}%\n",
        logs.last().unwrap().accuracy * 100.0,
        native_acc * 100.0
    );

    // 3. Emulate number formats at layer granularity (weights + neurons)
    //    and measure accuracy under each — the paper's use case A.
    println!("accuracy under emulated formats:");
    let specs =
        ["fp32", "fp16", "bfloat16", "int:8", "fp:e4m3", "bfp:e5m5:b16", "afp:e4m3", "fp:e2m1"];
    for p in accuracy_sweep(&model, &test_data, &specs, 64, 32) {
        println!("  {:<14} ({:>2} bits): {:>5.1}%", p.spec, p.bit_width, p.accuracy * 100.0);
    }

    // 4. Inject a single bit flip into a layer output and see what
    //    happens to the logits — the paper's use case C in miniature.
    let ge = GoldenEye::parse("bfp:e5m5:b16").expect("valid spec");
    let (x, _) = test_data.head_batch(1);
    let golden = ge.run(&model, x.clone());
    let plan = InjectionPlan::single(0, SiteKind::Metadata);
    let (faulty, record) = ge.run_with_injection(&model, x, plan, 1234);
    println!("\ninjected: {:?}", record.expect("injection fired"));
    println!("golden logits: {:?}", golden.as_slice());
    println!("faulty logits: {:?}", faulty.as_slice());
}
