//! Mixed-precision exploration — an extension beyond the paper (its §V-C
//! lists mixed-precision support as future work): assign each layer its
//! own number format, and search per-layer widths greedily.
//!
//! Run with: `cargo run --release --example mixed_precision`

use formats::FormatSpec;
use goldeneye::dse::mixed_precision_search;
use goldeneye::{evaluate_accuracy, GoldenEye};
use models::{train, ResNet, ResNetConfig, SyntheticDataset, TrainConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(15);
    let model = ResNet::new(ResNetConfig::tiny(8), &mut rng);
    let data = SyntheticDataset::generate(128, 16, 4, 16);
    println!("training...");
    train(
        &model,
        &data,
        &TrainConfig { epochs: 8, batch_size: 16, lr: 3e-3, ..Default::default() },
    );
    let baseline = models::evaluate(&model, &data, 64, 32);
    println!("baseline FP32 accuracy: {:.1}%\n", baseline * 100.0);

    // Candidate INT widths per layer, widest → narrowest.
    let candidates: Vec<FormatSpec> =
        [16u32, 12, 8, 6, 4, 3].iter().map(|&b| FormatSpec::Int { bits: b }).collect();
    let probe = GoldenEye::parse("fp32").expect("valid spec");
    let (x, _) = data.head_batch(1);
    let layers: Vec<usize> = probe.discover_layers(&model, x).iter().map(|l| l.index).collect();

    let result = mixed_precision_search(
        &layers,
        &candidates,
        |assignment| {
            let mut ge = GoldenEye::parse("fp32").expect("valid spec");
            for (&layer, &ci) in assignment {
                ge = ge.with_layer_format(layer, candidates[ci].build());
            }
            evaluate_accuracy(&ge, &model, &data, 64, 32)
        },
        baseline,
        0.02,
    );

    println!("per-layer assignment ({} evaluations):", result.evaluations);
    let mut layer_ids: Vec<_> = result.assignments.keys().copied().collect();
    layer_ids.sort_unstable();
    for l in layer_ids {
        println!("  layer {:>2}: {}", l, candidates[result.assignments[&l]]);
    }
    println!("\nmean data width: {:.1} bits", result.mean_bits(&candidates));

    // Verify the final mixed assignment end-to-end.
    let mut ge = GoldenEye::parse("fp32").expect("valid spec");
    for (&layer, &ci) in &result.assignments {
        ge = ge.with_layer_format(layer, candidates[ci].build());
    }
    let acc = evaluate_accuracy(&ge, &model, &data, 64, 32);
    println!(
        "mixed-precision accuracy: {:.1}% (threshold {:.1}%)",
        acc * 100.0,
        (baseline - 0.02) * 100.0
    );
    println!("\nA uniform-width format must satisfy its most sensitive layer;");
    println!("per-layer assignment shrinks the average width below that.");
}
