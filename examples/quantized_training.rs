//! Number-format emulation during *training* (paper §V-B: "number format
//! emulation is supported for training and inference, as backpropagation
//! is supported").
//!
//! Installs the emulation hook on every CONV/LINEAR output during training
//! passes; gradients flow through the quantiser via a straight-through
//! estimator, yielding quantisation-aware training.
//!
//! Run with: `cargo run --release --example quantized_training`

use formats::{FormatSpec, NumberFormat};
use models::{ResNet, ResNetConfig, SyntheticDataset};
use nn::{Adam, Ctx, ForwardHook, LayerInfo, Module};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use tensor::Tensor;

/// A minimal emulation hook for training passes: quantise every hooked
/// layer output into the target format.
struct QuantHook {
    format: Box<dyn NumberFormat>,
}

impl ForwardHook for QuantHook {
    fn on_output(&self, _layer: &LayerInfo, output: &Tensor) -> Option<Tensor> {
        Some(self.format.real_to_format_tensor(output).values)
    }
}

fn train_with_format(spec: Option<&str>, data: &SyntheticDataset, epochs: usize) -> (f32, f32) {
    let mut rng = StdRng::seed_from_u64(10);
    let model = ResNet::new(ResNetConfig::tiny(4), &mut rng);
    let mut opt = Adam::new(3e-3);
    let mut shuffle_rng = StdRng::seed_from_u64(20);
    let mut last_loss = f32::NAN;
    for _ in 0..epochs {
        for (x, y) in data.shuffled_batches(16, &mut shuffle_rng) {
            let mut ctx = Ctx::training();
            if let Some(s) = spec {
                let format = s.parse::<FormatSpec>().expect("valid spec").build();
                ctx.add_hook(Arc::new(QuantHook { format }));
            }
            let xv = ctx.input(x);
            let logits = model.forward(&xv, &mut ctx);
            let loss = logits.cross_entropy(&y);
            let grads = loss.backward();
            opt.step(&ctx, &grads);
            last_loss = loss.value().item();
        }
    }
    // Evaluate under the same emulated format the model was trained for.
    let acc = match spec {
        None => models::evaluate(&model, data, 64, 32),
        Some(s) => {
            let ge = goldeneye::GoldenEye::parse(s).expect("valid spec");
            goldeneye::evaluate_accuracy(&ge, &model, data, 64, 32)
        }
    };
    (last_loss, acc)
}

fn main() {
    let data = SyntheticDataset::generate(128, 16, 4, 9);
    println!("training a tiny ResNet, native vs quantisation-aware:\n");
    let (loss_native, acc_native) = train_with_format(None, &data, 8);
    println!(
        "native FP32 training:     loss {loss_native:.3}, accuracy {:.1}%",
        acc_native * 100.0
    );
    for spec in ["int:8", "fp:e4m3", "bfp:e5m5:b16"] {
        let (loss, acc) = train_with_format(Some(spec), &data, 8);
        println!(
            "QAT with {:<13} loss {:.3}, accuracy under {} at inference: {:.1}%",
            format!("{spec}:"),
            loss,
            spec,
            acc * 100.0
        );
    }
    println!("\nBackpropagation runs through the quantised forward pass via a");
    println!("straight-through estimator, so the model adapts to the format.");
}
