//! Security analysis across number formats (paper §V-D, "additional use
//! cases"): craft FGSM adversarial examples against the FP32 model, then
//! measure the attack's efficacy when inference runs under different
//! emulated number formats.
//!
//! Coarse quantisation acts as a (weak) defence: perturbations smaller
//! than a format's resolution are partially rounded away — exactly the
//! kind of question the paper proposes GoldenEye for.
//!
//! Run with: `cargo run --release --example adversarial_formats`

use goldeneye::GoldenEye;
use metrics::accuracy;
use models::{train, ResNet, ResNetConfig, SyntheticDataset, TrainConfig};
use nn::{Ctx, Module};
use rand::rngs::StdRng;
use rand::SeedableRng;
use tensor::Tensor;

/// One FGSM step: `x + ε · sign(∇ₓ CE(f(x), y))`, computed with the
/// autograd tape (input gradients come for free from the same machinery
/// that trains the models).
fn fgsm(model: &dyn Module, x: &Tensor, y: &[usize], eps: f32) -> Tensor {
    let mut ctx = Ctx::training();
    let xv = ctx.input(x.clone());
    let logits = model.forward(&xv, &mut ctx);
    let loss = logits.cross_entropy(y);
    let grads = loss.backward();
    let gx = grads.get(&xv).expect("input gradient");
    let mut adv = x.clone();
    for (a, &g) in adv.as_mut_slice().iter_mut().zip(gx.as_slice()) {
        *a += eps * g.signum();
    }
    adv
}

fn main() {
    let mut rng = StdRng::seed_from_u64(6);
    let model = ResNet::new(ResNetConfig::tiny(8), &mut rng);
    let data = SyntheticDataset::generate(128, 16, 4, 8);
    println!("training...");
    train(
        &model,
        &data,
        &TrainConfig { epochs: 10, batch_size: 16, lr: 3e-3, ..Default::default() },
    );
    let (x, y) = data.head_batch(32);

    let eps = 0.35;
    let adv = fgsm(&model, &x, &y, eps);
    println!("FGSM attack with eps = {eps}\n");
    println!("{:<16} {:>12} {:>12} {:>14}", "format", "clean acc", "adv acc", "attack damage");
    for spec in ["fp32", "fp16", "int:8", "fp:e4m3", "bfp:e5m5:tensor", "afp:e4m3", "posit:8:0"] {
        let ge = GoldenEye::parse(spec).expect("valid spec");
        let clean = accuracy(&ge.run(&model, x.clone()), &y);
        let attacked = accuracy(&ge.run(&model, adv.clone()), &y);
        println!(
            "{:<16} {:>11.1}% {:>11.1}% {:>13.1}%",
            spec,
            clean * 100.0,
            attacked * 100.0,
            (clean - attacked) * 100.0
        );
    }
    println!("\nThe attack was crafted against FP32; formats with coarser");
    println!("resolution partially round the perturbation away, changing the");
    println!("attack's efficacy — the analysis §V-D proposes GoldenEye for.");
}
