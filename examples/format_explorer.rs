//! Design-space exploration (paper §IV-B): the binary-tree heuristic
//! searches each format family for the cheapest configuration that keeps
//! accuracy within a threshold of the FP32 baseline.
//!
//! Run with: `cargo run --release --example format_explorer`

use goldeneye::dse::{search, DseFamily};
use goldeneye::{evaluate_accuracy, GoldenEye};
use models::{train, ResNet, ResNetConfig, SyntheticDataset, TrainConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(4);
    let model = ResNet::new(ResNetConfig::tiny(8), &mut rng);
    let data = SyntheticDataset::generate(128, 16, 4, 6);
    println!("training...");
    train(
        &model,
        &data,
        &TrainConfig { epochs: 8, batch_size: 16, lr: 3e-3, ..Default::default() },
    );
    let baseline = models::evaluate(&model, &data, 64, 32);
    println!("baseline FP32 accuracy: {:.1}%\n", baseline * 100.0);

    for (label, family) in [
        ("FP", DseFamily::Fp),
        ("FxP", DseFamily::Fxp),
        ("INT", DseFamily::Int),
        ("BFP(b16)", DseFamily::Bfp { block: 16 }),
        ("AFP", DseFamily::Afp),
    ] {
        let result = search(
            family,
            |spec| {
                let ge = GoldenEye::new(spec.build());
                evaluate_accuracy(&ge, &model, &data, 64, 32)
            },
            baseline,
            0.05,
        );
        println!("{label}: visited {} nodes", result.nodes.len());
        for n in &result.nodes {
            println!(
                "  node {:>2}: {:<16} acc {:>5.1}%  {}",
                n.index,
                n.spec.to_string(),
                n.accuracy * 100.0,
                if n.accepted { "ok" } else { "reject" }
            );
        }
        match result.best {
            Some(best) => println!("  → suggested design point: {best}\n"),
            None => println!("  → no acceptable configuration\n"),
        }
    }
}
