//! Resiliency analysis (paper §IV-C): layer-by-layer ΔLoss campaigns
//! against BFP and AFP, for both data-value and metadata faults,
//! reproducing the Figure 7 methodology on a small model.
//!
//! Run with: `cargo run --release --example resiliency_analysis`

use goldeneye::{run_campaign, CampaignConfig, GoldenEye};
use inject::SiteKind;
use models::{train, ResNet, ResNetConfig, SyntheticDataset, TrainConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(3);
    let model = ResNet::new(ResNetConfig::tiny(8), &mut rng);
    let data = SyntheticDataset::generate(128, 16, 4, 5);
    println!("training...");
    train(
        &model,
        &data,
        &TrainConfig { epochs: 8, batch_size: 16, lr: 3e-3, ..Default::default() },
    );
    let (x, y) = data.head_batch(8);

    for spec in ["bfp:e5m5:tensor", "afp:e5m2"] {
        let ge = GoldenEye::parse(spec).expect("valid spec");
        println!("\n=== {} ===", spec);
        println!("{:<6} {:<16} {:>14} {:>16}", "layer", "name", "dLoss(value)", "dLoss(metadata)");
        let value = run_campaign(
            &ge,
            &model,
            &x,
            &y,
            &CampaignConfig {
                injections_per_layer: 25,
                kind: SiteKind::Value,
                seed: 1,
                jobs: 1,
                ..Default::default()
            },
        );
        let meta = run_campaign(
            &ge,
            &model,
            &x,
            &y,
            &CampaignConfig {
                injections_per_layer: 25,
                kind: SiteKind::Metadata,
                seed: 1,
                jobs: 1,
                ..Default::default()
            },
        );
        for (v, m) in value.layers.iter().zip(&meta.layers) {
            println!(
                "{:<6} {:<16} {:>14.4} {:>16.4}",
                v.layer,
                v.name,
                v.delta_loss.mean(),
                m.delta_loss.mean()
            );
        }
        println!(
            "avg across layers: value {:.4}, metadata {:.4}",
            value.avg_delta_loss(),
            meta.avg_delta_loss()
        );
    }
    println!("\nAs in the paper: BFP metadata faults dominate value faults, because");
    println!("one shared-exponent bit corrupts an entire block of activations.");
}
