//! Fault-aware training (paper §V-D): inject bit flips into layer outputs
//! *during training* so the model learns under its inference-time fault
//! model, then compare the resulting resilience against a conventionally
//! trained twin.
//!
//! Run with: `cargo run --release --example fault_aware_training`

use goldeneye::{run_campaign, CampaignConfig, FaultyTrainingHook, GoldenEye};
use inject::SiteKind;
use models::{ResNet, ResNetConfig, SyntheticDataset};
use nn::{Adam, Ctx, Module};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// Trains a fresh tiny ResNet; `fault_prob > 0` makes it fault-aware.
fn train_variant(fault_prob: f64, data: &SyntheticDataset) -> ResNet {
    let mut rng = StdRng::seed_from_u64(40);
    let model = ResNet::new(ResNetConfig::tiny(8), &mut rng);
    let mut opt = Adam::new(3e-3);
    let mut shuffle = StdRng::seed_from_u64(41);
    let mut fault_seed = 100u64;
    for _ in 0..10 {
        for (x, y) in data.shuffled_batches(16, &mut shuffle) {
            let mut ctx = Ctx::training();
            if fault_prob > 0.0 {
                fault_seed += 1;
                ctx.add_hook(Arc::new(
                    FaultyTrainingHook::parse("int:8", fault_prob, fault_seed).expect("valid spec"),
                ));
            }
            let xv = ctx.input(x);
            let logits = model.forward(&xv, &mut ctx);
            let loss = logits.cross_entropy(&y);
            let grads = loss.backward();
            opt.step(&ctx, &grads);
        }
    }
    model
}

fn main() {
    let data = SyntheticDataset::generate(128, 16, 4, 42);
    println!("training a conventional model and a fault-aware twin (int:8, p=0.3)...");
    let clean = train_variant(0.0, &data);
    let hardened = train_variant(0.3, &data);

    let ge = GoldenEye::parse("int:8").expect("valid spec");
    let (x, y) = data.head_batch(16);
    let cfg = CampaignConfig {
        injections_per_layer: 40,
        kind: SiteKind::Value,
        seed: 7,
        jobs: 1,
        ..Default::default()
    };
    println!("\n{:<16} {:>12} {:>16}", "model", "accuracy", "avg dLoss (EI)");
    for (name, model) in [("conventional", &clean), ("fault-aware", &hardened)] {
        let acc = goldeneye::evaluate_accuracy(&ge, model, &data, 64, 32);
        let campaign = run_campaign(&ge, model, &x, &y, &cfg);
        println!("{:<16} {:>11.1}% {:>16.4}", name, acc * 100.0, campaign.avg_delta_loss());
    }
    println!("\nTraining through injected faults regularises the network toward");
    println!("fault-tolerant representations — the resilient-training routine");
    println!("the paper proposes GoldenEye for (§V-D).");
}
