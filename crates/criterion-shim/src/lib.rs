#![warn(missing_docs)]

//! Minimal in-tree benchmark harness, API-compatible with the subset of
//! [criterion](https://docs.rs/criterion) this workspace uses, so
//! `cargo bench` runs with **no registry access**.
//!
//! Each benchmark routine is warmed up once, then timed for the group's
//! sample count; the harness reports min / median / mean per benchmark.
//! No statistical regression analysis, plots, or HTML reports — timings
//! print to stdout and that's it.

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// Identifies one benchmark within a group (mirror of
/// `criterion::BenchmarkId`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter rendering.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { label: format!("{}/{}", function.into(), parameter) }
    }

    /// An id carrying only a parameter rendering.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { label: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Times one benchmark routine (mirror of `criterion::Bencher`).
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    timings: Vec<Duration>,
}

impl Bencher {
    /// Runs `routine` once for warm-up, then `samples` timed times.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        self.timings.reserve(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.timings.push(start.elapsed());
        }
    }
}

fn report(label: &str, timings: &[Duration]) {
    if timings.is_empty() {
        println!("{label:<44} (no samples)");
        return;
    }
    let mut sorted: Vec<Duration> = timings.to_vec();
    sorted.sort();
    let median = sorted[sorted.len() / 2];
    let mean = sorted.iter().sum::<Duration>() / sorted.len() as u32;
    println!(
        "{label:<44} min {:>12?}  median {:>12?}  mean {:>12?}  ({} samples)",
        sorted[0],
        median,
        mean,
        sorted.len()
    );
}

/// A named collection of related benchmarks (mirror of
/// `criterion::BenchmarkGroup`).
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Benchmarks `f`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher { samples: self.sample_size, timings: Vec::new() };
        f(&mut b);
        report(&format!("{}/{}", self.name, id), &b.timings);
        self
    }

    /// Benchmarks `f` against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher { samples: self.sample_size, timings: Vec::new() };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id), &b.timings);
        self
    }

    /// Ends the group (kept for API compatibility; nothing to flush).
    pub fn finish(self) {
        let _ = self.criterion;
    }
}

/// The benchmark harness entry point (mirror of `criterion::Criterion`).
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the default number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup { criterion: self, name: name.into(), sample_size }
    }

    /// Benchmarks `f` outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher { samples: self.sample_size, timings: Vec::new() };
        f(&mut b);
        report(&id.to_string(), &b.timings);
        self
    }
}

/// Declares a benchmark group function (mirror of
/// `criterion::criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    ( name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)? ) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ( $name:ident, $($target:path),+ $(,)? ) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark `main` running the given groups (mirror of
/// `criterion::criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ( $($group:path),+ $(,)? ) => {
        fn main() {
            $( $group(); )+
        }
    };
}
