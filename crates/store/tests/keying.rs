//! Cache-key discipline over the full standard format zoo.
//!
//! Two invariants keep the store safe and useful:
//!
//! 1. **No collisions**: specs that quantise differently must never share
//!    a key — pairwise-distinct ids across all 22 zoo formats for the same
//!    tensor, and distinct ids for the same format over different tensors.
//! 2. **No fragmentation**: the same format constructed two ways (spec
//!    shorthand vs explicit grammar, builder vs parsed) must share a key,
//!    or warm runs stop hitting.

use conformance::zoo::standard_zoo;
use formats::{BlockFloatingPoint, FloatingPoint, NumberFormat, Posit};
use store::ArtifactKey;
use tensor::Tensor;

fn probe() -> Tensor {
    Tensor::from_vec((0..64).map(|i| (i as f32 * 0.37).sin() * 9.0).collect(), [4, 16])
}

#[test]
fn zoo_keys_are_pairwise_distinct_for_one_tensor() {
    let w = probe();
    let zoo = standard_zoo();
    let keys: Vec<(String, u64)> = zoo
        .iter()
        .map(|spec| {
            let f = spec.build();
            (spec.to_string(), ArtifactKey::quantized(&w, f.as_ref()).id())
        })
        .collect();
    for (i, (spec_a, id_a)) in keys.iter().enumerate() {
        for (spec_b, id_b) in &keys[i + 1..] {
            assert_ne!(id_a, id_b, "{spec_a} and {spec_b} share a store key");
        }
    }
}

#[test]
fn same_format_different_tensors_get_distinct_keys() {
    let fp8 = "fp:e4m3".parse::<formats::FormatSpec>().unwrap().build();
    let a = probe();
    let mut v = a.as_slice().to_vec();
    v[17] += 0.25;
    let b = Tensor::from_vec(v, [4, 16]);
    let reshaped = Tensor::from_vec(a.as_slice().to_vec(), [16, 4]);
    let ka = ArtifactKey::quantized(&a, fp8.as_ref());
    assert_ne!(ka.id(), ArtifactKey::quantized(&b, fp8.as_ref()).id());
    assert_ne!(
        ka.id(),
        ArtifactKey::quantized(&reshaped, fp8.as_ref()).id(),
        "shape is part of content identity"
    );
}

#[test]
fn shorthand_and_explicit_specs_share_keys() {
    let w = probe();
    let pairs = [
        ("fp8", "fp:e4m3"),
        ("bfloat16", "fp:e8m7"),
        ("bf16", "fp:e8m7"),
        ("fp16", "fp:e5m10"),
        ("posit8", "posit:8:0"),
        ("posit16", "posit:16:1"),
        ("int8", "int:8"),
        ("int16", "int:16"),
    ];
    for (short, explicit) in pairs {
        let a = short.parse::<formats::FormatSpec>().unwrap().build();
        let b = explicit.parse::<formats::FormatSpec>().unwrap().build();
        let ka = ArtifactKey::quantized(&w, a.as_ref());
        let kb = ArtifactKey::quantized(&w, b.as_ref());
        assert_eq!(ka, kb, "{short} and {explicit} fragment the cache");
    }
}

#[test]
fn builder_and_parsed_constructions_share_keys() {
    let w = probe();
    let cases: Vec<(Box<dyn NumberFormat>, &str)> = vec![
        (Box::new(FloatingPoint::fp8_e4m3()), "fp:e4m3"),
        (Box::new(FloatingPoint::new(5, 2)), "fp:e5m2"),
        (Box::new(Posit::new(16, 1)), "posit:16:1"),
        (Box::new(BlockFloatingPoint::new(5, 5, 16)), "bfp:e5m5:b16"),
        (Box::new(BlockFloatingPoint::per_tensor(5, 5)), "bfp:e5m5:tensor"),
    ];
    for (built, spec) in cases {
        let parsed = spec.parse::<formats::FormatSpec>().unwrap().build();
        assert_eq!(
            ArtifactKey::quantized(&w, built.as_ref()),
            ArtifactKey::quantized(&w, parsed.as_ref()),
            "builder vs parsed {spec}"
        );
    }
}

#[test]
fn canonical_specs_are_unique_across_the_zoo() {
    let mut specs: Vec<String> =
        standard_zoo().iter().map(|s| s.build().canonical_spec()).collect();
    let n = specs.len();
    specs.sort();
    specs.dedup();
    assert_eq!(specs.len(), n, "duplicate canonical specs in the zoo");
}

#[test]
fn warm_store_hits_across_the_whole_zoo() {
    let store = store::Store::in_memory();
    let w = probe();
    let zoo = standard_zoo();
    let cold: Vec<_> = zoo.iter().map(|s| store.get_or_quantize(s.build().as_ref(), &w)).collect();
    assert_eq!(store.stats().misses, zoo.len() as u64);
    let warm: Vec<_> = zoo.iter().map(|s| store.get_or_quantize(s.build().as_ref(), &w)).collect();
    assert_eq!(store.stats().hits, zoo.len() as u64, "every format must hit warm");
    for ((c, h), spec) in cold.iter().zip(&warm).zip(&zoo) {
        assert_eq!(c, h, "{spec}: warm hit not bit-identical to cold conversion");
    }
}
