//! Cache-key discipline over the full standard format zoo.
//!
//! Two invariants keep the store safe and useful:
//!
//! 1. **No collisions**: specs that quantise differently must never share
//!    a key — keys over the zoo must be equal exactly when the canonical
//!    specs are equal (the zoo deliberately contains one alias pair:
//!    `gf:16` quantises identically to `fp:e6m9` and *must* share its
//!    key), and distinct for the same format over different tensors.
//! 2. **No fragmentation**: the same format constructed two ways (spec
//!    shorthand vs explicit grammar, builder vs parsed, `gf:N` vs its
//!    `fp:eXmY` identity) must share a key, or warm runs stop hitting.

use conformance::zoo::standard_zoo;
use formats::{
    BlockFloatingPoint, FloatingPoint, GoldenFloat, MxElem, MxFloat, NumberFormat, Posit, P3109,
};
use store::ArtifactKey;
use tensor::Tensor;

fn probe() -> Tensor {
    Tensor::from_vec((0..64).map(|i| (i as f32 * 0.37).sin() * 9.0).collect(), [4, 16])
}

#[test]
fn zoo_keys_collide_exactly_when_canonical_specs_agree() {
    let w = probe();
    let zoo = standard_zoo();
    let keys: Vec<(String, String, u64)> = zoo
        .iter()
        .map(|spec| {
            let f = spec.build();
            (spec.to_string(), f.canonical_spec(), ArtifactKey::quantized(&w, f.as_ref()).id())
        })
        .collect();
    for (i, (spec_a, canon_a, id_a)) in keys.iter().enumerate() {
        for (spec_b, canon_b, id_b) in &keys[i + 1..] {
            if canon_a == canon_b {
                // Intentional aliasing (gf:16 ≡ fp:e6m9): one cache entry.
                assert_eq!(id_a, id_b, "{spec_a} and {spec_b} alias but fragment the store");
            } else {
                assert_ne!(id_a, id_b, "{spec_a} and {spec_b} share a store key");
            }
        }
    }
}

#[test]
fn same_format_different_tensors_get_distinct_keys() {
    let fp8 = "fp:e4m3".parse::<formats::FormatSpec>().unwrap().build();
    let a = probe();
    let mut v = a.as_slice().to_vec();
    v[17] += 0.25;
    let b = Tensor::from_vec(v, [4, 16]);
    let reshaped = Tensor::from_vec(a.as_slice().to_vec(), [16, 4]);
    let ka = ArtifactKey::quantized(&a, fp8.as_ref());
    assert_ne!(ka.id(), ArtifactKey::quantized(&b, fp8.as_ref()).id());
    assert_ne!(
        ka.id(),
        ArtifactKey::quantized(&reshaped, fp8.as_ref()).id(),
        "shape is part of content identity"
    );
}

#[test]
fn shorthand_and_explicit_specs_share_keys() {
    let w = probe();
    let pairs = [
        ("fp8", "fp:e4m3"),
        ("bfloat16", "fp:e8m7"),
        ("bf16", "fp:e8m7"),
        ("fp16", "fp:e5m10"),
        ("posit8", "posit:8:0"),
        ("posit16", "posit:16:1"),
        ("int8", "int:8"),
        ("int16", "int:16"),
        ("mxfp4", "mx:fp4e2m1:b32"),
        ("mxfp6", "mx:fp6e2m3:b32"),
        ("mxfp8", "mx:fp8e4m3:b32"),
    ];
    for (short, explicit) in pairs {
        let a = short.parse::<formats::FormatSpec>().unwrap().build();
        let b = explicit.parse::<formats::FormatSpec>().unwrap().build();
        let ka = ArtifactKey::quantized(&w, a.as_ref());
        let kb = ArtifactKey::quantized(&w, b.as_ref());
        assert_eq!(ka, kb, "{short} and {explicit} fragment the cache");
    }
}

#[test]
fn builder_and_parsed_constructions_share_keys() {
    let w = probe();
    let cases: Vec<(Box<dyn NumberFormat>, &str)> = vec![
        (Box::new(FloatingPoint::fp8_e4m3()), "fp:e4m3"),
        (Box::new(FloatingPoint::new(5, 2)), "fp:e5m2"),
        (Box::new(Posit::new(16, 1)), "posit:16:1"),
        (Box::new(BlockFloatingPoint::new(5, 5, 16)), "bfp:e5m5:b16"),
        (Box::new(BlockFloatingPoint::per_tensor(5, 5)), "bfp:e5m5:tensor"),
        (Box::new(MxFloat::new(MxElem::Fp8E4m3, 32)), "mx:fp8e4m3:b32"),
        (Box::new(P3109::new(4, 3)), "p3109:e4m3"),
        (Box::new(GoldenFloat::new(8)), "gf:8"),
        // The GoldenFloat ↔ FloatingPoint alias, through the store:
        (Box::new(GoldenFloat::new(16)), "fp:e6m9"),
    ];
    for (built, spec) in cases {
        let parsed = spec.parse::<formats::FormatSpec>().unwrap().build();
        assert_eq!(
            ArtifactKey::quantized(&w, built.as_ref()),
            ArtifactKey::quantized(&w, parsed.as_ref()),
            "builder vs parsed {spec}"
        );
    }
}

#[test]
fn canonical_specs_alias_only_where_intended() {
    let mut specs: Vec<String> =
        standard_zoo().iter().map(|s| s.build().canonical_spec()).collect();
    let n = specs.len();
    specs.sort();
    let mut dupes: Vec<String> = Vec::new();
    for w in specs.windows(2) {
        if w[0] == w[1] {
            dupes.push(w[0].clone());
        }
    }
    specs.dedup();
    // gf:16 deliberately aliases fp:e6m9; everything else must be unique.
    assert_eq!(dupes, ["fp:e6m9"], "unexpected canonical-spec duplicates in the zoo");
    assert_eq!(specs.len(), n - 1);
}

#[test]
fn warm_store_hits_across_the_whole_zoo() {
    let store = store::Store::in_memory();
    let w = probe();
    let zoo = standard_zoo();
    let distinct: u64 = {
        let mut canon: Vec<String> = zoo.iter().map(|s| s.build().canonical_spec()).collect();
        canon.sort();
        canon.dedup();
        canon.len() as u64
    };
    let cold: Vec<_> = zoo.iter().map(|s| store.get_or_quantize(s.build().as_ref(), &w)).collect();
    // The alias pair (gf:16 ≡ fp:e6m9) hits even on the cold pass.
    assert_eq!(store.stats().misses, distinct);
    assert_eq!(store.stats().hits, zoo.len() as u64 - distinct);
    let warm: Vec<_> = zoo.iter().map(|s| store.get_or_quantize(s.build().as_ref(), &w)).collect();
    assert_eq!(store.stats().misses, distinct, "warm pass must add no misses");
    for ((c, h), spec) in cold.iter().zip(&warm).zip(&zoo) {
        assert_eq!(c, h, "{spec}: warm hit not bit-identical to cold conversion");
    }
}
