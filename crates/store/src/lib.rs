#![warn(missing_docs)]

//! # store — the content-addressed artifact store
//!
//! DSE and multi-format campaigns quantise the same weight tensors under
//! the same formats over and over: every `evaluate`/`campaign` entry point
//! re-runs the offline weight conversion, and the binary-tree DSE
//! heuristic revisits sibling nodes that share `(weights × format)` pairs.
//! This crate decouples that work from campaign execution by caching three
//! artifact kinds under stable, content-addressed keys:
//!
//! | kind | key | payload |
//! |---|---|---|
//! | `qweights` | FNV-1a(tensor bytes) × canonical spec | quantised values + metadata |
//! | `lut` | canonical spec | dequantise table |
//! | `ckpt` | logical name | serialized model parameters |
//!
//! A [`Store`] is an in-memory map optionally backed by a directory
//! (`--store DIR`): every object is one file in `DIR/objects/`, written
//! atomically (temp file + rename) so concurrent campaign processes can
//! share one store without locks — at worst two processes compute the
//! same artifact and the second rename wins with identical bytes.
//!
//! The bit-exactness contract: a cache hit returns byte-identical values
//! to a fresh computation (payloads are raw `f32` bit patterns, verified
//! by an FNV-1a footer on every read), so campaign results are identical
//! cold-cache, warm-cache, and store-disabled.

mod artifact;

pub use artifact::{
    decode_f32s, decode_quantized, encode_f32s, encode_quantized, Artifact, ArtifactKey,
    ArtifactKind,
};

use formats::{NumberFormat, Quantized};
use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use tensor::Tensor;

/// Hit/miss accounting for one [`Store`] handle (process-wide totals are
/// also mirrored into the `store.*` trace counters).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreStats {
    /// Lookups served from memory or disk.
    pub hits: u64,
    /// Lookups that had to compute the artifact.
    pub misses: u64,
    /// Payload bytes served from the store instead of recomputed.
    pub bytes_reused: u64,
    /// Payload bytes written into the store.
    pub bytes_written: u64,
}

impl StoreStats {
    /// Hits over total lookups (0.0 when nothing was looked up).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// One entry of a store listing.
#[derive(Debug, Clone)]
pub struct EntryInfo {
    /// Object file name (or `<memory>` for unbacked stores).
    pub file: String,
    /// Artifact kind.
    pub kind: ArtifactKind,
    /// Canonical spec string / checkpoint name.
    pub spec: String,
    /// Content hash component of the key.
    pub content: u64,
    /// Payload size in bytes.
    pub payload_bytes: u64,
}

/// Result of [`Store::verify`].
#[derive(Debug, Clone, Default)]
pub struct VerifyReport {
    /// Artifacts that decoded and hash-checked cleanly.
    pub ok: usize,
    /// Object files that failed validation, with the reason.
    pub corrupt: Vec<(String, String)>,
}

impl VerifyReport {
    /// Whether every artifact validated.
    pub fn is_clean(&self) -> bool {
        self.corrupt.is_empty()
    }
}

/// Result of [`Store::gc`].
#[derive(Debug, Clone, Default)]
pub struct GcReport {
    /// Corrupt object files removed.
    pub removed_corrupt: usize,
    /// Abandoned temp files removed.
    pub removed_tmp: usize,
    /// Valid artifacts kept.
    pub kept: usize,
    /// Store generation after the sweep.
    pub generation: u64,
}

/// The content-addressed artifact store: an in-memory layer over an
/// optional shared on-disk object directory.
///
/// # Examples
///
/// ```
/// use store::Store;
/// use tensor::Tensor;
///
/// let store = Store::in_memory();
/// let fp8 = "fp:e4m3".parse::<formats::FormatSpec>().unwrap().build();
/// let w = Tensor::from_vec(vec![0.1, -1.5, 3.0], [3]);
/// let cold = store.get_or_quantize(fp8.as_ref(), &w);
/// let warm = store.get_or_quantize(fp8.as_ref(), &w);
/// assert_eq!(cold, warm);
/// assert_eq!(store.stats().hits, 1);
/// ```
pub struct Store {
    dir: Option<PathBuf>,
    mem: Mutex<HashMap<u64, Arc<Artifact>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    bytes_reused: AtomicU64,
    bytes_written: AtomicU64,
    tmp_seq: AtomicU64,
}

impl std::fmt::Debug for Store {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Store(dir={:?}, entries={}, stats={:?})",
            self.dir,
            self.mem.lock().map(|m| m.len()).unwrap_or(0),
            self.stats()
        )
    }
}

impl Store {
    /// A store with no disk backing: artifacts live for the process only.
    pub fn in_memory() -> Store {
        Store {
            dir: None,
            mem: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            bytes_reused: AtomicU64::new(0),
            bytes_written: AtomicU64::new(0),
            tmp_seq: AtomicU64::new(0),
        }
    }

    /// Opens (creating if needed) a store backed by `dir`. Concurrent
    /// processes may share one directory: object writes are atomic
    /// temp-file + rename publishes.
    ///
    /// # Errors
    ///
    /// Returns any error creating the directory layout.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Store> {
        let dir = dir.into();
        std::fs::create_dir_all(dir.join("objects"))?;
        let mut s = Store::in_memory();
        s.dir = Some(dir);
        Ok(s)
    }

    /// The backing directory, if any.
    pub fn dir(&self) -> Option<&Path> {
        self.dir.as_deref()
    }

    /// The store generation: bumped by every [`Store::gc`] sweep, recorded
    /// in run manifests so results can be traced to the store state that
    /// produced them. Always 0 for unbacked stores.
    pub fn generation(&self) -> u64 {
        let Some(dir) = &self.dir else { return 0 };
        std::fs::read_to_string(dir.join("generation"))
            .ok()
            .and_then(|s| s.trim().parse().ok())
            .unwrap_or(0)
    }

    fn objects_dir(&self) -> Option<PathBuf> {
        self.dir.as_ref().map(|d| d.join("objects"))
    }

    fn count_hit(&self, payload_bytes: usize) {
        self.hits.fetch_add(1, Ordering::Relaxed);
        self.bytes_reused.fetch_add(payload_bytes as u64, Ordering::Relaxed);
        trace::counter(trace::names::STORE_HIT).add(1);
        trace::counter(trace::names::STORE_BYTES_REUSED).add(payload_bytes as u64);
    }

    fn count_miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
        trace::counter(trace::names::STORE_MISS).add(1);
    }

    /// Looks `key` up in the memory layer, then on disk. Disk reads are
    /// fully validated; a corrupt object is treated as a miss (use
    /// [`Store::gc`] to sweep it away).
    pub fn get(&self, key: &ArtifactKey) -> Option<Arc<Artifact>> {
        let id = key.id();
        if let Some(a) = self.mem.lock().unwrap_or_else(|p| p.into_inner()).get(&id) {
            let a = a.clone();
            self.count_hit(a.payload.len());
            return Some(a);
        }
        if let Some(objects) = self.objects_dir() {
            if let Ok(bytes) = std::fs::read(objects.join(key.file_name())) {
                if let Ok(a) = Artifact::decode(&bytes) {
                    // Guard the (astronomically unlikely) file-name hash
                    // collision: the decoded key must match exactly.
                    if a.key == *key {
                        let a = Arc::new(a);
                        self.mem.lock().unwrap_or_else(|p| p.into_inner()).insert(id, a.clone());
                        self.count_hit(a.payload.len());
                        return Some(a);
                    }
                }
            }
        }
        self.count_miss();
        None
    }

    /// Inserts an artifact into the memory layer and, when disk-backed,
    /// publishes it atomically to the object directory.
    pub fn put(&self, artifact: Artifact) -> Arc<Artifact> {
        let id = artifact.key.id();
        let payload_bytes = artifact.payload.len() as u64;
        let a = Arc::new(artifact);
        if let Some(objects) = self.objects_dir() {
            // Failing to persist degrades to memory-only caching; it must
            // not fail the campaign.
            let _ = self.write_atomic(&objects, &a.key.file_name(), &a.encode());
        }
        self.mem.lock().unwrap_or_else(|p| p.into_inner()).insert(id, a.clone());
        self.bytes_written.fetch_add(payload_bytes, Ordering::Relaxed);
        trace::counter(trace::names::STORE_BYTES_WRITTEN).add(payload_bytes);
        a
    }

    fn write_atomic(&self, dir: &Path, name: &str, bytes: &[u8]) -> io::Result<()> {
        let tmp = dir.join(format!(
            ".tmp-{}-{}",
            std::process::id(),
            self.tmp_seq.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::write(&tmp, bytes)?;
        match std::fs::rename(&tmp, dir.join(name)) {
            Ok(()) => Ok(()),
            Err(e) => {
                let _ = std::fs::remove_file(&tmp);
                Err(e)
            }
        }
    }

    /// Returns `weights` quantised under `format`, from cache when the
    /// `(tensor hash × canonical spec)` pair was converted before — by
    /// this process, an earlier run, or a concurrent one sharing the
    /// directory. Cache hits are bit-identical to fresh conversions.
    pub fn get_or_quantize(&self, format: &dyn NumberFormat, weights: &Tensor) -> Quantized {
        let key = ArtifactKey::quantized(weights, format);
        if let Some(a) = self.get(&key) {
            if let Ok(q) = decode_quantized(&a.dims, &a.payload) {
                return q;
            }
        }
        let q = format.real_to_format_tensor(weights);
        let (dims, payload) = encode_quantized(&q);
        self.put(Artifact { key, dims, payload });
        q
    }

    /// Returns `format`'s dequantise LUT, loading a stored table into the
    /// process-wide cache when available and persisting freshly built
    /// tables. `None` when the format is LUT-ineligible (wider than
    /// [`formats::lut::MAX_LUT_WIDTH`] or metadata-bearing).
    pub fn ensure_lut(&self, format: &dyn NumberFormat) -> Option<Arc<formats::lut::DequantLut>> {
        if format.bit_width() > formats::lut::MAX_LUT_WIDTH {
            return None;
        }
        let key = ArtifactKey::lut(format);
        if let Some(a) = self.get(&key) {
            if let Ok(table) = decode_f32s(&a.payload) {
                if let Some(lut) = formats::lut::install_cached(format, table) {
                    return Some(lut);
                }
            }
        }
        let lut = formats::lut::cached(format)?;
        let table = lut.table();
        self.put(Artifact {
            key: ArtifactKey::lut(format),
            dims: vec![table.len()],
            payload: encode_f32s(table),
        });
        Some(lut)
    }

    /// Fetches the checkpoint named `name`, if stored.
    pub fn get_checkpoint(&self, name: &str) -> Option<Vec<u8>> {
        self.get(&ArtifactKey::checkpoint(name)).map(|a| a.payload.clone())
    }

    /// Stores serialized model parameters under `name`.
    pub fn put_checkpoint(&self, name: &str, bytes: Vec<u8>) {
        self.put(Artifact { key: ArtifactKey::checkpoint(name), dims: vec![], payload: bytes });
    }

    /// Per-handle hit/miss statistics.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            bytes_reused: self.bytes_reused.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
        }
    }

    /// Lists every artifact: disk objects (sorted by file name) for backed
    /// stores, the memory layer otherwise.
    ///
    /// # Errors
    ///
    /// Returns any error reading the object directory.
    pub fn ls(&self) -> io::Result<Vec<EntryInfo>> {
        let Some(objects) = self.objects_dir() else {
            let mem = self.mem.lock().unwrap_or_else(|p| p.into_inner());
            let mut out: Vec<EntryInfo> = mem
                .values()
                .map(|a| EntryInfo {
                    file: "<memory>".into(),
                    kind: a.key.kind,
                    spec: a.key.spec.clone(),
                    content: a.key.content,
                    payload_bytes: a.payload.len() as u64,
                })
                .collect();
            out.sort_by(|a, b| (a.kind.as_str(), &a.spec).cmp(&(b.kind.as_str(), &b.spec)));
            return Ok(out);
        };
        let mut out = Vec::new();
        for name in self.object_files(&objects)? {
            let bytes = std::fs::read(objects.join(&name))?;
            if let Ok(a) = Artifact::decode(&bytes) {
                out.push(EntryInfo {
                    file: name,
                    kind: a.key.kind,
                    spec: a.key.spec,
                    content: a.key.content,
                    payload_bytes: a.payload.len() as u64,
                });
            }
        }
        Ok(out)
    }

    fn object_files(&self, objects: &Path) -> io::Result<Vec<String>> {
        let mut names = Vec::new();
        for entry in std::fs::read_dir(objects)? {
            let entry = entry?;
            if let Some(name) = entry.file_name().to_str() {
                if name.ends_with(".art") {
                    names.push(name.to_string());
                }
            }
        }
        names.sort();
        Ok(names)
    }

    /// Re-reads and fully validates every on-disk artifact (header,
    /// payload footer, key ↔ file-name agreement).
    ///
    /// # Errors
    ///
    /// Returns any error reading the object directory (individual corrupt
    /// objects are reported, not errors).
    pub fn verify(&self) -> io::Result<VerifyReport> {
        let mut report = VerifyReport::default();
        let Some(objects) = self.objects_dir() else {
            report.ok = self.mem.lock().unwrap_or_else(|p| p.into_inner()).len();
            return Ok(report);
        };
        for name in self.object_files(&objects)? {
            match std::fs::read(objects.join(&name)) {
                Err(e) => report.corrupt.push((name, e.to_string())),
                Ok(bytes) => match Artifact::decode(&bytes) {
                    Err(e) => report.corrupt.push((name, e.to_string())),
                    Ok(a) if a.key.file_name() != name => {
                        report.corrupt.push((name, "key does not match file name".into()));
                    }
                    Ok(_) => report.ok += 1,
                },
            }
        }
        Ok(report)
    }

    /// Sweeps the store: removes corrupt objects and abandoned temp files,
    /// keeps every valid artifact, and bumps the generation.
    ///
    /// # Errors
    ///
    /// Returns any error reading the object directory or writing the
    /// generation file.
    pub fn gc(&self) -> io::Result<GcReport> {
        let mut report = GcReport::default();
        let Some(dir) = &self.dir else {
            report.kept = self.mem.lock().unwrap_or_else(|p| p.into_inner()).len();
            return Ok(report);
        };
        let objects = dir.join("objects");
        for entry in std::fs::read_dir(&objects)? {
            let entry = entry?;
            let Some(name) = entry.file_name().to_str().map(String::from) else { continue };
            if name.starts_with(".tmp-") {
                std::fs::remove_file(entry.path())?;
                report.removed_tmp += 1;
            }
        }
        let check = self.verify()?;
        report.kept = check.ok;
        for (name, _) in &check.corrupt {
            std::fs::remove_file(objects.join(name))?;
            report.removed_corrupt += 1;
        }
        let generation = self.generation() + 1;
        self.write_atomic(dir, "generation", generation.to_string().as_bytes())?;
        report.generation = generation;
        // Drop the memory layer: it may cache artifacts whose files a
        // concurrent sweep already judged; re-reads revalidate.
        self.mem.lock().unwrap_or_else(|p| p.into_inner()).clear();
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fmt(spec: &str) -> Box<dyn NumberFormat> {
        spec.parse::<formats::FormatSpec>().unwrap().build()
    }

    #[test]
    fn memory_store_hits_after_first_quantize() {
        let store = Store::in_memory();
        let f = fmt("bfp:e5m5:b16");
        let w = Tensor::from_vec((0..48).map(|i| i as f32 * 0.3 - 7.0).collect(), [3, 16]);
        let cold = store.get_or_quantize(f.as_ref(), &w);
        assert_eq!(
            store.stats(),
            StoreStats { hits: 0, misses: 1, bytes_reused: 0, bytes_written: cold_bytes(&cold) }
        );
        let warm = store.get_or_quantize(f.as_ref(), &w);
        assert_eq!(cold, warm);
        assert_eq!(store.stats().hits, 1);
        assert!(store.stats().bytes_reused > 0);
    }

    fn cold_bytes(q: &Quantized) -> u64 {
        encode_quantized(q).1.len() as u64
    }

    #[test]
    fn different_formats_do_not_share_entries() {
        let store = Store::in_memory();
        let w = Tensor::from_vec(vec![0.1, 0.7, -2.0, 5.5], [4]);
        let a = store.get_or_quantize(fmt("fp:e4m3").as_ref(), &w);
        let b = store.get_or_quantize(fmt("fp:e5m2").as_ref(), &w);
        assert_ne!(a.values.as_slice(), b.values.as_slice());
        assert_eq!(store.stats().misses, 2);
        assert_eq!(store.stats().hits, 0);
    }

    #[test]
    fn disk_store_survives_reopen() {
        let dir = std::env::temp_dir().join("goldeneye_store_reopen_test");
        let _ = std::fs::remove_dir_all(&dir);
        let w = Tensor::from_vec((0..32).map(|i| (i as f32).sin()).collect(), [32]);
        let f = fmt("int:8");
        let cold = {
            let store = Store::open(&dir).unwrap();
            store.get_or_quantize(f.as_ref(), &w)
        };
        // A fresh handle (≈ a second process) must hit on disk.
        let store = Store::open(&dir).unwrap();
        let warm = store.get_or_quantize(f.as_ref(), &w);
        assert_eq!(cold, warm);
        assert_eq!(
            store.stats(),
            StoreStats { hits: 1, misses: 0, bytes_reused: cold_bytes(&cold), bytes_written: 0 }
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_roundtrip_and_ls() {
        let dir = std::env::temp_dir().join("goldeneye_store_ckpt_test");
        let _ = std::fs::remove_dir_all(&dir);
        let store = Store::open(&dir).unwrap();
        assert!(store.get_checkpoint("demo:cnn:8").is_none());
        store.put_checkpoint("demo:cnn:8", vec![1, 2, 3, 4]);
        assert_eq!(store.get_checkpoint("demo:cnn:8"), Some(vec![1, 2, 3, 4]));
        let entries = store.ls().unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].kind, ArtifactKind::Checkpoint);
        assert_eq!(entries[0].spec, "demo:cnn:8");
        assert_eq!(entries[0].payload_bytes, 4);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn verify_flags_and_gc_removes_corruption() {
        let dir = std::env::temp_dir().join("goldeneye_store_gc_test");
        let _ = std::fs::remove_dir_all(&dir);
        let store = Store::open(&dir).unwrap();
        let w = Tensor::from_vec(vec![1.0, -2.0, 3.5, 0.25], [4]);
        store.get_or_quantize(fmt("fp:e4m3").as_ref(), &w);
        store.put_checkpoint("m", vec![9; 64]);
        assert!(store.verify().unwrap().is_clean());
        assert_eq!(store.verify().unwrap().ok, 2);
        // Corrupt one object and strand a temp file.
        let objects = dir.join("objects");
        let victim = store.ls().unwrap()[0].file.clone();
        let mut bytes = std::fs::read(objects.join(&victim)).unwrap();
        let n = bytes.len();
        bytes[n - 12] ^= 0x01;
        std::fs::write(objects.join(&victim), &bytes).unwrap();
        std::fs::write(objects.join(".tmp-999-0"), b"junk").unwrap();
        let report = store.verify().unwrap();
        assert_eq!(report.ok, 1);
        assert_eq!(report.corrupt.len(), 1);
        let gen0 = store.generation();
        let gc = store.gc().unwrap();
        assert_eq!(gc.removed_corrupt, 1);
        assert_eq!(gc.removed_tmp, 1);
        assert_eq!(gc.kept, 1);
        assert_eq!(gc.generation, gen0 + 1);
        assert_eq!(store.generation(), gen0 + 1);
        assert!(store.verify().unwrap().is_clean());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn ensure_lut_persists_and_reloads_tables() {
        let dir = std::env::temp_dir().join("goldeneye_store_lut_test");
        let _ = std::fs::remove_dir_all(&dir);
        let f = fmt("fp:e5m2");
        {
            let store = Store::open(&dir).unwrap();
            let lut = store.ensure_lut(f.as_ref()).expect("fp8 is LUT-eligible");
            assert_eq!(lut.len(), 256);
        }
        let store = Store::open(&dir).unwrap();
        let again = store.ensure_lut(f.as_ref()).unwrap();
        assert_eq!(again.len(), 256);
        assert!(store.stats().hits >= 1, "second handle must hit the stored table");
        // Ineligible formats stay uncached.
        assert!(store.ensure_lut(fmt("int:8").as_ref()).is_none());
        assert!(store.ensure_lut(fmt("fp32").as_ref()).is_none());
        std::fs::remove_dir_all(&dir).ok();
    }
}
