//! The on-disk artifact format: a fixed header, the cache key, a
//! 64-byte-aligned raw payload, and an FNV-1a footer over the payload.
//!
//! The layout is designed to be mmap-able by readers that want zero-copy
//! access: every header field is fixed-width little-endian, and the
//! payload (raw `f32` bit patterns for tensors and LUTs) starts on a
//! 64-byte boundary so an aligned view over the mapped file is valid.
//! This crate itself reads through buffered I/O — `std` has no mmap — but
//! the layout keeps that door open without a format change.

use formats::hash::{fnv1a, fnv1a_update, FNV_OFFSET};
use formats::{Metadata, Quantized};
use std::io;
use tensor::Tensor;

/// File magic: "GoldenEye ARTifact", layout version 1.
pub const MAGIC: &[u8; 8] = b"GEART001";

/// Offset the payload starts at is rounded up to this alignment.
pub const PAYLOAD_ALIGN: usize = 64;

/// What an artifact caches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArtifactKind {
    /// A weight tensor round-tripped through a number format (values +
    /// hardware metadata), keyed by `(input tensor hash × canonical spec)`.
    QWeights,
    /// A per-format dequantise lookup table, keyed by the canonical spec.
    Lut,
    /// A serialized model checkpoint, keyed by its logical name.
    Checkpoint,
}

impl ArtifactKind {
    /// Stable wire code.
    pub fn code(self) -> u32 {
        match self {
            ArtifactKind::QWeights => 1,
            ArtifactKind::Lut => 2,
            ArtifactKind::Checkpoint => 3,
        }
    }

    /// Inverse of [`ArtifactKind::code`].
    pub fn from_code(code: u32) -> Option<ArtifactKind> {
        match code {
            1 => Some(ArtifactKind::QWeights),
            2 => Some(ArtifactKind::Lut),
            3 => Some(ArtifactKind::Checkpoint),
            _ => None,
        }
    }

    /// Short name, used as the object-file prefix (`qweights-….art`).
    pub fn as_str(self) -> &'static str {
        match self {
            ArtifactKind::QWeights => "qweights",
            ArtifactKind::Lut => "lut",
            ArtifactKind::Checkpoint => "ckpt",
        }
    }
}

/// The content-addressed cache key: artifact kind, FNV-1a hash of the
/// source content, and the canonical format-spec string (or logical
/// checkpoint name).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArtifactKey {
    /// What the artifact caches.
    pub kind: ArtifactKind,
    /// FNV-1a hash of the source content (the input weight tensor for
    /// quantisations; 0 for spec- or name-keyed artifacts).
    pub content: u64,
    /// Canonical format-spec string ([`formats::NumberFormat::canonical_spec`])
    /// for quantisations and LUTs; the logical name for checkpoints.
    pub spec: String,
}

impl ArtifactKey {
    /// Key for `weights` quantised under `format`.
    pub fn quantized(weights: &Tensor, format: &dyn formats::NumberFormat) -> ArtifactKey {
        ArtifactKey {
            kind: ArtifactKind::QWeights,
            content: formats::hash::tensor_hash(weights),
            spec: format.canonical_spec(),
        }
    }

    /// Key for `format`'s dequantise LUT.
    pub fn lut(format: &dyn formats::NumberFormat) -> ArtifactKey {
        ArtifactKey { kind: ArtifactKind::Lut, content: 0, spec: format.canonical_spec() }
    }

    /// Key for the checkpoint named `name`.
    pub fn checkpoint(name: &str) -> ArtifactKey {
        ArtifactKey { kind: ArtifactKind::Checkpoint, content: 0, spec: name.to_string() }
    }

    /// The 64-bit id the memory layer and object file names use: FNV-1a
    /// over kind, content hash, and spec (with separators, so no two
    /// different `(content, spec)` pairs serialize to the same byte
    /// stream).
    pub fn id(&self) -> u64 {
        let mut h = fnv1a_update(FNV_OFFSET, &self.kind.code().to_le_bytes());
        h = fnv1a_update(h, &self.content.to_le_bytes());
        h = fnv1a_update(h, &(self.spec.len() as u64).to_le_bytes());
        fnv1a_update(h, self.spec.as_bytes())
    }

    /// Object file name for this key: `<kind>-<16-hex id>.art`.
    pub fn file_name(&self) -> String {
        format!("{}-{:016x}.art", self.kind.as_str(), self.id())
    }
}

/// One stored artifact: key, tensor dimensions (empty for raw blobs), and
/// the payload bytes.
#[derive(Debug, Clone, PartialEq)]
pub struct Artifact {
    /// The cache key.
    pub key: ArtifactKey,
    /// Dimensions of the cached tensor (`[len]` for LUTs, empty for
    /// checkpoints).
    pub dims: Vec<usize>,
    /// Raw payload bytes (little-endian `f32`s for tensor artifacts).
    pub payload: Vec<u8>,
}

fn bad(reason: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, reason.into())
}

impl Artifact {
    /// Serializes the artifact into the on-disk layout.
    pub fn encode(&self) -> Vec<u8> {
        let spec = self.key.spec.as_bytes();
        let header_len = 8 + 4 + 4 + 8 + 4 + 4 + 8 + 8 * self.dims.len() + spec.len();
        let payload_off = header_len.div_ceil(PAYLOAD_ALIGN) * PAYLOAD_ALIGN;
        let mut out = Vec::with_capacity(payload_off + self.payload.len() + 8);
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&self.key.kind.code().to_le_bytes());
        out.extend_from_slice(&(spec.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.key.content.to_le_bytes());
        out.extend_from_slice(&(self.dims.len() as u32).to_le_bytes());
        out.extend_from_slice(&0u32.to_le_bytes()); // reserved
        out.extend_from_slice(&(self.payload.len() as u64).to_le_bytes());
        for &d in &self.dims {
            out.extend_from_slice(&(d as u64).to_le_bytes());
        }
        out.extend_from_slice(spec);
        out.resize(payload_off, 0);
        out.extend_from_slice(&self.payload);
        out.extend_from_slice(&fnv1a(&self.payload).to_le_bytes());
        out
    }

    /// Decodes and fully validates an encoded artifact (magic, field
    /// bounds, payload footer).
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` on any malformation — truncation, a flipped
    /// payload bit, a bad magic — never a partially decoded artifact.
    pub fn decode(bytes: &[u8]) -> io::Result<Artifact> {
        let take = |off: usize, len: usize| -> io::Result<&[u8]> {
            bytes.get(off..off + len).ok_or_else(|| bad("truncated artifact header"))
        };
        let u32_at = |off: usize| -> io::Result<u32> {
            Ok(u32::from_le_bytes(take(off, 4)?.try_into().unwrap()))
        };
        let u64_at = |off: usize| -> io::Result<u64> {
            Ok(u64::from_le_bytes(take(off, 8)?.try_into().unwrap()))
        };
        if take(0, 8)? != MAGIC {
            return Err(bad("bad artifact magic"));
        }
        let kind =
            ArtifactKind::from_code(u32_at(8)?).ok_or_else(|| bad("unknown artifact kind"))?;
        let spec_len = u32_at(12)? as usize;
        let content = u64_at(16)?;
        let ndim = u32_at(24)? as usize;
        let payload_len = u64_at(32)? as usize;
        if spec_len > bytes.len() || ndim > bytes.len() {
            return Err(bad("artifact header out of bounds"));
        }
        let mut off = 40;
        let mut dims = Vec::with_capacity(ndim);
        for _ in 0..ndim {
            dims.push(u64_at(off)? as usize);
            off += 8;
        }
        let spec = String::from_utf8(take(off, spec_len)?.to_vec())
            .map_err(|_| bad("non-utf8 artifact spec"))?;
        off += spec_len;
        let payload_off = off.div_ceil(PAYLOAD_ALIGN) * PAYLOAD_ALIGN;
        let payload = take(payload_off, payload_len)?.to_vec();
        let footer = u64::from_le_bytes(take(payload_off + payload_len, 8)?.try_into().unwrap());
        if footer != fnv1a(&payload) {
            return Err(bad("artifact payload hash mismatch"));
        }
        Ok(Artifact { key: ArtifactKey { kind, content, spec }, dims, payload })
    }
}

/// Encodes an `f32` slice as little-endian payload bytes.
pub fn encode_f32s(values: &[f32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 4);
    for &v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Decodes a little-endian `f32` payload.
///
/// # Errors
///
/// Returns `InvalidData` if the byte count is not a multiple of 4.
pub fn decode_f32s(bytes: &[u8]) -> io::Result<Vec<f32>> {
    if !bytes.len().is_multiple_of(4) {
        return Err(bad("f32 payload length not a multiple of 4"));
    }
    Ok(bytes.chunks_exact(4).map(|c| f32::from_le_bytes(c.try_into().unwrap())).collect())
}

// Metadata wire tags.
const META_NONE: u8 = 0;
const META_SCALE: u8 = 1;
const META_SHARED: u8 = 2;
const META_BIAS: u8 = 3;

/// Serializes a quantised tensor — values then hardware metadata — into
/// `(dims, payload)` for a [`ArtifactKind::QWeights`] artifact.
pub fn encode_quantized(q: &Quantized) -> (Vec<usize>, Vec<u8>) {
    let mut payload = encode_f32s(q.values.as_slice());
    match &q.meta {
        Metadata::None => payload.push(META_NONE),
        Metadata::Scale(s) => {
            payload.push(META_SCALE);
            payload.extend_from_slice(&s.to_le_bytes());
        }
        Metadata::SharedExponents { codes, block_size, exp_bits } => {
            payload.push(META_SHARED);
            payload.extend_from_slice(&(codes.len() as u64).to_le_bytes());
            payload.extend_from_slice(&(*block_size as u64).to_le_bytes());
            payload.extend_from_slice(&exp_bits.to_le_bytes());
            for c in codes {
                payload.extend_from_slice(&c.to_le_bytes());
            }
        }
        Metadata::ExpBias { bias, bias_bits } => {
            payload.push(META_BIAS);
            payload.extend_from_slice(&bias.to_le_bytes());
            payload.extend_from_slice(&bias_bits.to_le_bytes());
        }
    }
    (q.values.dims().to_vec(), payload)
}

/// Inverse of [`encode_quantized`]. Values come back with bit-identical
/// `f32` patterns, so a cached quantisation is indistinguishable from a
/// fresh one.
///
/// # Errors
///
/// Returns `InvalidData` on any malformation.
pub fn decode_quantized(dims: &[usize], payload: &[u8]) -> io::Result<Quantized> {
    let n: usize = dims.iter().product();
    let values_len = n * 4;
    if payload.len() < values_len + 1 {
        return Err(bad("quantized payload too short"));
    }
    let values = decode_f32s(&payload[..values_len])?;
    let rest = &payload[values_len..];
    let take = |off: usize, len: usize| -> io::Result<&[u8]> {
        rest.get(off..off + len).ok_or_else(|| bad("truncated quantized metadata"))
    };
    let meta = match rest[0] {
        META_NONE => {
            if rest.len() != 1 {
                return Err(bad("trailing bytes after Metadata::None"));
            }
            Metadata::None
        }
        META_SCALE => Metadata::Scale(f32::from_le_bytes(take(1, 4)?.try_into().unwrap())),
        META_SHARED => {
            let ncodes = u64::from_le_bytes(take(1, 8)?.try_into().unwrap()) as usize;
            let block_size = u64::from_le_bytes(take(9, 8)?.try_into().unwrap()) as usize;
            let exp_bits = u32::from_le_bytes(take(17, 4)?.try_into().unwrap());
            if ncodes > rest.len() {
                return Err(bad("shared-exponent count out of bounds"));
            }
            let mut codes = Vec::with_capacity(ncodes);
            for i in 0..ncodes {
                codes.push(u32::from_le_bytes(take(21 + 4 * i, 4)?.try_into().unwrap()));
            }
            Metadata::SharedExponents { codes, block_size, exp_bits }
        }
        META_BIAS => Metadata::ExpBias {
            bias: i32::from_le_bytes(take(1, 4)?.try_into().unwrap()),
            bias_bits: u32::from_le_bytes(take(5, 4)?.try_into().unwrap()),
        },
        other => return Err(bad(format!("unknown metadata tag {other}"))),
    };
    Ok(Quantized { values: Tensor::from_vec(values, dims.to_vec()), meta })
}

#[cfg(test)]
mod tests {
    use super::*;
    use formats::NumberFormat;

    #[test]
    fn artifact_roundtrip() {
        let a = Artifact {
            key: ArtifactKey {
                kind: ArtifactKind::QWeights,
                content: 0xdead_beef,
                spec: "fp:e4m3".into(),
            },
            dims: vec![2, 3],
            payload: encode_f32s(&[1.0, 2.5, -3.0, 0.0, -0.0, f32::NAN]),
        };
        let bytes = a.encode();
        let b = Artifact::decode(&bytes).unwrap();
        assert_eq!(a.key, b.key);
        assert_eq!(a.dims, b.dims);
        assert_eq!(a.payload, b.payload, "NaN and -0.0 bit patterns must survive");
        // Payload is 64-byte aligned in the encoding.
        let header_len = 8 + 4 + 4 + 8 + 4 + 4 + 8 + 16 + "fp:e4m3".len();
        let off = header_len.div_ceil(PAYLOAD_ALIGN) * PAYLOAD_ALIGN;
        assert_eq!(&bytes[off..off + a.payload.len()], &a.payload[..]);
    }

    #[test]
    fn decode_rejects_corruption() {
        let a = Artifact {
            key: ArtifactKey::checkpoint("model"),
            dims: vec![],
            payload: vec![7u8; 100],
        };
        let good = a.encode();
        assert!(Artifact::decode(&good).is_ok());
        // Truncation anywhere fails.
        for cut in [0, 4, 20, good.len() - 1] {
            assert!(Artifact::decode(&good[..cut]).is_err(), "cut at {cut}");
        }
        // A single flipped payload bit fails the footer.
        let mut flipped = good.clone();
        let payload_off = flipped.len() - 8 - 100;
        flipped[payload_off + 50] ^= 0x10;
        assert!(Artifact::decode(&flipped).is_err());
        // Bad magic fails.
        let mut bad_magic = good.clone();
        bad_magic[0] ^= 0xff;
        assert!(Artifact::decode(&bad_magic).is_err());
    }

    #[test]
    fn quantized_roundtrip_all_metadata_kinds() {
        let x = Tensor::from_vec((0..64).map(|i| (i as f32 - 31.5) / 7.0).collect(), [4, 16]);
        for spec in ["fp:e4m3", "int:8", "bfp:e5m5:b16", "afp:e3m4", "posit:8:0"] {
            let format = spec.parse::<formats::FormatSpec>().unwrap().build();
            let q = format.real_to_format_tensor(&x);
            let (dims, payload) = encode_quantized(&q);
            let back = decode_quantized(&dims, &payload).unwrap();
            assert_eq!(q, back, "{spec}");
        }
    }

    #[test]
    fn key_ids_are_distinct_across_kinds_and_specs() {
        let t = Tensor::from_vec(vec![1.0, 2.0], [2]);
        let fp: Box<dyn NumberFormat> = "fp:e4m3".parse::<formats::FormatSpec>().unwrap().build();
        let q = ArtifactKey::quantized(&t, fp.as_ref());
        let l = ArtifactKey::lut(fp.as_ref());
        let c = ArtifactKey::checkpoint("fp:e4m3");
        assert_ne!(q.id(), l.id());
        assert_ne!(l.id(), c.id());
        assert_eq!(l.spec, c.spec, "same spec string, different kind → different id");
    }
}
