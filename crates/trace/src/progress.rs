//! Streaming progress: periodic `progress` heartbeat events on the active
//! sinks plus an opt-in live stderr status line.
//!
//! Heartbeats are the event stream a future `goldeneye serve` would
//! forward to clients, so their *content* is deterministic: callers emit
//! them at schedule-invariant points (campaign wave-round boundaries, DSE
//! nodes, evaluation batches), and every wall-clock- or schedule-derived
//! field (`elapsed_s`, `per_sec`, `eta_s`, `jobs`, `batch`,
//! `cache_hit_rate`) is registered in
//! [`crate::names::PROGRESS_VOLATILE_FIELDS`] and stripped by
//! [`canonical_progress`] — the same treatment timestamps get in the
//! serial-vs-parallel byte-identity contract.

use crate::json::Json;
use crate::names;
use crate::Level;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

static STATUS_LINE: AtomicBool = AtomicBool::new(false);

/// Enables/disables the live stderr status line (`--progress`). Off by
/// default: heartbeats then go only to the structured sinks.
pub fn set_status_line(on: bool) {
    STATUS_LINE.store(on, Ordering::Relaxed);
}

/// Whether the live status line is enabled.
pub fn status_line_enabled() -> bool {
    STATUS_LINE.load(Ordering::Relaxed)
}

/// Minimum milliseconds between status-line repaints.
const STATUS_THROTTLE_MS: u128 = 100;

/// A progress tracker for one long-running phase: counts work done,
/// emits `progress` heartbeat events, and repaints the status line.
///
/// Thread-safe: workers call [`Progress::add`] concurrently; heartbeats
/// are emitted from the coordinating thread at deterministic boundaries.
pub struct Progress {
    label: &'static str,
    planned: u64,
    done: AtomicU64,
    start: Instant,
    paint: Mutex<PaintState>,
}

struct PaintState {
    last: Option<Instant>,
    width: usize,
}

impl Progress {
    /// Starts tracking `planned` units of work for the phase `label`.
    pub fn new(label: &'static str, planned: u64) -> Progress {
        Progress {
            label,
            planned,
            done: AtomicU64::new(0),
            start: Instant::now(),
            paint: Mutex::new(PaintState { last: None, width: 0 }),
        }
    }

    /// Records `n` completed units; returns the new total.
    pub fn add(&self, n: u64) -> u64 {
        self.done.fetch_add(n, Ordering::Relaxed) + n
    }

    /// Records `n` completed units and repaints the status line
    /// (throttled) **without** emitting an event — the live path worker
    /// threads call per unit of work. Heartbeat events stay on the
    /// coordinating thread's deterministic schedule.
    pub fn tick(&self, n: u64) -> u64 {
        let done = self.add(n);
        self.paint_status(false);
        done
    }

    /// Units completed so far.
    pub fn done(&self) -> u64 {
        self.done.load(Ordering::Relaxed)
    }

    /// Units planned in total.
    pub fn planned(&self) -> u64 {
        self.planned
    }

    /// Seconds since the tracker started.
    pub fn elapsed_s(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    /// Completed units per second (0.0 before any time has passed).
    pub fn per_sec(&self) -> f64 {
        let dt = self.elapsed_s();
        if dt > 0.0 {
            self.done() as f64 / dt
        } else {
            0.0
        }
    }

    /// Estimated seconds to completion (`None` until throughput exists).
    pub fn eta_s(&self) -> Option<f64> {
        let rate = self.per_sec();
        if rate > 0.0 && self.planned >= self.done() {
            Some((self.planned - self.done()) as f64 / rate)
        } else {
            None
        }
    }

    /// Emits one `progress` heartbeat: deterministic content first
    /// (`phase`, `done`, `planned`, then the caller's `extra` fields),
    /// volatile timing fields last. Repaints the status line (throttled)
    /// and flushes the JSONL sink so a live `tail -f` sees it.
    ///
    /// Call this at schedule-invariant points only — the byte-determinism
    /// contract covers the canonical content of every heartbeat.
    pub fn heartbeat(&self, extra: Vec<(&'static str, Json)>) {
        let done = self.done();
        let mut fields: Vec<(&'static str, Json)> = vec![
            ("phase", Json::from(self.label)),
            ("done", Json::from(done)),
            ("planned", Json::from(self.planned)),
        ];
        fields.extend(extra);
        fields.push(("elapsed_s", Json::Num(self.elapsed_s())));
        fields.push(("per_sec", Json::Num(self.per_sec())));
        if let Some(eta) = self.eta_s() {
            fields.push(("eta_s", Json::Num(eta)));
        }
        crate::emit(Level::Info, names::KIND_PROGRESS, fields);
        crate::flush();
        self.paint_status(false);
    }

    /// Final repaint + newline so the status line doesn't swallow the
    /// next log line. Does not emit an event (the caller's last
    /// [`Progress::heartbeat`] already did).
    pub fn finish(&self) {
        if !status_line_enabled() {
            return;
        }
        self.paint_status(true);
        let mut p = self.paint.lock().unwrap_or_else(|e| e.into_inner());
        if p.width > 0 {
            eprintln!();
            p.width = 0;
        }
    }

    fn paint_status(&self, force: bool) {
        if !status_line_enabled() {
            return;
        }
        let mut p = self.paint.lock().unwrap_or_else(|e| e.into_inner());
        if !force {
            if let Some(last) = p.last {
                if last.elapsed().as_millis() < STATUS_THROTTLE_MS {
                    return;
                }
            }
        }
        p.last = Some(Instant::now());
        let done = self.done();
        let pct = if self.planned > 0 { 100.0 * done as f64 / self.planned as f64 } else { 0.0 };
        let eta = match self.eta_s() {
            Some(s) => format!(" eta {s:.0}s"),
            None => String::new(),
        };
        let line = format!(
            "[{}] {done}/{} ({pct:.1}%) {:.1}/s{eta}",
            self.label,
            self.planned,
            self.per_sec(),
        );
        // Pad over the previous paint so a shrinking line leaves no tail.
        let pad = p.width.saturating_sub(line.len());
        eprint!("\r{line}{}", " ".repeat(pad));
        let _ = std::io::Write::flush(&mut std::io::stderr());
        p.width = line.len();
    }
}

/// The canonical (deterministic) content of a `progress` event: the
/// object with every [`names::PROGRESS_VOLATILE_FIELDS`] key removed,
/// serialized compactly. Two runs of the same campaign at any
/// `--jobs`/batch size produce byte-identical canonical heartbeats.
pub fn canonical_progress(v: &Json) -> String {
    match v {
        Json::Obj(fields) => Json::Obj(
            fields
                .iter()
                .filter(|(k, _)| !names::PROGRESS_VOLATILE_FIELDS.contains(&k.as_str()))
                .cloned()
                .collect(),
        )
        .to_compact(),
        other => other.to_compact(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn progress_counts_and_rates() {
        let p = Progress::new("test_phase", 10);
        assert_eq!(p.add(3), 3);
        assert_eq!(p.add(2), 5);
        assert_eq!(p.done(), 5);
        assert_eq!(p.planned(), 10);
        // Some time has passed by now, so throughput is finite & positive.
        assert!(p.per_sec() >= 0.0);
    }

    #[test]
    fn canonical_progress_strips_volatile_fields() {
        let raw = crate::parse(
            r#"{"ts_ns":1,"level":"info","type":"progress","phase":"campaign","done":64,"planned":128,"wave":2,"jobs":4,"batch":8,"cache_hit_rate":0.5,"elapsed_s":0.1,"per_sec":640.0,"eta_s":0.1}"#,
        )
        .unwrap();
        let canon = canonical_progress(&raw);
        assert_eq!(
            canon,
            r#"{"level":"info","type":"progress","phase":"campaign","done":64,"planned":128,"wave":2}"#
        );
    }

    #[test]
    fn heartbeat_event_validates() {
        // Serialize against other trace tests that toggle global capture.
        let _gate = crate::test_serial();
        crate::capture_events(true);
        let p = Progress::new("test_hb", 4);
        p.add(2);
        p.heartbeat(vec![("wave", Json::from(1u64))]);
        let events = crate::take_events();
        crate::capture_events(false);
        let hb = events.iter().find(|e| e.kind == "progress").expect("heartbeat captured");
        let v = hb.to_json();
        crate::validate::validate_event(&v).expect("heartbeat validates");
        assert_eq!(v.get("done").unwrap().as_u64(), Some(2));
        assert_eq!(v.get("planned").unwrap().as_u64(), Some(4));
        assert_eq!(v.get("phase").unwrap().as_str(), Some("test_hb"));
        assert_eq!(v.get("wave").unwrap().as_u64(), Some(1));
        assert!(v.get("elapsed_s").is_some());
    }
}
