//! Hierarchical self-profiler: spans nest per-thread, and every span drop
//! folds `(path, duration)` into a process-global aggregate, from which a
//! per-run profile tree (inclusive/exclusive ns, call counts) and a
//! flamegraph-ready folded-stack export are derived.
//!
//! Paths are `;`-joined span names (`campaign;batch;trial`) — the folded
//! stack convention. Each thread keeps its own span stack; work handed to
//! a pool thread inherits the spawning thread's path via
//! [`with_profile_path`], so `campaign;batch` nests correctly even though
//! the `batch` span lives on a worker.
//!
//! Aggregation is always on: the cost is one map update per span *drop*
//! (spans are per-phase/per-trial, never per-element), so it sits in both
//! the tracing-on and tracing-off sides of the overhead budget.

use crate::json::Json;
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

struct ThreadCtx {
    /// Path prefix inherited from a spawning thread (`""` = root).
    prefix: String,
    /// Names of the spans currently open on this thread, outermost first.
    stack: Vec<&'static str>,
}

thread_local! {
    static CTX: RefCell<ThreadCtx> =
        const { RefCell::new(ThreadCtx { prefix: String::new(), stack: Vec::new() }) };
}

#[derive(Clone, Copy, Default)]
struct PathStat {
    count: u64,
    total_ns: u64,
}

fn stats() -> &'static Mutex<HashMap<String, PathStat>> {
    static STATS: OnceLock<Mutex<HashMap<String, PathStat>>> = OnceLock::new();
    STATS.get_or_init(|| Mutex::new(HashMap::new()))
}

fn compose(prefix: &str, stack: &[&'static str], leaf: Option<&str>) -> String {
    let mut path = String::with_capacity(prefix.len() + 16 * stack.len());
    path.push_str(prefix);
    for name in stack {
        if !path.is_empty() {
            path.push(';');
        }
        path.push_str(name);
    }
    if let Some(name) = leaf {
        if !path.is_empty() {
            path.push(';');
        }
        path.push_str(name);
    }
    path
}

/// Called by `Span::enter`: pushes `name` onto this thread's span stack.
pub(crate) fn span_enter(name: &'static str) {
    CTX.with(|c| c.borrow_mut().stack.push(name));
}

/// Called by `Span::drop`: pops the innermost span and folds its duration
/// into the global per-path aggregate.
pub(crate) fn span_exit(name: &'static str, dur_ns: u64) {
    let path = CTX.with(|c| {
        let mut c = c.borrow_mut();
        // Pop back to (and including) `name`; mismatches cannot happen
        // with RAII drops, but leaked spans must not wedge the stack.
        while let Some(top) = c.stack.pop() {
            if top == name {
                break;
            }
        }
        compose(&c.prefix, &c.stack, Some(name))
    });
    let mut map = stats().lock().unwrap_or_else(|p| p.into_inner());
    let s = map.entry(path).or_default();
    s.count += 1;
    s.total_ns += dur_ns;
}

/// The current thread's full span path (`prefix;open;spans`), for handing
/// to worker threads via [`with_profile_path`]. Empty when no span is
/// open.
pub fn profile_path() -> String {
    CTX.with(|c| {
        let c = c.borrow();
        compose(&c.prefix, &c.stack, None)
    })
}

/// RAII guard restoring the thread's inherited path prefix on drop.
/// Created by [`with_profile_path`].
pub struct PathGuard {
    saved: String,
}

impl Drop for PathGuard {
    fn drop(&mut self) {
        CTX.with(|c| c.borrow_mut().prefix = std::mem::take(&mut self.saved));
    }
}

/// Sets this thread's span-path prefix to `path` until the returned guard
/// drops. Pool/scoped worker threads call this with the spawning thread's
/// [`profile_path`] so their spans nest under the caller's.
pub fn with_profile_path(path: &str) -> PathGuard {
    CTX.with(|c| {
        let mut c = c.borrow_mut();
        let saved = std::mem::replace(&mut c.prefix, path.to_string());
        PathGuard { saved }
    })
}

/// One node of the aggregated profile tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileNode {
    /// Span name (one path segment).
    pub name: String,
    /// Times a span completed at exactly this path (0 for nodes that only
    /// exist as ancestors of recorded paths, e.g. still-open parents).
    pub count: u64,
    /// Total nanoseconds spans at this path were open. For `count == 0`
    /// ancestor nodes this is the sum of the children's inclusive time.
    pub inclusive_ns: u64,
    /// Inclusive time minus children's inclusive time, clamped at zero
    /// (children on parallel workers can sum past the parent's wall time).
    pub exclusive_ns: u64,
    /// Child spans, sorted by name.
    pub children: Vec<ProfileNode>,
}

impl ProfileNode {
    fn new(name: &str) -> ProfileNode {
        ProfileNode {
            name: name.to_string(),
            count: 0,
            inclusive_ns: 0,
            exclusive_ns: 0,
            children: Vec::new(),
        }
    }

    fn child_mut(&mut self, name: &str) -> &mut ProfileNode {
        match self.children.binary_search_by(|c| c.name.as_str().cmp(name)) {
            Ok(i) => &mut self.children[i],
            Err(i) => {
                self.children.insert(i, ProfileNode::new(name));
                &mut self.children[i]
            }
        }
    }

    fn fix_up(&mut self) {
        let mut child_ns = 0u64;
        for c in &mut self.children {
            c.fix_up();
            child_ns += c.inclusive_ns;
        }
        if self.count == 0 {
            self.inclusive_ns = child_ns;
        }
        self.exclusive_ns = self.inclusive_ns.saturating_sub(child_ns);
    }

    /// The node as a JSON object (`children` omitted when empty).
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("name".to_string(), Json::from(self.name.as_str())),
            ("count".to_string(), Json::from(self.count)),
            ("inclusive_ns".to_string(), Json::from(self.inclusive_ns)),
            ("exclusive_ns".to_string(), Json::from(self.exclusive_ns)),
        ];
        if !self.children.is_empty() {
            fields.push((
                "children".to_string(),
                Json::Arr(self.children.iter().map(ProfileNode::to_json).collect()),
            ));
        }
        Json::Obj(fields)
    }

    /// Parses a node back from its JSON object.
    pub fn from_json(v: &Json) -> Result<ProfileNode, String> {
        let int = |k: &str| {
            v.get(k).and_then(Json::as_u64).ok_or_else(|| format!("profile node: missing `{k}`"))
        };
        Ok(ProfileNode {
            name: v
                .get("name")
                .and_then(Json::as_str)
                .ok_or("profile node: missing `name`")?
                .to_string(),
            count: int("count")?,
            inclusive_ns: int("inclusive_ns")?,
            exclusive_ns: int("exclusive_ns")?,
            children: match v.get("children") {
                Some(c) => c
                    .as_arr()
                    .ok_or("profile node: `children` must be an array")?
                    .iter()
                    .map(ProfileNode::from_json)
                    .collect::<Result<_, _>>()?,
                None => Vec::new(),
            },
        })
    }
}

/// Builds the profile tree from the global aggregate: one root per
/// top-level span name, children sorted by name, exclusive time computed
/// bottom-up.
pub fn profile_snapshot() -> Vec<ProfileNode> {
    let map = stats().lock().unwrap_or_else(|p| p.into_inner());
    let mut entries: Vec<(&String, &PathStat)> = map.iter().collect();
    entries.sort_by(|a, b| a.0.cmp(b.0));
    let mut virtual_root = ProfileNode::new("");
    for (path, stat) in entries {
        let mut node = &mut virtual_root;
        for seg in path.split(';') {
            node = node.child_mut(seg);
        }
        node.count += stat.count;
        node.inclusive_ns += stat.total_ns;
    }
    drop(map);
    let mut roots = virtual_root.children;
    for r in &mut roots {
        r.fix_up();
    }
    roots
}

/// Clears the global profile aggregate (benches / tests).
pub fn reset_profile() {
    stats().lock().unwrap_or_else(|p| p.into_inner()).clear();
}

/// Serializes a profile tree as JSON (array of root nodes).
pub fn profile_to_json(roots: &[ProfileNode]) -> Json {
    Json::Arr(roots.iter().map(ProfileNode::to_json).collect())
}

/// Parses a profile tree from its JSON array.
pub fn profile_from_json(v: &Json) -> Result<Vec<ProfileNode>, String> {
    v.as_arr().ok_or("profile: must be an array")?.iter().map(ProfileNode::from_json).collect()
}

/// Renders a profile tree in the flamegraph *folded stack* format: one
/// `path;to;span <exclusive_ns>` line per node with self time (leaves are
/// always emitted), ready for `flamegraph.pl` / speedscope.
pub fn profile_folded(roots: &[ProfileNode]) -> String {
    fn walk(prefix: &str, node: &ProfileNode, out: &mut String) {
        let path =
            if prefix.is_empty() { node.name.clone() } else { format!("{prefix};{}", node.name) };
        if node.exclusive_ns > 0 || node.children.is_empty() {
            out.push_str(&path);
            out.push(' ');
            out.push_str(&node.exclusive_ns.to_string());
            out.push('\n');
        }
        for c in &node.children {
            walk(&path, c, out);
        }
    }
    let mut out = String::new();
    for r in roots {
        walk("", r, &mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Profile tests mutate the process-global aggregate; serialize them.
    fn serialize_tests() -> std::sync::MutexGuard<'static, ()> {
        crate::test_serial()
    }

    #[test]
    fn nested_spans_build_a_tree() {
        let _gate = serialize_tests();
        reset_profile();
        {
            let _outer = crate::span!("prof_outer");
            std::thread::sleep(std::time::Duration::from_millis(2));
            {
                let _inner = crate::span!("prof_inner");
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
        }
        let roots = profile_snapshot();
        let outer = roots.iter().find(|r| r.name == "prof_outer").expect("outer root");
        assert_eq!(outer.count, 1);
        let inner = outer.children.iter().find(|c| c.name == "prof_inner").expect("nested child");
        assert_eq!(inner.count, 1);
        assert!(outer.inclusive_ns >= inner.inclusive_ns);
        assert_eq!(outer.exclusive_ns, outer.inclusive_ns - inner.inclusive_ns);
        reset_profile();
    }

    #[test]
    fn path_prefix_propagates_to_workers() {
        let _gate = serialize_tests();
        reset_profile();
        {
            let _outer = crate::span!("prof_parent");
            let path = profile_path();
            assert!(path.ends_with("prof_parent"));
            std::thread::scope(|scope| {
                scope.spawn(|| {
                    let _g = with_profile_path(&path);
                    let _child = crate::span!("prof_worker");
                });
            });
        }
        let roots = profile_snapshot();
        let parent = roots.iter().find(|r| r.name == "prof_parent").expect("parent root");
        assert!(
            parent.children.iter().any(|c| c.name == "prof_worker"),
            "worker span must nest under the spawning thread's path"
        );
        reset_profile();
    }

    #[test]
    fn ancestor_only_nodes_sum_children() {
        let _gate = serialize_tests();
        reset_profile();
        // Record a deep path whose intermediate node never completes.
        {
            let _g = with_profile_path("prof_ghost;prof_mid");
            let _leaf = crate::span!("prof_leaf");
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let roots = profile_snapshot();
        let ghost = roots.iter().find(|r| r.name == "prof_ghost").expect("ghost root");
        assert_eq!(ghost.count, 0);
        let mid = &ghost.children[0];
        let leaf = &mid.children[0];
        assert_eq!(ghost.inclusive_ns, leaf.inclusive_ns);
        assert_eq!(ghost.exclusive_ns, 0);
        reset_profile();
    }

    #[test]
    fn profile_json_round_trips_and_folds() {
        let tree = vec![ProfileNode {
            name: "a".into(),
            count: 1,
            inclusive_ns: 100,
            exclusive_ns: 40,
            children: vec![ProfileNode {
                name: "b".into(),
                count: 2,
                inclusive_ns: 60,
                exclusive_ns: 60,
                children: Vec::new(),
            }],
        }];
        let back = profile_from_json(&profile_to_json(&tree)).unwrap();
        assert_eq!(back, tree);
        assert_eq!(
            profile_to_json(&back).to_compact(),
            profile_to_json(&tree).to_compact(),
            "serialization must be byte-stable across round trips"
        );
        let folded = profile_folded(&tree);
        assert_eq!(folded, "a 40\na;b 60\n");
    }
}
