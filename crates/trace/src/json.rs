//! A minimal JSON value model with a deterministic writer and a strict
//! recursive-descent parser — just enough for run manifests and JSONL
//! trace records, with no external dependencies.
//!
//! Determinism contract: object fields keep insertion order (`Obj` is a
//! `Vec`, not a map), and numbers print via Rust's shortest-round-trip
//! `Display`, so the same value always serializes to the same bytes.
//! Non-finite numbers serialize as `null` (JSON has no NaN/Inf).

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; fields keep insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds a number from an `f32` via its shortest decimal form, so the
    /// serialized text is the compact `f32` representation (`0.1`, not
    /// `0.10000000149011612`) and re-reading it as `f32` is lossless.
    pub fn from_f32(x: f32) -> Json {
        if x.is_finite() {
            // f32 Display is the shortest string that round-trips to the
            // same f32; parsing it as f64 preserves that property.
            Json::Num(x.to_string().parse::<f64>().unwrap_or(x as f64))
        } else {
            Json::Null
        }
    }

    /// An object builder from `(key, value)` pairs.
    pub fn obj(fields: impl IntoIterator<Item = (impl Into<String>, Json)>) -> Json {
        Json::Obj(fields.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Looks up a field of an object (None for non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as `u64`, if it is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as `&str`, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// True if the value is an object.
    pub fn is_obj(&self) -> bool {
        matches!(self, Json::Obj(_))
    }

    /// Serializes to a compact single-line string.
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serializes with 2-space indentation (for human-readable manifests).
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.is_finite() {
                    out.push_str(&n.to_string());
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                if !items.is_empty() {
                    newline_indent(out, indent, depth);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                if !fields.is_empty() {
                    newline_indent(out, indent, depth);
                }
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', w * depth));
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.to_compact())
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}
impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}
impl From<f32> for Json {
    fn from(n: f32) -> Json {
        Json::from_f32(n)
    }
}
impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Num(n as f64)
    }
}
impl From<u32> for Json {
    fn from(n: u32) -> Json {
        Json::Num(n as f64)
    }
}
impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Num(n as f64)
    }
}
impl From<i64> for Json {
    fn from(n: i64) -> Json {
        Json::Num(n as f64)
    }
}
impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}
impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}
impl<T: Into<Json>> From<Option<T>> for Json {
    fn from(o: Option<T>) -> Json {
        o.map(Into::into).unwrap_or(Json::Null)
    }
}
impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Json {
        Json::Arr(v.into_iter().map(Into::into).collect())
    }
}

/// A JSON parse error with a byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseJsonError {
    /// Byte offset of the error in the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseJsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseJsonError {}

/// Parses one JSON document, requiring the whole input to be consumed
/// (modulo trailing whitespace).
pub fn parse(input: &str) -> Result<Json, ParseJsonError> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> ParseJsonError {
        ParseJsonError { offset: self.pos, message: msg.to_string() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), ParseJsonError> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", c as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, ParseJsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseJsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, ParseJsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseJsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseJsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogates are not paired (trace strings never
                            // contain them); map them to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so slices
                    // at char boundaries are safe to scan byte-wise).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| self.err("invalid UTF-8"))?,
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseJsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>().map(Json::Num).map_err(|_| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_compact() {
        let v = Json::obj([
            ("name", Json::from("goldeneye")),
            ("count", Json::from(3u64)),
            ("pi", Json::from(3.25f64)),
            ("flag", Json::from(true)),
            ("none", Json::Null),
            ("arr", Json::from(vec![1u64, 2, 3])),
        ]);
        let s = v.to_compact();
        assert_eq!(parse(&s).unwrap(), v);
        assert_eq!(parse(&v.to_pretty()).unwrap(), v);
    }

    #[test]
    fn field_order_is_preserved() {
        let v = Json::obj([("z", Json::from(1u64)), ("a", Json::from(2u64))]);
        assert_eq!(v.to_compact(), r#"{"z":1,"a":2}"#);
    }

    #[test]
    fn f32_values_serialize_shortest() {
        assert_eq!(Json::from(0.1f32).to_compact(), "0.1");
        assert_eq!(Json::from(1.5f32).to_compact(), "1.5");
        // Round trip back to the identical f32.
        let parsed = parse(&Json::from(0.1f32).to_compact()).unwrap();
        assert_eq!(parsed.as_f64().unwrap() as f32, 0.1f32);
    }

    #[test]
    fn non_finite_becomes_null() {
        assert_eq!(Json::from(f32::NAN).to_compact(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_compact(), "null");
    }

    #[test]
    fn escapes_round_trip() {
        let v = Json::Str("a\"b\\c\nd\te\u{1}ü".to_string());
        assert_eq!(parse(&v.to_compact()).unwrap(), v);
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1} x").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn parses_nested_and_numbers() {
        let v = parse(r#"{"a":[1,-2.5,3e2],"b":{"c":null}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[2].as_f64(), Some(300.0));
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Json::Null));
    }

    #[test]
    fn accessors() {
        let v = parse(r#"{"n":7,"s":"x"}"#).unwrap();
        assert_eq!(v.get("n").unwrap().as_u64(), Some(7));
        assert_eq!(v.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("missing"), None);
        assert!(v.is_obj());
        assert_eq!(Json::Num(1.5).as_u64(), None);
    }
}
