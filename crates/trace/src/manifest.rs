//! Run manifests: machine-readable JSON records of every campaign /
//! evaluate / DSE / bench run, so `results/` holds regenerable artifacts
//! instead of hand-pasted text (MPGemmFI-style replayable records).

use crate::json::Json;
use crate::profile::ProfileNode;

/// The manifest schema version this build writes (and the only one it
/// reads). Stamped as the `schema` field; manifests written before the
/// field existed are read as the current version.
pub const SCHEMA_VERSION: u64 = 1;

/// The goldeneye-rs version string embedded in every manifest —
/// git-describe-style when the build sets `GOLDENEYE_GIT_DESCRIBE`,
/// otherwise the crate version.
pub fn version() -> String {
    match option_env!("GOLDENEYE_GIT_DESCRIBE") {
        Some(git) => format!("goldeneye-rs {} ({git})", env!("CARGO_PKG_VERSION")),
        None => format!("goldeneye-rs {}", env!("CARGO_PKG_VERSION")),
    }
}

/// Summary statistics of one observed quantity (a plain-data mirror of
/// `metrics::RunningStats`, so the manifest schema has no cross-crate
/// dependency).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StatsSummary {
    /// Number of (finite) observations.
    pub count: u64,
    /// Sample mean.
    pub mean: f32,
    /// Sample standard deviation.
    pub std_dev: f32,
    /// Smallest observation, if any.
    pub min: Option<f32>,
    /// Largest observation, if any.
    pub max: Option<f32>,
}

impl StatsSummary {
    /// The summary as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("count", Json::from(self.count)),
            ("mean", Json::from(self.mean)),
            ("std_dev", Json::from(self.std_dev)),
            ("min", Json::from(self.min)),
            ("max", Json::from(self.max)),
        ])
    }

    /// Parses a summary back from its JSON object.
    pub fn from_json(v: &Json) -> Result<StatsSummary, String> {
        let num = |k: &str| v.get(k).and_then(Json::as_f64).ok_or_else(|| format!("missing `{k}`"));
        Ok(StatsSummary {
            count: v.get("count").and_then(Json::as_u64).ok_or("missing `count`")?,
            mean: num("mean")? as f32,
            std_dev: num("std_dev")? as f32,
            min: v.get("min").and_then(Json::as_f64).map(|x| x as f32),
            max: v.get("max").and_then(Json::as_f64).map(|x| x as f32),
        })
    }
}

/// Per-layer result record of an injection campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerRecord {
    /// Instrumented-layer index (or weight-parameter index).
    pub layer: usize,
    /// Layer / parameter name.
    pub name: String,
    /// Injections that actually fired.
    pub injections: usize,
    /// ΔLoss statistics.
    pub delta_loss: StatsSummary,
    /// Mismatch-rate statistics.
    pub mismatch: StatsSummary,
}

impl LayerRecord {
    /// The record as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("layer", Json::from(self.layer)),
            ("name", Json::from(self.name.as_str())),
            ("injections", Json::from(self.injections)),
            ("delta_loss", self.delta_loss.to_json()),
            ("mismatch", self.mismatch.to_json()),
        ])
    }

    /// Parses a record back from its JSON object.
    pub fn from_json(v: &Json) -> Result<LayerRecord, String> {
        Ok(LayerRecord {
            layer: v.get("layer").and_then(Json::as_u64).ok_or("layer record: missing `layer`")?
                as usize,
            name: v
                .get("name")
                .and_then(Json::as_str)
                .ok_or("layer record: missing `name`")?
                .to_string(),
            injections: v
                .get("injections")
                .and_then(Json::as_u64)
                .ok_or("layer record: missing `injections`")? as usize,
            delta_loss: StatsSummary::from_json(
                v.get("delta_loss").ok_or("layer record: missing `delta_loss`")?,
            )?,
            mismatch: StatsSummary::from_json(
                v.get("mismatch").ok_or("layer record: missing `mismatch`")?,
            )?,
        })
    }
}

/// One fault-injection trial: site, bit, outcome — a replayable record
/// (the seed plus `(layer, trial)` regenerate the exact fault).
#[derive(Debug, Clone, PartialEq)]
pub struct TrialRecord {
    /// Instrumented-layer index (or weight-parameter index).
    pub layer: usize,
    /// Layer / parameter name.
    pub layer_name: String,
    /// Trial index within the layer.
    pub trial: usize,
    /// Fault site kind (`"value"` | `"metadata"`).
    pub site: String,
    /// Flat element index (value faults) or metadata word (metadata
    /// faults); `None` if the injection never fired.
    pub element: Option<usize>,
    /// Bit position flipped; `None` if the injection never fired.
    pub bit: Option<usize>,
    /// ΔLoss outcome; `None` if the injection never fired.
    pub delta_loss: Option<f32>,
    /// Mismatch-rate outcome; `None` if the injection never fired.
    pub mismatch: Option<f32>,
    /// Id of the executor worker that ran the trial (0 in serial runs).
    /// Excluded from [`TrialRecord::canonical_line`], which is what the
    /// serial-vs-parallel bit-identity contract is audited against.
    pub worker: usize,
}

impl TrialRecord {
    fn payload(&self) -> Vec<(String, Json)> {
        vec![
            ("layer".into(), Json::from(self.layer)),
            ("name".into(), Json::from(self.layer_name.as_str())),
            ("trial".into(), Json::from(self.trial)),
            ("site".into(), Json::from(self.site.as_str())),
            ("element".into(), Json::from(self.element)),
            ("bit".into(), Json::from(self.bit)),
            ("delta_loss".into(), Json::from(self.delta_loss)),
            ("mismatch".into(), Json::from(self.mismatch)),
        ]
    }

    /// The full record as a JSON object (including `worker`).
    pub fn to_json(&self) -> Json {
        let mut fields = vec![("type".to_string(), Json::from("trial"))];
        fields.extend(self.payload());
        fields.push(("worker".into(), Json::from(self.worker)));
        Json::Obj(fields)
    }

    /// The canonical single-line serialization: fixed field order,
    /// **without** the worker id or any timestamp — so records from a
    /// parallel run, sorted by `(layer, trial)`, are byte-identical to a
    /// serial run's.
    pub fn canonical_line(&self) -> String {
        Json::Obj(self.payload()).to_compact()
    }

    /// Parses a trial record from its JSON object (accepts both the full
    /// and the canonical form; a missing `worker` reads as 0).
    pub fn from_json(v: &Json) -> Result<TrialRecord, String> {
        let opt_usize = |k: &str| v.get(k).and_then(Json::as_u64).map(|n| n as usize);
        let opt_f32 = |k: &str| v.get(k).and_then(Json::as_f64).map(|n| n as f32);
        Ok(TrialRecord {
            layer: v.get("layer").and_then(Json::as_u64).ok_or("trial: missing `layer`")? as usize,
            layer_name: v
                .get("name")
                .and_then(Json::as_str)
                .ok_or("trial: missing `name`")?
                .to_string(),
            trial: v.get("trial").and_then(Json::as_u64).ok_or("trial: missing `trial`")? as usize,
            site: v.get("site").and_then(Json::as_str).ok_or("trial: missing `site`")?.to_string(),
            element: opt_usize("element"),
            bit: opt_usize("bit"),
            delta_loss: opt_f32("delta_loss"),
            mismatch: opt_f32("mismatch"),
            worker: opt_usize("worker").unwrap_or(0),
        })
    }
}

/// The run manifest: everything needed to audit or regenerate one
/// campaign / evaluation / DSE / bench run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RunManifest {
    /// What produced the run (`"goldeneye campaign"`, `"bench fig7"`, …).
    pub tool: String,
    /// goldeneye-rs version ([`version`]).
    pub version: String,
    /// The command-line arguments of the run.
    pub command: Vec<String>,
    /// Configuration: seed, format spec/params, jobs, injection counts, …
    pub config: Vec<(String, Json)>,
    /// Wall-clock duration of the run in seconds.
    pub wall_time_s: f64,
    /// Per-layer campaign results (empty for non-campaign runs).
    pub layers: Vec<LayerRecord>,
    /// Running-mean convergence trace of the headline metric, if tracked.
    pub convergence: Vec<f32>,
    /// Snapshot of the trace counters/histograms at the end of the run.
    pub counters: Vec<(String, Json)>,
    /// Self-profiler tree (inclusive/exclusive ns per span path) captured
    /// at the end of the run ([`RunManifest::snapshot_profile`]).
    pub profile: Vec<ProfileNode>,
    /// Experiment-specific payload (sweep rows, DSE nodes, accuracies…).
    pub extra: Vec<(String, Json)>,
}

impl RunManifest {
    /// Starts a manifest for `tool`, stamping version and argv.
    pub fn new(tool: &str) -> RunManifest {
        RunManifest {
            tool: tool.to_string(),
            version: version(),
            command: std::env::args().collect(),
            ..Default::default()
        }
    }

    /// Adds one config entry (builder style).
    #[must_use]
    pub fn with_config(mut self, key: &str, value: impl Into<Json>) -> RunManifest {
        self.config.push((key.to_string(), value.into()));
        self
    }

    /// Adds one extra-payload entry (builder style).
    #[must_use]
    pub fn with_extra(mut self, key: &str, value: impl Into<Json>) -> RunManifest {
        self.extra.push((key.to_string(), value.into()));
        self
    }

    /// Captures the current global metric registry into `counters`.
    pub fn snapshot_counters(&mut self) {
        self.counters = crate::metrics_snapshot();
    }

    /// Captures the current self-profiler tree into `profile`.
    pub fn snapshot_profile(&mut self) {
        self.profile = crate::profile_snapshot();
    }

    /// The manifest as a JSON object.
    pub fn to_json(&self) -> Json {
        let mut fields: Vec<(String, Json)> = vec![
            ("type".into(), Json::from("manifest")),
            ("schema".into(), Json::from(SCHEMA_VERSION)),
            ("tool".into(), Json::from(self.tool.as_str())),
            ("version".into(), Json::from(self.version.as_str())),
            (
                "command".into(),
                Json::Arr(self.command.iter().map(|a| Json::from(a.as_str())).collect()),
            ),
            ("config".into(), Json::Obj(self.config.clone())),
            ("wall_time_s".into(), Json::Num(self.wall_time_s)),
        ];
        if !self.layers.is_empty() {
            fields.push((
                "layers".into(),
                Json::Arr(self.layers.iter().map(LayerRecord::to_json).collect()),
            ));
        }
        if !self.convergence.is_empty() {
            fields.push((
                "convergence".into(),
                Json::Arr(self.convergence.iter().map(|&x| Json::from(x)).collect()),
            ));
        }
        if !self.counters.is_empty() {
            fields.push(("counters".into(), Json::Obj(self.counters.clone())));
        }
        if !self.profile.is_empty() {
            fields.push(("profile".into(), crate::profile_to_json(&self.profile)));
        }
        for (k, v) in &self.extra {
            fields.push((k.clone(), v.clone()));
        }
        Json::Obj(fields)
    }

    /// Parses a manifest back from its JSON object.
    pub fn from_json(v: &Json) -> Result<RunManifest, String> {
        crate::validate::validate_manifest(v)?;
        let str_field = |k: &str| v.get(k).and_then(Json::as_str).unwrap_or_default().to_string();
        let known = [
            "type",
            "schema",
            "tool",
            "version",
            "command",
            "config",
            "wall_time_s",
            "layers",
            "convergence",
            "counters",
            "profile",
        ];
        let mut extra = Vec::new();
        if let Json::Obj(fields) = v {
            for (k, val) in fields {
                if !known.contains(&k.as_str()) {
                    extra.push((k.clone(), val.clone()));
                }
            }
        }
        Ok(RunManifest {
            tool: str_field("tool"),
            version: str_field("version"),
            command: v
                .get("command")
                .and_then(Json::as_arr)
                .map(|a| a.iter().filter_map(|x| x.as_str().map(String::from)).collect())
                .unwrap_or_default(),
            config: match v.get("config") {
                Some(Json::Obj(fields)) => fields.clone(),
                _ => Vec::new(),
            },
            wall_time_s: v.get("wall_time_s").and_then(Json::as_f64).unwrap_or(0.0),
            layers: v
                .get("layers")
                .and_then(Json::as_arr)
                .map(|a| a.iter().map(LayerRecord::from_json).collect::<Result<_, _>>())
                .transpose()?
                .unwrap_or_default(),
            convergence: v
                .get("convergence")
                .and_then(Json::as_arr)
                .map(|a| a.iter().filter_map(|x| x.as_f64().map(|n| n as f32)).collect())
                .unwrap_or_default(),
            counters: match v.get("counters") {
                Some(Json::Obj(fields)) => fields.clone(),
                _ => Vec::new(),
            },
            profile: match v.get("profile") {
                Some(p) => crate::profile_from_json(p)?,
                None => Vec::new(),
            },
            extra,
        })
    }

    /// Parses a manifest from a JSON string.
    pub fn from_json_str(s: &str) -> Result<RunManifest, String> {
        RunManifest::from_json(&crate::parse(s).map_err(|e| e.to_string())?)
    }

    /// Writes the manifest (pretty-printed) to `path`.
    pub fn write(&self, path: &std::path::Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        std::fs::write(path, self.to_json().to_pretty() + "\n")
    }

    /// Emits the manifest as a structured `manifest` event on the active
    /// sinks (so a `--trace-out` JSONL is self-describing), then flushes
    /// the JSONL sink — the manifest is usually the last line a run
    /// writes, and it must survive an abnormal exit.
    pub fn emit(&self) {
        crate::emit(crate::Level::Info, "manifest", vec![("manifest", self.to_json())]);
        crate::flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_manifest() -> RunManifest {
        let mut m = RunManifest::new("test campaign")
            .with_config("seed", 7u64)
            .with_config("format", "bfp_e5m5_b16")
            .with_config("jobs", 4u64)
            .with_extra("note", "hello");
        m.wall_time_s = 1.25;
        m.layers = vec![LayerRecord {
            layer: 0,
            name: "stem".into(),
            injections: 5,
            delta_loss: StatsSummary {
                count: 5,
                mean: 0.5,
                std_dev: 0.1,
                min: Some(0.25),
                max: Some(0.75),
            },
            mismatch: StatsSummary {
                count: 5,
                mean: 0.0,
                std_dev: 0.0,
                min: Some(0.0),
                max: Some(0.0),
            },
        }];
        m.convergence = vec![0.5, 0.55, 0.53];
        m.profile = vec![ProfileNode {
            name: "campaign".into(),
            count: 1,
            inclusive_ns: 1000,
            exclusive_ns: 400,
            children: vec![ProfileNode {
                name: "trial".into(),
                count: 5,
                inclusive_ns: 600,
                exclusive_ns: 600,
                children: Vec::new(),
            }],
        }];
        m
    }

    #[test]
    fn manifest_round_trips() {
        let m = sample_manifest();
        let parsed = RunManifest::from_json_str(&m.to_json().to_pretty()).unwrap();
        assert_eq!(parsed.tool, m.tool);
        assert_eq!(parsed.config, m.config);
        assert_eq!(parsed.layers, m.layers);
        assert_eq!(parsed.convergence, m.convergence);
        assert_eq!(parsed.wall_time_s, m.wall_time_s);
        assert_eq!(parsed.profile, m.profile);
        assert_eq!(parsed.extra, m.extra);
        // Byte-stable across a second round trip (the schema stamp and
        // profile tree re-serialize identically).
        assert_eq!(parsed.to_json().to_compact(), m.to_json().to_compact());
    }

    #[test]
    fn version_is_stamped() {
        let m = RunManifest::new("x");
        assert!(m.version.starts_with("goldeneye-rs "));
        assert_eq!(m.tool, "x");
    }

    #[test]
    fn trial_record_round_trips_and_canonicalizes() {
        let t = TrialRecord {
            layer: 2,
            layer_name: "block1.conv2".into(),
            trial: 17,
            site: "value".into(),
            element: Some(1234),
            bit: Some(3),
            delta_loss: Some(0.125),
            mismatch: Some(0.0),
            worker: 3,
        };
        let parsed = TrialRecord::from_json(&t.to_json()).unwrap();
        assert_eq!(parsed, t);
        // Canonical form drops the worker id: two records differing only
        // in worker serialize identically.
        let mut other = t.clone();
        other.worker = 0;
        assert_eq!(t.canonical_line(), other.canonical_line());
        assert!(!t.canonical_line().contains("worker"));
        // A never-fired trial serializes its outcome as nulls.
        let dud =
            TrialRecord { element: None, bit: None, delta_loss: None, mismatch: None, ..t.clone() };
        assert!(dud.canonical_line().contains("\"delta_loss\":null"));
        let reparsed =
            TrialRecord::from_json(&crate::parse(&dud.canonical_line()).unwrap()).unwrap();
        assert_eq!(reparsed.delta_loss, None);
        assert_eq!(reparsed.worker, 0);
    }

    #[test]
    fn manifest_rejects_missing_fields() {
        assert!(RunManifest::from_json_str(r#"{"type":"manifest"}"#).is_err());
        assert!(RunManifest::from_json_str("[1,2]").is_err());
    }
}
