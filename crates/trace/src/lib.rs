#![warn(missing_docs)]

//! # trace — zero-dependency structured observability for goldeneye-rs
//!
//! The paper's headline claim is *fast* error analysis; this crate makes
//! the reproduction able to measure and explain its own runtime. It
//! provides, with no external dependencies:
//!
//! - **structured events** with nanosecond timestamps, buffered in a
//!   mutexed ring and optionally mirrored to a JSONL file sink
//!   ([`open_jsonl`]) and/or a human-readable stderr sink;
//! - **spans** ([`span!`]) — RAII guards that emit a `span` event with
//!   `dur_ns` on drop, for campaign/trial/evaluation phases;
//! - **counters and histograms** ([`counter`], [`histogram`]) — lock-free
//!   atomics for hot paths (trials, per-layer hook latency,
//!   format-conversion ns/element, lock-wait time in the parallel
//!   executor), snapshotted into run manifests;
//! - **leveled logging** ([`logln!`], [`outln!`]) backing the CLI's
//!   `--quiet`/`-v`/`--log-level` flags;
//! - **run manifests** ([`RunManifest`]) — machine-readable JSON records
//!   of every campaign/evaluate/DSE run (config, seed, version, wall
//!   time, per-layer results, convergence trace);
//! - **schema validation** ([`validate`]) for manifests and JSONL traces,
//!   used by tests and the CI smoke job.
//!
//! Everything is process-global and thread-safe; when no sink is open and
//! the level gate is closed, the hot-path cost is one relaxed atomic load.

mod json;
mod manifest;
pub mod names;
mod profile;
mod progress;
pub mod validate;

pub use json::{parse, Json, ParseJsonError};
pub use manifest::{version, LayerRecord, RunManifest, StatsSummary, TrialRecord, SCHEMA_VERSION};
pub use profile::{
    profile_folded, profile_from_json, profile_path, profile_snapshot, profile_to_json,
    reset_profile, with_profile_path, PathGuard, ProfileNode,
};
pub use progress::{canonical_progress, set_status_line, status_line_enabled, Progress};
pub use validate::{
    validate_event, validate_manifest, validate_trace, TraceError, TraceErrorKind, TraceSummary,
};

use std::collections::VecDeque;
use std::io::Write as _;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Severity / verbosity of an event or log line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// Unrecoverable problems.
    Error = 0,
    /// Suspicious but survivable conditions.
    Warn = 1,
    /// Normal result output (the default level).
    Info = 2,
    /// Per-phase diagnostics (`-v`).
    Debug = 3,
    /// Per-trial firehose (`-vv` / `--log-level trace`).
    Trace = 4,
}

impl Level {
    /// The lowercase name used in JSONL records and `--log-level`.
    pub fn as_str(&self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }

    /// Parses a `--log-level` value.
    pub fn parse(s: &str) -> Option<Level> {
        match s {
            "error" => Some(Level::Error),
            "warn" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            "trace" => Some(Level::Trace),
            _ => None,
        }
    }

    fn from_u8(v: u8) -> Level {
        match v {
            0 => Level::Error,
            1 => Level::Warn,
            2 => Level::Info,
            3 => Level::Debug,
            _ => Level::Trace,
        }
    }
}

/// One structured event.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Nanoseconds since the process-global trace epoch.
    pub ts_ns: u64,
    /// Severity.
    pub level: Level,
    /// Event kind (`"span"`, `"log"`, `"trial"`, `"range"`, …).
    pub kind: &'static str,
    /// Structured payload (insertion-ordered).
    pub fields: Vec<(&'static str, Json)>,
}

impl Event {
    /// The event as a JSON object (`ts_ns`, `level`, `type`, then fields).
    pub fn to_json(&self) -> Json {
        let mut obj: Vec<(String, Json)> = vec![
            ("ts_ns".into(), Json::from(self.ts_ns)),
            ("level".into(), Json::from(self.level.as_str())),
            ("type".into(), Json::from(self.kind)),
        ];
        for (k, v) in &self.fields {
            obj.push(((*k).to_string(), v.clone()));
        }
        Json::Obj(obj)
    }
}

const RING_CAPACITY: usize = 4096;

struct Sinks {
    ring: VecDeque<Event>,
    jsonl: Option<std::io::BufWriter<std::fs::File>>,
    pretty: bool,
}

struct Tracer {
    epoch: Instant,
    level: AtomicU8,
    /// Fast gate: true iff any structured sink (ring capture or JSONL
    /// file) wants events. One relaxed load on the hot path when off.
    recording: AtomicBool,
    capture: AtomicBool,
    sinks: Mutex<Sinks>,
    metrics: Mutex<Vec<(&'static str, &'static Metric)>>,
}

fn tracer() -> &'static Tracer {
    static TRACER: OnceLock<Tracer> = OnceLock::new();
    TRACER.get_or_init(|| Tracer {
        epoch: Instant::now(),
        level: AtomicU8::new(Level::Info as u8),
        recording: AtomicBool::new(false),
        capture: AtomicBool::new(false),
        sinks: Mutex::new(Sinks { ring: VecDeque::new(), jsonl: None, pretty: false }),
        metrics: Mutex::new(Vec::new()),
    })
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

/// Sets the global level gate (logging macros and event emission).
pub fn set_level(level: Level) {
    tracer().level.store(level as u8, Ordering::Relaxed);
}

/// The current global level.
pub fn level() -> Level {
    Level::from_u8(tracer().level.load(Ordering::Relaxed))
}

/// Whether `level` passes the global gate.
pub fn enabled(level: Level) -> bool {
    (level as u8) <= tracer().level.load(Ordering::Relaxed)
}

/// Whether any structured sink is active (events will be stored).
pub fn recording() -> bool {
    tracer().recording.load(Ordering::Relaxed)
}

fn refresh_recording(s: &Sinks, capture: bool) {
    tracer().recording.store(capture || s.jsonl.is_some(), Ordering::Relaxed);
}

/// Starts capturing events into the in-memory ring buffer (used by tests
/// and the CLI when assembling manifests without a `--trace-out` file).
pub fn capture_events(on: bool) {
    let t = tracer();
    t.capture.store(on, Ordering::Relaxed);
    let s = lock(&t.sinks);
    refresh_recording(&s, on);
}

/// Opens (or truncates) a JSONL file sink at `path`; every subsequent
/// event is appended as one compact JSON line. Installs a panic hook (on
/// first call) that flushes the sink, so a crashed campaign still leaves
/// a valid, parseable trace file.
pub fn open_jsonl(path: &std::path::Path) -> std::io::Result<()> {
    let file = std::fs::File::create(path)?;
    install_panic_flush();
    let t = tracer();
    let mut s = lock(&t.sinks);
    s.jsonl = Some(std::io::BufWriter::new(file));
    refresh_recording(&s, t.capture.load(Ordering::Relaxed));
    Ok(())
}

fn install_panic_flush() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            prev(info);
            // Best-effort: try_lock so a panic raised while the sink lock
            // is held (it never is, outside `emit`) cannot deadlock.
            if let Ok(mut s) = tracer().sinks.try_lock() {
                if let Some(w) = s.jsonl.as_mut() {
                    let _ = w.flush();
                }
            }
        }));
    });
}

/// Mirrors events to stderr in a compact human-readable form (the
/// "pretty sink"). Independent of the JSONL sink.
pub fn set_pretty_sink(on: bool) {
    lock(&tracer().sinks).pretty = on;
}

/// Flushes and closes the JSONL sink (no-op if none is open).
pub fn close_jsonl() {
    let t = tracer();
    let mut s = lock(&t.sinks);
    if let Some(mut w) = s.jsonl.take() {
        let _ = w.flush();
    }
    refresh_recording(&s, t.capture.load(Ordering::Relaxed));
}

/// Flushes the JSONL sink without closing it.
pub fn flush() {
    if let Some(w) = lock(&tracer().sinks).jsonl.as_mut() {
        let _ = w.flush();
    }
}

/// Drains and returns the captured ring-buffer events.
pub fn take_events() -> Vec<Event> {
    lock(&tracer().sinks).ring.drain(..).collect()
}

/// Nanoseconds since the trace epoch (first tracer touch in the process).
pub fn now_ns() -> u64 {
    tracer().epoch.elapsed().as_nanos() as u64
}

/// Emits one structured event (no-op unless [`recording`] and `level`
/// passes the gate).
pub fn emit(level: Level, kind: &'static str, fields: Vec<(&'static str, Json)>) {
    let t = tracer();
    if !t.recording.load(Ordering::Relaxed) || !enabled(level) {
        return;
    }
    let event = Event { ts_ns: now_ns(), level, kind, fields };
    let mut s = lock(&t.sinks);
    if s.pretty {
        let mut line = format!("[{:>12}ns] {:5} {}", event.ts_ns, level.as_str(), kind);
        for (k, v) in &event.fields {
            line.push_str(&format!(" {k}={v}"));
        }
        eprintln!("{line}");
    }
    if let Some(w) = s.jsonl.as_mut() {
        let _ = writeln!(w, "{}", event.to_json().to_compact());
    }
    if t.capture.load(Ordering::Relaxed) {
        if s.ring.len() >= RING_CAPACITY {
            s.ring.pop_front();
        }
        s.ring.push_back(event);
    }
}

/// An in-flight span; emits a `span` event with `dur_ns` when dropped.
///
/// Create via the [`span!`] macro.
#[must_use = "a span measures the scope it lives in"]
pub struct Span {
    name: &'static str,
    fields: Vec<(&'static str, Json)>,
    start: Instant,
    level: Level,
}

impl Span {
    /// Starts a span (prefer the [`span!`] macro). Spans nest: the name
    /// joins the current thread's span path until drop, so the
    /// self-profiler ([`profile_snapshot`]) aggregates a tree.
    pub fn enter(name: &'static str, fields: Vec<(&'static str, Json)>) -> Span {
        profile::span_enter(name);
        Span { name, fields, start: Instant::now(), level: Level::Debug }
    }

    /// Elapsed time since the span began.
    pub fn elapsed(&self) -> std::time::Duration {
        self.start.elapsed()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let dur_ns = self.start.elapsed().as_nanos() as u64;
        // Profile aggregation is unconditional (a lock-protected map bump
        // per span drop); event emission stays behind the level gate.
        profile::span_exit(self.name, dur_ns);
        if !recording() || !enabled(self.level) {
            return;
        }
        let mut fields: Vec<(&'static str, Json)> =
            vec![("name", Json::from(self.name)), ("dur_ns", Json::from(dur_ns))];
        fields.append(&mut self.fields);
        emit(self.level, "span", fields);
    }
}

/// Opens a [`Span`]: `span!("campaign")` or
/// `span!("trial", layer = 3, trial = 17)`.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::Span::enter($name, ::std::vec::Vec::new())
    };
    ($name:expr, $($k:ident = $v:expr),+ $(,)?) => {
        $crate::Span::enter($name, vec![$((stringify!($k), $crate::Json::from($v))),+])
    };
}

/// Logs a line to **stderr** at `level` (suppressed by the global gate),
/// and mirrors it as a `log` event when recording. This is the trace-layer
/// replacement for ad-hoc `eprintln!` diagnostics.
#[macro_export]
macro_rules! logln {
    ($level:expr, $($arg:tt)*) => {
        if $crate::enabled($level) {
            let msg = format!($($arg)*);
            eprintln!("{msg}");
            $crate::emit($level, "log", vec![("msg", $crate::Json::from(msg))]);
        }
    };
}

/// Prints result output to **stdout** at [`Level::Info`] (so `--quiet`
/// suppresses it); the trace-layer replacement for ad-hoc `println!`.
#[macro_export]
macro_rules! outln {
    () => {
        if $crate::enabled($crate::Level::Info) { println!(); }
    };
    ($($arg:tt)*) => {
        if $crate::enabled($crate::Level::Info) {
            println!($($arg)*);
        }
    };
}

// ---------------------------------------------------------------------------
// Counters and histograms
// ---------------------------------------------------------------------------

/// A metric: a monotonically increasing counter plus value-distribution
/// aggregates (count/sum/min/max), all relaxed atomics — safe and cheap
/// to hammer from campaign worker threads.
#[derive(Debug)]
pub struct Metric {
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicI64,
    max: AtomicI64,
}

impl Metric {
    const fn new() -> Metric {
        Metric {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicI64::new(i64::MAX),
            max: AtomicI64::new(i64::MIN),
        }
    }

    /// Adds `n` occurrences (counter usage).
    pub fn add(&self, n: u64) {
        self.count.fetch_add(n, Ordering::Relaxed);
    }

    /// Records one observation `v` (histogram usage): bumps count, adds to
    /// sum, and folds min/max.
    pub fn record(&self, v: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        let vi = v.min(i64::MAX as u64) as i64;
        self.min.fetch_min(vi, Ordering::Relaxed);
        self.max.fetch_max(vi, Ordering::Relaxed);
    }

    /// Total occurrences / observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded observations.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Mean observation (0.0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// Resets the metric to empty.
    pub fn reset(&self) {
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(i64::MAX, Ordering::Relaxed);
        self.max.store(i64::MIN, Ordering::Relaxed);
    }

    /// The metric as a JSON object (`count`, and when observations were
    /// recorded, `sum`/`mean`/`min`/`max`).
    pub fn to_json(&self) -> Json {
        let n = self.count();
        let sum = self.sum();
        if sum == 0 {
            return Json::obj([("count", Json::from(n))]);
        }
        Json::obj([
            ("count", Json::from(n)),
            ("sum", Json::from(sum)),
            ("mean", Json::Num(self.mean())),
            ("min", Json::from(self.min.load(Ordering::Relaxed).max(0) as u64)),
            ("max", Json::from(self.max.load(Ordering::Relaxed).max(0) as u64)),
        ])
    }
}

fn metric(name: &'static str) -> &'static Metric {
    let t = tracer();
    let mut reg = lock(&t.metrics);
    if let Some((_, m)) = reg.iter().find(|(n, _)| *n == name) {
        return m;
    }
    let m: &'static Metric = Box::leak(Box::new(Metric::new()));
    reg.push((name, m));
    m
}

/// Returns the process-global counter registered under `name`, creating
/// it on first use. Cache the returned reference (e.g. in a `OnceLock`)
/// on hot paths to skip the registry lock.
pub fn counter(name: &'static str) -> &'static Metric {
    metric(name)
}

/// Returns the process-global histogram registered under `name`
/// (the same [`Metric`] type; use [`Metric::record`]).
pub fn histogram(name: &'static str) -> &'static Metric {
    metric(name)
}

/// Snapshot of every registered metric, sorted by name (deterministic
/// manifest embedding).
pub fn metrics_snapshot() -> Vec<(String, Json)> {
    let reg = lock(&tracer().metrics);
    let mut out: Vec<(String, Json)> =
        reg.iter().map(|(n, m)| ((*n).to_string(), m.to_json())).collect();
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}

/// Resets every registered metric (for overhead measurements in benches).
pub fn reset_metrics() {
    for (_, m) in lock(&tracer().metrics).iter() {
        m.reset();
    }
}

/// Serializes tests (across every module of this crate) that mutate
/// process-global tracer state — level, capture ring, sinks, profile
/// aggregate — so the parallel test runner cannot interleave drains.
#[cfg(test)]
pub(crate) fn test_serial() -> std::sync::MutexGuard<'static, ()> {
    static GATE: Mutex<()> = Mutex::new(());
    GATE.lock().unwrap_or_else(|p| p.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn serialize_tests() -> std::sync::MutexGuard<'static, ()> {
        crate::test_serial()
    }

    #[test]
    fn level_parse_and_order() {
        assert_eq!(Level::parse("debug"), Some(Level::Debug));
        assert_eq!(Level::parse("bogus"), None);
        assert!(Level::Error < Level::Trace);
        assert_eq!(Level::from_u8(Level::Warn as u8), Level::Warn);
    }

    #[test]
    fn capture_ring_records_events() {
        let _gate = serialize_tests();
        capture_events(true);
        set_level(Level::Trace);
        emit(Level::Info, "test_ring", vec![("k", Json::from(1u64))]);
        let events = take_events();
        capture_events(false);
        set_level(Level::Info);
        let e = events.iter().find(|e| e.kind == "test_ring").expect("captured");
        assert_eq!(e.fields[0].1, Json::Num(1.0));
        let j = e.to_json();
        assert_eq!(j.get("type").unwrap().as_str(), Some("test_ring"));
        assert!(j.get("ts_ns").unwrap().as_u64().is_some());
    }

    #[test]
    fn events_dropped_when_not_recording() {
        let _gate = serialize_tests();
        // Not recording → emit is a no-op (take_events stays empty of this
        // kind even after enabling capture later).
        emit(Level::Error, "test_dropped", vec![]);
        capture_events(true);
        let events = take_events();
        capture_events(false);
        assert!(events.iter().all(|e| e.kind != "test_dropped"));
    }

    #[test]
    fn span_emits_duration() {
        let _gate = serialize_tests();
        capture_events(true);
        set_level(Level::Trace);
        {
            let _s = span!("test_span", layer = 3usize);
        }
        let events = take_events();
        capture_events(false);
        set_level(Level::Info);
        let e = events
            .iter()
            .find(|e| {
                e.kind == "span"
                    && e.fields.iter().any(|(k, v)| *k == "name" && *v == Json::from("test_span"))
            })
            .expect("span event");
        let dur = e.fields.iter().find(|(k, _)| *k == "dur_ns").unwrap();
        assert!(dur.1.as_u64().is_some());
        assert!(e.fields.iter().any(|(k, v)| *k == "layer" && *v == Json::Num(3.0)));
    }

    #[test]
    fn metric_counter_and_histogram() {
        let c = counter("test.counter");
        c.reset();
        c.add(2);
        c.add(3);
        assert_eq!(c.count(), 5);
        let h = histogram("test.histogram");
        h.reset();
        h.record(10);
        h.record(30);
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), 40);
        assert_eq!(h.mean(), 20.0);
        let j = h.to_json();
        assert_eq!(j.get("min").unwrap().as_u64(), Some(10));
        assert_eq!(j.get("max").unwrap().as_u64(), Some(30));
        // Same name → same metric.
        assert_eq!(counter("test.counter").count(), 5);
        let snap = metrics_snapshot();
        assert!(snap.iter().any(|(n, _)| n == "test.histogram"));
        // Sorted by name.
        let names: Vec<&String> = snap.iter().map(|(n, _)| n).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
    }

    #[test]
    fn jsonl_sink_writes_lines() {
        let _gate = serialize_tests();
        let dir = std::env::temp_dir().join("goldeneye_trace_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sink.jsonl");
        open_jsonl(&path).unwrap();
        set_level(Level::Trace);
        emit(Level::Info, "test_sink", vec![("x", Json::from(7u64))]);
        close_jsonl();
        set_level(Level::Info);
        let text = std::fs::read_to_string(&path).unwrap();
        let line = text.lines().find(|l| l.contains("test_sink")).expect("line written");
        let v = parse(line).unwrap();
        assert_eq!(v.get("x").unwrap().as_u64(), Some(7));
        std::fs::remove_file(&path).ok();
    }
}
