//! The central registry of telemetry names: every counter/histogram name
//! and every event kind the platform emits, as constants.
//!
//! Call sites across `goldeneye`, `formats`, and `tensor` import these
//! instead of scattering string literals, so a typo cannot silently fork
//! a metric, and `trace stats` / the validator can tell a known kind from
//! garbage. The integration suite asserts that every metric name appearing
//! in a recorded trace is registered here.

/// Per-call FP32 → format conversion time in the emulation hook.
pub const HOOK_QUANTIZE_NS: &str = "hook.quantize_ns";
/// Per-call format → FP32 conversion time in the emulation hook.
pub const HOOK_DEQUANTIZE_NS: &str = "hook.dequantize_ns";
/// Elements converted by the emulation hook.
pub const HOOK_CONVERT_ELEMS: &str = "hook.convert_elems";
/// Time hooks spent blocked on contended internal locks.
pub const HOOK_LOCK_WAIT_NS: &str = "hook.lock_wait_ns";
/// Executed campaign trials.
pub const CAMPAIGN_TRIALS: &str = "campaign.trials";
/// Batched replay forwards executed by the checkpoint/replay engine.
pub const CAMPAIGN_REPLAY_BATCHES: &str = "campaign.replay.batches";
/// Model segments skipped by replaying from a checkpoint (cache hits).
pub const CAMPAIGN_REPLAY_SEG_SKIPPED: &str = "campaign.replay.segments_skipped";
/// Total model segments a full forward of each replay batch would run.
pub const CAMPAIGN_REPLAY_SEG_TOTAL: &str = "campaign.replay.segments_total";
/// Dequantise lookup tables built by the `formats` fast path.
pub const FORMATS_LUT_BUILDS: &str = "formats.lut.builds";
/// Chunk-parallel quantise wall time.
pub const FORMATS_QUANTIZE_CHUNKED_NS: &str = "formats.quantize.chunked_ns";
/// Elements quantised by the chunk-parallel path.
pub const FORMATS_QUANTIZE_CHUNKED_ELEMS: &str = "formats.quantize.chunked_elems";
/// Ordinal of the GEMM micro-kernel dispatched per call (0 = scalar,
/// 1 = AVX2, 2 = AVX-512); a histogram so `trace stats` shows which
/// kernel a run actually used.
pub const GEMM_KERNEL: &str = "gemm.kernel";
/// Wall time of fused quantize-into-pack passes: the operand-B pack phase
/// of `sgemm_fused` when a transform is fused, and the hook-side fused
/// quantise→dequantise round-trip.
pub const PACK_FUSED_QUANTIZE_NS: &str = "pack.fused_quantize_ns";
/// Fused quantise round-trips whose format had a validated cached
/// dequantise LUT available (the ≤16-bit fast-path population).
pub const PACK_LUT_HITS: &str = "pack.lut_hits";
/// Artifact-store lookups that found a cached artifact (memory or disk).
pub const STORE_HIT: &str = "store.hit";
/// Artifact-store lookups that missed and had to compute the artifact.
pub const STORE_MISS: &str = "store.miss";
/// Payload bytes served from the artifact store instead of recomputed.
pub const STORE_BYTES_REUSED: &str = "store.bytes_reused";
/// Payload bytes written into the artifact store.
pub const STORE_BYTES_WRITTEN: &str = "store.bytes_written";
/// GEMM packing time.
pub const TENSOR_GEMM_PACK_NS: &str = "tensor.gemm.pack_ns";
/// GEMM micro-kernel time.
pub const TENSOR_GEMM_KERNEL_NS: &str = "tensor.gemm.kernel_ns";
/// Floating-point operations executed by the GEMM kernels.
pub const TENSOR_GEMM_FLOPS: &str = "tensor.gemm.flops";
/// Task batches dispatched by the intra-op worker pool.
pub const TENSOR_PARALLEL_DISPATCHES: &str = "tensor.parallel.dispatches";

/// Every registered metric name. Kept sorted for deterministic reporting.
pub const ALL_METRICS: &[&str] = &[
    CAMPAIGN_REPLAY_BATCHES,
    CAMPAIGN_REPLAY_SEG_SKIPPED,
    CAMPAIGN_REPLAY_SEG_TOTAL,
    CAMPAIGN_TRIALS,
    FORMATS_LUT_BUILDS,
    FORMATS_QUANTIZE_CHUNKED_ELEMS,
    FORMATS_QUANTIZE_CHUNKED_NS,
    GEMM_KERNEL,
    HOOK_CONVERT_ELEMS,
    HOOK_DEQUANTIZE_NS,
    HOOK_LOCK_WAIT_NS,
    HOOK_QUANTIZE_NS,
    PACK_FUSED_QUANTIZE_NS,
    PACK_LUT_HITS,
    STORE_BYTES_REUSED,
    STORE_BYTES_WRITTEN,
    STORE_HIT,
    STORE_MISS,
    TENSOR_GEMM_FLOPS,
    TENSOR_GEMM_KERNEL_NS,
    TENSOR_GEMM_PACK_NS,
    TENSOR_PARALLEL_DISPATCHES,
];

/// Whether `name` is a registered metric name (`test.*` names are
/// reserved for unit tests and always accepted).
pub fn is_registered_metric(name: &str) -> bool {
    name.starts_with("test.") || ALL_METRICS.contains(&name)
}

// ---------------------------------------------------------------------------
// Event kinds
// ---------------------------------------------------------------------------

/// RAII scope timing, emitted on span drop.
pub const KIND_SPAN: &str = "span";
/// Mirrored stderr log line.
pub const KIND_LOG: &str = "log";
/// One fault-injection trial record.
pub const KIND_TRIAL: &str = "trial";
/// A run manifest (inline or wrapped as an event payload).
pub const KIND_MANIFEST: &str = "manifest";
/// Quantizer range-profile snapshot.
pub const KIND_RANGE_PROFILE: &str = "range_profile";
/// One DSE traversal decision.
pub const KIND_DSE_NODE: &str = "dse_node";
/// Streaming progress heartbeat (trials done/planned, throughput, ETA).
pub const KIND_PROGRESS: &str = "progress";
/// A self-profiler tree snapshot.
pub const KIND_PROFILE: &str = "profile";

/// Every event kind the platform emits. A JSONL trace containing any
/// other kind fails validation with a typed error.
pub const ALL_EVENT_KINDS: &[&str] = &[
    KIND_SPAN,
    KIND_LOG,
    KIND_TRIAL,
    KIND_MANIFEST,
    KIND_RANGE_PROFILE,
    KIND_DSE_NODE,
    KIND_PROGRESS,
    KIND_PROFILE,
];

/// Whether `kind` is a known event kind (`test_*` kinds are reserved for
/// unit tests and always accepted).
pub fn is_known_kind(kind: &str) -> bool {
    kind.starts_with("test_") || ALL_EVENT_KINDS.contains(&kind)
}

/// Fields of a `progress` event that carry wall-clock-derived or
/// schedule-dependent values (throughput, ETA, batch geometry). The
/// deterministic content of a heartbeat is everything else; comparisons
/// across `--jobs`/`--trials-per-batch` strip these, exactly like
/// timestamps.
pub const PROGRESS_VOLATILE_FIELDS: &[&str] =
    &["ts_ns", "elapsed_s", "per_sec", "eta_s", "jobs", "batch", "cache_hit_rate"];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metric_registry_is_sorted_and_matches() {
        let mut sorted = ALL_METRICS.to_vec();
        sorted.sort_unstable();
        assert_eq!(sorted, ALL_METRICS, "ALL_METRICS must stay sorted");
        assert!(is_registered_metric(CAMPAIGN_TRIALS));
        assert!(is_registered_metric("test.anything"));
        assert!(!is_registered_metric("hook.typo_ns"));
    }

    #[test]
    fn event_kind_registry() {
        assert!(is_known_kind("trial"));
        assert!(is_known_kind("progress"));
        assert!(is_known_kind("test_ring"));
        assert!(!is_known_kind("bogus_kind"));
    }
}
