//! Schema validation for run manifests and JSONL trace files — used by
//! the test suite and the CI smoke job (`goldeneye validate-trace`), so a
//! regenerated `results/` artifact is guaranteed machine-readable.

use crate::json::Json;
use crate::manifest::TrialRecord;

/// What a validated JSONL trace contained.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceSummary {
    /// Total non-empty lines.
    pub lines: usize,
    /// `type == "trial"` records.
    pub trials: usize,
    /// `type == "span"` records.
    pub spans: usize,
    /// `type == "manifest"` records.
    pub manifests: usize,
    /// `type == "log"` records.
    pub logs: usize,
}

/// Validates one run-manifest JSON object against the schema: required
/// `tool`/`version`/`wall_time_s`/`config`, well-formed `layers` and
/// `convergence` when present.
pub fn validate_manifest(v: &Json) -> Result<(), String> {
    if !v.is_obj() {
        return Err("manifest must be a JSON object".into());
    }
    for key in ["tool", "version"] {
        if v.get(key).and_then(Json::as_str).is_none() {
            return Err(format!("manifest: missing string field `{key}`"));
        }
    }
    if v.get("wall_time_s").and_then(Json::as_f64).is_none() {
        return Err("manifest: missing numeric field `wall_time_s`".into());
    }
    match v.get("config") {
        Some(c) if c.is_obj() => {}
        _ => return Err("manifest: missing object field `config`".into()),
    }
    if let Some(layers) = v.get("layers") {
        let arr = layers.as_arr().ok_or("manifest: `layers` must be an array")?;
        for (i, layer) in arr.iter().enumerate() {
            crate::manifest::LayerRecord::from_json(layer)
                .map_err(|e| format!("manifest: layers[{i}]: {e}"))?;
        }
    }
    if let Some(conv) = v.get("convergence") {
        let arr = conv.as_arr().ok_or("manifest: `convergence` must be an array")?;
        if arr.iter().any(|x| x.as_f64().is_none()) {
            return Err("manifest: `convergence` must contain only numbers".into());
        }
    }
    Ok(())
}

/// Validates one event object from a JSONL trace: every line must be an
/// object with `type`; `trial` and `manifest` lines must satisfy their
/// schemas; other kinds only need a timestamp when they claim one.
pub fn validate_event(v: &Json) -> Result<&str, String> {
    if !v.is_obj() {
        return Err("event must be a JSON object".into());
    }
    let kind = v.get("type").and_then(Json::as_str).ok_or("event: missing string field `type`")?;
    if let Some(ts) = v.get("ts_ns") {
        ts.as_u64().ok_or("event: `ts_ns` must be a non-negative integer")?;
    }
    match kind {
        "trial" => {
            TrialRecord::from_json(v)?;
        }
        "manifest" => {
            // Either inline (`{"type":"manifest","tool":…}`) or wrapped as
            // an event payload (`{"type":"manifest","manifest":{…}}`).
            let inner = v.get("manifest").unwrap_or(v);
            validate_manifest(inner)?;
        }
        "span" => {
            if v.get("name").and_then(Json::as_str).is_none() {
                return Err("span event: missing string field `name`".into());
            }
            if v.get("dur_ns").and_then(Json::as_u64).is_none() {
                return Err("span event: missing integer field `dur_ns`".into());
            }
        }
        "log" if v.get("msg").and_then(Json::as_str).is_none() => {
            return Err("log event: missing string field `msg`".into());
        }
        _ => {}
    }
    Ok(kind)
}

/// Validates a whole JSONL trace (one JSON object per non-empty line) and
/// returns per-kind counts. Line numbers in errors are 1-based.
pub fn validate_trace(jsonl: &str) -> Result<TraceSummary, String> {
    let mut summary = TraceSummary::default();
    for (i, line) in jsonl.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let v = crate::parse(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        let kind = validate_event(&v).map_err(|e| format!("line {}: {e}", i + 1))?;
        summary.lines += 1;
        match kind {
            "trial" => summary.trials += 1,
            "span" => summary.spans += 1,
            "manifest" => summary.manifests += 1,
            "log" => summary.logs += 1,
            _ => {}
        }
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manifest::RunManifest;

    #[test]
    fn valid_trace_passes() {
        let mut m = RunManifest::new("test").with_config("seed", 1u64);
        m.wall_time_s = 0.5;
        let trial = TrialRecord {
            layer: 0,
            layer_name: "stem".into(),
            trial: 0,
            site: "value".into(),
            element: Some(1),
            bit: Some(2),
            delta_loss: Some(0.1),
            mismatch: Some(0.0),
            worker: 0,
        };
        let jsonl = format!(
            "{}\n{}\n{}\n\n{}\n",
            trial.to_json().to_compact(),
            r#"{"ts_ns":12,"level":"debug","type":"span","name":"campaign","dur_ns":99}"#,
            r#"{"ts_ns":13,"level":"info","type":"log","msg":"hi"}"#,
            m.to_json().to_compact(),
        );
        let s = validate_trace(&jsonl).unwrap();
        assert_eq!(s, TraceSummary { lines: 4, trials: 1, spans: 1, manifests: 1, logs: 1 });
    }

    #[test]
    fn wrapped_manifest_event_passes() {
        let mut m = RunManifest::new("test");
        m.wall_time_s = 0.1;
        let line =
            crate::Json::obj([("type", crate::Json::from("manifest")), ("manifest", m.to_json())])
                .to_compact();
        assert_eq!(validate_trace(&line).unwrap().manifests, 1);
    }

    #[test]
    fn bad_lines_are_pinpointed() {
        let err = validate_trace("{\"type\":\"log\",\"msg\":\"ok\"}\nnot json\n").unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");
        let err = validate_trace("{\"no_type\":1}\n").unwrap_err();
        assert!(err.contains("missing string field `type`"), "{err}");
        let err = validate_trace("{\"type\":\"trial\",\"layer\":0}\n").unwrap_err();
        assert!(err.contains("trial"), "{err}");
        let err = validate_trace("{\"type\":\"span\",\"name\":\"x\"}\n").unwrap_err();
        assert!(err.contains("dur_ns"), "{err}");
    }

    #[test]
    fn manifest_schema_requirements() {
        assert!(validate_manifest(&crate::parse(r#"{"tool":"t"}"#).unwrap()).is_err());
        let ok = r#"{"tool":"t","version":"v","wall_time_s":0.1,"config":{}}"#;
        assert!(validate_manifest(&crate::parse(ok).unwrap()).is_ok());
        let bad_layers =
            r#"{"tool":"t","version":"v","wall_time_s":0.1,"config":{},"layers":[{}]}"#;
        assert!(validate_manifest(&crate::parse(bad_layers).unwrap()).is_err());
    }
}
