//! Schema validation for run manifests and JSONL trace files — used by
//! the test suite and the CI smoke job (`goldeneye validate-trace`), so a
//! regenerated `results/` artifact is guaranteed machine-readable.
//!
//! Every failure is a typed [`TraceError`] (never a panic): malformed
//! JSON, an unknown event kind, a manifest schema-version mismatch, or a
//! structurally invalid record, each pinned to its 1-based line when the
//! input is a JSONL stream.

use crate::json::Json;
use crate::manifest::TrialRecord;
use crate::names;

/// Why a trace or manifest failed validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceErrorKind {
    /// The line is not valid JSON (truncated write, binary garbage, …).
    Parse(String),
    /// The event's `type` is not in [`names::ALL_EVENT_KINDS`].
    UnknownKind(String),
    /// The manifest's `schema` does not match this build's
    /// [`crate::SCHEMA_VERSION`].
    SchemaVersion {
        /// Version found in the document.
        found: u64,
        /// Version this build reads and writes.
        expected: u64,
    },
    /// Structurally invalid record (missing/mistyped field).
    Malformed(String),
}

/// A validation failure, optionally pinned to a 1-based JSONL line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceError {
    /// 1-based line number in the JSONL input (`None` for single-object
    /// validation).
    pub line: Option<usize>,
    /// What went wrong.
    pub kind: TraceErrorKind,
}

impl TraceError {
    fn malformed(msg: impl Into<String>) -> TraceError {
        TraceError { line: None, kind: TraceErrorKind::Malformed(msg.into()) }
    }

    fn at_line(mut self, line: usize) -> TraceError {
        self.line = Some(line);
        self
    }
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if let Some(line) = self.line {
            write!(f, "line {line}: ")?;
        }
        match &self.kind {
            TraceErrorKind::Parse(msg) => write!(f, "{msg}"),
            TraceErrorKind::UnknownKind(kind) => write!(f, "unknown event kind `{kind}`"),
            TraceErrorKind::SchemaVersion { found, expected } => {
                write!(f, "manifest schema version {found} (this build reads {expected})")
            }
            TraceErrorKind::Malformed(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for TraceError {}

impl From<TraceError> for String {
    fn from(e: TraceError) -> String {
        e.to_string()
    }
}

/// What a validated JSONL trace contained.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceSummary {
    /// Total non-empty lines.
    pub lines: usize,
    /// `type == "trial"` records.
    pub trials: usize,
    /// `type == "span"` records.
    pub spans: usize,
    /// `type == "manifest"` records.
    pub manifests: usize,
    /// `type == "log"` records.
    pub logs: usize,
    /// `type == "progress"` heartbeats.
    pub progress: usize,
}

/// Validates one run-manifest JSON object against the schema: required
/// `tool`/`version`/`wall_time_s`/`config`, a `schema` version (when
/// present) matching this build, well-formed `layers`/`convergence`/
/// `profile` when present.
pub fn validate_manifest(v: &Json) -> Result<(), TraceError> {
    if !v.is_obj() {
        return Err(TraceError::malformed("manifest must be a JSON object"));
    }
    if let Some(schema) = v.get("schema") {
        let found = schema
            .as_u64()
            .ok_or_else(|| TraceError::malformed("manifest: `schema` must be an integer"))?;
        if found != crate::SCHEMA_VERSION {
            return Err(TraceError {
                line: None,
                kind: TraceErrorKind::SchemaVersion { found, expected: crate::SCHEMA_VERSION },
            });
        }
    }
    for key in ["tool", "version"] {
        if v.get(key).and_then(Json::as_str).is_none() {
            return Err(TraceError::malformed(format!("manifest: missing string field `{key}`")));
        }
    }
    if v.get("wall_time_s").and_then(Json::as_f64).is_none() {
        return Err(TraceError::malformed("manifest: missing numeric field `wall_time_s`"));
    }
    match v.get("config") {
        Some(c) if c.is_obj() => {}
        _ => return Err(TraceError::malformed("manifest: missing object field `config`")),
    }
    if let Some(layers) = v.get("layers") {
        let arr = layers
            .as_arr()
            .ok_or_else(|| TraceError::malformed("manifest: `layers` must be an array"))?;
        for (i, layer) in arr.iter().enumerate() {
            crate::manifest::LayerRecord::from_json(layer)
                .map_err(|e| TraceError::malformed(format!("manifest: layers[{i}]: {e}")))?;
        }
    }
    if let Some(conv) = v.get("convergence") {
        let arr = conv
            .as_arr()
            .ok_or_else(|| TraceError::malformed("manifest: `convergence` must be an array"))?;
        if arr.iter().any(|x| x.as_f64().is_none()) {
            return Err(TraceError::malformed("manifest: `convergence` must contain only numbers"));
        }
    }
    if let Some(profile) = v.get("profile") {
        crate::profile_from_json(profile)
            .map_err(|e| TraceError::malformed(format!("manifest: {e}")))?;
    }
    Ok(())
}

/// Validates one event object from a JSONL trace: every line must be an
/// object with a **known** `type` (see [`names::ALL_EVENT_KINDS`]);
/// `trial`/`manifest`/`span`/`log`/`progress` lines must satisfy their
/// schemas; other kinds only need a timestamp when they claim one.
pub fn validate_event(v: &Json) -> Result<&str, TraceError> {
    if !v.is_obj() {
        return Err(TraceError::malformed("event must be a JSON object"));
    }
    let kind = v
        .get("type")
        .and_then(Json::as_str)
        .ok_or_else(|| TraceError::malformed("event: missing string field `type`"))?;
    if !names::is_known_kind(kind) {
        return Err(TraceError { line: None, kind: TraceErrorKind::UnknownKind(kind.to_string()) });
    }
    if let Some(ts) = v.get("ts_ns") {
        ts.as_u64().ok_or_else(|| {
            TraceError::malformed("event: `ts_ns` must be a non-negative integer")
        })?;
    }
    match kind {
        "trial" => {
            TrialRecord::from_json(v).map_err(TraceError::malformed)?;
        }
        "manifest" => {
            // Either inline (`{"type":"manifest","tool":…}`) or wrapped as
            // an event payload (`{"type":"manifest","manifest":{…}}`).
            let inner = v.get("manifest").unwrap_or(v);
            validate_manifest(inner)?;
        }
        "span" => {
            if v.get("name").and_then(Json::as_str).is_none() {
                return Err(TraceError::malformed("span event: missing string field `name`"));
            }
            if v.get("dur_ns").and_then(Json::as_u64).is_none() {
                return Err(TraceError::malformed("span event: missing integer field `dur_ns`"));
            }
        }
        "log" if v.get("msg").and_then(Json::as_str).is_none() => {
            return Err(TraceError::malformed("log event: missing string field `msg`"));
        }
        "progress" => {
            for key in ["done", "planned"] {
                if v.get(key).and_then(Json::as_u64).is_none() {
                    return Err(TraceError::malformed(format!(
                        "progress event: missing integer field `{key}`"
                    )));
                }
            }
            if v.get("phase").and_then(Json::as_str).is_none() {
                return Err(TraceError::malformed("progress event: missing string field `phase`"));
            }
        }
        _ => {}
    }
    Ok(kind)
}

/// Validates a whole JSONL trace (one JSON object per non-empty line) and
/// returns per-kind counts. Line numbers in errors are 1-based.
pub fn validate_trace(jsonl: &str) -> Result<TraceSummary, TraceError> {
    let mut summary = TraceSummary::default();
    for (i, line) in jsonl.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let v = crate::parse(line).map_err(|e| {
            TraceError { line: None, kind: TraceErrorKind::Parse(e.to_string()) }.at_line(i + 1)
        })?;
        let kind = validate_event(&v).map_err(|e| e.at_line(i + 1))?;
        summary.lines += 1;
        match kind {
            "trial" => summary.trials += 1,
            "span" => summary.spans += 1,
            "manifest" => summary.manifests += 1,
            "log" => summary.logs += 1,
            "progress" => summary.progress += 1,
            _ => {}
        }
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manifest::RunManifest;

    #[test]
    fn valid_trace_passes() {
        let mut m = RunManifest::new("test").with_config("seed", 1u64);
        m.wall_time_s = 0.5;
        let trial = TrialRecord {
            layer: 0,
            layer_name: "stem".into(),
            trial: 0,
            site: "value".into(),
            element: Some(1),
            bit: Some(2),
            delta_loss: Some(0.1),
            mismatch: Some(0.0),
            worker: 0,
        };
        let jsonl = format!(
            "{}\n{}\n{}\n\n{}\n{}\n",
            trial.to_json().to_compact(),
            r#"{"ts_ns":12,"level":"debug","type":"span","name":"campaign","dur_ns":99}"#,
            r#"{"ts_ns":13,"level":"info","type":"log","msg":"hi"}"#,
            r#"{"ts_ns":14,"level":"info","type":"progress","phase":"campaign","done":3,"planned":9}"#,
            m.to_json().to_compact(),
        );
        let s = validate_trace(&jsonl).unwrap();
        assert_eq!(
            s,
            TraceSummary { lines: 5, trials: 1, spans: 1, manifests: 1, logs: 1, progress: 1 }
        );
    }

    #[test]
    fn wrapped_manifest_event_passes() {
        let mut m = RunManifest::new("test");
        m.wall_time_s = 0.1;
        let line =
            crate::Json::obj([("type", crate::Json::from("manifest")), ("manifest", m.to_json())])
                .to_compact();
        assert_eq!(validate_trace(&line).unwrap().manifests, 1);
    }

    #[test]
    fn bad_lines_are_pinpointed() {
        let err = validate_trace("{\"type\":\"log\",\"msg\":\"ok\"}\nnot json\n").unwrap_err();
        assert_eq!(err.line, Some(2));
        assert!(matches!(err.kind, TraceErrorKind::Parse(_)), "{err}");
        assert!(err.to_string().starts_with("line 2:"), "{err}");
        let err = validate_trace("{\"no_type\":1}\n").unwrap_err();
        assert!(err.to_string().contains("missing string field `type`"), "{err}");
        let err = validate_trace("{\"type\":\"trial\",\"layer\":0}\n").unwrap_err();
        assert!(err.to_string().contains("trial"), "{err}");
        let err = validate_trace("{\"type\":\"span\",\"name\":\"x\"}\n").unwrap_err();
        assert!(err.to_string().contains("dur_ns"), "{err}");
    }

    #[test]
    fn truncated_line_is_a_parse_error() {
        // A crash mid-write leaves a truncated final line; it must fail
        // with a typed Parse error pinned to that line, not a panic.
        let good = r#"{"type":"log","msg":"ok"}"#;
        let truncated = r#"{"type":"trial","layer":3,"na"#;
        let err = validate_trace(&format!("{good}\n{truncated}")).unwrap_err();
        assert_eq!(err.line, Some(2));
        assert!(matches!(err.kind, TraceErrorKind::Parse(_)), "{err}");
    }

    #[test]
    fn unknown_event_kind_is_typed() {
        let err = validate_trace("{\"type\":\"wormhole\"}\n").unwrap_err();
        assert_eq!(err.line, Some(1));
        assert_eq!(err.kind, TraceErrorKind::UnknownKind("wormhole".into()));
        assert!(err.to_string().contains("unknown event kind `wormhole`"), "{err}");
        // `test_*` kinds are reserved for unit tests and accepted.
        assert!(validate_trace("{\"type\":\"test_ring\"}\n").is_ok());
    }

    #[test]
    fn schema_version_mismatch_is_typed() {
        let doc = format!(
            r#"{{"type":"manifest","schema":{},"tool":"t","version":"v","wall_time_s":0.1,"config":{{}}}}"#,
            crate::SCHEMA_VERSION + 1
        );
        let err = validate_manifest(&crate::parse(&doc).unwrap()).unwrap_err();
        assert_eq!(
            err.kind,
            TraceErrorKind::SchemaVersion {
                found: crate::SCHEMA_VERSION + 1,
                expected: crate::SCHEMA_VERSION
            }
        );
        // Pre-schema manifests (no `schema` field) still validate.
        let legacy = r#"{"tool":"t","version":"v","wall_time_s":0.1,"config":{}}"#;
        assert!(validate_manifest(&crate::parse(legacy).unwrap()).is_ok());
        // And the mismatch is pinned to its line in a JSONL stream.
        let err = validate_trace(&doc).unwrap_err();
        assert_eq!(err.line, Some(1));
    }

    #[test]
    fn progress_schema_requirements() {
        let err = validate_trace("{\"type\":\"progress\",\"phase\":\"campaign\",\"done\":1}\n")
            .unwrap_err();
        assert!(err.to_string().contains("planned"), "{err}");
        let err = validate_trace("{\"type\":\"progress\",\"done\":1,\"planned\":2}\n").unwrap_err();
        assert!(err.to_string().contains("phase"), "{err}");
    }

    #[test]
    fn manifest_schema_requirements() {
        assert!(validate_manifest(&crate::parse(r#"{"tool":"t"}"#).unwrap()).is_err());
        let ok = r#"{"tool":"t","version":"v","wall_time_s":0.1,"config":{}}"#;
        assert!(validate_manifest(&crate::parse(ok).unwrap()).is_ok());
        let bad_layers =
            r#"{"tool":"t","version":"v","wall_time_s":0.1,"config":{},"layers":[{}]}"#;
        assert!(validate_manifest(&crate::parse(bad_layers).unwrap()).is_err());
        let bad_profile =
            r#"{"tool":"t","version":"v","wall_time_s":0.1,"config":{},"profile":[{"name":"x"}]}"#;
        assert!(validate_manifest(&crate::parse(bad_profile).unwrap()).is_err());
    }
}
