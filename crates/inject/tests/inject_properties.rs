//! Property-based tests of the injection engine across random formats,
//! fault locations, and tensors.

use formats::{BlockFloatingPoint, FloatingPoint, IntQuant, NumberFormat};
use inject::{flip_metadata, flip_value, Injector, RangeProfile};
use proptest::prelude::*;
use tensor::Tensor;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A value flip changes only the targeted element, for any geometry.
    #[test]
    fn value_flip_is_local(
        values in prop::collection::vec(-100.0f32..100.0, 2..24),
        elem_seed in 0usize..1000,
        bit_seed in 0usize..1000,
        e in 2u32..=6,
        m in 1u32..=8,
    ) {
        let fp = FloatingPoint::new(e, m);
        let x = Tensor::from_vec(values.clone(), [values.len()]);
        let mut q = fp.real_to_format_tensor(&x);
        let before = q.values.clone();
        let element = elem_seed % values.len();
        let bit = bit_seed % fp.bit_width() as usize;
        flip_value(&fp, &mut q, element, bit);
        for i in 0..values.len() {
            if i != element {
                prop_assert_eq!(q.values.as_slice()[i], before.as_slice()[i]);
            }
        }
    }

    /// A BFP shared-exponent flip touches exactly one block, scaling each
    /// member by the same power of two.
    #[test]
    fn bfp_metadata_flip_scales_one_block_uniformly(
        block in 1usize..=8,
        word_seed in 0usize..100,
        bit in 0usize..5,
        values in prop::collection::vec(0.1f32..100.0, 8..32),
    ) {
        let bfp = BlockFloatingPoint::new(5, 5, block);
        let x = Tensor::from_vec(values.clone(), [values.len()]);
        let mut q = bfp.real_to_format_tensor(&x);
        let before = q.values.clone();
        let words = q.meta.word_count();
        let word = word_seed % words;
        flip_metadata(&bfp, &mut q, word, bit);
        let start = word * block;
        let end = (start + block).min(values.len());
        // Ratio uniform within the block (where before ≠ 0).
        let mut ratio: Option<f32> = None;
        for i in start..end {
            let b = before.as_slice()[i];
            if b != 0.0 {
                let r = q.values.as_slice()[i] / b;
                if let Some(r0) = ratio {
                    prop_assert!((r - r0).abs() <= r0.abs() * 1e-4,
                        "non-uniform ratio in block: {r} vs {r0}");
                } else {
                    ratio = Some(r);
                }
            }
        }
        if let Some(r) = ratio {
            prop_assert!(r > 0.0);
            // Power of two: log2 is an integer.
            let l = r.log2();
            prop_assert!((l - l.round()).abs() < 1e-3, "ratio {r} not a power of 2");
        }
        // Other blocks untouched.
        for i in 0..values.len() {
            if i < start || i >= end {
                prop_assert_eq!(q.values.as_slice()[i], before.as_slice()[i]);
            }
        }
    }

    /// An INT scale flip preserves the relative structure of the tensor
    /// (all values scale by the same factor).
    #[test]
    fn int_scale_flip_preserves_ratios(
        values in prop::collection::vec(0.5f32..50.0, 3..16),
        bit in 1usize..32, // skip the sign bit: a negative scale flips signs
    ) {
        let int8 = IntQuant::new(8);
        let x = Tensor::from_vec(values.clone(), [values.len()]);
        let mut q = int8.real_to_format_tensor(&x);
        let before = q.values.clone();
        flip_metadata(&int8, &mut q, 0, bit);
        // All non-zero pairs keep their ratios.
        let (mut r_known, mut found) = (0.0f64, false);
        for i in 0..values.len() {
            let (b, a) = (before.as_slice()[i] as f64, q.values.as_slice()[i] as f64);
            if b.abs() > 1e-9 && a.is_finite() {
                let r = a / b;
                if found {
                    prop_assert!((r - r_known).abs() <= r_known.abs() * 1e-3 + 1e-9,
                        "ratios diverge: {r} vs {r_known}");
                } else {
                    r_known = r;
                    found = true;
                }
            }
        }
    }

    /// Injector sampling is uniform-ish: over many draws every element and
    /// bit index appears.
    #[test]
    fn injector_covers_the_fault_space(seed in 0u64..1000) {
        let mut inj = Injector::new(seed);
        let (numel, width) = (5usize, 4usize);
        let mut elem_seen = vec![false; numel];
        let mut bit_seen = vec![false; width];
        for _ in 0..400 {
            let f = inj.sample_value_fault(numel, width);
            elem_seen[f.index] = true;
            bit_seen[f.bit] = true;
        }
        prop_assert!(elem_seen.iter().all(|&s| s), "some element never sampled");
        prop_assert!(bit_seen.iter().all(|&s| s), "some bit never sampled");
    }

    /// Range clamping is idempotent and never widens values.
    #[test]
    fn range_clamp_idempotent(
        profile_vals in prop::collection::vec(-10.0f32..10.0, 2..8),
        faulty_vals in prop::collection::vec(-1e6f32..1e6, 2..8),
    ) {
        let p = RangeProfile::new();
        let pn = profile_vals.len();
        p.observe(0, &Tensor::from_vec(profile_vals, [pn]));
        let n = faulty_vals.len();
        let faulty = Tensor::from_vec(faulty_vals, [n]);
        let once = p.clamp(0, &faulty);
        let twice = p.clamp(0, &once);
        prop_assert_eq!(&once, &twice);
        let (lo, hi) = p.range(0).unwrap();
        for &v in once.as_slice() {
            prop_assert!(v >= lo && v <= hi);
        }
    }
}
