//! The paper's taxonomy of injection sites: 8 single-bit error sites
//! informed by the number-format representations (§III-B, Table II).

use formats::NumberFormat;
use std::fmt;

/// Whether a flip lands in a data value or in hardware metadata.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SiteKind {
    /// A bit of one element's encoded value.
    Value,
    /// A bit of a metadata register (scale / shared exponent / bias).
    Metadata,
}

impl SiteKind {
    /// The stable lowercase label used in trace records and manifests.
    pub fn as_str(&self) -> &'static str {
        match self {
            SiteKind::Value => "value",
            SiteKind::Metadata => "metadata",
        }
    }
}

/// The format family a site belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FormatFamily {
    /// Generic floating point.
    Fp,
    /// Fixed point.
    Fxp,
    /// Integer quantisation.
    Int,
    /// Block floating point.
    Bfp,
    /// AdaptivFloat.
    Afp,
}

impl FormatFamily {
    /// Classifies a concrete format by its name prefix.
    pub fn of(format: &dyn NumberFormat) -> Option<FormatFamily> {
        let n = format.name();
        if n.starts_with("fp_") {
            Some(FormatFamily::Fp)
        } else if n.starts_with("fxp_") {
            Some(FormatFamily::Fxp)
        } else if n.starts_with("int") {
            Some(FormatFamily::Int)
        } else if n.starts_with("bfp_") {
            Some(FormatFamily::Bfp)
        } else if n.starts_with("afp_") {
            Some(FormatFamily::Afp)
        } else {
            None
        }
    }
}

/// One of the paper's 8 single-bit injection sites.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct InjectionSite {
    /// Format family.
    pub family: FormatFamily,
    /// Value or metadata.
    pub kind: SiteKind,
}

impl InjectionSite {
    /// All 8 sites studied in the paper: value flips for all 5 families,
    /// metadata flips for INT, BFP, and AFP.
    pub fn all() -> [InjectionSite; 8] {
        use FormatFamily::*;
        use SiteKind::*;
        [
            InjectionSite { family: Fp, kind: Value },
            InjectionSite { family: Fxp, kind: Value },
            InjectionSite { family: Int, kind: Value },
            InjectionSite { family: Bfp, kind: Value },
            InjectionSite { family: Afp, kind: Value },
            InjectionSite { family: Int, kind: Metadata },
            InjectionSite { family: Bfp, kind: Metadata },
            InjectionSite { family: Afp, kind: Metadata },
        ]
    }

    /// Whether `format` supports this site.
    pub fn supported_by(&self, format: &dyn NumberFormat) -> bool {
        FormatFamily::of(format) == Some(self.family)
            && (self.kind == SiteKind::Value || format.supports_metadata_injection())
    }
}

impl fmt::Display for InjectionSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let fam = match self.family {
            FormatFamily::Fp => "FP",
            FormatFamily::Fxp => "FxP",
            FormatFamily::Int => "INT",
            FormatFamily::Bfp => "BFP",
            FormatFamily::Afp => "AFP",
        };
        let kind = match self.kind {
            SiteKind::Value => "value",
            SiteKind::Metadata => "metadata",
        };
        write!(f, "{fam}/{kind}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use formats::{AdaptivFloat, BlockFloatingPoint, FixedPoint, FloatingPoint, IntQuant};

    #[test]
    fn exactly_eight_sites() {
        let sites = InjectionSite::all();
        assert_eq!(sites.len(), 8);
        let meta_count = sites.iter().filter(|s| s.kind == SiteKind::Metadata).count();
        assert_eq!(meta_count, 3, "INT, BFP, AFP metadata sites");
    }

    #[test]
    fn family_classification() {
        assert_eq!(FormatFamily::of(&FloatingPoint::fp16()), Some(FormatFamily::Fp));
        assert_eq!(FormatFamily::of(&FixedPoint::new(3, 4)), Some(FormatFamily::Fxp));
        assert_eq!(FormatFamily::of(&IntQuant::new(8)), Some(FormatFamily::Int));
        assert_eq!(FormatFamily::of(&BlockFloatingPoint::new(5, 5, 8)), Some(FormatFamily::Bfp));
        assert_eq!(FormatFamily::of(&AdaptivFloat::new(4, 3)), Some(FormatFamily::Afp));
    }

    #[test]
    fn metadata_sites_require_support() {
        let meta_fp = InjectionSite { family: FormatFamily::Fp, kind: SiteKind::Metadata };
        assert!(!meta_fp.supported_by(&FloatingPoint::fp16()));
        let meta_int = InjectionSite { family: FormatFamily::Int, kind: SiteKind::Metadata };
        assert!(meta_int.supported_by(&IntQuant::new(8)));
    }

    #[test]
    fn display_names() {
        let s = InjectionSite { family: FormatFamily::Bfp, kind: SiteKind::Metadata };
        assert_eq!(s.to_string(), "BFP/metadata");
    }
}
