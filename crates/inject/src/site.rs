//! The paper's taxonomy of injection sites: 8 single-bit error sites
//! informed by the number-format representations (§III-B, Table II).

use formats::NumberFormat;
use std::fmt;

/// Whether a flip lands in a data value or in hardware metadata.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SiteKind {
    /// A bit of one element's encoded value.
    Value,
    /// A bit of a metadata register (scale / shared exponent / bias).
    Metadata,
}

impl SiteKind {
    /// The stable lowercase label used in trace records and manifests.
    pub fn as_str(&self) -> &'static str {
        match self {
            SiteKind::Value => "value",
            SiteKind::Metadata => "metadata",
        }
    }
}

/// The format family a site belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FormatFamily {
    /// Generic floating point.
    Fp,
    /// Fixed point.
    Fxp,
    /// Integer quantisation.
    Int,
    /// Block floating point.
    Bfp,
    /// AdaptivFloat.
    Afp,
}

impl FormatFamily {
    /// Classifies a concrete format by its name prefix.
    pub fn of(format: &dyn NumberFormat) -> Option<FormatFamily> {
        let n = format.name();
        if n.starts_with("fp_") {
            Some(FormatFamily::Fp)
        } else if n.starts_with("fxp_") {
            Some(FormatFamily::Fxp)
        } else if n.starts_with("int") {
            Some(FormatFamily::Int)
        } else if n.starts_with("bfp_") {
            Some(FormatFamily::Bfp)
        } else if n.starts_with("afp_") {
            Some(FormatFamily::Afp)
        } else {
            None
        }
    }
}

/// One of the paper's 8 single-bit injection sites.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct InjectionSite {
    /// Format family.
    pub family: FormatFamily,
    /// Value or metadata.
    pub kind: SiteKind,
}

impl InjectionSite {
    /// All 8 sites studied in the paper: value flips for all 5 families,
    /// metadata flips for INT, BFP, and AFP.
    pub fn all() -> [InjectionSite; 8] {
        use FormatFamily::*;
        use SiteKind::*;
        [
            InjectionSite { family: Fp, kind: Value },
            InjectionSite { family: Fxp, kind: Value },
            InjectionSite { family: Int, kind: Value },
            InjectionSite { family: Bfp, kind: Value },
            InjectionSite { family: Afp, kind: Value },
            InjectionSite { family: Int, kind: Metadata },
            InjectionSite { family: Bfp, kind: Metadata },
            InjectionSite { family: Afp, kind: Metadata },
        ]
    }

    /// Whether `format` supports this site.
    pub fn supported_by(&self, format: &dyn NumberFormat) -> bool {
        FormatFamily::of(format) == Some(self.family)
            && (self.kind == SiteKind::Value || format.supports_metadata_injection())
    }
}

/// Bit-position sampling policy for value-site faults.
///
/// MPGemmFI's observation (PAPERS.md) is that exponent-bit faults dominate
/// outcome severity, so uniform bit sampling spends most trials on benign
/// mantissa flips. [`BitSampler::Stratified`] splits the bit positions of
/// one encoded value into a *critical* stratum (the exponent field when the
/// format has one, otherwise the sign + high-order bits) and the rest, and
/// oversamples the critical stratum. Unbiased population estimates are
/// recovered downstream by re-weighting per-stratum statistics with the
/// strata's population weights ([`BitStrata::population_weight`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BitSampler {
    /// Uniform over all bit positions — draw-for-draw identical to the
    /// historical per-trial sampling path.
    Uniform,
    /// Oversample the critical stratum with probability `critical_mass`
    /// (must be in `(0, 1)`); the remaining mass samples the other bits.
    Stratified {
        /// Probability that a trial lands in the critical stratum.
        critical_mass: f64,
    },
}

impl BitSampler {
    /// The stable lowercase label used in manifests and CLI flags.
    pub fn as_str(&self) -> &'static str {
        match self {
            BitSampler::Uniform => "uniform",
            BitSampler::Stratified { .. } => "stratified",
        }
    }
}

/// The split of one value word's bit positions into a critical stratum and
/// the rest (see [`BitSampler`]). Stratum 0 is critical, stratum 1 the
/// remainder; either may be empty only if the word is 1 bit wide.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitStrata {
    /// Contiguous critical bit positions, 0 = MSB.
    pub critical: std::ops::Range<usize>,
    /// Total bits per value word.
    pub width: usize,
}

impl BitStrata {
    /// Builds the strata for a format's value words: the exponent field
    /// when the format reports one, otherwise the sign bit plus the top
    /// quarter of the word (the MSB-dominance fallback for formats whose
    /// magnitude weight decays monotonically with bit position).
    pub fn for_format(format: &dyn NumberFormat) -> BitStrata {
        let width = format.bit_width() as usize;
        let critical = match format.exponent_field() {
            Some(r) if !r.is_empty() && r.end <= width => r,
            _ => 0..(1 + width / 4).min(width),
        };
        BitStrata { critical, width }
    }

    /// Number of bit positions in stratum `s` (0 = critical, 1 = rest).
    pub fn len(&self, s: usize) -> usize {
        match s {
            0 => self.critical.len(),
            1 => self.width - self.critical.len(),
            _ => panic!("bit strata have exactly 2 strata, got index {s}"),
        }
    }

    /// The fraction of all bit positions that stratum `s` covers — the
    /// weight that makes per-stratum means recombine into an unbiased
    /// uniform-population estimate.
    pub fn population_weight(&self, s: usize) -> f64 {
        self.len(s) as f64 / self.width as f64
    }

    /// The stratum (0 or 1) a concrete bit position falls in.
    pub fn stratum_of(&self, bit: usize) -> usize {
        usize::from(!self.critical.contains(&bit))
    }

    /// Maps a within-stratum offset to an absolute bit position.
    ///
    /// # Panics
    ///
    /// Panics if `offset` is out of range for the stratum.
    pub fn bit_at(&self, s: usize, offset: usize) -> usize {
        assert!(offset < self.len(s), "offset {offset} out of range for stratum {s}");
        match s {
            0 => self.critical.start + offset,
            _ => {
                if offset < self.critical.start {
                    offset
                } else {
                    offset - self.critical.start + self.critical.end
                }
            }
        }
    }
}

impl fmt::Display for InjectionSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let fam = match self.family {
            FormatFamily::Fp => "FP",
            FormatFamily::Fxp => "FxP",
            FormatFamily::Int => "INT",
            FormatFamily::Bfp => "BFP",
            FormatFamily::Afp => "AFP",
        };
        let kind = match self.kind {
            SiteKind::Value => "value",
            SiteKind::Metadata => "metadata",
        };
        write!(f, "{fam}/{kind}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use formats::{AdaptivFloat, BlockFloatingPoint, FixedPoint, FloatingPoint, IntQuant};

    #[test]
    fn exactly_eight_sites() {
        let sites = InjectionSite::all();
        assert_eq!(sites.len(), 8);
        let meta_count = sites.iter().filter(|s| s.kind == SiteKind::Metadata).count();
        assert_eq!(meta_count, 3, "INT, BFP, AFP metadata sites");
    }

    #[test]
    fn family_classification() {
        assert_eq!(FormatFamily::of(&FloatingPoint::fp16()), Some(FormatFamily::Fp));
        assert_eq!(FormatFamily::of(&FixedPoint::new(3, 4)), Some(FormatFamily::Fxp));
        assert_eq!(FormatFamily::of(&IntQuant::new(8)), Some(FormatFamily::Int));
        assert_eq!(FormatFamily::of(&BlockFloatingPoint::new(5, 5, 8)), Some(FormatFamily::Bfp));
        assert_eq!(FormatFamily::of(&AdaptivFloat::new(4, 3)), Some(FormatFamily::Afp));
    }

    #[test]
    fn metadata_sites_require_support() {
        let meta_fp = InjectionSite { family: FormatFamily::Fp, kind: SiteKind::Metadata };
        assert!(!meta_fp.supported_by(&FloatingPoint::fp16()));
        let meta_int = InjectionSite { family: FormatFamily::Int, kind: SiteKind::Metadata };
        assert!(meta_int.supported_by(&IntQuant::new(8)));
    }

    #[test]
    fn strata_from_exponent_field() {
        // FP e4m3: [sign | e4 | m3] → critical = bits 1..5.
        let strata = BitStrata::for_format(&FloatingPoint::new(4, 3));
        assert_eq!(strata, BitStrata { critical: 1..5, width: 8 });
        assert_eq!(strata.len(0), 4);
        assert_eq!(strata.len(1), 4);
        assert!((strata.population_weight(0) - 0.5).abs() < 1e-12);
        // INT8 has no exponent field → sign + top quarter fallback.
        let int = BitStrata::for_format(&IntQuant::new(8));
        assert_eq!(int.critical, 0..3);
    }

    #[test]
    fn strata_offset_mapping_is_a_bijection() {
        let strata = BitStrata { critical: 2..5, width: 9 };
        let mut seen = [false; 9];
        for s in 0..2 {
            for o in 0..strata.len(s) {
                let bit = strata.bit_at(s, o);
                assert!(!seen[bit], "bit {bit} mapped twice");
                assert_eq!(strata.stratum_of(bit), s);
                seen[bit] = true;
            }
        }
        assert!(seen.iter().all(|&b| b), "offset mapping must cover every bit");
    }

    #[test]
    fn display_names() {
        let s = InjectionSite { family: FormatFamily::Bfp, kind: SiteKind::Metadata };
        assert_eq!(s.to_string(), "BFP/metadata");
    }
}
