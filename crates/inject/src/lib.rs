#![warn(missing_docs)]

//! # inject — bit-flip fault injection for number formats
//!
//! The paper's error-injection machinery: single- and multi-bit flips in
//! data values (Method 3 → flip → Method 4) and — uniquely — in the
//! hardware *metadata* of emerging formats (INT scale factors, BFP shared
//! exponents, AFP exponent biases). Eight injection sites in total
//! ([`InjectionSite::all`]), matching §III-B.
//!
//! Also provides the toggle-able [`RangeProfile`] detector of §V-B, which
//! clamps faulty activations back into profiled per-layer ranges.
//!
//! # Examples
//!
//! ```
//! use formats::{BlockFloatingPoint, NumberFormat};
//! use inject::flip_metadata;
//! use tensor::Tensor;
//!
//! let bfp = BlockFloatingPoint::new(5, 5, 4);
//! let mut q = bfp.real_to_format_tensor(&Tensor::ones([8]));
//! // Corrupt block 0's shared exponent: all 4 of its values scale at once
//! // (a single hardware bit behaving as a multi-bit data error).
//! let record = flip_metadata(&bfp, &mut q, 0, 4);
//! assert_ne!(record.old, record.new);
//! ```

mod flip;
mod injector;
mod range;
mod site;

pub use flip::{flip_metadata, flip_value, flip_value_multi, MetadataFlip, ValueFlip};
pub use injector::{EmptyFaultSpace, Fault, Injector};
pub use range::RangeProfile;
pub use site::{BitSampler, BitStrata, FormatFamily, InjectionSite, SiteKind};
