//! The toggle-able range detector (§V-B), modelled on Ranger-style
//! activation clamping: profile per-layer output ranges on clean runs,
//! then clamp faulty activations back into the profiled range.

use std::sync::RwLock;
use tensor::Tensor;

/// Per-layer activation range profile.
///
/// Build it by observing clean inferences; apply it with
/// [`RangeProfile::clamp`] during faulty inferences. Interior mutability
/// (an `RwLock`, so a profile shared via `Arc` is `Sync` for parallel
/// campaign workers) lets a shared hook update the profile during
/// profiling passes; faulty inferences only take the read lock.
#[derive(Debug, Default)]
pub struct RangeProfile {
    ranges: RwLock<Vec<Option<(f32, f32)>>>,
}

impl RangeProfile {
    /// Creates an empty profile.
    pub fn new() -> Self {
        Self::default()
    }

    fn read(&self) -> std::sync::RwLockReadGuard<'_, Vec<Option<(f32, f32)>>> {
        self.ranges.read().unwrap_or_else(|p| p.into_inner())
    }

    /// Records the min/max of `t` for `layer`, widening any existing range.
    pub fn observe(&self, layer: usize, t: &Tensor) {
        let mut ranges = self.ranges.write().unwrap_or_else(|p| p.into_inner());
        if ranges.len() <= layer {
            ranges.resize(layer + 1, None);
        }
        let (lo, hi) = (t.min_all(), t.max_all());
        ranges[layer] = Some(match ranges[layer] {
            Some((l, h)) => (l.min(lo), h.max(hi)),
            None => (lo, hi),
        });
    }

    /// The profiled range of `layer`, if any.
    pub fn range(&self, layer: usize) -> Option<(f32, f32)> {
        self.read().get(layer).copied().flatten()
    }

    /// Number of profiled layers.
    pub fn len(&self) -> usize {
        self.read().len()
    }

    /// True if nothing has been profiled.
    pub fn is_empty(&self) -> bool {
        self.read().iter().all(Option::is_none)
    }

    /// A point-in-time copy of every profiled layer range, as
    /// `(layer, min, max)` triples — the payload of the observability
    /// layer's range-profile snapshot events.
    pub fn snapshot(&self) -> Vec<(usize, f32, f32)> {
        self.read()
            .iter()
            .enumerate()
            .filter_map(|(layer, r)| r.map(|(lo, hi)| (layer, lo, hi)))
            .collect()
    }

    /// Clamps `t` into `layer`'s profiled range (identity if unprofiled).
    /// Non-finite values are pulled to the nearest bound, so a NaN/Inf
    /// produced by an exponent flip is suppressed — the detector's purpose.
    ///
    /// Elementwise over fixed [`CLAMP_CHUNK`]-sized chunks on the worker
    /// pool, so detect-mode hooks scale like the quantise pass and the
    /// output is byte-identical for every thread budget.
    pub fn clamp(&self, layer: usize, t: &Tensor) -> Tensor {
        match self.range(layer) {
            None => t.clone(),
            Some((lo, hi)) => {
                let src = t.as_slice();
                let mut out = vec![0.0f32; src.len()];
                let _serial =
                    (src.len() < CLAMP_PAR_MIN_ELEMS).then(|| tensor::parallel::with_threads(1));
                tensor::parallel::par_chunks_mut(&mut out, CLAMP_CHUNK, |i, chunk| {
                    let base = i * CLAMP_CHUNK;
                    for (j, v) in chunk.iter_mut().enumerate() {
                        let x = src[base + j];
                        *v = if x.is_nan() { hi } else { x.clamp(lo, hi) };
                    }
                });
                Tensor::from_vec(out, t.shape().clone())
            }
        }
    }
}

/// Elements per parallel clamp work unit. Fixed — never derived from the
/// thread count — which keeps clamped outputs thread-count invariant.
const CLAMP_CHUNK: usize = 4096;

/// Below this many elements the clamp stays on the calling thread —
/// per-dispatch thread spawn costs more than the clamp itself for the
/// evaluation models' layer outputs (same rationale and value as the
/// quantise chunking's threshold in `formats`). Latency-only: chunk
/// boundaries, and therefore results, are identical either way.
const CLAMP_PAR_MIN_ELEMS: usize = 1 << 20;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observe_widens_range() {
        let p = RangeProfile::new();
        p.observe(0, &Tensor::from_vec(vec![-1.0, 2.0], [2]));
        p.observe(0, &Tensor::from_vec(vec![-3.0, 1.0], [2]));
        assert_eq!(p.range(0), Some((-3.0, 2.0)));
    }

    #[test]
    fn clamp_pulls_outliers_in() {
        let p = RangeProfile::new();
        p.observe(1, &Tensor::from_vec(vec![0.0, 10.0], [2]));
        let faulty = Tensor::from_vec(vec![-5.0, 3.0, 1e30], [3]);
        let clamped = p.clamp(1, &faulty);
        assert_eq!(clamped.as_slice(), &[0.0, 3.0, 10.0]);
    }

    #[test]
    fn clamp_suppresses_nan_and_inf() {
        let p = RangeProfile::new();
        p.observe(0, &Tensor::from_vec(vec![-1.0, 1.0], [2]));
        let faulty = Tensor::from_vec(vec![f32::NAN, f32::INFINITY, f32::NEG_INFINITY], [3]);
        let clamped = p.clamp(0, &faulty);
        assert_eq!(clamped.as_slice(), &[1.0, 1.0, -1.0]);
    }

    #[test]
    fn unprofiled_layer_is_identity() {
        let p = RangeProfile::new();
        let x = Tensor::from_vec(vec![1e30, -1e30], [2]);
        assert_eq!(p.clamp(7, &x), x);
    }

    #[test]
    fn clamp_is_thread_count_invariant() {
        let p = RangeProfile::new();
        p.observe(0, &Tensor::from_vec(vec![-2.0, 2.0], [2]));
        // Above the serial guard so the parallel dispatch path really
        // runs, ragged so the partial tail chunk is exercised.
        let n = CLAMP_PAR_MIN_ELEMS + 3 * CLAMP_CHUNK + 17;
        let v: Vec<f32> = (0..n)
            .map(|i| match i % 5 {
                0 => f32::NAN,
                1 => f32::INFINITY,
                2 => -1e30,
                _ => (i as f32) * 1e-3 - 6.0,
            })
            .collect();
        let t = Tensor::from_vec(v, [n]);
        let reference = {
            let _g = tensor::parallel::with_threads(1);
            p.clamp(0, &t)
        };
        for threads in [2usize, 8] {
            let _g = tensor::parallel::with_threads(threads);
            let got = p.clamp(0, &t);
            assert_eq!(got.as_slice(), reference.as_slice(), "threads={threads}");
        }
    }

    #[test]
    fn independent_layers() {
        let p = RangeProfile::new();
        p.observe(0, &Tensor::from_vec(vec![0.0, 1.0], [2]));
        p.observe(3, &Tensor::from_vec(vec![-9.0, 9.0], [2]));
        assert_eq!(p.range(0), Some((0.0, 1.0)));
        assert_eq!(p.range(1), None);
        assert_eq!(p.range(3), Some((-9.0, 9.0)));
        assert_eq!(p.len(), 4);
    }
}
