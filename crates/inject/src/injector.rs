//! Random fault sampling for injection campaigns: where to flip, seeded and
//! reproducible (the role PyTorchFI plays for the paper's tool).

use crate::flip::{flip_metadata, flip_value, MetadataFlip, ValueFlip};
use crate::site::{BitSampler, BitStrata, SiteKind};
use formats::{NumberFormat, Quantized};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A sampled fault location, before execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fault {
    /// Value or metadata flip.
    pub kind: SiteKind,
    /// Element index (value flips) or word index (metadata flips).
    pub index: usize,
    /// Bit position, 0 = MSB.
    pub bit: usize,
}

/// Why a fault could not be sampled: the requested fault space is empty.
///
/// Returned by the `try_*` sampling methods; the panicking variants use
/// its [`Display`](std::fmt::Display) text as their panic message, so an
/// empty tensor is no longer misreported as "format has no metadata words".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EmptyFaultSpace {
    /// The tensor has zero elements, so there are no value bits to flip.
    NoElements,
    /// The data word width is zero bits.
    ZeroBitWidth,
    /// The format carries no hardware metadata (e.g. plain FP or FxP).
    NoMetadataWords,
    /// The format does carry metadata, but quantising a 0-element tensor
    /// produced zero metadata words, so there is nothing to flip.
    EmptyTensorMetadata,
}

impl std::fmt::Display for EmptyFaultSpace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EmptyFaultSpace::NoElements => {
                write!(f, "empty fault space: tensor has 0 elements")
            }
            EmptyFaultSpace::ZeroBitWidth => {
                write!(f, "empty fault space: data width is 0 bits")
            }
            EmptyFaultSpace::NoMetadataWords => {
                write!(f, "empty fault space: format has no metadata words")
            }
            EmptyFaultSpace::EmptyTensorMetadata => {
                write!(
                    f,
                    "empty fault space: 0-element tensor produced no metadata words \
                     (the format does carry metadata; quantise a non-empty tensor)"
                )
            }
        }
    }
}

impl std::error::Error for EmptyFaultSpace {}

/// Seeded sampler of fault locations.
///
/// # Examples
///
/// ```
/// use inject::Injector;
/// use formats::{FloatingPoint, NumberFormat};
/// use tensor::Tensor;
///
/// let fp = FloatingPoint::fp16();
/// let mut q = fp.real_to_format_tensor(&Tensor::ones([16]));
/// let mut inj = Injector::new(42);
/// let record = inj.inject_random_value(&fp, &mut q);
/// assert!(record.element < 16);
/// ```
#[derive(Debug)]
pub struct Injector {
    rng: StdRng,
}

impl Injector {
    /// Creates an injector with a deterministic seed.
    pub fn new(seed: u64) -> Self {
        Injector { rng: StdRng::seed_from_u64(seed) }
    }

    /// Samples a uniform value-bit fault for a tensor of `numel` elements
    /// in a `bit_width`-bit format, or reports why the space is empty.
    pub fn try_sample_value_fault(
        &mut self,
        numel: usize,
        bit_width: usize,
    ) -> Result<Fault, EmptyFaultSpace> {
        if numel == 0 {
            return Err(EmptyFaultSpace::NoElements);
        }
        if bit_width == 0 {
            return Err(EmptyFaultSpace::ZeroBitWidth);
        }
        Ok(Fault {
            kind: SiteKind::Value,
            index: self.rng.gen_range(0..numel),
            bit: self.rng.gen_range(0..bit_width),
        })
    }

    /// Samples a uniform value-bit fault for a tensor of `numel` elements
    /// in a `bit_width`-bit format.
    ///
    /// # Panics
    ///
    /// Panics if `numel` or `bit_width` is zero.
    pub fn sample_value_fault(&mut self, numel: usize, bit_width: usize) -> Fault {
        match self.try_sample_value_fault(numel, bit_width) {
            Ok(f) => f,
            Err(e) => panic!("{e}"),
        }
    }

    /// Samples a value-bit fault under an explicit bit-position sampling
    /// policy, returning the fault and the stratum (0 = critical, 1 = rest)
    /// it landed in.
    ///
    /// With [`BitSampler::Uniform`] the RNG draw sequence is **identical**
    /// to [`Injector::try_sample_value_fault`] (element, then bit), so a
    /// campaign that switches to this entry point reproduces historical
    /// fault sequences bit-for-bit under the same seeds.
    pub fn try_sample_value_fault_with(
        &mut self,
        numel: usize,
        sampler: &BitSampler,
        strata: &BitStrata,
    ) -> Result<(Fault, usize), EmptyFaultSpace> {
        if numel == 0 {
            return Err(EmptyFaultSpace::NoElements);
        }
        if strata.width == 0 {
            return Err(EmptyFaultSpace::ZeroBitWidth);
        }
        let index = self.rng.gen_range(0..numel);
        let bit = match *sampler {
            BitSampler::Uniform => self.rng.gen_range(0..strata.width),
            BitSampler::Stratified { critical_mass } => {
                assert!(
                    critical_mass > 0.0 && critical_mass < 1.0,
                    "critical_mass must be in (0, 1), got {critical_mass}"
                );
                let u: f64 = self.rng.gen();
                // Degenerate strata (an empty critical field or a word that
                // is all critical) collapse to the non-empty stratum.
                let s = if (u < critical_mass && strata.len(0) > 0) || strata.len(1) == 0 {
                    0
                } else {
                    1
                };
                strata.bit_at(s, self.rng.gen_range(0..strata.len(s)))
            }
        };
        Ok((Fault { kind: SiteKind::Value, index, bit }, strata.stratum_of(bit)))
    }

    /// Samples one value fault per trial seed, each from its own fresh
    /// RNG — draw-for-draw identical to running the per-trial path once per
    /// seed, which is what makes batched campaigns byte-identical to serial
    /// ones.
    ///
    /// The fault space is validated up front, so an empty batch (or a batch
    /// of one) over an empty space reports the same typed
    /// [`EmptyFaultSpace`] error the per-trial path would.
    pub fn try_sample_value_fault_batch(
        seeds: &[u64],
        numel: usize,
        sampler: &BitSampler,
        strata: &BitStrata,
    ) -> Result<Vec<(Fault, usize)>, EmptyFaultSpace> {
        if numel == 0 {
            return Err(EmptyFaultSpace::NoElements);
        }
        if strata.width == 0 {
            return Err(EmptyFaultSpace::ZeroBitWidth);
        }
        seeds
            .iter()
            .map(|&s| Injector::new(s).try_sample_value_fault_with(numel, sampler, strata))
            .collect()
    }

    /// Samples one metadata fault per trial seed, each from its own fresh
    /// RNG (see [`Injector::try_sample_value_fault_batch`]). The word space
    /// is validated up front so empty batches report the same typed error
    /// as the per-trial path.
    pub fn try_sample_metadata_fault_batch(
        seeds: &[u64],
        words: usize,
        word_width: usize,
    ) -> Result<Vec<Fault>, EmptyFaultSpace> {
        if words == 0 || word_width == 0 {
            return Err(EmptyFaultSpace::NoMetadataWords);
        }
        seeds
            .iter()
            .map(|&s| Injector::new(s).try_sample_metadata_fault(words, word_width))
            .collect()
    }

    /// Samples a uniform metadata-bit fault given word count and width, or
    /// reports why the space is empty.
    pub fn try_sample_metadata_fault(
        &mut self,
        words: usize,
        word_width: usize,
    ) -> Result<Fault, EmptyFaultSpace> {
        if words == 0 || word_width == 0 {
            return Err(EmptyFaultSpace::NoMetadataWords);
        }
        Ok(Fault {
            kind: SiteKind::Metadata,
            index: self.rng.gen_range(0..words),
            bit: self.rng.gen_range(0..word_width),
        })
    }

    /// Samples a uniform metadata-bit fault given word count and width.
    ///
    /// # Panics
    ///
    /// Panics if `words` or `word_width` is zero.
    pub fn sample_metadata_fault(&mut self, words: usize, word_width: usize) -> Fault {
        match self.try_sample_metadata_fault(words, word_width) {
            Ok(f) => f,
            Err(e) => panic!("{e}"),
        }
    }

    /// Samples and executes a random single-bit value flip on `q`, or
    /// reports an empty fault space (0-element tensor).
    pub fn try_inject_random_value(
        &mut self,
        format: &dyn NumberFormat,
        q: &mut Quantized,
    ) -> Result<ValueFlip, EmptyFaultSpace> {
        let f = self.try_sample_value_fault(q.values.numel(), format.bit_width() as usize)?;
        Ok(flip_value(format, q, f.index, f.bit))
    }

    /// Samples and executes a random single-bit value flip on `q`.
    ///
    /// # Panics
    ///
    /// Panics if the tensor has 0 elements.
    pub fn inject_random_value(
        &mut self,
        format: &dyn NumberFormat,
        q: &mut Quantized,
    ) -> ValueFlip {
        match self.try_inject_random_value(format, q) {
            Ok(r) => r,
            Err(e) => panic!("{e}"),
        }
    }

    /// Samples and executes a random single-bit metadata flip on `q`, or
    /// reports an empty fault space — distinguishing a format with no
    /// metadata from a metadata-carrying format handed a 0-element tensor
    /// (which quantises to zero metadata words).
    pub fn try_inject_random_metadata(
        &mut self,
        format: &dyn NumberFormat,
        q: &mut Quantized,
    ) -> Result<MetadataFlip, EmptyFaultSpace> {
        let f = self.try_sample_metadata_fault(q.meta.word_count(), q.meta.word_width()).map_err(
            |e| {
                if e == EmptyFaultSpace::NoMetadataWords
                    && format.supports_metadata_injection()
                    && q.values.numel() == 0
                {
                    EmptyFaultSpace::EmptyTensorMetadata
                } else {
                    e
                }
            },
        )?;
        Ok(flip_metadata(format, q, f.index, f.bit))
    }

    /// Samples and executes a random single-bit metadata flip on `q`.
    ///
    /// # Panics
    ///
    /// Panics if the format carries no metadata, or if the tensor is empty
    /// (zero metadata words).
    pub fn inject_random_metadata(
        &mut self,
        format: &dyn NumberFormat,
        q: &mut Quantized,
    ) -> MetadataFlip {
        match self.try_inject_random_metadata(format, q) {
            Ok(r) => r,
            Err(e) => panic!("{e}"),
        }
    }

    /// Access to the underlying RNG (for campaign-level sampling such as
    /// choosing a layer).
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use formats::{BlockFloatingPoint, FloatingPoint};
    use tensor::Tensor;

    #[test]
    fn deterministic_sampling() {
        let mut a = Injector::new(1);
        let mut b = Injector::new(1);
        for _ in 0..10 {
            assert_eq!(a.sample_value_fault(100, 8), b.sample_value_fault(100, 8));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Injector::new(1);
        let mut b = Injector::new(2);
        let fa: Vec<Fault> = (0..10).map(|_| a.sample_value_fault(1000, 32)).collect();
        let fb: Vec<Fault> = (0..10).map(|_| b.sample_value_fault(1000, 32)).collect();
        assert_ne!(fa, fb);
    }

    #[test]
    fn faults_stay_in_range() {
        let mut inj = Injector::new(3);
        for _ in 0..500 {
            let f = inj.sample_value_fault(17, 9);
            assert!(f.index < 17);
            assert!(f.bit < 9);
        }
    }

    #[test]
    fn random_value_injection_changes_at_most_one_element() {
        let fp = FloatingPoint::fp16();
        let x = Tensor::ones([32]);
        let mut inj = Injector::new(7);
        for _ in 0..20 {
            let mut q = fp.real_to_format_tensor(&x);
            let rec = inj.inject_random_value(&fp, &mut q);
            let changed = q
                .values
                .as_slice()
                .iter()
                .enumerate()
                .filter(|(i, &v)| v != x.as_slice()[*i])
                .count();
            assert!(changed <= 1, "one flip changed {changed} elements");
            if changed == 1 {
                assert_ne!(rec.old, rec.new);
            }
        }
    }

    #[test]
    fn uniform_sampler_reproduces_historical_draws() {
        // The sampler-aware entry point with `Uniform` must consume the RNG
        // exactly like the historical path: same seed → same faults.
        let strata = BitStrata { critical: 1..5, width: 8 };
        for seed in 0..20 {
            let mut a = Injector::new(seed);
            let mut b = Injector::new(seed);
            for _ in 0..5 {
                let legacy = a.sample_value_fault(37, 8);
                let (f, s) =
                    b.try_sample_value_fault_with(37, &BitSampler::Uniform, &strata).unwrap();
                assert_eq!(legacy, f);
                assert_eq!(s, strata.stratum_of(f.bit));
            }
        }
    }

    #[test]
    fn stratified_sampler_oversamples_critical_bits() {
        let strata = BitStrata { critical: 1..5, width: 16 }; // 4/16 of the word
        let sampler = BitSampler::Stratified { critical_mass: 0.75 };
        let mut inj = Injector::new(11);
        let mut critical = 0usize;
        const N: usize = 2000;
        for _ in 0..N {
            let (f, s) = inj.try_sample_value_fault_with(64, &sampler, &strata).unwrap();
            assert!(f.bit < 16);
            assert_eq!(s, strata.stratum_of(f.bit));
            critical += usize::from(s == 0);
        }
        let frac = critical as f64 / N as f64;
        assert!(
            (frac - 0.75).abs() < 0.05,
            "critical stratum got {frac:.3} of trials, wanted ~0.75 (uniform would give 0.25)"
        );
    }

    #[test]
    fn batch_of_one_matches_per_trial_path() {
        let strata = BitStrata { critical: 1..4, width: 9 };
        for seed in [3u64, 17, 92] {
            let batch =
                Injector::try_sample_value_fault_batch(&[seed], 23, &BitSampler::Uniform, &strata)
                    .unwrap();
            let solo = Injector::new(seed).sample_value_fault(23, 9);
            assert_eq!(batch, vec![(solo, strata.stratum_of(solo.bit))]);
            let mbatch = Injector::try_sample_metadata_fault_batch(&[seed], 4, 5).unwrap();
            let msolo = Injector::new(seed).sample_metadata_fault(4, 5);
            assert_eq!(mbatch, vec![msolo]);
        }
    }

    #[test]
    fn empty_batches_report_typed_fault_space_errors() {
        // An empty batch over an empty fault space must surface the same
        // typed error the per-trial path reports — not silently succeed.
        let strata = BitStrata { critical: 0..2, width: 8 };
        let err = Injector::try_sample_value_fault_batch(&[], 0, &BitSampler::Uniform, &strata)
            .unwrap_err();
        assert_eq!(err, EmptyFaultSpace::NoElements);
        let zero_width = BitStrata { critical: 0..0, width: 0 };
        let err =
            Injector::try_sample_value_fault_batch(&[1], 5, &BitSampler::Uniform, &zero_width)
                .unwrap_err();
        assert_eq!(err, EmptyFaultSpace::ZeroBitWidth);
        let err = Injector::try_sample_metadata_fault_batch(&[], 0, 5).unwrap_err();
        assert_eq!(err, EmptyFaultSpace::NoMetadataWords);
        // A non-empty space with an empty batch is simply zero faults.
        let ok = Injector::try_sample_value_fault_batch(&[], 5, &BitSampler::Uniform, &strata);
        assert_eq!(ok.unwrap(), vec![]);
    }

    #[test]
    fn law_empty_fault_space_clear_errors() {
        // A 0-element tensor must report an empty fault space explicitly —
        // not the misleading "format has no metadata words" (the format
        // *does* carry metadata; the tensor just produced zero words).
        let bfp = BlockFloatingPoint::new(5, 5, 4);
        let mut inj = Injector::new(1);
        let mut q = bfp.real_to_format_tensor(&Tensor::zeros([0]));
        let err = inj.try_inject_random_metadata(&bfp, &mut q).unwrap_err();
        assert_eq!(err, EmptyFaultSpace::EmptyTensorMetadata);
        assert!(err.to_string().contains("0-element tensor"), "{err}");
        let err = inj.try_inject_random_value(&bfp, &mut q).unwrap_err();
        assert_eq!(err, EmptyFaultSpace::NoElements);
        // A format with no metadata at all reports that, even on a
        // non-empty tensor.
        let fp = FloatingPoint::fp16();
        let mut q = fp.real_to_format_tensor(&Tensor::ones([4]));
        let err = inj.try_inject_random_metadata(&fp, &mut q).unwrap_err();
        assert_eq!(err, EmptyFaultSpace::NoMetadataWords);
    }

    #[test]
    fn random_metadata_injection_targets_valid_word() {
        let bfp = BlockFloatingPoint::new(5, 5, 4);
        let x = Tensor::ones([16]); // 4 blocks
        let mut inj = Injector::new(9);
        for _ in 0..20 {
            let mut q = bfp.real_to_format_tensor(&x);
            let rec = inj.inject_random_metadata(&bfp, &mut q);
            assert!(rec.word < 4);
            assert!(rec.bit < 5);
        }
    }
}
