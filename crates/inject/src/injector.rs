//! Random fault sampling for injection campaigns: where to flip, seeded and
//! reproducible (the role PyTorchFI plays for the paper's tool).

use crate::flip::{flip_metadata, flip_value, MetadataFlip, ValueFlip};
use crate::site::SiteKind;
use formats::{NumberFormat, Quantized};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A sampled fault location, before execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fault {
    /// Value or metadata flip.
    pub kind: SiteKind,
    /// Element index (value flips) or word index (metadata flips).
    pub index: usize,
    /// Bit position, 0 = MSB.
    pub bit: usize,
}

/// Seeded sampler of fault locations.
///
/// # Examples
///
/// ```
/// use inject::Injector;
/// use formats::{FloatingPoint, NumberFormat};
/// use tensor::Tensor;
///
/// let fp = FloatingPoint::fp16();
/// let mut q = fp.real_to_format_tensor(&Tensor::ones([16]));
/// let mut inj = Injector::new(42);
/// let record = inj.inject_random_value(&fp, &mut q);
/// assert!(record.element < 16);
/// ```
#[derive(Debug)]
pub struct Injector {
    rng: StdRng,
}

impl Injector {
    /// Creates an injector with a deterministic seed.
    pub fn new(seed: u64) -> Self {
        Injector { rng: StdRng::seed_from_u64(seed) }
    }

    /// Samples a uniform value-bit fault for a tensor of `numel` elements
    /// in a `bit_width`-bit format.
    ///
    /// # Panics
    ///
    /// Panics if `numel` or `bit_width` is zero.
    pub fn sample_value_fault(&mut self, numel: usize, bit_width: usize) -> Fault {
        assert!(numel > 0 && bit_width > 0, "empty fault space");
        Fault {
            kind: SiteKind::Value,
            index: self.rng.gen_range(0..numel),
            bit: self.rng.gen_range(0..bit_width),
        }
    }

    /// Samples a uniform metadata-bit fault given word count and width.
    ///
    /// # Panics
    ///
    /// Panics if `words` or `word_width` is zero.
    pub fn sample_metadata_fault(&mut self, words: usize, word_width: usize) -> Fault {
        assert!(words > 0 && word_width > 0, "format has no metadata words");
        Fault {
            kind: SiteKind::Metadata,
            index: self.rng.gen_range(0..words),
            bit: self.rng.gen_range(0..word_width),
        }
    }

    /// Samples and executes a random single-bit value flip on `q`.
    pub fn inject_random_value(
        &mut self,
        format: &dyn NumberFormat,
        q: &mut Quantized,
    ) -> ValueFlip {
        let f = self.sample_value_fault(q.values.numel(), format.bit_width() as usize);
        flip_value(format, q, f.index, f.bit)
    }

    /// Samples and executes a random single-bit metadata flip on `q`.
    ///
    /// # Panics
    ///
    /// Panics if the format carries no metadata.
    pub fn inject_random_metadata(
        &mut self,
        format: &dyn NumberFormat,
        q: &mut Quantized,
    ) -> MetadataFlip {
        let f = self.sample_metadata_fault(q.meta.word_count(), q.meta.word_width());
        flip_metadata(format, q, f.index, f.bit)
    }

    /// Access to the underlying RNG (for campaign-level sampling such as
    /// choosing a layer).
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use formats::{BlockFloatingPoint, FloatingPoint};
    use tensor::Tensor;

    #[test]
    fn deterministic_sampling() {
        let mut a = Injector::new(1);
        let mut b = Injector::new(1);
        for _ in 0..10 {
            assert_eq!(a.sample_value_fault(100, 8), b.sample_value_fault(100, 8));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Injector::new(1);
        let mut b = Injector::new(2);
        let fa: Vec<Fault> = (0..10).map(|_| a.sample_value_fault(1000, 32)).collect();
        let fb: Vec<Fault> = (0..10).map(|_| b.sample_value_fault(1000, 32)).collect();
        assert_ne!(fa, fb);
    }

    #[test]
    fn faults_stay_in_range() {
        let mut inj = Injector::new(3);
        for _ in 0..500 {
            let f = inj.sample_value_fault(17, 9);
            assert!(f.index < 17);
            assert!(f.bit < 9);
        }
    }

    #[test]
    fn random_value_injection_changes_at_most_one_element() {
        let fp = FloatingPoint::fp16();
        let x = Tensor::ones([32]);
        let mut inj = Injector::new(7);
        for _ in 0..20 {
            let mut q = fp.real_to_format_tensor(&x);
            let rec = inj.inject_random_value(&fp, &mut q);
            let changed = q
                .values
                .as_slice()
                .iter()
                .enumerate()
                .filter(|(i, &v)| v != x.as_slice()[*i])
                .count();
            assert!(changed <= 1, "one flip changed {changed} elements");
            if changed == 1 {
                assert_ne!(rec.old, rec.new);
            }
        }
    }

    #[test]
    fn random_metadata_injection_targets_valid_word() {
        let bfp = BlockFloatingPoint::new(5, 5, 4);
        let x = Tensor::ones([16]); // 4 blocks
        let mut inj = Injector::new(9);
        for _ in 0..20 {
            let mut q = bfp.real_to_format_tensor(&x);
            let rec = inj.inject_random_metadata(&bfp, &mut q);
            assert!(rec.word < 4);
            assert!(rec.bit < 5);
        }
    }
}
