//! Random fault sampling for injection campaigns: where to flip, seeded and
//! reproducible (the role PyTorchFI plays for the paper's tool).

use crate::flip::{flip_metadata, flip_value, MetadataFlip, ValueFlip};
use crate::site::SiteKind;
use formats::{NumberFormat, Quantized};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A sampled fault location, before execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fault {
    /// Value or metadata flip.
    pub kind: SiteKind,
    /// Element index (value flips) or word index (metadata flips).
    pub index: usize,
    /// Bit position, 0 = MSB.
    pub bit: usize,
}

/// Why a fault could not be sampled: the requested fault space is empty.
///
/// Returned by the `try_*` sampling methods; the panicking variants use
/// its [`Display`](std::fmt::Display) text as their panic message, so an
/// empty tensor is no longer misreported as "format has no metadata words".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EmptyFaultSpace {
    /// The tensor has zero elements, so there are no value bits to flip.
    NoElements,
    /// The data word width is zero bits.
    ZeroBitWidth,
    /// The format carries no hardware metadata (e.g. plain FP or FxP).
    NoMetadataWords,
    /// The format does carry metadata, but quantising a 0-element tensor
    /// produced zero metadata words, so there is nothing to flip.
    EmptyTensorMetadata,
}

impl std::fmt::Display for EmptyFaultSpace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EmptyFaultSpace::NoElements => {
                write!(f, "empty fault space: tensor has 0 elements")
            }
            EmptyFaultSpace::ZeroBitWidth => {
                write!(f, "empty fault space: data width is 0 bits")
            }
            EmptyFaultSpace::NoMetadataWords => {
                write!(f, "empty fault space: format has no metadata words")
            }
            EmptyFaultSpace::EmptyTensorMetadata => {
                write!(
                    f,
                    "empty fault space: 0-element tensor produced no metadata words \
                     (the format does carry metadata; quantise a non-empty tensor)"
                )
            }
        }
    }
}

impl std::error::Error for EmptyFaultSpace {}

/// Seeded sampler of fault locations.
///
/// # Examples
///
/// ```
/// use inject::Injector;
/// use formats::{FloatingPoint, NumberFormat};
/// use tensor::Tensor;
///
/// let fp = FloatingPoint::fp16();
/// let mut q = fp.real_to_format_tensor(&Tensor::ones([16]));
/// let mut inj = Injector::new(42);
/// let record = inj.inject_random_value(&fp, &mut q);
/// assert!(record.element < 16);
/// ```
#[derive(Debug)]
pub struct Injector {
    rng: StdRng,
}

impl Injector {
    /// Creates an injector with a deterministic seed.
    pub fn new(seed: u64) -> Self {
        Injector { rng: StdRng::seed_from_u64(seed) }
    }

    /// Samples a uniform value-bit fault for a tensor of `numel` elements
    /// in a `bit_width`-bit format, or reports why the space is empty.
    pub fn try_sample_value_fault(
        &mut self,
        numel: usize,
        bit_width: usize,
    ) -> Result<Fault, EmptyFaultSpace> {
        if numel == 0 {
            return Err(EmptyFaultSpace::NoElements);
        }
        if bit_width == 0 {
            return Err(EmptyFaultSpace::ZeroBitWidth);
        }
        Ok(Fault {
            kind: SiteKind::Value,
            index: self.rng.gen_range(0..numel),
            bit: self.rng.gen_range(0..bit_width),
        })
    }

    /// Samples a uniform value-bit fault for a tensor of `numel` elements
    /// in a `bit_width`-bit format.
    ///
    /// # Panics
    ///
    /// Panics if `numel` or `bit_width` is zero.
    pub fn sample_value_fault(&mut self, numel: usize, bit_width: usize) -> Fault {
        match self.try_sample_value_fault(numel, bit_width) {
            Ok(f) => f,
            Err(e) => panic!("{e}"),
        }
    }

    /// Samples a uniform metadata-bit fault given word count and width, or
    /// reports why the space is empty.
    pub fn try_sample_metadata_fault(
        &mut self,
        words: usize,
        word_width: usize,
    ) -> Result<Fault, EmptyFaultSpace> {
        if words == 0 || word_width == 0 {
            return Err(EmptyFaultSpace::NoMetadataWords);
        }
        Ok(Fault {
            kind: SiteKind::Metadata,
            index: self.rng.gen_range(0..words),
            bit: self.rng.gen_range(0..word_width),
        })
    }

    /// Samples a uniform metadata-bit fault given word count and width.
    ///
    /// # Panics
    ///
    /// Panics if `words` or `word_width` is zero.
    pub fn sample_metadata_fault(&mut self, words: usize, word_width: usize) -> Fault {
        match self.try_sample_metadata_fault(words, word_width) {
            Ok(f) => f,
            Err(e) => panic!("{e}"),
        }
    }

    /// Samples and executes a random single-bit value flip on `q`, or
    /// reports an empty fault space (0-element tensor).
    pub fn try_inject_random_value(
        &mut self,
        format: &dyn NumberFormat,
        q: &mut Quantized,
    ) -> Result<ValueFlip, EmptyFaultSpace> {
        let f = self.try_sample_value_fault(q.values.numel(), format.bit_width() as usize)?;
        Ok(flip_value(format, q, f.index, f.bit))
    }

    /// Samples and executes a random single-bit value flip on `q`.
    ///
    /// # Panics
    ///
    /// Panics if the tensor has 0 elements.
    pub fn inject_random_value(
        &mut self,
        format: &dyn NumberFormat,
        q: &mut Quantized,
    ) -> ValueFlip {
        match self.try_inject_random_value(format, q) {
            Ok(r) => r,
            Err(e) => panic!("{e}"),
        }
    }

    /// Samples and executes a random single-bit metadata flip on `q`, or
    /// reports an empty fault space — distinguishing a format with no
    /// metadata from a metadata-carrying format handed a 0-element tensor
    /// (which quantises to zero metadata words).
    pub fn try_inject_random_metadata(
        &mut self,
        format: &dyn NumberFormat,
        q: &mut Quantized,
    ) -> Result<MetadataFlip, EmptyFaultSpace> {
        let f = self.try_sample_metadata_fault(q.meta.word_count(), q.meta.word_width()).map_err(
            |e| {
                if e == EmptyFaultSpace::NoMetadataWords
                    && format.supports_metadata_injection()
                    && q.values.numel() == 0
                {
                    EmptyFaultSpace::EmptyTensorMetadata
                } else {
                    e
                }
            },
        )?;
        Ok(flip_metadata(format, q, f.index, f.bit))
    }

    /// Samples and executes a random single-bit metadata flip on `q`.
    ///
    /// # Panics
    ///
    /// Panics if the format carries no metadata, or if the tensor is empty
    /// (zero metadata words).
    pub fn inject_random_metadata(
        &mut self,
        format: &dyn NumberFormat,
        q: &mut Quantized,
    ) -> MetadataFlip {
        match self.try_inject_random_metadata(format, q) {
            Ok(r) => r,
            Err(e) => panic!("{e}"),
        }
    }

    /// Access to the underlying RNG (for campaign-level sampling such as
    /// choosing a layer).
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use formats::{BlockFloatingPoint, FloatingPoint};
    use tensor::Tensor;

    #[test]
    fn deterministic_sampling() {
        let mut a = Injector::new(1);
        let mut b = Injector::new(1);
        for _ in 0..10 {
            assert_eq!(a.sample_value_fault(100, 8), b.sample_value_fault(100, 8));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Injector::new(1);
        let mut b = Injector::new(2);
        let fa: Vec<Fault> = (0..10).map(|_| a.sample_value_fault(1000, 32)).collect();
        let fb: Vec<Fault> = (0..10).map(|_| b.sample_value_fault(1000, 32)).collect();
        assert_ne!(fa, fb);
    }

    #[test]
    fn faults_stay_in_range() {
        let mut inj = Injector::new(3);
        for _ in 0..500 {
            let f = inj.sample_value_fault(17, 9);
            assert!(f.index < 17);
            assert!(f.bit < 9);
        }
    }

    #[test]
    fn random_value_injection_changes_at_most_one_element() {
        let fp = FloatingPoint::fp16();
        let x = Tensor::ones([32]);
        let mut inj = Injector::new(7);
        for _ in 0..20 {
            let mut q = fp.real_to_format_tensor(&x);
            let rec = inj.inject_random_value(&fp, &mut q);
            let changed = q
                .values
                .as_slice()
                .iter()
                .enumerate()
                .filter(|(i, &v)| v != x.as_slice()[*i])
                .count();
            assert!(changed <= 1, "one flip changed {changed} elements");
            if changed == 1 {
                assert_ne!(rec.old, rec.new);
            }
        }
    }

    #[test]
    fn law_empty_fault_space_clear_errors() {
        // A 0-element tensor must report an empty fault space explicitly —
        // not the misleading "format has no metadata words" (the format
        // *does* carry metadata; the tensor just produced zero words).
        let bfp = BlockFloatingPoint::new(5, 5, 4);
        let mut inj = Injector::new(1);
        let mut q = bfp.real_to_format_tensor(&Tensor::zeros([0]));
        let err = inj.try_inject_random_metadata(&bfp, &mut q).unwrap_err();
        assert_eq!(err, EmptyFaultSpace::EmptyTensorMetadata);
        assert!(err.to_string().contains("0-element tensor"), "{err}");
        let err = inj.try_inject_random_value(&bfp, &mut q).unwrap_err();
        assert_eq!(err, EmptyFaultSpace::NoElements);
        // A format with no metadata at all reports that, even on a
        // non-empty tensor.
        let fp = FloatingPoint::fp16();
        let mut q = fp.real_to_format_tensor(&Tensor::ones([4]));
        let err = inj.try_inject_random_metadata(&fp, &mut q).unwrap_err();
        assert_eq!(err, EmptyFaultSpace::NoMetadataWords);
    }

    #[test]
    fn random_metadata_injection_targets_valid_word() {
        let bfp = BlockFloatingPoint::new(5, 5, 4);
        let x = Tensor::ones([16]); // 4 blocks
        let mut inj = Injector::new(9);
        for _ in 0..20 {
            let mut q = bfp.real_to_format_tensor(&x);
            let rec = inj.inject_random_metadata(&bfp, &mut q);
            assert!(rec.word < 4);
            assert!(rec.bit < 5);
        }
    }
}
