//! Bit-flip primitives over quantised tensors — the paper's error-injection
//! routine: Method 3 (value → bitstring), flip, Method 4 (bitstring →
//! value); plus the metadata analogue.

use formats::{Metadata, NumberFormat, Quantized};

/// A record of one executed value-bit flip.
#[derive(Debug, Clone, PartialEq)]
pub struct ValueFlip {
    /// Flat element index within the tensor.
    pub element: usize,
    /// Bit position flipped (0 = MSB of the format's bit image).
    pub bit: usize,
    /// Value before the flip.
    pub old: f32,
    /// Value after the flip.
    pub new: f32,
}

/// A record of one executed metadata-bit flip.
#[derive(Debug, Clone, PartialEq)]
pub struct MetadataFlip {
    /// Metadata word index (e.g. which block's shared exponent).
    pub word: usize,
    /// Bit position flipped within the word (0 = MSB).
    pub bit: usize,
    /// Metadata before the flip.
    pub old: Metadata,
    /// Metadata after the flip.
    pub new: Metadata,
}

/// Flips one bit of one data value in-place.
///
/// # Panics
///
/// Panics if `element` or `bit` is out of range.
pub fn flip_value(
    format: &dyn NumberFormat,
    q: &mut Quantized,
    element: usize,
    bit: usize,
) -> ValueFlip {
    assert!(element < q.values.numel(), "element {element} out of range");
    let old = q.values.as_slice()[element];
    let bits = format.real_to_format(old, &q.meta, element);
    assert!(bit < bits.len(), "bit {bit} out of range for {}-bit values", bits.len());
    let new = decode(format, q, bits.with_flip(bit), element);
    q.values.as_mut_slice()[element] = new;
    ValueFlip { element, bit, old, new }
}

/// Decodes a (corrupted) bit image: the cached dequantise LUT when the
/// format is metadata-free and narrow, the direct Method 4 otherwise.
fn decode(
    format: &dyn NumberFormat,
    q: &Quantized,
    bits: formats::Bitstring,
    element: usize,
) -> f32 {
    if q.meta == Metadata::None {
        if let Some(lut) = formats::lut::cached(format) {
            return lut.decode(bits.to_u64());
        }
    }
    format.format_to_real(&bits, &q.meta, element)
}

/// Flips several bits of one data value in-place (multi-bit upset).
///
/// # Panics
///
/// Panics if `element` or any bit is out of range.
pub fn flip_value_multi(
    format: &dyn NumberFormat,
    q: &mut Quantized,
    element: usize,
    bits_to_flip: &[usize],
) -> ValueFlip {
    assert!(element < q.values.numel(), "element {element} out of range");
    let old = q.values.as_slice()[element];
    let mut bits = format.real_to_format(old, &q.meta, element);
    for &b in bits_to_flip {
        bits.flip(b);
    }
    let new = decode(format, q, bits, element);
    q.values.as_mut_slice()[element] = new;
    ValueFlip { element, bit: bits_to_flip.first().copied().unwrap_or(0), old, new }
}

/// Flips one bit of one metadata word in-place, re-interpreting the stored
/// values under the corrupted register (INT scale / BFP shared exponent /
/// AFP bias).
///
/// # Panics
///
/// Panics if the format has no metadata, or `word`/`bit` is out of range.
pub fn flip_metadata(
    format: &dyn NumberFormat,
    q: &mut Quantized,
    word: usize,
    bit: usize,
) -> MetadataFlip {
    assert!(format.supports_metadata_injection(), "{} has no injectable metadata", format.name());
    let old = q.meta.clone();
    let bits =
        q.meta.word_bits(word).unwrap_or_else(|| panic!("metadata word {word} out of range"));
    assert!(bit < bits.len(), "bit {bit} out of range for metadata word");
    let new = q.meta.with_word_bits(word, &bits.with_flip(bit));
    q.values = format.apply_metadata(&q.values, &old, &new);
    q.meta = new.clone();
    MetadataFlip { word, bit, old, new }
}

#[cfg(test)]
mod tests {
    use super::*;
    use formats::{BlockFloatingPoint, FloatingPoint, IntQuant};
    use tensor::Tensor;

    #[test]
    fn value_flip_changes_exactly_one_element() {
        let fp = FloatingPoint::fp8_e4m3();
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [4]);
        let mut q = fp.real_to_format_tensor(&x);
        let rec = flip_value(&fp, &mut q, 2, 0);
        assert_eq!(rec.old, 3.0);
        assert_eq!(rec.new, -3.0); // sign flip
        assert_eq!(q.values.as_slice(), &[1.0, 2.0, -3.0, 4.0]);
    }

    #[test]
    fn value_flip_twice_restores() {
        let fp = FloatingPoint::fp16();
        let x = Tensor::from_vec(vec![0.7, -1.3], [2]);
        let mut q = fp.real_to_format_tensor(&x);
        let orig = q.values.clone();
        for bit in 0..16 {
            flip_value(&fp, &mut q, 0, bit);
            flip_value(&fp, &mut q, 0, bit);
            assert_eq!(q.values, orig, "double flip of bit {bit} not identity");
        }
    }

    #[test]
    fn multi_bit_flip() {
        let int8 = IntQuant::new(8);
        let x = Tensor::from_vec(vec![10.0, 20.0], [2]);
        let mut q = int8.real_to_format_tensor(&x);
        let old = q.values.as_slice()[0];
        // Flip two low bits of element 0's code.
        let rec = flip_value_multi(&int8, &mut q, 0, &[6, 7]);
        assert_eq!(rec.old, old);
        assert_ne!(rec.new, old);
        // Flip them back.
        flip_value_multi(&int8, &mut q, 0, &[6, 7]);
        assert!((q.values.as_slice()[0] - old).abs() < 1e-6);
    }

    #[test]
    fn metadata_flip_corrupts_whole_block() {
        let bfp = BlockFloatingPoint::new(5, 5, 2);
        let x = Tensor::from_vec(vec![4.0, 2.0, 0.5, 0.25], [4]);
        let mut q = bfp.real_to_format_tensor(&x);
        let before = q.values.clone();
        let rec = flip_metadata(&bfp, &mut q, 1, 4); // block 1's exponent LSB
        assert_ne!(rec.old, rec.new);
        // Block 0 untouched; block 1 scaled.
        assert_eq!(q.values.as_slice()[0], before.as_slice()[0]);
        assert_eq!(q.values.as_slice()[1], before.as_slice()[1]);
        let r = q.values.as_slice()[2] / before.as_slice()[2];
        assert!(r == 2.0 || r == 0.5, "ratio {r}");
    }

    #[test]
    fn metadata_flip_twice_restores() {
        let int8 = IntQuant::new(8);
        let x = Tensor::from_vec(vec![1.0, -0.5, 0.25], [3]);
        let mut q = int8.real_to_format_tensor(&x);
        let orig_vals = q.values.clone();
        let orig_meta = q.meta.clone();
        flip_metadata(&int8, &mut q, 0, 9);
        flip_metadata(&int8, &mut q, 0, 9);
        assert_eq!(q.meta, orig_meta);
        for (a, b) in q.values.as_slice().iter().zip(orig_vals.as_slice()) {
            assert!((a - b).abs() <= b.abs() * 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    #[should_panic(expected = "no injectable metadata")]
    fn metadata_flip_on_fp_panics() {
        let fp = FloatingPoint::fp16();
        let mut q = fp.real_to_format_tensor(&Tensor::ones([2]));
        flip_metadata(&fp, &mut q, 0, 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn value_flip_bad_element_panics() {
        let fp = FloatingPoint::fp16();
        let mut q = fp.real_to_format_tensor(&Tensor::ones([2]));
        flip_value(&fp, &mut q, 5, 0);
    }
}
