//! Property-based tests sweeping *random format configurations*, not just
//! random inputs: every (e, m) split, fixed-point geometry, INT width,
//! BFP block size, and posit size must uphold the API contract.

use formats::{
    AdaptivFloat, BlockFloatingPoint, FixedPoint, FloatingPoint, GoldenFloat, IntQuant, Metadata,
    MxElem, MxFloat, NumberFormat, Posit, P3109,
};
use proptest::prelude::*;
use tensor::Tensor;

/// Strategy over the five OCP MX element types.
fn mx_elem() -> impl Strategy<Value = MxElem> {
    proptest::sample::select(MxElem::ALL.to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Any FP(e,m) saturates exactly at its advertised dynamic-range max.
    #[test]
    fn fp_saturates_at_advertised_max(e in 2u32..=8, m in 1u32..=23) {
        let fp = FloatingPoint::new(e, m);
        let max = fp.dynamic_range().max_abs as f32;
        prop_assert_eq!(fp.quantize_scalar(max * 4.0), max);
        prop_assert_eq!(fp.quantize_scalar(f32::MAX), max);
        prop_assert_eq!(fp.quantize_scalar(-f32::MAX), -max);
        // The max itself is representable (a fixed point of quantisation).
        prop_assert_eq!(fp.quantize_scalar(max), max);
    }

    /// FP quantisation error of an in-range value is bounded by half an
    /// ulp of its binade: |q(x) − x| ≤ 2^(e(x) − m − 1).
    #[test]
    fn fp_error_bounded_by_half_ulp(e in 2u32..=8, m in 1u32..=23, v in 0.01f32..100.0) {
        let fp = FloatingPoint::new(e, m);
        let max = fp.dynamic_range().max_abs as f32;
        prop_assume!(v < max);
        let min_normal = (2.0f64).powi(2 - (1i32 << (e - 1))) as f32;
        prop_assume!(v >= min_normal);
        let q = fp.quantize_scalar(v);
        let ulp = (2.0f32).powi(v.log2().floor() as i32 - m as i32);
        prop_assert!((q - v).abs() <= ulp * 0.5 + f32::EPSILON, "e{e}m{m}: q({v}) = {q}");
    }

    /// Fixed-point error is bounded by half a step for in-range values.
    #[test]
    fn fxp_error_bounded_by_half_step(i in 1u32..=15, f in 1u32..=16, v in -100.0f32..100.0) {
        let fxp = FixedPoint::new(i, f);
        prop_assume!(v.abs() < fxp.dynamic_range().max_abs as f32 - 1.0);
        let q = fxp.quantize_scalar(v);
        let step = (2.0f32).powi(-(f as i32));
        prop_assert!((q - v).abs() <= step * 0.5 + f32::EPSILON);
    }

    /// INT round-trip error is bounded by half a scale step; codes stay
    /// within ±qmax.
    #[test]
    fn int_error_bounded(bits in 2u32..=16, values in prop::collection::vec(-50.0f32..50.0, 2..12)) {
        let int = IntQuant::new(bits);
        let x = Tensor::from_vec(values.clone(), [values.len()]);
        let q = int.real_to_format_tensor(&x);
        let Metadata::Scale(scale) = q.meta else { panic!("INT must emit scale") };
        for (&orig, &quant) in values.iter().zip(q.values.as_slice()) {
            prop_assert!((quant - orig).abs() <= scale * 0.5 + 1e-6,
                "int{bits}: {orig} -> {quant} (scale {scale})");
        }
    }

    /// BFP never increases a block's max magnitude, and never produces a
    /// value outside ±(block max rounded up to the format grid).
    #[test]
    fn bfp_respects_block_bounds(
        e in 2u32..=8,
        m in 1u32..=10,
        block in 1usize..=16,
        values in prop::collection::vec(-1000.0f32..1000.0, 4..32),
    ) {
        let bfp = BlockFloatingPoint::new(e, m, block);
        let x = Tensor::from_vec(values.clone(), [values.len()]);
        let q = bfp.real_to_format_tensor(&x);
        for (chunk_in, chunk_out) in values.chunks(block).zip(q.values.as_slice().chunks(block)) {
            let in_max = chunk_in.iter().fold(0.0f32, |a, &v| a.max(v.abs()));
            let out_max = chunk_out.iter().fold(0.0f32, |a, &v| a.max(v.abs()));
            // Rounding can push the max up by at most one step ≈ in_max/2^(m-1).
            prop_assert!(out_max <= in_max * (1.0 + (2.0f32).powi(1 - (m as i32))) + 1e-6,
                "e{e}m{m}b{block}: block max grew {in_max} -> {out_max}");
        }
    }

    /// AFP with a wide-enough bias register always captures the tensor's
    /// largest magnitude with bounded relative error.
    #[test]
    fn afp_top_value_relative_error(e in 2u32..=8, m in 2u32..=10, top in 0.001f32..1000.0) {
        let afp = AdaptivFloat::new(e, m).with_bias_bits(12);
        let x = Tensor::from_vec(vec![top, -top / 2.0], [2]);
        let q = afp.real_to_format_tensor(&x);
        let rel = (q.values.as_slice()[0] - top).abs() / top;
        prop_assert!(rel <= (2.0f32).powi(-(m as i32)),
            "afp e{e}m{m}: top {top} err {rel}");
    }

    /// Posit quantisation is monotone and saturating for every (n, es).
    #[test]
    fn posit_monotone_and_saturating(n in 3u32..=12, es in 0u32..=2, a in -100.0f32..100.0, b in -100.0f32..100.0) {
        let p = Posit::new(n, es);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(p.quantize_scalar(lo) <= p.quantize_scalar(hi));
        let maxpos = p.maxpos() as f32;
        prop_assert_eq!(p.quantize_scalar(1e30), maxpos);
    }

    /// MX quantisation never escapes the block's scaled element range: for
    /// every element type and block size, |q(x)| ≤ elem_max × 2^scale, and
    /// requantising is the identity (idempotence under random geometry).
    #[test]
    fn mx_respects_block_bounds_and_projects(
        elem in mx_elem(),
        block in 1usize..=48,
        values in prop::collection::vec(-1e6f32..1e6, 4..40),
    ) {
        let mx = MxFloat::new(elem, block);
        let x = Tensor::from_vec(values.clone(), [values.len()]);
        let q = mx.real_to_format_tensor(&x);
        for (chunk_in, chunk_out) in values.chunks(block).zip(q.values.as_slice().chunks(block)) {
            let in_max = chunk_in.iter().fold(0.0f32, |a, &v| a.max(v.abs()));
            let out_max = chunk_out.iter().fold(0.0f32, |a, &v| a.max(v.abs()));
            // The shared scale targets the block max; rounding within the
            // element grid can overshoot by at most one element ulp.
            prop_assert!(out_max <= in_max * 1.25 + 1e-6,
                "{}: block max grew {in_max} -> {out_max}", mx.name());
        }
        let q2 = mx.real_to_format_tensor(&q.values);
        prop_assert_eq!(q.meta.clone(), q2.meta, "{}: scale codes drift", mx.name());
        for (a, b) in q.values.as_slice().iter().zip(q2.values.as_slice()) {
            prop_assert!(a.to_bits() == b.to_bits() || (a.is_nan() && b.is_nan()),
                "{}: {a} requantises to {b}", mx.name());
        }
    }

    /// P3109 saturates at its advertised max — never through ±Inf — and
    /// every quantised value round-trips bitwise through its 8-bit code.
    #[test]
    fn p3109_saturates_and_roundtrips(e in 2u32..=6, v in -2e5f32..2e5) {
        let p = P3109::new(e, 7 - e);
        let max = p.dynamic_range().max_abs as f32;
        prop_assert_eq!(p.quantize_value(f32::MAX), max);
        prop_assert_eq!(p.quantize_value(f32::INFINITY), max);
        prop_assert_eq!(p.quantize_value(f32::NEG_INFINITY), -max);
        let q = p.quantize_value(v);
        prop_assert!(q.is_finite() && q.abs() <= max);
        let rt = p.format_to_real(&p.real_to_format(q, &Metadata::None, 0), &Metadata::None, 0);
        prop_assert_eq!(rt.to_bits(), q.to_bits(), "{}: {q} re-decodes as {rt}", p.name());
    }

    /// Differential: the metadata-free narrow formats agree across all
    /// three decode paths — direct quantise, encode→LUT decode, and the
    /// chunk-parallel tensor path — for random tensors.
    #[test]
    fn narrow_formats_agree_quantise_vs_lut_vs_chunked(
        values in prop::collection::vec(-500.0f32..500.0, 1..24),
    ) {
        let formats: Vec<Box<dyn NumberFormat>> = vec![
            Box::new(P3109::new(4, 3)),
            Box::new(P3109::new(5, 2)),
            Box::new(GoldenFloat::new(8)),
            Box::new(GoldenFloat::new(16)),
        ];
        let x = Tensor::from_vec(values.clone(), [values.len()]);
        for f in formats {
            let lut = formats::lut::cached(f.as_ref()).expect("narrow metadata-free");
            let q = f.real_to_format_tensor(&x);
            for (i, &v) in values.iter().enumerate() {
                let direct = f.quantize_value(v);
                let code = f.real_to_format(v, &Metadata::None, i).to_u64();
                let fast = lut.decode(code);
                let chunked = q.values.as_slice()[i];
                prop_assert!(direct.to_bits() == fast.to_bits()
                        || (direct.is_nan() && fast.is_nan()),
                    "{}: {v}: direct {direct} vs LUT {fast}", f.name());
                prop_assert!(direct.to_bits() == chunked.to_bits()
                        || (direct.is_nan() && chunked.is_nan()),
                    "{}: {v}: direct {direct} vs tensor {chunked}", f.name());
            }
        }
    }

    /// GoldenFloat is bitwise the φ-split FloatingPoint on every input.
    #[test]
    fn goldenfloat_matches_its_phi_split_fp(n in proptest::sample::select(vec![8u32, 16, 32]), v in -1e30f32..1e30) {
        let gf = GoldenFloat::new(n);
        let (e, m) = GoldenFloat::phi_split(n);
        let fp = FloatingPoint::new(e, m);
        let a = gf.quantize_value(v);
        let b = fp.quantize_value(v);
        prop_assert!(a.to_bits() == b.to_bits() || (a.is_nan() && b.is_nan()),
            "gf{n}: {v}: {a} vs {b}");
    }

    /// Bitstring width always matches `bit_width`, for every family and
    /// every value.
    #[test]
    fn bit_images_have_declared_width(v in -1000.0f32..1000.0) {
        let formats: Vec<Box<dyn NumberFormat>> = vec![
            Box::new(FloatingPoint::new(3, 6)),
            Box::new(FixedPoint::new(5, 7)),
            Box::new(IntQuant::new(11)),
            Box::new(BlockFloatingPoint::new(4, 6, 3)),
            Box::new(AdaptivFloat::new(5, 4)),
            Box::new(Posit::new(9, 1)),
            Box::new(MxFloat::new(MxElem::Fp6E3m2, 4)),
            Box::new(P3109::new(4, 3)),
            Box::new(GoldenFloat::new(8)),
        ];
        for f in formats {
            let x = Tensor::from_vec(vec![v, 1.0], [2]);
            let q = f.real_to_format_tensor(&x);
            let bits = f.real_to_format(q.values.as_slice()[0], &q.meta, 0);
            prop_assert_eq!(bits.len() as u32, f.bit_width(), "{}", f.name());
        }
    }

    /// The tensor path (Method 1) and the scalar path (Method 3 → Method 4)
    /// agree for every family: decoding an element's bit image returns the
    /// quantised value.
    #[test]
    fn tensor_and_scalar_paths_agree(values in prop::collection::vec(-100.0f32..100.0, 3..10)) {
        let formats: Vec<Box<dyn NumberFormat>> = vec![
            Box::new(FloatingPoint::new(4, 5)),
            Box::new(FixedPoint::new(4, 6)),
            Box::new(IntQuant::new(9)),
            Box::new(BlockFloatingPoint::new(5, 4, 4)),
            Box::new(AdaptivFloat::new(4, 4)),
            Box::new(Posit::new(10, 1)),
            Box::new(MxFloat::new(MxElem::Fp8E5m2, 4)),
            Box::new(P3109::new(3, 4)),
            Box::new(GoldenFloat::new(16)),
        ];
        let x = Tensor::from_vec(values.clone(), [values.len()]);
        for f in formats {
            let q = f.real_to_format_tensor(&x);
            for i in 0..values.len() {
                let v = q.values.as_slice()[i];
                let roundtrip = f.format_to_real(&f.real_to_format(v, &q.meta, i), &q.meta, i);
                let tol = v.abs() * 1e-5 + 1e-7;
                prop_assert!((roundtrip - v).abs() <= tol,
                    "{}: element {i} {v} -> {roundtrip}", f.name());
            }
        }
    }
}
