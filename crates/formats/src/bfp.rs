//! Block floating point: blocks of values share one exponent register.
//!
//! Value-wise BFP resembles FP, but in hardware the shared exponent lives
//! once per block, so a single bit flip there corrupts the *entire block* —
//! the multi-bit-flip equivalence the paper highlights (§II-B). The shared
//! exponents are exposed as [`Metadata::SharedExponents`] — error site #7.
//!
//! Unlike QPyTorch's BFP (whose exponent is pegged to 8 bits — a limitation
//! the paper calls out), the exponent width here is configurable.

use crate::bitstring::Bitstring;
use crate::format::{DynamicRange, NumberFormat, Quantized};
use crate::fp::{exp2, exponent_of, f32_saturate, round_ties_even};
use crate::metadata::Metadata;
use tensor::Tensor;

/// A block-floating-point format: `exp_bits`-wide shared exponent per
/// block of `block_size` elements; each element stores sign + `man_bits`
/// of magnitude aligned to the block exponent.
///
/// # Examples
///
/// ```
/// use formats::{BlockFloatingPoint, NumberFormat};
/// use tensor::Tensor;
/// let bfp = BlockFloatingPoint::new(5, 5, 4);
/// let x = Tensor::from_vec(vec![8.0, 1.0, 0.25, 0.01], [4]);
/// let q = bfp.real_to_format_tensor(&x);
/// // 0.01 is far below the block's (max-driven) resolution: rounded to 0.
/// assert_eq!(q.values.as_slice()[3], 0.0);
/// assert_eq!(q.values.as_slice()[0], 8.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockFloatingPoint {
    exp_bits: u32,
    man_bits: u32,
    block_size: usize,
}

impl BlockFloatingPoint {
    /// Creates a BFP format.
    ///
    /// # Panics
    ///
    /// Panics if `exp_bits ∉ 2..=11`, `man_bits ∉ 1..=23`, or
    /// `block_size == 0`.
    pub fn new(exp_bits: u32, man_bits: u32, block_size: usize) -> Self {
        assert!((2..=11).contains(&exp_bits), "exponent width {exp_bits} out of range");
        assert!((1..=23).contains(&man_bits), "mantissa width {man_bits} out of range");
        assert!(block_size > 0, "block size must be positive");
        BlockFloatingPoint { exp_bits, man_bits, block_size }
    }

    /// Creates a BFP format whose block is the *entire tensor* — one
    /// shared exponent per layer, the configuration the paper's §IV
    /// experiments discuss ("a large shared block size across an entire
    /// layer").
    ///
    /// # Panics
    ///
    /// Panics if `exp_bits ∉ 2..=11` or `man_bits ∉ 1..=23`.
    pub fn per_tensor(exp_bits: u32, man_bits: u32) -> Self {
        Self::new(exp_bits, man_bits, usize::MAX)
    }

    /// Whether the block spans the whole tensor.
    pub fn is_per_tensor(&self) -> bool {
        self.block_size == usize::MAX
    }

    /// Shared-exponent width in bits.
    pub fn exp_bits(&self) -> u32 {
        self.exp_bits
    }

    /// Per-element mantissa width in bits.
    pub fn man_bits(&self) -> u32 {
        self.man_bits
    }

    /// Elements per shared exponent.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    fn bias(&self) -> i64 {
        (1i64 << (self.exp_bits - 1)) - 1
    }

    fn max_code(&self) -> i64 {
        (1i64 << self.exp_bits) - 1
    }

    /// The biased exponent code chosen for a block with maximum magnitude
    /// `max_abs`.
    fn code_for_block(&self, max_abs: f64) -> u32 {
        if max_abs == 0.0 {
            return 0;
        }
        if !max_abs.is_finite() {
            // An Inf element pins the block at the top exponent code.
            return self.max_code() as u32;
        }
        let e = exponent_of(max_abs);
        (e + self.bias()).clamp(0, self.max_code()) as u32
    }

    /// Quantisation step for a block: `2^(shared − m + 1)`.
    fn step_for_code(&self, code: u32) -> f64 {
        let shared = code as i64 - self.bias();
        exp2(shared - self.man_bits as i64 + 1)
    }

    fn mag_max(&self) -> i64 {
        (1i64 << self.man_bits) - 1
    }

    fn codes_of(meta: &Metadata) -> (&[u32], usize) {
        match meta {
            Metadata::SharedExponents { codes, block_size, .. } => (codes, *block_size),
            other => panic!("BFP expects SharedExponents metadata, got {other:?}"),
        }
    }
}

impl NumberFormat for BlockFloatingPoint {
    fn name(&self) -> String {
        if self.is_per_tensor() {
            format!("bfp_e{}m{}_btensor", self.exp_bits, self.man_bits)
        } else {
            format!("bfp_e{}m{}_b{}", self.exp_bits, self.man_bits, self.block_size)
        }
    }

    fn canonical_spec(&self) -> String {
        if self.is_per_tensor() {
            format!("bfp:e{}m{}:tensor", self.exp_bits, self.man_bits)
        } else {
            format!("bfp:e{}m{}:b{}", self.exp_bits, self.man_bits, self.block_size)
        }
    }

    /// Per-element data width (sign + mantissa); the shared exponent is
    /// amortised metadata.
    fn bit_width(&self) -> u32 {
        1 + self.man_bits
    }

    fn real_to_format_tensor(&self, t: &Tensor) -> Quantized {
        let n = t.numel();
        let src = t.as_slice();
        let nblocks = n.div_ceil(self.block_size);
        // Effective block extent, clamped so per-tensor blocks
        // (`block_size == usize::MAX`) don't overflow the index math.
        let bs = self.block_size.min(n.max(1));
        // A task covers a fixed run of *whole* blocks, so chunk boundaries
        // align with shared-exponent blocks and the result is identical
        // for every thread count.
        let blocks_per_task = (crate::chunk::QUANT_CHUNK / bs).max(1);
        let mut codes = vec![0u32; nblocks];
        tensor::parallel::par_chunks_mut(&mut codes, blocks_per_task, |ci, chunk| {
            let b0 = ci * blocks_per_task;
            for (bj, slot) in chunk.iter_mut().enumerate() {
                let start = (b0 + bj) * bs;
                let end = (start + bs).min(n);
                let max_abs = src[start..end].iter().fold(0.0f64, |m, &x| m.max((x as f64).abs()));
                *slot = self.code_for_block(max_abs);
            }
        });
        let mut values = vec![0.0f32; n];
        let codes_ref = &codes[..];
        tensor::parallel::par_chunks_mut(&mut values, blocks_per_task * bs, |ci, out| {
            let b0 = ci * blocks_per_task;
            for (bj, block) in out.chunks_mut(bs).enumerate() {
                let step = self.step_for_code(codes_ref[b0 + bj]);
                let start = (b0 + bj) * bs;
                for (j, v) in block.iter_mut().enumerate() {
                    let x = src[start + j];
                    // `is_sign_negative` (not `< 0.0`) so a −0.0 element
                    // keeps its sign bit through the round trip (law
                    // `round-trip`), matching `FpParams::encode`. NaN has
                    // no magnitude in BFP: it quantises to (signed) zero,
                    // as in the scalar Method 3.
                    let sign = if x.is_sign_negative() { -1.0 } else { 1.0 };
                    let mag = if x.is_nan() {
                        0.0
                    } else {
                        round_ties_even((x as f64).abs() / step).min(self.mag_max() as f64)
                    };
                    *v = f32_saturate(sign * mag * step);
                }
            }
        });
        Quantized {
            values: Tensor::from_vec(values, t.shape().clone()),
            meta: Metadata::SharedExponents {
                codes,
                block_size: self.block_size,
                exp_bits: self.exp_bits,
            },
        }
    }

    fn real_to_format(&self, value: f32, meta: &Metadata, index: usize) -> Bitstring {
        let (codes, bs) = Self::codes_of(meta);
        let code = codes[index / bs];
        let step = self.step_for_code(code);
        // `is_sign_negative` so −0.0 encodes its sign bit (law `round-trip`:
        // decode→encode→decode must be a bitwise fixpoint, and a sign-bit
        // flip on a −0.0 element must report old ≠ new).
        let sign = (value.is_sign_negative()) as u64;
        let v = value as f64;
        let mag = if v.is_nan() {
            0
        } else {
            round_ties_even(v.abs() / step).min(self.mag_max() as f64) as u64
        };
        let m = self.man_bits as usize;
        Bitstring::from_u64((sign << m) | mag, 1 + m)
    }

    fn format_to_real(&self, bits: &Bitstring, meta: &Metadata, index: usize) -> f32 {
        let (codes, bs) = Self::codes_of(meta);
        assert_eq!(bits.len(), 1 + self.man_bits as usize, "BFP data width mismatch");
        let code = codes[index / bs];
        let step = self.step_for_code(code);
        let sign = if bits.bit(0) { -1.0 } else { 1.0 };
        let mag = bits.field(1, self.man_bits as usize).to_u64() as f64;
        f32_saturate(sign * mag * step)
    }

    fn dynamic_range(&self) -> DynamicRange {
        let emax = self.max_code() - self.bias();
        let emin = -self.bias();
        DynamicRange {
            max_abs: self.mag_max() as f64 * exp2(emax - self.man_bits as i64 + 1),
            min_abs: exp2(emin - self.man_bits as i64 + 1),
        }
    }

    fn supports_metadata_injection(&self) -> bool {
        true
    }

    fn apply_metadata(&self, values: &Tensor, old: &Metadata, new: &Metadata) -> Tensor {
        let (old_codes, bs) = Self::codes_of(old);
        let (new_codes, _) = Self::codes_of(new);
        assert_eq!(old_codes.len(), new_codes.len(), "block count changed");
        let mut out = values.clone();
        for (b, (&oc, &nc)) in old_codes.iter().zip(new_codes).enumerate() {
            if oc == nc {
                continue;
            }
            // Hardware keeps the stored sign+magnitude codes; only the
            // shared-exponent register changed. Recover each element's
            // magnitude code under the old step and re-decode it under the
            // new one, saturating at the flipped block's representable max
            // (law `meta-flip-range`): a naive `· 2^(nc − oc)` overflows
            // f64→f32 to ±Inf for large code deltas, a value no BFP code
            // can represent.
            let old_step = self.step_for_code(oc);
            let new_step = self.step_for_code(nc);
            let mag_max = self.mag_max() as f64;
            let limit = mag_max * new_step;
            // Saturating index arithmetic: a per-tensor block (`block_size
            // == usize::MAX`) must not overflow `start + bs`.
            let start = b.saturating_mul(bs).min(values.numel());
            let end = start.saturating_add(bs).min(values.numel());
            for v in &mut out.as_mut_slice()[start..end] {
                let vf = *v as f64;
                let sign = if vf.is_sign_negative() { -1.0f64 } else { 1.0 };
                let mag = (vf.abs() / old_step).min(mag_max);
                *v = if mag == 0.0 {
                    (sign * 0.0) as f32
                } else {
                    f32_saturate(sign * (mag * new_step).min(limit))
                };
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_exponent_follows_max() {
        let bfp = BlockFloatingPoint::new(5, 4, 4);
        let x = Tensor::from_vec(vec![1.0, 2.0, 4.0, 7.9], [4]);
        let q = bfp.real_to_format_tensor(&x);
        let Metadata::SharedExponents { codes, .. } = &q.meta else { panic!() };
        // max 7.9 → exponent 2 → code 2 + 15 = 17.
        assert_eq!(codes, &vec![17]);
    }

    #[test]
    fn multiple_blocks_get_independent_exponents() {
        let bfp = BlockFloatingPoint::new(5, 4, 2);
        let x = Tensor::from_vec(vec![100.0, 50.0, 0.01, 0.005], [4]);
        let q = bfp.real_to_format_tensor(&x);
        let Metadata::SharedExponents { codes, .. } = &q.meta else { panic!() };
        assert_eq!(codes.len(), 2);
        assert!(codes[0] > codes[1]);
        // Both blocks retain their large element at full relative precision.
        assert!((q.values.as_slice()[0] - 100.0).abs() / 100.0 < 0.05);
        assert!((q.values.as_slice()[2] - 0.01).abs() / 0.01 < 0.05);
    }

    #[test]
    fn small_values_in_big_block_round_to_zero() {
        // The paper's observation: a large shared block magnitude kills the
        // resolution of low-magnitude members.
        let bfp = BlockFloatingPoint::new(5, 5, 4);
        let x = Tensor::from_vec(vec![1000.0, 0.5, 0.5, 0.5], [4]);
        let q = bfp.real_to_format_tensor(&x);
        assert_eq!(q.values.as_slice()[1], 0.0);
    }

    #[test]
    fn quantize_idempotent() {
        let bfp = BlockFloatingPoint::new(5, 5, 4);
        let x = Tensor::from_vec(vec![3.7, -0.21, 0.0, 8.25], [4]);
        let q1 = bfp.real_to_format_tensor(&x);
        let q2 = bfp.real_to_format_tensor(&q1.values);
        assert_eq!(q1.values, q2.values);
        assert_eq!(q1.meta, q2.meta);
    }

    #[test]
    fn bitstring_roundtrip() {
        let bfp = BlockFloatingPoint::new(5, 5, 4);
        let x = Tensor::from_vec(vec![3.7, -0.21, 0.0, 8.25], [4]);
        let q = bfp.real_to_format_tensor(&x);
        for i in 0..4 {
            let v = q.values.as_slice()[i];
            let bits = bfp.real_to_format(v, &q.meta, i);
            assert_eq!(bits.len(), 6);
            assert_eq!(bfp.format_to_real(&bits, &q.meta, i), v, "element {i}");
        }
    }

    #[test]
    fn shared_exponent_flip_scales_whole_block() {
        let bfp = BlockFloatingPoint::new(5, 5, 4);
        let x = Tensor::from_vec(vec![4.0, 2.0, 1.0, -1.0, 0.5, 0.25, 0.125, -0.125], [8]);
        let q = bfp.real_to_format_tensor(&x);
        // Flip the LSB of block 0's exponent: every value in block 0
        // scales by 2^±1; block 1 is untouched.
        let bits = q.meta.word_bits(0).unwrap();
        let corrupted = q.meta.with_word_bits(0, &bits.with_flip(bfp.exp_bits() as usize - 1));
        let y = bfp.apply_metadata(&q.values, &q.meta, &corrupted);
        let r = y.as_slice()[0] / q.values.as_slice()[0];
        assert!(r == 2.0 || r == 0.5, "ratio {r}");
        for i in 4..8 {
            assert_eq!(y.as_slice()[i], q.values.as_slice()[i], "block 1 must be intact");
        }
    }

    #[test]
    fn data_bit_flip_bounded_by_block_range() {
        // A data-value flip in BFP cannot produce Inf/NaN: the worst case
        // is the max magnitude at the shared exponent. (This is why the
        // paper finds BFP value injections benign relative to FP.)
        let bfp = BlockFloatingPoint::new(5, 5, 4);
        let x = Tensor::from_vec(vec![4.0, 2.0, 1.0, -1.0], [4]);
        let q = bfp.real_to_format_tensor(&x);
        for i in 0..4 {
            for bit in 0..6 {
                let v = crate::format::flip_value_bit(&bfp, &q, i, bit);
                assert!(v.is_finite());
                assert!(v.abs() <= 8.0, "flip({i},{bit}) gave {v}");
            }
        }
    }

    #[test]
    fn zero_block_quantizes_to_zero() {
        let bfp = BlockFloatingPoint::new(5, 5, 4);
        let q = bfp.real_to_format_tensor(&Tensor::zeros([4]));
        assert_eq!(q.values.sum_all(), 0.0);
        let Metadata::SharedExponents { codes, .. } = &q.meta else { panic!() };
        assert_eq!(codes[0], 0);
    }

    #[test]
    fn tail_block_smaller_than_block_size() {
        let bfp = BlockFloatingPoint::new(5, 5, 4);
        let x = Tensor::from_vec(vec![1.0; 6], [6]);
        let q = bfp.real_to_format_tensor(&x);
        assert_eq!(q.meta.word_count(), 2);
        assert_eq!(q.values.as_slice()[5], 1.0);
    }

    #[test]
    fn law_meta_flip_finite_all_single_bit_flips() {
        // Law `meta-flip-finite`: no single-bit flip of a shared-exponent
        // register may drive any stored value to Inf/NaN — BFP has no
        // Inf/NaN codes, and §IV's finding that BFP injections are
        // Inf/NaN-free must survive metadata faults. Before the fix,
        // `· 2^(nc − oc)` overflowed f64→f32 to ±Inf for large upward code
        // deltas (e.g. bfloat-style e8m7, whose top step is 2^122).
        let bfp = BlockFloatingPoint::new(8, 7, 4);
        let x = Tensor::from_vec(vec![4.0, -2.0, 1.0, -0.0], [4]);
        let q = bfp.real_to_format_tensor(&x);
        let max_abs = bfp.dynamic_range().max_abs;
        let bits = q.meta.word_bits(0).unwrap();
        for bit in 0..bits.len() {
            let corrupted = q.meta.with_word_bits(0, &bits.with_flip(bit));
            let y = bfp.apply_metadata(&q.values, &q.meta, &corrupted);
            for (i, v) in y.as_slice().iter().enumerate() {
                assert!(v.is_finite(), "flip bit {bit}, element {i}: {v}");
                assert!((*v as f64).abs() <= max_abs, "flip bit {bit}, element {i}: {v}");
            }
        }
    }

    #[test]
    fn law_round_trip_negative_zero_keeps_sign() {
        // Law `round-trip`: −0.0 must encode its sign bit so decode→encode→
        // decode is a bitwise fixpoint (matching `FpParams::encode`) and a
        // sign-bit flip on a −0.0 element reports old ≠ new. The old
        // `(value < 0.0)` test dropped it.
        let bfp = BlockFloatingPoint::new(5, 5, 4);
        let x = Tensor::from_vec(vec![4.0, -0.0, 0.0, 1.0], [4]);
        let q = bfp.real_to_format_tensor(&x);
        assert!(q.values.as_slice()[1].is_sign_negative(), "Method 1 must keep −0.0");
        let bits = bfp.real_to_format(-0.0, &q.meta, 1);
        assert!(bits.bit(0), "sign bit must be set for −0.0");
        let back = bfp.format_to_real(&bits, &q.meta, 1);
        assert!(back == 0.0 && back.is_sign_negative());
        // The sign-bit flip is a real change, not `old == new`.
        let flipped = bfp.format_to_real(&bits.with_flip(0), &q.meta, 1);
        assert!(flipped == 0.0 && !flipped.is_sign_negative());
    }

    #[test]
    fn per_tensor_block_spanning_many_chunks_is_thread_count_invariant() {
        // Audit of the whole-tensor sentinel (`block_size == usize::MAX`)
        // against the chunk-parallel path: one shared-exponent block spans
        // many QUANT_CHUNK=4096 tasks, and the two-phase block max must
        // make the result byte-identical to the serial path. >4096 elements
        // so the tensor genuinely crosses chunk boundaries.
        use tensor::parallel::with_threads;
        let n = 10_007;
        let x = Tensor::from_vec((0..n).map(|i| ((i as f32) * 0.371).sin() * 80.0).collect(), [n]);
        let bfp = BlockFloatingPoint::per_tensor(5, 5);
        let serial = {
            let _g = with_threads(1);
            bfp.real_to_format_tensor(&x)
        };
        assert_eq!(serial.meta.word_count(), 1, "one register for the whole tensor");
        for threads in [2, 8] {
            let _g = with_threads(threads);
            let par = bfp.real_to_format_tensor(&x);
            assert_eq!(par.meta, serial.meta, "{threads} threads");
            for (i, (a, b)) in
                par.values.as_slice().iter().zip(serial.values.as_slice()).enumerate()
            {
                assert_eq!(a.to_bits(), b.to_bits(), "{threads} threads, element {i}");
            }
        }
    }

    #[test]
    fn per_tensor_sentinel_matches_explicit_whole_tensor_block() {
        // `bfp:…:tensor` must quantise exactly like `block_size == n`: the
        // sentinel is a spelling, not a different format.
        let n = 5000;
        let x = Tensor::from_vec((0..n).map(|i| ((i as f32) - 2500.0) * 0.013).collect(), [n]);
        let sentinel = BlockFloatingPoint::per_tensor(5, 5).real_to_format_tensor(&x);
        let explicit = BlockFloatingPoint::new(5, 5, n).real_to_format_tensor(&x);
        for (a, b) in sentinel.values.as_slice().iter().zip(explicit.values.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        let Metadata::SharedExponents { codes: ca, .. } = &sentinel.meta else { panic!() };
        let Metadata::SharedExponents { codes: cb, .. } = &explicit.meta else { panic!() };
        assert_eq!(ca, cb);
    }

    #[test]
    fn non_dividing_block_sizes_tail_is_thread_count_invariant() {
        // Block sizes that divide neither the tensor length nor QUANT_CHUNK:
        // the tail block is shorter, and whole blocks must never straddle
        // task boundaries.
        use tensor::parallel::with_threads;
        let n = 9001;
        let x = Tensor::from_vec((0..n).map(|i| ((i as f32) * 1.618).cos() * 300.0).collect(), [n]);
        for block in [3usize, 48, 100, 5000] {
            let bfp = BlockFloatingPoint::new(5, 5, block);
            let serial = {
                let _g = with_threads(1);
                bfp.real_to_format_tensor(&x)
            };
            assert_eq!(serial.meta.word_count(), n.div_ceil(block), "block {block}");
            for threads in [2, 8] {
                let _g = with_threads(threads);
                let par = bfp.real_to_format_tensor(&x);
                assert_eq!(par.meta, serial.meta, "block {block}, {threads} threads");
                for (i, (a, b)) in
                    par.values.as_slice().iter().zip(serial.values.as_slice()).enumerate()
                {
                    assert_eq!(a.to_bits(), b.to_bits(), "block {block}, element {i}");
                }
            }
        }
    }

    #[test]
    fn law_meta_flip_range_per_tensor_block_no_overflow() {
        // Law `meta-flip-range` on a per-tensor block: `block_size ==
        // usize::MAX` must not overflow the `b·bs` / `start+bs` index
        // arithmetic in `apply_metadata`.
        let bfp = BlockFloatingPoint::per_tensor(5, 5);
        let x = Tensor::from_vec(vec![2.0, -1.0, 0.5], [3]);
        let q = bfp.real_to_format_tensor(&x);
        let bits = q.meta.word_bits(0).unwrap();
        let corrupted = q.meta.with_word_bits(0, &bits.with_flip(bfp.exp_bits() as usize - 1));
        let y = bfp.apply_metadata(&q.values, &q.meta, &corrupted);
        let r = y.as_slice()[0] / q.values.as_slice()[0];
        assert!(r == 2.0 || r == 0.5, "ratio {r}");
    }
}
