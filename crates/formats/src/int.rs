//! Integer quantisation: a fixed-point format with no fractional bits and a
//! per-tensor scale factor that uniformly maps f32 values onto a symmetric
//! signed-integer grid. The scale factor is hardware metadata (an FP32
//! register) and an injection target — error site #6 in the paper.

use crate::bitstring::Bitstring;
use crate::format::{DynamicRange, NumberFormat, Quantized};
use crate::metadata::Metadata;
use tensor::Tensor;

/// Symmetric integer quantisation with `bits` total bits (sign included).
///
/// `scale = max|x| / (2^(bits-1) − 1)` is computed per tensor; codes are
/// clamped to `±(2^(bits-1) − 1)` (symmetric, as in the paper's Table I:
/// INT8 spans −127..127).
///
/// # Examples
///
/// ```
/// use formats::{IntQuant, NumberFormat, Metadata};
/// use tensor::Tensor;
/// let int8 = IntQuant::new(8);
/// let x = Tensor::from_vec(vec![-1.0, 0.5, 1.27], [3]);
/// let q = int8.real_to_format_tensor(&x);
/// assert_eq!(q.meta, Metadata::Scale(1.27 / 127.0));
/// assert_eq!(q.values.as_slice()[2], 1.27);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IntQuant {
    bits: u32,
}

impl IntQuant {
    /// Creates a `bits`-wide symmetric integer quantiser.
    ///
    /// # Panics
    ///
    /// Panics if `bits ∉ 2..=32`.
    pub fn new(bits: u32) -> Self {
        assert!((2..=32).contains(&bits), "INT width {bits} out of range 2..=32");
        IntQuant { bits }
    }

    /// Total bit width.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Largest positive code: `2^(bits-1) − 1`.
    pub fn qmax(&self) -> i64 {
        (1i64 << (self.bits - 1)) - 1
    }

    /// Computes the symmetric per-tensor scale for `t`.
    ///
    /// A zero tensor maps to scale 1.0 so decoding stays well-defined.
    pub fn scale_for(&self, t: &Tensor) -> f32 {
        let m = t.max_abs();
        if m == 0.0 {
            1.0
        } else {
            m / self.qmax() as f32
        }
    }

    fn code_of(&self, value: f32, scale: f32) -> i64 {
        if !value.is_finite() || scale == 0.0 {
            return if value > 0.0 {
                self.qmax()
            } else if value < 0.0 {
                -self.qmax()
            } else {
                0
            };
        }
        let q = crate::fp::round_ties_even((value / scale) as f64);
        (q as i64).clamp(-self.qmax(), self.qmax())
    }

    fn expect_scale(meta: &Metadata) -> f32 {
        match meta {
            Metadata::Scale(s) => *s,
            other => panic!("IntQuant expects Scale metadata, got {other:?}"),
        }
    }
}

impl NumberFormat for IntQuant {
    fn name(&self) -> String {
        format!("int{}", self.bits)
    }

    fn canonical_spec(&self) -> String {
        format!("int:{}", self.bits)
    }

    fn bit_width(&self) -> u32 {
        self.bits
    }

    fn real_to_format_tensor(&self, t: &Tensor) -> Quantized {
        // Chunked max reduction (bit-identical to `scale_for`: f32 max is
        // exact, so regrouping cannot change it), then a chunked map with
        // the scale fixed.
        let m = crate::chunk::max_abs_chunked(t);
        let scale = if m == 0.0 { 1.0 } else { m / self.qmax() as f32 };
        let values =
            crate::chunk::map_chunked(t, |x| (self.code_of(x, scale) as f64 * scale as f64) as f32);
        Quantized { values, meta: Metadata::Scale(scale) }
    }

    fn real_to_format(&self, value: f32, meta: &Metadata, _index: usize) -> Bitstring {
        let scale = Self::expect_scale(meta);
        let code = self.code_of(value, scale);
        let w = self.bits as usize;
        let mask = if w == 64 { u64::MAX } else { (1u64 << w) - 1 };
        Bitstring::from_u64((code as u64) & mask, w)
    }

    fn format_to_real(&self, bits: &Bitstring, meta: &Metadata, _index: usize) -> f32 {
        let scale = Self::expect_scale(meta);
        // The grid is symmetric (Table I: INT8 spans −127..127); the
        // two's-complement pattern for −2^(b−1) is an alias of −qmax, so
        // decode→encode→decode stays a fixpoint (law `round-trip`).
        let code = bits.to_i64().clamp(-self.qmax(), self.qmax());
        (code as f64 * scale as f64) as f32
    }

    fn dynamic_range(&self) -> DynamicRange {
        // Table I reports the unscaled code range: max 2^(b-1)−1, min
        // (non-zero) 1.
        DynamicRange { max_abs: self.qmax() as f64, min_abs: 1.0 }
    }

    fn supports_metadata_injection(&self) -> bool {
        true
    }

    fn apply_metadata(&self, values: &Tensor, old: &Metadata, new: &Metadata) -> Tensor {
        let old_s = Self::expect_scale(old);
        let new_s = Self::expect_scale(new);
        if old_s == new_s {
            return values.clone();
        }
        // Hardware keeps the stored integer codes; only the FP32 scale
        // register changed. Recover each code and redo the dequantising
        // multiply — the old ratio-based rescale lost the code grid (and
        // divided by zero for a zeroed-out register).
        values.map(|x| (self.code_of(x, old_s) as f64 * new_s as f64) as f32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int8_codes_and_scale() {
        let f = IntQuant::new(8);
        let x = Tensor::from_vec(vec![-2.54, 0.0, 1.27, 2.54], [4]);
        let q = f.real_to_format_tensor(&x);
        let scale = 2.54f32 / 127.0;
        assert_eq!(q.meta, Metadata::Scale(scale));
        assert_eq!(q.values.as_slice()[0], -2.54);
        assert_eq!(q.values.as_slice()[1], 0.0);
        assert_eq!(q.values.as_slice()[3], 2.54);
    }

    #[test]
    fn zero_tensor_gets_unit_scale() {
        let f = IntQuant::new(8);
        let q = f.real_to_format_tensor(&Tensor::zeros([4]));
        assert_eq!(q.meta, Metadata::Scale(1.0));
        assert_eq!(q.values.sum_all(), 0.0);
    }

    #[test]
    fn bitstring_roundtrip() {
        let f = IntQuant::new(8);
        let meta = Metadata::Scale(0.1);
        for code in [-127i64, -1, 0, 1, 42, 127] {
            let v = code as f32 * 0.1;
            let bits = f.real_to_format(v, &meta, 0);
            let back = f.format_to_real(&bits, &meta, 0);
            assert!((back - v).abs() < 1e-6, "code {code}: {v} → {back}");
        }
    }

    #[test]
    fn msb_flip_is_catastrophic() {
        // Flipping the sign/MSB of a two's-complement code moves the value
        // by qmax+1 steps — the "single bit flip in INT8 can cause SDC"
        // observation the paper cites.
        let f = IntQuant::new(8);
        let meta = Metadata::Scale(1.0);
        let bits = f.real_to_format(5.0, &meta, 0);
        let v = f.format_to_real(&bits.with_flip(0), &meta, 0);
        assert_eq!(v, 5.0 - 128.0);
    }

    #[test]
    fn scale_metadata_injection_rescales_tensor() {
        let f = IntQuant::new(8);
        let x = Tensor::from_vec(vec![1.0, -0.5], [2]);
        let q = f.real_to_format_tensor(&x);
        let bits = q.meta.word_bits(0).unwrap();
        // Flip the exponent LSB of the scale register: scale doubles or
        // halves; the tensor follows multiplicatively.
        let corrupted = q.meta.with_word_bits(0, &bits.with_flip(8));
        let y = f.apply_metadata(&q.values, &q.meta, &corrupted);
        let (Metadata::Scale(old_s), Metadata::Scale(new_s)) = (&q.meta, &corrupted) else {
            panic!("wrong metadata kinds")
        };
        let ratio = *new_s as f64 / *old_s as f64;
        assert!(ratio == 2.0 || ratio == 0.5, "ratio {ratio}");
        let expect = (q.values.as_slice()[0] as f64 * ratio) as f32;
        assert!((y.as_slice()[0] - expect).abs() <= expect.abs() * 1e-6);
    }

    #[test]
    fn table1_int_ranges() {
        assert_eq!(IntQuant::new(8).dynamic_range().max_abs, 127.0);
        assert!((IntQuant::new(8).dynamic_range().db() - 42.08).abs() < 0.01);
        assert_eq!(IntQuant::new(16).dynamic_range().max_abs, 32767.0);
    }

    #[test]
    fn saturating_beyond_scale_range() {
        let f = IntQuant::new(4); // qmax = 7
        let meta = Metadata::Scale(1.0);
        let bits = f.real_to_format(100.0, &meta, 0);
        assert_eq!(f.format_to_real(&bits, &meta, 0), 7.0);
    }

    #[test]
    fn encode_decode_roundtrip_all_codes() {
        // Law `round-trip`: decode→encode→decode is a bitwise fixpoint for
        // every code (the INT analogue of
        // fp.rs::encode_decode_roundtrip_all_codes). Scale 2^−5 keeps
        // code·scale exact in f32 so the grid recovery is lossless.
        for width in [4u32, 8, 16] {
            let f = IntQuant::new(width);
            let meta = Metadata::Scale(0.03125);
            for code in 0..(1u64 << width) {
                let b1 = Bitstring::from_u64(code, width as usize);
                let v1 = f.format_to_real(&b1, &meta, 0);
                let b2 = f.real_to_format(v1, &meta, 0);
                let v2 = f.format_to_real(&b2, &meta, 0);
                assert_eq!(v1.to_bits(), v2.to_bits(), "int{width} code {code:#x}: {v1} → {v2}");
            }
        }
    }

    #[test]
    fn law_range_containment_most_negative_code() {
        // Laws `round-trip` + `range-containment`: the two's-complement
        // pattern −2^(b−1) must decode inside the symmetric ±qmax grid
        // (Table I: INT8 spans −127..127) — it aliases −qmax. Before the
        // fix it decoded to −128·scale, outside `dynamic_range()`, and
        // decode→encode→decode was not a fixpoint on it.
        let f = IntQuant::new(8);
        let meta = Metadata::Scale(1.0);
        let b = Bitstring::from_u64(0x80, 8);
        let v = f.format_to_real(&b, &meta, 0);
        assert_eq!(v, -127.0);
        assert!((v.abs() as f64) <= f.dynamic_range().max_abs);
    }

    #[test]
    fn law_meta_flip_keeps_code_grid() {
        // Law `meta-flip-range`: after a scale-register flip the stored
        // values must lie on the *new* code grid {−qmax..qmax}·new_scale —
        // hardware keeps the integer codes and only the dequantising
        // multiply changes. The old ratio-based rescale drifted off-grid
        // (double rounding) and divided by zero for a zeroed register.
        let f = IntQuant::new(8);
        let x = Tensor::from_vec(vec![1.0, -0.62, 0.003], [3]);
        let q = f.real_to_format_tensor(&x);
        let old_s = IntQuant::expect_scale(&q.meta);
        let new_s = old_s * 3.7;
        let y = f.apply_metadata(&q.values, &q.meta, &Metadata::Scale(new_s));
        for (i, (&v0, &v1)) in q.values.as_slice().iter().zip(y.as_slice()).enumerate() {
            let code = f.code_of(v0, old_s);
            assert_eq!(v1, (code as f64 * new_s as f64) as f32, "element {i}");
            assert!(code.abs() <= f.qmax());
        }
    }

    #[test]
    fn law_meta_flip_zeroed_scale_register() {
        // A flip that zeroes the scale register collapses the tensor to
        // zero — the dequantising multiply is code·0 — instead of leaving
        // stale values behind.
        let f = IntQuant::new(8);
        let x = Tensor::from_vec(vec![1.0, -0.5], [2]);
        let q = f.real_to_format_tensor(&x);
        let y = f.apply_metadata(&q.values, &q.meta, &Metadata::Scale(0.0));
        assert_eq!(y.as_slice(), &[0.0, 0.0]);
    }
}
