//! GoldenFloat: golden-ratio static exponent/mantissa splits.
//!
//! The GoldenFloat GF-N family fixes the exponent width of an N-bit float
//! at `round(N / φ²)` (φ the golden ratio, φ² ≈ 2.618) and gives the rest
//! to the mantissa — a single rule that reproduces several hand-tuned
//! splits (GF16 = e6m9 is exactly DLFloat16). Arithmetic-wise a
//! GoldenFloat *is* the corresponding [`FloatingPoint`]; the wrapper
//! exists so the `gf:N` spec is addressable from the CLI/DSE, and its
//! [`NumberFormat::canonical_spec`] deliberately aliases to the `fp:eXmY`
//! identity so the artifact store and dequantise-LUT cache share entries
//! with the equivalent FP format instead of duplicating them.
//!
//! Intentional deviation: GF32's φ-split is e12m19, but our f32-fabric
//! `FpParams` caps exponents at 11 bits (2^2047 overflows the f64 used
//! for exact reference arithmetic), so GF32 is built as e11m20 — recorded
//! in DESIGN.md §14.

use crate::bitstring::Bitstring;
use crate::format::{DynamicRange, NumberFormat, Quantized};
use crate::fp::FloatingPoint;
use crate::metadata::Metadata;
use tensor::Tensor;

/// An N-bit GoldenFloat (`gf:N`): a [`FloatingPoint`] whose e/m split is
/// derived from the golden ratio.
///
/// # Examples
///
/// ```
/// use formats::{GoldenFloat, NumberFormat};
/// let gf16 = GoldenFloat::new(16);
/// assert_eq!(gf16.name(), "gf16_e6m9");
/// // Same arithmetic identity as DLFloat16 — shared cache entries.
/// assert_eq!(gf16.canonical_spec(), "fp:e6m9");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GoldenFloat {
    n: u32,
    inner: FloatingPoint,
}

impl GoldenFloat {
    /// The φ-derived `(exp_bits, man_bits)` split for an N-bit float:
    /// `e = round(N / φ²)` clamped into the fabric's 2..=11 exponent
    /// range, `m = N − 1 − e`.
    pub fn phi_split(n: u32) -> (u32, u32) {
        let phi = (1.0 + 5f64.sqrt()) / 2.0;
        let e = ((n as f64) / (phi * phi)).round() as u32;
        let e = e.clamp(2, 11);
        (e, n - 1 - e)
    }

    /// Creates an N-bit GoldenFloat.
    ///
    /// # Panics
    ///
    /// Panics if `n ∉ 4..=64`.
    pub fn new(n: u32) -> Self {
        assert!((4..=64).contains(&n), "GoldenFloat width {n} out of range 4..=64");
        let (e, m) = Self::phi_split(n);
        GoldenFloat { n, inner: FloatingPoint::new(e, m) }
    }

    /// Total width in bits.
    pub fn n(&self) -> u32 {
        self.n
    }

    /// Exponent width of the split.
    pub fn exp_bits(&self) -> u32 {
        self.inner.exp_bits()
    }

    /// Mantissa width of the split.
    pub fn man_bits(&self) -> u32 {
        self.inner.man_bits()
    }
}

impl NumberFormat for GoldenFloat {
    fn name(&self) -> String {
        format!("gf{}_e{}m{}", self.n, self.inner.exp_bits(), self.inner.man_bits())
    }

    /// Aliases to the equivalent `fp:eXmY` — GoldenFloat quantises
    /// identically to that FloatingPoint, so the store and LUT cache must
    /// key them together.
    fn canonical_spec(&self) -> String {
        self.inner.canonical_spec()
    }

    fn bit_width(&self) -> u32 {
        self.inner.bit_width()
    }

    fn real_to_format_tensor(&self, t: &Tensor) -> Quantized {
        self.inner.real_to_format_tensor(t)
    }

    fn elementwise_quantizer(&self) -> Option<Box<dyn Fn(f32) -> f32 + Send + Sync + '_>> {
        self.inner.elementwise_quantizer()
    }

    fn real_to_format(&self, value: f32, meta: &Metadata, index: usize) -> Bitstring {
        self.inner.real_to_format(value, meta, index)
    }

    fn format_to_real(&self, bits: &Bitstring, meta: &Metadata, index: usize) -> f32 {
        self.inner.format_to_real(bits, meta, index)
    }

    fn dynamic_range(&self) -> DynamicRange {
        self.inner.dynamic_range()
    }

    fn exponent_field(&self) -> Option<std::ops::Range<usize>> {
        self.inner.exponent_field()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phi_splits() {
        assert_eq!(GoldenFloat::phi_split(8), (3, 4));
        assert_eq!(GoldenFloat::phi_split(16), (6, 9));
        // φ-split would be e12m19; clamped to the fabric's 11-bit cap.
        assert_eq!(GoldenFloat::phi_split(32), (11, 20));
        assert_eq!(GoldenFloat::phi_split(4), (2, 1));
    }

    #[test]
    fn names_and_aliases() {
        assert_eq!(GoldenFloat::new(8).name(), "gf8_e3m4");
        assert_eq!(GoldenFloat::new(8).canonical_spec(), "fp:e3m4");
        assert_eq!(GoldenFloat::new(16).canonical_spec(), "fp:e6m9");
        assert_eq!(GoldenFloat::new(32).canonical_spec(), "fp:e11m20");
        assert_eq!(GoldenFloat::new(32).bit_width(), 32);
    }

    #[test]
    fn lucas_numbers_quantise_exactly() {
        // The GoldenFloat paper's party trick: Lucas numbers (the φ-powers'
        // integer shadows) up to 2^(m+1) are exactly representable.
        let mut lucas = vec![2u64, 1];
        while *lucas.last().unwrap() < 1 << 20 {
            let k = lucas.len();
            lucas.push(lucas[k - 1] + lucas[k - 2]);
        }
        for gf in [GoldenFloat::new(8), GoldenFloat::new(16), GoldenFloat::new(32)] {
            // Exact while the integer fits the significand AND the range
            // (GF8's e3m4 tops out at 15.5, below the 2^(m+1) = 32 bound).
            let limit = (1u64 << (gf.man_bits() + 1)).min(gf.dynamic_range().max_abs as u64);
            for &l in lucas.iter().filter(|&&l| l <= limit) {
                assert_eq!(gf.quantize_value(l as f32), l as f32, "L={l} in {}", gf.name());
            }
        }
    }

    #[test]
    fn matches_equivalent_floating_point_bitwise() {
        let gf = GoldenFloat::new(16);
        let fp = FloatingPoint::dlfloat16();
        let x = Tensor::from_vec((0..512).map(|i| ((i as f32) - 256.0) * 37.77).collect(), [512]);
        let qg = gf.real_to_format_tensor(&x);
        let qf = fp.real_to_format_tensor(&x);
        assert_eq!(qg.values, qf.values);
        assert_eq!(qg.meta, qf.meta);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn silly_widths_panic() {
        GoldenFloat::new(3);
    }
}
