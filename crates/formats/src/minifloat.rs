//! Scalar arithmetic for the microscaling-era narrow floats.
//!
//! The OCP MX element formats (FP4 e2m1, FP6 e2m3/e3m2, FP8 e4m3/e5m2) and
//! the IEEE P3109-style FP8 profiles all share the `[s | e | m]` layout of
//! [`crate::fp::FpParams`] but disagree on what the *top of the code space*
//! means: full IEEE Inf/NaN reservation, a single NaN code, or no special
//! codes at all. [`MiniFloat`] parameterises exactly that choice so each
//! variant stays honest (§ISSUE satellite: clamping saturates to the format
//! max instead of round-tripping through `f32::INFINITY`, `−0.0` survives
//! where a −0 code exists, and flips landing on reclaimed "special"
//! encodings decode to defined values).
//!
//! Denormals are always on — every covered spec (OCP MX 1.0, P3109,
//! GoldenFloat) mandates subnormal support.

use crate::fp::{exp2, exponent_of, round_ties_even};

/// How a format treats the top of its code space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SpecialRule {
    /// IEEE-754: the all-ones exponent field is reserved for ±Inf / NaN.
    Ieee,
    /// OCP "fn" convention (FP8 e4m3): only all-ones exponent + all-ones
    /// mantissa is NaN; the rest of the top binade is finite. No Inf.
    NanOnly,
    /// Every code is a finite number (OCP FP4/FP6). No Inf, no NaN.
    Finite,
    /// P3109-style: one NaN at the would-be −0 code (`1 << (e+m)`); every
    /// other code is finite. No Inf and no −0.
    SingleNan,
}

/// A narrow `[s | e | m]` float with a configurable special-value rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct MiniFloat {
    pub e: u32,
    pub m: u32,
    pub rule: SpecialRule,
}

impl MiniFloat {
    pub(crate) fn new(e: u32, m: u32, rule: SpecialRule) -> Self {
        assert!((2..=8).contains(&e), "exponent width {e} out of range 2..=8");
        assert!((1..=10).contains(&m), "mantissa width {m} out of range 1..=10");
        MiniFloat { e, m, rule }
    }

    pub(crate) fn bias(&self) -> i64 {
        (1i64 << (self.e - 1)) - 1
    }

    /// Largest exponent that holds finite values. Under [`SpecialRule::Ieee`]
    /// the all-ones field is reserved; the other rules reclaim it.
    pub(crate) fn emax(&self) -> i64 {
        match self.rule {
            SpecialRule::Ieee => (1i64 << self.e) - 2 - self.bias(),
            _ => (1i64 << self.e) - 1 - self.bias(),
        }
    }

    pub(crate) fn emin(&self) -> i64 {
        1 - self.bias()
    }

    /// Largest finite mantissa field in the top binade.
    fn top_mant(&self) -> u64 {
        match self.rule {
            SpecialRule::NanOnly => (1u64 << self.m) - 2,
            _ => (1u64 << self.m) - 1,
        }
    }

    /// Largest finite magnitude (448 for e4m3 under `NanOnly`, 57344 for
    /// e5m2 under `Ieee`, 6 for e2m1 under `Finite`).
    pub(crate) fn max_value(&self) -> f64 {
        exp2(self.emax()) * (1.0 + self.top_mant() as f64 * exp2(-(self.m as i64)))
    }

    pub(crate) fn min_denormal(&self) -> f64 {
        exp2(self.emin() - self.m as i64)
    }

    pub(crate) fn width(&self) -> usize {
        1 + self.e as usize + self.m as usize
    }

    pub(crate) fn has_nan(&self) -> bool {
        !matches!(self.rule, SpecialRule::Finite)
    }

    pub(crate) fn has_inf(&self) -> bool {
        matches!(self.rule, SpecialRule::Ieee)
    }

    /// The canonical NaN code for rules that have one.
    pub(crate) fn nan_code(&self) -> u64 {
        match self.rule {
            SpecialRule::SingleNan => 1u64 << (self.e + self.m),
            _ => ((((1u64 << self.e) - 1) << self.m) | ((1u64 << self.m) - 1)) & self.code_mask(),
        }
    }

    fn code_mask(&self) -> u64 {
        (1u64 << self.width()) - 1
    }

    /// Rounds to the nearest representable value (ties to even), saturating
    /// at `±max_value` — ±Inf inputs included. NaN maps to NaN when a NaN
    /// code exists and to 0 otherwise; `−0.0` becomes `+0.0` under
    /// [`SpecialRule::SingleNan`] (the format has no −0 code).
    pub(crate) fn quantize(&self, x: f64) -> f64 {
        if x.is_nan() {
            return if self.has_nan() { f64::NAN } else { 0.0 };
        }
        if x == 0.0 {
            return if matches!(self.rule, SpecialRule::SingleNan) { 0.0 } else { x };
        }
        let sign = if x < 0.0 { -1.0 } else { 1.0 };
        if x.is_infinite() {
            return sign * self.max_value();
        }
        let a = x.abs();
        let v = if exponent_of(a) >= self.emin() {
            let scale = exp2(exponent_of(a) - self.m as i64);
            // min() saturates both beyond-range inputs and in-range values
            // whose mantissa rounds up into a reclaimed "special" slot
            // (e.g. 460 → 480 would be e4m3's NaN code; it must be 448).
            (round_ties_even(a / scale) * scale).min(self.max_value())
        } else {
            let step = self.min_denormal();
            round_ties_even(a / step) * step
        };
        if v == 0.0 && matches!(self.rule, SpecialRule::SingleNan) {
            return 0.0;
        }
        sign * v
    }

    /// Encodes to the integer image of the `[s | e | m]` word. Quantises
    /// first, so any f64 is accepted.
    pub(crate) fn encode(&self, x: f64) -> u64 {
        if x.is_infinite() && self.has_inf() {
            // ±Inf codes exist only under IEEE rules, and they must
            // round-trip through Methods 3/4 even though Method 1
            // saturates them (same convention as `FpParams::encode`).
            let exp_ones = (1u64 << self.e) - 1;
            return ((x.is_sign_negative() as u64) << (self.e + self.m)) | (exp_ones << self.m);
        }
        let v = self.quantize(x);
        if v.is_nan() {
            return self.nan_code();
        }
        let sign = v.is_sign_negative() as u64;
        let a = v.abs();
        if a == 0.0 {
            return sign << (self.e + self.m);
        }
        let ev = exponent_of(a);
        let (exp_field, mant_field) = if ev >= self.emin() {
            let mant = round_ties_even((a / exp2(ev) - 1.0) * exp2(self.m as i64)) as u64;
            ((ev + self.bias()) as u64, mant)
        } else {
            (0u64, round_ties_even(a / self.min_denormal()) as u64)
        };
        (sign << (self.e + self.m)) | (exp_field << self.m) | (mant_field & ((1u64 << self.m) - 1))
    }

    /// Decodes an integer code. Every code decodes to a defined value:
    /// codes that would be Inf/NaN under IEEE but are reclaimed by the rule
    /// decode as ordinary finite numbers.
    pub(crate) fn decode(&self, code: u64) -> f64 {
        let (e, m) = (self.e, self.m);
        let sign_bit = (code >> (e + m)) & 1;
        let exp_field = (code >> m) & ((1u64 << e) - 1);
        let mant = code & ((1u64 << m) - 1);
        let sign = if sign_bit == 1 { -1.0 } else { 1.0 };
        let exp_ones = (1u64 << e) - 1;
        match self.rule {
            SpecialRule::Ieee if exp_field == exp_ones => {
                return if mant == 0 { sign * f64::INFINITY } else { f64::NAN };
            }
            SpecialRule::NanOnly if exp_field == exp_ones && mant == (1u64 << m) - 1 => {
                return f64::NAN;
            }
            SpecialRule::SingleNan if code & self.code_mask() == self.nan_code() => {
                return f64::NAN;
            }
            _ => {}
        }
        if exp_field == 0 {
            return sign * mant as f64 * self.min_denormal();
        }
        sign * exp2(exp_field as i64 - self.bias()) * (1.0 + mant as f64 * exp2(-(m as i64)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e4m3fn() -> MiniFloat {
        MiniFloat::new(4, 3, SpecialRule::NanOnly)
    }

    fn e2m1() -> MiniFloat {
        MiniFloat::new(2, 1, SpecialRule::Finite)
    }

    fn p3109_e4m3() -> MiniFloat {
        MiniFloat::new(4, 3, SpecialRule::SingleNan)
    }

    #[test]
    fn ocp_maxima() {
        assert_eq!(e2m1().max_value(), 6.0);
        assert_eq!(MiniFloat::new(2, 3, SpecialRule::Finite).max_value(), 7.5);
        assert_eq!(MiniFloat::new(3, 2, SpecialRule::Finite).max_value(), 28.0);
        assert_eq!(e4m3fn().max_value(), 448.0);
        assert_eq!(MiniFloat::new(5, 2, SpecialRule::Ieee).max_value(), 57344.0);
    }

    #[test]
    fn saturation_never_produces_special_codes() {
        // 460 rounds up to 480 — the bit pattern that would be e4m3fn's
        // NaN — so the quantiser must saturate to 448 instead.
        let f = e4m3fn();
        assert_eq!(f.quantize(460.0), 448.0);
        assert_eq!(f.quantize(1e30), 448.0);
        assert_eq!(f.quantize(f64::INFINITY), 448.0);
        assert_eq!(f.quantize(f64::NEG_INFINITY), -448.0);
        assert!(f.decode(f.encode(1e30)).is_finite());
    }

    #[test]
    fn finite_rule_has_no_specials() {
        let f = e2m1();
        for code in 0..(1u64 << f.width()) {
            assert!(f.decode(code).is_finite(), "code {code:#x}");
        }
        assert_eq!(f.quantize(f64::NAN), 0.0);
        assert_eq!(f.quantize(f64::INFINITY), 6.0);
    }

    #[test]
    fn single_nan_lives_at_sign_zero() {
        let f = p3109_e4m3();
        assert!(f.decode(0x80).is_nan());
        assert_eq!(f.encode(f64::NAN), 0x80);
        for code in 0..256u64 {
            if code != 0x80 {
                assert!(f.decode(code).is_finite(), "code {code:#x}");
            }
        }
        // No −0: the sign of zero cannot survive.
        assert!(!f.quantize(-0.0).is_sign_negative());
        assert_eq!(f.encode(-0.0), 0);
        // Negative underflow rounds to +0, never −0.
        assert!(!f.quantize(-f.min_denormal() / 8.0).is_sign_negative());
    }

    #[test]
    fn signed_zero_survives_outside_single_nan() {
        for rule in [SpecialRule::Ieee, SpecialRule::NanOnly, SpecialRule::Finite] {
            let f = MiniFloat::new(4, 3, rule);
            assert!(f.quantize(-0.0).is_sign_negative(), "{rule:?}");
            let code = f.encode(-0.0);
            assert_eq!(code, 1 << 7, "{rule:?}");
            assert!(f.decode(code).is_sign_negative(), "{rule:?}");
        }
    }

    #[test]
    fn decode_encode_is_a_fixpoint_for_every_code_and_rule() {
        for rule in
            [SpecialRule::Ieee, SpecialRule::NanOnly, SpecialRule::Finite, SpecialRule::SingleNan]
        {
            for (e, m) in [(2, 1), (2, 3), (3, 2), (4, 3), (5, 2)] {
                let f = MiniFloat::new(e, m, rule);
                for code in 0..(1u64 << f.width()) {
                    let v = f.decode(code);
                    let v2 = f.decode(f.encode(v));
                    let ok = v.to_bits() == v2.to_bits() || (v.is_nan() && v2.is_nan());
                    assert!(ok, "{rule:?} e{e}m{m} code {code:#x}: {v} re-decodes as {v2}");
                }
            }
        }
    }

    #[test]
    fn quantize_agrees_with_decode_encode() {
        for rule in
            [SpecialRule::Ieee, SpecialRule::NanOnly, SpecialRule::Finite, SpecialRule::SingleNan]
        {
            let f = MiniFloat::new(4, 3, rule);
            for i in -2000..2000 {
                let x = i as f64 * 0.37;
                let q = f.quantize(x);
                let via_codes = f.decode(f.encode(x));
                assert_eq!(q.to_bits(), via_codes.to_bits(), "{rule:?} at {x}");
            }
        }
    }

    #[test]
    fn ieee_rule_matches_fp_params() {
        use crate::fp::FpParams;
        let mini = MiniFloat::new(5, 2, SpecialRule::Ieee);
        let fp = FpParams::new(5, 2, true);
        for i in -4000..4000 {
            let x = i as f64 * 23.917;
            assert_eq!(mini.quantize(x).to_bits(), fp.quantize(x).to_bits(), "at {x}");
        }
    }
}
