//! Memory-footprint accounting: how many bits a tensor occupies under
//! each format, split into data and metadata.
//!
//! This quantifies the paper's §II-A motivation for BFP — "a tensor
//! \[can\] significantly reduce its memory footprint by only saving one
//! exponent (e.g., 8 bits) for the entire tensor" — and gives accelerator
//! designers the bits-per-value axis of the paper's §V-A trade-off
//! (bit width as a proxy for area and bandwidth).

use crate::format::NumberFormat;
use crate::metadata::Metadata;
use tensor::Tensor;

/// Storage cost of one quantised tensor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Footprint {
    /// Bits spent on element values.
    pub data_bits: u64,
    /// Bits spent on hardware metadata (scales / shared exponents / bias).
    pub metadata_bits: u64,
    /// Number of elements covered.
    pub elements: u64,
}

impl Footprint {
    /// Total bits.
    pub fn total_bits(&self) -> u64 {
        self.data_bits + self.metadata_bits
    }

    /// Effective bits per element, metadata amortised.
    pub fn bits_per_element(&self) -> f64 {
        if self.elements == 0 {
            0.0
        } else {
            self.total_bits() as f64 / self.elements as f64
        }
    }

    /// Compression ratio versus IEEE-754 FP32 storage.
    pub fn compression_vs_fp32(&self) -> f64 {
        if self.total_bits() == 0 {
            0.0
        } else {
            (self.elements * 32) as f64 / self.total_bits() as f64
        }
    }
}

/// Computes the storage footprint of `t` under `format`.
pub fn footprint(format: &dyn NumberFormat, t: &Tensor) -> Footprint {
    let q = format.real_to_format_tensor(t);
    let elements = t.numel() as u64;
    let data_bits = elements * format.bit_width() as u64;
    let metadata_bits = metadata_bits(&q.meta);
    Footprint { data_bits, metadata_bits, elements }
}

/// Total bits held in metadata registers.
pub fn metadata_bits(meta: &Metadata) -> u64 {
    meta.word_count() as u64 * meta.word_width() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AdaptivFloat, BlockFloatingPoint, FloatingPoint, IntQuant};

    fn sample(n: usize) -> Tensor {
        Tensor::from_vec((0..n).map(|i| (i as f32 * 0.37).sin()).collect(), [n])
    }

    #[test]
    fn fp16_is_exactly_16_bits_per_element() {
        let f = footprint(&FloatingPoint::fp16(), &sample(1000));
        assert_eq!(f.data_bits, 16_000);
        assert_eq!(f.metadata_bits, 0);
        assert_eq!(f.bits_per_element(), 16.0);
        assert_eq!(f.compression_vs_fp32(), 2.0);
    }

    #[test]
    fn int8_pays_one_scale_register() {
        let f = footprint(&IntQuant::new(8), &sample(1000));
        assert_eq!(f.data_bits, 8_000);
        assert_eq!(f.metadata_bits, 32);
        assert!((f.bits_per_element() - 8.032).abs() < 1e-9);
    }

    #[test]
    fn bfp_amortises_the_shared_exponent() {
        // The paper's §II-A point: e8m7 BFP with per-tensor sharing stores
        // 8 bits of exponent once, vs bfloat16 storing it per value.
        let bf16 = footprint(&FloatingPoint::bfloat16(), &sample(4096));
        let bfp = footprint(&BlockFloatingPoint::per_tensor(8, 7), &sample(4096));
        assert_eq!(bf16.bits_per_element(), 16.0);
        assert!(bfp.bits_per_element() < 8.01, "{}", bfp.bits_per_element());
        assert!(bfp.compression_vs_fp32() > 3.9);
        // Smaller blocks pay more metadata.
        let blocked = footprint(&BlockFloatingPoint::new(8, 7, 16), &sample(4096));
        assert!(blocked.metadata_bits > bfp.metadata_bits);
        assert_eq!(blocked.metadata_bits, (4096 / 16) * 8);
    }

    #[test]
    fn afp_metadata_is_one_bias_register() {
        let f = footprint(&AdaptivFloat::new(4, 3), &sample(256));
        assert_eq!(f.data_bits, 256 * 8);
        assert_eq!(f.metadata_bits, 4);
    }

    #[test]
    fn empty_tensor_is_free() {
        let f = Footprint { data_bits: 0, metadata_bits: 0, elements: 0 };
        assert_eq!(f.bits_per_element(), 0.0);
        assert_eq!(f.compression_vs_fp32(), 0.0);
    }
}
