//! Textual format specifications — the CLI-facing "hyperparameter knobs"
//! of the paper's §IV-B, e.g. `fp:e4m3`, `bfp:e5m5:b16`, `int:8`.

use crate::afp::AdaptivFloat;
use crate::bfp::BlockFloatingPoint;
use crate::format::NumberFormat;
use crate::fp::FloatingPoint;
use crate::fxp::FixedPoint;
use crate::gf::GoldenFloat;
use crate::int::IntQuant;
use crate::mx::{MxElem, MxFloat};
use crate::p3109::P3109;
use std::fmt;
use std::str::FromStr;

/// Error returned when a format specification fails to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseFormatError {
    spec: String,
    reason: String,
}

impl fmt::Display for ParseFormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid format spec `{}`: {}", self.spec, self.reason)
    }
}

impl std::error::Error for ParseFormatError {}

/// A parsed number-format specification, convertible into a boxed
/// [`NumberFormat`].
///
/// Grammar (case-insensitive):
///
/// - `fp:eXmY[:nodn]` — floating point, optional denormal disable
/// - `fxp:1:I:F` — fixed point with I integer / F fraction bits
/// - `int:B` — B-bit symmetric integer quantisation
/// - `bfp:eXmY:bN` — block floating point with block size N;
///   `bfp:eXmY:tensor` shares one exponent across the whole tensor
/// - `afp:eXmY` — AdaptivFloat
/// - `posit:N:ES` — posit⟨N, ES⟩
/// - `mx:<elem>:bN` — OCP microscaling with an E8M0 block scale; `<elem>`
///   is one of `fp4e2m1`, `fp6e2m3`, `fp6e3m2`, `fp8e4m3`, `fp8e5m2`
/// - `p3109:eXmY` — saturating 8-bit P3109-style profile (`1+X+Y == 8`)
/// - `gf:N` — GoldenFloat static golden-ratio split, N ∈ {8, 16, 32}
/// - named shorthands: `fp32`, `fp16`, `bfloat16`, `tf32`, `dlfloat16`,
///   `fp8` (= `fp:e4m3`), `int8`, `int16`, `posit8`, `posit16`,
///   `mxfp4`/`mxfp6`/`mxfp8` (= `mx:fp4e2m1:b32` / `mx:fp6e2m3:b32` /
///   `mx:fp8e4m3:b32`)
///
/// # Examples
///
/// ```
/// use formats::FormatSpec;
/// let spec: FormatSpec = "bfp:e5m5:b16".parse()?;
/// assert_eq!(spec.build().name(), "bfp_e5m5_b16");
/// # Ok::<(), formats::ParseFormatError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FormatSpec {
    /// `fp:eXmY[:nodn]`
    Fp {
        /// Exponent bits.
        exp: u32,
        /// Mantissa bits.
        man: u32,
        /// Whether denormals are representable.
        denormals: bool,
    },
    /// `fxp:1:I:F`
    Fxp {
        /// Integer bits.
        int: u32,
        /// Fraction bits (the radix).
        frac: u32,
    },
    /// `int:B`
    Int {
        /// Total bits, sign included.
        bits: u32,
    },
    /// `bfp:eXmY:bN` or `bfp:eXmY:tensor` (`block = usize::MAX`)
    Bfp {
        /// Shared-exponent bits.
        exp: u32,
        /// Per-element mantissa bits.
        man: u32,
        /// Elements per shared exponent (`usize::MAX` = whole tensor).
        block: usize,
    },
    /// `afp:eXmY`
    Afp {
        /// Exponent bits.
        exp: u32,
        /// Mantissa bits.
        man: u32,
    },
    /// `posit:N:ES`
    Posit {
        /// Total bits.
        n: u32,
        /// Exponent-field bits.
        es: u32,
    },
    /// `mx:<elem>:bN`
    Mx {
        /// Element format.
        elem: MxElem,
        /// Elements per shared E8M0 scale.
        block: usize,
    },
    /// `p3109:eXmY` (`1 + exp + man == 8`)
    P3109 {
        /// Exponent bits.
        exp: u32,
        /// Mantissa bits.
        man: u32,
    },
    /// `gf:N` (N ∈ {8, 16, 32})
    Gf {
        /// Total bits.
        n: u32,
    },
}

impl FormatSpec {
    /// Instantiates the parsed specification.
    pub fn build(&self) -> Box<dyn NumberFormat> {
        match *self {
            FormatSpec::Fp { exp, man, denormals } => {
                Box::new(FloatingPoint::new(exp, man).with_denormals(denormals))
            }
            FormatSpec::Fxp { int, frac } => Box::new(FixedPoint::new(int, frac)),
            FormatSpec::Int { bits } => Box::new(IntQuant::new(bits)),
            FormatSpec::Bfp { exp, man, block } => {
                Box::new(BlockFloatingPoint::new(exp, man, block))
            }
            FormatSpec::Afp { exp, man } => Box::new(AdaptivFloat::new(exp, man)),
            FormatSpec::Posit { n, es } => Box::new(crate::posit::Posit::new(n, es)),
            FormatSpec::Mx { elem, block } => Box::new(MxFloat::new(elem, block)),
            FormatSpec::P3109 { exp, man } => Box::new(P3109::new(exp, man)),
            FormatSpec::Gf { n } => Box::new(GoldenFloat::new(n)),
        }
    }
}

fn parse_em(tok: &str) -> Option<(u32, u32)> {
    // "e4m3" → (4, 3)
    let rest = tok.strip_prefix('e')?;
    let mpos = rest.find('m')?;
    let e = rest[..mpos].parse().ok()?;
    let m = rest[mpos + 1..].parse().ok()?;
    Some((e, m))
}

impl FromStr for FormatSpec {
    type Err = ParseFormatError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err =
            |reason: &str| ParseFormatError { spec: s.to_string(), reason: reason.to_string() };
        let lower = s.to_ascii_lowercase();
        match lower.as_str() {
            "fp32" => return Ok(FormatSpec::Fp { exp: 8, man: 23, denormals: true }),
            "fp16" | "half" => return Ok(FormatSpec::Fp { exp: 5, man: 10, denormals: true }),
            "bfloat16" | "bf16" => return Ok(FormatSpec::Fp { exp: 8, man: 7, denormals: true }),
            "tf32" | "tensorfloat32" => {
                return Ok(FormatSpec::Fp { exp: 8, man: 10, denormals: true })
            }
            "dlfloat16" => return Ok(FormatSpec::Fp { exp: 6, man: 9, denormals: true }),
            "fp8" => return Ok(FormatSpec::Fp { exp: 4, man: 3, denormals: true }),
            "int8" => return Ok(FormatSpec::Int { bits: 8 }),
            "int16" => return Ok(FormatSpec::Int { bits: 16 }),
            "posit8" => return Ok(FormatSpec::Posit { n: 8, es: 0 }),
            "posit16" => return Ok(FormatSpec::Posit { n: 16, es: 1 }),
            "mxfp4" => return Ok(FormatSpec::Mx { elem: MxElem::Fp4E2m1, block: 32 }),
            "mxfp6" => return Ok(FormatSpec::Mx { elem: MxElem::Fp6E2m3, block: 32 }),
            "mxfp8" => return Ok(FormatSpec::Mx { elem: MxElem::Fp8E4m3, block: 32 }),
            _ => {}
        }
        let parts: Vec<&str> = lower.split(':').collect();
        match parts.as_slice() {
            ["fp", em] => {
                let (exp, man) = parse_em(em).ok_or_else(|| err("expected eXmY"))?;
                Ok(FormatSpec::Fp { exp, man, denormals: true })
            }
            ["fp", em, "nodn"] => {
                let (exp, man) = parse_em(em).ok_or_else(|| err("expected eXmY"))?;
                Ok(FormatSpec::Fp { exp, man, denormals: false })
            }
            ["fxp", "1", i, f] => {
                let int = i.parse().map_err(|_| err("bad integer-bit count"))?;
                let frac = f.parse().map_err(|_| err("bad fraction-bit count"))?;
                Ok(FormatSpec::Fxp { int, frac })
            }
            ["int", b] => {
                let bits = b.parse().map_err(|_| err("bad bit count"))?;
                Ok(FormatSpec::Int { bits })
            }
            ["bfp", em, blk] => {
                let (exp, man) = parse_em(em).ok_or_else(|| err("expected eXmY"))?;
                let block = if *blk == "tensor" {
                    usize::MAX
                } else {
                    blk.strip_prefix('b')
                        .and_then(|n| n.parse().ok())
                        .ok_or_else(|| err("expected bN or `tensor` block size"))?
                };
                Ok(FormatSpec::Bfp { exp, man, block })
            }
            ["afp", em] => {
                let (exp, man) = parse_em(em).ok_or_else(|| err("expected eXmY"))?;
                Ok(FormatSpec::Afp { exp, man })
            }
            ["posit", n, es] => {
                let n = n.parse().map_err(|_| err("bad posit width"))?;
                let es = es.parse().map_err(|_| err("bad posit es"))?;
                Ok(FormatSpec::Posit { n, es })
            }
            ["mx", elem, blk] => {
                let elem = MxElem::parse(elem).ok_or_else(|| {
                    err("unknown MX element (fp4e2m1/fp6e2m3/fp6e3m2/fp8e4m3/fp8e5m2)")
                })?;
                let block = blk
                    .strip_prefix('b')
                    .and_then(|x| x.parse().ok())
                    .filter(|&b: &usize| b > 0 && b != usize::MAX)
                    .ok_or_else(|| err("expected bN block size"))?;
                Ok(FormatSpec::Mx { elem, block })
            }
            ["p3109", em] => {
                let (exp, man) = parse_em(em).ok_or_else(|| err("expected eXmY"))?;
                if 1 + exp + man != 8 || !(2..=6).contains(&exp) {
                    return Err(err("P3109 profiles are 8-bit: 1+e+m == 8 with e in 2..=6"));
                }
                Ok(FormatSpec::P3109 { exp, man })
            }
            ["gf", n] => {
                let n = n.parse().map_err(|_| err("bad GoldenFloat width"))?;
                if !matches!(n, 8 | 16 | 32) {
                    return Err(err("GoldenFloat widths are 8, 16, or 32"));
                }
                Ok(FormatSpec::Gf { n })
            }
            _ => Err(err("unknown format family")),
        }
    }
}

impl fmt::Display for FormatSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FormatSpec::Fp { exp, man, denormals: true } => write!(f, "fp:e{exp}m{man}"),
            FormatSpec::Fp { exp, man, denormals: false } => write!(f, "fp:e{exp}m{man}:nodn"),
            FormatSpec::Fxp { int, frac } => write!(f, "fxp:1:{int}:{frac}"),
            FormatSpec::Int { bits } => write!(f, "int:{bits}"),
            FormatSpec::Bfp { exp, man, block: usize::MAX } => write!(f, "bfp:e{exp}m{man}:tensor"),
            FormatSpec::Bfp { exp, man, block } => write!(f, "bfp:e{exp}m{man}:b{block}"),
            FormatSpec::Afp { exp, man } => write!(f, "afp:e{exp}m{man}"),
            FormatSpec::Posit { n, es } => write!(f, "posit:{n}:{es}"),
            FormatSpec::Mx { elem, block } => write!(f, "mx:{}:b{block}", elem.token()),
            FormatSpec::P3109 { exp, man } => write!(f, "p3109:e{exp}m{man}"),
            FormatSpec::Gf { n } => write!(f, "gf:{n}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_families() {
        assert_eq!(
            "fp:e4m3".parse::<FormatSpec>().unwrap(),
            FormatSpec::Fp { exp: 4, man: 3, denormals: true }
        );
        assert_eq!(
            "fp:e5m10:nodn".parse::<FormatSpec>().unwrap(),
            FormatSpec::Fp { exp: 5, man: 10, denormals: false }
        );
        assert_eq!(
            "fxp:1:15:16".parse::<FormatSpec>().unwrap(),
            FormatSpec::Fxp { int: 15, frac: 16 }
        );
        assert_eq!("int:8".parse::<FormatSpec>().unwrap(), FormatSpec::Int { bits: 8 });
        assert_eq!(
            "bfp:e5m5:b16".parse::<FormatSpec>().unwrap(),
            FormatSpec::Bfp { exp: 5, man: 5, block: 16 }
        );
        assert_eq!("afp:e4m3".parse::<FormatSpec>().unwrap(), FormatSpec::Afp { exp: 4, man: 3 });
        assert_eq!("posit:8:1".parse::<FormatSpec>().unwrap(), FormatSpec::Posit { n: 8, es: 1 });
        assert_eq!(
            "bfp:e5m5:tensor".parse::<FormatSpec>().unwrap(),
            FormatSpec::Bfp { exp: 5, man: 5, block: usize::MAX }
        );
        assert_eq!(
            "mx:fp4e2m1:b32".parse::<FormatSpec>().unwrap(),
            FormatSpec::Mx { elem: MxElem::Fp4E2m1, block: 32 }
        );
        assert_eq!(
            "mx:fp8e5m2:b16".parse::<FormatSpec>().unwrap(),
            FormatSpec::Mx { elem: MxElem::Fp8E5m2, block: 16 }
        );
        assert_eq!(
            "p3109:e4m3".parse::<FormatSpec>().unwrap(),
            FormatSpec::P3109 { exp: 4, man: 3 }
        );
        assert_eq!("gf:16".parse::<FormatSpec>().unwrap(), FormatSpec::Gf { n: 16 });
    }

    #[test]
    fn parse_shorthands() {
        assert_eq!(
            "bfloat16".parse::<FormatSpec>().unwrap(),
            FormatSpec::Fp { exp: 8, man: 7, denormals: true }
        );
        assert_eq!("int8".parse::<FormatSpec>().unwrap(), FormatSpec::Int { bits: 8 });
        assert_eq!(
            "mxfp4".parse::<FormatSpec>().unwrap(),
            FormatSpec::Mx { elem: MxElem::Fp4E2m1, block: 32 }
        );
        assert_eq!(
            "mxfp6".parse::<FormatSpec>().unwrap(),
            FormatSpec::Mx { elem: MxElem::Fp6E2m3, block: 32 }
        );
        assert_eq!(
            "mxfp8".parse::<FormatSpec>().unwrap(),
            FormatSpec::Mx { elem: MxElem::Fp8E4m3, block: 32 }
        );
    }

    #[test]
    fn display_roundtrip() {
        for s in [
            "fp:e4m3",
            "fp:e5m2:nodn",
            "fxp:1:7:8",
            "int:8",
            "bfp:e8m7:b32",
            "bfp:e5m5:tensor",
            "afp:e3m4",
            "posit:16:1",
            "mx:fp4e2m1:b32",
            "mx:fp8e5m2:b16",
            "p3109:e5m2",
            "gf:8",
        ] {
            let spec: FormatSpec = s.parse().unwrap();
            assert_eq!(spec.to_string(), s);
            assert_eq!(spec.to_string().parse::<FormatSpec>().unwrap(), spec);
        }
    }

    #[test]
    fn build_produces_right_names() {
        let spec: FormatSpec = "bfp:e5m5:b16".parse().unwrap();
        assert_eq!(spec.build().name(), "bfp_e5m5_b16");
        let spec: FormatSpec = "fp32".parse().unwrap();
        assert_eq!(spec.build().name(), "fp_e8m23");
        let spec: FormatSpec = "mx:fp8e4m3:b32".parse().unwrap();
        assert_eq!(spec.build().name(), "mx_fp8e4m3_b32");
        let spec: FormatSpec = "p3109:e4m3".parse().unwrap();
        assert_eq!(spec.build().name(), "p3109_e4m3");
        let spec: FormatSpec = "gf:8".parse().unwrap();
        assert_eq!(spec.build().name(), "gf8_e3m4");
    }

    #[test]
    fn canonical_spec_roundtrips_through_the_grammar() {
        // The store keys artifacts by `NumberFormat::canonical_spec`; for
        // every spec-constructible format that string must parse back to
        // the spec that built it, so shorthand and explicit constructions
        // share cache entries.
        for s in [
            "fp:e4m3",
            "fp:e5m2:nodn",
            "fp8",
            "bfloat16",
            "fxp:1:7:8",
            "int:8",
            "int16",
            "bfp:e8m7:b32",
            "bfp:e5m5:tensor",
            "afp:e3m4",
            "posit:16:1",
            "posit8",
            "mx:fp4e2m1:b32",
            "mx:fp8e5m2:b16",
            "mxfp8",
            "p3109:e4m3",
        ] {
            let spec: FormatSpec = s.parse().unwrap();
            let canon = spec.build().canonical_spec();
            assert_eq!(canon.parse::<FormatSpec>().unwrap(), spec, "via `{s}` → `{canon}`");
            assert_eq!(canon, spec.to_string(), "canonical_spec must equal FormatSpec Display");
        }
    }

    #[test]
    fn goldenfloat_canonical_spec_aliases_to_fp() {
        // `gf:N` deliberately does NOT canonicalise to itself: a GoldenFloat
        // quantises identically to its φ-split FloatingPoint, so the store
        // and LUT cache must treat them as one format.
        for (gf, fp) in [("gf:8", "fp:e3m4"), ("gf:16", "fp:e6m9"), ("gf:32", "fp:e11m20")] {
            let spec: FormatSpec = gf.parse().unwrap();
            let canon = spec.build().canonical_spec();
            assert_eq!(canon, fp, "{gf}");
            assert_eq!(canon, fp.parse::<FormatSpec>().unwrap().build().canonical_spec());
        }
    }

    #[test]
    fn bad_specs_error() {
        for s in [
            "",
            "fp",
            "fp:em",
            "fxp:2:3:4",
            "bfp:e5m5",
            "wat:1",
            "int:x",
            "mx:fp4e2m1",
            "mx:fp5e2m2:b32",
            "mx:fp4e2m1:b0",
            "mx:fp4e2m1:tensor",
            "p3109:e4m4",
            "p3109:e7m0",
            "gf:12",
        ] {
            assert!(s.parse::<FormatSpec>().is_err(), "`{s}` should not parse");
        }
    }
}
