//! AdaptivFloat: floating point with a per-tensor exponent bias that slides
//! the representable window onto the tensor's value range (Tambe et al.).
//!
//! The bias lives in a small two's-complement hardware register and is an
//! injection target — error site #8 in the paper. With bias 0, AdaptivFloat
//! degenerates to plain FP without denormals; Table I lists AFP8 (e4m3) as
//! FP8-without-denormals with a "movable range".

use crate::bitstring::Bitstring;
use crate::format::{DynamicRange, NumberFormat, Quantized};
use crate::fp::{exp2, exponent_of, f32_saturate, mul_pow2, FpParams};
use crate::metadata::Metadata;
use tensor::Tensor;

/// AdaptivFloat: `eXmY` floating point with a tensor-adaptive exponent
/// bias held in a `bias_bits`-wide signed register.
///
/// # Examples
///
/// ```
/// use formats::{AdaptivFloat, NumberFormat, Metadata};
/// use tensor::Tensor;
/// let afp = AdaptivFloat::new(4, 3);
/// // A tensor of small values: plain FP8 without denormals would flush
/// // them (its min normal is 1.56e-2); AFP shifts its window down and
/// // keeps relative precision.
/// let x = Tensor::from_vec(vec![1e-2, 5e-3, -8e-3], [3]);
/// let q = afp.real_to_format_tensor(&x);
/// let err = (q.values.as_slice()[0] - 1e-2).abs() / 1e-2;
/// assert!(err < 0.1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdaptivFloat {
    params: FpParams,
    bias_bits: u32,
}

impl AdaptivFloat {
    /// Creates an AdaptivFloat with a 4-bit bias register.
    ///
    /// AdaptivFloat hardware (Tambe et al.) keeps the bias in a compact
    /// per-tensor register; 4 bits (bias ∈ −8..=7) covers typical DNN
    /// tensor ranges. Tensors whose ideal bias exceeds the register range
    /// get a clamped bias — the window stops tracking, exactly as the real
    /// register would. Use [`AdaptivFloat::with_bias_bits`] to widen it.
    ///
    /// # Panics
    ///
    /// Panics if `exp_bits ∉ 2..=11` or `man_bits ∉ 1..=52`.
    pub fn new(exp_bits: u32, man_bits: u32) -> Self {
        AdaptivFloat { params: FpParams::new(exp_bits, man_bits, false), bias_bits: 4 }
    }

    /// Sets the width of the bias register.
    ///
    /// # Panics
    ///
    /// Panics if `bias_bits ∉ 2..=16`.
    pub fn with_bias_bits(mut self, bias_bits: u32) -> Self {
        assert!((2..=16).contains(&bias_bits), "bias width {bias_bits} out of range");
        self.bias_bits = bias_bits;
        self
    }

    /// Exponent width in bits.
    pub fn exp_bits(&self) -> u32 {
        self.params.e
    }

    /// Mantissa width in bits.
    pub fn man_bits(&self) -> u32 {
        self.params.m
    }

    /// Bias register width in bits.
    pub fn bias_bits(&self) -> u32 {
        self.bias_bits
    }

    fn bias_min(&self) -> i32 {
        -(1i32 << (self.bias_bits - 1))
    }

    fn bias_max(&self) -> i32 {
        (1i32 << (self.bias_bits - 1)) - 1
    }

    /// Selects the exponent bias for a tensor: shifts the format's top
    /// normal exponent onto the tensor's maximum magnitude.
    pub fn bias_for(&self, t: &Tensor) -> i32 {
        let m = t.max_abs() as f64;
        if m == 0.0 || !m.is_finite() {
            return 0;
        }
        let b = exponent_of(m) - self.params.emax();
        (b as i32).clamp(self.bias_min(), self.bias_max())
    }

    fn expect_bias(meta: &Metadata) -> i32 {
        match meta {
            Metadata::ExpBias { bias, .. } => *bias,
            other => panic!("AdaptivFloat expects ExpBias metadata, got {other:?}"),
        }
    }

    fn quantize_with_bias(&self, x: f32, bias: i32) -> f32 {
        let s = exp2(bias as i64);
        (self.params.quantize(x as f64 / s) * s) as f32
    }
}

impl NumberFormat for AdaptivFloat {
    fn name(&self) -> String {
        format!("afp_e{}m{}", self.params.e, self.params.m)
    }

    fn canonical_spec(&self) -> String {
        // The spec grammar has no bias-register knob; a widened register
        // changes quantisation, so it must fork the cache key even though
        // the resulting string no longer parses.
        if self.bias_bits == 4 {
            format!("afp:e{}m{}", self.params.e, self.params.m)
        } else {
            format!("afp:e{}m{}:bias{}", self.params.e, self.params.m, self.bias_bits)
        }
    }

    fn bit_width(&self) -> u32 {
        self.params.width() as u32
    }

    fn real_to_format_tensor(&self, t: &Tensor) -> Quantized {
        let bias = self.bias_for(t);
        let values = t.map(|x| self.quantize_with_bias(x, bias));
        Quantized { values, meta: Metadata::ExpBias { bias, bias_bits: self.bias_bits } }
    }

    fn real_to_format(&self, value: f32, meta: &Metadata, _index: usize) -> Bitstring {
        let bias = Self::expect_bias(meta);
        // `mul_pow2` keeps the rescale finite even when a register flip has
        // driven |bias| far beyond f64's exponent range (law `meta-flip-finite`).
        self.params.encode(mul_pow2(value as f64, -(bias as i64)))
    }

    fn format_to_real(&self, bits: &Bitstring, meta: &Metadata, _index: usize) -> f32 {
        let bias = Self::expect_bias(meta);
        let decoded = self.params.decode(bits);
        if !decoded.is_finite() {
            // Explicit Inf/NaN codes stay Inf/NaN regardless of the bias.
            return decoded as f32;
        }
        f32_saturate(mul_pow2(decoded, bias as i64))
    }

    fn dynamic_range(&self) -> DynamicRange {
        // The window is movable; its *width* is that of FP(e,m) without
        // denormals (Table I's "movable range" note).
        DynamicRange { max_abs: self.params.max_value(), min_abs: self.params.min_normal() }
    }

    fn supports_metadata_injection(&self) -> bool {
        true
    }

    fn exponent_field(&self) -> Option<std::ops::Range<usize>> {
        Some(1..1 + self.params.e as usize)
    }

    fn apply_metadata(&self, values: &Tensor, old: &Metadata, new: &Metadata) -> Tensor {
        let ob = Self::expect_bias(old);
        let nb = Self::expect_bias(new);
        if ob == nb {
            return values.clone();
        }
        let delta = nb as i64 - ob as i64;
        // Representable max under the flipped bias; `mul_pow2` never turns a
        // finite window edge into NaN, and a too-large bias simply yields an
        // infinite (i.e. non-binding) limit before f32 fabric saturation.
        let limit = mul_pow2(self.params.max_value(), nb as i64);
        values.map(|x| f32_saturate(mul_pow2(x as f64, delta).clamp(-limit, limit)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_bias_matches_plain_fp_without_denormals() {
        use crate::fp::FloatingPoint;
        let afp = AdaptivFloat::new(4, 3);
        let fp = FloatingPoint::fp8_e4m3().with_denormals(false);
        // Tensor whose max lands exactly on FP8's top binade → bias 0.
        let x = Tensor::from_vec(vec![200.0, 1.0, -0.3, 0.004], [4]);
        let qa = afp.real_to_format_tensor(&x);
        let qf = fp.real_to_format_tensor(&x);
        assert_eq!(Metadata::ExpBias { bias: 0, bias_bits: 4 }, qa.meta);
        assert_eq!(qa.values, qf.values);
    }

    #[test]
    fn bias_tracks_small_tensors() {
        let afp = AdaptivFloat::new(4, 3);
        let x = Tensor::from_vec(vec![1e-2, -4e-3], [2]);
        let q = afp.real_to_format_tensor(&x);
        let Metadata::ExpBias { bias, .. } = q.meta else { panic!() };
        assert!(bias < 0, "bias {bias} should be negative");
        // Relative error stays small despite only 3 mantissa bits.
        let rel = (q.values.as_slice()[0] - 1e-2).abs() / 1e-2;
        assert!(rel < 0.07, "rel err {rel}");
        // Plain FP8 without denormals flushes 4e-3 below its min normal
        // (1.56e-2): the movable window is what preserves it.
        use crate::fp::FloatingPoint;
        let fp = FloatingPoint::fp8_e4m3().with_denormals(false);
        assert_eq!(fp.quantize_scalar(-4e-3), 0.0);
        assert_ne!(q.values.as_slice()[1], 0.0);
    }

    #[test]
    fn bias_tracks_large_tensors() {
        let afp = AdaptivFloat::new(4, 3);
        let x = Tensor::from_vec(vec![3e4, -5e3], [2]);
        let q = afp.real_to_format_tensor(&x);
        let Metadata::ExpBias { bias, .. } = q.meta else { panic!() };
        assert!(bias > 5);
        let rel = (q.values.as_slice()[0] - 3e4).abs() / 3e4;
        assert!(rel < 0.07);
    }

    #[test]
    fn bias_clamps_to_register_range() {
        // A tensor far below the representable window: the 4-bit register
        // clamps at −8 and the window stops tracking, as in hardware.
        let afp = AdaptivFloat::new(4, 3);
        let x = Tensor::from_vec(vec![1e-9, -1e-10], [2]);
        let q = afp.real_to_format_tensor(&x);
        assert_eq!(q.meta, Metadata::ExpBias { bias: -8, bias_bits: 4 });
        // Values below the clamped window flush to zero.
        assert_eq!(q.values.as_slice(), &[0.0, 0.0]);
        // A wider register recovers them.
        let wide = AdaptivFloat::new(4, 3).with_bias_bits(8);
        let qw = wide.real_to_format_tensor(&x);
        assert_ne!(qw.values.as_slice()[0], 0.0);
    }

    #[test]
    fn quantize_idempotent() {
        let afp = AdaptivFloat::new(4, 4);
        let x = Tensor::from_vec(vec![0.37, -8.2, 0.0, 0.004], [4]);
        let q1 = afp.real_to_format_tensor(&x);
        let q2 = afp.real_to_format_tensor(&q1.values);
        assert_eq!(q1.values, q2.values);
        assert_eq!(q1.meta, q2.meta);
    }

    #[test]
    fn bitstring_roundtrip_respects_bias() {
        let afp = AdaptivFloat::new(4, 3);
        let x = Tensor::from_vec(vec![1e-2, -4e-3, 2e-3, 0.0], [4]);
        let q = afp.real_to_format_tensor(&x);
        for i in 0..4 {
            let v = q.values.as_slice()[i];
            let bits = afp.real_to_format(v, &q.meta, i);
            assert_eq!(bits.len(), 8);
            let back = afp.format_to_real(&bits, &q.meta, i);
            let tol = v.abs() * 1e-6 + 1e-12;
            assert!((back - v).abs() <= tol, "element {i}: {v} → {back}");
        }
    }

    #[test]
    fn bias_register_flip_rescales_tensor() {
        let afp = AdaptivFloat::new(4, 3);
        let x = Tensor::from_vec(vec![0.5, -0.25], [2]);
        let q = afp.real_to_format_tensor(&x);
        let bits = q.meta.word_bits(0).unwrap();
        // Flip the LSB of the bias register: the whole tensor scales by 2^±1.
        let corrupted = q.meta.with_word_bits(0, &bits.with_flip(3));
        let y = afp.apply_metadata(&q.values, &q.meta, &corrupted);
        let r = y.as_slice()[0] / q.values.as_slice()[0];
        assert!(r == 2.0 || r == 0.5, "ratio {r}");
    }

    #[test]
    fn bias_msb_flip_is_catastrophic() {
        // Flipping the sign bit of the 4-bit bias register shifts the
        // scale by 2^±8 — a whole-tensor corruption, though milder than a
        // same-position flip in a wider register would be.
        let afp = AdaptivFloat::new(4, 3);
        let x = Tensor::from_vec(vec![0.5, -0.25], [2]);
        let q = afp.real_to_format_tensor(&x);
        let bits = q.meta.word_bits(0).unwrap();
        let corrupted = q.meta.with_word_bits(0, &bits.with_flip(0));
        let y = afp.apply_metadata(&q.values, &q.meta, &corrupted);
        let r = (y.as_slice()[0] / q.values.as_slice()[0]).abs();
        assert!(r == 256.0 || r == 1.0 / 256.0, "ratio {r}");
    }

    #[test]
    fn table1_afp8_range_matches_fp8_nodn() {
        let afp = AdaptivFloat::new(4, 3);
        let r = afp.dynamic_range();
        assert_eq!(r.max_abs, 240.0);
        assert!((r.min_abs - 0.015625).abs() < 1e-12);
        assert!((r.db() - 83.73).abs() < 0.01, "dB {}", r.db());
    }

    #[test]
    fn zero_tensor_bias_zero() {
        let afp = AdaptivFloat::new(4, 3);
        let q = afp.real_to_format_tensor(&Tensor::zeros([3]));
        assert_eq!(q.meta, Metadata::ExpBias { bias: 0, bias_bits: 4 });
    }

    #[test]
    fn encode_decode_roundtrip_all_codes() {
        // Law `round-trip`: decode→encode→decode is a bitwise fixpoint for
        // every code under several bias contexts (the AFP analogue of
        // fp.rs::encode_decode_roundtrip_all_codes). NaN codes re-encode to
        // the canonical NaN, whose decode is NaN again.
        let afp = AdaptivFloat::new(4, 3);
        for bias in [-8, -1, 0, 7] {
            let meta = Metadata::ExpBias { bias, bias_bits: 4 };
            for code in 0..256u64 {
                let bits = Bitstring::from_u64(code, 8);
                let v1 = afp.format_to_real(&bits, &meta, 0);
                let bits2 = afp.real_to_format(v1, &meta, 0);
                let v2 = afp.format_to_real(&bits2, &meta, 0);
                assert!(
                    v1.to_bits() == v2.to_bits() || (v1.is_nan() && v2.is_nan()),
                    "bias {bias} code {code:#04x}: {v1} → {v2}"
                );
            }
        }
    }

    #[test]
    fn law_meta_flip_finite_all_single_bit_flips() {
        // Law `meta-flip-finite`: no single-bit flip of the bias register
        // may drive a stored (finite) value to Inf/NaN. Before the fix,
        // `exp2(nb)/exp2(ob)` overflowed f64 for wide registers (a 16-bit
        // register swings the bias by 2^15 on an MSB flip), poisoning the
        // whole tensor with Inf/NaN.
        for bias_bits in [4u32, 8, 16] {
            let afp = AdaptivFloat::new(4, 3).with_bias_bits(bias_bits);
            // 100.0 has exponent 6 = emax − 1 → bias −1, whose register
            // pattern is all-ones: flips exercise the downward deltas; a
            // zero bias exercises the upward ones.
            for seed in [vec![100.0, -0.25, 0.0, -0.0], vec![0.5, -0.25, 0.0, -0.0]] {
                let x = Tensor::from_vec(seed, [4]);
                let q = afp.real_to_format_tensor(&x);
                let bits = q.meta.word_bits(0).unwrap();
                for bit in 0..bits.len() {
                    let corrupted = q.meta.with_word_bits(0, &bits.with_flip(bit));
                    let y = afp.apply_metadata(&q.values, &q.meta, &corrupted);
                    for (i, v) in y.as_slice().iter().enumerate() {
                        assert!(
                            v.is_finite(),
                            "bias_bits {bias_bits}, flip bit {bit}, element {i}: {v}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn law_meta_flip_range_saturates_at_window_max() {
        // Law `meta-flip-range`: rescaled values stay inside the flipped
        // window's representable range, saturating at the f32 fabric max
        // when the shifted window exceeds it.
        let afp = AdaptivFloat::new(4, 3).with_bias_bits(8);
        let x = Tensor::from_vec(vec![100.0, -50.0], [2]);
        let q = afp.real_to_format_tensor(&x);
        let ob = match q.meta {
            Metadata::ExpBias { bias, .. } => bias,
            _ => unreachable!(),
        };
        // Drive the bias to the register's positive limit: the window tops
        // out far beyond f32, so values saturate at ±f32::MAX, never ±Inf.
        let corrupted = Metadata::ExpBias { bias: 127, bias_bits: 8 };
        let y = afp.apply_metadata(&q.values, &q.meta, &corrupted);
        assert!(ob < 127);
        for (i, v) in y.as_slice().iter().enumerate() {
            assert!(v.is_finite(), "element {i}: {v}");
            assert_eq!(v.abs(), f32::MAX, "element {i}: {v}");
        }
    }
}
