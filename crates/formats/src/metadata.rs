//! Hardware metadata attached to a quantised tensor.
//!
//! The paper's key observation is that emerging formats carry state that
//! lives in dedicated hardware registers rather than in the data values
//! themselves: INT's scale factor, BFP's shared exponents, AFP's exponent
//! bias. GoldenEye elevates this metadata into software so it can be a
//! first-class error-injection target.

use crate::bitstring::Bitstring;

/// Hardware metadata produced by `real_to_format_tensor`.
#[derive(Debug, Clone, PartialEq)]
pub enum Metadata {
    /// The format has no tensor-level hardware state (FP, FxP).
    None,
    /// INT quantisation: the per-tensor scale factor, held in an FP32
    /// register in hardware (32 injectable bits).
    Scale(f32),
    /// BFP: one shared-exponent code per block. Each code is `exp_bits`
    /// wide and biased by `2^(exp_bits-1) - 1`.
    SharedExponents {
        /// Biased exponent code of each block, in block order.
        codes: Vec<u32>,
        /// Number of tensor elements covered by each shared exponent.
        block_size: usize,
        /// Width of each exponent register in bits.
        exp_bits: u32,
    },
    /// AdaptivFloat: the per-tensor signed exponent bias, held in a small
    /// two's-complement register of `bias_bits` bits.
    ExpBias {
        /// The signed exponent bias selected for the tensor.
        bias: i32,
        /// Width of the bias register in bits.
        bias_bits: u32,
    },
}

impl Metadata {
    /// Number of independently injectable metadata words.
    ///
    /// INT and AFP have one register; BFP has one per block; FP/FxP none.
    pub fn word_count(&self) -> usize {
        match self {
            Metadata::None => 0,
            Metadata::Scale(_) => 1,
            Metadata::SharedExponents { codes, .. } => codes.len(),
            Metadata::ExpBias { .. } => 1,
        }
    }

    /// Width in bits of each metadata word.
    pub fn word_width(&self) -> usize {
        match self {
            Metadata::None => 0,
            Metadata::Scale(_) => 32,
            Metadata::SharedExponents { exp_bits, .. } => *exp_bits as usize,
            Metadata::ExpBias { bias_bits, .. } => *bias_bits as usize,
        }
    }

    /// The bit image of metadata word `word`, or `None` if out of range.
    pub fn word_bits(&self, word: usize) -> Option<Bitstring> {
        match self {
            Metadata::None => None,
            Metadata::Scale(s) => (word == 0).then(|| Bitstring::from_u64(s.to_bits() as u64, 32)),
            Metadata::SharedExponents { codes, exp_bits, .. } => {
                codes.get(word).map(|&c| Bitstring::from_u64(c as u64, *exp_bits as usize))
            }
            Metadata::ExpBias { bias, bias_bits } => (word == 0).then(|| {
                let mask = if *bias_bits >= 64 { u64::MAX } else { (1u64 << bias_bits) - 1 };
                Bitstring::from_u64((*bias as i64 as u64) & mask, *bias_bits as usize)
            }),
        }
    }

    /// Returns a copy with metadata word `word` replaced by `bits`.
    ///
    /// # Panics
    ///
    /// Panics if `word` is out of range, `bits` has the wrong width, or the
    /// metadata kind has no words.
    pub fn with_word_bits(&self, word: usize, bits: &Bitstring) -> Metadata {
        assert_eq!(bits.len(), self.word_width(), "metadata word width mismatch");
        match self {
            Metadata::None => panic!("format has no metadata to replace"),
            Metadata::Scale(_) => {
                assert_eq!(word, 0, "scale metadata has a single word");
                Metadata::Scale(f32::from_bits(bits.to_u64() as u32))
            }
            Metadata::SharedExponents { codes, block_size, exp_bits } => {
                assert!(word < codes.len(), "shared-exponent word {} out of range", word);
                let mut codes = codes.clone();
                codes[word] = bits.to_u64() as u32;
                Metadata::SharedExponents { codes, block_size: *block_size, exp_bits: *exp_bits }
            }
            Metadata::ExpBias { bias_bits, .. } => {
                assert_eq!(word, 0, "exponent-bias metadata has a single word");
                Metadata::ExpBias { bias: bits.to_i64() as i32, bias_bits: *bias_bits }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_has_no_words() {
        assert_eq!(Metadata::None.word_count(), 0);
        assert!(Metadata::None.word_bits(0).is_none());
    }

    #[test]
    fn scale_roundtrip() {
        let m = Metadata::Scale(0.125);
        let bits = m.word_bits(0).unwrap();
        assert_eq!(bits.len(), 32);
        assert_eq!(m.with_word_bits(0, &bits), m);
    }

    #[test]
    fn scale_bit_flip_changes_scale() {
        let m = Metadata::Scale(1.0);
        let bits = m.word_bits(0).unwrap().with_flip(1); // MSB of exponent
        if let Metadata::Scale(s) = m.with_word_bits(0, &bits) {
            assert!(s != 1.0);
            assert!(s.is_finite() || s.is_infinite());
        } else {
            panic!("kind changed");
        }
    }

    #[test]
    fn shared_exponent_words() {
        let m = Metadata::SharedExponents { codes: vec![10, 20, 30], block_size: 16, exp_bits: 5 };
        assert_eq!(m.word_count(), 3);
        assert_eq!(m.word_width(), 5);
        assert_eq!(m.word_bits(1).unwrap().to_u64(), 20);
        let new = m.with_word_bits(1, &Bitstring::from_u64(21, 5));
        if let Metadata::SharedExponents { codes, .. } = new {
            assert_eq!(codes, vec![10, 21, 30]);
        } else {
            panic!("kind changed");
        }
    }

    #[test]
    fn exp_bias_twos_complement_roundtrip() {
        for bias in [-7i32, -1, 0, 3] {
            let m = Metadata::ExpBias { bias, bias_bits: 8 };
            let bits = m.word_bits(0).unwrap();
            assert_eq!(m.with_word_bits(0, &bits), m, "bias {bias}");
        }
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn wrong_width_panics() {
        let m = Metadata::Scale(1.0);
        m.with_word_bits(0, &Bitstring::zeros(8));
    }
}
