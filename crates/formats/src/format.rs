//! The GoldenEye number-format API.
//!
//! The paper defines four pure-virtual methods every number system must
//! implement (§III-B):
//!
//! 1. `real_to_format_tensor(tensor)` — fast, tensor-wide quantisation;
//! 2. `format_to_real_tensor(tensor)` — the reverse (default: a cast);
//! 3. `real_to_format(value)` — scalar → bitstring, for error injection;
//! 4. `format_to_real(bitstring)` — bitstring → scalar.
//!
//! [`NumberFormat`] is the Rust rendering of that contract, extended with
//! the paper's hardware-metadata support: formats that keep tensor-level
//! state in registers (INT scale, BFP shared exponents, AFP bias) expose it
//! through [`Metadata`] so campaigns can flip its bits too.

use crate::bitstring::Bitstring;
use crate::metadata::Metadata;
use tensor::Tensor;

/// A tensor quantised into a number format.
///
/// `values` holds each element's numeric value cast back to the compute
/// fabric's f32 (the paper's "write the number back at the nearest value in
/// the HW-supported number system"); `meta` holds the hardware state that a
/// real accelerator would keep in dedicated registers.
#[derive(Debug, Clone, PartialEq)]
pub struct Quantized {
    /// Element values, already rounded to the format, in f32.
    pub values: Tensor,
    /// Hardware metadata extracted during conversion.
    pub meta: Metadata,
}

/// Dynamic range of a format (Table I of the paper).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DynamicRange {
    /// Largest representable magnitude.
    pub max_abs: f64,
    /// Smallest representable non-zero magnitude.
    pub min_abs: f64,
}

impl DynamicRange {
    /// Range in decibels: `20·log10(max/min)` (the paper's Table I metric).
    ///
    /// Returns `f64::INFINITY` if `min_abs` is zero.
    pub fn db(&self) -> f64 {
        if self.min_abs == 0.0 {
            f64::INFINITY
        } else {
            20.0 * (self.max_abs / self.min_abs).log10()
        }
    }
}

/// A configurable number system, per the paper's §III-B API.
///
/// Implementations must be deterministic: quantising the same tensor twice
/// yields the same values and metadata.
///
/// `Send + Sync` is a supertrait so one format instance (behind an `Arc`)
/// can serve every worker thread of a parallel fault-injection campaign;
/// formats are pure configuration and hold no mutable state.
///
/// # Examples
///
/// ```
/// use formats::{FloatingPoint, NumberFormat};
/// use tensor::Tensor;
/// let fp8 = FloatingPoint::new(4, 3).with_denormals(false);
/// let x = Tensor::from_vec(vec![0.1, 1.0, 300.0], [3]);
/// let q = fp8.real_to_format_tensor(&x);
/// assert_eq!(q.values.as_slice()[2], 240.0); // saturates at FP8 max
/// ```
pub trait NumberFormat: std::fmt::Debug + Send + Sync {
    /// Short human-readable name, e.g. `"fp_e4m3"` or `"bfp_e5m5_b16"`.
    fn name(&self) -> String;

    /// The canonical [`FormatSpec`](crate::FormatSpec) string for this
    /// format — the stable identity the artifact store keys cached
    /// quantisations and LUTs by.
    ///
    /// Two instances that quantise identically must return the same
    /// string, and two that differ anywhere must not. For every built-in
    /// family the returned string parses back (`spec.parse::<FormatSpec>()`)
    /// to a spec that rebuilds an equivalent format, so shorthand
    /// constructions (`"fp8"`, `"bfloat16"`) and explicit ones
    /// (`"fp:e4m3"`, `"fp:e8m7"`) share cache entries.
    ///
    /// The default falls back to [`NumberFormat::name`], which also
    /// encodes every parameter — custom formats outside the spec grammar
    /// stay uniquely keyed, just not spec-parseable.
    fn canonical_spec(&self) -> String {
        self.name()
    }

    /// Bits per data value (excluding amortised metadata).
    fn bit_width(&self) -> u32;

    /// **Method 1**: quantises an f32 tensor into this format, returning
    /// the rounded values (back in f32) and extracted hardware metadata.
    fn real_to_format_tensor(&self, t: &Tensor) -> Quantized;

    /// **Method 2**: converts a quantised tensor back to the real (f32)
    /// domain. The default implementation is the cast the paper describes.
    fn format_to_real_tensor(&self, q: &Quantized) -> Tensor {
        q.values.clone()
    }

    /// **Method 3**: converts one value into its bit image under this
    /// format. `meta` is the tensor's metadata and `index` the element's
    /// flat position (needed by block-based formats to find their block).
    fn real_to_format(&self, value: f32, meta: &Metadata, index: usize) -> Bitstring;

    /// **Method 4**: decodes a bit image back into a value.
    fn format_to_real(&self, bits: &Bitstring, meta: &Metadata, index: usize) -> f32;

    /// The format's representable range (Table I).
    fn dynamic_range(&self) -> DynamicRange;

    /// Quantises one standalone value, deriving any tensor-level metadata
    /// from the value alone.
    ///
    /// For formats without tensor-level metadata (FP, FxP, posit) this is
    /// the plain rounding function and is meaningful for scalar uses such
    /// as accumulator simulation. For metadata-bearing formats the implied
    /// single-element metadata makes this mostly useful for spot checks.
    fn quantize_value(&self, x: f32) -> f32 {
        let q = self.real_to_format_tensor(&Tensor::from_vec(vec![x], [1]));
        q.values.as_slice()[0]
    }

    /// The format's quantise→dequantise round-trip as a pure elementwise
    /// function, when one exists — the hook for **fused quantize-into-pack**
    /// ([`crate::fused_roundtrip`] and `tensor::linalg::sgemm_fused`).
    ///
    /// The contract: for every input tensor `t`,
    /// `t.map(f)` must be bit-identical to
    /// `format_to_real_tensor(&real_to_format_tensor(t))`. That holds
    /// exactly when quantisation needs no tensor-level metadata (FP, FxP,
    /// posit, P3109, GoldenFloat); metadata-bearing formats (INT, BFP,
    /// AFP, MX) derive a scale from the whole tensor and must return
    /// `None` (the default) so callers fall back to the two-pass path.
    fn elementwise_quantizer(&self) -> Option<Box<dyn Fn(f32) -> f32 + Send + Sync + '_>> {
        None
    }

    /// Whether this format carries injectable hardware metadata.
    fn supports_metadata_injection(&self) -> bool {
        false
    }

    /// Bit positions (0 = MSB) of the exponent field within one encoded
    /// data value, when the format has one — `1..1+e` for the
    /// `[sign | exponent | mantissa]` floats. `None` for formats whose
    /// value words carry no per-element exponent (INT, FxP, and BFP, whose
    /// exponent lives in shared metadata). Drives exponent-weighted
    /// importance sampling of bit flips (MPGemmFI's observation that
    /// exponent-bit faults dominate outcome severity).
    fn exponent_field(&self) -> Option<std::ops::Range<usize>> {
        None
    }

    /// Re-interprets already-quantised `values` under corrupted metadata
    /// `new` (hardware keeps the stored codes; only the register changed).
    ///
    /// The default is the identity, correct for formats without metadata.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `old`/`new` are of the wrong kind.
    fn apply_metadata(&self, values: &Tensor, old: &Metadata, new: &Metadata) -> Tensor {
        let _ = (old, new);
        values.clone()
    }
}

/// Round-trips one element of a quantised tensor through its bitstring with
/// a single bit flipped — the paper's value-injection routine (Method 3 →
/// flip → Method 4).
///
/// Returns the corrupted value.
///
/// # Panics
///
/// Panics if `element` or `bit` is out of range.
pub fn flip_value_bit(format: &dyn NumberFormat, q: &Quantized, element: usize, bit: usize) -> f32 {
    let v = q.values.as_slice()[element];
    let bits = format.real_to_format(v, &q.meta, element);
    assert!(bit < bits.len(), "bit {} out of range for {}-bit format", bit, bits.len());
    let flipped = bits.with_flip(bit);
    // Metadata-free narrow formats decode flipped codes through the cached
    // LUT (validated code-for-code by the conformance law `lut-agreement`).
    if q.meta == Metadata::None {
        if let Some(lut) = crate::lut::cached(format) {
            return lut.decode(flipped.to_u64());
        }
    }
    format.format_to_real(&flipped, &q.meta, element)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dynamic_range_db() {
        let r = DynamicRange { max_abs: 100.0, min_abs: 1.0 };
        assert!((r.db() - 40.0).abs() < 1e-9);
        let z = DynamicRange { max_abs: 1.0, min_abs: 0.0 };
        assert!(z.db().is_infinite());
    }
}
