//! Fixed point: sign + integer + fraction bits, two's complement, no
//! exponent hardware. The paper's notation `FxP(1, i, f)` maps to
//! [`FixedPoint::new(i, f)`]; the "radix" is the fraction width `f`.

use crate::bitstring::Bitstring;
use crate::format::{DynamicRange, NumberFormat, Quantized};
use crate::metadata::Metadata;
use tensor::Tensor;

/// A signed fixed-point format with `int_bits` integer and `frac_bits`
/// fractional bits (plus one sign bit).
///
/// Values are stored as `(1 + int_bits + frac_bits)`-bit two's-complement
/// integers in units of `2^-frac_bits`; out-of-range reals saturate.
///
/// # Examples
///
/// ```
/// use formats::{FixedPoint, NumberFormat};
/// let fxp = FixedPoint::new(3, 4); // FxP(1,3,4)
/// assert_eq!(fxp.bit_width(), 8);
/// assert_eq!(fxp.quantize_scalar(1.06), 1.0625);    // nearest 1/16 step
/// assert_eq!(fxp.quantize_scalar(100.0), 7.9375);   // saturates
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FixedPoint {
    int_bits: u32,
    frac_bits: u32,
}

impl FixedPoint {
    /// Creates an `FxP(1, int_bits, frac_bits)` format.
    ///
    /// # Panics
    ///
    /// Panics if the total width exceeds 63 bits or is zero.
    pub fn new(int_bits: u32, frac_bits: u32) -> Self {
        let total = 1 + int_bits + frac_bits;
        assert!((2..=63).contains(&total), "fixed-point width {total} out of range 2..=63");
        FixedPoint { int_bits, frac_bits }
    }

    /// Integer field width.
    pub fn int_bits(&self) -> u32 {
        self.int_bits
    }

    /// Fraction field width (the format's radix).
    pub fn frac_bits(&self) -> u32 {
        self.frac_bits
    }

    fn step(&self) -> f64 {
        (2.0f64).powi(-(self.frac_bits as i32))
    }

    fn raw_max(&self) -> i64 {
        (1i64 << (self.int_bits + self.frac_bits)) - 1
    }

    fn raw_min(&self) -> i64 {
        -(1i64 << (self.int_bits + self.frac_bits))
    }

    fn to_raw(self, x: f64) -> i64 {
        if x.is_nan() {
            return 0;
        }
        let q = crate::fp::round_ties_even(x / self.step());
        if q >= self.raw_max() as f64 {
            self.raw_max()
        } else if q <= self.raw_min() as f64 {
            self.raw_min()
        } else {
            q as i64
        }
    }

    /// Quantises a single value.
    pub fn quantize_scalar(&self, x: f32) -> f32 {
        (self.to_raw(x as f64) as f64 * self.step()) as f32
    }
}

impl NumberFormat for FixedPoint {
    fn name(&self) -> String {
        format!("fxp_1_{}_{}", self.int_bits, self.frac_bits)
    }

    fn canonical_spec(&self) -> String {
        format!("fxp:1:{}:{}", self.int_bits, self.frac_bits)
    }

    fn bit_width(&self) -> u32 {
        1 + self.int_bits + self.frac_bits
    }

    fn real_to_format_tensor(&self, t: &Tensor) -> Quantized {
        let values = crate::chunk::map_chunked(t, |x| self.quantize_scalar(x));
        Quantized { values, meta: Metadata::None }
    }

    fn elementwise_quantizer(&self) -> Option<Box<dyn Fn(f32) -> f32 + Send + Sync + '_>> {
        Some(Box::new(|x| self.quantize_scalar(x)))
    }

    fn real_to_format(&self, value: f32, _meta: &Metadata, _index: usize) -> Bitstring {
        let raw = self.to_raw(value as f64);
        let w = self.bit_width() as usize;
        Bitstring::from_u64((raw as u64) & ((1u64 << w) - 1), w)
    }

    fn format_to_real(&self, bits: &Bitstring, _meta: &Metadata, _index: usize) -> f32 {
        (bits.to_i64() as f64 * self.step()) as f32
    }

    fn dynamic_range(&self) -> DynamicRange {
        DynamicRange { max_abs: (1i64 << self.int_bits) as f64, min_abs: self.step() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantize_steps() {
        let f = FixedPoint::new(3, 2); // step 0.25
        assert_eq!(f.quantize_scalar(1.1), 1.0);
        assert_eq!(f.quantize_scalar(1.2), 1.25);
        assert_eq!(f.quantize_scalar(-0.3), -0.25);
        assert_eq!(f.quantize_scalar(0.0), 0.0);
    }

    #[test]
    fn saturation() {
        let f = FixedPoint::new(3, 2);
        assert_eq!(f.quantize_scalar(100.0), 7.75); // (2^5 - 1) * 0.25
        assert_eq!(f.quantize_scalar(-100.0), -8.0); // -2^5 * 0.25
    }

    #[test]
    fn bitstring_roundtrip() {
        let f = FixedPoint::new(3, 4);
        for &x in &[0.0f32, 1.0, -1.0, 3.9375, -4.0, 0.0625, -0.0625, 7.9375] {
            let bits = f.real_to_format(x, &Metadata::None, 0);
            assert_eq!(bits.len(), 8);
            let v = f.format_to_real(&bits, &Metadata::None, 0);
            assert_eq!(v, f.quantize_scalar(x), "roundtrip failed for {x}");
        }
    }

    #[test]
    fn sign_bit_flip_on_bitstring() {
        let f = FixedPoint::new(3, 4);
        let bits = f.real_to_format(1.0, &Metadata::None, 0);
        // Flipping the MSB of two's complement subtracts 2^(w-1) steps.
        let v = f.format_to_real(&bits.with_flip(0), &Metadata::None, 0);
        assert_eq!(v, 1.0 - 8.0);
    }

    #[test]
    fn paper_fxp_1_15_16_range() {
        let f = FixedPoint::new(15, 16);
        let r = f.dynamic_range();
        assert_eq!(r.max_abs, 32768.0);
        assert!((r.min_abs - 1.525_878_9e-5).abs() < 1e-12);
        assert!((r.db() - 186.64).abs() < 0.01, "dB {}", r.db());
    }

    #[test]
    fn quantize_idempotent() {
        let f = FixedPoint::new(4, 4);
        for &x in &[0.3f32, -7.9, 100.0, 0.001] {
            let q = f.quantize_scalar(x);
            assert_eq!(f.quantize_scalar(q), q);
        }
    }

    #[test]
    fn encode_decode_roundtrip_all_codes() {
        // Law `round-trip`: decode→encode→decode is a bitwise fixpoint for
        // every code (the FxP analogue of
        // fp.rs::encode_decode_roundtrip_all_codes). Two's complement is
        // asymmetric: the most-negative pattern −2^(i+f) is a real code and
        // must round-trip unchanged, unlike INT's symmetric grid.
        for (i, fr) in [(3u32, 4u32), (7, 8)] {
            let f = FixedPoint::new(i, fr);
            let w = f.bit_width() as usize;
            for code in 0..(1u64 << w) {
                let b1 = Bitstring::from_u64(code, w);
                let v1 = f.format_to_real(&b1, &Metadata::None, 0);
                let b2 = f.real_to_format(v1, &Metadata::None, 0);
                assert_eq!(b1.to_u64(), b2.to_u64(), "fxp(1,{i},{fr}) code {code:#x}: {v1}");
                let v2 = f.format_to_real(&b2, &Metadata::None, 0);
                assert_eq!(v1.to_bits(), v2.to_bits(), "fxp(1,{i},{fr}) code {code:#x}");
            }
        }
    }

    #[test]
    fn tensor_path_matches_scalar() {
        let f = FixedPoint::new(2, 5);
        let x = Tensor::from_vec(vec![0.11, -3.99, 2.0, 8.0], [4]);
        let q = f.real_to_format_tensor(&x);
        for (i, &xv) in x.as_slice().iter().enumerate() {
            assert_eq!(q.values.as_slice()[i], f.quantize_scalar(xv));
        }
    }
}
