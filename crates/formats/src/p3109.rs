//! IEEE P3109-style 8-bit floating-point profiles.
//!
//! A P3109 profile is an `[s | e | m]` byte (`1 + e + m == 8`) that
//! reclaims IEEE's reserved codes: the all-ones exponent is an ordinary
//! binade, there are **no Inf codes** (conversions saturate to the format
//! max), and the single NaN lives at the would-be `−0` encoding
//! (`0x80`) — so there is no negative zero either. Denormals are
//! supported. This follows the working-group drafts' saturating,
//! Inf-free profile shape; DESIGN.md §14 records where we pin down
//! details the draft leaves open.

use crate::bitstring::Bitstring;
use crate::format::{DynamicRange, NumberFormat, Quantized};
use crate::metadata::Metadata;
use crate::minifloat::{MiniFloat, SpecialRule};
use tensor::Tensor;

/// An 8-bit saturating P3109-style float (`p3109:eXmY`).
///
/// # Examples
///
/// ```
/// use formats::{NumberFormat, P3109};
/// let f = P3109::new(4, 3);
/// assert_eq!(f.name(), "p3109_e4m3");
/// // All-ones exponent is a normal binade: max is 2^8·1.875 = 480,
/// // not IEEE e4m3's 240 or OCP's 448.
/// assert_eq!(f.dynamic_range().max_abs, 480.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct P3109 {
    mini: MiniFloat,
}

impl P3109 {
    /// Creates an 8-bit P3109 profile.
    ///
    /// # Panics
    ///
    /// Panics unless `1 + exp_bits + man_bits == 8` with `exp_bits ∈ 2..=6`.
    pub fn new(exp_bits: u32, man_bits: u32) -> Self {
        assert!(
            1 + exp_bits + man_bits == 8 && (2..=6).contains(&exp_bits),
            "P3109 profiles are 8-bit: need 1+e+m == 8 with e in 2..=6, got e{exp_bits}m{man_bits}"
        );
        P3109 { mini: MiniFloat::new(exp_bits, man_bits, SpecialRule::SingleNan) }
    }

    /// Exponent width in bits.
    pub fn exp_bits(&self) -> u32 {
        self.mini.e
    }

    /// Mantissa width in bits.
    pub fn man_bits(&self) -> u32 {
        self.mini.m
    }
}

impl NumberFormat for P3109 {
    fn name(&self) -> String {
        format!("p3109_e{}m{}", self.mini.e, self.mini.m)
    }

    fn canonical_spec(&self) -> String {
        format!("p3109:e{}m{}", self.mini.e, self.mini.m)
    }

    fn bit_width(&self) -> u32 {
        8
    }

    fn real_to_format_tensor(&self, t: &Tensor) -> Quantized {
        // Exact f64 quantise; the cast back is lossless (≤ m+1 significand
        // bits, exponents well inside f32's range).
        let values = crate::chunk::map_chunked(t, |x| self.mini.quantize(x as f64) as f32);
        Quantized { values, meta: Metadata::None }
    }

    fn elementwise_quantizer(&self) -> Option<Box<dyn Fn(f32) -> f32 + Send + Sync + '_>> {
        Some(Box::new(|x| self.mini.quantize(x as f64) as f32))
    }

    fn real_to_format(&self, value: f32, _meta: &Metadata, _index: usize) -> Bitstring {
        Bitstring::from_u64(self.mini.encode(value as f64), 8)
    }

    fn format_to_real(&self, bits: &Bitstring, _meta: &Metadata, _index: usize) -> f32 {
        assert_eq!(bits.len(), 8, "P3109 codes are 8-bit");
        self.mini.decode(bits.to_u64()) as f32
    }

    fn dynamic_range(&self) -> DynamicRange {
        DynamicRange { max_abs: self.mini.max_value(), min_abs: self.mini.min_denormal() }
    }

    fn exponent_field(&self) -> Option<std::ops::Range<usize>> {
        Some(1..1 + self.mini.e as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reclaimed_top_binade_extends_the_range() {
        // e4m3: IEEE max 240, OCP-fn max 448, P3109 max 480 (= 2^8 · 1.875).
        assert_eq!(P3109::new(4, 3).dynamic_range().max_abs, 480.0);
        // e5m2: 2^16 · 1.75.
        assert_eq!(P3109::new(5, 2).dynamic_range().max_abs, 114688.0);
    }

    #[test]
    fn saturates_instead_of_round_tripping_through_infinity() {
        let f = P3109::new(4, 3);
        let q = f.real_to_format_tensor(&Tensor::from_vec(vec![1e30, -1e30, f32::INFINITY], [3]));
        assert_eq!(q.values.as_slice(), &[480.0, -480.0, 480.0]);
        let bits = f.real_to_format(f32::INFINITY, &Metadata::None, 0);
        assert_eq!(f.format_to_real(&bits, &Metadata::None, 0), 480.0);
    }

    #[test]
    fn single_nan_and_no_negative_zero() {
        let f = P3109::new(4, 3);
        assert!(f.format_to_real(&Bitstring::from_u64(0x80, 8), &Metadata::None, 0).is_nan());
        assert_eq!(f.real_to_format(f32::NAN, &Metadata::None, 0).to_u64(), 0x80);
        let qz = f.quantize_value(-0.0);
        assert!(qz == 0.0 && !qz.is_sign_negative(), "P3109 has no −0 code");
        for code in 0..256u64 {
            if code == 0x80 {
                continue;
            }
            let v = f.format_to_real(&Bitstring::from_u64(code, 8), &Metadata::None, 0);
            assert!(v.is_finite(), "code {code:#x} decodes to {v}");
        }
    }

    #[test]
    fn all_profiles_roundtrip_all_codes() {
        for (e, m) in [(2, 5), (3, 4), (4, 3), (5, 2), (6, 1)] {
            let f = P3109::new(e, m);
            for code in 0..256u64 {
                let v = f.format_to_real(&Bitstring::from_u64(code, 8), &Metadata::None, 0);
                let v2 =
                    f.format_to_real(&f.real_to_format(v, &Metadata::None, 0), &Metadata::None, 0);
                let ok = v.to_bits() == v2.to_bits() || (v.is_nan() && v2.is_nan());
                assert!(ok, "e{e}m{m} code {code:#x}: {v} re-decodes as {v2}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "8-bit")]
    fn non_byte_profiles_panic() {
        P3109::new(4, 4);
    }
}
