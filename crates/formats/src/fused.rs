//! Fused single-pass quantise→dequantise round-trips.
//!
//! The emulation hook's steady state is `real_to_format_tensor` (allocate
//! a `Quantized`, map every element) followed by `format_to_real_tensor`
//! (for metadata-free formats: clone the values back out) — two full
//! tensor traversals and two allocations per hooked layer output, per
//! trial. For formats exposing
//! [`NumberFormat::elementwise_quantizer`] the whole round-trip is one
//! pure elementwise function, so [`fused_roundtrip`] runs it in a single
//! chunk-parallel pass: one allocation, one traversal, bit-identical
//! output by construction (the quantizer contract *is* the two-pass
//! round-trip).
//!
//! The same closure is what `tensor::linalg::sgemm_fused` folds into the
//! GEMM pack step when quantisation can ride the packing traversal
//! instead of owning its own.

use std::sync::OnceLock;
use std::time::Instant;

use crate::format::NumberFormat;
use crate::lut;
use tensor::Tensor;

struct FusedMetrics {
    ns: &'static trace::Metric,
    lut_hits: &'static trace::Metric,
}

fn fused_metrics() -> &'static FusedMetrics {
    static METRICS: OnceLock<FusedMetrics> = OnceLock::new();
    METRICS.get_or_init(|| FusedMetrics {
        ns: trace::histogram(trace::names::PACK_FUSED_QUANTIZE_NS),
        lut_hits: trace::counter(trace::names::PACK_LUT_HITS),
    })
}

/// Runs `format`'s quantise→dequantise round-trip over `t` in one fused
/// chunk-parallel pass, or returns `None` when the format has no
/// elementwise quantizer (metadata-bearing formats) and the caller must
/// take the two-pass `real_to_format_tensor` → `format_to_real_tensor`
/// route.
///
/// Bit-identical to the two-pass route by the
/// [`NumberFormat::elementwise_quantizer`] contract, and thread-count
/// invariant like every chunked map. Records `pack.fused_quantize_ns`
/// per pass and bumps `pack.lut_hits` when the format also has a
/// validated cached dequantise LUT (the ≤16-bit fast-path population the
/// conformance `lut-agreement` law covers).
pub fn fused_roundtrip(format: &dyn NumberFormat, t: &Tensor) -> Option<Tensor> {
    let f = format.elementwise_quantizer()?;
    let timing = trace::recording();
    let t0 = timing.then(Instant::now);
    let out = crate::chunk::map_chunked(t, f);
    if let Some(t0) = t0 {
        let metrics = fused_metrics();
        metrics.ns.record(t0.elapsed().as_nanos() as u64);
        if lut::cached(format).is_some() {
            metrics.lut_hits.add(1);
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FixedPoint, FloatingPoint, GoldenFloat, IntQuant, MxElem, MxFloat, Posit, P3109};
    use tensor::parallel::with_threads;

    fn ramp() -> Tensor {
        let mut v: Vec<f32> =
            (0..5000).map(|i| (i as f32 - 2500.0) * 0.013 + 1.0 / (i as f32 + 1.0)).collect();
        v.extend([0.0, -0.0, f32::NAN, f32::INFINITY, f32::NEG_INFINITY, 1e-30, -1e30]);
        let n = v.len();
        Tensor::from_vec(v, [n])
    }

    fn assert_matches_two_pass(format: &dyn NumberFormat) {
        let t = ramp();
        let two_pass = format.format_to_real_tensor(&format.real_to_format_tensor(&t));
        for threads in [1usize, 4] {
            let _g = with_threads(threads);
            let fused = fused_roundtrip(format, &t).unwrap_or_else(|| {
                panic!("{} should expose an elementwise quantizer", format.name())
            });
            for (i, (a, b)) in fused.as_slice().iter().zip(two_pass.as_slice()).enumerate() {
                assert!(
                    a.to_bits() == b.to_bits() || (a.is_nan() && b.is_nan()),
                    "{} t={threads} elem {i}: fused {a} vs two-pass {b}",
                    format.name()
                );
            }
        }
    }

    #[test]
    fn fused_matches_two_pass_for_every_elementwise_family() {
        assert_matches_two_pass(&FloatingPoint::fp8_e4m3());
        assert_matches_two_pass(&FloatingPoint::bfloat16());
        assert_matches_two_pass(&FixedPoint::new(3, 4));
        assert_matches_two_pass(&Posit::new(8, 0));
        assert_matches_two_pass(&P3109::new(4, 3));
        assert_matches_two_pass(&GoldenFloat::new(16));
    }

    #[test]
    fn metadata_formats_fall_back_to_two_pass() {
        let t = ramp();
        assert!(fused_roundtrip(&IntQuant::new(8), &t).is_none(), "INT derives a scale");
        let mx = MxFloat::new(MxElem::parse("fp8e4m3").expect("known elem"), 32);
        assert!(fused_roundtrip(&mx, &t).is_none(), "MX derives block scales");
    }
}
