//! Stable FNV-1a hashing of tensor contents — the content half of the
//! artifact-store cache key `(tensor hash × canonical format spec)`.
//!
//! FNV-1a is used for the same reason the conformance golden vectors use
//! it: the hash must be identical across processes, platforms, and
//! sessions, so Rust's randomized `DefaultHasher` is out. Tensor bytes are
//! hashed as little-endian `f32` bit patterns, so two tensors hash equal
//! exactly when they are bit-identical (distinct NaN payloads differ,
//! `-0.0 != 0.0`) — the granularity the bit-exactness contract of cached
//! quantisations needs.

use tensor::Tensor;

/// FNV-1a 64-bit offset basis.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
pub const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Folds `bytes` into a running FNV-1a state `h`.
#[inline]
pub fn fnv1a_update(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// FNV-1a 64-bit hash of `bytes`.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    fnv1a_update(FNV_OFFSET, bytes)
}

/// Content hash of a tensor: rank, dimensions, then every element as its
/// little-endian `f32` bit pattern.
pub fn tensor_hash(t: &Tensor) -> u64 {
    let mut h = fnv1a_update(FNV_OFFSET, &(t.ndim() as u64).to_le_bytes());
    for &d in t.dims() {
        h = fnv1a_update(h, &(d as u64).to_le_bytes());
    }
    for &v in t.as_slice() {
        h = fnv1a_update(h, &v.to_le_bytes());
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Reference values of the standard 64-bit FNV-1a.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn tensor_hash_is_shape_and_bit_sensitive() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [4]);
        let b = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2]);
        assert_ne!(tensor_hash(&a), tensor_hash(&b), "shape must feed the hash");
        let c = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [4]);
        assert_eq!(tensor_hash(&a), tensor_hash(&c));
        let d = Tensor::from_vec(vec![1.0, 2.0, 3.0, -4.0], [4]);
        assert_ne!(tensor_hash(&a), tensor_hash(&d));
        // Signed zero is a distinct bit pattern.
        let z = Tensor::from_vec(vec![0.0], [1]);
        let nz = Tensor::from_vec(vec![-0.0], [1]);
        assert_ne!(tensor_hash(&z), tensor_hash(&nz));
    }
}
