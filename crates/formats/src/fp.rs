//! Generic floating point: any `eXmY` split, IEEE-754 conventions
//! (biased exponent, implicit leading one, reserved all-ones exponent for
//! Inf/NaN, optional denormals).
//!
//! Covers the paper's named formats as parameterisations: FP32 = `e8m23`,
//! FP16 = `e5m10`, bfloat16 = `e8m7`, TensorFloat = `e8m10`, DLFloat =
//! `e6m9`, FP8 = `e4m3`.

use crate::bitstring::Bitstring;
use crate::format::{DynamicRange, NumberFormat, Quantized};
use crate::metadata::Metadata;
use tensor::Tensor;

/// Internal e/m arithmetic shared by [`FloatingPoint`] and AdaptivFloat.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct FpParams {
    pub e: u32,
    pub m: u32,
    pub denormals: bool,
}

impl FpParams {
    pub(crate) fn new(e: u32, m: u32, denormals: bool) -> Self {
        assert!((2..=11).contains(&e), "exponent width {e} out of range 2..=11");
        assert!((1..=52).contains(&m), "mantissa width {m} out of range 1..=52");
        FpParams { e, m, denormals }
    }

    /// IEEE exponent bias: `2^(e-1) - 1`.
    pub(crate) fn bias(&self) -> i64 {
        (1i64 << (self.e - 1)) - 1
    }

    /// Largest normal (unbiased) exponent; the all-ones field is reserved.
    pub(crate) fn emax(&self) -> i64 {
        (1i64 << self.e) - 2 - self.bias()
    }

    /// Smallest normal (unbiased) exponent.
    pub(crate) fn emin(&self) -> i64 {
        1 - self.bias()
    }

    /// Largest representable magnitude: `2^emax · (2 − 2^−m)`.
    pub(crate) fn max_value(&self) -> f64 {
        exp2(self.emax()) * (2.0 - exp2(-(self.m as i64)))
    }

    /// Smallest normal magnitude: `2^emin`.
    pub(crate) fn min_normal(&self) -> f64 {
        exp2(self.emin())
    }

    /// Smallest denormal magnitude: `2^(emin − m)`.
    pub(crate) fn min_denormal(&self) -> f64 {
        exp2(self.emin() - self.m as i64)
    }

    /// Rounds `x` to the nearest representable value (ties to even),
    /// saturating at `±max_value` — including for ±Inf inputs (the
    /// emulation clamps everything beyond the format's range; only bit
    /// flips can *produce* the reserved Inf/NaN codes). NaN propagates.
    pub(crate) fn quantize(&self, x: f64) -> f64 {
        if x.is_nan() || x == 0.0 {
            return x;
        }
        if x.is_infinite() {
            return x.signum() * self.max_value();
        }
        let sign = if x < 0.0 { -1.0 } else { 1.0 };
        let a = x.abs();
        let e = exponent_of(a);
        if e >= self.emin() {
            // Normal range (or above): quantise the mantissa at 2^(e−m).
            let scale = exp2(e - self.m as i64);
            let q = round_ties_even(a / scale);
            let val = q * scale;
            if exponent_of(val) > self.emax() {
                return sign * self.max_value();
            }
            sign * val
        } else if self.denormals {
            let step = self.min_denormal();
            let q = round_ties_even(a / step);
            sign * q * step
        } else {
            // Flush-to-zero hardware: round to nearest of {0, min_normal}.
            if a >= self.min_normal() * 0.5 {
                sign * self.min_normal()
            } else {
                sign * 0.0
            }
        }
    }

    /// Total bit width: sign + exponent + mantissa.
    pub(crate) fn width(&self) -> usize {
        1 + self.e as usize + self.m as usize
    }

    /// Fast tensor-path quantiser: pure bit manipulation on the f32
    /// representation (the analogue of QPyTorch's C++/CUDA kernels, which
    /// give the paper's FP/FxP/INT emulation its near-native speed).
    ///
    /// Round-to-nearest-even is performed by adding `half − 1 + lsb` to
    /// the mantissa field; the carry propagates into the exponent, which
    /// IEEE's layout makes exactly the right thing. Values below the
    /// format's normal range fall back to the exact f64 slow path (they
    /// are rare in practice and need denormal/FTZ handling).
    pub(crate) fn quantize_f32(&self, x: f32) -> f32 {
        let bits = x.to_bits();
        let exp_field = (bits >> 23) & 0xff;
        if exp_field == 0xff {
            if x.is_nan() {
                return x;
            }
            // ±Inf saturates like any other beyond-max value.
            return x.signum() * self.max_value() as f32;
        }
        let rounded = if self.m < 23 {
            let shift = 23 - self.m;
            let lsb = (bits >> shift) & 1;
            let add = (1u32 << (shift - 1)) - 1 + lsb;
            (bits.wrapping_add(add)) & !((1u32 << shift) - 1)
        } else {
            bits
        };
        let e_unb = (((rounded >> 23) & 0xff) as i64) - 127;
        if ((rounded >> 23) & 0xff) == 0 {
            // Zero or f32-subnormal: below every format's normal range.
            return self.quantize(x as f64) as f32;
        }
        if e_unb > self.emax() {
            return if x < 0.0 { -(self.max_value() as f32) } else { self.max_value() as f32 };
        }
        if e_unb >= self.emin() {
            f32::from_bits(rounded)
        } else {
            // Denormal range of the target format: exact slow path.
            self.quantize(x as f64) as f32
        }
    }

    /// Encodes a value into `[s | e | m]` bits. The value is quantised
    /// first, so any f32 is accepted.
    pub(crate) fn encode(&self, x: f64) -> Bitstring {
        let (e, m) = (self.e as usize, self.m as usize);
        let exp_ones = (1u64 << e) - 1;
        if x.is_nan() {
            // Canonical NaN: sign 0, exponent all-ones, mantissa all-ones.
            let word = (exp_ones << m) | ((1u64 << m) - 1);
            return Bitstring::from_u64(word, 1 + e + m);
        }
        if x.is_infinite() {
            // ±Inf is representable (reserved exponent) and must round-trip
            // through Methods 3/4 even though Method 1 saturates it.
            let word = ((x.is_sign_negative() as u64) << (e + m)) | (exp_ones << m);
            return Bitstring::from_u64(word, 1 + e + m);
        }
        let v = self.quantize(x);
        let sign = v.is_sign_negative() as u64;
        let a = v.abs();
        if a == 0.0 {
            return Bitstring::from_u64(sign << (e + m), 1 + e + m);
        }
        let ev = exponent_of(a);
        let (exp_field, mant_field) = if ev >= self.emin() {
            let mant = round_ties_even((a / exp2(ev) - 1.0) * exp2(self.m as i64)) as u64;
            ((ev + self.bias()) as u64, mant)
        } else {
            // Denormal: exponent field 0.
            (0u64, round_ties_even(a / self.min_denormal()) as u64)
        };
        let word = (sign << (e + m)) | (exp_field << m) | (mant_field & ((1 << m) - 1));
        Bitstring::from_u64(word, 1 + e + m)
    }

    /// Decodes `[s | e | m]` bits into a value. All-ones exponents decode
    /// to ±Inf/NaN; denormal patterns decode to 0 when denormal support is
    /// off (flush-to-zero hardware).
    pub(crate) fn decode(&self, bits: &Bitstring) -> f64 {
        let (e, m) = (self.e as usize, self.m as usize);
        assert_eq!(bits.len(), 1 + e + m, "bit width mismatch for {:?}", self);
        let sign = if bits.bit(0) { -1.0 } else { 1.0 };
        let exp_field = bits.field(1, e).to_u64();
        let mant_field = bits.field(1 + e, m).to_u64();
        let exp_ones = (1u64 << e) - 1;
        if exp_field == exp_ones {
            return if mant_field == 0 { sign * f64::INFINITY } else { f64::NAN };
        }
        if exp_field == 0 {
            if !self.denormals {
                return sign * 0.0;
            }
            return sign * mant_field as f64 * self.min_denormal();
        }
        let ev = exp_field as i64 - self.bias();
        sign * exp2(ev) * (1.0 + mant_field as f64 / exp2(self.m as i64))
    }
}

/// `2^k` in f64, exact for the exponent range used here — including the
/// subnormal range `−1074 ≤ k < −1022` (an e11 format's smallest denormal
/// is 2^−1042, which naive `powi` underflows to 0 because the intermediate
/// 2^1042 overflows before the reciprocal).
pub(crate) fn exp2(k: i64) -> f64 {
    if k >= -1022 {
        (2.0f64).powi(k as i32)
    } else {
        // Split so each factor stays in range; powers of two multiply
        // exactly even when the product is subnormal.
        (2.0f64).powi(-1022) * (2.0f64).powi((k + 1022).max(-100) as i32)
    }
}

/// `x · 2^k` computed without intermediate overflow: the scaling is applied
/// in chunks small enough that `exp2` stays finite, so a huge `k` (e.g. a
/// corrupted 16-bit AdaptivFloat bias register, `|k|` up to 2^15) degrades
/// gracefully to ±Inf / ±0 instead of poisoning the product with NaN.
///
/// Signed zeros and non-finite inputs pass through unchanged.
pub fn mul_pow2(x: f64, k: i64) -> f64 {
    if x == 0.0 || !x.is_finite() {
        return x;
    }
    let mut v = x;
    let mut k = k;
    while k != 0 {
        let s = k.clamp(-900, 900);
        v *= exp2(s);
        k -= s;
        if v == 0.0 || v.is_infinite() {
            break;
        }
    }
    v
}

/// Casts an f64 onto the f32 compute fabric, saturating at `±f32::MAX`
/// instead of overflowing to ±Inf — the paper's emulation "writes the
/// number back at the nearest value" the fabric can hold, and only explicit
/// Inf/NaN *codes* may decode to non-finite values. NaN passes through;
/// signed zeros and underflow-to-zero keep their sign.
pub fn f32_saturate(x: f64) -> f32 {
    if x.is_nan() {
        return f32::NAN;
    }
    x.clamp(-(f32::MAX as f64), f32::MAX as f64) as f32
}

/// Unbiased binary exponent of a positive, finite, normal-in-f64 value.
pub(crate) fn exponent_of(a: f64) -> i64 {
    debug_assert!(a > 0.0 && a.is_finite());
    ((a.to_bits() >> 52) & 0x7ff) as i64 - 1023
}

/// Round half to even, matching IEEE default rounding.
pub(crate) fn round_ties_even(x: f64) -> f64 {
    let r = x.round();
    if (x - x.trunc()).abs() == 0.5 && r % 2.0 != 0.0 {
        r - r.signum()
    } else {
        r
    }
}

/// A configurable IEEE-754-style floating-point format (`eXmY`).
///
/// # Examples
///
/// ```
/// use formats::{FloatingPoint, NumberFormat};
/// let bf16 = FloatingPoint::bfloat16();
/// assert_eq!(bf16.name(), "fp_e8m7");
/// assert_eq!(bf16.bit_width(), 16);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FloatingPoint {
    params: FpParams,
}

impl FloatingPoint {
    /// Creates an `eXmY` float with denormal support enabled.
    ///
    /// # Panics
    ///
    /// Panics if `exp_bits ∉ 2..=11` or `man_bits ∉ 1..=52`.
    pub fn new(exp_bits: u32, man_bits: u32) -> Self {
        FloatingPoint { params: FpParams::new(exp_bits, man_bits, true) }
    }

    /// Enables or disables denormal (subnormal) support.
    pub fn with_denormals(mut self, on: bool) -> Self {
        self.params.denormals = on;
        self
    }

    /// IEEE-754 single precision (e8m23).
    pub fn fp32() -> Self {
        Self::new(8, 23)
    }

    /// IEEE-754 half precision (e5m10).
    pub fn fp16() -> Self {
        Self::new(5, 10)
    }

    /// Google bfloat16 (e8m7).
    pub fn bfloat16() -> Self {
        Self::new(8, 7)
    }

    /// NVIDIA TensorFloat-32 (e8m10).
    pub fn tensorfloat32() -> Self {
        Self::new(8, 10)
    }

    /// IBM DLFloat (e6m9).
    pub fn dlfloat16() -> Self {
        Self::new(6, 9)
    }

    /// FP8 e4m3 (as in the paper's Table I, without Inf codes reclaimed).
    pub fn fp8_e4m3() -> Self {
        Self::new(4, 3)
    }

    /// FP8 e5m2.
    pub fn fp8_e5m2() -> Self {
        Self::new(5, 2)
    }

    /// Exponent width in bits.
    pub fn exp_bits(&self) -> u32 {
        self.params.e
    }

    /// Mantissa width in bits.
    pub fn man_bits(&self) -> u32 {
        self.params.m
    }

    /// Whether denormals are representable.
    pub fn denormals(&self) -> bool {
        self.params.denormals
    }

    /// Quantises a single value (exposed for tests and the DSE heuristic).
    pub fn quantize_scalar(&self, x: f32) -> f32 {
        self.params.quantize_f32(x)
    }

    /// The exact f64 reference quantiser — the slow path the bit-twiddling
    /// fast path ([`FloatingPoint::quantize_scalar`]) must agree with
    /// bit-for-bit. Exposed so the conformance oracle can run differential
    /// sweeps (law `fast-slow-agreement`) from outside this crate.
    pub fn quantize_reference(&self, x: f32) -> f32 {
        self.params.quantize(x as f64) as f32
    }
}

impl NumberFormat for FloatingPoint {
    fn name(&self) -> String {
        if self.params.denormals {
            format!("fp_e{}m{}", self.params.e, self.params.m)
        } else {
            format!("fp_e{}m{}_nodn", self.params.e, self.params.m)
        }
    }

    fn canonical_spec(&self) -> String {
        if self.params.denormals {
            format!("fp:e{}m{}", self.params.e, self.params.m)
        } else {
            format!("fp:e{}m{}:nodn", self.params.e, self.params.m)
        }
    }

    fn bit_width(&self) -> u32 {
        self.params.width() as u32
    }

    fn real_to_format_tensor(&self, t: &Tensor) -> Quantized {
        let values = crate::chunk::map_chunked(t, |x| self.params.quantize_f32(x));
        Quantized { values, meta: Metadata::None }
    }

    fn elementwise_quantizer(&self) -> Option<Box<dyn Fn(f32) -> f32 + Send + Sync + '_>> {
        // Same closure as `real_to_format_tensor`; dequantise is the
        // identity cast, so the round-trip is this single map.
        Some(Box::new(|x| self.params.quantize_f32(x)))
    }

    fn real_to_format(&self, value: f32, _meta: &Metadata, _index: usize) -> Bitstring {
        self.params.encode(value as f64)
    }

    fn format_to_real(&self, bits: &Bitstring, _meta: &Metadata, _index: usize) -> f32 {
        self.params.decode(bits) as f32
    }

    fn dynamic_range(&self) -> DynamicRange {
        DynamicRange {
            max_abs: self.params.max_value(),
            min_abs: if self.params.denormals {
                self.params.min_denormal()
            } else {
                self.params.min_normal()
            },
        }
    }

    fn exponent_field(&self) -> Option<std::ops::Range<usize>> {
        Some(1..1 + self.params.e as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exp2_reaches_the_f64_subnormal_range() {
        // Regression: powi(−1042) underflowed to 0, zeroing an e11 format's
        // min_abs (GF32 = e11m20 has min denormal 2^−1042).
        assert_eq!(exp2(-1022), f64::MIN_POSITIVE);
        assert_eq!(exp2(-1042), f64::MIN_POSITIVE / (2.0f64).powi(20));
        assert!(exp2(-1074) > 0.0, "smallest f64 subnormal");
        assert_eq!(exp2(-1075), 0.0);
        assert_eq!(exp2(-2000), 0.0);
        let gf32 = FpParams::new(11, 20, true);
        assert!(gf32.min_denormal() > 0.0);
    }

    #[test]
    fn fp32_quantize_is_identity_on_f32() {
        let fp = FloatingPoint::fp32();
        for &x in &[0.0f32, 1.0, -2.5, 3.375, 1e-30, -1e30, f32::MIN_POSITIVE] {
            assert_eq!(fp.quantize_scalar(x), x, "fp32 must be lossless for {x}");
        }
    }

    #[test]
    fn fp32_encode_matches_ieee_bits() {
        let fp = FloatingPoint::fp32();
        for &x in &[0.0f32, 1.0, -1.5, 0.1, 65504.0, 1.4e-45, -3.0e38] {
            let bits = fp.real_to_format(x, &Metadata::None, 0);
            assert_eq!(bits.to_u64() as u32, x.to_bits(), "encode({x}) != f32 bits");
            assert_eq!(fp.format_to_real(&bits, &Metadata::None, 0), x);
        }
    }

    #[test]
    fn fp16_max_and_min() {
        let fp = FloatingPoint::fp16();
        let r = fp.dynamic_range();
        assert_eq!(r.max_abs, 65504.0);
        assert!((r.min_abs - 5.960_464_5e-8).abs() < 1e-12);
        let nodn = fp.with_denormals(false).dynamic_range();
        assert!((nodn.min_abs - 6.103_515_6e-5).abs() < 1e-9);
    }

    #[test]
    fn fp8_e4m3_saturates_at_240() {
        let fp = FloatingPoint::fp8_e4m3();
        assert_eq!(fp.quantize_scalar(1000.0), 240.0);
        assert_eq!(fp.quantize_scalar(-1000.0), -240.0);
        assert_eq!(fp.dynamic_range().max_abs, 240.0);
    }

    #[test]
    fn fp8_rounds_to_nearest_even() {
        let fp = FloatingPoint::fp8_e4m3();
        // Between 1.0 (mant 0) and 1.125 (mant 1): 1.0625 ties to even → 1.0.
        assert_eq!(fp.quantize_scalar(1.0625), 1.0);
        // 1.1 is closer to 1.125.
        assert_eq!(fp.quantize_scalar(1.1), 1.125);
    }

    #[test]
    fn denormals_off_flushes_small_values() {
        let fp = FloatingPoint::fp8_e4m3().with_denormals(false);
        let min_normal = 2.0f32.powi(-6);
        assert_eq!(fp.quantize_scalar(min_normal / 4.0), 0.0);
        assert_eq!(fp.quantize_scalar(min_normal * 0.75), min_normal);
        let on = FloatingPoint::fp8_e4m3();
        // With denormals, min_normal/4 is representable (mantissa step 2^-9).
        assert_eq!(on.quantize_scalar(min_normal / 4.0), min_normal / 4.0);
    }

    #[test]
    fn quantize_idempotent() {
        let fp = FloatingPoint::new(3, 4);
        for &x in &[0.3f32, -7.9, 100.0, 0.001, 5.5e-4] {
            let q = fp.quantize_scalar(x);
            assert_eq!(fp.quantize_scalar(q), q, "quantize not idempotent at {x}");
        }
    }

    #[test]
    fn encode_decode_roundtrip_all_codes() {
        // Exhaustively decode every 8-bit FP(e4m3) pattern and re-encode:
        // every representable value must round-trip.
        let fp = FloatingPoint::fp8_e4m3();
        for code in 0u64..256 {
            let bits = Bitstring::from_u64(code, 8);
            let v = fp.format_to_real(&bits, &Metadata::None, 0);
            if v.is_nan() {
                continue;
            }
            let re = fp.real_to_format(v, &Metadata::None, 0);
            let v2 = fp.format_to_real(&re, &Metadata::None, 0);
            assert_eq!(v, v2, "code {code:#010b} decoded to {v}, re-decoded to {v2}");
        }
    }

    #[test]
    fn exponent_flip_is_large_error() {
        // Flipping the MSB of the exponent of 1.0 in e8m23 gives 2^128 ≈ inf
        // territory; in our representation it decodes to a huge value.
        let fp = FloatingPoint::fp32();
        let bits = fp.real_to_format(1.0, &Metadata::None, 0);
        let flipped = bits.with_flip(1); // MSB of exponent
        let v = fp.format_to_real(&flipped, &Metadata::None, 0);
        assert!(v > 1e38 || v.is_infinite(), "exponent flip gave {v}");
    }

    #[test]
    fn sign_flip_negates() {
        let fp = FloatingPoint::fp16();
        let bits = fp.real_to_format(3.5, &Metadata::None, 0);
        let v = fp.format_to_real(&bits.with_flip(0), &Metadata::None, 0);
        assert_eq!(v, -3.5);
    }

    #[test]
    fn all_ones_exponent_decodes_to_inf_or_nan() {
        let fp = FloatingPoint::fp8_e4m3();
        // s=0, e=1111, m=000 → +inf
        let inf = Bitstring::from_u64(0b01111000, 8);
        assert!(fp.format_to_real(&inf, &Metadata::None, 0).is_infinite());
        let nan = Bitstring::from_u64(0b01111001, 8);
        assert!(fp.format_to_real(&nan, &Metadata::None, 0).is_nan());
    }

    #[test]
    fn tensor_quantize_matches_scalar() {
        let fp = FloatingPoint::new(5, 2);
        let x = Tensor::from_vec(vec![0.1, -0.7, 3.3, 900.0, 1e-9], [5]);
        let q = fp.real_to_format_tensor(&x);
        for (i, &xv) in x.as_slice().iter().enumerate() {
            assert_eq!(q.values.as_slice()[i], fp.quantize_scalar(xv));
        }
        assert_eq!(q.meta, Metadata::None);
    }

    #[test]
    fn round_ties_even_cases() {
        assert_eq!(round_ties_even(0.5), 0.0);
        assert_eq!(round_ties_even(1.5), 2.0);
        assert_eq!(round_ties_even(2.5), 2.0);
        assert_eq!(round_ties_even(-0.5), 0.0);
        assert_eq!(round_ties_even(-1.5), -2.0);
        assert_eq!(round_ties_even(1.3), 1.0);
    }

    #[test]
    #[should_panic(expected = "exponent width")]
    fn invalid_exp_bits_panics() {
        FloatingPoint::new(1, 3);
    }

    /// The bit-twiddling fast path must agree exactly with the f64
    /// reference on a dense sweep of values, including binade boundaries,
    /// ties, saturation, and the denormal region.
    #[test]
    fn fast_path_matches_slow_path_exactly() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(99);
        let formats = [
            FpParams::new(4, 3, true),
            FpParams::new(4, 3, false),
            FpParams::new(5, 10, true),
            FpParams::new(8, 7, true),
            FpParams::new(2, 5, true),
            FpParams::new(8, 23, true),
            FpParams::new(3, 23, true),
        ];
        let mut cases: Vec<f32> = vec![
            0.0,
            -0.0,
            1.0,
            -1.0,
            0.5,
            240.0,
            241.0,
            1e30,
            -1e30,
            1e-30,
            -1e-30,
            f32::MIN_POSITIVE,
            f32::MIN_POSITIVE / 8.0,
            65504.0,
            1.0625,
            1.1875,
        ];
        for _ in 0..4000 {
            let exp: i32 = rng.gen_range(-40..40);
            let mant: f32 = rng.gen_range(1.0..2.0);
            let sign = if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
            cases.push(sign * mant * (2.0f32).powi(exp));
        }
        for p in formats {
            for &x in &cases {
                let fast = p.quantize_f32(x);
                let slow = p.quantize(x as f64) as f32;
                assert!(
                    fast == slow || (fast == 0.0 && slow == 0.0),
                    "e{}m{} dn={}: fast({x:?}) = {fast:?}, slow = {slow:?}",
                    p.e,
                    p.m,
                    p.denormals
                );
            }
        }
    }
}
