//! Dequantisation lookup tables for narrow metadata-free formats.
//!
//! For a format whose code space is ≤ [`MAX_LUT_WIDTH`] bits and whose
//! decode (Method 4) depends on nothing but the code — FP, FxP, posit; not
//! INT/BFP/AFP, whose decode reads a register — the entire
//! `format_to_real` map fits in a table of `2^width` f32 entries (≤ 256
//! KiB). The error-injection hot path (encode → flip → decode, run once
//! per trial per campaign) then decodes flipped codes with one indexed
//! load instead of a `Bitstring` field walk — for posits, this replaces a
//! code-table search entirely.
//!
//! Tables are built once per format (keyed by
//! [`NumberFormat::canonical_spec`] — the same identity the artifact store
//! uses, so aliased constructions such as `"fp8"` vs `"fp:e4m3"` or
//! `"gf:16"` vs `"dlfloat16"` share one table) and shared process-wide. The
//! conformance oracle validates every entry bitwise against the direct
//! Method 4 decode (law `lut-agreement`), so the fast path cannot drift
//! silently.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use crate::bitstring::Bitstring;
use crate::format::NumberFormat;
use crate::metadata::Metadata;
use tensor::Tensor;

/// Widest code space a LUT is built for: 2^16 entries × 4 B = 256 KiB.
pub const MAX_LUT_WIDTH: u32 = 16;

/// A fully materialised `code → f32` decode table for one format.
#[derive(Debug, Clone)]
pub struct DequantLut {
    width: usize,
    table: Vec<f32>,
}

impl DequantLut {
    /// Builds the table by decoding every code through Method 4, or
    /// returns `None` when the format is ineligible: wider than
    /// [`MAX_LUT_WIDTH`], or carrying tensor-level metadata (probed by
    /// quantising a sample tensor — a register-bearing decode cannot be
    /// tabulated per code).
    pub fn build(format: &dyn NumberFormat) -> Option<DequantLut> {
        let width = format.bit_width();
        if width > MAX_LUT_WIDTH {
            return None;
        }
        let probe = format.real_to_format_tensor(&Tensor::from_vec(vec![0.5, -1.0], [2]));
        if probe.meta != Metadata::None {
            return None;
        }
        let width = width as usize;
        let table = (0..1u64 << width)
            .map(|code| {
                format.format_to_real(&Bitstring::from_u64(code, width), &Metadata::None, 0)
            })
            .collect();
        Some(DequantLut { width, table })
    }

    /// Code width in bits.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of entries (`2^width`).
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// Whether the table is empty (never true for a built table).
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// Decodes `code` (the integer image of the format's bitstring).
    ///
    /// # Panics
    ///
    /// Panics if `code >= 2^width`.
    #[inline]
    pub fn decode(&self, code: u64) -> f32 {
        self.table[code as usize]
    }

    /// The raw table, for exhaustive validation by the conformance oracle
    /// (and for persisting into the artifact store).
    pub fn table(&self) -> &[f32] {
        &self.table
    }
}

fn cache() -> &'static Mutex<HashMap<String, Option<Arc<DequantLut>>>> {
    static CACHE: OnceLock<Mutex<HashMap<String, Option<Arc<DequantLut>>>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Seeds the process-wide cache with a table loaded from the artifact
/// store, skipping the `2^width`-decode build. Returns `None` when the
/// format is LUT-ineligible or `table` has the wrong length; if a table
/// for this format is already cached, the cached one wins (tables for one
/// format are bitwise unique, so the two are interchangeable).
pub fn install_cached(format: &dyn NumberFormat, table: Vec<f32>) -> Option<Arc<DequantLut>> {
    let width = format.bit_width();
    if width > MAX_LUT_WIDTH || table.len() != 1usize << width {
        return None;
    }
    let probe = format.real_to_format_tensor(&Tensor::from_vec(vec![0.5, -1.0], [2]));
    if probe.meta != Metadata::None {
        return None;
    }
    let mut map = cache().lock().unwrap_or_else(|p| p.into_inner());
    let entry = map
        .entry(format.canonical_spec())
        .or_insert_with(|| Some(Arc::new(DequantLut { width: width as usize, table })));
    entry.clone()
}

/// Returns the process-wide cached LUT for `format`, building it on first
/// use; `None` when the format is ineligible (cached too, so the probe
/// runs once per canonical spec).
///
/// Keyed by [`NumberFormat::canonical_spec`], not `name()`: two
/// constructions of the same format (shorthand vs explicit spec, builder
/// vs parsed, `gf:16` vs `fp:e6m9`) must share one table instead of
/// silently building duplicates.
pub fn cached(format: &dyn NumberFormat) -> Option<Arc<DequantLut>> {
    let key = format.canonical_spec();
    let mut map = cache().lock().unwrap_or_else(|p| p.into_inner());
    if let Some(entry) = map.get(&key) {
        return entry.clone();
    }
    let built = DequantLut::build(format).map(Arc::new);
    if built.is_some() {
        trace::counter(trace::names::FORMATS_LUT_BUILDS).add(1);
    }
    map.insert(key, built.clone());
    built
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FixedPoint, FloatingPoint, IntQuant, Posit};

    #[test]
    fn lut_matches_direct_decode_for_fp8() {
        let fp = FloatingPoint::fp8_e4m3();
        let lut = DequantLut::build(&fp).expect("fp8 is eligible");
        assert_eq!(lut.len(), 256);
        for code in 0..256u64 {
            let direct = fp.format_to_real(&Bitstring::from_u64(code, 8), &Metadata::None, 0);
            let fast = lut.decode(code);
            assert!(
                direct.to_bits() == fast.to_bits() || (direct.is_nan() && fast.is_nan()),
                "code {code:#x}: direct {direct} vs lut {fast}"
            );
        }
    }

    #[test]
    fn lut_covers_posit_and_fxp() {
        assert!(DequantLut::build(&Posit::new(8, 0)).is_some());
        assert!(DequantLut::build(&FixedPoint::new(3, 4)).is_some());
    }

    #[test]
    fn metadata_formats_are_rejected() {
        assert!(DequantLut::build(&IntQuant::new(8)).is_none(), "INT decode reads a register");
    }

    #[test]
    fn wide_formats_are_rejected() {
        assert!(DequantLut::build(&FloatingPoint::fp32()).is_none());
    }

    #[test]
    fn cache_returns_same_table() {
        let fp = FloatingPoint::fp8_e5m2();
        let a = cached(&fp).expect("eligible");
        let b = cached(&fp).expect("eligible");
        assert!(Arc::ptr_eq(&a, &b));
        assert!(cached(&IntQuant::new(16)).is_none());
    }

    #[test]
    fn aliased_constructions_share_one_cached_table() {
        // Regression for the cache being keyed by a plain name string:
        // shorthand, explicit-grammar, and builder constructions of the
        // same format must resolve to the *same* Arc, not duplicates.
        use crate::FormatSpec;
        let shorthand = "fp8".parse::<FormatSpec>().unwrap().build();
        let explicit = "fp:e4m3".parse::<FormatSpec>().unwrap().build();
        let builder = FloatingPoint::fp8_e4m3();
        let a = cached(shorthand.as_ref()).expect("eligible");
        let b = cached(explicit.as_ref()).expect("eligible");
        let c = cached(&builder).expect("eligible");
        assert!(Arc::ptr_eq(&a, &b), "shorthand vs explicit built duplicate LUTs");
        assert!(Arc::ptr_eq(&a, &c), "parsed vs builder built duplicate LUTs");
    }

    #[test]
    fn goldenfloat_shares_the_equivalent_fp_table() {
        // gf:16 is arithmetically DLFloat16 (fp:e6m9); its name differs but
        // its canonical spec — and therefore its cache slot — must not.
        use crate::{FormatSpec, GoldenFloat, NumberFormat};
        let gf = GoldenFloat::new(16);
        let fp = "dlfloat16".parse::<FormatSpec>().unwrap().build();
        assert_ne!(gf.name(), fp.name());
        let a = cached(&gf).expect("eligible");
        let b = cached(fp.as_ref()).expect("eligible");
        assert!(Arc::ptr_eq(&a, &b), "gf:16 and dlfloat16 built duplicate LUTs");
    }
}
