//! OCP Microscaling (MX) formats: blocks of narrow-float elements share a
//! power-of-two E8M0 scale.
//!
//! MX is BFP's microscaling-era sibling ([`crate::BlockFloatingPoint`]):
//! where BFP stores sign+magnitude integers against one shared exponent,
//! MX stores full minifloat elements (FP4/FP6/FP8, each with its own tiny
//! exponent field) against a shared **E8M0** scale — an unsigned 8-bit
//! power-of-two `2^(code − 127)` held once per block in a hardware scale
//! register. The registers ride the same
//! [`Metadata::SharedExponents`] machinery as BFP (`exp_bits = 8`, bias
//! 127 — exactly E8M0), so metadata fault injection works unchanged and a
//! single scale-register flip corrupts the whole block.
//!
//! Intentional deviation from OCP MX 1.0: scale code 255 (NaN in the spec)
//! decodes here as `2^128` — the conformance law `meta-flip-finite`
//! requires every scale-register flip to yield defined, finite values, so
//! the top code stays an ordinary (huge) scale. DESIGN.md §14 records
//! this.

use crate::bitstring::Bitstring;
use crate::format::{DynamicRange, NumberFormat, Quantized};
use crate::fp::{exponent_of, f32_saturate, mul_pow2};
use crate::metadata::Metadata;
use crate::minifloat::{MiniFloat, SpecialRule};
use tensor::Tensor;

/// E8M0 scale bias: `scale = 2^(code − 127)`.
const SCALE_BIAS: i64 = 127;

/// E8M0 scale register width.
const SCALE_BITS: u32 = 8;

/// The OCP MX element formats.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MxElem {
    /// FP4 e2m1: no Inf/NaN codes, max 6.
    Fp4E2m1,
    /// FP6 e2m3: no Inf/NaN codes, max 7.5.
    Fp6E2m3,
    /// FP6 e3m2: no Inf/NaN codes, max 28.
    Fp6E3m2,
    /// FP8 e4m3 ("fn"): one NaN code per sign, no Inf, max 448.
    Fp8E4m3,
    /// FP8 e5m2: full IEEE Inf/NaN reservation, finite max 57344.
    Fp8E5m2,
}

impl MxElem {
    /// All element formats, in spec order.
    pub const ALL: [MxElem; 5] =
        [MxElem::Fp4E2m1, MxElem::Fp6E2m3, MxElem::Fp6E3m2, MxElem::Fp8E4m3, MxElem::Fp8E5m2];

    pub(crate) fn mini(self) -> MiniFloat {
        match self {
            MxElem::Fp4E2m1 => MiniFloat::new(2, 1, SpecialRule::Finite),
            MxElem::Fp6E2m3 => MiniFloat::new(2, 3, SpecialRule::Finite),
            MxElem::Fp6E3m2 => MiniFloat::new(3, 2, SpecialRule::Finite),
            MxElem::Fp8E4m3 => MiniFloat::new(4, 3, SpecialRule::NanOnly),
            MxElem::Fp8E5m2 => MiniFloat::new(5, 2, SpecialRule::Ieee),
        }
    }

    /// The spec-grammar token, e.g. `"fp4e2m1"`.
    pub fn token(self) -> &'static str {
        match self {
            MxElem::Fp4E2m1 => "fp4e2m1",
            MxElem::Fp6E2m3 => "fp6e2m3",
            MxElem::Fp6E3m2 => "fp6e3m2",
            MxElem::Fp8E4m3 => "fp8e4m3",
            MxElem::Fp8E5m2 => "fp8e5m2",
        }
    }

    /// Parses a spec-grammar token.
    pub fn parse(s: &str) -> Option<MxElem> {
        MxElem::ALL.iter().copied().find(|e| e.token() == s)
    }

    /// Element data width in bits (4, 6, or 8).
    pub fn bit_width(self) -> u32 {
        self.mini().width() as u32
    }
}

/// An OCP microscaling format: `block_size` minifloat elements per shared
/// E8M0 power-of-two scale.
///
/// # Examples
///
/// ```
/// use formats::{MxElem, MxFloat, NumberFormat};
/// use tensor::Tensor;
/// let mx = MxFloat::new(MxElem::Fp8E4m3, 32);
/// assert_eq!(mx.name(), "mx_fp8e4m3_b32");
/// let x = Tensor::from_vec(vec![1.0, -0.5, 300.0, 0.001], [4]);
/// let q = mx.real_to_format_tensor(&x);
/// assert_eq!(q.meta.word_count(), 1); // one E8M0 scale register
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MxFloat {
    elem: MxElem,
    block_size: usize,
}

impl MxFloat {
    /// Creates an MX format.
    ///
    /// # Panics
    ///
    /// Panics if `block_size` is 0 or the BFP whole-tensor sentinel
    /// (`usize::MAX`) — OCP MX scales are per fixed-size block.
    pub fn new(elem: MxElem, block_size: usize) -> Self {
        assert!(
            block_size > 0 && block_size != usize::MAX,
            "MX block size must be a positive fixed count"
        );
        MxFloat { elem, block_size }
    }

    /// The element format.
    pub fn elem(&self) -> MxElem {
        self.elem
    }

    /// Elements per shared scale.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// The E8M0 scale code chosen for a block of maximum magnitude
    /// `max_abs`: `clamp(floor(log2 max) − emax + 127, 0, 255)`, the OCP
    /// rule that puts the block max in the element's top binade.
    fn code_for_block(&self, max_abs: f64) -> u32 {
        if max_abs == 0.0 {
            return 0;
        }
        if !max_abs.is_finite() {
            // An Inf element pins the block at the top scale code.
            return (1 << SCALE_BITS) - 1;
        }
        let e = exponent_of(max_abs) - self.elem.mini().emax();
        (e + SCALE_BIAS).clamp(0, (1 << SCALE_BITS) - 1) as u32
    }

    /// Unbiased scale exponent for a register code.
    fn scale_exp(code: u32) -> i64 {
        code as i64 - SCALE_BIAS
    }

    /// Quantises one element under a fixed scale code — the shared scalar
    /// kernel of Method 1 and of Methods 3∘4, so the tensor and scalar
    /// paths agree bitwise.
    fn quantize_elem(&self, x: f32, code: u32) -> f32 {
        let s = Self::scale_exp(code);
        let v = self.elem.mini().quantize(mul_pow2(x as f64, -s));
        if !v.is_finite() {
            // NaN (for NaN-capable elements); quantize never returns Inf.
            return v as f32;
        }
        f32_saturate(mul_pow2(v, s))
    }

    fn codes_of(meta: &Metadata) -> (&[u32], usize) {
        match meta {
            Metadata::SharedExponents { codes, block_size, .. } => (codes, *block_size),
            other => panic!("MX expects SharedExponents metadata, got {other:?}"),
        }
    }
}

impl NumberFormat for MxFloat {
    fn name(&self) -> String {
        format!("mx_{}_b{}", self.elem.token(), self.block_size)
    }

    fn canonical_spec(&self) -> String {
        format!("mx:{}:b{}", self.elem.token(), self.block_size)
    }

    /// Per-element data width; the E8M0 scale is amortised metadata.
    fn bit_width(&self) -> u32 {
        self.elem.bit_width()
    }

    fn real_to_format_tensor(&self, t: &Tensor) -> Quantized {
        let n = t.numel();
        let src = t.as_slice();
        let nblocks = n.div_ceil(self.block_size);
        let bs = self.block_size.min(n.max(1));
        // Whole blocks per parallel task, exactly as in BFP: chunk
        // boundaries align with scale blocks, so output is byte-identical
        // for every thread count.
        let blocks_per_task = (crate::chunk::QUANT_CHUNK / bs).max(1);
        let mut codes = vec![0u32; nblocks];
        tensor::parallel::par_chunks_mut(&mut codes, blocks_per_task, |ci, chunk| {
            let b0 = ci * blocks_per_task;
            for (bj, slot) in chunk.iter_mut().enumerate() {
                let start = (b0 + bj) * bs;
                let end = (start + bs).min(n);
                let max_abs = src[start..end].iter().fold(0.0f64, |m, &x| m.max((x as f64).abs()));
                *slot = self.code_for_block(max_abs);
            }
        });
        let mut values = vec![0.0f32; n];
        let codes_ref = &codes[..];
        tensor::parallel::par_chunks_mut(&mut values, blocks_per_task * bs, |ci, out| {
            let b0 = ci * blocks_per_task;
            for (bj, block) in out.chunks_mut(bs).enumerate() {
                let code = codes_ref[b0 + bj];
                let start = (b0 + bj) * bs;
                for (j, v) in block.iter_mut().enumerate() {
                    *v = self.quantize_elem(src[start + j], code);
                }
            }
        });
        Quantized {
            values: Tensor::from_vec(values, t.shape().clone()),
            meta: Metadata::SharedExponents {
                codes,
                block_size: self.block_size,
                exp_bits: SCALE_BITS,
            },
        }
    }

    fn real_to_format(&self, value: f32, meta: &Metadata, index: usize) -> Bitstring {
        let (codes, bs) = Self::codes_of(meta);
        let s = Self::scale_exp(codes[index / bs]);
        let code = self.elem.mini().encode(mul_pow2(value as f64, -s));
        Bitstring::from_u64(code, self.elem.mini().width())
    }

    fn format_to_real(&self, bits: &Bitstring, meta: &Metadata, index: usize) -> f32 {
        let (codes, bs) = Self::codes_of(meta);
        let mini = self.elem.mini();
        assert_eq!(bits.len(), mini.width(), "MX element width mismatch");
        let v = mini.decode(bits.to_u64());
        if !v.is_finite() {
            // Explicit element Inf/NaN codes decode unscaled — only they
            // may produce non-finite values (and only for e4m3/e5m2).
            return v as f32;
        }
        f32_saturate(mul_pow2(v, Self::scale_exp(codes[index / bs])))
    }

    fn dynamic_range(&self) -> DynamicRange {
        let mini = self.elem.mini();
        // Bounds over *all* scale codes (0..=255), so flipped scale
        // registers stay inside the declared range.
        DynamicRange {
            max_abs: mul_pow2(mini.max_value(), (1 << SCALE_BITS) - 1 - SCALE_BIAS),
            min_abs: mul_pow2(mini.min_denormal(), -SCALE_BIAS),
        }
    }

    fn supports_metadata_injection(&self) -> bool {
        true
    }

    fn exponent_field(&self) -> Option<std::ops::Range<usize>> {
        Some(1..1 + self.elem.mini().e as usize)
    }

    fn apply_metadata(&self, values: &Tensor, old: &Metadata, new: &Metadata) -> Tensor {
        let (old_codes, bs) = Self::codes_of(old);
        let (new_codes, _) = Self::codes_of(new);
        assert_eq!(old_codes.len(), new_codes.len(), "block count changed");
        let mini = self.elem.mini();
        let elem_max = mini.max_value();
        let n = values.numel();
        let mut out = values.clone();
        for (b, (&oc, &nc)) in old_codes.iter().zip(new_codes).enumerate() {
            if oc == nc {
                continue;
            }
            // Hardware keeps the stored element codes; only the scale
            // register changed. Recover each element value under the old
            // scale and re-apply the new one, clamping at the element max
            // (law `meta-flip-range`) and at the f32 fabric (law
            // `meta-flip-finite` — a flip to code 255 scales by 2^128).
            let os = Self::scale_exp(oc);
            let ns = Self::scale_exp(nc);
            let start = b.saturating_mul(bs).min(n);
            let end = start.saturating_add(bs).min(n);
            for v in &mut out.as_mut_slice()[start..end] {
                let vf = *v as f64;
                if !vf.is_finite() {
                    // Element-level Inf/NaN codes ignore the scale.
                    continue;
                }
                let sign = if vf.is_sign_negative() { -1.0f64 } else { 1.0 };
                let elem = mul_pow2(vf.abs(), -os).min(elem_max);
                *v = if elem == 0.0 {
                    (sign * 0.0) as f32
                } else {
                    f32_saturate(sign * mul_pow2(elem, ns))
                };
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tensor::parallel::with_threads;

    #[test]
    fn scale_follows_block_max_into_top_binade() {
        // Block max 300 with e4m3 elements (emax 8): floor(log2 300) = 8,
        // so the scale is 2^0 — 300 sits in the element's top binade.
        let mx = MxFloat::new(MxElem::Fp8E4m3, 4);
        let x = Tensor::from_vec(vec![300.0, 1.0, -2.0, 0.5], [4]);
        let q = mx.real_to_format_tensor(&x);
        let Metadata::SharedExponents { codes, exp_bits, .. } = &q.meta else { panic!() };
        assert_eq!(*exp_bits, 8);
        assert_eq!(codes, &vec![127]);
        assert_eq!(q.values.as_slice()[0], 288.0); // e4m3 grid step is 32 here
    }

    #[test]
    fn blocks_get_independent_scales() {
        let mx = MxFloat::new(MxElem::Fp4E2m1, 2);
        let x = Tensor::from_vec(vec![48.0, 24.0, 0.375, 0.1875], [4]);
        let q = mx.real_to_format_tensor(&x);
        let Metadata::SharedExponents { codes, .. } = &q.meta else { panic!() };
        assert_eq!(codes.len(), 2);
        assert!(codes[0] > codes[1]);
        // Both blocks keep their max exactly (48 = 6·2^3, 0.375 = 6·2^-4).
        assert_eq!(q.values.as_slice()[0], 48.0);
        assert_eq!(q.values.as_slice()[2], 0.375);
    }

    #[test]
    fn quantize_idempotent() {
        for elem in MxElem::ALL {
            let mx = MxFloat::new(elem, 4);
            let x = Tensor::from_vec(vec![3.7, -0.21, 0.0, 8.25, 1e-9, -6.0e4, 0.125, -0.0], [8]);
            let q1 = mx.real_to_format_tensor(&x);
            let q2 = mx.real_to_format_tensor(&q1.values);
            assert_eq!(q1.values, q2.values, "{elem:?}");
            assert_eq!(q1.meta, q2.meta, "{elem:?}");
        }
    }

    #[test]
    fn bitstring_roundtrip_all_elements() {
        for elem in MxElem::ALL {
            let mx = MxFloat::new(elem, 4);
            let x = Tensor::from_vec(vec![3.7, -0.21, 0.0, 8.25], [4]);
            let q = mx.real_to_format_tensor(&x);
            for i in 0..4 {
                let v = q.values.as_slice()[i];
                let bits = mx.real_to_format(v, &q.meta, i);
                assert_eq!(bits.len(), elem.bit_width() as usize);
                assert_eq!(mx.format_to_real(&bits, &q.meta, i), v, "{elem:?} element {i}");
            }
        }
    }

    #[test]
    fn negative_zero_keeps_sign() {
        let mx = MxFloat::new(MxElem::Fp4E2m1, 4);
        let x = Tensor::from_vec(vec![1.0, -0.0, 0.0, 2.0], [4]);
        let q = mx.real_to_format_tensor(&x);
        assert!(q.values.as_slice()[1].is_sign_negative());
        let bits = mx.real_to_format(-0.0, &q.meta, 1);
        assert!(bits.bit(0));
        assert!(mx.format_to_real(&bits, &q.meta, 1).is_sign_negative());
    }

    #[test]
    fn scale_register_flip_scales_whole_block() {
        let mx = MxFloat::new(MxElem::Fp8E4m3, 4);
        let x = Tensor::from_vec(vec![4.0, 2.0, 1.0, -1.0, 0.5, 0.25, 0.125, -0.125], [8]);
        let q = mx.real_to_format_tensor(&x);
        let bits = q.meta.word_bits(0).unwrap();
        let corrupted = q.meta.with_word_bits(0, &bits.with_flip(SCALE_BITS as usize - 1));
        let y = mx.apply_metadata(&q.values, &q.meta, &corrupted);
        let r = y.as_slice()[0] / q.values.as_slice()[0];
        assert!(r == 2.0 || r == 0.5, "ratio {r}");
        for i in 4..8 {
            assert_eq!(y.as_slice()[i], q.values.as_slice()[i], "block 1 must be intact");
        }
    }

    #[test]
    fn scale_flip_to_top_code_stays_finite_and_in_range() {
        // Flipping the scale MSB jumps the code by 128 — the stored values
        // must stay finite (f32 fabric) and inside dynamic_range().
        for elem in MxElem::ALL {
            let mx = MxFloat::new(elem, 4);
            let x = Tensor::from_vec(vec![4.0, -2.0, 1.0, -0.0], [4]);
            let q = mx.real_to_format_tensor(&x);
            let max_abs = mx.dynamic_range().max_abs;
            let bits = q.meta.word_bits(0).unwrap();
            for bit in 0..bits.len() {
                let corrupted = q.meta.with_word_bits(0, &bits.with_flip(bit));
                let y = mx.apply_metadata(&q.values, &q.meta, &corrupted);
                for (i, v) in y.as_slice().iter().enumerate() {
                    assert!(v.is_finite(), "{elem:?} flip bit {bit}, element {i}: {v}");
                    assert!((*v as f64).abs() <= max_abs, "{elem:?} flip bit {bit}: {v}");
                }
            }
        }
    }

    #[test]
    fn nan_handling_per_element_rules() {
        let x = Tensor::from_vec(vec![1.0, f32::NAN, 2.0, -4.0], [4]);
        // Finite elements squash NaN to zero (no NaN code exists).
        let fp4 = MxFloat::new(MxElem::Fp4E2m1, 4);
        assert_eq!(fp4.real_to_format_tensor(&x).values.as_slice()[1], 0.0);
        // NaN-capable elements propagate it.
        let e4m3 = MxFloat::new(MxElem::Fp8E4m3, 4);
        assert!(e4m3.real_to_format_tensor(&x).values.as_slice()[1].is_nan());
    }

    #[test]
    fn tail_block_smaller_than_block_size() {
        let mx = MxFloat::new(MxElem::Fp8E4m3, 4);
        let x = Tensor::from_vec(vec![1.0; 6], [6]);
        let q = mx.real_to_format_tensor(&x);
        assert_eq!(q.meta.word_count(), 2);
        assert_eq!(q.values.as_slice()[5], 1.0);
    }

    #[test]
    fn chunk_parallel_quantise_is_thread_count_invariant() {
        // Block sizes that do not divide QUANT_CHUNK (and a >4096-element
        // tensor) must still give byte-identical output for every thread
        // count — whole blocks never straddle task boundaries.
        let n = 10_007;
        let x = Tensor::from_vec((0..n).map(|i| ((i as f32) * 0.7331).sin() * 50.0).collect(), [n]);
        for block in [1usize, 3, 32, 48, 100] {
            let mx = MxFloat::new(MxElem::Fp8E5m2, block);
            let serial = {
                let _g = with_threads(1);
                mx.real_to_format_tensor(&x)
            };
            for threads in [2, 8] {
                let _g = with_threads(threads);
                let par = mx.real_to_format_tensor(&x);
                assert_eq!(par.meta, serial.meta, "block {block}, {threads} threads");
                for (i, (a, b)) in
                    par.values.as_slice().iter().zip(serial.values.as_slice()).enumerate()
                {
                    assert_eq!(a.to_bits(), b.to_bits(), "block {block}, element {i}");
                }
            }
        }
    }

    #[test]
    fn dynamic_range_covers_every_scale_code() {
        let mx = MxFloat::new(MxElem::Fp4E2m1, 32);
        let dr = mx.dynamic_range();
        // elem max 6 at scale 2^128; elem min denormal 0.5 at scale 2^-127.
        assert_eq!(dr.max_abs, 6.0 * (2f64).powi(128));
        assert_eq!(dr.min_abs, 0.5 * (2f64).powi(-127));
    }
}
