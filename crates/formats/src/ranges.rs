//! Dynamic-range table generation — reproduces Table I of the paper.

use crate::afp::AdaptivFloat;
use crate::bfp::BlockFloatingPoint;
use crate::format::{DynamicRange, NumberFormat};
use crate::fp::FloatingPoint;
use crate::fxp::FixedPoint;
use crate::int::IntQuant;

/// One row of Table I.
#[derive(Debug, Clone, PartialEq)]
pub struct RangeRow {
    /// Human-readable data-type label, as printed in the paper.
    pub label: String,
    /// The computed dynamic range.
    pub range: DynamicRange,
}

impl RangeRow {
    fn new(label: &str, format: &dyn NumberFormat) -> Self {
        RangeRow { label: label.to_string(), range: format.dynamic_range() }
    }
}

/// Builds the rows of the paper's Table I ("Dynamic Range of Data Types"),
/// in the paper's order.
pub fn table1_rows() -> Vec<RangeRow> {
    vec![
        RangeRow::new("FP32 w/ DN", &FloatingPoint::fp32()),
        RangeRow::new("FP32 w/o DN", &FloatingPoint::fp32().with_denormals(false)),
        RangeRow::new("FxP (1,15,16)", &FixedPoint::new(15, 16)),
        RangeRow::new("FP16 w/ DN", &FloatingPoint::fp16()),
        RangeRow::new("FP16 w/o DN", &FloatingPoint::fp16().with_denormals(false)),
        RangeRow::new("BFloat16 w/ DN", &FloatingPoint::bfloat16()),
        RangeRow::new("BFloat16 w/o DN", &FloatingPoint::bfloat16().with_denormals(false)),
        RangeRow::new("INT16 (symmetric)", &IntQuant::new(16)),
        RangeRow::new("INT8 (symmetric)", &IntQuant::new(8)),
        RangeRow::new("FP8 (e4m3) w/ DN", &FloatingPoint::fp8_e4m3()),
        RangeRow::new("FP8 (e4m3) w/o DN", &FloatingPoint::fp8_e4m3().with_denormals(false)),
        RangeRow::new("AFP8 (e4m3) w/o DN", &AdaptivFloat::new(4, 3)),
    ]
}

/// Renders Table I as an aligned text table.
pub fn table1_text() -> String {
    let mut out = String::from(
        "Data Type            | Abs Max Value | Abs Min Value | Range in dB\n\
         ---------------------+---------------+---------------+------------\n",
    );
    for row in table1_rows() {
        out.push_str(&format!(
            "{:<21}| {:>13.3e} | {:>13.3e} | {:>10.2}\n",
            row.label,
            row.range.max_abs,
            row.range.min_abs,
            row.range.db()
        ));
    }
    out
}

/// Dynamic range of a BFP configuration (not in Table I, but useful for
/// the paper's §IV-C formats).
pub fn bfp_range(exp_bits: u32, man_bits: u32, block: usize) -> DynamicRange {
    BlockFloatingPoint::new(exp_bits, man_bits, block).dynamic_range()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Asserts our computed Table I matches the paper's printed values.
    /// (Two paper cells are typos — see EXPERIMENTS.md — so we assert the
    /// self-consistent values: INT16 dB from 20·log10(32767/1), and the
    /// FxP max of 2^15.)
    #[test]
    fn table1_matches_paper() {
        let rows = table1_rows();
        let by_label = |l: &str| {
            rows.iter().find(|r| r.label == l).unwrap_or_else(|| panic!("missing row {l}")).range
        };
        let close = |got: f64, want: f64, rel: f64| (got - want).abs() <= want.abs() * rel;

        let fp32dn = by_label("FP32 w/ DN");
        assert!(close(fp32dn.max_abs, 3.40e38, 0.01));
        assert!(close(fp32dn.min_abs, 1.40e-45, 0.01));
        assert!(close(fp32dn.db(), 1667.71, 0.001));

        let fp32 = by_label("FP32 w/o DN");
        assert!(close(fp32.min_abs, 1.18e-38, 0.01));
        assert!(close(fp32.db(), 1529.23, 0.001));

        let fxp = by_label("FxP (1,15,16)");
        assert!(close(fxp.max_abs, 32768.0, 1e-9));
        assert!(close(fxp.min_abs, 1.53e-5, 0.01));
        assert!(close(fxp.db(), 186.64, 0.001));

        let fp16 = by_label("FP16 w/ DN");
        assert!(close(fp16.max_abs, 65504.0, 1e-9));
        assert!(close(fp16.min_abs, 5.90e-8, 0.02));
        assert!(close(fp16.db(), 240.82, 0.001));

        let fp16n = by_label("FP16 w/o DN");
        assert!(close(fp16n.min_abs, 6.10e-5, 0.01));
        assert!(close(fp16n.db(), 180.61, 0.001));

        let bf = by_label("BFloat16 w/ DN");
        assert!(close(bf.max_abs, 3.39e38, 0.01));
        assert!(close(bf.min_abs, 9.18e-41, 0.01));
        assert!(close(bf.db(), 1571.54, 0.001));

        let bfn = by_label("BFloat16 w/o DN");
        assert!(close(bfn.min_abs, 1.18e-38, 0.01));
        assert!(close(bfn.db(), 1529.20, 0.001));

        let int16 = by_label("INT16 (symmetric)");
        assert!(close(int16.max_abs, 32767.0, 1e-9));
        // Paper prints 98.31 dB; 20·log10(32767) = 90.31 — see EXPERIMENTS.md.
        assert!(close(int16.db(), 90.31, 0.001));

        let int8 = by_label("INT8 (symmetric)");
        assert!(close(int8.max_abs, 127.0, 1e-9));
        assert!(close(int8.db(), 42.08, 0.001));

        let fp8 = by_label("FP8 (e4m3) w/ DN");
        assert!(close(fp8.max_abs, 240.0, 1e-9));
        assert!(close(fp8.min_abs, 1.95e-3, 0.01));
        assert!(close(fp8.db(), 101.79, 0.001));

        let fp8n = by_label("FP8 (e4m3) w/o DN");
        assert!(close(fp8n.min_abs, 1.56e-2, 0.01));
        assert!(close(fp8n.db(), 83.73, 0.001));

        let afp8 = by_label("AFP8 (e4m3) w/o DN");
        assert!(close(afp8.db(), 83.73, 0.001));
    }

    #[test]
    fn table1_text_has_all_rows() {
        let text = table1_text();
        assert_eq!(text.lines().count(), 2 + 12);
        assert!(text.contains("AFP8"));
    }
}
