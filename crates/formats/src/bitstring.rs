//! Logical bit vectors — the wire format of the paper's Methods 3 and 4.
//!
//! A [`Bitstring`] is the bit-level image of one value (or one metadata
//! word) under a number format, MSB first: `[sign | exponent/integer |
//! mantissa/fraction]`. Error injection flips bits of this vector and
//! decodes the result back to a real value.

use std::fmt;

/// A fixed-width bit vector, most-significant bit first.
///
/// # Examples
///
/// ```
/// use formats::Bitstring;
/// let mut b = Bitstring::from_u64(0b101, 3);
/// assert_eq!(b.to_string(), "0b101");
/// b.flip(0); // flip the MSB
/// assert_eq!(b.to_u64(), 0b001);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Bitstring {
    bits: Vec<bool>,
}

impl Bitstring {
    /// Creates a bitstring of `width` zero bits.
    pub fn zeros(width: usize) -> Self {
        Bitstring { bits: vec![false; width] }
    }

    /// Creates a bitstring from the low `width` bits of `value`, MSB first.
    ///
    /// # Panics
    ///
    /// Panics if `width > 64`.
    pub fn from_u64(value: u64, width: usize) -> Self {
        assert!(width <= 64, "bitstring width {} exceeds 64", width);
        let bits = (0..width).map(|i| (value >> (width - 1 - i)) & 1 == 1).collect();
        Bitstring { bits }
    }

    /// Creates a bitstring from explicit bits, MSB first.
    pub fn from_bits(bits: Vec<bool>) -> Self {
        Bitstring { bits }
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// True if the bitstring has zero width.
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// The bit at position `i` (0 = MSB).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn bit(&self, i: usize) -> bool {
        self.bits[i]
    }

    /// Sets the bit at position `i` (0 = MSB).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn set(&mut self, i: usize, v: bool) {
        self.bits[i] = v;
    }

    /// Flips the bit at position `i` (0 = MSB).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn flip(&mut self, i: usize) {
        self.bits[i] = !self.bits[i];
    }

    /// Returns a copy with bit `i` flipped.
    pub fn with_flip(&self, i: usize) -> Self {
        let mut b = self.clone();
        b.flip(i);
        b
    }

    /// Interprets the bits as an unsigned integer.
    ///
    /// # Panics
    ///
    /// Panics if the width exceeds 64.
    pub fn to_u64(&self) -> u64 {
        assert!(self.bits.len() <= 64);
        self.bits.iter().fold(0u64, |acc, &b| (acc << 1) | b as u64)
    }

    /// Interprets the bits as a two's-complement signed integer.
    pub fn to_i64(&self) -> i64 {
        let w = self.bits.len();
        let raw = self.to_u64();
        if w == 0 || w == 64 {
            return raw as i64;
        }
        if self.bits[0] {
            (raw as i64) - (1i64 << w)
        } else {
            raw as i64
        }
    }

    /// The bits as a boolean slice, MSB first.
    pub fn as_bits(&self) -> &[bool] {
        &self.bits
    }

    /// A slice of this bitstring as a new bitstring.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn field(&self, start: usize, len: usize) -> Bitstring {
        Bitstring { bits: self.bits[start..start + len].to_vec() }
    }
}

impl fmt::Display for Bitstring {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0b")?;
        for &b in &self.bits {
            write!(f, "{}", b as u8)?;
        }
        Ok(())
    }
}

impl fmt::Debug for Bitstring {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bitstring({self})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_u64_msb_first() {
        let b = Bitstring::from_u64(0b1010, 4);
        assert!(b.bit(0));
        assert!(!b.bit(1));
        assert!(b.bit(2));
        assert!(!b.bit(3));
    }

    #[test]
    fn roundtrip_u64() {
        for v in [0u64, 1, 5, 127, 128, 255] {
            assert_eq!(Bitstring::from_u64(v, 8).to_u64(), v);
        }
    }

    #[test]
    fn twos_complement() {
        assert_eq!(Bitstring::from_u64(0b1111, 4).to_i64(), -1);
        assert_eq!(Bitstring::from_u64(0b1000, 4).to_i64(), -8);
        assert_eq!(Bitstring::from_u64(0b0111, 4).to_i64(), 7);
        assert_eq!(Bitstring::from_u64(0, 4).to_i64(), 0);
    }

    #[test]
    fn flip_twice_restores() {
        let b = Bitstring::from_u64(0b1100, 4);
        for i in 0..4 {
            assert_eq!(b.with_flip(i).with_flip(i), b);
        }
    }

    #[test]
    fn flip_changes_exactly_one_bit() {
        let b = Bitstring::from_u64(0b0110, 4);
        let f = b.with_flip(2);
        let diff: usize = (0..4).filter(|&i| b.bit(i) != f.bit(i)).count();
        assert_eq!(diff, 1);
    }

    #[test]
    fn field_extraction() {
        // 0b1_0110_101: sign=1, "exp"=0110, "mantissa"=101
        let b = Bitstring::from_u64(0b10110101, 8);
        assert_eq!(b.field(1, 4).to_u64(), 0b0110);
        assert_eq!(b.field(5, 3).to_u64(), 0b101);
    }

    #[test]
    fn display_format() {
        assert_eq!(Bitstring::from_u64(0b101, 3).to_string(), "0b101");
        assert_eq!(Bitstring::zeros(2).to_string(), "0b00");
    }

    #[test]
    fn f32_bits_roundtrip_through_bitstring() {
        let x = -1.5f32;
        let b = Bitstring::from_u64(x.to_bits() as u64, 32);
        assert_eq!(f32::from_bits(b.to_u64() as u32), x);
    }
}
