//! Chunk-parallel tensor quantisation.
//!
//! The paper's Method 1 (`real_to_format_tensor`) is the hottest format
//! operation — every hooked layer output runs through it once per trial.
//! Elementwise formats (FP, FxP, posit) and the code-mapping pass of INT
//! are embarrassingly parallel, so they dispatch fixed-size chunks to the
//! intra-op worker pool ([`tensor::parallel`]).
//!
//! Chunk boundaries are a pure function of the tensor length (never the
//! thread count), every element is written by exactly one task, and
//! reductions fold per-chunk partials in chunk order — so quantised
//! outputs are **byte-identical** for every `--jobs` / thread-budget
//! setting. `tests/kernels.rs` pins this across 1/2/8 threads.

use std::sync::OnceLock;
use std::time::Instant;

use tensor::{parallel, Tensor};

/// Elements per parallel work unit. Fixed — never derived from the thread
/// count — which is what makes chunked output thread-count invariant.
pub(crate) const QUANT_CHUNK: usize = 4096;

/// Below this many elements the chunk loop stays on the calling thread:
/// `tensor::parallel` spawns scoped OS threads per dispatch (~1 ms on
/// containerised hosts), which swamps the quantise work for the layer
/// outputs of the evaluation models. The guard only affects latency —
/// chunk boundaries, and therefore results, are identical either way.
pub(crate) const PAR_MIN_ELEMS: usize = 1 << 20;

struct QuantMetrics {
    ns: &'static trace::Metric,
    elems: &'static trace::Metric,
}

fn quant_metrics() -> &'static QuantMetrics {
    static METRICS: OnceLock<QuantMetrics> = OnceLock::new();
    METRICS.get_or_init(|| QuantMetrics {
        ns: trace::histogram(trace::names::FORMATS_QUANTIZE_CHUNKED_NS),
        elems: trace::counter(trace::names::FORMATS_QUANTIZE_CHUNKED_ELEMS),
    })
}

/// Applies `f` elementwise over fixed [`QUANT_CHUNK`]-sized chunks on the
/// worker pool; the drop-in parallel replacement for `t.map(f)` in
/// `real_to_format_tensor` implementations.
pub(crate) fn map_chunked(t: &Tensor, f: impl Fn(f32) -> f32 + Sync) -> Tensor {
    let timing = trace::recording();
    let t0 = timing.then(Instant::now);
    let src = t.as_slice();
    let mut out = vec![0.0f32; src.len()];
    let _serial = (src.len() < PAR_MIN_ELEMS).then(|| parallel::with_threads(1));
    parallel::par_chunks_mut(&mut out, QUANT_CHUNK, |i, chunk| {
        let base = i * QUANT_CHUNK;
        for (j, v) in chunk.iter_mut().enumerate() {
            *v = f(src[base + j]);
        }
    });
    if let Some(t0) = t0 {
        let metrics = quant_metrics();
        metrics.ns.record(t0.elapsed().as_nanos() as u64);
        metrics.elems.add(src.len() as u64);
    }
    Tensor::from_vec(out, t.shape().clone())
}

/// Chunk-parallel `max |x|` reduction, bit-identical to
/// `Tensor::max_abs`: each chunk folds `m.max(x.abs())` from 0.0 exactly
/// like the serial fold, and the per-chunk partials are folded in chunk
/// order. `f32::max` is exact, so regrouping cannot change the result
/// (NaN elements are ignored by both paths, as `m.max(NaN) == m`).
pub(crate) fn max_abs_chunked(t: &Tensor) -> f32 {
    let src = t.as_slice();
    let tasks = src.len().div_ceil(QUANT_CHUNK).max(1);
    let mut partials = vec![0.0f32; tasks];
    let _serial = (src.len() < PAR_MIN_ELEMS).then(|| parallel::with_threads(1));
    parallel::par_chunks_mut(&mut partials, 1, |i, slot| {
        let start = i * QUANT_CHUNK;
        let end = (start + QUANT_CHUNK).min(src.len());
        slot[0] = src[start..end].iter().fold(0.0f32, |m, &x| m.max(x.abs()));
    });
    partials.iter().fold(0.0f32, |m, &p| m.max(p))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tensor::parallel::with_threads;

    fn ramp(n: usize) -> Tensor {
        Tensor::from_vec((0..n).map(|i| (i as f32) * 0.37 - 900.0).collect(), [n])
    }

    #[test]
    fn map_chunked_matches_map_across_thread_counts() {
        // Above PAR_MIN_ELEMS so the parallel dispatch path really runs.
        let t = ramp(PAR_MIN_ELEMS + 4097);
        let f = |x: f32| (x * 0.5).floor();
        let serial = t.map(f);
        for threads in [1, 2, 8] {
            let _g = with_threads(threads);
            let par = map_chunked(&t, f);
            assert_eq!(par.dims(), serial.dims());
            for (a, b) in par.as_slice().iter().zip(serial.as_slice()) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn max_abs_chunked_matches_serial() {
        for n in [0, 1, 5, 4096, 4097, 20_000] {
            let t = ramp(n);
            let _g = with_threads(4);
            assert_eq!(max_abs_chunked(&t).to_bits(), t.max_abs().to_bits(), "n={n}");
        }
        let t = Tensor::from_vec(vec![1.0, f32::NAN, -3.0], [3]);
        assert_eq!(max_abs_chunked(&t), 3.0);
    }
}
