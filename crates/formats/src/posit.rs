//! Posit arithmetic (Gustafson's Type-III unums) — the "future number
//! format" the paper's extensibility claim (Table II) invites: a complete
//! sixth format family implemented purely against the four-method
//! [`NumberFormat`](crate::NumberFormat) API, with no changes to the rest
//! of the stack.
//!
//! A posit`⟨n, es⟩` packs sign, a unary *regime*, `es` exponent bits, and
//! a fraction into `n` bits; value = `useed^k · 2^e · (1+f)` with
//! `useed = 2^(2^es)`. There are no denormals and no ±Inf — one NaR code.
//! Tapered precision gives posits more fraction bits near 1.0 and more
//! dynamic range at the extremes, a natural fit for DNN values.
//!
//! Encoding uses an exact value table built from the decoder (feasible
//! because `n ≤ 16`), so rounding is provably nearest-with-ties-to-even-code
//! and saturating at ±maxpos, per the posit standard.

use crate::bitstring::Bitstring;
use crate::format::{DynamicRange, NumberFormat, Quantized};
use crate::metadata::Metadata;
use std::sync::Arc;
use tensor::Tensor;

/// A posit`⟨n, es⟩` number format.
///
/// # Examples
///
/// ```
/// use formats::{Posit, NumberFormat};
/// use tensor::Tensor;
/// let p8 = Posit::new(8, 0);
/// let x = Tensor::from_vec(vec![1.0, 0.3, -100.0], [3]);
/// let q = p8.real_to_format_tensor(&x);
/// assert_eq!(q.values.as_slice()[0], 1.0); // 1.0 is exactly representable
/// assert_eq!(q.values.as_slice()[2], -64.0); // saturates at -maxpos
/// ```
#[derive(Clone)]
pub struct Posit {
    n: u32,
    es: u32,
    /// All finite posit values, sorted ascending, paired with their codes.
    table: Arc<Vec<(f64, u64)>>,
}

impl std::fmt::Debug for Posit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Posit(n={}, es={})", self.n, self.es)
    }
}

impl Posit {
    /// Creates a posit`⟨n, es⟩` format.
    ///
    /// # Panics
    ///
    /// Panics if `n ∉ 3..=16` or `es > 3`.
    pub fn new(n: u32, es: u32) -> Self {
        assert!((3..=16).contains(&n), "posit width {n} out of range 3..=16");
        assert!(es <= 3, "posit es {es} out of range 0..=3");
        let mut table = Vec::with_capacity((1usize << n) - 1);
        for code in 0..(1u64 << n) {
            if code == 1u64 << (n - 1) {
                continue; // NaR
            }
            table.push((decode(code, n, es), code));
        }
        table.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite posit values"));
        Posit { n, es, table: Arc::new(table) }
    }

    /// Standard-draft posit8 (es = 0).
    pub fn posit8() -> Self {
        Self::new(8, 0)
    }

    /// Standard-draft posit16 (es = 1).
    pub fn posit16() -> Self {
        Self::new(16, 1)
    }

    /// Total width in bits.
    pub fn n(&self) -> u32 {
        self.n
    }

    /// Exponent field width.
    pub fn es(&self) -> u32 {
        self.es
    }

    /// Largest representable magnitude: `useed^(n−2)`.
    pub fn maxpos(&self) -> f64 {
        self.table.last().expect("non-empty table").0
    }

    /// Smallest representable positive magnitude: `useed^−(n−2)`.
    pub fn minpos(&self) -> f64 {
        let i = self.table.partition_point(|&(v, _)| v <= 0.0);
        self.table[i].0
    }

    /// Rounds to the nearest representable posit value: nearest, ties to
    /// the even code, saturating at ±maxpos (no overflow to NaR).
    pub fn quantize_scalar(&self, x: f32) -> f32 {
        if x.is_nan() {
            return f32::NAN;
        }
        self.nearest(x as f64).0 as f32
    }

    fn nearest(&self, x: f64) -> (f64, u64) {
        let t = &self.table;
        if x <= t[0].0 {
            return t[0];
        }
        if x >= t[t.len() - 1].0 {
            return t[t.len() - 1];
        }
        let i = t.partition_point(|&(v, _)| v < x);
        // t[i-1].0 < x <= t[i].0 after the guards above.
        let (lo, hi) = (t[i - 1], t[i]);
        if hi.0 == x {
            return hi;
        }
        let (dl, dh) = (x - lo.0, hi.0 - x);
        if dl < dh {
            lo
        } else if dh < dl {
            hi
        } else if lo.1 & 1 == 0 {
            lo
        } else {
            hi
        }
    }
}

/// Decodes an `n`-bit posit code (NaR excluded by the caller).
fn decode(code: u64, n: u32, es: u32) -> f64 {
    if code == 0 {
        return 0.0;
    }
    let sign = (code >> (n - 1)) & 1 == 1;
    // Posits negate via two's complement of the whole word.
    let mag_code = if sign { (code.wrapping_neg()) & ((1u64 << n) - 1) } else { code };
    let body_bits = n - 1;
    let body = mag_code & ((1u64 << body_bits) - 1);
    // Regime: run of identical bits from the top of the body.
    let top = (body >> (body_bits - 1)) & 1;
    let mut run = 0u32;
    while run < body_bits && (body >> (body_bits - 1 - run)) & 1 == top {
        run += 1;
    }
    let k: i64 = if top == 1 { run as i64 - 1 } else { -(run as i64) };
    // Bits consumed: run + 1 terminator (if any bits remain).
    let consumed = (run + 1).min(body_bits);
    let rest_bits = body_bits - consumed;
    let rest = body & ((1u64 << rest_bits) - 1);
    // Exponent: next min(es, rest_bits) bits; truncated bits read as 0.
    let e_bits = es.min(rest_bits);
    let e = if e_bits > 0 { (rest >> (rest_bits - e_bits)) << (es - e_bits) } else { 0 };
    let f_bits = rest_bits - e_bits;
    let f = if f_bits > 0 {
        (rest & ((1u64 << f_bits) - 1)) as f64 / (1u64 << f_bits) as f64
    } else {
        0.0
    };
    let scale = k * (1i64 << es) + e as i64;
    let v = (2.0f64).powi(scale as i32) * (1.0 + f);
    if sign {
        -v
    } else {
        v
    }
}

impl NumberFormat for Posit {
    fn name(&self) -> String {
        format!("posit{}_es{}", self.n, self.es)
    }

    fn canonical_spec(&self) -> String {
        format!("posit:{}:{}", self.n, self.es)
    }

    fn bit_width(&self) -> u32 {
        self.n
    }

    fn real_to_format_tensor(&self, t: &Tensor) -> Quantized {
        // Posit quantisation is a per-element search over the code table —
        // the slowest Method 1 in the zoo and the biggest chunking win.
        let values = crate::chunk::map_chunked(t, |x| self.quantize_scalar(x));
        Quantized { values, meta: Metadata::None }
    }

    fn elementwise_quantizer(&self) -> Option<Box<dyn Fn(f32) -> f32 + Send + Sync + '_>> {
        Some(Box::new(|x| self.quantize_scalar(x)))
    }

    fn real_to_format(&self, value: f32, _meta: &Metadata, _index: usize) -> Bitstring {
        if value.is_nan() {
            return Bitstring::from_u64(1u64 << (self.n - 1), self.n as usize);
        }
        let (_, code) = self.nearest(value as f64);
        Bitstring::from_u64(code, self.n as usize)
    }

    fn format_to_real(&self, bits: &Bitstring, _meta: &Metadata, _index: usize) -> f32 {
        assert_eq!(bits.len(), self.n as usize, "posit width mismatch");
        let code = bits.to_u64();
        if code == 1u64 << (self.n - 1) {
            return f32::NAN; // NaR
        }
        decode(code, self.n, self.es) as f32
    }

    fn dynamic_range(&self) -> DynamicRange {
        DynamicRange { max_abs: self.maxpos(), min_abs: self.minpos() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_posit8_es0_values() {
        let p = Posit::posit8();
        // maxpos = useed^(n-2) = 2^6 = 64; minpos = 2^-6.
        assert_eq!(p.maxpos(), 64.0);
        assert_eq!(p.minpos(), 1.0 / 64.0);
        // 1.0 encodes as 0b01000000.
        let bits = p.real_to_format(1.0, &Metadata::None, 0);
        assert_eq!(bits.to_u64(), 0b0100_0000);
        assert_eq!(p.format_to_real(&bits, &Metadata::None, 0), 1.0);
    }

    #[test]
    fn known_posit16_es1_range() {
        let p = Posit::posit16();
        // useed = 4; maxpos = 4^14 = 2^28.
        assert_eq!(p.maxpos(), (2.0f64).powi(28));
        assert_eq!(p.minpos(), (2.0f64).powi(-28));
    }

    #[test]
    fn negation_symmetry() {
        let p = Posit::new(8, 1);
        for &x in &[0.5f32, 1.0, 3.7, 100.0, 0.01] {
            assert_eq!(p.quantize_scalar(-x), -p.quantize_scalar(x), "at {x}");
        }
    }

    #[test]
    fn saturates_at_maxpos_no_overflow_to_nar() {
        let p = Posit::posit8();
        assert_eq!(p.quantize_scalar(1e30), 64.0);
        assert_eq!(p.quantize_scalar(-1e30), -64.0);
        // Tiny values round to 0 or minpos, never NaR.
        let v = p.quantize_scalar(1e-30);
        assert!(v == 0.0 || v as f64 == p.minpos());
    }

    #[test]
    fn nar_roundtrip() {
        let p = Posit::posit8();
        let bits = p.real_to_format(f32::NAN, &Metadata::None, 0);
        assert_eq!(bits.to_u64(), 0b1000_0000);
        assert!(p.format_to_real(&bits, &Metadata::None, 0).is_nan());
    }

    #[test]
    fn quantize_idempotent_all_codes() {
        // Every representable value must be a fixed point of quantisation.
        let p = Posit::new(8, 1);
        for &(v, code) in p.table.iter() {
            let q = p.quantize_scalar(v as f32);
            // f32 can represent all posit8 values exactly.
            assert_eq!(q as f64, v, "code {code:#010b}");
        }
    }

    #[test]
    fn bitstring_roundtrip_all_codes() {
        let p = Posit::new(8, 2);
        for code in 0u64..256 {
            if code == 128 {
                continue;
            }
            let bits = Bitstring::from_u64(code, 8);
            let v = p.format_to_real(&bits, &Metadata::None, 0);
            let re = p.real_to_format(v, &Metadata::None, 0);
            assert_eq!(re.to_u64(), code, "code {code:#010b} → {v} → {:#010b}", re.to_u64());
        }
    }

    #[test]
    fn encode_decode_roundtrip_all_codes() {
        // Law `round-trip`: decode→encode→decode is a fixpoint for every
        // code, including NaR, across widths and es (extends the
        // fp.rs::encode_decode_roundtrip_all_codes pattern to posits; the
        // older bitstring_roundtrip_all_codes covers only posit(8,2)).
        for (n, es) in [(6u32, 0u32), (8, 0), (8, 1), (10, 2)] {
            let p = Posit::new(n, es);
            for code in 0..(1u64 << n) {
                let b1 = Bitstring::from_u64(code, n as usize);
                let v1 = p.format_to_real(&b1, &Metadata::None, 0);
                let b2 = p.real_to_format(v1, &Metadata::None, 0);
                let v2 = p.format_to_real(&b2, &Metadata::None, 0);
                assert!(
                    v1.to_bits() == v2.to_bits() || (v1.is_nan() && v2.is_nan()),
                    "posit({n},{es}) code {code:#x}: {v1} → {v2}"
                );
            }
        }
    }

    #[test]
    fn tapered_precision_beats_fp8_near_one() {
        // Posit8(es0) has 5 fraction bits near 1.0; FP8 e4m3 has 3.
        use crate::fp::FloatingPoint;
        let p = Posit::posit8();
        let f = FloatingPoint::fp8_e4m3();
        let x = 1.03f32;
        let pe = (p.quantize_scalar(x) - x).abs();
        let fe = (f.quantize_scalar(x) - x).abs();
        assert!(pe < fe, "posit err {pe} vs fp8 err {fe}");
    }

    #[test]
    fn monotone_over_table() {
        let p = Posit::new(10, 1);
        for w in p.table.windows(2) {
            assert!(w[0].0 < w[1].0, "table not strictly increasing");
        }
    }

    #[test]
    fn value_bit_flip_cannot_produce_infinity() {
        // Unlike FP, posits have no Inf — worst case is NaR or ±maxpos.
        let p = Posit::posit8();
        let x = Tensor::from_vec(vec![1.5, -0.25, 40.0], [3]);
        let q = p.real_to_format_tensor(&x);
        for i in 0..3 {
            for bit in 0..8 {
                let v = crate::format::flip_value_bit(&p, &q, i, bit);
                assert!(v.is_nan() || v.abs() <= 64.0, "flip({i},{bit}) gave {v}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn width_validation() {
        Posit::new(2, 0);
    }
}
