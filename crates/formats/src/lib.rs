#![warn(missing_docs)]

//! # formats — GoldenEye's configurable number systems
//!
//! The paper's primary contribution: a unified, extensible API for emulating
//! numerical data formats on top of an FP32 compute fabric, with the
//! hardware implementation's *metadata* (scale factors, shared exponents,
//! exponent biases) elevated into software so that resiliency analysis can
//! target it.
//!
//! Every format implements [`NumberFormat`] — the Rust rendering of the
//! paper's four pure-virtual methods (§III-B):
//!
//! | Paper method | Here |
//! |---|---|
//! | `real_to_format_tensor(tensor)` | [`NumberFormat::real_to_format_tensor`] |
//! | `format_to_real_tensor(tensor)` | [`NumberFormat::format_to_real_tensor`] |
//! | `real_to_format(value)` | [`NumberFormat::real_to_format`] |
//! | `format_to_real(bitstring)` | [`NumberFormat::format_to_real`] |
//!
//! The paper's five families are provided ([`FloatingPoint`],
//! [`FixedPoint`], [`IntQuant`], [`BlockFloatingPoint`], [`AdaptivFloat`]),
//! plus [`Posit`] and the microscaling-era additions: OCP MX ([`MxFloat`]),
//! saturating P3109-style FP8 profiles ([`P3109`]), and golden-ratio
//! static splits ([`GoldenFloat`]). New ones plug in by implementing the
//! trait.
//!
//! # Examples
//!
//! ```
//! use formats::{FormatSpec, NumberFormat};
//! use tensor::Tensor;
//!
//! let bfp: FormatSpec = "bfp:e5m5:b16".parse()?;
//! let format = bfp.build();
//! let x = Tensor::from_vec(vec![1.0, 0.5, -0.25, 100.0], [4]);
//! let q = format.real_to_format_tensor(&x);
//! assert_eq!(q.meta.word_count(), 1); // one shared exponent
//! # Ok::<(), formats::ParseFormatError>(())
//! ```

mod afp;
mod bfp;
mod bitstring;
mod chunk;
pub mod footprint;
mod format;
mod fp;
mod fused;
mod fxp;
mod gf;
pub mod hash;
mod int;
pub mod lut;
mod metadata;
mod minifloat;
mod mx;
mod p3109;
mod posit;
pub mod ranges;
mod spec;

pub use afp::AdaptivFloat;
pub use bfp::BlockFloatingPoint;
pub use bitstring::Bitstring;
pub use format::{flip_value_bit, DynamicRange, NumberFormat, Quantized};
pub use fp::{f32_saturate, mul_pow2, FloatingPoint};
pub use fused::fused_roundtrip;
pub use fxp::FixedPoint;
pub use gf::GoldenFloat;
pub use int::IntQuant;
pub use metadata::Metadata;
pub use mx::{MxElem, MxFloat};
pub use p3109::P3109;
pub use posit::Posit;
pub use spec::{FormatSpec, ParseFormatError};
