//! Optimizers: SGD with momentum and Adam.
//!
//! Optimizers consume the `(Param, Var)` bindings a [`Ctx`] recorded during
//! the forward pass plus the [`GradStore`] from `backward()`.

use crate::module::{Ctx, Param};
use std::collections::HashMap;
use tensor::{GradStore, Tensor};

/// Stochastic gradient descent with momentum and (decoupled) weight decay.
#[derive(Debug)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    weight_decay: f32,
    velocity: HashMap<usize, Tensor>,
}

impl Sgd {
    /// Creates plain SGD with learning rate `lr`.
    pub fn new(lr: f32) -> Self {
        Sgd { lr, momentum: 0.0, weight_decay: 0.0, velocity: HashMap::new() }
    }

    /// Adds classical momentum.
    pub fn with_momentum(mut self, momentum: f32) -> Self {
        self.momentum = momentum;
        self
    }

    /// Adds weight decay.
    pub fn with_weight_decay(mut self, wd: f32) -> Self {
        self.weight_decay = wd;
        self
    }

    /// Sets the learning rate (for schedules).
    pub fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    /// Applies one update step.
    pub fn step(&mut self, ctx: &Ctx, grads: &GradStore) {
        for (param, var) in ctx.bindings() {
            let Some(g) = grads.get(var) else { continue };
            let mut g = g.clone();
            if self.weight_decay != 0.0 {
                let p = param.get();
                g = tensor::ops::add(&g, &tensor::ops::scale(&p, self.weight_decay));
            }
            let update = if self.momentum != 0.0 {
                let vel = self
                    .velocity
                    .entry(param.key())
                    .or_insert_with(|| Tensor::zeros(g.shape().clone()));
                *vel = tensor::ops::add(&tensor::ops::scale(vel, self.momentum), &g);
                vel.clone()
            } else {
                g
            };
            apply_update(param, &update, self.lr);
        }
    }
}

/// Adam optimizer (Kingma & Ba) with bias correction.
#[derive(Debug)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    step_count: u64,
    m: HashMap<usize, Tensor>,
    v: HashMap<usize, Tensor>,
}

impl Adam {
    /// Creates Adam with the usual defaults (β₁=0.9, β₂=0.999, ε=1e-8).
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            step_count: 0,
            m: HashMap::new(),
            v: HashMap::new(),
        }
    }

    /// Sets the learning rate (for schedules).
    pub fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    /// Applies one update step.
    pub fn step(&mut self, ctx: &Ctx, grads: &GradStore) {
        self.step_count += 1;
        let t = self.step_count as f32;
        let bc1 = 1.0 - self.beta1.powf(t);
        let bc2 = 1.0 - self.beta2.powf(t);
        for (param, var) in ctx.bindings() {
            let Some(g) = grads.get(var) else { continue };
            let key = param.key();
            let m = self.m.entry(key).or_insert_with(|| Tensor::zeros(g.shape().clone()));
            let v = self.v.entry(key).or_insert_with(|| Tensor::zeros(g.shape().clone()));
            for i in 0..g.numel() {
                let gi = g.as_slice()[i];
                m.as_mut_slice()[i] = self.beta1 * m.as_slice()[i] + (1.0 - self.beta1) * gi;
                v.as_mut_slice()[i] = self.beta2 * v.as_slice()[i] + (1.0 - self.beta2) * gi * gi;
            }
            let (lr, eps) = (self.lr, self.eps);
            let (mc, vc) = (m.clone(), v.clone());
            param.update(|p| {
                for i in 0..p.numel() {
                    let mhat = mc.as_slice()[i] / bc1;
                    let vhat = vc.as_slice()[i] / bc2;
                    p.as_mut_slice()[i] -= lr * mhat / (vhat.sqrt() + eps);
                }
            });
        }
    }
}

fn apply_update(param: &Param, update: &Tensor, lr: f32) {
    param.update(|p| {
        for (pv, &u) in p.as_mut_slice().iter_mut().zip(update.as_slice()) {
            *pv -= lr * u;
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::Linear;
    use crate::module::Module;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn quadratic_loss_step(opt: &mut dyn FnMut(&Ctx, &GradStore), p: &Param) -> f32 {
        // loss = sum(p²): minimum at p = 0.
        let mut ctx = Ctx::training();
        let v = ctx.var_of(p);
        let loss = v.mul(&v).sum_all();
        let grads = loss.backward();
        let l = loss.value().item();
        opt(&ctx, &grads);
        l
    }

    #[test]
    fn sgd_descends_quadratic() {
        let p = Param::new("p", Tensor::from_vec(vec![3.0, -2.0], [2]));
        let mut sgd = Sgd::new(0.1);
        let first = quadratic_loss_step(&mut |c, g| sgd.step(c, g), &p);
        let mut last = first;
        for _ in 0..30 {
            last = quadratic_loss_step(&mut |c, g| sgd.step(c, g), &p);
        }
        assert!(last < first * 1e-3, "loss {first} → {last}");
    }

    #[test]
    fn momentum_accelerates() {
        let run = |momentum: f32| {
            let p = Param::new("p", Tensor::from_vec(vec![3.0], [1]));
            let mut sgd = Sgd::new(0.01).with_momentum(momentum);
            let mut last = 0.0;
            for _ in 0..20 {
                last = quadratic_loss_step(&mut |c, g| sgd.step(c, g), &p);
            }
            last
        };
        assert!(run(0.9) < run(0.0), "momentum should converge faster here");
    }

    #[test]
    fn adam_descends_quadratic() {
        let p = Param::new("p", Tensor::from_vec(vec![3.0, -2.0], [2]));
        let mut adam = Adam::new(0.3);
        let first = quadratic_loss_step(&mut |c, g| adam.step(c, g), &p);
        let mut last = first;
        for _ in 0..60 {
            last = quadratic_loss_step(&mut |c, g| adam.step(c, g), &p);
        }
        assert!(last < first * 1e-2, "loss {first} → {last}");
    }

    #[test]
    fn weight_decay_shrinks_params() {
        let p = Param::new("p", Tensor::from_vec(vec![1.0], [1]));
        let mut sgd = Sgd::new(0.1).with_weight_decay(0.5);
        // Zero-gradient loss: only decay acts.
        let mut ctx = Ctx::training();
        let v = ctx.var_of(&p);
        let loss = v.scale(0.0).sum_all();
        let grads = loss.backward();
        sgd.step(&ctx, &grads);
        assert!(p.get().item() < 1.0);
    }

    #[test]
    fn training_a_real_layer_reduces_loss() {
        let mut rng = StdRng::seed_from_u64(9);
        let fc = Linear::new("fc", 4, 2, true, &mut rng);
        let x = Tensor::randn([8, 4], &mut rng);
        let targets: Vec<usize> = (0..8).map(|i| i % 2).collect();
        let mut adam = Adam::new(0.05);
        let mut losses = Vec::new();
        for _ in 0..40 {
            let mut ctx = Ctx::training();
            let xv = ctx.input(x.clone());
            let logits = fc.forward(&xv, &mut ctx);
            let loss = logits.cross_entropy(&targets);
            let grads = loss.backward();
            losses.push(loss.value().item());
            adam.step(&ctx, &grads);
        }
        assert!(
            losses.last().unwrap() < &(losses[0] * 0.5),
            "loss {} → {}",
            losses[0],
            losses.last().unwrap()
        );
    }
}
