#![warn(missing_docs)]

//! # nn — a small DNN framework with PyTorch-style forward hooks
//!
//! The substrate GoldenEye instruments: layers ([`Conv2d`], [`Linear`],
//! [`BatchNorm2d`], [`LayerNorm`], [`MultiHeadAttention`], …) whose outputs
//! route through registered [`ForwardHook`]s, exactly as the paper uses
//! PyTorch's hook functionality to emulate number formats at layer
//! granularity (§III-A).
//!
//! Training is supported through the `tensor` crate's autograd tape plus
//! the optimizers in [`optim`]; hooks run under a straight-through
//! estimator so quantised forward passes still backpropagate.
//!
//! # Examples
//!
//! ```
//! use nn::{Conv2d, Ctx, Module, Relu, Sequential, GlobalAvgPool, Linear};
//! use rand::{rngs::StdRng, SeedableRng};
//! use tensor::Tensor;
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! let net = Sequential::new()
//!     .push(Conv2d::new("c1", 3, 8, 3, 1, 1, false, &mut rng))
//!     .push(Relu::new("r1"))
//!     .push(GlobalAvgPool::new("gap"))
//!     .push(Linear::new("fc", 8, 10, true, &mut rng));
//! let mut ctx = Ctx::inference();
//! let x = ctx.input(Tensor::zeros([1, 3, 16, 16]));
//! let logits = net.forward(&x, &mut ctx);
//! assert_eq!(logits.shape().dims(), &[1, 10]);
//! ```

mod attention;
pub mod init;
mod layers;
mod module;
mod norm;
pub mod optim;

pub use attention::{Mlp, MultiHeadAttention, PatchEmbed, TransformerBlock};
pub use layers::{
    AvgPool2d, Conv2d, Dropout, Flatten, Gelu, GlobalAvgPool, Linear, MaxPool2d, Relu, Sequential,
    Sigmoid, Silu, Tanh,
};
pub use module::{Ctx, ForwardHook, LayerInfo, LayerKind, Module, Param, ParamOverrideGuard};
pub use norm::{BatchNorm2d, LayerNorm};
pub use optim::{Adam, Sgd};
