//! The module system: parameters, forward context, and the **hook**
//! mechanism that GoldenEye instruments.
//!
//! The paper leverages "PyTorch's hook functionality to perform number
//! format emulation at the layer granularity" (§III-A). Here, every
//! instrumentable layer routes its output through [`Ctx::hook_output`];
//! registered [`ForwardHook`]s may replace the output tensor (e.g. with its
//! quantised image, possibly with a bit flipped). Hooks run under a
//! straight-through estimator so training still backpropagates.

use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, RwLock, RwLockReadGuard, RwLockWriteGuard};
use tensor::{Tape, Tensor, Var};

/// The kind of a layer, used to select which layers hooks apply to.
///
/// The paper instruments CONV and LINEAR by default "due to their
/// computational intensity", with all layer types supported optionally.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LayerKind {
    /// 2-D convolution.
    Conv,
    /// Fully-connected / projection layer.
    Linear,
    /// Batch/layer normalisation.
    Norm,
    /// Elementwise non-linearity.
    Activation,
    /// Pooling.
    Pool,
    /// Attention score/context computation.
    Attention,
    /// Anything else.
    Other,
}

/// Identity of one instrumented layer during a forward pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayerInfo {
    /// Sequential index of the layer among instrumented layers (0-based,
    /// in execution order).
    pub index: usize,
    /// The layer's kind.
    pub kind: LayerKind,
    /// The layer's name (unique within a model).
    pub name: String,
}

/// A hook invoked on each instrumented layer output.
///
/// Returning `Some(t)` replaces the output with `t` (which must have the
/// same shape); `None` leaves it unchanged.
///
/// Hooks are shared across the parallel campaign executor's worker
/// threads, hence the `Send + Sync` supertraits: any interior mutability
/// (injection RNGs, capture buffers) must be behind a `Mutex`/`RwLock`.
pub trait ForwardHook: Send + Sync {
    /// Observes (and optionally replaces) the output of `layer`.
    fn on_output(&self, layer: &LayerInfo, output: &Tensor) -> Option<Tensor>;

    /// Batch-aware variant of [`ForwardHook::on_output`], called when the
    /// forward pass carries `replicas` independent trials packed along the
    /// leading (batch) dimension (see [`Ctx::set_replicas`]).
    ///
    /// `output`'s leading dimension is `replicas ×` the per-trial batch;
    /// replica `r` occupies the contiguous row range
    /// `r·(d0/replicas) .. (r+1)·(d0/replicas)`. Hooks whose transform is
    /// *not* per-element (anything that derives tensor-wide state such as
    /// quantisation scales or shared exponents) must override this and
    /// process each replica slice independently, or packed trials would
    /// observe each other through that shared state. The default ignores
    /// the packing and treats the output as one tensor, which is correct
    /// only for per-element transforms.
    fn on_output_batched(
        &self,
        layer: &LayerInfo,
        output: &Tensor,
        replicas: usize,
    ) -> Option<Tensor> {
        let _ = replicas;
        self.on_output(layer, output)
    }

    /// Which layer kinds this hook applies to. Defaults to the paper's
    /// default instrumentation set: CONV and LINEAR.
    fn applies_to(&self, kind: LayerKind) -> bool {
        matches!(kind, LayerKind::Conv | LayerKind::Linear)
    }
}

thread_local! {
    /// Per-thread parameter value overrides, keyed by [`Param::key`].
    ///
    /// The parallel weight-fault campaign runs many trials against one
    /// shared model; each worker thread installs its faulty weight here
    /// (via [`Param::override_local`]) instead of mutating the shared
    /// storage, so trials never observe each other's faults.
    static PARAM_OVERRIDES: RefCell<HashMap<usize, Tensor>> = RefCell::new(HashMap::new());
}

/// RAII guard for a thread-local parameter override (see
/// [`Param::override_local`]). Dropping it restores the previous view.
///
/// Deliberately `!Send`: the override only exists on the installing
/// thread, so the guard must be dropped there too.
#[derive(Debug)]
pub struct ParamOverrideGuard {
    key: usize,
    previous: Option<Tensor>,
    _not_send: std::marker::PhantomData<*const ()>,
}

impl Drop for ParamOverrideGuard {
    fn drop(&mut self) {
        PARAM_OVERRIDES.with(|o| {
            let mut map = o.borrow_mut();
            match self.previous.take() {
                Some(prev) => {
                    map.insert(self.key, prev);
                }
                None => {
                    map.remove(&self.key);
                }
            }
        });
    }
}

/// A trainable parameter: a shared, mutable tensor with a name.
///
/// Cloning a `Param` aliases the same storage. The storage is an
/// `Arc<RwLock<..>>`, so parameters can be read concurrently from many
/// campaign worker threads; lock poisoning is deliberately ignored (a
/// panicked trial leaves the tensor intact — `Tensor` mutation through
/// this API is replace-whole-value, never partial).
#[derive(Clone)]
pub struct Param {
    value: Arc<RwLock<Tensor>>,
    name: String,
}

impl Param {
    /// Creates a parameter from an initial value.
    pub fn new(name: impl Into<String>, value: Tensor) -> Self {
        Param { value: Arc::new(RwLock::new(value)), name: name.into() }
    }

    /// The parameter's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    fn read(&self) -> RwLockReadGuard<'_, Tensor> {
        self.value.read().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    fn write(&self) -> RwLockWriteGuard<'_, Tensor> {
        self.value.write().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// A snapshot of the current value as seen by this thread: the
    /// thread-local override if one is installed, else the shared value.
    pub fn get(&self) -> Tensor {
        let key = self.key();
        if let Some(t) = PARAM_OVERRIDES.with(|o| o.borrow().get(&key).cloned()) {
            return t;
        }
        self.read().clone()
    }

    /// Replaces the shared value.
    ///
    /// # Panics
    ///
    /// Panics if the new value's shape differs.
    pub fn set(&self, t: Tensor) {
        let mut v = self.write();
        assert_eq!(v.shape(), t.shape(), "parameter {} shape changed", self.name);
        *v = t;
    }

    /// Applies an in-place update to the shared value.
    pub fn update(&self, f: impl FnOnce(&mut Tensor)) {
        f(&mut self.write());
    }

    /// Installs a value override visible **only to the calling thread**
    /// until the returned guard is dropped.
    ///
    /// This is how parallel fault-injection trials perturb a weight
    /// without racing: the shared storage stays clean, and
    /// [`Param::get`] on the installing thread sees `t` instead.
    ///
    /// # Panics
    ///
    /// Panics if `t`'s shape differs from the parameter's.
    pub fn override_local(&self, t: Tensor) -> ParamOverrideGuard {
        assert_eq!(
            self.read().shape(),
            t.shape(),
            "parameter {} override shape mismatch",
            self.name
        );
        let key = self.key();
        let previous = PARAM_OVERRIDES.with(|o| o.borrow_mut().insert(key, t));
        ParamOverrideGuard { key, previous, _not_send: std::marker::PhantomData }
    }

    /// Number of elements.
    pub fn numel(&self) -> usize {
        self.read().numel()
    }

    /// A stable identity for this parameter's storage (used by optimizers
    /// and the thread-local override table).
    pub fn key(&self) -> usize {
        Arc::as_ptr(&self.value) as usize
    }
}

impl fmt::Debug for Param {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Param({}, {:?})", self.name, self.read().shape())
    }
}

/// Per-forward-pass state: the autograd tape, registered hooks, the layer
/// counter, and parameter→variable bindings for the optimizer.
pub struct Ctx {
    tape: Tape,
    hooks: Vec<Arc<dyn ForwardHook>>,
    layer_index: usize,
    bindings: Vec<(Param, Var)>,
    training: bool,
    replicas: usize,
}

impl Ctx {
    /// Creates an inference context (no gradient recording, no hooks).
    pub fn inference() -> Self {
        Ctx {
            tape: Tape::inference(),
            hooks: Vec::new(),
            layer_index: 0,
            bindings: Vec::new(),
            training: false,
            replicas: 1,
        }
    }

    /// Creates a training context (gradients recorded).
    pub fn training() -> Self {
        Ctx {
            tape: Tape::new(),
            hooks: Vec::new(),
            layer_index: 0,
            bindings: Vec::new(),
            training: true,
            replicas: 1,
        }
    }

    /// Starts layer numbering at `index` instead of 0.
    ///
    /// Used by checkpoint/replay execution: a pass that resumes from a
    /// cached mid-network activation (see [`Module::forward_segment`])
    /// must hand hooks the same layer indices a full forward pass would.
    pub fn set_base_layer(&mut self, index: usize) {
        self.layer_index = index;
    }

    /// Declares that the forward pass packs `n` independent trials along
    /// the leading batch dimension. Hooks receive this via
    /// [`ForwardHook::on_output_batched`] so per-tensor transforms can be
    /// applied per replica slice.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn set_replicas(&mut self, n: usize) {
        assert!(n >= 1, "a forward pass carries at least one replica");
        self.replicas = n;
    }

    /// Number of packed trials in this pass (1 = a plain forward).
    pub fn replicas(&self) -> usize {
        self.replicas
    }

    /// Registers a forward hook.
    pub fn add_hook(&mut self, hook: Arc<dyn ForwardHook>) -> &mut Self {
        self.hooks.push(hook);
        self
    }

    /// The autograd tape for this pass.
    pub fn tape(&self) -> &Tape {
        &self.tape
    }

    /// Whether this pass is a training pass (affects batch norm etc.).
    pub fn is_training(&self) -> bool {
        self.training
    }

    /// Lifts an input tensor onto the tape.
    pub fn input(&self, t: Tensor) -> Var {
        self.tape.leaf(t)
    }

    /// Lifts a parameter onto the tape, remembering the binding so the
    /// optimizer can find its gradient later.
    pub fn var_of(&mut self, p: &Param) -> Var {
        let v = self.tape.leaf(p.get());
        self.bindings.push((p.clone(), v.clone()));
        v
    }

    /// Lifts a constant tensor (no gradient tracking needed beyond leaf).
    pub fn constant(&self, t: Tensor) -> Var {
        self.tape.leaf(t)
    }

    /// Parameter→variable bindings recorded this pass.
    pub fn bindings(&self) -> &[(Param, Var)] {
        &self.bindings
    }

    /// Number of instrumented layers seen so far this pass.
    pub fn layers_seen(&self) -> usize {
        self.layer_index
    }

    /// Routes a layer output through all applicable hooks (in registration
    /// order), assigning the layer its execution index.
    ///
    /// Hook replacement happens under a straight-through estimator, so a
    /// training pass backpropagates through the original computation.
    pub fn hook_output(&mut self, kind: LayerKind, name: &str, out: Var) -> Var {
        let info = LayerInfo { index: self.layer_index, kind, name: name.to_string() };
        self.layer_index += 1;
        let applicable: Vec<Arc<dyn ForwardHook>> =
            self.hooks.iter().filter(|h| h.applies_to(kind)).cloned().collect();
        if applicable.is_empty() {
            return out;
        }
        let replicas = self.replicas;
        // Hooks run once, eagerly: they are stateful (injector draws,
        // discovery records), and observing-only hooks must not cost a
        // tape node or a tensor clone.
        let x = out.value();
        let mut cur: Option<Tensor> = None;
        for h in &applicable {
            let view = cur.as_ref().unwrap_or(&x);
            let replaced = if replicas > 1 {
                h.on_output_batched(&info, view, replicas)
            } else {
                h.on_output(&info, view)
            };
            if let Some(replaced) = replaced {
                cur = Some(replaced);
            }
        }
        match cur {
            // Lift the replacement onto the tape under a straight-through
            // estimator. The Cell moves it into the node without a clone;
            // `apply_ste` invokes its closure exactly once.
            Some(replaced) => {
                let replaced = std::cell::Cell::new(Some(replaced));
                out.apply_ste(move |_| replaced.take().expect("apply_ste closure runs once"))
            }
            None => out,
        }
    }
}

impl fmt::Debug for Ctx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Ctx(training={}, hooks={}, layers_seen={})",
            self.training,
            self.hooks.len(),
            self.layer_index
        )
    }
}

/// A neural-network module: anything with a forward pass and parameters.
///
/// `Send + Sync` so a `&dyn Module` can be shared across the parallel
/// campaign executor's scoped worker threads; stateful layers keep their
/// mutable state behind locks (e.g. `Dropout`'s RNG).
pub trait Module: Send + Sync {
    /// Computes the module's output.
    fn forward(&self, x: &Var, ctx: &mut Ctx) -> Var;

    /// Number of checkpointable **segments** the forward pass decomposes
    /// into. Defaults to 1 (the whole model is one segment).
    ///
    /// Segments are the unit of activation checkpointing in batched
    /// injection campaigns: a model that overrides this (together with
    /// [`Module::forward_segment`]) promises that no tensor flows across a
    /// segment boundary except the segment's single input — e.g. a ResNet
    /// segments at residual-block granularity, never *inside* a block
    /// where the skip connection is live. A campaign can then cache the
    /// clean activation entering a segment and replay only the suffix.
    fn num_segments(&self) -> usize {
        1
    }

    /// Runs one segment of the forward pass.
    ///
    /// **Contract:** chaining `forward_segment(0) … forward_segment(n-1)`
    /// through the same `ctx` must be bit-identical to [`Module::forward`]
    /// — identical outputs *and* identical hook-point layer numbering.
    /// Models that override [`Module::num_segments`] should implement
    /// `forward` as exactly that chain so the contract holds by
    /// construction.
    ///
    /// # Panics
    ///
    /// The default (single-segment) implementation panics unless
    /// `segment == 0`.
    fn forward_segment(&self, segment: usize, x: &Var, ctx: &mut Ctx) -> Var {
        assert_eq!(segment, 0, "default Module has exactly one segment");
        self.forward(x, ctx)
    }

    /// Visits every parameter (used by optimizers, weight I/O, and weight
    /// quantisation).
    fn visit_params(&self, f: &mut dyn FnMut(&Param));

    /// Collects all parameters into a vector.
    fn params(&self) -> Vec<Param> {
        let mut out = Vec::new();
        self.visit_params(&mut |p| out.push(p.clone()));
        out
    }

    /// Total number of scalar parameters.
    fn param_count(&self) -> usize {
        let mut n = 0;
        self.visit_params(&mut |p| n += p.numel());
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct DoubleHook;
    impl ForwardHook for DoubleHook {
        fn on_output(&self, _l: &LayerInfo, out: &Tensor) -> Option<Tensor> {
            Some(out.map(|x| x * 2.0))
        }
    }

    struct AddOneHook;
    impl ForwardHook for AddOneHook {
        fn on_output(&self, _l: &LayerInfo, out: &Tensor) -> Option<Tensor> {
            Some(out.map(|x| x + 1.0))
        }
        fn applies_to(&self, _k: LayerKind) -> bool {
            true
        }
    }

    #[test]
    fn param_shared_storage() {
        let p = Param::new("w", Tensor::zeros([2]));
        let q = p.clone();
        p.set(Tensor::ones([2]));
        assert_eq!(q.get().as_slice(), &[1.0, 1.0]);
        assert_eq!(p.key(), q.key());
    }

    #[test]
    #[should_panic(expected = "shape changed")]
    fn param_set_shape_mismatch_panics() {
        Param::new("w", Tensor::zeros([2])).set(Tensor::zeros([3]));
    }

    #[test]
    fn param_override_is_thread_local_and_scoped() {
        let p = Param::new("w", Tensor::zeros([2]));
        {
            let _guard = p.override_local(Tensor::ones([2]));
            assert_eq!(p.get().as_slice(), &[1.0, 1.0]);
            // Another thread still sees the clean shared value.
            std::thread::scope(|s| {
                s.spawn(|| assert_eq!(p.get().as_slice(), &[0.0, 0.0]));
            });
        }
        // Guard dropped: the override is gone.
        assert_eq!(p.get().as_slice(), &[0.0, 0.0]);
    }

    #[test]
    fn param_override_nests() {
        let p = Param::new("w", Tensor::zeros([1]));
        let _outer = p.override_local(Tensor::from_vec(vec![1.0], [1]));
        {
            let _inner = p.override_local(Tensor::from_vec(vec![2.0], [1]));
            assert_eq!(p.get().as_slice(), &[2.0]);
        }
        assert_eq!(p.get().as_slice(), &[1.0]);
    }

    #[test]
    fn hooks_compose_in_order() {
        let mut ctx = Ctx::inference();
        ctx.add_hook(Arc::new(DoubleHook));
        ctx.add_hook(Arc::new(AddOneHook));
        let x = ctx.input(Tensor::from_vec(vec![3.0], [1]));
        let y = ctx.hook_output(LayerKind::Conv, "c1", x);
        // (3*2) + 1 = 7
        assert_eq!(y.value().as_slice(), &[7.0]);
    }

    #[test]
    fn hook_kind_filter() {
        let mut ctx = Ctx::inference();
        ctx.add_hook(Arc::new(DoubleHook)); // conv/linear only
        let x = ctx.input(Tensor::from_vec(vec![3.0], [1]));
        let y = ctx.hook_output(LayerKind::Activation, "relu", x);
        assert_eq!(y.value().as_slice(), &[3.0]);
    }

    #[test]
    fn layer_indices_count_in_execution_order() {
        let mut ctx = Ctx::inference();
        let x = ctx.input(Tensor::zeros([1]));
        ctx.hook_output(LayerKind::Conv, "a", x.clone());
        ctx.hook_output(LayerKind::Linear, "b", x.clone());
        ctx.hook_output(LayerKind::Conv, "c", x);
        assert_eq!(ctx.layers_seen(), 3);
    }

    /// Doubles each replica slice's values by `1 + replica index` — a
    /// transform that depends on the packing, to verify dispatch.
    struct ReplicaHook;
    impl ForwardHook for ReplicaHook {
        fn on_output(&self, _l: &LayerInfo, out: &Tensor) -> Option<Tensor> {
            Some(out.map(|x| x * 10.0))
        }
        fn on_output_batched(
            &self,
            _l: &LayerInfo,
            out: &Tensor,
            replicas: usize,
        ) -> Option<Tensor> {
            let rows = out.numel() / replicas;
            let mut t = out.clone();
            for (i, v) in t.as_mut_slice().iter_mut().enumerate() {
                *v *= (1 + i / rows) as f32;
            }
            Some(t)
        }
    }

    #[test]
    fn batched_hook_dispatch_depends_on_replicas() {
        // replicas = 1 → per-tensor path.
        let mut ctx = Ctx::inference();
        ctx.add_hook(Arc::new(ReplicaHook));
        let x = ctx.input(Tensor::ones([4]));
        let y = ctx.hook_output(LayerKind::Conv, "c", x);
        assert_eq!(y.value().as_slice(), &[10.0; 4]);
        // replicas = 2 → per-replica path (second replica scaled by 2).
        let mut ctx = Ctx::inference();
        ctx.set_replicas(2);
        assert_eq!(ctx.replicas(), 2);
        ctx.add_hook(Arc::new(ReplicaHook));
        let x = ctx.input(Tensor::ones([4]));
        let y = ctx.hook_output(LayerKind::Conv, "c", x);
        assert_eq!(y.value().as_slice(), &[1.0, 1.0, 2.0, 2.0]);
    }

    #[test]
    fn default_batched_hook_falls_back_to_per_tensor() {
        let mut ctx = Ctx::inference();
        ctx.set_replicas(3);
        ctx.add_hook(Arc::new(DoubleHook)); // no batched override
        let x = ctx.input(Tensor::ones([6]));
        let y = ctx.hook_output(LayerKind::Conv, "c", x);
        assert_eq!(y.value().as_slice(), &[2.0; 6]);
    }

    #[test]
    fn base_layer_offsets_numbering() {
        let mut ctx = Ctx::inference();
        ctx.set_base_layer(5);
        struct IndexProbe(std::sync::Mutex<Vec<usize>>);
        impl ForwardHook for IndexProbe {
            fn on_output(&self, l: &LayerInfo, _o: &Tensor) -> Option<Tensor> {
                self.0.lock().unwrap().push(l.index);
                None
            }
        }
        let probe = Arc::new(IndexProbe(std::sync::Mutex::new(Vec::new())));
        ctx.add_hook(probe.clone());
        let x = ctx.input(Tensor::zeros([1]));
        ctx.hook_output(LayerKind::Conv, "a", x.clone());
        ctx.hook_output(LayerKind::Conv, "b", x);
        assert_eq!(*probe.0.lock().unwrap(), vec![5, 6]);
        assert_eq!(ctx.layers_seen(), 7);
    }

    #[test]
    fn default_module_is_single_segment() {
        struct Id;
        impl Module for Id {
            fn forward(&self, x: &Var, _ctx: &mut Ctx) -> Var {
                x.clone()
            }
            fn visit_params(&self, _f: &mut dyn FnMut(&Param)) {}
        }
        let m = Id;
        assert_eq!(m.num_segments(), 1);
        let mut ctx = Ctx::inference();
        let x = ctx.input(Tensor::ones([2]));
        let y = m.forward_segment(0, &x, &mut ctx);
        assert_eq!(y.value().as_slice(), &[1.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "exactly one segment")]
    fn default_module_rejects_segment_one() {
        struct Id;
        impl Module for Id {
            fn forward(&self, x: &Var, _ctx: &mut Ctx) -> Var {
                x.clone()
            }
            fn visit_params(&self, _f: &mut dyn FnMut(&Param)) {}
        }
        let mut ctx = Ctx::inference();
        let x = ctx.input(Tensor::ones([2]));
        Id.forward_segment(1, &x, &mut ctx);
    }

    #[test]
    fn hooked_training_pass_uses_ste() {
        let mut ctx = Ctx::training();
        ctx.add_hook(Arc::new(DoubleHook));
        let p = Param::new("w", Tensor::from_vec(vec![5.0], [1]));
        let w = ctx.var_of(&p);
        let y = ctx.hook_output(LayerKind::Linear, "fc", w.clone());
        assert_eq!(y.value().as_slice(), &[10.0]);
        let g = y.sum_all().backward();
        // STE: gradient passes through the hook unchanged.
        assert_eq!(g.get(&w).unwrap().as_slice(), &[1.0]);
    }
}
