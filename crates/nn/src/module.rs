//! The module system: parameters, forward context, and the **hook**
//! mechanism that GoldenEye instruments.
//!
//! The paper leverages "PyTorch's hook functionality to perform number
//! format emulation at the layer granularity" (§III-A). Here, every
//! instrumentable layer routes its output through [`Ctx::hook_output`];
//! registered [`ForwardHook`]s may replace the output tensor (e.g. with its
//! quantised image, possibly with a bit flipped). Hooks run under a
//! straight-through estimator so training still backpropagates.

use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, RwLock, RwLockReadGuard, RwLockWriteGuard};
use tensor::{Tape, Tensor, Var};

/// The kind of a layer, used to select which layers hooks apply to.
///
/// The paper instruments CONV and LINEAR by default "due to their
/// computational intensity", with all layer types supported optionally.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LayerKind {
    /// 2-D convolution.
    Conv,
    /// Fully-connected / projection layer.
    Linear,
    /// Batch/layer normalisation.
    Norm,
    /// Elementwise non-linearity.
    Activation,
    /// Pooling.
    Pool,
    /// Attention score/context computation.
    Attention,
    /// Anything else.
    Other,
}

/// Identity of one instrumented layer during a forward pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayerInfo {
    /// Sequential index of the layer among instrumented layers (0-based,
    /// in execution order).
    pub index: usize,
    /// The layer's kind.
    pub kind: LayerKind,
    /// The layer's name (unique within a model).
    pub name: String,
}

/// A hook invoked on each instrumented layer output.
///
/// Returning `Some(t)` replaces the output with `t` (which must have the
/// same shape); `None` leaves it unchanged.
///
/// Hooks are shared across the parallel campaign executor's worker
/// threads, hence the `Send + Sync` supertraits: any interior mutability
/// (injection RNGs, capture buffers) must be behind a `Mutex`/`RwLock`.
pub trait ForwardHook: Send + Sync {
    /// Observes (and optionally replaces) the output of `layer`.
    fn on_output(&self, layer: &LayerInfo, output: &Tensor) -> Option<Tensor>;

    /// Which layer kinds this hook applies to. Defaults to the paper's
    /// default instrumentation set: CONV and LINEAR.
    fn applies_to(&self, kind: LayerKind) -> bool {
        matches!(kind, LayerKind::Conv | LayerKind::Linear)
    }
}

thread_local! {
    /// Per-thread parameter value overrides, keyed by [`Param::key`].
    ///
    /// The parallel weight-fault campaign runs many trials against one
    /// shared model; each worker thread installs its faulty weight here
    /// (via [`Param::override_local`]) instead of mutating the shared
    /// storage, so trials never observe each other's faults.
    static PARAM_OVERRIDES: RefCell<HashMap<usize, Tensor>> = RefCell::new(HashMap::new());
}

/// RAII guard for a thread-local parameter override (see
/// [`Param::override_local`]). Dropping it restores the previous view.
///
/// Deliberately `!Send`: the override only exists on the installing
/// thread, so the guard must be dropped there too.
#[derive(Debug)]
pub struct ParamOverrideGuard {
    key: usize,
    previous: Option<Tensor>,
    _not_send: std::marker::PhantomData<*const ()>,
}

impl Drop for ParamOverrideGuard {
    fn drop(&mut self) {
        PARAM_OVERRIDES.with(|o| {
            let mut map = o.borrow_mut();
            match self.previous.take() {
                Some(prev) => {
                    map.insert(self.key, prev);
                }
                None => {
                    map.remove(&self.key);
                }
            }
        });
    }
}

/// A trainable parameter: a shared, mutable tensor with a name.
///
/// Cloning a `Param` aliases the same storage. The storage is an
/// `Arc<RwLock<..>>`, so parameters can be read concurrently from many
/// campaign worker threads; lock poisoning is deliberately ignored (a
/// panicked trial leaves the tensor intact — `Tensor` mutation through
/// this API is replace-whole-value, never partial).
#[derive(Clone)]
pub struct Param {
    value: Arc<RwLock<Tensor>>,
    name: String,
}

impl Param {
    /// Creates a parameter from an initial value.
    pub fn new(name: impl Into<String>, value: Tensor) -> Self {
        Param { value: Arc::new(RwLock::new(value)), name: name.into() }
    }

    /// The parameter's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    fn read(&self) -> RwLockReadGuard<'_, Tensor> {
        self.value.read().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    fn write(&self) -> RwLockWriteGuard<'_, Tensor> {
        self.value.write().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// A snapshot of the current value as seen by this thread: the
    /// thread-local override if one is installed, else the shared value.
    pub fn get(&self) -> Tensor {
        let key = self.key();
        if let Some(t) = PARAM_OVERRIDES.with(|o| o.borrow().get(&key).cloned()) {
            return t;
        }
        self.read().clone()
    }

    /// Replaces the shared value.
    ///
    /// # Panics
    ///
    /// Panics if the new value's shape differs.
    pub fn set(&self, t: Tensor) {
        let mut v = self.write();
        assert_eq!(v.shape(), t.shape(), "parameter {} shape changed", self.name);
        *v = t;
    }

    /// Applies an in-place update to the shared value.
    pub fn update(&self, f: impl FnOnce(&mut Tensor)) {
        f(&mut self.write());
    }

    /// Installs a value override visible **only to the calling thread**
    /// until the returned guard is dropped.
    ///
    /// This is how parallel fault-injection trials perturb a weight
    /// without racing: the shared storage stays clean, and
    /// [`Param::get`] on the installing thread sees `t` instead.
    ///
    /// # Panics
    ///
    /// Panics if `t`'s shape differs from the parameter's.
    pub fn override_local(&self, t: Tensor) -> ParamOverrideGuard {
        assert_eq!(
            self.read().shape(),
            t.shape(),
            "parameter {} override shape mismatch",
            self.name
        );
        let key = self.key();
        let previous = PARAM_OVERRIDES.with(|o| o.borrow_mut().insert(key, t));
        ParamOverrideGuard { key, previous, _not_send: std::marker::PhantomData }
    }

    /// Number of elements.
    pub fn numel(&self) -> usize {
        self.read().numel()
    }

    /// A stable identity for this parameter's storage (used by optimizers
    /// and the thread-local override table).
    pub fn key(&self) -> usize {
        Arc::as_ptr(&self.value) as usize
    }
}

impl fmt::Debug for Param {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Param({}, {:?})", self.name, self.read().shape())
    }
}

/// Per-forward-pass state: the autograd tape, registered hooks, the layer
/// counter, and parameter→variable bindings for the optimizer.
pub struct Ctx {
    tape: Tape,
    hooks: Vec<Arc<dyn ForwardHook>>,
    layer_index: usize,
    bindings: Vec<(Param, Var)>,
    training: bool,
}

impl Ctx {
    /// Creates an inference context (no gradient recording, no hooks).
    pub fn inference() -> Self {
        Ctx {
            tape: Tape::inference(),
            hooks: Vec::new(),
            layer_index: 0,
            bindings: Vec::new(),
            training: false,
        }
    }

    /// Creates a training context (gradients recorded).
    pub fn training() -> Self {
        Ctx {
            tape: Tape::new(),
            hooks: Vec::new(),
            layer_index: 0,
            bindings: Vec::new(),
            training: true,
        }
    }

    /// Registers a forward hook.
    pub fn add_hook(&mut self, hook: Arc<dyn ForwardHook>) -> &mut Self {
        self.hooks.push(hook);
        self
    }

    /// The autograd tape for this pass.
    pub fn tape(&self) -> &Tape {
        &self.tape
    }

    /// Whether this pass is a training pass (affects batch norm etc.).
    pub fn is_training(&self) -> bool {
        self.training
    }

    /// Lifts an input tensor onto the tape.
    pub fn input(&self, t: Tensor) -> Var {
        self.tape.leaf(t)
    }

    /// Lifts a parameter onto the tape, remembering the binding so the
    /// optimizer can find its gradient later.
    pub fn var_of(&mut self, p: &Param) -> Var {
        let v = self.tape.leaf(p.get());
        self.bindings.push((p.clone(), v.clone()));
        v
    }

    /// Lifts a constant tensor (no gradient tracking needed beyond leaf).
    pub fn constant(&self, t: Tensor) -> Var {
        self.tape.leaf(t)
    }

    /// Parameter→variable bindings recorded this pass.
    pub fn bindings(&self) -> &[(Param, Var)] {
        &self.bindings
    }

    /// Number of instrumented layers seen so far this pass.
    pub fn layers_seen(&self) -> usize {
        self.layer_index
    }

    /// Routes a layer output through all applicable hooks (in registration
    /// order), assigning the layer its execution index.
    ///
    /// Hook replacement happens under a straight-through estimator, so a
    /// training pass backpropagates through the original computation.
    pub fn hook_output(&mut self, kind: LayerKind, name: &str, out: Var) -> Var {
        let info = LayerInfo { index: self.layer_index, kind, name: name.to_string() };
        self.layer_index += 1;
        let applicable: Vec<Arc<dyn ForwardHook>> =
            self.hooks.iter().filter(|h| h.applies_to(kind)).cloned().collect();
        if applicable.is_empty() {
            return out;
        }
        out.apply_ste(move |t| {
            let mut cur: Option<Tensor> = None;
            for h in &applicable {
                let view = cur.as_ref().unwrap_or(t);
                if let Some(replaced) = h.on_output(&info, view) {
                    cur = Some(replaced);
                }
            }
            cur.unwrap_or_else(|| t.clone())
        })
    }
}

impl fmt::Debug for Ctx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Ctx(training={}, hooks={}, layers_seen={})",
            self.training,
            self.hooks.len(),
            self.layer_index
        )
    }
}

/// A neural-network module: anything with a forward pass and parameters.
///
/// `Send + Sync` so a `&dyn Module` can be shared across the parallel
/// campaign executor's scoped worker threads; stateful layers keep their
/// mutable state behind locks (e.g. `Dropout`'s RNG).
pub trait Module: Send + Sync {
    /// Computes the module's output.
    fn forward(&self, x: &Var, ctx: &mut Ctx) -> Var;

    /// Visits every parameter (used by optimizers, weight I/O, and weight
    /// quantisation).
    fn visit_params(&self, f: &mut dyn FnMut(&Param));

    /// Collects all parameters into a vector.
    fn params(&self) -> Vec<Param> {
        let mut out = Vec::new();
        self.visit_params(&mut |p| out.push(p.clone()));
        out
    }

    /// Total number of scalar parameters.
    fn param_count(&self) -> usize {
        let mut n = 0;
        self.visit_params(&mut |p| n += p.numel());
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct DoubleHook;
    impl ForwardHook for DoubleHook {
        fn on_output(&self, _l: &LayerInfo, out: &Tensor) -> Option<Tensor> {
            Some(out.map(|x| x * 2.0))
        }
    }

    struct AddOneHook;
    impl ForwardHook for AddOneHook {
        fn on_output(&self, _l: &LayerInfo, out: &Tensor) -> Option<Tensor> {
            Some(out.map(|x| x + 1.0))
        }
        fn applies_to(&self, _k: LayerKind) -> bool {
            true
        }
    }

    #[test]
    fn param_shared_storage() {
        let p = Param::new("w", Tensor::zeros([2]));
        let q = p.clone();
        p.set(Tensor::ones([2]));
        assert_eq!(q.get().as_slice(), &[1.0, 1.0]);
        assert_eq!(p.key(), q.key());
    }

    #[test]
    #[should_panic(expected = "shape changed")]
    fn param_set_shape_mismatch_panics() {
        Param::new("w", Tensor::zeros([2])).set(Tensor::zeros([3]));
    }

    #[test]
    fn param_override_is_thread_local_and_scoped() {
        let p = Param::new("w", Tensor::zeros([2]));
        {
            let _guard = p.override_local(Tensor::ones([2]));
            assert_eq!(p.get().as_slice(), &[1.0, 1.0]);
            // Another thread still sees the clean shared value.
            std::thread::scope(|s| {
                s.spawn(|| assert_eq!(p.get().as_slice(), &[0.0, 0.0]));
            });
        }
        // Guard dropped: the override is gone.
        assert_eq!(p.get().as_slice(), &[0.0, 0.0]);
    }

    #[test]
    fn param_override_nests() {
        let p = Param::new("w", Tensor::zeros([1]));
        let _outer = p.override_local(Tensor::from_vec(vec![1.0], [1]));
        {
            let _inner = p.override_local(Tensor::from_vec(vec![2.0], [1]));
            assert_eq!(p.get().as_slice(), &[2.0]);
        }
        assert_eq!(p.get().as_slice(), &[1.0]);
    }

    #[test]
    fn hooks_compose_in_order() {
        let mut ctx = Ctx::inference();
        ctx.add_hook(Arc::new(DoubleHook));
        ctx.add_hook(Arc::new(AddOneHook));
        let x = ctx.input(Tensor::from_vec(vec![3.0], [1]));
        let y = ctx.hook_output(LayerKind::Conv, "c1", x);
        // (3*2) + 1 = 7
        assert_eq!(y.value().as_slice(), &[7.0]);
    }

    #[test]
    fn hook_kind_filter() {
        let mut ctx = Ctx::inference();
        ctx.add_hook(Arc::new(DoubleHook)); // conv/linear only
        let x = ctx.input(Tensor::from_vec(vec![3.0], [1]));
        let y = ctx.hook_output(LayerKind::Activation, "relu", x);
        assert_eq!(y.value().as_slice(), &[3.0]);
    }

    #[test]
    fn layer_indices_count_in_execution_order() {
        let mut ctx = Ctx::inference();
        let x = ctx.input(Tensor::zeros([1]));
        ctx.hook_output(LayerKind::Conv, "a", x.clone());
        ctx.hook_output(LayerKind::Linear, "b", x.clone());
        ctx.hook_output(LayerKind::Conv, "c", x);
        assert_eq!(ctx.layers_seen(), 3);
    }

    #[test]
    fn hooked_training_pass_uses_ste() {
        let mut ctx = Ctx::training();
        ctx.add_hook(Arc::new(DoubleHook));
        let p = Param::new("w", Tensor::from_vec(vec![5.0], [1]));
        let w = ctx.var_of(&p);
        let y = ctx.hook_output(LayerKind::Linear, "fc", w.clone());
        assert_eq!(y.value().as_slice(), &[10.0]);
        let g = y.sum_all().backward();
        // STE: gradient passes through the hook unchanged.
        assert_eq!(g.get(&w).unwrap().as_slice(), &[1.0]);
    }
}
