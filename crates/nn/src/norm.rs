//! Normalisation layers: batch norm (CNNs) and layer norm (transformers).

use crate::module::{Ctx, LayerKind, Module, Param};
use tensor::{Tensor, Var};

/// Batch normalisation over `[N, C, H, W]` (per-channel statistics).
///
/// Training passes use batch statistics and update running estimates;
/// inference passes use the running estimates. The running statistics are
/// stored as (non-trainable) [`Param`]s so they persist through weight
/// save/load and snapshots; they never receive gradients because they are
/// never lifted onto the tape.
#[derive(Debug)]
pub struct BatchNorm2d {
    name: String,
    gamma: Param,
    beta: Param,
    running_mean: Param,
    running_var: Param,
    momentum: f32,
    eps: f32,
    channels: usize,
}

impl BatchNorm2d {
    /// Creates a batch-norm layer for `channels` channels.
    pub fn new(name: impl Into<String>, channels: usize) -> Self {
        let name = name.into();
        BatchNorm2d {
            gamma: Param::new(format!("{name}.gamma"), Tensor::ones([channels])),
            beta: Param::new(format!("{name}.beta"), Tensor::zeros([channels])),
            running_mean: Param::new(format!("{name}.running_mean"), Tensor::zeros([channels])),
            running_var: Param::new(format!("{name}.running_var"), Tensor::ones([channels])),
            momentum: 0.1,
            eps: 1e-5,
            channels,
            name,
        }
    }
}

impl Module for BatchNorm2d {
    fn forward(&self, x: &Var, ctx: &mut Ctx) -> Var {
        let c = self.channels;
        assert_eq!(x.shape().dims()[1], c, "{}: channel mismatch", self.name);
        let y = if ctx.is_training() {
            let mean = x.mean_axes_keepdim(&[0, 2, 3]); // [1,C,1,1]
            let xc = x.sub(&mean);
            let var = xc.mul(&xc).mean_axes_keepdim(&[0, 2, 3]);
            // Update running statistics from the batch values (detached).
            {
                let m = mean.value().reshape([c]);
                let v = var.value().reshape([c]);
                let momentum = self.momentum;
                self.running_mean.update(|rm| {
                    for i in 0..c {
                        rm.as_mut_slice()[i] =
                            (1.0 - momentum) * rm.as_slice()[i] + momentum * m.as_slice()[i];
                    }
                });
                self.running_var.update(|rv| {
                    for i in 0..c {
                        rv.as_mut_slice()[i] =
                            (1.0 - momentum) * rv.as_slice()[i] + momentum * v.as_slice()[i];
                    }
                });
            }
            let inv_std = var.add_scalar(self.eps).sqrt().recip();
            let g = ctx.var_of(&self.gamma).reshape([1, c, 1, 1]);
            let b = ctx.var_of(&self.beta).reshape([1, c, 1, 1]);
            xc.mul(&inv_std).mul(&g).add(&b)
        } else {
            // Fold running stats and affine params into scale/shift.
            let rm = self.running_mean.get();
            let rv = self.running_var.get();
            let g = self.gamma.get();
            let b = self.beta.get();
            let mut scale = vec![0.0f32; c];
            let mut shift = vec![0.0f32; c];
            for i in 0..c {
                let s = g.as_slice()[i] / (rv.as_slice()[i] + self.eps).sqrt();
                scale[i] = s;
                shift[i] = b.as_slice()[i] - rm.as_slice()[i] * s;
            }
            let scale = ctx.constant(Tensor::from_vec(scale, [1, c, 1, 1]));
            let shift = ctx.constant(Tensor::from_vec(shift, [1, c, 1, 1]));
            x.mul(&scale).add(&shift)
        };
        ctx.hook_output(LayerKind::Norm, &self.name, y)
    }

    fn visit_params(&self, f: &mut dyn FnMut(&Param)) {
        f(&self.gamma);
        f(&self.beta);
        f(&self.running_mean);
        f(&self.running_var);
    }
}

/// Layer normalisation over the last dimension.
#[derive(Debug)]
pub struct LayerNorm {
    name: String,
    gamma: Param,
    beta: Param,
    eps: f32,
    dim: usize,
}

impl LayerNorm {
    /// Creates a layer-norm over a last dimension of extent `dim`.
    pub fn new(name: impl Into<String>, dim: usize) -> Self {
        let name = name.into();
        LayerNorm {
            gamma: Param::new(format!("{name}.gamma"), Tensor::ones([dim])),
            beta: Param::new(format!("{name}.beta"), Tensor::zeros([dim])),
            eps: 1e-5,
            dim,
            name,
        }
    }
}

impl Module for LayerNorm {
    fn forward(&self, x: &Var, ctx: &mut Ctx) -> Var {
        let nd = x.shape().ndim();
        assert_eq!(x.shape().dims()[nd - 1], self.dim, "{}: last-dim mismatch", self.name);
        let mean = x.mean_axes_keepdim(&[nd - 1]);
        let xc = x.sub(&mean);
        let var = xc.mul(&xc).mean_axes_keepdim(&[nd - 1]);
        let inv_std = var.add_scalar(self.eps).sqrt().recip();
        let g = ctx.var_of(&self.gamma);
        let b = ctx.var_of(&self.beta);
        let y = xc.mul(&inv_std).mul(&g).add(&b);
        ctx.hook_output(LayerKind::Norm, &self.name, y)
    }

    fn visit_params(&self, f: &mut dyn FnMut(&Param)) {
        f(&self.gamma);
        f(&self.beta);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn batchnorm_training_normalizes() {
        let mut rng = StdRng::seed_from_u64(1);
        let bn = BatchNorm2d::new("bn", 3);
        let mut ctx = Ctx::training();
        let x = ctx.input(tensor::Tensor::randn([4, 3, 5, 5], &mut rng));
        let y = bn.forward(&x, &mut ctx).value();
        // Per-channel mean ≈ 0, var ≈ 1 after normalisation.
        for c in 0..3 {
            let mut vals = Vec::new();
            for n in 0..4 {
                for i in 0..5 {
                    for j in 0..5 {
                        vals.push(y.at(&[n, c, i, j]));
                    }
                }
            }
            let mean: f32 = vals.iter().sum::<f32>() / vals.len() as f32;
            let var: f32 =
                vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / vals.len() as f32;
            assert!(mean.abs() < 1e-4, "channel {c} mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "channel {c} var {var}");
        }
    }

    #[test]
    fn batchnorm_inference_uses_running_stats() {
        let mut rng = StdRng::seed_from_u64(2);
        let bn = BatchNorm2d::new("bn", 2);
        // Run several training passes so running stats converge toward the
        // batch statistics.
        for _ in 0..50 {
            let mut ctx = Ctx::training();
            let mut x = tensor::Tensor::randn([8, 2, 4, 4], &mut rng);
            x.map_inplace(|v| v * 3.0 + 1.0); // mean 1, std 3
            let xv = ctx.input(x);
            bn.forward(&xv, &mut ctx);
        }
        let mut ctx = Ctx::inference();
        let mut x = tensor::Tensor::randn([8, 2, 4, 4], &mut rng);
        x.map_inplace(|v| v * 3.0 + 1.0);
        let y = bn.forward(&ctx.input(x), &mut ctx).value();
        let mean = y.mean_all();
        assert!(mean.abs() < 0.3, "inference mean {mean} should be near 0");
    }

    #[test]
    fn batchnorm_grads_flow_to_gamma_beta() {
        let mut rng = StdRng::seed_from_u64(3);
        let bn = BatchNorm2d::new("bn", 2);
        let mut ctx = Ctx::training();
        let x = ctx.input(tensor::Tensor::randn([2, 2, 3, 3], &mut rng));
        let y = bn.forward(&x, &mut ctx);
        let loss = y.mul(&y).sum_all();
        let grads = loss.backward();
        for (p, v) in ctx.bindings() {
            assert!(grads.get(v).is_some(), "no grad for {}", p.name());
        }
    }

    #[test]
    fn layernorm_normalizes_rows() {
        let mut rng = StdRng::seed_from_u64(4);
        let ln = LayerNorm::new("ln", 16);
        let mut ctx = Ctx::inference();
        let mut x = tensor::Tensor::randn([3, 16], &mut rng);
        x.map_inplace(|v| v * 5.0 - 2.0);
        let y = ln.forward(&ctx.input(x), &mut ctx).value();
        for r in 0..3 {
            let row = &y.as_slice()[r * 16..(r + 1) * 16];
            let mean: f32 = row.iter().sum::<f32>() / 16.0;
            let var: f32 = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 16.0;
            assert!(mean.abs() < 1e-4);
            assert!((var - 1.0).abs() < 1e-2);
        }
    }

    #[test]
    fn layernorm_3d_input() {
        let mut rng = StdRng::seed_from_u64(5);
        let ln = LayerNorm::new("ln", 8);
        let mut ctx = Ctx::inference();
        let x = ctx.input(tensor::Tensor::randn([2, 4, 8], &mut rng));
        let y = ln.forward(&x, &mut ctx);
        assert_eq!(y.shape().dims(), &[2, 4, 8]);
    }
}
