//! Weight initialisation schemes.

use rand::Rng;
use tensor::Tensor;

/// Kaiming-He normal initialisation for ReLU networks:
/// `N(0, sqrt(2 / fan_in))`.
pub fn kaiming_normal(shape: &[usize], fan_in: usize, rng: &mut impl Rng) -> Tensor {
    let std = (2.0 / fan_in as f32).sqrt();
    let mut t = Tensor::randn(shape.to_vec(), rng);
    t.map_inplace(|x| x * std);
    t
}

/// Xavier/Glorot uniform initialisation: `U(−a, a)` with
/// `a = sqrt(6 / (fan_in + fan_out))`.
pub fn xavier_uniform(
    shape: &[usize],
    fan_in: usize,
    fan_out: usize,
    rng: &mut impl Rng,
) -> Tensor {
    let a = (6.0 / (fan_in + fan_out) as f32).sqrt();
    Tensor::rand_uniform(shape.to_vec(), -a, a, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn kaiming_std_scales_with_fan_in() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = kaiming_normal(&[1000, 100], 100, &mut rng);
        let mean = t.mean_all();
        let var = t.map(|x| (x - mean) * (x - mean)).mean_all();
        let want = 2.0 / 100.0;
        assert!((var - want).abs() < want * 0.1, "var {var} want {want}");
    }

    #[test]
    fn xavier_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let t = xavier_uniform(&[64, 64], 64, 64, &mut rng);
        let a = (6.0 / 128.0f32).sqrt();
        assert!(t.max_all() <= a && t.min_all() >= -a);
        assert!(t.max_all() > a * 0.8, "should fill the range");
    }
}
