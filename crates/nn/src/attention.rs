//! Transformer building blocks: multi-head self-attention, MLP, encoder
//! block, and patch embedding — enough to build the DeiT-style vision
//! transformers the paper evaluates.

use crate::layers::Linear;
use crate::module::{Ctx, LayerKind, Module, Param};
use crate::norm::LayerNorm;
use rand::Rng;
use tensor::{Tensor, Var};

/// Multi-head self-attention over `[B, T, D]` token sequences.
///
/// The Q/K/V/output projections are [`Linear`] layers and therefore
/// instrumented individually (the paper's LINEAR default); the attention
/// matrix itself is exposed to hooks under [`LayerKind::Attention`].
#[derive(Debug)]
pub struct MultiHeadAttention {
    name: String,
    q: Linear,
    k: Linear,
    v: Linear,
    proj: Linear,
    heads: usize,
    dim: usize,
}

impl MultiHeadAttention {
    /// Creates an attention block with `heads` heads over model width `dim`.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is not divisible by `heads`.
    pub fn new(name: impl Into<String>, dim: usize, heads: usize, rng: &mut impl Rng) -> Self {
        assert_eq!(dim % heads, 0, "dim {dim} not divisible by heads {heads}");
        let name = name.into();
        MultiHeadAttention {
            q: Linear::new(format!("{name}.q"), dim, dim, true, rng),
            k: Linear::new(format!("{name}.k"), dim, dim, true, rng),
            v: Linear::new(format!("{name}.v"), dim, dim, true, rng),
            proj: Linear::new(format!("{name}.proj"), dim, dim, true, rng),
            heads,
            dim,
            name,
        }
    }

    fn split_heads(&self, x: &Var, b: usize, t: usize) -> Var {
        let dh = self.dim / self.heads;
        x.reshape([b, t, self.heads, dh]).permute(&[0, 2, 1, 3]).reshape([b * self.heads, t, dh])
    }
}

impl Module for MultiHeadAttention {
    fn forward(&self, x: &Var, ctx: &mut Ctx) -> Var {
        let dims = x.shape().dims().to_vec();
        assert_eq!(dims.len(), 3, "{}: expected [B,T,D]", self.name);
        let (b, t, d) = (dims[0], dims[1], dims[2]);
        assert_eq!(d, self.dim, "{}: model width mismatch", self.name);
        let dh = self.dim / self.heads;

        let q = self.split_heads(&self.q.forward(x, ctx), b, t);
        let k = self.split_heads(&self.k.forward(x, ctx), b, t);
        let v = self.split_heads(&self.v.forward(x, ctx), b, t);

        let scores = q.bmm(&k.permute(&[0, 2, 1])).scale(1.0 / (dh as f32).sqrt());
        let attn = scores.softmax_lastdim();
        let attn = ctx.hook_output(LayerKind::Attention, &format!("{}.attn", self.name), attn);

        let out =
            attn.bmm(&v).reshape([b, self.heads, t, dh]).permute(&[0, 2, 1, 3]).reshape([b, t, d]);
        self.proj.forward(&out, ctx)
    }

    fn visit_params(&self, f: &mut dyn FnMut(&Param)) {
        self.q.visit_params(f);
        self.k.visit_params(f);
        self.v.visit_params(f);
        self.proj.visit_params(f);
    }
}

/// The transformer MLP: `Linear → GELU → Linear`.
#[derive(Debug)]
pub struct Mlp {
    fc1: Linear,
    fc2: Linear,
}

impl Mlp {
    /// Creates an MLP with hidden width `hidden`.
    pub fn new(name: &str, dim: usize, hidden: usize, rng: &mut impl Rng) -> Self {
        Mlp {
            fc1: Linear::new(format!("{name}.fc1"), dim, hidden, true, rng),
            fc2: Linear::new(format!("{name}.fc2"), hidden, dim, true, rng),
        }
    }
}

impl Module for Mlp {
    fn forward(&self, x: &Var, ctx: &mut Ctx) -> Var {
        let h = self.fc1.forward(x, ctx).gelu();
        self.fc2.forward(&h, ctx)
    }

    fn visit_params(&self, f: &mut dyn FnMut(&Param)) {
        self.fc1.visit_params(f);
        self.fc2.visit_params(f);
    }
}

/// A pre-norm transformer encoder block:
/// `x + Attn(LN(x))` then `x + MLP(LN(x))`.
#[derive(Debug)]
pub struct TransformerBlock {
    ln1: LayerNorm,
    attn: MultiHeadAttention,
    ln2: LayerNorm,
    mlp: Mlp,
}

impl TransformerBlock {
    /// Creates a block with MLP expansion factor `mlp_ratio`.
    pub fn new(name: &str, dim: usize, heads: usize, mlp_ratio: usize, rng: &mut impl Rng) -> Self {
        TransformerBlock {
            ln1: LayerNorm::new(format!("{name}.ln1"), dim),
            attn: MultiHeadAttention::new(format!("{name}.attn"), dim, heads, rng),
            ln2: LayerNorm::new(format!("{name}.ln2"), dim),
            mlp: Mlp::new(&format!("{name}.mlp"), dim, dim * mlp_ratio, rng),
        }
    }
}

impl Module for TransformerBlock {
    fn forward(&self, x: &Var, ctx: &mut Ctx) -> Var {
        let a = self.attn.forward(&self.ln1.forward(x, ctx), ctx);
        let x = x.add(&a);
        let m = self.mlp.forward(&self.ln2.forward(&x, ctx), ctx);
        x.add(&m)
    }

    fn visit_params(&self, f: &mut dyn FnMut(&Param)) {
        self.ln1.visit_params(f);
        self.attn.visit_params(f);
        self.ln2.visit_params(f);
        self.mlp.visit_params(f);
    }
}

/// Patch embedding: a strided convolution that tokenises `[B, C, H, W]`
/// into `[B, T, D]` with `T = (H/p)·(W/p)`, plus a learnable positional
/// embedding.
#[derive(Debug)]
pub struct PatchEmbed {
    conv: crate::layers::Conv2d,
    pos: Param,
    dim: usize,
}

impl PatchEmbed {
    /// Creates a patch embedding for `img`-pixel square inputs with
    /// `patch`-pixel patches.
    ///
    /// # Panics
    ///
    /// Panics if `img` is not divisible by `patch`.
    pub fn new(
        name: &str,
        in_ch: usize,
        img: usize,
        patch: usize,
        dim: usize,
        rng: &mut impl Rng,
    ) -> Self {
        assert_eq!(img % patch, 0, "image {img} not divisible by patch {patch}");
        let tokens = (img / patch) * (img / patch);
        let mut pos = Tensor::randn([1, tokens, dim], rng);
        pos.map_inplace(|x| x * 0.02);
        PatchEmbed {
            conv: crate::layers::Conv2d::new(
                format!("{name}.proj"),
                in_ch,
                dim,
                patch,
                patch,
                0,
                true,
                rng,
            ),
            pos: Param::new(format!("{name}.pos"), pos),
            dim,
        }
    }
}

impl Module for PatchEmbed {
    fn forward(&self, x: &Var, ctx: &mut Ctx) -> Var {
        let y = self.conv.forward(x, ctx); // [B, D, H/p, W/p]
        let dims = y.shape().dims().to_vec();
        let (b, d, h, w) = (dims[0], dims[1], dims[2], dims[3]);
        let tokens = y.reshape([b, d, h * w]).permute(&[0, 2, 1]); // [B, T, D]
        let pos = ctx.var_of(&self.pos);
        debug_assert_eq!(d, self.dim);
        tokens.add(&pos)
    }

    fn visit_params(&self, f: &mut dyn FnMut(&Param)) {
        self.conv.visit_params(f);
        f(&self.pos);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn attention_preserves_shape() {
        let mut rng = StdRng::seed_from_u64(1);
        let attn = MultiHeadAttention::new("a", 16, 4, &mut rng);
        let mut ctx = Ctx::inference();
        let x = ctx.input(Tensor::randn([2, 5, 16], &mut rng));
        let y = attn.forward(&x, &mut ctx);
        assert_eq!(y.shape().dims(), &[2, 5, 16]);
        // q, k, v, proj hooked as Linear + 1 Attention hook point.
        assert_eq!(ctx.layers_seen(), 5);
    }

    #[test]
    fn attention_rows_mix_tokens() {
        // With non-trivial weights, each output token depends on every
        // input token: perturbing token 0 must change token 3's output.
        let mut rng = StdRng::seed_from_u64(2);
        let attn = MultiHeadAttention::new("a", 8, 2, &mut rng);
        let base = Tensor::randn([1, 4, 8], &mut rng);
        let mut ctx1 = Ctx::inference();
        let y1 = attn.forward(&ctx1.input(base.clone()), &mut ctx1).value();
        let mut perturbed = base.clone();
        perturbed.as_mut_slice()[0] += 1.0;
        let mut ctx2 = Ctx::inference();
        let y2 = attn.forward(&ctx2.input(perturbed), &mut ctx2).value();
        let tok3_diff: f32 = (0..8).map(|d| (y1.at(&[0, 3, d]) - y2.at(&[0, 3, d])).abs()).sum();
        assert!(tok3_diff > 1e-6, "token 3 unaffected by token 0");
    }

    #[test]
    fn transformer_block_trains() {
        let mut rng = StdRng::seed_from_u64(3);
        let block = TransformerBlock::new("blk", 8, 2, 2, &mut rng);
        let mut ctx = Ctx::training();
        let x = ctx.input(Tensor::randn([2, 3, 8], &mut rng));
        let y = block.forward(&x, &mut ctx);
        let loss = y.mul(&y).sum_all();
        let grads = loss.backward();
        let mut missing = Vec::new();
        for (p, v) in ctx.bindings() {
            if grads.get(v).is_none() {
                missing.push(p.name().to_string());
            }
        }
        assert!(missing.is_empty(), "params without grads: {missing:?}");
    }

    #[test]
    fn patch_embed_tokenizes() {
        let mut rng = StdRng::seed_from_u64(4);
        let pe = PatchEmbed::new("pe", 3, 16, 4, 32, &mut rng);
        let mut ctx = Ctx::inference();
        let x = ctx.input(Tensor::randn([2, 3, 16, 16], &mut rng));
        let y = pe.forward(&x, &mut ctx);
        assert_eq!(y.shape().dims(), &[2, 16, 32]); // 4x4 patches → 16 tokens
    }

    #[test]
    fn softmax_attention_rows_sum_to_one() {
        let mut rng = StdRng::seed_from_u64(5);
        let attn = MultiHeadAttention::new("a", 8, 2, &mut rng);
        // Capture attention via a hook.
        use crate::module::{ForwardHook, LayerInfo, LayerKind};
        use std::sync::{Arc, Mutex};
        struct Capture(Mutex<Option<Tensor>>);
        impl ForwardHook for Capture {
            fn on_output(&self, l: &LayerInfo, out: &Tensor) -> Option<Tensor> {
                if l.kind == LayerKind::Attention {
                    *self.0.lock().unwrap() = Some(out.clone());
                }
                None
            }
            fn applies_to(&self, k: LayerKind) -> bool {
                k == LayerKind::Attention
            }
        }
        let cap = Arc::new(Capture(Mutex::new(None)));
        let mut ctx = Ctx::inference();
        ctx.add_hook(cap.clone());
        let x = ctx.input(Tensor::randn([1, 4, 8], &mut rng));
        attn.forward(&x, &mut ctx);
        let a = cap.0.lock().unwrap().clone().expect("attention captured");
        assert_eq!(a.dims(), &[2, 4, 4]); // B*H=2 heads
        for row in a.as_slice().chunks(4) {
            let s: f32 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
    }
}
