//! Core layers: convolution, linear, activations, pooling, and sequencing.

use crate::init::kaiming_normal;
use crate::module::{Ctx, LayerKind, Module, Param};
use rand::Rng;
use tensor::{Conv2dSpec, Tensor, Var};

/// 2-D convolution layer (NCHW).
#[derive(Debug)]
pub struct Conv2d {
    name: String,
    weight: Param,
    bias: Option<Param>,
    spec: Conv2dSpec,
}

impl Conv2d {
    /// Creates a convolution with Kaiming-initialised weights.
    #[allow(clippy::too_many_arguments)] // mirrors the torch.nn.Conv2d signature
    pub fn new(
        name: impl Into<String>,
        in_ch: usize,
        out_ch: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        bias: bool,
        rng: &mut impl Rng,
    ) -> Self {
        let name = name.into();
        let fan_in = in_ch * kernel * kernel;
        let weight = Param::new(
            format!("{name}.weight"),
            kaiming_normal(&[out_ch, in_ch, kernel, kernel], fan_in, rng),
        );
        let bias = bias.then(|| Param::new(format!("{name}.bias"), Tensor::zeros([out_ch])));
        Conv2d { name, weight, bias, spec: Conv2dSpec::new(kernel, stride, padding) }
    }

    /// The layer's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The weight parameter.
    pub fn weight(&self) -> &Param {
        &self.weight
    }
}

impl Module for Conv2d {
    fn forward(&self, x: &Var, ctx: &mut Ctx) -> Var {
        let w = ctx.var_of(&self.weight);
        let b = self.bias.as_ref().map(|b| ctx.var_of(b));
        let y = x.conv2d(&w, b.as_ref(), self.spec);
        ctx.hook_output(LayerKind::Conv, &self.name, y)
    }

    fn visit_params(&self, f: &mut dyn FnMut(&Param)) {
        f(&self.weight);
        if let Some(b) = &self.bias {
            f(b);
        }
    }
}

/// Fully-connected layer. Accepts inputs of any rank ≥ 2 by flattening
/// leading dimensions.
#[derive(Debug)]
pub struct Linear {
    name: String,
    weight: Param, // [in, out]
    bias: Option<Param>,
}

impl Linear {
    /// Creates a linear layer with Kaiming-initialised weights.
    pub fn new(
        name: impl Into<String>,
        in_features: usize,
        out_features: usize,
        bias: bool,
        rng: &mut impl Rng,
    ) -> Self {
        let name = name.into();
        let weight = Param::new(
            format!("{name}.weight"),
            kaiming_normal(&[in_features, out_features], in_features, rng),
        );
        let bias = bias.then(|| Param::new(format!("{name}.bias"), Tensor::zeros([out_features])));
        Linear { name, weight, bias }
    }

    /// The layer's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The weight parameter (`[in, out]`).
    pub fn weight(&self) -> &Param {
        &self.weight
    }

    /// Applies the affine map without the instrumentation hook (used
    /// internally by attention, which hooks at coarser granularity).
    pub fn apply_raw(&self, x: &Var, ctx: &mut Ctx) -> Var {
        let w = ctx.var_of(&self.weight);
        let dims = x.shape().dims().to_vec();
        let nd = dims.len();
        assert!(nd >= 2, "Linear expects rank ≥ 2, got {:?}", dims);
        let in_f = dims[nd - 1];
        let lead: usize = dims[..nd - 1].iter().product();
        let flat = x.reshape([lead, in_f]);
        let mut y = flat.matmul(&w);
        if let Some(b) = &self.bias {
            let bv = ctx.var_of(b);
            y = y.add(&bv);
        }
        let out_f = y.shape().dims()[1];
        let mut out_dims = dims;
        out_dims[nd - 1] = out_f;
        y.reshape(out_dims)
    }
}

impl Module for Linear {
    fn forward(&self, x: &Var, ctx: &mut Ctx) -> Var {
        let y = self.apply_raw(x, ctx);
        ctx.hook_output(LayerKind::Linear, &self.name, y)
    }

    fn visit_params(&self, f: &mut dyn FnMut(&Param)) {
        f(&self.weight);
        if let Some(b) = &self.bias {
            f(b);
        }
    }
}

/// ReLU activation.
#[derive(Debug, Default)]
pub struct Relu {
    name: String,
}

impl Relu {
    /// Creates a named ReLU.
    pub fn new(name: impl Into<String>) -> Self {
        Relu { name: name.into() }
    }
}

impl Module for Relu {
    fn forward(&self, x: &Var, ctx: &mut Ctx) -> Var {
        ctx.hook_output(LayerKind::Activation, &self.name, x.relu())
    }

    fn visit_params(&self, _f: &mut dyn FnMut(&Param)) {}
}

/// GELU activation (tanh approximation).
#[derive(Debug, Default)]
pub struct Gelu {
    name: String,
}

impl Gelu {
    /// Creates a named GELU.
    pub fn new(name: impl Into<String>) -> Self {
        Gelu { name: name.into() }
    }
}

impl Module for Gelu {
    fn forward(&self, x: &Var, ctx: &mut Ctx) -> Var {
        ctx.hook_output(LayerKind::Activation, &self.name, x.gelu())
    }

    fn visit_params(&self, _f: &mut dyn FnMut(&Param)) {}
}

/// Sigmoid activation.
#[derive(Debug, Default)]
pub struct Sigmoid {
    name: String,
}

impl Sigmoid {
    /// Creates a named sigmoid.
    pub fn new(name: impl Into<String>) -> Self {
        Sigmoid { name: name.into() }
    }
}

impl Module for Sigmoid {
    fn forward(&self, x: &Var, ctx: &mut Ctx) -> Var {
        ctx.hook_output(LayerKind::Activation, &self.name, x.sigmoid())
    }

    fn visit_params(&self, _f: &mut dyn FnMut(&Param)) {}
}

/// Tanh activation.
#[derive(Debug, Default)]
pub struct Tanh {
    name: String,
}

impl Tanh {
    /// Creates a named tanh.
    pub fn new(name: impl Into<String>) -> Self {
        Tanh { name: name.into() }
    }
}

impl Module for Tanh {
    fn forward(&self, x: &Var, ctx: &mut Ctx) -> Var {
        ctx.hook_output(LayerKind::Activation, &self.name, x.tanh())
    }

    fn visit_params(&self, _f: &mut dyn FnMut(&Param)) {}
}

/// SiLU / swish activation.
#[derive(Debug, Default)]
pub struct Silu {
    name: String,
}

impl Silu {
    /// Creates a named SiLU.
    pub fn new(name: impl Into<String>) -> Self {
        Silu { name: name.into() }
    }
}

impl Module for Silu {
    fn forward(&self, x: &Var, ctx: &mut Ctx) -> Var {
        ctx.hook_output(LayerKind::Activation, &self.name, x.silu())
    }

    fn visit_params(&self, _f: &mut dyn FnMut(&Param)) {}
}

/// Inverted dropout: active only in training passes, where surviving
/// activations are scaled by `1/(1−p)` so inference needs no rescaling.
#[derive(Debug)]
pub struct Dropout {
    prob: f32,
    // Mutex (not RefCell) so Dropout-bearing modules stay `Sync` for the
    // parallel campaign executor; uncontended in practice since training
    // passes are single-threaded.
    rng: std::sync::Mutex<rand::rngs::StdRng>,
}

impl Dropout {
    /// Creates a dropout layer with drop probability `prob`, seeded for
    /// reproducibility.
    ///
    /// # Panics
    ///
    /// Panics if `prob ∉ [0, 1)`.
    pub fn new(prob: f32, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&prob), "drop probability {prob} out of [0,1)");
        use rand::SeedableRng;
        Dropout { prob, rng: std::sync::Mutex::new(rand::rngs::StdRng::seed_from_u64(seed)) }
    }
}

impl Module for Dropout {
    fn forward(&self, x: &Var, ctx: &mut Ctx) -> Var {
        if !ctx.is_training() || self.prob == 0.0 {
            return x.clone();
        }
        let keep = 1.0 - self.prob;
        let mut rng = self.rng.lock().unwrap_or_else(|p| p.into_inner());
        let mask = Tensor::from_vec(
            (0..x.shape().numel())
                .map(|_| if rng.gen_range(0.0f32..1.0) < keep { 1.0 / keep } else { 0.0 })
                .collect(),
            x.shape().clone(),
        );
        let mask = ctx.constant(mask);
        x.mul(&mask)
    }

    fn visit_params(&self, _f: &mut dyn FnMut(&Param)) {}
}

/// 2-D average pooling.
#[derive(Debug)]
pub struct AvgPool2d {
    name: String,
    kernel: usize,
    stride: usize,
}

impl AvgPool2d {
    /// Creates an average-pool layer.
    pub fn new(name: impl Into<String>, kernel: usize, stride: usize) -> Self {
        AvgPool2d { name: name.into(), kernel, stride }
    }
}

impl Module for AvgPool2d {
    fn forward(&self, x: &Var, ctx: &mut Ctx) -> Var {
        ctx.hook_output(LayerKind::Pool, &self.name, x.avgpool2d(self.kernel, self.stride))
    }

    fn visit_params(&self, _f: &mut dyn FnMut(&Param)) {}
}

/// 2-D max pooling.
#[derive(Debug)]
pub struct MaxPool2d {
    name: String,
    kernel: usize,
    stride: usize,
}

impl MaxPool2d {
    /// Creates a max-pool layer.
    pub fn new(name: impl Into<String>, kernel: usize, stride: usize) -> Self {
        MaxPool2d { name: name.into(), kernel, stride }
    }
}

impl Module for MaxPool2d {
    fn forward(&self, x: &Var, ctx: &mut Ctx) -> Var {
        ctx.hook_output(LayerKind::Pool, &self.name, x.maxpool2d(self.kernel, self.stride))
    }

    fn visit_params(&self, _f: &mut dyn FnMut(&Param)) {}
}

/// Global average pooling `[N,C,H,W] → [N,C]`.
#[derive(Debug, Default)]
pub struct GlobalAvgPool {
    name: String,
}

impl GlobalAvgPool {
    /// Creates a global-average-pool layer.
    pub fn new(name: impl Into<String>) -> Self {
        GlobalAvgPool { name: name.into() }
    }
}

impl Module for GlobalAvgPool {
    fn forward(&self, x: &Var, ctx: &mut Ctx) -> Var {
        ctx.hook_output(LayerKind::Pool, &self.name, x.global_avg_pool())
    }

    fn visit_params(&self, _f: &mut dyn FnMut(&Param)) {}
}

/// Flattens all dimensions after the first.
#[derive(Debug, Default)]
pub struct Flatten;

impl Module for Flatten {
    fn forward(&self, x: &Var, _ctx: &mut Ctx) -> Var {
        let dims = x.shape().dims().to_vec();
        let rest: usize = dims[1..].iter().product();
        x.reshape([dims[0], rest])
    }

    fn visit_params(&self, _f: &mut dyn FnMut(&Param)) {}
}

/// A sequence of modules applied in order.
pub struct Sequential {
    modules: Vec<Box<dyn Module>>,
}

impl Sequential {
    /// Creates an empty sequence.
    pub fn new() -> Self {
        Sequential { modules: Vec::new() }
    }

    /// Appends a module (builder style).
    pub fn push(mut self, m: impl Module + 'static) -> Self {
        self.modules.push(Box::new(m));
        self
    }

    /// Number of child modules.
    pub fn len(&self) -> usize {
        self.modules.len()
    }

    /// True if the sequence is empty.
    pub fn is_empty(&self) -> bool {
        self.modules.is_empty()
    }
}

impl Default for Sequential {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Sequential {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Sequential({} modules)", self.modules.len())
    }
}

impl Module for Sequential {
    fn forward(&self, x: &Var, ctx: &mut Ctx) -> Var {
        let mut cur = x.clone();
        for m in &self.modules {
            cur = m.forward(&cur, ctx);
        }
        cur
    }

    fn visit_params(&self, f: &mut dyn FnMut(&Param)) {
        for m in &self.modules {
            m.visit_params(f);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn linear_forward_shape_and_bias() {
        let mut rng = StdRng::seed_from_u64(1);
        let fc = Linear::new("fc", 4, 3, true, &mut rng);
        let mut ctx = Ctx::inference();
        let x = ctx.input(Tensor::ones([2, 4]));
        let y = fc.forward(&x, &mut ctx);
        assert_eq!(y.shape().dims(), &[2, 3]);
        assert_eq!(ctx.layers_seen(), 1);
    }

    #[test]
    fn linear_handles_3d_input() {
        let mut rng = StdRng::seed_from_u64(2);
        let fc = Linear::new("fc", 8, 5, true, &mut rng);
        let mut ctx = Ctx::inference();
        let x = ctx.input(Tensor::ones([2, 3, 8]));
        let y = fc.forward(&x, &mut ctx);
        assert_eq!(y.shape().dims(), &[2, 3, 5]);
    }

    #[test]
    fn conv_forward_shape() {
        let mut rng = StdRng::seed_from_u64(3);
        let conv = Conv2d::new("c", 3, 8, 3, 1, 1, true, &mut rng);
        let mut ctx = Ctx::inference();
        let x = ctx.input(Tensor::ones([2, 3, 8, 8]));
        let y = conv.forward(&x, &mut ctx);
        assert_eq!(y.shape().dims(), &[2, 8, 8, 8]);
    }

    #[test]
    fn sequential_composes_and_collects_params() {
        let mut rng = StdRng::seed_from_u64(4);
        let net = Sequential::new()
            .push(Conv2d::new("c1", 1, 4, 3, 1, 1, false, &mut rng))
            .push(Relu::new("r1"))
            .push(GlobalAvgPool::new("gap"))
            .push(Linear::new("fc", 4, 2, true, &mut rng));
        let mut ctx = Ctx::inference();
        let x = ctx.input(Tensor::ones([1, 1, 6, 6]));
        let y = net.forward(&x, &mut ctx);
        assert_eq!(y.shape().dims(), &[1, 2]);
        // conv.weight + fc.weight + fc.bias
        assert_eq!(net.params().len(), 3);
        assert_eq!(net.param_count(), 4 * 9 + 4 * 2 + 2);
    }

    #[test]
    fn training_pass_produces_grads_for_all_params() {
        let mut rng = StdRng::seed_from_u64(5);
        let net = Sequential::new()
            .push(Conv2d::new("c1", 1, 2, 3, 1, 1, true, &mut rng))
            .push(Relu::new("r"))
            .push(GlobalAvgPool::new("gap"))
            .push(Linear::new("fc", 2, 2, true, &mut rng));
        let mut ctx = Ctx::training();
        let x = ctx.input(Tensor::ones([2, 1, 4, 4]));
        let logits = net.forward(&x, &mut ctx);
        let loss = logits.cross_entropy(&[0, 1]);
        let grads = loss.backward();
        for (p, v) in ctx.bindings() {
            assert!(grads.get(v).is_some(), "parameter {} received no gradient", p.name());
        }
    }

    #[test]
    fn extra_activations_forward() {
        let mut ctx = Ctx::inference();
        let x = ctx.input(Tensor::from_vec(vec![-2.0, 0.0, 2.0], [3]));
        let s = Sigmoid::new("s").forward(&x, &mut ctx).value();
        assert!((s.as_slice()[1] - 0.5).abs() < 1e-6);
        assert!(s.as_slice()[0] < 0.2 && s.as_slice()[2] > 0.8);
        let t = Tanh::new("t").forward(&x, &mut ctx).value();
        assert!((t.as_slice()[2] - 2.0f32.tanh()).abs() < 1e-6);
        let si = Silu::new("si").forward(&x, &mut ctx).value();
        assert!((si.as_slice()[1]).abs() < 1e-6);
    }

    #[test]
    fn dropout_inference_is_identity_training_is_not() {
        let d = Dropout::new(0.5, 7);
        let x0 = Tensor::ones([200]);
        let mut infer = Ctx::inference();
        let xi = infer.input(x0.clone());
        assert_eq!(d.forward(&xi, &mut infer).value(), x0);
        let mut train = Ctx::training();
        let xt = train.input(x0.clone());
        let y = d.forward(&xt, &mut train).value();
        let zeros = y.as_slice().iter().filter(|&&v| v == 0.0).count();
        assert!((60..140).contains(&zeros), "dropped {zeros}/200 at p=0.5");
        // Survivors are scaled by 1/keep.
        assert!(y.as_slice().iter().all(|&v| v == 0.0 || (v - 2.0).abs() < 1e-6));
        // Expectation is preserved (within sampling noise).
        assert!((y.mean_all() - 1.0).abs() < 0.25);
    }

    #[test]
    fn avgpool_layer_shape_and_value() {
        let mut ctx = Ctx::inference();
        let x = ctx.input(Tensor::ones([1, 2, 4, 4]));
        let y = AvgPool2d::new("ap", 2, 2).forward(&x, &mut ctx);
        assert_eq!(y.shape().dims(), &[1, 2, 2, 2]);
        assert_eq!(y.value().as_slice()[0], 1.0);
    }

    #[test]
    fn flatten_shapes() {
        let mut ctx = Ctx::inference();
        let x = ctx.input(Tensor::ones([2, 3, 4, 5]));
        let y = Flatten.forward(&x, &mut ctx);
        assert_eq!(y.shape().dims(), &[2, 60]);
    }

    #[test]
    fn maxpool_halves_spatial() {
        let mut ctx = Ctx::inference();
        let x = ctx.input(Tensor::ones([1, 2, 8, 8]));
        let y = MaxPool2d::new("mp", 2, 2).forward(&x, &mut ctx);
        assert_eq!(y.shape().dims(), &[1, 2, 4, 4]);
    }

    #[test]
    fn conv_forward_reuses_im2col_workspace() {
        // Repeated Conv2d forwards on one thread must serve their im2col
        // scratch from the workspace pool instead of reallocating — the
        // inference-loop guarantee the campaign executor relies on.
        let _serial = tensor::parallel::with_threads(1);
        let mut rng = StdRng::seed_from_u64(3);
        let conv = Conv2d::new("c", 2, 4, 3, 1, 1, true, &mut rng);
        let run = |conv: &Conv2d| {
            let mut ctx = Ctx::inference();
            let x = ctx.input(Tensor::ones([1, 2, 8, 8]));
            conv.forward(&x, &mut ctx)
        };
        let first = run(&conv);
        tensor::workspace::stats::reset();
        let second = run(&conv);
        let (hits, misses) = tensor::workspace::stats::snapshot();
        assert_eq!(first.value(), second.value(), "forward must be deterministic");
        assert!(hits > 0, "second forward allocated fresh scratch (hits=0, misses={misses})");
        assert_eq!(misses, 0, "warm pool should serve every take ({misses} misses)");
    }
}
