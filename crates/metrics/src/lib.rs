#![warn(missing_docs)]

//! # metrics — accuracy and resilience metrics
//!
//! Implements the two resilience metrics the paper supports (§IV-C):
//!
//! - **mismatch** — did the error-injected inference change the predicted
//!   class relative to the error-free inference? (binary, slow to converge)
//! - **ΔLoss** — the absolute difference in cross-entropy loss between the
//!   faulty and error-free inferences (continuous, converges
//!   asymptotically faster; Mahmoud et al.)
//!
//! plus top-1 accuracy and the running statistics used to compare their
//! convergence behaviour.

mod stats;

pub use stats::{ConvergenceTrace, EarlyStop, RunningStats, StratifiedStats};

use tensor::ops;
use tensor::Tensor;

/// Top-1 classification accuracy of `[N, C]` logits against targets.
///
/// # Panics
///
/// Panics if shapes disagree.
///
/// # Examples
///
/// ```
/// use metrics::accuracy;
/// use tensor::Tensor;
/// let logits = Tensor::from_vec(vec![2.0, 1.0, 0.0, 3.0], [2, 2]);
/// assert_eq!(accuracy(&logits, &[0, 1]), 1.0);
/// assert_eq!(accuracy(&logits, &[1, 1]), 0.5);
/// ```
pub fn accuracy(logits: &Tensor, targets: &[usize]) -> f32 {
    let preds = ops::argmax_rows(logits);
    assert_eq!(preds.len(), targets.len(), "batch size mismatch");
    if targets.is_empty() {
        return 0.0;
    }
    let correct = preds.iter().zip(targets).filter(|(p, t)| p == t).count();
    correct as f32 / targets.len() as f32
}

/// Per-sample cross-entropy losses of `[N, C]` logits against targets.
///
/// NaN/Inf logits (which fault injection can produce) yield large finite
/// losses: a NaN row is treated as maximally wrong (loss = 100.0),
/// matching how campaigns score corrupted inferences.
pub fn cross_entropy_per_sample(logits: &Tensor, targets: &[usize]) -> Vec<f32> {
    const PENALTY: f32 = 100.0;
    assert_eq!(logits.ndim(), 2, "expected [N, C] logits");
    let c = logits.dims()[1];
    assert_eq!(logits.dims()[0], targets.len(), "batch size mismatch");
    let logp = ops::log_softmax_lastdim(logits);
    targets
        .iter()
        .enumerate()
        .map(|(i, &t)| {
            let l = -logp.as_slice()[i * c + t];
            if l.is_finite() {
                l.min(PENALTY)
            } else {
                PENALTY
            }
        })
        .collect()
}

/// Mean cross-entropy loss over the batch.
pub fn cross_entropy(logits: &Tensor, targets: &[usize]) -> f32 {
    let per = cross_entropy_per_sample(logits, targets);
    if per.is_empty() {
        0.0
    } else {
        per.iter().sum::<f32>() / per.len() as f32
    }
}

/// The outcome of comparing one faulty inference against its golden run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InjectionOutcome {
    /// Fraction of samples whose top-1 prediction changed (the paper's
    /// mismatch metric; a single-inference campaign yields 0.0 or 1.0).
    pub mismatch_rate: f32,
    /// Mean |CE_faulty − CE_golden| over the batch (the ΔLoss metric).
    pub delta_loss: f32,
}

/// Compares faulty logits against golden logits under both metrics.
///
/// # Panics
///
/// Panics if the two logit tensors differ in shape or don't match
/// `targets`.
pub fn compare_outcomes(golden: &Tensor, faulty: &Tensor, targets: &[usize]) -> InjectionOutcome {
    assert_eq!(golden.shape(), faulty.shape(), "logit shape mismatch");
    let gp = ops::argmax_rows(golden);
    let fp = ops::argmax_rows(faulty);
    let mismatches = gp.iter().zip(&fp).filter(|(a, b)| a != b).count();
    let gl = cross_entropy_per_sample(golden, targets);
    let fl = cross_entropy_per_sample(faulty, targets);
    let n = targets.len().max(1);
    let delta: f32 = gl.iter().zip(&fl).map(|(a, b)| (a - b).abs()).sum::<f32>() / n as f32;
    InjectionOutcome { mismatch_rate: mismatches as f32 / n as f32, delta_loss: delta }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_perfect_and_zero() {
        let logits = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], [2, 2]);
        assert_eq!(accuracy(&logits, &[0, 1]), 1.0);
        assert_eq!(accuracy(&logits, &[1, 0]), 0.0);
    }

    #[test]
    fn cross_entropy_prefers_correct_class() {
        let good = Tensor::from_vec(vec![5.0, 0.0], [1, 2]);
        let bad = Tensor::from_vec(vec![0.0, 5.0], [1, 2]);
        assert!(cross_entropy(&good, &[0]) < cross_entropy(&bad, &[0]));
    }

    #[test]
    fn cross_entropy_matches_analytic() {
        // Uniform logits over C classes → CE = ln(C).
        let logits = Tensor::zeros([1, 4]);
        assert!((cross_entropy(&logits, &[2]) - (4.0f32).ln()).abs() < 1e-6);
    }

    #[test]
    fn nan_logits_get_penalty_not_nan() {
        let logits = Tensor::from_vec(vec![f32::NAN, 1.0], [1, 2]);
        let l = cross_entropy(&logits, &[0]);
        assert!(l.is_finite());
        assert!(l >= 99.0);
    }

    #[test]
    fn identical_runs_have_zero_outcome() {
        let logits = Tensor::from_vec(vec![1.0, 2.0, 3.0, 0.0, 1.0, 2.0], [2, 3]);
        let o = compare_outcomes(&logits, &logits, &[2, 2]);
        assert_eq!(o.mismatch_rate, 0.0);
        assert_eq!(o.delta_loss, 0.0);
    }

    #[test]
    fn masked_corruption_detected_by_delta_loss_not_mismatch() {
        // Corruption that perturbs confidence without flipping the argmax:
        // mismatch says "benign", ΔLoss is non-zero — the paper's argument
        // for ΔLoss's faster convergence.
        let golden = Tensor::from_vec(vec![4.0, 0.0], [1, 2]);
        let faulty = Tensor::from_vec(vec![1.0, 0.0], [1, 2]);
        let o = compare_outcomes(&golden, &faulty, &[0]);
        assert_eq!(o.mismatch_rate, 0.0);
        assert!(o.delta_loss > 0.1);
    }

    #[test]
    fn argmax_flip_counts_as_mismatch() {
        let golden = Tensor::from_vec(vec![2.0, 0.0, 2.0, 0.0], [2, 2]);
        let faulty = Tensor::from_vec(vec![0.0, 2.0, 2.0, 0.0], [2, 2]);
        let o = compare_outcomes(&golden, &faulty, &[0, 0]);
        assert_eq!(o.mismatch_rate, 0.5);
    }
}
