//! Running statistics and convergence tracking for injection campaigns.

/// Welford's online mean/variance accumulator.
///
/// # Examples
///
/// ```
/// use metrics::RunningStats;
/// let mut s = RunningStats::new();
/// for x in [1.0, 2.0, 3.0] {
///     s.push(x);
/// }
/// assert_eq!(s.mean(), 2.0);
/// assert_eq!(s.variance(), 1.0); // sample variance
/// ```
#[derive(Debug, Clone, Default)]
pub struct RunningStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: Option<f32>,
    max: Option<f32>,
    nan: u64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one observation.
    ///
    /// NaN observations are guarded: they are counted separately (see
    /// [`RunningStats::nan_count`]) and excluded from every aggregate, so
    /// one corrupted ΔLoss cannot poison a whole campaign's statistics
    /// (and the run manifest stays valid JSON, which has no NaN).
    pub fn push(&mut self, x: f32) {
        if x.is_nan() {
            self.nan += 1;
            return;
        }
        self.n += 1;
        let xf = x as f64;
        let d = xf - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (xf - self.mean);
        self.min = Some(self.min.map_or(x, |m| m.min(x)));
        self.max = Some(self.max.map_or(x, |m| m.max(x)));
    }

    /// Smallest observation, if any.
    pub fn min(&self) -> Option<f32> {
        self.min
    }

    /// Largest observation, if any.
    pub fn max(&self) -> Option<f32> {
        self.max
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0.0 when empty).
    pub fn mean(&self) -> f32 {
        self.mean as f32
    }

    /// Unbiased sample variance (0.0 with fewer than 2 observations).
    pub fn variance(&self) -> f32 {
        if self.n < 2 {
            0.0
        } else {
            (self.m2 / (self.n - 1) as f64) as f32
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f32 {
        self.variance().sqrt()
    }

    /// Standard error of the mean.
    pub fn std_error(&self) -> f32 {
        if self.n == 0 {
            0.0
        } else {
            self.std_dev() / (self.n as f32).sqrt()
        }
    }

    /// Half-width of the ~95% confidence interval for the mean
    /// (normal approximation, 1.96·SEM).
    pub fn ci95_half_width(&self) -> f32 {
        1.96 * self.std_error()
    }

    /// Number of NaN observations rejected by [`RunningStats::push`].
    pub fn nan_count(&self) -> u64 {
        self.nan
    }

    /// The plain-data summary embedded in run manifests
    /// ([`trace::RunManifest`]).
    pub fn summary(&self) -> trace::StatsSummary {
        trace::StatsSummary {
            count: self.n,
            mean: self.mean(),
            std_dev: self.std_dev(),
            min: self.min,
            max: self.max,
        }
    }
}

/// Statistical early-stopping rule for per-site campaign estimation: stop
/// sampling a site once the ~95% confidence interval around its running
/// mean is tight enough. This is how batched campaigns reach "equal
/// statistical power with fewer trials" — a site whose ΔLoss estimate has
/// already converged stops consuming forward passes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EarlyStop {
    /// Stop once `ci95_half_width() <= ci_half_width`.
    pub ci_half_width: f32,
    /// Never stop before this many observations — guards against a lucky
    /// low-variance prefix freezing the estimate too early.
    pub min_trials: u64,
}

impl EarlyStop {
    /// Default minimum trial count before a stop decision is allowed.
    pub const DEFAULT_MIN_TRIALS: u64 = 20;

    /// A rule that stops at the given CI half-width, with the default
    /// minimum trial count.
    pub fn new(ci_half_width: f32) -> Self {
        assert!(ci_half_width > 0.0, "CI half-width threshold must be positive");
        EarlyStop { ci_half_width, min_trials: Self::DEFAULT_MIN_TRIALS }
    }

    /// Overrides the minimum trial count.
    pub fn with_min_trials(mut self, n: u64) -> Self {
        self.min_trials = n;
        self
    }

    /// Whether an estimate with `count` observations and the given CI
    /// half-width has converged under this rule.
    pub fn converged(&self, count: u64, ci95_half_width: f32) -> bool {
        count >= self.min_trials && ci95_half_width <= self.ci_half_width
    }

    /// Stop decision for a plain (uniformly sampled) accumulator.
    pub fn should_stop(&self, stats: &RunningStats) -> bool {
        self.converged(stats.count(), stats.ci95_half_width())
    }

    /// Stop decision for a stratified estimator.
    pub fn should_stop_stratified(&self, stats: &StratifiedStats) -> bool {
        self.converged(stats.count(), stats.ci95_half_width())
    }
}

/// Unbiased population estimator over stratified samples.
///
/// Importance sampling oversamples high-impact strata (e.g. exponent bits);
/// recombining per-stratum means with the strata's *population* weights
/// recovers an unbiased estimate of the uniform-population mean:
/// `mean = Σ w_h · mean_h`, `SE² = Σ w_h² · var_h / n_h`.
///
/// A stratum with observations but zero weight contributes nothing; a
/// stratum with weight but no observations contributes nothing either (its
/// term is dropped — the estimate is then conditional on the sampled
/// strata, which early stopping's minimum-trial guard makes unlikely to
/// matter in practice).
#[derive(Debug, Clone)]
pub struct StratifiedStats {
    strata: Vec<(f64, RunningStats)>,
}

impl StratifiedStats {
    /// Creates an estimator over strata with the given population weights
    /// (fractions of the population each stratum covers).
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty, has a negative entry, or does not sum
    /// to ~1.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "need at least one stratum");
        let sum: f64 = weights.iter().sum();
        assert!(
            weights.iter().all(|&w| w >= 0.0) && (sum - 1.0).abs() < 1e-9,
            "population weights must be non-negative and sum to 1, got {weights:?}"
        );
        StratifiedStats { strata: weights.iter().map(|&w| (w, RunningStats::new())).collect() }
    }

    /// Adds one observation to stratum `s`.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    pub fn push(&mut self, s: usize, x: f32) {
        self.strata[s].1.push(x);
    }

    /// The per-stratum accumulator.
    pub fn stratum(&self, s: usize) -> &RunningStats {
        &self.strata[s].1
    }

    /// Total observations across strata.
    pub fn count(&self) -> u64 {
        self.strata.iter().map(|(_, s)| s.count()).sum()
    }

    /// The weighted population mean `Σ w_h · mean_h`.
    pub fn mean(&self) -> f32 {
        self.strata
            .iter()
            .filter(|(_, s)| s.count() > 0)
            .map(|(w, s)| w * s.mean() as f64)
            .sum::<f64>() as f32
    }

    /// Standard error of the stratified mean, `√(Σ w_h² · var_h / n_h)`.
    pub fn std_error(&self) -> f32 {
        self.strata
            .iter()
            .filter(|(_, s)| s.count() > 0)
            .map(|(w, s)| w * w * (s.variance() as f64) / s.count() as f64)
            .sum::<f64>()
            .sqrt() as f32
    }

    /// Half-width of the ~95% confidence interval (1.96·SE).
    pub fn ci95_half_width(&self) -> f32 {
        1.96 * self.std_error()
    }
}

/// Tracks how a campaign's running mean converges as injections accumulate
/// — used to reproduce the paper's claim that ΔLoss converges faster than
/// mismatch counting.
#[derive(Debug, Clone, Default)]
pub struct ConvergenceTrace {
    stats: RunningStats,
    trace: Vec<f32>,
}

impl ConvergenceTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one observation, recording the running mean after it.
    pub fn push(&mut self, x: f32) {
        self.stats.push(x);
        self.trace.push(self.stats.mean());
    }

    /// The running-mean trajectory.
    pub fn running_means(&self) -> &[f32] {
        &self.trace
    }

    /// Final statistics.
    pub fn stats(&self) -> &RunningStats {
        &self.stats
    }

    /// The smallest sample count after which every running mean stays
    /// within `tol · |final mean|` of the final mean. Returns the total
    /// count if the trace never settles (or is empty).
    ///
    /// This is the "injections needed to converge" comparison of the two
    /// metrics: lower is faster convergence.
    pub fn samples_to_converge(&self, tol: f32) -> usize {
        let n = self.trace.len();
        if n == 0 {
            return 0;
        }
        let target = *self.trace.last().unwrap();
        let band = tol * target.abs().max(1e-12);
        // Find the last index that is OUT of band; convergence starts after.
        let mut last_out = None;
        for (i, &m) in self.trace.iter().enumerate() {
            if (m - target).abs() > band {
                last_out = Some(i);
            }
        }
        match last_out {
            None => 1,
            Some(i) => (i + 2).min(n),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_naive() {
        let xs = [2.0f32, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut s = RunningStats::new();
        for &x in &xs {
            s.push(x);
        }
        let mean = xs.iter().sum::<f32>() / xs.len() as f32;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / (xs.len() - 1) as f32;
        assert!((s.mean() - mean).abs() < 1e-6);
        assert!((s.variance() - var).abs() < 1e-5);
        assert_eq!(s.count(), 8);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = RunningStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.std_error(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn min_max_track_extremes() {
        let mut s = RunningStats::new();
        for x in [3.0f32, -1.0, 7.5, 0.0] {
            s.push(x);
        }
        assert_eq!(s.min(), Some(-1.0));
        assert_eq!(s.max(), Some(7.5));
    }

    #[test]
    fn ci_shrinks_with_samples() {
        let mut small = RunningStats::new();
        let mut large = RunningStats::new();
        for i in 0..10 {
            small.push((i % 3) as f32);
        }
        for i in 0..1000 {
            large.push((i % 3) as f32);
        }
        assert!(large.ci95_half_width() < small.ci95_half_width());
    }

    #[test]
    fn continuous_metric_converges_faster_than_binary() {
        // Simulate the paper's §IV-C claim: a continuous observable with
        // the same mean as a rare binary one settles in fewer samples.
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        let p = 0.05f32; // rare mismatches
        let mut binary = ConvergenceTrace::new();
        let mut continuous = ConvergenceTrace::new();
        for _ in 0..4000 {
            let hit = rng.gen::<f32>() < p;
            binary.push(if hit { 1.0 } else { 0.0 });
            // Continuous signal centred on the same mean with small noise.
            continuous.push(p + rng.gen_range(-0.01f32..0.01));
        }
        let cb = binary.samples_to_converge(0.1);
        let cc = continuous.samples_to_converge(0.1);
        assert!(cc < cb, "continuous {cc} should converge before binary {cb}");
    }

    #[test]
    fn convergence_of_constant_is_immediate() {
        let mut t = ConvergenceTrace::new();
        for _ in 0..10 {
            t.push(2.5);
        }
        assert_eq!(t.samples_to_converge(0.01), 1);
    }

    #[test]
    fn summary_of_empty_and_single_sample() {
        // 0 samples: everything zero/None — a valid, serializable summary.
        let empty = RunningStats::new().summary();
        assert_eq!(empty.count, 0);
        assert_eq!(empty.mean, 0.0);
        assert_eq!(empty.std_dev, 0.0);
        assert_eq!(empty.min, None);
        assert_eq!(empty.max, None);
        // 1 sample: mean = the sample, variance undefined → 0.
        let mut one = RunningStats::new();
        one.push(3.5);
        let s = one.summary();
        assert_eq!(s.count, 1);
        assert_eq!(s.mean, 3.5);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.min, Some(3.5));
        assert_eq!(s.max, Some(3.5));
    }

    #[test]
    fn nan_observations_are_guarded() {
        let mut s = RunningStats::new();
        s.push(1.0);
        s.push(f32::NAN);
        s.push(3.0);
        assert_eq!(s.count(), 2, "NaN must not count as an observation");
        assert_eq!(s.nan_count(), 1);
        assert_eq!(s.mean(), 2.0);
        assert_eq!(s.min(), Some(1.0));
        assert_eq!(s.max(), Some(3.0));
        assert!(s.summary().mean.is_finite());
        // A NaN-only accumulator stays empty (and serializes cleanly).
        let mut only_nan = RunningStats::new();
        only_nan.push(f32::NAN);
        assert_eq!(only_nan.count(), 0);
        assert_eq!(only_nan.summary(), RunningStats::new().summary());
        // ±Inf is not NaN: still admitted (the campaign's ΔLoss is already
        // clamped finite upstream; the guard targets NaN poisoning only).
        let mut inf = RunningStats::new();
        inf.push(f32::INFINITY);
        assert_eq!(inf.count(), 1);
    }

    #[test]
    fn early_stop_requires_min_trials_and_tight_ci() {
        let rule = EarlyStop::new(0.1).with_min_trials(10);
        let mut s = RunningStats::new();
        for _ in 0..5 {
            s.push(1.0);
        }
        // CI is already 0 (constant data) but the trial floor blocks it.
        assert!(!rule.should_stop(&s));
        for _ in 0..5 {
            s.push(1.0);
        }
        assert!(rule.should_stop(&s));
        // Wide-CI data never stops under a tight threshold.
        let mut noisy = RunningStats::new();
        for i in 0..12 {
            noisy.push(if i % 2 == 0 { 100.0 } else { -100.0 });
        }
        assert!(!rule.should_stop(&noisy));
    }

    #[test]
    fn stratified_mean_is_unbiased_under_oversampling() {
        // Population: stratum 0 (weight 1/4) has mean 8, stratum 1 (weight
        // 3/4) has mean 0. True population mean = 2. Oversample stratum 0
        // 4:1 — the naive pooled mean would be badly biased; the weighted
        // estimator must not be.
        let mut s = StratifiedStats::new(&[0.25, 0.75]);
        let mut pooled = RunningStats::new();
        for _ in 0..400 {
            s.push(0, 8.0);
            pooled.push(8.0);
        }
        for _ in 0..100 {
            s.push(1, 0.0);
            pooled.push(0.0);
        }
        assert!((s.mean() - 2.0).abs() < 1e-6, "stratified mean {}", s.mean());
        assert!((pooled.mean() - 6.4).abs() < 1e-6, "pooled mean is biased by design");
        assert_eq!(s.count(), 500);
        // Constant strata → zero variance → zero CI width.
        assert_eq!(s.ci95_half_width(), 0.0);
        let rule = EarlyStop::new(0.05);
        assert!(rule.should_stop_stratified(&s));
    }

    #[test]
    fn stratified_std_error_matches_formula() {
        let mut s = StratifiedStats::new(&[0.5, 0.5]);
        for x in [1.0f32, 2.0, 3.0] {
            s.push(0, x);
        }
        for x in [10.0f32, 14.0] {
            s.push(1, x);
        }
        let v0 = s.stratum(0).variance() as f64;
        let v1 = s.stratum(1).variance() as f64;
        let expect = (0.25 * v0 / 3.0 + 0.25 * v1 / 2.0).sqrt() as f32;
        assert!((s.std_error() - expect).abs() < 1e-7);
        assert!((s.ci95_half_width() - 1.96 * expect).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn stratified_weights_must_sum_to_one() {
        StratifiedStats::new(&[0.5, 0.2]);
    }

    #[test]
    fn manifest_embedding_round_trips() {
        // The serde contract of the new observability layer: a manifest
        // embedding RunningStats summaries and a ConvergenceTrace survives
        // JSON serialization byte-exactly at f32 precision.
        let mut delta = RunningStats::new();
        let mut mismatch = RunningStats::new();
        let mut conv = ConvergenceTrace::new();
        for x in [0.1f32, 0.7, 0.3, 12.5, 0.0] {
            delta.push(x);
            mismatch.push(if x > 0.5 { 1.0 } else { 0.0 });
            conv.push(x);
        }
        let mut m = trace::RunManifest::new("metrics round-trip")
            .with_config("seed", 7u64)
            .with_config("format", "bfp_e5m5_b16");
        m.wall_time_s = 0.25;
        m.layers = vec![trace::LayerRecord {
            layer: 0,
            name: "stem.conv".into(),
            injections: delta.count() as usize,
            delta_loss: delta.summary(),
            mismatch: mismatch.summary(),
        }];
        m.convergence = conv.running_means().to_vec();
        let parsed = trace::RunManifest::from_json_str(&m.to_json().to_pretty()).unwrap();
        assert_eq!(parsed.layers, m.layers);
        assert_eq!(parsed.convergence, m.convergence);
        let round = &parsed.layers[0].delta_loss;
        assert_eq!(round.mean.to_bits(), delta.mean().to_bits());
        assert_eq!(round.std_dev.to_bits(), delta.std_dev().to_bits());
        assert_eq!(round.min, delta.min());
        assert_eq!(round.max, delta.max());
    }
}
