#![warn(missing_docs)]

//! In-tree deterministic pseudo-random number generation.
//!
//! This crate replaces the external `rand` dependency with a small,
//! self-contained implementation so the workspace builds with **no
//! registry access**. It is deliberately published under the package name
//! `rand` and mirrors the subset of the `rand 0.8` API the workspace
//! uses (`Rng`, `SeedableRng`, `rngs::StdRng`, `seq::SliceRandom`), so
//! existing `use rand::…` imports keep working unchanged.
//!
//! Two generators are provided:
//!
//! - [`SplitMix64`] — a 64-bit mixer/stream generator. Its finalizer,
//!   exposed as [`mix64`], is also the workspace's counter-based seeding
//!   function: campaign trial `(seed, layer, trial)` tuples are hashed
//!   through it so every trial gets an independent, reproducible stream
//!   regardless of execution order or thread count.
//! - [`Xoshiro256StarStar`] — the workhorse generator (aliased as
//!   [`rngs::StdRng`]), seeded from a single `u64` via SplitMix64 as its
//!   authors recommend.
//!
//! Everything here is deterministic: no entropy source, no global state.

use core::ops::{Range, RangeInclusive};

/// SplitMix64's 64-bit finalizer: a fast, high-quality bijective mixer.
///
/// Used for counter-based seeding: hashing `(seed, layer, trial)` through
/// `mix64` yields statistically independent per-trial seeds, which is what
/// makes parallel injection campaigns bit-identical to serial ones.
#[inline]
#[must_use]
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A source of random 64-bit words — the object-safe core every generator
/// implements (mirror of `rand::RngCore`).
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (taken from the high half of a 64-bit
    /// draw, which has the best statistical quality for both generators).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable construction (mirror of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a single `u64` seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Values samplable from the "standard" distribution (uniform over the
/// type's natural unit domain), backing [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 high bits → uniform on [0, 1) with full f32 mantissa coverage.
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for f64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// A range that [`Rng::gen_range`] can sample from uniformly (mirror of
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value from the range using `rng`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased-enough uniform draw in `[0, span)` via 128-bit widening
/// multiply (Lemire's method without the rejection step; the residual
/// bias is < 2⁻⁶⁴ per draw, irrelevant for simulation workloads).
#[inline]
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u128::from(u64::MAX) {
                    // Only reachable for the full u64/i64 domain.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_below(rng, span as u64) as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = f64::sample_standard(rng);
                let v = (self.start as f64 + (self.end as f64 - self.start as f64) * u) as $t;
                // Guard against the end landing in range through rounding.
                if v >= self.end { self.start } else { v }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let u = f64::sample_standard(rng);
                (lo as f64 + (hi as f64 - lo as f64) * u) as $t
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Convenience sampling methods, blanket-implemented for every generator
/// (mirror of `rand::Rng`).
pub trait Rng: RngCore {
    /// Draws a value from the type's standard distribution (`[0, 1)` for
    /// floats, uniform for integers).
    #[inline]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p ∉ [0, 1]`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p} out of [0, 1]");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// The SplitMix64 generator (Steele, Lea & Flood 2014): a single 64-bit
/// state advanced by a Weyl sequence and finalized by [`mix64`].
///
/// Equidistributed, fast, and trivially seedable — used here to expand a
/// `u64` seed into the xoshiro state, and directly wherever a small,
/// splittable stream is enough.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates the generator from its initial state.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }
}

impl SeedableRng for SplitMix64 {
    fn seed_from_u64(seed: u64) -> Self {
        SplitMix64::new(seed)
    }
}

impl RngCore for SplitMix64 {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// The xoshiro256** 1.0 generator (Blackman & Vigna 2018): 256-bit state,
/// period 2²⁵⁶ − 1, excellent statistical quality, ~0.8 ns per draw.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

impl Xoshiro256StarStar {
    /// Creates the generator from a full 256-bit state.
    ///
    /// # Panics
    ///
    /// Panics if the state is all zeros (the one invalid xoshiro state).
    #[must_use]
    pub fn from_state(s: [u64; 4]) -> Self {
        assert!(s.iter().any(|&w| w != 0), "xoshiro256** state must be non-zero");
        Xoshiro256StarStar { s }
    }
}

impl SeedableRng for Xoshiro256StarStar {
    /// Expands `seed` through SplitMix64, as the xoshiro authors
    /// recommend (avoids correlated states for adjacent seeds, and can
    /// never produce the all-zero state).
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Xoshiro256StarStar { s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()] }
    }
}

impl RngCore for Xoshiro256StarStar {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Named generators (mirror of `rand::rngs`).
pub mod rngs {
    /// The workspace's standard seeded generator.
    ///
    /// Unlike upstream `rand` (where `StdRng` is ChaCha12 and its stream
    /// is unspecified across versions), this is xoshiro256** and its
    /// stream is part of the workspace's reproducibility contract.
    pub type StdRng = super::Xoshiro256StarStar;
}

/// Slice sampling helpers (mirror of `rand::seq`).
pub mod seq {
    use super::RngCore;

    /// Shuffling for slices (mirror of `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates, back to front).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = super::SampleRange::sample_single(0..=i, rng);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // Reference sequence for seed 1234567 from the SplitMix64
        // reference implementation (prng.di.unimi.it).
        let mut sm = SplitMix64::new(1234567);
        assert_eq!(sm.next_u64(), 6457827717110365317);
        assert_eq!(sm.next_u64(), 3203168211198807973);
        assert_eq!(sm.next_u64(), 9817491932198370423);
    }

    #[test]
    fn xoshiro_starstar_reference_vector() {
        // Reference sequence for state [1, 2, 3, 4] from the
        // xoshiro256** reference implementation.
        let mut x = Xoshiro256StarStar::from_state([1, 2, 3, 4]);
        assert_eq!(x.next_u64(), 11520);
        assert_eq!(x.next_u64(), 0);
        assert_eq!(x.next_u64(), 1509978240);
        assert_eq!(x.next_u64(), 1215971899390074240);
    }

    #[test]
    fn seeding_is_deterministic_and_sensitive() {
        let a: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(43);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn gen_range_int_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = r.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn gen_range_int_covers_all_values() {
        let mut r = StdRng::seed_from_u64(11);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[r.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_range_float_bounds() {
        let mut r = StdRng::seed_from_u64(13);
        for _ in 0..10_000 {
            let v: f32 = r.gen_range(f32::EPSILON..1.0);
            assert!((f32::EPSILON..1.0).contains(&v));
            let w: f32 = r.gen_range(-0.15..0.15);
            assert!((-0.15..0.15).contains(&w));
        }
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut r = StdRng::seed_from_u64(17);
        assert!((0..100).all(|_| !r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "p=0.25 hit {hits}/10000");
    }

    #[test]
    fn standard_f32_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(19);
        for _ in 0..10_000 {
            let v: f32 = r.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = StdRng::seed_from_u64(23);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "shuffle left 50 elements in place");
    }

    #[test]
    fn rng_usable_through_mut_reference() {
        fn draw(rng: &mut impl Rng) -> usize {
            rng.gen_range(0..100)
        }
        let mut r = StdRng::seed_from_u64(29);
        // Both direct and reborrowed calls must compile and agree on type.
        let _ = draw(&mut r);
        let inner: &mut StdRng = &mut r;
        let _ = draw(inner);
    }

    #[test]
    fn mix64_matches_splitmix_step() {
        // mix64(seed + γ) is exactly one SplitMix64 step from `seed`.
        let mut sm = SplitMix64::new(99);
        assert_eq!(sm.next_u64(), mix64(99));
    }

    #[test]
    fn mix64_decorrelates_adjacent_counters() {
        let a = mix64(1);
        let b = mix64(2);
        assert_ne!(a, b);
        assert!((a ^ b).count_ones() > 10, "adjacent counters too similar");
    }
}
