//! Criterion micro-benchmarks of the tensor-wide conversion kernels
//! (the paper's Method 1) and the scalar bitstring path (Methods 3/4),
//! supporting the Figure 3 analysis: FP/FxP/INT conversions are cheap
//! elementwise maps; BFP/AFP pay a metadata pass; scalar ops are orders of
//! magnitude slower per element but used only once per injection.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use formats::{FormatSpec, Metadata};
use rand::rngs::StdRng;
use rand::SeedableRng;
use tensor::Tensor;

fn conversion_benches(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let x = Tensor::randn([64 * 1024], &mut rng);
    let mut group = c.benchmark_group("real_to_format_tensor_64k");
    for spec in ["fp:e5m10", "fxp:1:7:8", "int:8", "bfp:e8m7:b16", "afp:e4m3"] {
        let format = spec.parse::<FormatSpec>().unwrap().build();
        group.bench_with_input(BenchmarkId::from_parameter(spec), &x, |b, x| {
            b.iter(|| format.real_to_format_tensor(std::hint::black_box(x)))
        });
    }
    group.finish();
}

fn scalar_benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("scalar_bitstring_roundtrip");
    for spec in ["fp:e5m10", "int:8"] {
        let format = spec.parse::<FormatSpec>().unwrap().build();
        let meta = if spec == "int:8" { Metadata::Scale(0.01) } else { Metadata::None };
        group.bench_function(BenchmarkId::from_parameter(spec), |b| {
            b.iter(|| {
                let bits = format.real_to_format(std::hint::black_box(0.777), &meta, 0);
                format.format_to_real(&bits.with_flip(1), &meta, 0)
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = conversion_benches, scalar_benches
}
criterion_main!(benches);
