//! Criterion version of **Figure 3**: end-to-end emulated-inference
//! runtime per number format, with and without error injection, on a
//! small trained CNN. The `fig3` binary prints the same comparison as a
//! table; this bench gives statistically robust timings.

use bench::{prepare_model, test_set, ModelKind};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use goldeneye::{GoldenEye, InjectionPlan};
use inject::SiteKind;

fn fig3(c: &mut Criterion) {
    let (model, _) = prepare_model(ModelKind::Resnet18);
    let (x, _) = test_set().head_batch(8);
    let mut group = c.benchmark_group("fig3_resnet18_b8");
    group.sample_size(10);

    group.bench_function("native_fp32", |b| {
        b.iter(|| models::forward_logits(model.as_ref(), x.clone()))
    });

    for spec in ["fp16", "fxp:1:3:12", "int:8", "bfp:e8m7:b16", "afp:e4m3"] {
        let ge = GoldenEye::parse(spec).unwrap();
        group.bench_with_input(BenchmarkId::new("emulate", spec), &x, |b, x| {
            b.iter(|| ge.run(model.as_ref(), x.clone()))
        });
    }

    for (spec, kind) in [
        ("int:8", SiteKind::Value),
        ("int:8", SiteKind::Metadata),
        ("bfp:e8m7:b16", SiteKind::Value),
        ("bfp:e8m7:b16", SiteKind::Metadata),
        ("afp:e4m3", SiteKind::Value),
        ("afp:e4m3", SiteKind::Metadata),
    ] {
        let ge = GoldenEye::parse(spec).unwrap();
        let label =
            format!("{}+EI{}", spec, if kind == SiteKind::Metadata { "-metadata" } else { "" });
        let mut seed = 0u64;
        group.bench_with_input(BenchmarkId::new("inject", label), &x, |b, x| {
            b.iter(|| {
                seed = seed.wrapping_add(1);
                ge.run_with_injection(
                    model.as_ref(),
                    x.clone(),
                    InjectionPlan::single(0, kind),
                    seed,
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, fig3);
criterion_main!(benches);
