//! Shared harness for the benchmark binaries that regenerate the paper's
//! tables and figures (see DESIGN.md §4 for the experiment index).
//!
//! Models are trained once on the synthetic dataset and cached under
//! `target/goldeneye_cache/`, so repeated `cargo run -p bench --bin figN`
//! invocations reuse the same "pretrained" weights.

use models::{DeitConfig, ResNet, ResNetConfig, SyntheticDataset, TrainConfig, VisionTransformer};
use nn::Module;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;

/// Canonical image side length shared by every experiment.
pub const IMG_SIZE: usize = 32;
/// Number of classes in the synthetic task.
pub const NUM_CLASSES: usize = 10;
/// Training-set size.
pub const TRAIN_N: usize = 512;
/// Evaluation-set size.
pub const TEST_N: usize = 128;

/// The evaluation models of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelKind {
    /// Width-scaled ResNet-18.
    Resnet18,
    /// Width-scaled ResNet-50.
    Resnet50,
    /// Width-scaled DeiT-tiny.
    DeitTiny,
    /// Width-scaled DeiT-base.
    DeitBase,
}

impl ModelKind {
    /// Stable name used for cache files and table rows.
    pub fn name(&self) -> &'static str {
        match self {
            ModelKind::Resnet18 => "resnet18",
            ModelKind::Resnet50 => "resnet50",
            ModelKind::DeitTiny => "deit_tiny",
            ModelKind::DeitBase => "deit_base",
        }
    }

    fn build(&self) -> Box<dyn Module> {
        let mut rng = StdRng::seed_from_u64(0xC0FFEE);
        match self {
            ModelKind::Resnet18 => {
                Box::new(ResNet::new(ResNetConfig::resnet18(8, NUM_CLASSES), &mut rng))
            }
            ModelKind::Resnet50 => {
                Box::new(ResNet::new(ResNetConfig::resnet50(4, NUM_CLASSES), &mut rng))
            }
            ModelKind::DeitTiny => Box::new(VisionTransformer::new(
                DeitConfig::deit_tiny(IMG_SIZE, NUM_CLASSES),
                &mut rng,
            )),
            ModelKind::DeitBase => Box::new(VisionTransformer::new(
                DeitConfig::deit_base(IMG_SIZE, NUM_CLASSES),
                &mut rng,
            )),
        }
    }

    fn train_config(&self) -> TrainConfig {
        match self {
            ModelKind::Resnet18 => {
                TrainConfig { epochs: 10, batch_size: 32, lr: 2e-3, ..Default::default() }
            }
            ModelKind::Resnet50 => {
                TrainConfig { epochs: 8, batch_size: 32, lr: 2e-3, ..Default::default() }
            }
            ModelKind::DeitTiny => {
                TrainConfig { epochs: 14, batch_size: 32, lr: 1e-3, ..Default::default() }
            }
            ModelKind::DeitBase => {
                TrainConfig { epochs: 8, batch_size: 32, lr: 1e-3, ..Default::default() }
            }
        }
    }
}

/// The shared training split.
pub fn train_set() -> SyntheticDataset {
    SyntheticDataset::generate(TRAIN_N, IMG_SIZE, NUM_CLASSES, 2022)
}

/// The shared held-out evaluation split.
pub fn test_set() -> SyntheticDataset {
    SyntheticDataset::generate(TEST_N, IMG_SIZE, NUM_CLASSES, 2023)
}

fn cache_dir() -> PathBuf {
    if let Ok(dir) = std::env::var("GOLDENEYE_CACHE") {
        return PathBuf::from(dir);
    }
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/goldeneye_cache")
}

/// Builds (and trains, or loads from cache) a model, returning it plus its
/// held-out accuracy.
pub fn prepare_model(kind: ModelKind) -> (Box<dyn Module>, f32) {
    let model = kind.build();
    let dir = cache_dir();
    std::fs::create_dir_all(&dir).expect("cannot create cache dir");
    let path = dir.join(format!("{}.weights", kind.name()));
    if path.exists() && models::load_params(model.as_ref(), &path).is_ok() {
        eprintln!("[bench] loaded cached weights for {}", kind.name());
    } else {
        eprintln!("[bench] training {} (one-time, cached afterwards)...", kind.name());
        let mut cfg = kind.train_config();
        cfg.verbose = true;
        models::train(model.as_ref(), &train_set(), &cfg);
        models::save_params(model.as_ref(), &path).expect("cannot cache weights");
    }
    let acc = models::evaluate(model.as_ref(), &test_set(), TEST_N, 32);
    eprintln!("[bench] {} held-out accuracy: {:.1}%", kind.name(), acc * 100.0);
    (model, acc)
}

/// Simple CLI flags shared by the figure binaries.
#[derive(Debug, Clone)]
pub struct BenchArgs {
    /// `--full`: paper-scale parameters (e.g. 1000 injections/layer).
    pub full: bool,
    /// `--quick`: CI-smoke parameters (small sizes, few repetitions).
    pub quick: bool,
    /// `--injections N`: override the per-layer injection count.
    pub injections: Option<usize>,
    /// `--jobs N`: campaign worker threads (1 = serial, 0 = all cores).
    /// Campaign results are bit-identical across values.
    pub jobs: usize,
    /// `--out <path>`: write the run manifest as pretty JSON.
    pub out: Option<PathBuf>,
}

impl BenchArgs {
    /// Parses flags from `std::env::args`.
    ///
    /// Besides the experiment knobs, every bench binary understands the
    /// observability flags: `--out <path>` (run-manifest JSON),
    /// `--trace-out <path>` (structured JSONL events), `--log-level
    /// <lvl>` / `-v` / `-q` (verbosity gate).
    pub fn parse() -> Self {
        let mut args =
            BenchArgs { full: false, quick: false, injections: None, jobs: 1, out: None };
        let mut it = std::env::args().skip(1);
        while let Some(a) = it.next() {
            match a.as_str() {
                "--full" => args.full = true,
                "--quick" => args.quick = true,
                "--injections" => {
                    args.injections = it.next().and_then(|v| v.parse().ok());
                }
                "--jobs" => {
                    args.jobs = it.next().and_then(|v| v.parse().ok()).unwrap_or(1);
                }
                "--out" => args.out = it.next().map(PathBuf::from),
                "--trace-out" => {
                    if let Some(path) = it.next() {
                        trace::open_jsonl(std::path::Path::new(&path))
                            .unwrap_or_else(|e| panic!("cannot open --trace-out `{path}`: {e}"));
                    }
                }
                "--log-level" => {
                    if let Some(l) = it.next() {
                        match trace::Level::parse(&l) {
                            Some(level) => trace::set_level(level),
                            None => eprintln!("[bench] ignoring bad --log-level `{l}`"),
                        }
                    }
                }
                "-v" | "--verbose" => trace::set_level(trace::Level::Debug),
                "-q" | "--quiet" => trace::set_level(trace::Level::Warn),
                other => eprintln!("[bench] ignoring unknown flag {other}"),
            }
        }
        args
    }

    /// Injections per layer: explicit override > full (1000) > quick
    /// default.
    pub fn injections_per_layer(&self, quick_default: usize) -> usize {
        self.injections.unwrap_or(if self.full { 1000 } else { quick_default })
    }

    /// Finishes a bench run: snapshots the trace counters into `m`, emits
    /// it on any active trace sinks, and writes it to `--out` (or
    /// `default_out`, when given) as pretty JSON.
    pub fn finish_run(&self, mut m: trace::RunManifest, default_out: Option<&str>) {
        m.snapshot_counters();
        m.snapshot_profile();
        m.emit();
        trace::flush();
        let path = self.out.clone().or_else(|| default_out.map(PathBuf::from));
        if let Some(path) = path {
            match m.write(&path) {
                Ok(()) => eprintln!("[bench] manifest written to {}", path.display()),
                Err(e) => eprintln!("[bench] cannot write manifest {}: {e}", path.display()),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_kinds_build() {
        for kind in
            [ModelKind::Resnet18, ModelKind::Resnet50, ModelKind::DeitTiny, ModelKind::DeitBase]
        {
            let m = kind.build();
            assert!(m.param_count() > 1000, "{} too small", kind.name());
        }
    }

    #[test]
    fn datasets_are_split() {
        let tr = train_set();
        let te = test_set();
        assert_eq!(tr.len(), TRAIN_N);
        assert_eq!(te.len(), TEST_N);
        let (a, _) = tr.head_batch(1);
        let (b, _) = te.head_batch(1);
        assert_ne!(a, b, "train/test must differ");
    }
}
