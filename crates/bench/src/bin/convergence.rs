//! Extra experiment (§IV-C / §VI): the ΔLoss metric converges in fewer
//! injections than mismatch counting, while agreeing on the ranking —
//! the paper's justification for using ΔLoss in its campaigns.
//!
//! Runs one long value-injection campaign on a fixed layer and reports how
//! many injections each metric's running mean needs to settle within 10%
//! of its final value.
//!
//! Run with: `cargo run --release -p bench --bin convergence [--injections N]`

use bench::{prepare_model, test_set, BenchArgs, ModelKind};
use goldeneye::{GoldenEye, InjectionPlan};
use inject::SiteKind;
use metrics::{compare_outcomes, ConvergenceTrace};
use std::time::Instant;

fn main() {
    let args = BenchArgs::parse();
    let n = args.injections_per_layer(300);
    let t_all = Instant::now();
    let (model, _) = prepare_model(ModelKind::Resnet18);
    let (x, y) = test_set().head_batch(8);
    let ge = GoldenEye::parse("fp:e4m3").expect("bad spec");
    let layers = ge.discover_layers(model.as_ref(), x.clone());
    let target = layers[layers.len() / 2].index;
    let golden = ge.run(model.as_ref(), x.clone());

    let mut mismatch = ConvergenceTrace::new();
    let mut delta = ConvergenceTrace::new();
    for i in 0..n {
        let plan = InjectionPlan::single(target, SiteKind::Value);
        let (faulty, rec) = ge.run_with_injection(model.as_ref(), x.clone(), plan, i as u64);
        if rec.is_none() {
            continue;
        }
        let o = compare_outcomes(&golden, &faulty, &y);
        mismatch.push(o.mismatch_rate);
        delta.push(o.delta_loss);
    }
    let cm = mismatch.samples_to_converge(0.10);
    let cd = delta.samples_to_converge(0.10);
    println!("Metric convergence over {n} value injections (fp:e4m3, layer {target}):");
    println!(
        "  mismatch: final mean {:.4} (CI95 ±{:.4}), converged after {} injections",
        mismatch.stats().mean(),
        mismatch.stats().ci95_half_width(),
        cm
    );
    println!(
        "  delta-loss: final mean {:.4} (CI95 ±{:.4}), converged after {} injections",
        delta.stats().mean(),
        delta.stats().ci95_half_width(),
        cd
    );
    println!(
        "\nExpected shape (paper): delta-loss settles in {} the injections of mismatch.",
        if cd <= cm { "no more than" } else { "UNEXPECTEDLY MORE than" }
    );
    let mut m = trace::RunManifest::new("bench convergence")
        .with_config("injections", n)
        .with_config("format", "fp_e4m3")
        .with_config("layer", target)
        .with_extra("mismatch_mean", trace::Json::from_f32(mismatch.stats().mean()))
        .with_extra("mismatch_converged_after", cm)
        .with_extra("delta_loss_mean", trace::Json::from_f32(delta.stats().mean()))
        .with_extra("delta_loss_converged_after", cd);
    m.convergence = delta.running_means().to_vec();
    m.wall_time_s = t_all.elapsed().as_secs_f64();
    args.finish_run(m, None);
}
