//! Block-size sweep — accuracy and fault resilience of the block-scaled
//! families (OCP MX and BFP) as the elements-per-scale ratio varies.
//!
//! Larger blocks amortise the shared scale over more elements (better
//! footprint) but force distant magnitudes onto one exponent (worse
//! accuracy) and widen a metadata flip's blast radius (one corrupted scale
//! hits the whole block). This sweep quantifies both sides: held-out
//! accuracy under each format, plus the average per-layer ΔLoss of value-
//! and metadata-site injection campaigns.
//!
//! Run with: `cargo run --release -p bench --bin blocksize
//! [--quick | --full | --injections N]`. Writes the manifest to
//! `results/BENCH_blocksize.json` (override with `--out`).

use bench::{prepare_model, test_set, BenchArgs, ModelKind};
use goldeneye::{evaluate_accuracy_jobs, run_campaign, CampaignConfig, GoldenEye};
use inject::SiteKind;
use std::time::Instant;
use trace::Json;

fn main() {
    let args = BenchArgs::parse();
    let n = args.injections_per_layer(if args.quick { 6 } else { 20 });
    let blocks: &[usize] = if args.quick { &[8, 32, 128] } else { &[8, 16, 32, 64, 128] };
    let eval_k = if args.quick { 32 } else { bench::TEST_N };
    let data = test_set();
    let (x, y) = data.head_batch(8);
    let (model, baseline) = prepare_model(ModelKind::Resnet18);
    let t_all = Instant::now();

    println!(
        "Block-size sweep: MXFP8 (e4m3) vs BFP (e5m5), {n} injections/layer, \
         accuracy over {eval_k} samples\n"
    );
    println!(
        "{:<8} {:<20} {:>9} {:>13} {:>16}",
        "family", "spec", "accuracy", "dLoss(value)", "dLoss(metadata)"
    );
    let mut rows: Vec<Json> = Vec::new();
    for &block in blocks {
        for (family, spec) in
            [("mx", format!("mx:fp8e4m3:b{block}")), ("bfp", format!("bfp:e5m5:b{block}"))]
        {
            let ge = GoldenEye::parse(&spec).expect("bad sweep spec");
            let acc = evaluate_accuracy_jobs(&ge, model.as_ref(), &data, eval_k, 32, args.jobs);
            let campaign = |kind: SiteKind| {
                run_campaign(
                    &ge,
                    model.as_ref(),
                    &x,
                    &y,
                    &CampaignConfig {
                        injections_per_layer: n,
                        kind,
                        seed: 7,
                        jobs: args.jobs,
                        ..Default::default()
                    },
                )
            };
            let value = campaign(SiteKind::Value);
            let meta = campaign(SiteKind::Metadata);
            println!(
                "{:<8} {:<20} {:>8.1}% {:>13.4} {:>16.4}",
                family,
                spec,
                acc * 100.0,
                value.avg_delta_loss(),
                meta.avg_delta_loss()
            );
            rows.push(Json::obj([
                ("family", Json::from(family)),
                ("spec", Json::from(spec.as_str())),
                ("block", Json::from(block)),
                ("accuracy", Json::from_f32(acc)),
                ("delta_loss_value", Json::from_f32(value.avg_delta_loss())),
                ("delta_loss_metadata", Json::from_f32(meta.avg_delta_loss())),
            ]));
        }
    }
    println!("\nExpected shape: accuracy falls and the metadata blast radius grows");
    println!("as blocks widen; MXFP8's per-element mantissa holds accuracy better");
    println!("than BFP's shared-significand grid at the same block size.");

    let mut m = trace::RunManifest::new("bench blocksize")
        .with_config("model", ModelKind::Resnet18.name())
        .with_config("injections_per_layer", n)
        .with_config("eval_samples", eval_k)
        .with_config("seed", 7u64)
        .with_extra("baseline_accuracy", baseline)
        .with_extra("rows", Json::Arr(rows));
    m.wall_time_s = t_all.elapsed().as_secs_f64();
    let _ = std::fs::create_dir_all("results");
    args.finish_run(m, Some("results/BENCH_blocksize.json"));
}
