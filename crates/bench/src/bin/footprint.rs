//! Ablation: memory footprint per format — quantifies the paper's §II-A
//! motivation (BFP's shared exponent slashes storage) over a real model's
//! activation tensors.
//!
//! Run with: `cargo run --release -p bench --bin footprint`

use bench::{prepare_model, test_set, BenchArgs, ModelKind};
use formats::footprint::footprint;
use formats::FormatSpec;
use nn::{Ctx, ForwardHook, LayerInfo, LayerKind};
use std::sync::{Arc, Mutex};
use std::time::Instant;
use tensor::Tensor;
use trace::Json;

/// Captures every instrumented layer output of one inference.
struct Capture(Mutex<Vec<Tensor>>);

impl ForwardHook for Capture {
    fn on_output(&self, _l: &LayerInfo, out: &Tensor) -> Option<Tensor> {
        self.0.lock().unwrap().push(out.clone());
        None
    }
    fn applies_to(&self, kind: LayerKind) -> bool {
        matches!(kind, LayerKind::Conv | LayerKind::Linear)
    }
}

fn main() {
    let args = BenchArgs::parse();
    let t_all = Instant::now();
    let mut rows: Vec<Json> = Vec::new();
    let (model, _) = prepare_model(ModelKind::Resnet18);
    let (x, _) = test_set().head_batch(8);
    let cap = Arc::new(Capture(Mutex::new(Vec::new())));
    let mut ctx = Ctx::inference();
    ctx.add_hook(cap.clone());
    let xv = ctx.input(x);
    model.forward(&xv, &mut ctx);
    let activations = cap.0.lock().unwrap();
    let elements: u64 = activations.iter().map(|t| t.numel() as u64).sum();
    println!(
        "Activation storage for one resnet18 inference batch ({} tensors, {} elements)\n",
        activations.len(),
        elements
    );
    println!(
        "{:<18} {:>12} {:>14} {:>12} {:>12}",
        "format", "data Kbit", "metadata bit", "bits/elem", "vs fp32"
    );
    for spec in [
        "fp32",
        "fp16",
        "bfloat16",
        "int:8",
        "fp:e4m3",
        "bfp:e8m7:b16",
        "bfp:e8m7:tensor",
        "afp:e4m3",
        "posit:8:0",
    ] {
        let format = spec.parse::<FormatSpec>().expect("valid spec").build();
        let mut data_bits = 0u64;
        let mut metadata_bits = 0u64;
        for t in activations.iter() {
            let f = footprint(format.as_ref(), t);
            data_bits += f.data_bits;
            metadata_bits += f.metadata_bits;
        }
        let total = data_bits + metadata_bits;
        println!(
            "{:<18} {:>12.0} {:>14} {:>12.3} {:>11.2}x",
            spec,
            data_bits as f64 / 1000.0,
            metadata_bits,
            total as f64 / elements as f64,
            (elements * 32) as f64 / total as f64
        );
        rows.push(Json::obj([
            ("spec", Json::from(spec)),
            ("data_bits", Json::from(data_bits)),
            ("metadata_bits", Json::from(metadata_bits)),
            ("bits_per_element", Json::Num(total as f64 / elements as f64)),
            ("vs_fp32", Json::Num((elements * 32) as f64 / total as f64)),
        ]));
    }
    println!("\nShape (paper §II-A): BFP stores one exponent per block/tensor,");
    println!("so its bits/element approaches 1 + mantissa; AFP pays 4 bits per");
    println!("tensor; INT pays one 32-bit scale per tensor.");
    let mut m = trace::RunManifest::new("bench footprint")
        .with_config("model", "resnet18")
        .with_extra("elements", elements)
        .with_extra("rows", Json::Arr(rows));
    m.wall_time_s = t_all.elapsed().as_secs_f64();
    args.finish_run(m, None);
}
