//! Ablation: accumulation error vs. reduction length and accumulator
//! format — the quantitative groundwork for the mixed-precision support
//! the paper lists as future work (§V-C).
//!
//! Run with: `cargo run --release -p bench --bin accum`

use bench::BenchArgs;
use formats::{FixedPoint, FloatingPoint, NumberFormat, Posit};
use goldeneye::accum::accumulation_error_study;
use std::time::Instant;
use trace::Json;

fn main() {
    let args = BenchArgs::parse();
    let t_all = Instant::now();
    let mut rows: Vec<Json> = Vec::new();
    let lengths = [16usize, 64, 256, 1024, 4096];
    let formats: Vec<(&str, Box<dyn NumberFormat>)> = vec![
        ("fp32 (e8m23)", Box::new(FloatingPoint::fp32())),
        ("tf32 (e8m10)", Box::new(FloatingPoint::tensorfloat32())),
        ("fp16 (e5m10)", Box::new(FloatingPoint::fp16())),
        ("bfloat16 (e8m7)", Box::new(FloatingPoint::bfloat16())),
        ("fp8 (e4m3)", Box::new(FloatingPoint::fp8_e4m3())),
        ("fxp 1.15.16", Box::new(FixedPoint::new(15, 16))),
        ("posit16 (es1)", Box::new(Posit::posit16())),
    ];
    println!("Accumulation error vs reduction length (mean |err|/sqrt(len), 20 trials)\n");
    print!("{:<18}", "accumulator");
    for l in lengths {
        print!(" {l:>10}");
    }
    println!();
    for (label, f) in &formats {
        let pts = accumulation_error_study(f.as_ref(), &lengths, 20, 11);
        print!("{label:<18}");
        for p in &pts {
            print!(" {:>10.2e}", p.mean_rel_error);
        }
        println!();
        rows.push(Json::obj([
            ("accumulator", Json::from(*label)),
            (
                "mean_rel_error",
                Json::Arr(pts.iter().map(|p| Json::Num(p.mean_rel_error)).collect()),
            ),
        ]));
    }
    println!("\nShape: error grows with reduction length and shrinks with mantissa");
    println!("width — the accumulator-sizing data mixed-precision MACs need.");
    let mut m = trace::RunManifest::new("bench accum")
        .with_config("trials", 20u64)
        .with_config("seed", 11u64)
        .with_extra("lengths", Json::Arr(lengths.iter().map(|&l| Json::from(l)).collect()))
        .with_extra("rows", Json::Arr(rows));
    m.wall_time_s = t_all.elapsed().as_secs_f64();
    args.finish_run(m, None);
}
