//! Regenerates **Table I** — "Dynamic Range of Data Types".
//!
//! Run with: `cargo run --release -p bench --bin table1`

use bench::BenchArgs;
use std::time::Instant;

fn main() {
    let args = BenchArgs::parse();
    let t_all = Instant::now();
    let table = formats::ranges::table1_text();
    println!("Table I: Dynamic Range of Data Types (paper vs computed)\n");
    print!("{table}");
    println!();
    println!("Notes:");
    println!("- paper prints FxP(1,15,16) max as 3.2768; 2^15 = 32768 (typo in the paper).");
    println!("- paper prints INT16 dB as 98.31; 20*log10(32767/1) = 90.31 (typo in the paper).");
    println!("- AFP8's window is movable via its exponent-bias metadata; the dB width matches FP8 w/o DN.");
    let mut m = trace::RunManifest::new("bench table1").with_extra("table", table.as_str());
    m.wall_time_s = t_all.elapsed().as_secs_f64();
    args.finish_run(m, None);
}
