//! Regenerates **Figure 7** — per-layer ΔLoss under single-bit injections,
//! for BFP (e5m5) and AFP (e5m2), value vs. metadata faults, on ResNet-50
//! and DeiT-base.
//!
//! The paper's observations: BFP layers show similar (low) vulnerability
//! to value flips, while metadata flips are far more damaging across the
//! board (one shared-exponent bit corrupts a whole block); AFP is on
//! average more resilient than BFP for both fault types, except its last
//! layer, whose wide value distribution stresses the movable window.
//!
//! Run with: `cargo run --release -p bench --bin fig7 [--full | --injections N]`
//! (quick default: 20 injections/layer; the paper uses 1000 → `--full`).

use bench::{prepare_model, test_set, BenchArgs, ModelKind};
use goldeneye::{run_campaign, CampaignConfig, GoldenEye};
use inject::SiteKind;
use std::time::Instant;
use trace::Json;

fn main() {
    let args = BenchArgs::parse();
    let n = args.injections_per_layer(20);
    let (x, y) = test_set().head_batch(8);
    let t_all = Instant::now();
    let mut rows: Vec<Json> = Vec::new();
    println!("Figure 7: per-layer delta-loss, {n} injections/layer, batch 8\n");
    for kind in [ModelKind::Resnet50, ModelKind::DeitBase] {
        let (model, _) = prepare_model(kind);
        for spec in ["bfp:e5m5:tensor", "afp:e5m2"] {
            let ge = GoldenEye::parse(spec).expect("bad spec");
            println!("== {} / {} ==", kind.name(), spec);
            println!(
                "{:<6} {:<22} {:>14} {:>16}",
                "layer", "name", "dLoss(value)", "dLoss(metadata)"
            );
            let value = run_campaign(
                &ge,
                model.as_ref(),
                &x,
                &y,
                &CampaignConfig {
                    injections_per_layer: n,
                    kind: SiteKind::Value,
                    seed: 7,
                    jobs: 1,
                    ..Default::default()
                },
            );
            let meta = run_campaign(
                &ge,
                model.as_ref(),
                &x,
                &y,
                &CampaignConfig {
                    injections_per_layer: n,
                    kind: SiteKind::Metadata,
                    seed: 7,
                    jobs: 1,
                    ..Default::default()
                },
            );
            for (v, m) in value.layers.iter().zip(&meta.layers) {
                println!(
                    "{:<6} {:<22} {:>14.4} {:>16.4}",
                    v.layer,
                    v.name,
                    v.delta_loss.mean(),
                    m.delta_loss.mean()
                );
                rows.push(Json::obj([
                    ("model", Json::from(kind.name())),
                    ("spec", Json::from(spec)),
                    ("layer", Json::from(v.layer)),
                    ("name", Json::from(v.name.as_str())),
                    ("delta_loss_value", Json::from_f32(v.delta_loss.mean())),
                    ("delta_loss_metadata", Json::from_f32(m.delta_loss.mean())),
                ]));
            }
            println!(
                "{:<6} {:<22} {:>14.4} {:>16.4}\n",
                "avg",
                "(across layers)",
                value.avg_delta_loss(),
                meta.avg_delta_loss()
            );
        }
    }
    println!("Expected shape (paper): metadata >> value for BFP; AFP lower on");
    println!("average than BFP except its last layer.");
    let mut m = trace::RunManifest::new("bench fig7")
        .with_config("injections_per_layer", n)
        .with_config("seed", 7u64)
        .with_extra("rows", Json::Arr(rows));
    m.wall_time_s = t_all.elapsed().as_secs_f64();
    args.finish_run(m, None);
}
