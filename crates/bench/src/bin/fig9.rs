//! Regenerates **Figure 9** — the accuracy / resilience / bit-width
//! trade-off scatter for ResNet-50 under BFP and AFP: each DSE-suggested
//! design point is plotted as (accuracy, average ΔLoss across layers,
//! bit width).
//!
//! The paper's observation: low-precision, high-accuracy, low-ΔLoss design
//! points exist in the top-left corner, and newer formats (AFP) reach them
//! at lower precision.
//!
//! Run with: `cargo run --release -p bench --bin fig9 [--injections N] [--jobs N]`

use bench::{prepare_model, test_set, BenchArgs, ModelKind, TEST_N};
use goldeneye::dse::{accuracy_eval, search, DseFamily};
use goldeneye::{run_campaign, CampaignConfig, GoldenEye};
use inject::SiteKind;
use std::time::Instant;
use trace::Json;

fn main() {
    let args = BenchArgs::parse();
    let n = args.injections_per_layer(10);
    let jobs = args.jobs;
    let data = test_set();
    let (model, baseline) = prepare_model(ModelKind::Resnet50);
    let (x, y) = data.head_batch(8);
    let t_all = Instant::now();
    let mut rows: Vec<Json> = Vec::new();
    println!(
        "Figure 9: accuracy vs avg delta-loss for DSE-suggested BFP/AFP points\n\
         (ResNet-50, baseline {:.1}%, {} injections/layer)\n",
        baseline * 100.0,
        n
    );
    println!(
        "{:<18} {:>6} {:>10} {:>14} {:>16}",
        "format", "bits", "accuracy", "dLoss(value)", "dLoss(metadata)"
    );
    for family in [DseFamily::Bfp { block: usize::MAX }, DseFamily::Afp] {
        let result =
            search(family, accuracy_eval(model.as_ref(), &data, TEST_N, 32, jobs), baseline, 0.05);
        for node in result.accepted_nodes() {
            let ge = GoldenEye::new(node.spec.build());
            let value = run_campaign(
                &ge,
                model.as_ref(),
                &x,
                &y,
                &CampaignConfig {
                    injections_per_layer: n,
                    kind: SiteKind::Value,
                    seed: 9,
                    jobs,
                    ..Default::default()
                },
            );
            let meta = run_campaign(
                &ge,
                model.as_ref(),
                &x,
                &y,
                &CampaignConfig {
                    injections_per_layer: n,
                    kind: SiteKind::Metadata,
                    seed: 9,
                    jobs,
                    ..Default::default()
                },
            );
            println!(
                "{:<18} {:>6} {:>9.1}% {:>14.4} {:>16.4}",
                node.spec.to_string(),
                ge.format().bit_width(),
                node.accuracy * 100.0,
                value.avg_delta_loss(),
                meta.avg_delta_loss()
            );
            rows.push(Json::obj([
                ("spec", Json::from(node.spec.to_string())),
                ("bits", Json::from(ge.format().bit_width())),
                ("accuracy", Json::from_f32(node.accuracy)),
                ("delta_loss_value", Json::from_f32(value.avg_delta_loss())),
                ("delta_loss_metadata", Json::from_f32(meta.avg_delta_loss())),
            ]));
        }
    }
    println!("\nExpected shape (paper): design points with high accuracy and low");
    println!("delta-loss exist at reduced precision; AFP reaches them with fewer bits.");
    let mut m = trace::RunManifest::new("bench fig9")
        .with_config("injections_per_layer", n)
        .with_config("jobs", jobs)
        .with_config("seed", 9u64)
        .with_extra("baseline_accuracy", baseline)
        .with_extra("points", Json::Arr(rows));
    m.wall_time_s = t_all.elapsed().as_secs_f64();
    args.finish_run(m, None);
}
