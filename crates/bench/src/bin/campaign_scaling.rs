//! Campaign-executor scaling: wall-clock of the same fault-injection
//! campaign at 1, 2, 4, … worker threads, verifying both the speedup and
//! the bit-identical-results contract of `goldeneye::run_campaign` /
//! `run_weight_campaign`.
//!
//! Trials are independent inferences, so the campaign is embarrassingly
//! parallel; the executor's only serial parts are layer discovery, the
//! golden run, and the statistics fold.
//!
//! Run with: `cargo run --release -p bench --bin campaign_scaling
//! [--injections N] [--jobs MAX]`

use bench::{prepare_model, test_set, BenchArgs, ModelKind};
use goldeneye::{run_campaign, run_weight_campaign, CampaignConfig, CampaignResult, GoldenEye};
use inject::SiteKind;
use std::time::Instant;

fn layer_means(r: &CampaignResult) -> Vec<(f32, f32)> {
    r.layers.iter().map(|l| (l.delta_loss.mean(), l.mismatch.mean())).collect()
}

fn main() {
    let args = BenchArgs::parse();
    let n = args.injections_per_layer(20);
    let max_jobs = if args.jobs <= 1 {
        std::thread::available_parallelism().map(|p| p.get()).unwrap_or(4)
    } else {
        args.jobs
    };
    let (model, _) = prepare_model(ModelKind::Resnet18);
    let (x, y) = test_set().head_batch(8);
    let ge = GoldenEye::parse("fp:e4m3").expect("valid spec");

    println!("Campaign scaling ({n} injections/layer, resnet18, fp:e4m3)\n");
    println!(
        "{:<24} {:>6} {:>10} {:>9} {:>10}",
        "campaign", "jobs", "seconds", "speedup", "identical"
    );
    for (label, weight) in [("activation (value)", false), ("weight", true)] {
        let mut reference: Option<(Vec<(f32, f32)>, f64)> = None;
        let mut jobs = 1usize;
        while jobs <= max_jobs {
            let cfg =
                CampaignConfig { injections_per_layer: n, kind: SiteKind::Value, seed: 17, jobs };
            let t = Instant::now();
            let result = if weight {
                run_weight_campaign(&ge, model.as_ref(), &x, &y, &cfg)
            } else {
                run_campaign(&ge, model.as_ref(), &x, &y, &cfg)
            };
            let secs = t.elapsed().as_secs_f64();
            let means = layer_means(&result);
            let (identical, speedup) = match &reference {
                None => {
                    reference = Some((means, secs));
                    (true, 1.0)
                }
                Some((ref_means, ref_secs)) => (*ref_means == means, ref_secs / secs),
            };
            println!(
                "{label:<24} {jobs:>6} {secs:>10.2} {speedup:>8.2}x {:>10}",
                if identical { "yes" } else { "NO" }
            );
            assert!(identical, "parallel campaign diverged from serial results");
            jobs *= 2;
        }
        println!();
    }
}
