//! Campaign-executor scaling: wall-clock of the same fault-injection
//! campaign at 1, 2, 4, … worker threads, verifying both the speedup and
//! the bit-identical-results contract of `goldeneye::run_campaign` /
//! `run_weight_campaign`; the batched checkpoint/replay engine vs. the
//! per-trial engine (byte-identical canonical records asserted) and the
//! early-stopping trial savings at equal statistical power (DESIGN.md
//! §11) — plus the tracing-overhead budget: the same serial campaign with
//! structured tracing on must stay within ~2% of the untraced wall-clock
//! (DESIGN.md §9).
//!
//! Trials are independent inferences, so the campaign is embarrassingly
//! parallel; the executor's only serial parts are layer discovery, the
//! golden run, and the statistics fold.
//!
//! Writes `BENCH_campaign.json` (override with `--out`): the run manifest
//! with per-jobs timings and the measured tracing overhead.
//!
//! Run with: `cargo run --release -p bench --bin campaign_scaling
//! [--injections N] [--jobs MAX]`

use bench::{prepare_model, test_set, BenchArgs, ModelKind};
use goldeneye::{
    evaluate_accuracy_jobs, run_campaign, run_weight_campaign, CampaignConfig, CampaignResult,
    GoldenEye,
};
use inject::SiteKind;
use std::sync::Arc;
use std::time::Instant;
use trace::Json;

fn layer_means(r: &CampaignResult) -> Vec<(f32, f32)> {
    r.layers.iter().map(|l| (l.delta_loss.mean(), l.mismatch.mean())).collect()
}

/// Best-of-`reps` wall-clock of one serial campaign (minimum is the
/// noise-robust estimator for overhead comparisons).
fn best_time(
    reps: usize,
    ge: &GoldenEye,
    model: &dyn nn::Module,
    x: &tensor::Tensor,
    y: &[usize],
    cfg: &CampaignConfig,
) -> f64 {
    (0..reps)
        .map(|_| {
            let t = Instant::now();
            run_campaign(ge, model, x, y, cfg);
            t.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

/// The tracing-overhead measurement: `reps` interleaved (off, on) pairs
/// of a serial campaign, keeping the pair with the smallest on/off
/// ratio. Adjacent legs share whatever load burst hits the host, so a
/// burst inflates a pair's *ratio* only mildly, and one quiet pair is
/// enough for a clean estimate — sequential best-of-N windows (the old
/// scheme) let a burst land entirely in one window and read as phantom
/// overhead. Returns `(off_s, on_s, events)` for the winning pair.
fn measure_overhead(
    reps: usize,
    ge: &GoldenEye,
    model: &dyn nn::Module,
    x: &tensor::Tensor,
    y: &[usize],
    cfg: &CampaignConfig,
) -> (f64, f64, usize) {
    let (mut off, mut on) = (1.0, f64::INFINITY);
    for _ in 0..reps {
        trace::capture_events(false);
        let o = best_time(1, ge, model, x, y, cfg);
        trace::capture_events(true);
        let t = best_time(1, ge, model, x, y, cfg);
        if t / o < on / off {
            (off, on) = (o, t);
        }
    }
    trace::capture_events(false);
    let events = trace::take_events().len();
    (off, on, events)
}

/// The CI budget: traced wall-clock within 5% of untraced. Calibrated
/// when the serial engine was ~4× slower as "within 2%"; the absolute
/// per-trial tracing cost is unchanged, but the untraced denominator
/// shrank with the kernel/dispatch-granularity work, so the same
/// absolute overhead is a larger fraction (5% of today's wall ≈ 1.2%
/// of the wall the 2% figure was calibrated against).
const OVERHEAD_BUDGET: f64 = 0.05;

fn main() {
    let args = BenchArgs::parse();
    let overhead_only = std::env::args().any(|a| a == "--overhead-only");
    let n = args.injections_per_layer(20);
    let max_jobs = if args.jobs <= 1 {
        std::thread::available_parallelism().map(|p| p.get()).unwrap_or(4)
    } else {
        args.jobs
    };
    let (model, _) = prepare_model(ModelKind::Resnet18);
    let (x, y) = test_set().head_batch(8);
    let ge = GoldenEye::parse("fp:e4m3").expect("valid spec");

    if overhead_only {
        // CI enforcement mode (`trace-overhead` job): measure only the
        // tracing overhead and fail the process when it blows the budget.
        let cfg = CampaignConfig {
            injections_per_layer: n,
            kind: SiteKind::Value,
            seed: 17,
            jobs: 1,
            ..Default::default()
        };
        let (off, on, events) = measure_overhead(3, &ge, model.as_ref(), &x, &y, &cfg);
        let overhead = on / off - 1.0;
        let over = overhead > OVERHEAD_BUDGET;
        println!(
            "Tracing overhead (serial, {n} inj/layer): off {off:.3}s, on {on:.3}s \
             ({:+.2}%, {events} buffered events) — budget {:.0}%{}",
            overhead * 100.0,
            OVERHEAD_BUDGET * 100.0,
            if over { "  ** OVER BUDGET **" } else { "" }
        );
        let mut m = trace::RunManifest::new("bench campaign_scaling --overhead-only")
            .with_config("injections_per_layer", n)
            .with_extra("trace_overhead", Json::Num(overhead))
            .with_extra("trace_overhead_budget", Json::Num(OVERHEAD_BUDGET))
            .with_extra("untraced_s", Json::Num(off))
            .with_extra("traced_s", Json::Num(on));
        m.wall_time_s = off + on;
        args.finish_run(m, None);
        if over {
            std::process::exit(1);
        }
        return;
    }

    let mut manifest = trace::RunManifest::new("bench campaign_scaling")
        .with_config("model", "resnet18")
        .with_config("format", "fp_e4m3")
        .with_config("injections_per_layer", n)
        .with_config("max_jobs", max_jobs);
    let t_all = Instant::now();
    let mut timing_rows: Vec<Json> = Vec::new();

    println!("Campaign scaling ({n} injections/layer, resnet18, fp:e4m3)\n");
    println!(
        "{:<24} {:>6} {:>10} {:>9} {:>10}",
        "campaign", "jobs", "seconds", "speedup", "identical"
    );
    for (label, weight) in [("activation (value)", false), ("weight", true)] {
        let mut reference: Option<(Vec<(f32, f32)>, f64)> = None;
        let mut jobs = 1usize;
        while jobs <= max_jobs {
            let cfg = CampaignConfig {
                injections_per_layer: n,
                kind: SiteKind::Value,
                seed: 17,
                jobs,
                ..Default::default()
            };
            let t = Instant::now();
            let result = if weight {
                run_weight_campaign(&ge, model.as_ref(), &x, &y, &cfg)
            } else {
                run_campaign(&ge, model.as_ref(), &x, &y, &cfg)
            };
            let secs = t.elapsed().as_secs_f64();
            let means = layer_means(&result);
            let (identical, speedup) = match &reference {
                None => {
                    reference = Some((means, secs));
                    (true, 1.0)
                }
                Some((ref_means, ref_secs)) => (*ref_means == means, ref_secs / secs),
            };
            println!(
                "{label:<24} {jobs:>6} {secs:>10.2} {speedup:>8.2}x {:>10}",
                if identical { "yes" } else { "NO" }
            );
            assert!(identical, "parallel campaign diverged from serial results");
            timing_rows.push(Json::obj([
                ("campaign", Json::from(if weight { "weight" } else { "activation" })),
                ("jobs", Json::from(jobs)),
                ("seconds", Json::Num(secs)),
                ("speedup", Json::Num(speedup)),
            ]));
            jobs *= 2;
        }
        println!();
    }

    // Kernel before/after: end-to-end trials/sec of the serial campaign
    // with the legacy axpy GEMM vs. the packed register-tiled kernel
    // (everything else — injection, quantise, statistics — identical).
    let cfg = CampaignConfig {
        injections_per_layer: n,
        kind: SiteKind::Value,
        seed: 17,
        jobs: 1,
        ..Default::default()
    };
    let trials = run_campaign(&ge, model.as_ref(), &x, &y, &cfg).trials.len();
    // Interleave the repetitions (legacy, packed, legacy, packed, …) so a
    // noisy-neighbour slow phase on shared hardware cannot land entirely
    // on one kernel's measurement window; best-of per kernel as above.
    let (mut before_s, mut after_s) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..3 {
        tensor::linalg::set_legacy_kernel(true);
        before_s = before_s.min(best_time(1, &ge, model.as_ref(), &x, &y, &cfg));
        tensor::linalg::set_legacy_kernel(false);
        after_s = after_s.min(best_time(1, &ge, model.as_ref(), &x, &y, &cfg));
    }
    let (before_tps, after_tps) = (trials as f64 / before_s, trials as f64 / after_s);
    println!(
        "Kernel throughput (serial, {trials} trials): legacy axpy {before_tps:.2} trials/s, \
         packed {after_tps:.2} trials/s ({:.2}x)\n",
        after_tps / before_tps
    );

    // Fused quantise-into-pack vs the two-pass hook round-trip: the same
    // serial campaign with the fused single-pass quantise path on vs off.
    // Canonical per-trial records are asserted byte-identical first — the
    // fused path is a pure performance lever. Interleaved best-of as above.
    goldeneye::set_fused_quantize(false);
    let two_pass_jsonl = run_campaign(&ge, model.as_ref(), &x, &y, &cfg).canonical_trial_jsonl();
    goldeneye::set_fused_quantize(true);
    let fused_jsonl = run_campaign(&ge, model.as_ref(), &x, &y, &cfg).canonical_trial_jsonl();
    assert!(fused_jsonl == two_pass_jsonl, "fused quantise changed per-trial campaign records");
    let (mut two_pass_s, mut fused_s) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..3 {
        goldeneye::set_fused_quantize(false);
        two_pass_s = two_pass_s.min(best_time(1, &ge, model.as_ref(), &x, &y, &cfg));
        goldeneye::set_fused_quantize(true);
        fused_s = fused_s.min(best_time(1, &ge, model.as_ref(), &x, &y, &cfg));
    }
    let (two_pass_tps, fused_tps) = (trials as f64 / two_pass_s, trials as f64 / fused_s);
    println!(
        "Fused quantise-into-pack (serial, {trials} trials): two-pass {two_pass_tps:.2} \
         trials/s, fused {fused_tps:.2} trials/s ({:.2}x, byte-identical records)\n",
        fused_tps / two_pass_tps
    );

    // Batched checkpoint/replay vs. the per-trial engine: same campaign,
    // same canonical per-trial records (asserted byte-identical), but
    // trials packed N to a forward and replayed from the checkpoint
    // preceding their injection layer. Reported as end-to-end trials/sec.
    let base = CampaignConfig {
        injections_per_layer: n,
        kind: SiteKind::Value,
        seed: 17,
        jobs: 1,
        ..Default::default()
    };
    let serial_result = run_campaign(&ge, model.as_ref(), &x, &y, &base);
    let serial_jsonl = serial_result.canonical_trial_jsonl();
    let unbatched_s = best_time(2, &ge, model.as_ref(), &x, &y, &base);
    let unbatched_tps = trials as f64 / unbatched_s;
    println!(
        "\nBatched replay vs per-trial (serial, {trials} trials): per-trial \
         {unbatched_tps:.2} trials/s"
    );
    let mut batch_rows: Vec<Json> = Vec::new();
    let mut best_batched_tps = unbatched_tps;
    for batch in [4usize, 8, 16, 32] {
        let cfg = base.clone().with_trials_per_batch(batch);
        let result = run_campaign(&ge, model.as_ref(), &x, &y, &cfg);
        assert!(
            result.canonical_trial_jsonl() == serial_jsonl,
            "batch {batch} diverged from the per-trial baseline"
        );
        let secs = best_time(2, &ge, model.as_ref(), &x, &y, &cfg);
        let tps = trials as f64 / secs;
        best_batched_tps = best_batched_tps.max(tps);
        println!(
            "  batch {batch:>3}: {tps:>8.2} trials/s ({:.2}x, byte-identical records)",
            tps / unbatched_tps
        );
        batch_rows.push(Json::obj([
            ("trials_per_batch", Json::from(batch)),
            ("seconds", Json::Num(secs)),
            ("trials_per_sec", Json::Num(tps)),
            ("speedup_vs_per_trial", Json::Num(tps / unbatched_tps)),
        ]));
    }

    // Early stopping: trial savings at equal statistical power. Stopping
    // decisions happen only at EARLY_STOP_WAVE boundaries (after >= 20
    // trials), so the quick per-layer trial count is far too small for a
    // site to ever stop; this section plans its own deeper campaign.
    // Each site gets `es_n` trials; the CI target is what that full
    // campaign achieves on its *worst* site, so the early-stopped run
    // reaches the same per-site precision everywhere while skipping the
    // trials that already-converged sites don't need. Batched throughput
    // is per-trial-invariant, so the per-trial engine's trials/sec above
    // is the fair baseline.
    let es_n = (8 * goldeneye::EARLY_STOP_WAVE).max(n);
    let es_base = CampaignConfig {
        injections_per_layer: es_n,
        kind: SiteKind::Value,
        seed: 17,
        jobs: 1,
        ..Default::default()
    }
    .with_trials_per_batch(16);
    let t = Instant::now();
    let es_full = run_campaign(&ge, model.as_ref(), &x, &y, &es_base);
    let es_full_secs = t.elapsed().as_secs_f64();
    let target_ci = es_full
        .layers
        .iter()
        .map(|l| l.delta_loss.ci95_half_width())
        .fold(0.0f32, f32::max)
        .max(1e-3);
    let es_cfg = es_base.clone().with_early_stop(target_ci);
    let t = Instant::now();
    let es_result = run_campaign(&ge, model.as_ref(), &x, &y, &es_cfg);
    let es_secs = t.elapsed().as_secs_f64();
    let es_tps = es_result.trials.len() as f64 / es_secs;
    // Effective throughput: planned statistical work per second — the
    // paper-level metric for "same power, less compute".
    let effective_tps = es_result.planned_trials as f64 / es_secs;
    println!(
        "Early stop @ CI {target_ci:.4} ({es_n} planned/site, full batched run \
         {es_full_secs:.1}s): {} of {} trials ({:.0}% saved), \
         {:.2} executed trials/s, {:.2} effective trials/s ({:.1}x per-trial engine)",
        es_result.trials.len(),
        es_result.planned_trials,
        es_result.early_stop_savings() * 100.0,
        es_tps,
        effective_tps,
        effective_tps / unbatched_tps
    );

    // Cold vs. warm artifact store: the same end-to-end multi-format
    // evaluation campaign — prepare a model, then per format quantise the
    // weights, measure accuracy, and run a small weight campaign —
    // against one `--store` directory, twice. The cold pass trains the
    // model and converts every weight tensor; the warm pass (a fresh
    // handle, like a second process) loads the trained checkpoint and the
    // cached conversions. Per-trial records are asserted byte-identical.
    let store_dir =
        std::env::temp_dir().join(format!("goldeneye_store_bench_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store_dir);
    let (cold_s, cold_stats, cold_jsonl) = store_end_to_end(&store_dir);
    let (warm_s, warm_stats, warm_jsonl) = store_end_to_end(&store_dir);
    let _ = std::fs::remove_dir_all(&store_dir);
    assert!(cold_jsonl == warm_jsonl, "warm store changed per-trial campaign records");
    let warm_speedup = cold_s / warm_s;
    println!(
        "\nArtifact store (end-to-end multi-format campaign): cold {cold_s:.2}s, warm \
         {warm_s:.2}s ({warm_speedup:.2}x, warm hit rate {:.0}%, {} bytes reused, \
         byte-identical records)",
        warm_stats.hit_rate() * 100.0,
        warm_stats.bytes_reused
    );

    // Tracing-overhead budget: the same serial campaign with the event
    // layer recording (ring-buffer sink, Info level) vs. off. Per-trial
    // cost with tracing off is one relaxed atomic load, so the overhead
    // target is <= 2% of wall-clock (best-of-3 to damp scheduler noise).
    let cfg = CampaignConfig {
        injections_per_layer: n,
        kind: SiteKind::Value,
        seed: 17,
        jobs: 1,
        ..Default::default()
    };
    let (off, on, events) = measure_overhead(3, &ge, model.as_ref(), &x, &y, &cfg);
    let overhead = on / off - 1.0;
    println!(
        "Tracing overhead (serial, {n} inj/layer): off {off:.3}s, on {on:.3}s \
         ({:+.2}%, {events} buffered events) — budget {:.0}%{}",
        overhead * 100.0,
        OVERHEAD_BUDGET * 100.0,
        if overhead <= OVERHEAD_BUDGET { "" } else { "  ** OVER BUDGET **" }
    );

    manifest.wall_time_s = t_all.elapsed().as_secs_f64();
    manifest = manifest
        .with_extra("timings", Json::Arr(timing_rows))
        .with_extra("trace_overhead", Json::Num(overhead))
        .with_extra("trace_overhead_budget", Json::Num(OVERHEAD_BUDGET))
        .with_extra("untraced_s", Json::Num(off))
        .with_extra("traced_s", Json::Num(on))
        .with_extra("serial_trials", Json::from(trials))
        .with_extra("trials_per_sec_legacy_kernel", Json::Num(before_tps))
        .with_extra("trials_per_sec_packed_kernel", Json::Num(after_tps))
        .with_extra("kernel_throughput_ratio", Json::Num(after_tps / before_tps))
        .with_extra("trials_per_sec_two_pass_quantise", Json::Num(two_pass_tps))
        .with_extra("trials_per_sec_fused_quantise", Json::Num(fused_tps))
        .with_extra("fused_quantise_speedup", Json::Num(fused_tps / two_pass_tps))
        .with_extra("trials_per_sec_per_trial_engine", Json::Num(unbatched_tps))
        .with_extra("batched_engine", Json::Arr(batch_rows))
        .with_extra("best_batched_trials_per_sec", Json::Num(best_batched_tps))
        .with_extra("batched_speedup", Json::Num(best_batched_tps / unbatched_tps))
        .with_extra("early_stop_planned_per_site", Json::from(es_n))
        .with_extra("early_stop_full_run_s", Json::Num(es_full_secs))
        .with_extra("early_stop_ci_target", Json::Num(f64::from(target_ci)))
        .with_extra("early_stop_savings", Json::Num(es_result.early_stop_savings()))
        .with_extra("early_stop_executed_trials", Json::from(es_result.trials.len()))
        .with_extra("early_stop_planned_trials", Json::from(es_result.planned_trials))
        .with_extra("effective_trials_per_sec", Json::Num(effective_tps))
        .with_extra("effective_speedup_vs_per_trial", Json::Num(effective_tps / unbatched_tps))
        .with_extra("store_cold_s", Json::Num(cold_s))
        .with_extra("store_warm_s", Json::Num(warm_s))
        .with_extra("store_warm_speedup", Json::Num(warm_speedup))
        .with_extra("store_cold_hit_rate", Json::Num(cold_stats.hit_rate()))
        .with_extra("store_warm_hit_rate", Json::Num(warm_stats.hit_rate()))
        .with_extra("store_warm_bytes_reused", Json::from(warm_stats.bytes_reused));
    args.finish_run(manifest, Some("BENCH_campaign.json"));
}

/// One end-to-end multi-format pass against `dir`: model preparation
/// (training on a cold store, checkpoint load on a warm one), then for
/// each format an accuracy evaluation plus a small weight campaign.
/// Returns (wall seconds, this handle's store stats, concatenated
/// canonical per-trial records).
fn store_end_to_end(dir: &std::path::Path) -> (f64, store::StoreStats, String) {
    use rand::SeedableRng;
    let t = Instant::now();
    let store = Arc::new(store::Store::open(dir).expect("cannot open bench store"));
    let mut rng = rand::rngs::StdRng::seed_from_u64(77);
    let model = models::ResNet::new(models::ResNetConfig::tiny(8), &mut rng);
    let data = models::SyntheticDataset::generate(128, 16, 4, 7);
    let ckpt = "bench:store:tiny8";
    let cached = models::load_params_from_store(&model, &store, ckpt)
        .expect("corrupt checkpoint in bench store");
    if !cached {
        models::train(
            &model,
            &data,
            &models::TrainConfig { epochs: 8, batch_size: 16, lr: 3e-3, ..Default::default() },
        );
        models::save_params_to_store(&model, &store, ckpt);
    }
    let (x, y) = data.head_batch(8);
    let cfg = CampaignConfig {
        injections_per_layer: 2,
        kind: SiteKind::Value,
        seed: 3,
        jobs: 1,
        ..Default::default()
    };
    let mut jsonl = String::new();
    for spec in ["fp:e4m3", "fp:e5m2", "int:8", "posit:8:0", "bfp:e5m5:b16"] {
        let ge = GoldenEye::parse(spec).expect("valid spec").with_store(store.clone());
        evaluate_accuracy_jobs(&ge, &model, &data, 32, 16, 1);
        jsonl.push_str(&run_weight_campaign(&ge, &model, &x, &y, &cfg).canonical_trial_jsonl());
    }
    (t.elapsed().as_secs_f64(), store.stats(), jsonl)
}
