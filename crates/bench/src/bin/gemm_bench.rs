//! GEMM kernel benchmark: the packed register-tiled kernel
//! ([`tensor::linalg::sgemm`]) against the legacy axpy kernel
//! (`sgemm_axpy`), at 1 and N intra-op threads, in GFLOP/s.
//!
//! Every (kernel, threads, size) cell is checked bit-identical to
//! `matmul_naive` before it is timed, so the numbers always describe the
//! *correct* kernel — never a fast-but-wrong variant.
//!
//! Writes `BENCH_gemm.json` (override with `--out`): the run manifest
//! with one row per cell plus the two ISSUE-level summary ratios
//! (single-thread packed/axpy at 512³, and packed N-thread/1-thread).
//!
//! Run with: `cargo run --release -p bench --bin gemm_bench
//! [--quick] [--jobs N] [--out PATH]`

use bench::BenchArgs;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;
use tensor::linalg::{matmul_naive, sgemm, sgemm_axpy};
use tensor::Tensor;
use trace::Json;

/// Smallest wall-clock for one kernel invocation over `reps` repetitions
/// (minimum damps scheduler noise), after one untimed warm-up.
fn best_secs(reps: usize, mut run: impl FnMut()) -> f64 {
    run();
    (0..reps)
        .map(|_| {
            let t = Instant::now();
            run();
            t.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

fn random_vec(n: usize, rng: &mut StdRng) -> Vec<f32> {
    (0..n).map(|_| rng.gen_range(-1.0f32..1.0)).collect()
}

fn main() {
    let args = BenchArgs::parse();
    let quick = args.quick;
    let max_threads = if args.jobs <= 1 {
        std::thread::available_parallelism().map(|p| p.get()).unwrap_or(4)
    } else {
        args.jobs
    };
    let sizes: &[usize] = if quick { &[64, 128, 256] } else { &[64, 128, 256, 512, 1024] };
    let reps = |m: usize| {
        if m <= 128 {
            40
        } else if m <= 512 {
            12
        } else {
            4
        }
    };

    let mut manifest = trace::RunManifest::new("bench gemm_bench")
        .with_config("quick", quick)
        .with_config("max_threads", max_threads)
        .with_config("sizes", Json::Arr(sizes.iter().map(|&s| Json::from(s)).collect()));
    let t_all = Instant::now();
    let mut rows: Vec<Json> = Vec::new();
    // (size -> GFLOP/s) cells feeding the two ISSUE-level summary ratios.
    let mut axpy1 = std::collections::BTreeMap::new();
    let mut packed1 = std::collections::BTreeMap::new();
    let mut packed_n = std::collections::BTreeMap::new();

    println!("GEMM kernels (square m=k=n, f32, GFLOP/s; best of reps)\n");
    println!("{:<8} {:<14} {:>8} {:>10} {:>10}", "size", "kernel", "threads", "seconds", "GFLOP/s");
    let mut rng = StdRng::seed_from_u64(0x6E33);
    for &m in sizes {
        let (k, n) = (m, m);
        let a = random_vec(m * k, &mut rng);
        let b = random_vec(k * n, &mut rng);
        let flops = 2.0 * (m as f64) * (k as f64) * (n as f64);
        let reference = {
            let at = Tensor::from_vec(a.clone(), [m, k]);
            let bt = Tensor::from_vec(b.clone(), [k, n]);
            matmul_naive(&at, &bt)
        };
        let cells: &[(&str, usize)] = &[("axpy", 1), ("packed", 1), ("packed", max_threads.max(2))];
        for &(kernel, threads) in cells {
            let _guard = tensor::parallel::with_threads(threads);
            let mut out = vec![0.0f32; m * n];
            // Correctness gate: the timed kernel must agree bit-for-bit
            // with the naive reference at this thread count.
            match kernel {
                "axpy" => sgemm_axpy(m, k, n, &a, &b, &mut out),
                _ => sgemm(m, k, n, &a, &b, &mut out),
            }
            let bits_equal =
                out.iter().zip(reference.as_slice()).all(|(x, y)| x.to_bits() == y.to_bits());
            assert!(bits_equal, "{kernel} kernel diverged from matmul_naive at {m}³");
            let secs = best_secs(reps(m), || {
                out.fill(0.0);
                match kernel {
                    "axpy" => sgemm_axpy(m, k, n, &a, &b, &mut out),
                    _ => sgemm(m, k, n, &a, &b, &mut out),
                }
            });
            let gflops = flops / secs / 1e9;
            println!("{m:<8} {kernel:<14} {threads:>8} {secs:>10.4} {gflops:>10.2}");
            rows.push(Json::obj([
                ("size", Json::from(m)),
                ("kernel", Json::from(kernel)),
                ("threads", Json::from(threads)),
                ("seconds", Json::Num(secs)),
                ("gflops", Json::Num(gflops)),
            ]));
            match (kernel, threads) {
                ("axpy", 1) => drop(axpy1.insert(m, gflops)),
                ("packed", 1) => drop(packed1.insert(m, gflops)),
                _ => drop(packed_n.insert(m, gflops)),
            }
        }
    }
    println!();

    // ISSUE acceptance ratios, reported at the largest size that ran both
    // cells (512 in full mode, 256 in --quick).
    let &pivot = packed1.keys().max().expect("no sizes ran");
    let pivot = if packed1.contains_key(&512) { 512 } else { pivot };
    let st_speedup = packed1[&pivot] / axpy1[&pivot];
    let thread_scaling = packed_n[&pivot] / packed1[&pivot];
    let cores = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
    println!(
        "packed vs axpy, 1 thread, {pivot}³: {st_speedup:.2}x   \
         packed {mt} vs 1 thread: {thread_scaling:.2}x ({cores} core(s) available)",
        mt = max_threads.max(2)
    );

    manifest.wall_time_s = t_all.elapsed().as_secs_f64();
    manifest = manifest
        .with_extra("cells", Json::Arr(rows))
        .with_extra("pivot_size", Json::from(pivot))
        .with_extra("single_thread_speedup_vs_axpy", Json::Num(st_speedup))
        .with_extra("thread_scaling", Json::Num(thread_scaling))
        .with_extra("cores_available", Json::from(cores))
        // Structural scaling headroom: the row-panel decomposition yields
        // ⌈m/MR⌉ independent tasks, so an N-core host has N-way parallel
        // work whenever ⌈m/4⌉ ≥ N (128 tasks at 512³). On a single-core
        // container `thread_scaling` is honestly ~1.0 — the bit-identity
        // tests (not this number) pin the thread-count contract.
        .with_extra("row_panel_tasks_at_pivot", Json::from(pivot.div_ceil(4)));
    args.finish_run(manifest, Some("BENCH_gemm.json"));
}
