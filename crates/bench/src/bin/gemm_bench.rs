//! GEMM kernel benchmark: the explicit-SIMD micro-kernels (scalar /
//! AVX2 / AVX-512, whichever the host supports) against the legacy axpy
//! kernel, plus runtime dispatch at 1 and N intra-op threads and the
//! fused quantise-into-pack path vs a separate quantise pass — all in
//! GFLOP/s.
//!
//! Every timed cell is checked bit-identical to `matmul_naive` (or, for
//! the fused pair, to its unfused twin) before it is timed, so the
//! numbers always describe the *correct* kernel — never a fast-but-wrong
//! variant. Forced kernels are additionally checked byte-identical to the
//! forced-scalar output, which is the divergence gate the CI bench-smoke
//! job relies on.
//!
//! Writes `BENCH_gemm.json` (override with `--out`): the run manifest
//! with one row per cell, per-kernel single-thread GFLOP/s, the measured
//! multicore scaling, and the fused-pack overhead ratio.
//!
//! Run with: `cargo run --release -p bench --bin gemm_bench
//! [--quick] [--jobs N] [--out PATH]`

use bench::BenchArgs;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;
use tensor::linalg::kernels::{self, Kernel};
use tensor::linalg::{matmul_naive, sgemm, sgemm_axpy, sgemm_fused};
use tensor::Tensor;
use trace::Json;

/// Smallest wall-clock for one kernel invocation over `reps` repetitions
/// (minimum damps scheduler noise), after one untimed warm-up.
fn best_secs(reps: usize, mut run: impl FnMut()) -> f64 {
    run();
    (0..reps)
        .map(|_| {
            let t = Instant::now();
            run();
            t.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

fn random_vec(n: usize, rng: &mut StdRng) -> Vec<f32> {
    (0..n).map(|_| rng.gen_range(-1.0f32..1.0)).collect()
}

/// The toy quantiser for the fused-pack A/B: exact in f32 so fused and
/// separate passes must agree bitwise.
fn quant(x: f32) -> f32 {
    (x * 8.0).round() * 0.125
}

fn main() {
    let args = BenchArgs::parse();
    let quick = args.quick;
    let max_threads = if args.jobs <= 1 {
        std::thread::available_parallelism().map(|p| p.get()).unwrap_or(4)
    } else {
        args.jobs
    };
    let sizes: &[usize] = if quick { &[64, 128, 256] } else { &[64, 128, 256, 512, 1024] };
    let reps = |m: usize| {
        if m <= 128 {
            40
        } else if m <= 512 {
            12
        } else {
            4
        }
    };
    let supported = kernels::supported_kernels();
    // The thread budget the pool actually grants for the N-thread cells.
    let threads_effective = {
        let _g = tensor::parallel::with_threads(max_threads.max(2));
        tensor::parallel::max_threads()
    };

    let mut manifest = trace::RunManifest::new("bench gemm_bench")
        .with_config("quick", quick)
        .with_config("max_threads", max_threads)
        .with_config("sizes", Json::Arr(sizes.iter().map(|&s| Json::from(s)).collect()))
        .with_config(
            "kernels_supported",
            Json::Arr(supported.iter().map(|k| Json::from(k.name())).collect()),
        );
    let t_all = Instant::now();
    let mut rows: Vec<Json> = Vec::new();
    // (size -> GFLOP/s) cells feeding the summary ratios.
    let mut axpy1 = std::collections::BTreeMap::new();
    let mut dispatch1 = std::collections::BTreeMap::new();
    let mut dispatch_n = std::collections::BTreeMap::new();
    let mut fused1 = std::collections::BTreeMap::new();
    let mut separate1 = std::collections::BTreeMap::new();
    let mut per_kernel1: std::collections::BTreeMap<(&'static str, usize), f64> =
        std::collections::BTreeMap::new();

    println!(
        "GEMM kernels (square m=k=n, f32, GFLOP/s; best of reps; dispatch = {:?})\n",
        kernels::active()
    );
    println!("{:<8} {:<18} {:>8} {:>10} {:>10}", "size", "kernel", "threads", "seconds", "GFLOP/s");
    let mut rng = StdRng::seed_from_u64(0x6E33);
    for &m in sizes {
        let (k, n) = (m, m);
        let a = random_vec(m * k, &mut rng);
        let b = random_vec(k * n, &mut rng);
        let flops = 2.0 * (m as f64) * (k as f64) * (n as f64);
        let reference = {
            let at = Tensor::from_vec(a.clone(), [m, k]);
            let bt = Tensor::from_vec(b.clone(), [k, n]);
            matmul_naive(&at, &bt)
        };
        // Divergence gate baseline: the forced-scalar kernel's output.
        let scalar_out = {
            kernels::force(Some(Kernel::Scalar));
            let _g = tensor::parallel::with_threads(1);
            let mut out = vec![0.0f32; m * n];
            sgemm(m, k, n, &a, &b, &mut out);
            kernels::force(None);
            out
        };
        assert!(
            scalar_out.iter().zip(reference.as_slice()).all(|(x, y)| x.to_bits() == y.to_bits()),
            "scalar kernel diverged from matmul_naive at {m}³"
        );

        // (label, forced kernel, threads). `None` = runtime dispatch.
        let mut cells: Vec<(String, Option<Kernel>, usize)> = vec![("axpy".into(), None, 1)];
        for &kern in &supported {
            cells.push((kern.name().into(), Some(kern), 1));
        }
        cells.push(("dispatch".into(), None, 1));
        cells.push(("dispatch".into(), None, max_threads.max(2)));
        for (label, forced, threads) in cells {
            kernels::force(forced);
            let _guard = tensor::parallel::with_threads(threads);
            let mut out = vec![0.0f32; m * n];
            let axpy = label == "axpy";
            if axpy {
                sgemm_axpy(m, k, n, &a, &b, &mut out);
            } else {
                sgemm(m, k, n, &a, &b, &mut out);
            }
            // Correctness gates: bit-identical to the naive reference, and
            // (for the micro-kernels) byte-identical to forced scalar.
            assert!(
                out.iter().zip(reference.as_slice()).all(|(x, y)| x.to_bits() == y.to_bits()),
                "{label} kernel diverged from matmul_naive at {m}³ ({threads} threads)"
            );
            if !axpy {
                assert!(
                    out.iter().zip(&scalar_out).all(|(x, y)| x.to_bits() == y.to_bits()),
                    "{label} kernel diverged from forced scalar at {m}³ ({threads} threads)"
                );
            }
            let secs = best_secs(reps(m), || {
                out.fill(0.0);
                if axpy {
                    sgemm_axpy(m, k, n, &a, &b, &mut out);
                } else {
                    sgemm(m, k, n, &a, &b, &mut out);
                }
            });
            kernels::force(None);
            let gflops = flops / secs / 1e9;
            println!("{m:<8} {label:<18} {threads:>8} {secs:>10.4} {gflops:>10.2}");
            rows.push(Json::obj([
                ("size", Json::from(m)),
                ("kernel", Json::from(label.as_str())),
                ("threads", Json::from(threads)),
                ("seconds", Json::Num(secs)),
                ("gflops", Json::Num(gflops)),
            ]));
            match (label.as_str(), threads) {
                ("axpy", 1) => drop(axpy1.insert(m, gflops)),
                ("dispatch", 1) => drop(dispatch1.insert(m, gflops)),
                ("dispatch", _) => drop(dispatch_n.insert(m, gflops)),
                _ => {
                    if let Some(kern) = forced {
                        per_kernel1.insert((kern.name(), m), gflops);
                    }
                }
            }
        }

        // Fused quantise-into-pack vs a separate full-tensor quantise pass
        // feeding the same GEMM (both on runtime dispatch, 1 thread; both
        // timings include the quantisation work).
        {
            let _g = tensor::parallel::with_threads(1);
            let mut fused_out = vec![0.0f32; m * n];
            sgemm_fused(m, k, n, &a, &b, &mut fused_out, Some(&quant), Some(&quant));
            let mut sep_out = vec![0.0f32; m * n];
            let aq: Vec<f32> = a.iter().map(|&x| quant(x)).collect();
            let bq: Vec<f32> = b.iter().map(|&x| quant(x)).collect();
            sgemm(m, k, n, &aq, &bq, &mut sep_out);
            assert!(
                fused_out.iter().zip(&sep_out).all(|(x, y)| x.to_bits() == y.to_bits()),
                "fused pack diverged from separate quantise at {m}³"
            );
            let fused_secs = best_secs(reps(m), || {
                fused_out.fill(0.0);
                sgemm_fused(m, k, n, &a, &b, &mut fused_out, Some(&quant), Some(&quant));
            });
            let sep_secs = best_secs(reps(m), || {
                sep_out.fill(0.0);
                let aq: Vec<f32> = a.iter().map(|&x| quant(x)).collect();
                let bq: Vec<f32> = b.iter().map(|&x| quant(x)).collect();
                sgemm(m, k, n, &aq, &bq, &mut sep_out);
            });
            for (label, secs) in [("fused_pack", fused_secs), ("separate_quantise", sep_secs)] {
                let gflops = flops / secs / 1e9;
                println!("{m:<8} {label:<18} {:>8} {secs:>10.4} {gflops:>10.2}", 1);
                rows.push(Json::obj([
                    ("size", Json::from(m)),
                    ("kernel", Json::from(label)),
                    ("threads", Json::from(1usize)),
                    ("seconds", Json::Num(secs)),
                    ("gflops", Json::Num(gflops)),
                ]));
            }
            fused1.insert(m, fused_secs);
            separate1.insert(m, sep_secs);
        }
    }
    println!();

    // Summary ratios, reported at the largest size that ran every cell
    // (512 in full mode, 256 in --quick).
    let &pivot = dispatch1.keys().max().expect("no sizes ran");
    let pivot = if dispatch1.contains_key(&512) { 512 } else { pivot };
    let st_speedup = dispatch1[&pivot] / axpy1[&pivot];
    // Thread scaling is reported at the largest size that ran: the
    // scoped-worker pool spawns per dispatch, so small GEMMs are overhead
    // dominated and the multicore claim is about large ones.
    let &scaling_size = dispatch_n.keys().max().expect("no sizes ran");
    let thread_scaling = dispatch_n[&scaling_size] / dispatch1[&scaling_size];
    let fused_speedup = separate1[&pivot] / fused1[&pivot];
    let cores = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
    println!(
        "dispatch vs axpy, 1 thread, {pivot}³: {st_speedup:.2}x   dispatch {threads_effective} \
         vs 1 thread, {scaling_size}³: {thread_scaling:.2}x ({cores} core(s) available)   fused \
         pack vs separate quantise: {fused_speedup:.2}x"
    );
    let per_kernel_pivot: Vec<(&'static str, f64)> = per_kernel1
        .iter()
        .filter(|((_, size), _)| *size == pivot)
        .map(|((name, _), g)| (*name, *g))
        .collect();
    for (name, g) in &per_kernel_pivot {
        println!("  {name:<12} {g:>8.2} GFLOP/s (1 thread, {pivot}³)");
    }

    manifest.wall_time_s = t_all.elapsed().as_secs_f64();
    manifest = manifest
        .with_extra("cells", Json::Arr(rows))
        .with_extra("pivot_size", Json::from(pivot))
        .with_extra("single_thread_speedup_vs_axpy", Json::Num(st_speedup))
        .with_extra("thread_scaling", Json::Num(thread_scaling))
        .with_extra("thread_scaling_size", Json::from(scaling_size))
        .with_extra("threads_effective", Json::from(threads_effective))
        .with_extra("fused_pack_speedup", Json::Num(fused_speedup))
        .with_extra(
            "per_kernel_gflops",
            Json::Arr(
                per_kernel_pivot
                    .iter()
                    .map(|(name, g)| {
                        Json::obj([("kernel", Json::from(*name)), ("gflops", Json::Num(*g))])
                    })
                    .collect(),
            ),
        )
        .with_extra("cores_available", Json::from(cores))
        // The row-panel decomposition yields ⌈m/MR⌉ independent tasks, so
        // an N-core host has N-way parallel work whenever ⌈m/4⌉ ≥ N;
        // `thread_scaling` above is the scaling *measured* on this host
        // with `threads_effective` workers, not a structural claim.
        .with_extra("row_panel_tasks_at_pivot", Json::from(pivot.div_ceil(4)));
    args.finish_run(manifest, Some("BENCH_gemm.json"));
}
