//! Regenerates **Figure 3** — runtime performance of GoldenEye across
//! number formats, with error injection (EI) on/off.
//!
//! The paper's claim is relative, not absolute (their substrate is a GPU,
//! ours a CPU): native FP32 is fastest; emulated FP/FxP/INT run close to
//! native (their conversions are cheap elementwise kernels); BFP/AFP pay a
//! per-block/per-tensor metadata path and run a few times slower; the
//! *additional* cost of EI and EI-metadata is negligible because a single
//! flip per inference is amortised.
//!
//! Run with: `cargo run --release -p bench --bin fig3 [--full]`

use bench::{prepare_model, test_set, BenchArgs, ModelKind};
use goldeneye::{run_campaign, CampaignConfig, GoldenEye, InjectionPlan};
use inject::SiteKind;
use nn::Module;
use std::time::Instant;
use tensor::Tensor;

struct Config {
    label: &'static str,
    spec: Option<&'static str>,
    injection: Option<SiteKind>,
}

const CONFIGS: &[Config] = &[
    Config { label: "native_fp32", spec: None, injection: None },
    Config { label: "fp_e8m23", spec: Some("fp32"), injection: None },
    Config { label: "fp_e5m10", spec: Some("fp16"), injection: None },
    Config { label: "fp_e8m7 (bfloat16)", spec: Some("bfloat16"), injection: None },
    Config { label: "fp_e4m3 (fp8)", spec: Some("fp:e4m3"), injection: None },
    Config { label: "fp_e4m3 +EI", spec: Some("fp:e4m3"), injection: Some(SiteKind::Value) },
    Config { label: "fxp_1_3_12", spec: Some("fxp:1:3:12"), injection: None },
    Config { label: "fxp_1_3_12 +EI", spec: Some("fxp:1:3:12"), injection: Some(SiteKind::Value) },
    Config { label: "int8", spec: Some("int:8"), injection: None },
    Config { label: "int8 +EI", spec: Some("int:8"), injection: Some(SiteKind::Value) },
    Config { label: "int8 +EI-metadata", spec: Some("int:8"), injection: Some(SiteKind::Metadata) },
    Config { label: "bfp_e8m7_b16", spec: Some("bfp:e8m7:b16"), injection: None },
    Config {
        label: "bfp_e8m7_b16 +EI",
        spec: Some("bfp:e8m7:b16"),
        injection: Some(SiteKind::Value),
    },
    Config {
        label: "bfp_e8m7_b16 +EI-metadata",
        spec: Some("bfp:e8m7:b16"),
        injection: Some(SiteKind::Metadata),
    },
    Config { label: "afp_e4m3", spec: Some("afp:e4m3"), injection: None },
    Config { label: "afp_e4m3 +EI", spec: Some("afp:e4m3"), injection: Some(SiteKind::Value) },
    Config {
        label: "afp_e4m3 +EI-metadata",
        spec: Some("afp:e4m3"),
        injection: Some(SiteKind::Metadata),
    },
];

fn time_config(model: &dyn Module, x: &Tensor, cfg: &Config, runs: usize) -> (f64, f64, f64) {
    let mut samples = Vec::with_capacity(runs);
    let ge = cfg.spec.map(|s| GoldenEye::parse(s).expect("bad spec"));
    // Warm-up runs (first-touch allocations, caches).
    run_once(model, x, &ge, cfg, 0);
    run_once(model, x, &ge, cfg, 1);
    for i in 0..runs {
        let t = Instant::now();
        run_once(model, x, &ge, cfg, i as u64);
        samples.push(t.elapsed().as_secs_f64() * 1e3);
    }
    let mean = samples.iter().sum::<f64>() / runs as f64;
    let var = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / runs as f64;
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let median = samples[samples.len() / 2];
    (median, mean, var.sqrt())
}

fn run_once(model: &dyn Module, x: &Tensor, ge: &Option<GoldenEye>, cfg: &Config, seed: u64) {
    match ge {
        None => {
            models::forward_logits(model, x.clone());
        }
        Some(ge) => match cfg.injection {
            None => {
                ge.run(model, x.clone());
            }
            Some(kind) => {
                let plan = InjectionPlan::single(0, kind);
                ge.run_with_injection(model, x.clone(), plan, seed);
            }
        },
    }
}

fn main() {
    let args = BenchArgs::parse();
    let runs = if args.full { 100 } else { 10 };
    let batch = 32;
    let t_all = Instant::now();
    let mut rows: Vec<trace::Json> = Vec::new();
    println!("Figure 3: runtime per inference batch (batch={batch}, {runs} timed runs)\n");
    for kind in [ModelKind::Resnet18, ModelKind::DeitTiny] {
        let (model, _) = prepare_model(kind);
        let (x, _) = test_set().head_batch(batch);
        // Measure everything first; report ratios against the native row
        // from the same pass (median is robust to scheduler noise).
        let measured: Vec<(f64, f64, f64)> =
            CONFIGS.iter().map(|cfg| time_config(model.as_ref(), &x, cfg, runs)).collect();
        let native_ms = measured[0].0;
        println!("== {} ==", kind.name());
        println!(
            "{:<28} {:>11} {:>10} {:>8} {:>10}",
            "config", "median ms", "mean ms", "std %", "vs native"
        );
        for (cfg, (median, mean, std)) in CONFIGS.iter().zip(&measured) {
            println!(
                "{:<28} {:>11.2} {:>10.2} {:>7.1}% {:>9.2}x",
                cfg.label,
                median,
                mean,
                100.0 * std / mean,
                median / native_ms
            );
            rows.push(trace::Json::obj([
                ("model", trace::Json::from(kind.name())),
                ("config", trace::Json::from(cfg.label)),
                ("median_ms", trace::Json::Num(*median)),
                ("mean_ms", trace::Json::Num(*mean)),
                ("std_ms", trace::Json::Num(*std)),
                ("vs_native", trace::Json::Num(median / native_ms)),
            ]));
        }
        println!();
    }
    println!("Expected shape (paper): native fastest; FP/FxP/INT near native;");
    println!("BFP/AFP slower (metadata path); +EI and +EI-metadata ~free.");

    // Campaign throughput: the paper's speedups come from batching many
    // independent faulty inferences; here the lever is `--jobs N` worker
    // threads (identical results, see `goldeneye::run_campaign`).
    if args.jobs != 1 {
        let (model, _) = prepare_model(ModelKind::Resnet18);
        let (x, y) = test_set().head_batch(8);
        let ge = GoldenEye::parse("fp:e4m3").expect("valid spec");
        let n = args.injections_per_layer(10);
        let mut cfg = CampaignConfig {
            injections_per_layer: n,
            kind: SiteKind::Value,
            seed: 3,
            jobs: 1,
            ..Default::default()
        };
        println!("\nCampaign throughput ({n} injections/layer, resnet18):");
        let t = Instant::now();
        run_campaign(&ge, model.as_ref(), &x, &y, &cfg);
        let serial = t.elapsed().as_secs_f64();
        cfg.jobs = args.jobs;
        let t = Instant::now();
        run_campaign(&ge, model.as_ref(), &x, &y, &cfg);
        let parallel = t.elapsed().as_secs_f64();
        println!(
            "  jobs=1: {serial:.2}s   jobs={}: {parallel:.2}s   speedup {:.2}x",
            args.jobs,
            serial / parallel
        );
    }
    let mut m = trace::RunManifest::new("bench fig3")
        .with_config("batch", batch)
        .with_config("runs", runs)
        .with_extra("rows", trace::Json::Arr(rows));
    m.wall_time_s = t_all.elapsed().as_secs_f64();
    args.finish_run(m, None);
}
