//! Regenerates **Figure 6** — the DSE heuristic's visited nodes and their
//! accuracies, per format family, for ResNet-50 and DeiT-tiny.
//!
//! The paper's observations: the search completes within 16 nodes, more
//! than half the visited nodes are acceptable design points, and the
//! chosen configurations differ per model.
//!
//! Run with: `cargo run --release -p bench --bin fig6`

use bench::{prepare_model, test_set, BenchArgs, ModelKind, TEST_N};
use goldeneye::dse::{search, DseFamily};
use goldeneye::{evaluate_accuracy, GoldenEye};
use std::time::Instant;
use trace::Json;

fn main() {
    let args = BenchArgs::parse();
    let data = test_set();
    let threshold_drop = 0.02; // 2% of absolute accuracy
    let t_all = Instant::now();
    let mut rows: Vec<Json> = Vec::new();
    println!("Figure 6: DSE node traversal (threshold: baseline − {threshold_drop})\n");
    for kind in [ModelKind::Resnet50, ModelKind::DeitTiny] {
        let (model, baseline) = prepare_model(kind);
        println!("== {} (baseline {:.1}%) ==", kind.name(), baseline * 100.0);
        for (label, family) in [
            ("FP", DseFamily::Fp),
            ("FxP", DseFamily::Fxp),
            ("INT", DseFamily::Int),
            ("BFP", DseFamily::Bfp { block: usize::MAX }),
            ("AFP", DseFamily::Afp),
        ] {
            let result = search(
                family,
                |spec| {
                    let ge = GoldenEye::new(spec.build());
                    evaluate_accuracy(&ge, model.as_ref(), &data, TEST_N, 32)
                },
                baseline,
                threshold_drop,
            );
            println!("-- {label}: {} nodes visited --", result.nodes.len());
            for n in &result.nodes {
                println!(
                    "   node {:>2}: {:<16} acc {:>5.1}%  {}",
                    n.index,
                    n.spec.to_string(),
                    n.accuracy * 100.0,
                    if n.accepted { "ok" } else { "REJECT" }
                );
                rows.push(Json::obj([
                    ("model", Json::from(kind.name())),
                    ("family", Json::from(label)),
                    ("node", Json::from(n.index)),
                    ("spec", Json::from(n.spec.to_string())),
                    ("accuracy", Json::from_f32(n.accuracy)),
                    ("accepted", Json::from(n.accepted)),
                ]));
            }
            match &result.best {
                Some(best) => println!("   best: {best}"),
                None => println!("   best: none (family unusable at threshold)"),
            }
        }
        println!();
    }
    println!("Expected shape (paper): ≤16 nodes per family; more than half accepted;");
    println!("optimal configs differ between the CNN and the transformer.");
    let mut m = trace::RunManifest::new("bench fig6")
        .with_config("threshold_drop", threshold_drop)
        .with_config("eval_samples", TEST_N)
        .with_extra("nodes", Json::Arr(rows));
    m.wall_time_s = t_all.elapsed().as_secs_f64();
    args.finish_run(m, None);
}
