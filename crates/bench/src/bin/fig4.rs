//! Regenerates **Figure 4** — model accuracy vs. number format and bit
//! width, for a CNN (ResNet-18) and a transformer (DeiT-tiny).
//!
//! The paper's observations to reproduce: accuracy holds at high widths
//! and collapses format-dependently at low widths; the transformer
//! tolerates low-width FP better than the CNN; AFP rescues accuracy at
//! widths where plain FP has already collapsed (its bias metadata moves
//! the representable window onto each tensor's range).
//!
//! Run with: `cargo run --release -p bench --bin fig4`

use bench::{prepare_model, test_set, BenchArgs, ModelKind, TEST_N};
use goldeneye::accuracy_sweep;
use std::time::Instant;
use trace::Json;

/// The format ladder per family, highest to lowest width (the paper's 32,
/// 16, 12, 8, 4 series).
const LADDERS: &[(&str, &[&str])] = &[
    // fp:e2m5 is the paper's highlighted point: 8 bits with a starved
    // exponent — the transformer tolerates it, the CNN does not, and AFP
    // rescues it (its bias metadata re-centres the tiny window).
    ("FP", &["fp:e8m23", "fp:e5m10", "fp:e4m7", "fp:e4m3", "fp:e2m5", "fp:e2m5:nodn", "fp:e2m1"]),
    ("FxP", &["fxp:1:15:16", "fxp:1:7:8", "fxp:1:5:6", "fxp:1:3:4", "fxp:1:1:2"]),
    ("INT", &["int:32", "int:16", "int:12", "int:8", "int:4"]),
    ("BFP", &["bfp:e8m23:b16", "bfp:e8m15:b16", "bfp:e8m11:b16", "bfp:e8m7:b16", "bfp:e8m3:b16"]),
    ("AFP", &["afp:e8m23", "afp:e5m10", "afp:e4m7", "afp:e4m3", "afp:e2m5", "afp:e2m1"]),
];

fn main() {
    let args = BenchArgs::parse();
    let data = test_set();
    let t_all = Instant::now();
    let mut rows: Vec<Json> = Vec::new();
    println!("Figure 4: accuracy vs bit width (eval on {TEST_N} held-out samples)\n");
    for kind in [ModelKind::Resnet18, ModelKind::DeitTiny] {
        let (model, native_acc) = prepare_model(kind);
        println!("== {} (native FP32: {:.1}%) ==", kind.name(), native_acc * 100.0);
        println!("{:<8} {:>16} {:>6} {:>10}", "family", "spec", "bits", "accuracy");
        for (family, specs) in LADDERS {
            let points = accuracy_sweep(model.as_ref(), &data, specs, TEST_N, 32);
            for p in points {
                println!(
                    "{:<8} {:>16} {:>6} {:>9.1}%",
                    family,
                    p.spec,
                    p.bit_width,
                    p.accuracy * 100.0
                );
                rows.push(Json::obj([
                    ("model", Json::from(kind.name())),
                    ("family", Json::from(*family)),
                    ("spec", Json::from(p.spec.as_str())),
                    ("bits", Json::from(p.bit_width)),
                    ("accuracy", Json::from_f32(p.accuracy)),
                ]));
            }
        }
        println!();
    }
    println!("Expected shape (paper): wide formats match native; low-width FP");
    println!("hurts the CNN before the transformer; AFP holds accuracy at");
    println!("widths where FP has collapsed.");
    let mut m = trace::RunManifest::new("bench fig4")
        .with_config("eval_samples", TEST_N)
        .with_extra("rows", Json::Arr(rows));
    m.wall_time_s = t_all.elapsed().as_secs_f64();
    args.finish_run(m, None);
}
