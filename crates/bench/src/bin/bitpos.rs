//! Ablation: ΔLoss per flipped bit position — the paper's §IV-C "through
//! additional analysis" finding that BFP magnifies the sign bit's
//! importance (the shared exponent removes exponent bits from the value,
//! so a larger fraction of flips land on high-impact bits).
//!
//! Run with: `cargo run --release -p bench --bin bitpos [--injections N]`

use bench::{prepare_model, test_set, BenchArgs, ModelKind};
use goldeneye::bitpos::bit_position_campaign;
use goldeneye::GoldenEye;
use std::time::Instant;
use trace::Json;

fn main() {
    let args = BenchArgs::parse();
    let trials = args.injections_per_layer(15);
    let t_all = Instant::now();
    let mut rows: Vec<Json> = Vec::new();
    let (model, _) = prepare_model(ModelKind::Resnet18);
    let (x, y) = test_set().head_batch(8);
    let probe = GoldenEye::parse("fp16").expect("valid spec");
    let layers = probe.discover_layers(model.as_ref(), x.clone());
    let target = layers[1].index;
    println!("Per-bit-position delta-loss at layer {target} ({trials} trials/bit, batch 8)\n");
    for spec in ["fp:e5m10", "bfp:e5m10:tensor", "int:16", "fxp:1:7:8"] {
        let ge = GoldenEye::parse(spec).expect("valid spec");
        let res = bit_position_campaign(&ge, model.as_ref(), &x, &y, target, trials, 5);
        println!("== {spec} ({} value bits) ==", res.len());
        println!("{:>4} {:>12} {:>12}", "bit", "dLoss", "mismatch");
        let total: f32 = res.iter().map(|r| r.delta_loss.mean()).sum();
        for r in &res {
            println!(
                "{:>4} {:>12.4} {:>11.1}%",
                r.bit,
                r.delta_loss.mean(),
                r.mismatch.mean() * 100.0
            );
            rows.push(Json::obj([
                ("spec", Json::from(spec)),
                ("bit", Json::from(r.bit)),
                ("delta_loss", Json::from_f32(r.delta_loss.mean())),
                ("mismatch", Json::from_f32(r.mismatch.mean())),
            ]));
        }
        let sign_share = if total > 0.0 { res[0].delta_loss.mean() / total } else { 0.0 };
        println!("sign bit share of total damage: {:.1}%\n", sign_share * 100.0);
    }
    println!("Expected shape (paper): FP damage concentrates in exponent bits;");
    println!("BFP's value has no exponent, so its sign bit carries a larger");
    println!("share of the damage than FP's.");
    let mut m = trace::RunManifest::new("bench bitpos")
        .with_config("trials_per_bit", trials)
        .with_config("layer", target)
        .with_extra("rows", Json::Arr(rows));
    m.wall_time_s = t_all.elapsed().as_secs_f64();
    args.finish_run(m, None);
}
