#![warn(missing_docs)]

//! Minimal in-tree property-testing shim, API-compatible with the subset
//! of [proptest](https://docs.rs/proptest) this workspace uses, so the
//! property suites run with **no registry access**.
//!
//! Differences from real proptest, by design:
//!
//! - **No shrinking.** A failing case reports its inputs verbatim; re-run
//!   with the printed values to debug.
//! - **Deterministic by default.** Cases are generated from a fixed seed
//!   (overridable via the `PROPTEST_SEED` environment variable), so CI
//!   runs are reproducible.
//! - **Rejection via [`prop_assume!`]** skips the case rather than
//!   resampling; a test where every case is rejected fails loudly.
//!
//! Supported surface: the [`proptest!`] macro (with an optional
//! `#![proptest_config(…)]` header), numeric range strategies,
//! [`collection::vec`], [`sample::select`], [`Strategy::prop_map`],
//! [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`], and
//! [`prop_assume!`].

use rand::rngs::StdRng;
use rand::SeedableRng;

pub mod strategy;

pub use strategy::{Just, Strategy};

/// Uniform choice from a fixed list (mirror of `proptest::sample`).
pub mod sample {
    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Strategy yielding a uniformly chosen element of a fixed list.
    #[derive(Debug, Clone)]
    pub struct Select<T: Clone>(Vec<T>);

    /// Mirrors `proptest::sample::select`: each case draws one of
    /// `values` uniformly at random.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty.
    pub fn select<T: Clone>(values: Vec<T>) -> Select<T> {
        assert!(!values.is_empty(), "select needs at least one value");
        Select(values)
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn sample(&self, rng: &mut StdRng) -> T {
            self.0[rng.gen_range(0..self.0.len())].clone()
        }
    }
}

/// Per-suite configuration (mirror of `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to generate per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Test-runner internals used by the expansion of [`proptest!`].
pub mod test_runner {
    use super::*;

    /// Why a single case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs — skip, don't fail.
        Reject,
        /// A `prop_assert…!` failed with this message.
        Fail(String),
    }

    impl TestCaseError {
        /// Builds a failure from a formatted message.
        #[must_use]
        pub fn fail(msg: String) -> Self {
            TestCaseError::Fail(msg)
        }
    }

    /// Drives the cases of one property.
    #[derive(Debug)]
    pub struct TestRunner {
        cases: u32,
        rng: StdRng,
        name: &'static str,
        rejected: u32,
        passed: u32,
    }

    impl TestRunner {
        /// Creates a runner for the property `name`.
        ///
        /// The RNG seed combines `PROPTEST_SEED` (default 0) with the
        /// property name, so different properties explore different
        /// streams but every run is reproducible.
        #[must_use]
        pub fn new(config: &ProptestConfig, name: &'static str) -> Self {
            let base: u64 =
                std::env::var("PROPTEST_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(0);
            let name_hash = name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
                (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3)
            });
            TestRunner {
                cases: config.cases,
                rng: StdRng::seed_from_u64(rand::mix64(base ^ name_hash)),
                name,
                rejected: 0,
                passed: 0,
            }
        }

        /// Number of cases to attempt.
        #[must_use]
        pub fn cases(&self) -> u32 {
            self.cases
        }

        /// The generator strategies sample from.
        pub fn rng(&mut self) -> &mut StdRng {
            &mut self.rng
        }

        /// Records one case's outcome, panicking on failure.
        ///
        /// # Panics
        ///
        /// Panics with the case description if the case failed.
        pub fn handle(&mut self, case: u32, result: Result<(), TestCaseError>, inputs: &str) {
            match result {
                Ok(()) => self.passed += 1,
                Err(TestCaseError::Reject) => self.rejected += 1,
                Err(TestCaseError::Fail(msg)) => panic!(
                    "proptest property `{}` failed at case {case}: {msg}\n    inputs: {inputs}\n    \
                     (no shrinking in the in-tree shim; re-run with these inputs to debug)",
                    self.name
                ),
            }
        }

        /// Final bookkeeping: a property where every case was rejected
        /// never tested anything, which is itself a bug.
        ///
        /// # Panics
        ///
        /// Panics if all cases were rejected.
        pub fn finish(&self) {
            assert!(
                self.passed > 0 || self.cases == 0,
                "proptest property `{}` rejected all {} cases via prop_assume!",
                self.name,
                self.rejected
            );
        }
    }
}

/// Strategies for collections (mirror of `proptest::collection`).
pub mod collection {
    use super::strategy::{SizeRange, Strategy, VecStrategy};

    /// A strategy producing `Vec`s whose length is drawn from `size` and
    /// whose elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

/// The glob-import surface (mirror of `proptest::prelude`).
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declares property tests: each `fn name(arg in strategy, …) { body }`
/// item expands to a `#[test]` running the body over sampled inputs.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($config:expr)] $($rest:tt)* ) => {
        $crate::__proptest_items! { config = $config; $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_items! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`] — one expansion per `fn` item.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( config = $config:expr; ) => {};
    ( config = $config:expr;
      $(#[$meta:meta])*
      fn $name:ident( $($arg:ident in $strategy:expr),* $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut runner = $crate::test_runner::TestRunner::new(&config, stringify!($name));
            for case in 0..runner.cases() {
                $(let $arg = $crate::Strategy::sample(&$strategy, runner.rng());)*
                let inputs = {
                    let mut s = String::new();
                    $(
                        if !s.is_empty() { s.push_str(", "); }
                        s.push_str(concat!(stringify!($arg), " = "));
                        s.push_str(&format!("{:?}", &$arg));
                    )*
                    s
                };
                let result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || { $body Ok(()) })();
                runner.handle(case, result, &inputs);
            }
            runner.finish();
        }
        $crate::__proptest_items! { config = $config; $($rest)* }
    };
}

/// Asserts a condition inside a property, failing the case (not the
/// process) so the runner can report the generating inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Asserts two values are equal inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: `{:?}` == `{:?}`", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{:?}` == `{:?}`: {}", l, r, format!($($fmt)*)
        );
    }};
}

/// Asserts two values differ inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: `{:?}` != `{:?}`", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: `{:?}` != `{:?}`: {}", l, r, format!($($fmt)*)
        );
    }};
}

/// Skips the current case when its inputs don't meet a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}
