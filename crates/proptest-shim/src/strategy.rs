//! Value-generation strategies (mirror of `proptest::strategy`).

use core::ops::{Range, RangeInclusive};
use rand::rngs::StdRng;
use rand::Rng;

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no value tree and no shrinking: a
/// strategy is just a sampler.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates values by sampling a fresh strategy built from each
    /// drawn value (monadic bind).
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Keeps only values satisfying `pred`, panicking if none is found
    /// in a reasonable number of draws.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: &'static str,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter { inner: self, whence, pred }
    }
}

/// A strategy always yielding clones of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    pub(crate) inner: S,
    pub(crate) f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    pub(crate) inner: S,
    pub(crate) f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn sample(&self, rng: &mut StdRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    pub(crate) inner: S,
    pub(crate) whence: &'static str,
    pub(crate) pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn sample(&self, rng: &mut StdRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.sample(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter `{}` rejected 1000 consecutive samples", self.whence);
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// Admissible collection sizes (mirror of `proptest::collection::SizeRange`).
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    /// Exclusive upper bound.
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange { lo: r.start, hi: r.end }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty collection size range");
        SizeRange { lo: *r.start(), hi: *r.end() + 1 }
    }
}

/// See [`crate::collection::vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    pub(crate) element: S,
    pub(crate) size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.lo..self.size.hi);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}
