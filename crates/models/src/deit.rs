//! DeiT-style vision transformers (Touvron et al.), width/depth-scaled for
//! CPU execution (see DESIGN.md §2). Classification uses mean pooling over
//! tokens instead of a class token — a standard ViT variant that preserves
//! the attention-based architecture the paper contrasts with CNNs.

use nn::{Ctx, LayerNorm, Linear, Module, Param, PatchEmbed, TransformerBlock};
use rand::Rng;
use tensor::Var;

/// Architecture description for [`VisionTransformer`].
#[derive(Debug, Clone)]
pub struct DeitConfig {
    /// Model name (used in layer names and weight files).
    pub name: String,
    /// Input image side length.
    pub img_size: usize,
    /// Patch side length.
    pub patch: usize,
    /// Token embedding width.
    pub dim: usize,
    /// Number of encoder blocks.
    pub depth: usize,
    /// Attention heads per block.
    pub heads: usize,
    /// MLP expansion factor.
    pub mlp_ratio: usize,
    /// Number of output classes.
    pub num_classes: usize,
}

impl DeitConfig {
    /// A scaled DeiT-tiny: narrow and shallow.
    pub fn deit_tiny(img_size: usize, num_classes: usize) -> Self {
        DeitConfig {
            name: "deit_tiny".into(),
            img_size,
            patch: 4,
            dim: 48,
            depth: 4,
            heads: 3,
            mlp_ratio: 2,
            num_classes,
        }
    }

    /// A scaled DeiT-base: wider and deeper than tiny.
    pub fn deit_base(img_size: usize, num_classes: usize) -> Self {
        DeitConfig {
            name: "deit_base".into(),
            img_size,
            patch: 4,
            dim: 96,
            depth: 6,
            heads: 6,
            mlp_ratio: 2,
            num_classes,
        }
    }

    /// A minimal transformer for fast tests.
    pub fn tiny_test(img_size: usize, num_classes: usize) -> Self {
        DeitConfig {
            name: "deit_test".into(),
            img_size,
            patch: 4,
            dim: 16,
            depth: 2,
            heads: 2,
            mlp_ratio: 2,
            num_classes,
        }
    }
}

/// A vision transformer built from a [`DeitConfig`].
#[derive(Debug)]
pub struct VisionTransformer {
    config: DeitConfig,
    patch_embed: PatchEmbed,
    blocks: Vec<TransformerBlock>,
    norm: LayerNorm,
    head: Linear,
}

impl VisionTransformer {
    /// Builds the network with fresh random weights.
    pub fn new(config: DeitConfig, rng: &mut impl Rng) -> Self {
        let patch_embed =
            PatchEmbed::new("patch", 3, config.img_size, config.patch, config.dim, rng);
        let blocks = (0..config.depth)
            .map(|i| {
                TransformerBlock::new(
                    &format!("blk{i}"),
                    config.dim,
                    config.heads,
                    config.mlp_ratio,
                    rng,
                )
            })
            .collect();
        let norm = LayerNorm::new("norm", config.dim);
        let head = Linear::new("head", config.dim, config.num_classes, true, rng);
        VisionTransformer { config, patch_embed, blocks, norm, head }
    }

    /// The architecture description.
    pub fn config(&self) -> &DeitConfig {
        &self.config
    }
}

impl Module for VisionTransformer {
    fn forward(&self, x: &Var, ctx: &mut Ctx) -> Var {
        // The segment chain verbatim — see `Module::forward_segment`'s
        // bit-identity contract.
        let mut h = x.clone();
        for s in 0..self.num_segments() {
            h = self.forward_segment(s, &h, ctx);
        }
        h
    }

    /// Patch embedding, one segment per transformer block, then
    /// norm + pool + head. Attention mixes tokens *within* a block, so a
    /// block boundary's single `[B, T, D]` tensor is a valid checkpoint
    /// cut.
    fn num_segments(&self) -> usize {
        self.blocks.len() + 2
    }

    fn forward_segment(&self, segment: usize, x: &Var, ctx: &mut Ctx) -> Var {
        let n = self.blocks.len();
        if segment == 0 {
            self.patch_embed.forward(x, ctx) // [B, T, D]
        } else if segment <= n {
            self.blocks[segment - 1].forward(x, ctx)
        } else {
            assert_eq!(segment, n + 1, "VisionTransformer has {} segments", n + 2);
            let tokens = self.norm.forward(x, ctx);
            // Mean-pool over the token dimension: [B, T, D] → [B, D].
            let dims = tokens.shape().dims().to_vec();
            let pooled = tokens.mean_axes_keepdim(&[1]).reshape([dims[0], dims[2]]);
            self.head.forward(&pooled, ctx)
        }
    }

    fn visit_params(&self, f: &mut dyn FnMut(&Param)) {
        self.patch_embed.visit_params(f);
        for b in &self.blocks {
            b.visit_params(f);
        }
        self.norm.visit_params(f);
        self.head.visit_params(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tensor::Tensor;

    #[test]
    fn deit_tiny_shapes() {
        let mut rng = StdRng::seed_from_u64(1);
        let net = VisionTransformer::new(DeitConfig::tiny_test(16, 10), &mut rng);
        let mut ctx = Ctx::inference();
        let x = ctx.input(Tensor::randn([2, 3, 16, 16], &mut rng));
        let y = net.forward(&x, &mut ctx);
        assert_eq!(y.shape().dims(), &[2, 10]);
    }

    #[test]
    fn deit_trains_one_step() {
        let mut rng = StdRng::seed_from_u64(2);
        let net = VisionTransformer::new(DeitConfig::tiny_test(8, 3), &mut rng);
        let mut ctx = Ctx::training();
        let x = ctx.input(Tensor::randn([2, 3, 8, 8], &mut rng));
        let logits = net.forward(&x, &mut ctx);
        let loss = logits.cross_entropy(&[1, 0]);
        let grads = loss.backward();
        for (p, v) in ctx.bindings() {
            assert!(grads.get(v).is_some(), "no grad for {}", p.name());
        }
        assert!(loss.value().item().is_finite());
    }

    #[test]
    fn base_is_bigger_than_tiny() {
        let mut rng = StdRng::seed_from_u64(3);
        let tiny = VisionTransformer::new(DeitConfig::deit_tiny(32, 10), &mut rng);
        let base = VisionTransformer::new(DeitConfig::deit_base(32, 10), &mut rng);
        assert!(base.param_count() > tiny.param_count() * 2);
    }

    #[test]
    fn segments_chain_bit_identically_to_forward() {
        let mut rng = StdRng::seed_from_u64(5);
        let net = VisionTransformer::new(DeitConfig::tiny_test(8, 3), &mut rng);
        assert_eq!(net.num_segments(), net.blocks.len() + 2);
        let x = Tensor::randn([2, 3, 8, 8], &mut rng);

        let mut ctx = Ctx::inference();
        let xv = ctx.input(x.clone());
        let whole = net.forward(&xv, &mut ctx);
        let layers = ctx.layers_seen();

        let mut seg_ctx = Ctx::inference();
        let mut h = seg_ctx.input(x);
        for s in 0..net.num_segments() {
            h = net.forward_segment(s, &h, &mut seg_ctx);
        }
        assert_eq!(seg_ctx.layers_seen(), layers, "segment chain must number layers identically");
        let (a, b) = (whole.value(), h.value());
        assert_eq!(a.shape().dims(), b.shape().dims());
        for (p, q) in a.as_slice().iter().zip(b.as_slice().iter()) {
            assert_eq!(p.to_bits(), q.to_bits(), "segment chain must be bit-identical");
        }
    }

    #[test]
    fn linear_layers_are_instrumented() {
        // Each block has q,k,v,proj,fc1,fc2 (6 Linear) + patch conv + head.
        let mut rng = StdRng::seed_from_u64(4);
        let net = VisionTransformer::new(DeitConfig::tiny_test(8, 3), &mut rng);
        let mut ctx = Ctx::inference();
        let x = ctx.input(Tensor::randn([1, 3, 8, 8], &mut rng));
        net.forward(&x, &mut ctx);
        // Instrumented layer count: patch conv (Conv) + per block
        // (ln1 + q + k + v + attn + proj + ln2 + fc1 + fc2 = 9) + final
        // norm + head.
        assert_eq!(ctx.layers_seen(), 1 + 2 * 9 + 1 + 1);
    }
}
