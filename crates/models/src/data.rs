//! Deterministic synthetic image-classification dataset.
//!
//! Stands in for ImageNet (see DESIGN.md §2): number-format emulation and
//! fault injection interact with activation/weight *value distributions*,
//! not image semantics, so a procedurally generated task that trains small
//! CNNs/transformers to high accuracy exercises the same code paths.
//!
//! Each class is an oriented grating at a class-specific frequency and
//! angle, mixed with a class-positioned Gaussian blob and per-sample phase
//! jitter plus pixel noise. Everything derives from a seed, so train/test
//! splits and repeated runs are reproducible.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tensor::Tensor;

/// A generated dataset of `[N, 3, S, S]` images and integer labels.
#[derive(Debug, Clone)]
pub struct SyntheticDataset {
    images: Vec<f32>,
    labels: Vec<usize>,
    img_size: usize,
    num_classes: usize,
}

impl SyntheticDataset {
    /// Generates `n` samples of `img_size`-pixel square RGB images across
    /// `num_classes` classes, deterministically from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `num_classes == 0` or `img_size == 0`.
    pub fn generate(n: usize, img_size: usize, num_classes: usize, seed: u64) -> Self {
        assert!(num_classes > 0, "need at least one class");
        assert!(img_size > 0, "image size must be positive");
        let mut rng = StdRng::seed_from_u64(seed);
        let s = img_size;
        let mut images = Vec::with_capacity(n * 3 * s * s);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let class = i % num_classes;
            labels.push(class);
            let phase: f32 = rng.gen_range(0.0..std::f32::consts::TAU);
            let jx: f32 = rng.gen_range(-0.15..0.15);
            let jy: f32 = rng.gen_range(-0.15..0.15);
            let (grating, blob, chan_mix) = class_params(class, num_classes);
            for &weight in &chan_mix {
                for y in 0..s {
                    for x in 0..s {
                        let xf = x as f32 / s as f32 - 0.5;
                        let yf = y as f32 / s as f32 - 0.5;
                        let (freq, angle) = grating;
                        let u = xf * angle.cos() + yf * angle.sin();
                        let wave = (freq * std::f32::consts::TAU * u + phase).sin();
                        let (bx, by) = blob;
                        let dx = xf - (bx + jx);
                        let dy = yf - (by + jy);
                        let g = (-(dx * dx + dy * dy) / 0.02).exp();
                        let noise: f32 = rng.gen_range(-0.9..0.9);
                        images.push(weight * wave + g + noise);
                    }
                }
            }
        }
        SyntheticDataset { images, labels, img_size, num_classes }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True if the dataset holds no samples.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Image side length.
    pub fn img_size(&self) -> usize {
        self.img_size
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// All labels in sample order.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Assembles a batch from explicit sample indices.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn batch(&self, indices: &[usize]) -> (Tensor, Vec<usize>) {
        let s = self.img_size;
        let stride = 3 * s * s;
        let mut data = Vec::with_capacity(indices.len() * stride);
        let mut labels = Vec::with_capacity(indices.len());
        for &i in indices {
            assert!(i < self.len(), "sample index {i} out of range");
            data.extend_from_slice(&self.images[i * stride..(i + 1) * stride]);
            labels.push(self.labels[i]);
        }
        (Tensor::from_vec(data, [indices.len(), 3, s, s]), labels)
    }

    /// The first `k` samples as one batch (a deterministic evaluation set).
    pub fn head_batch(&self, k: usize) -> (Tensor, Vec<usize>) {
        let idx: Vec<usize> = (0..k.min(self.len())).collect();
        self.batch(&idx)
    }

    /// Iterates over shuffled mini-batches for one epoch.
    pub fn shuffled_batches(
        &self,
        batch_size: usize,
        rng: &mut impl Rng,
    ) -> Vec<(Tensor, Vec<usize>)> {
        let mut idx: Vec<usize> = (0..self.len()).collect();
        // Fisher–Yates shuffle.
        for i in (1..idx.len()).rev() {
            let j = rng.gen_range(0..=i);
            idx.swap(i, j);
        }
        idx.chunks(batch_size).map(|c| self.batch(c)).collect()
    }
}

/// Class-specific texture parameters: grating (frequency, angle), blob
/// centre, and RGB channel weights.
fn class_params(class: usize, num_classes: usize) -> ((f32, f32), (f32, f32), [f32; 3]) {
    let t = class as f32 / num_classes as f32;
    let freq = 2.0 + (class % 5) as f32 * 1.5;
    let angle = t * std::f32::consts::PI;
    let blob = (0.35 * (t * std::f32::consts::TAU).cos(), 0.35 * (t * std::f32::consts::TAU).sin());
    let mix = [
        0.5 + 0.5 * (t * std::f32::consts::TAU).sin(),
        0.5 + 0.5 * (t * std::f32::consts::TAU + 2.0).sin(),
        0.5 + 0.5 * (t * std::f32::consts::TAU + 4.0).sin(),
    ];
    ((freq, angle), blob, mix)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a = SyntheticDataset::generate(20, 8, 5, 42);
        let b = SyntheticDataset::generate(20, 8, 5, 42);
        assert_eq!(a.images, b.images);
        assert_eq!(a.labels, b.labels);
        let c = SyntheticDataset::generate(20, 8, 5, 43);
        assert_ne!(a.images, c.images, "different seeds must differ");
    }

    #[test]
    fn labels_cycle_through_classes() {
        let d = SyntheticDataset::generate(10, 4, 3, 1);
        assert_eq!(d.labels(), &[0, 1, 2, 0, 1, 2, 0, 1, 2, 0]);
    }

    #[test]
    fn batch_shapes() {
        let d = SyntheticDataset::generate(10, 8, 5, 1);
        let (x, y) = d.batch(&[0, 3, 7]);
        assert_eq!(x.dims(), &[3, 3, 8, 8]);
        assert_eq!(y, vec![0, 3, 2]);
    }

    #[test]
    fn classes_are_visually_distinct() {
        // Mean absolute difference between class-0 and class-1 exemplars
        // should exceed within-class difference of two class-0 exemplars.
        let d = SyntheticDataset::generate(40, 16, 10, 7);
        let (x, y) = d.batch(&[0, 10, 1]); // class 0, class 0, class 1
        assert_eq!(y, vec![0, 0, 1]);
        let n = 3 * 16 * 16;
        let a = &x.as_slice()[0..n];
        let b = &x.as_slice()[n..2 * n];
        let c = &x.as_slice()[2 * n..3 * n];
        let d_within: f32 = a.iter().zip(b).map(|(p, q)| (p - q).abs()).sum::<f32>() / n as f32;
        let d_between: f32 = a.iter().zip(c).map(|(p, q)| (p - q).abs()).sum::<f32>() / n as f32;
        assert!(d_between > d_within * 1.05, "between {d_between} vs within {d_within}");
    }

    #[test]
    fn shuffled_batches_cover_everything() {
        let d = SyntheticDataset::generate(17, 4, 3, 1);
        let mut rng = StdRng::seed_from_u64(5);
        let batches = d.shuffled_batches(5, &mut rng);
        let total: usize = batches.iter().map(|(_, y)| y.len()).sum();
        assert_eq!(total, 17);
        assert_eq!(batches.len(), 4); // 5+5+5+2
    }

    #[test]
    fn values_are_bounded() {
        let d = SyntheticDataset::generate(10, 8, 5, 1);
        let (x, _) = d.head_batch(10);
        assert!(x.max_abs() < 3.0, "pixel magnitudes should be small");
        assert!(x.all_finite());
    }
}
