//! Weight serialisation so benchmark harnesses can train a model once and
//! reuse it.
//!
//! Format (`GERSWTS2`): magic, then per-parameter name + shape +
//! little-endian f32 payload, then an FNV-1a 64-bit hash of everything
//! after the magic. The hash footer turns silent corruption (truncated
//! copies, flipped bits on disk) into a load error instead of a
//! garbage-initialised model. `GERSWTS1` files (no footer) still load for
//! backwards compatibility.
//!
//! Serialisation is split into byte-level codecs ([`params_to_bytes`],
//! [`params_from_bytes`]) so checkpoints can round-trip through the
//! content-addressed artifact store ([`save_params_to_store`],
//! [`load_params_from_store`]) as well as loose files.

use formats::hash::fnv1a;
use nn::Module;
use std::io::{self, Read};
use std::path::Path;
use std::sync::Arc;
use tensor::Tensor;

const MAGIC_V2: &[u8; 8] = b"GERSWTS2";
const MAGIC_V1: &[u8; 8] = b"GERSWTS1";

/// Serialises all parameters of `model` into the `GERSWTS2` byte format,
/// FNV-1a footer included.
pub fn params_to_bytes(model: &dyn Module) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC_V2);
    let params = model.params();
    out.extend_from_slice(&(params.len() as u32).to_le_bytes());
    for p in params {
        let name = p.name();
        let name = name.as_bytes();
        out.extend_from_slice(&(name.len() as u32).to_le_bytes());
        out.extend_from_slice(name);
        let t = p.get();
        out.extend_from_slice(&(t.ndim() as u32).to_le_bytes());
        for &d in t.dims() {
            out.extend_from_slice(&(d as u32).to_le_bytes());
        }
        for &v in t.as_slice() {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }
    let footer = fnv1a(&out[MAGIC_V2.len()..]);
    out.extend_from_slice(&footer.to_le_bytes());
    out
}

/// Loads parameters serialised by [`params_to_bytes`] (or the footer-less
/// `GERSWTS1` layout) into `model`, matching by parameter name.
///
/// # Errors
///
/// Returns an error if the magic is unknown, the FNV-1a footer disagrees
/// with the body (truncation, bit rot), the structure is malformed, a
/// parameter is missing, or a shape disagrees.
pub fn params_from_bytes(model: &dyn Module, bytes: &[u8]) -> io::Result<()> {
    let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());
    if bytes.len() < 8 {
        return Err(bad("weight data shorter than its magic"));
    }
    let (magic, rest) = bytes.split_at(8);
    let body = match magic {
        m if m == MAGIC_V2 => {
            if rest.len() < 8 {
                return Err(bad("weight data truncated before hash footer"));
            }
            let (body, footer) = rest.split_at(rest.len() - 8);
            let stored = u64::from_le_bytes(footer.try_into().unwrap());
            if fnv1a(body) != stored {
                return Err(bad("weight data corrupt: content hash mismatch"));
            }
            body
        }
        m if m == MAGIC_V1 => rest,
        _ => return Err(bad("bad magic in weight data")),
    };

    let mut r = body;
    let count = read_u32(&mut r)? as usize;
    let mut loaded = std::collections::HashMap::new();
    for _ in 0..count {
        let name_len = read_u32(&mut r)? as usize;
        let mut name = vec![0u8; name_len];
        r.read_exact(&mut name).map_err(|_| bad("weight data truncated in name"))?;
        let name = String::from_utf8(name).map_err(|_| bad("non-utf8 parameter name"))?;
        let ndim = read_u32(&mut r)? as usize;
        let mut dims = Vec::with_capacity(ndim);
        for _ in 0..ndim {
            dims.push(read_u32(&mut r)? as usize);
        }
        let n: usize = dims.iter().product();
        let mut data = vec![0.0f32; n];
        let mut buf = [0u8; 4];
        for v in &mut data {
            r.read_exact(&mut buf).map_err(|_| bad("weight data truncated in payload"))?;
            *v = f32::from_le_bytes(buf);
        }
        loaded.insert(name, Tensor::from_vec(data, dims));
    }
    let mut missing = Vec::new();
    model.visit_params(&mut |p| match loaded.get(p.name()) {
        Some(t) if t.shape() == &p.get().shape().clone() => p.set(t.clone()),
        Some(_) => missing.push(format!("{} (shape mismatch)", p.name())),
        None => missing.push(p.name().to_string()),
    });
    if missing.is_empty() {
        Ok(())
    } else {
        Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("parameters not found/compatible in weight data: {missing:?}"),
        ))
    }
}

/// Saves all parameters of `model` to `path` (with the `GERSWTS2` hash
/// footer).
///
/// # Errors
///
/// Returns any underlying I/O error.
pub fn save_params(model: &dyn Module, path: impl AsRef<Path>) -> io::Result<()> {
    std::fs::write(path, params_to_bytes(model))
}

/// Loads parameters saved by [`save_params`] into `model`, verifying the
/// content-hash footer first.
///
/// # Errors
///
/// Returns an error if the file is corrupt or malformed, a parameter is
/// missing, or a shape disagrees.
pub fn load_params(model: &dyn Module, path: impl AsRef<Path>) -> io::Result<()> {
    params_from_bytes(model, &std::fs::read(path)?)
}

/// Stores `model`'s parameters in the artifact store as the checkpoint
/// named `name`.
pub fn save_params_to_store(model: &dyn Module, store: &Arc<store::Store>, name: &str) {
    store.put_checkpoint(name, params_to_bytes(model));
}

/// Loads the checkpoint named `name` from the store into `model`. Returns
/// `Ok(false)` when the store has no such checkpoint (a cache miss, not an
/// error).
///
/// # Errors
///
/// Returns an error if a stored checkpoint exists but is corrupt or does
/// not fit the model.
pub fn load_params_from_store(
    model: &dyn Module,
    store: &Arc<store::Store>,
    name: &str,
) -> io::Result<bool> {
    match store.get_checkpoint(name) {
        Some(bytes) => params_from_bytes(model, &bytes).map(|()| true),
        None => Ok(false),
    }
}

fn read_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "weight data truncated"))?;
    Ok(u32::from_le_bytes(buf))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resnet::{ResNet, ResNetConfig};
    use nn::Module;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn save_load_roundtrip() {
        let dir = std::env::temp_dir().join("goldeneye_rs_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("weights.bin");
        let mut rng = StdRng::seed_from_u64(1);
        let a = ResNet::new(ResNetConfig::tiny(3), &mut rng);
        save_params(&a, &path).unwrap();
        let mut rng2 = StdRng::seed_from_u64(999);
        let b = ResNet::new(ResNetConfig::tiny(3), &mut rng2);
        // Different init → different params; after load they must match.
        load_params(&b, &path).unwrap();
        for (pa, pb) in a.params().iter().zip(b.params()) {
            assert_eq!(pa.get(), pb.get(), "param {} differs", pa.name());
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn save_load_preserves_batchnorm_running_stats() {
        // Regression test: running statistics are not trainable, but they
        // are model state — losing them on save/load silently destroys
        // inference accuracy for CNNs.
        use crate::data::SyntheticDataset;
        use crate::trainer::{evaluate, train, TrainConfig};
        let dir = std::env::temp_dir().join("goldeneye_rs_io_test3");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("weights.bin");
        let mut rng = StdRng::seed_from_u64(2);
        let a = ResNet::new(ResNetConfig::tiny(4), &mut rng);
        let data = SyntheticDataset::generate(64, 16, 4, 3);
        train(
            &a,
            &data,
            &TrainConfig { epochs: 6, batch_size: 16, lr: 3e-3, ..Default::default() },
        );
        let acc_before = evaluate(&a, &data, 32, 16);
        save_params(&a, &path).unwrap();
        let mut rng2 = StdRng::seed_from_u64(555);
        let b = ResNet::new(ResNetConfig::tiny(4), &mut rng2);
        load_params(&b, &path).unwrap();
        let acc_after = evaluate(&b, &data, 32, 16);
        assert_eq!(acc_before, acc_after, "reload changed accuracy");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn load_into_wrong_architecture_errors() {
        let dir = std::env::temp_dir().join("goldeneye_rs_io_test2");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("weights.bin");
        let mut rng = StdRng::seed_from_u64(1);
        let a = ResNet::new(ResNetConfig::tiny(3), &mut rng);
        save_params(&a, &path).unwrap();
        let b = ResNet::new(ResNetConfig::resnet18(4, 3), &mut rng);
        assert!(load_params(&b, &path).is_err());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn corrupt_weight_files_error_instead_of_garbage_loading() {
        let mut rng = StdRng::seed_from_u64(7);
        let a = ResNet::new(ResNetConfig::tiny(3), &mut rng);
        let good = params_to_bytes(&a);
        let fresh = || {
            let mut r = StdRng::seed_from_u64(8);
            ResNet::new(ResNetConfig::tiny(3), &mut r)
        };
        assert!(params_from_bytes(&fresh(), &good).is_ok(), "pristine bytes must load");

        // Truncation anywhere after the magic must error.
        for cut in [good.len() - 1, good.len() - 9, good.len() / 2, 10] {
            let err = params_from_bytes(&fresh(), &good[..cut])
                .expect_err("truncated weight data must not load");
            assert_eq!(err.kind(), io::ErrorKind::InvalidData, "cut at {cut}");
        }

        // A single flipped payload bit must be caught by the hash footer.
        let mut flipped = good.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x10;
        let err = params_from_bytes(&fresh(), &flipped)
            .expect_err("bit-flipped weight data must not load");
        assert!(err.to_string().contains("hash mismatch"), "got: {err}");

        // A flipped footer bit likewise.
        let mut bad_footer = good.clone();
        let n = bad_footer.len();
        bad_footer[n - 3] ^= 0x01;
        assert!(params_from_bytes(&fresh(), &bad_footer).is_err());
    }

    #[test]
    fn store_checkpoint_roundtrip() {
        let store = Arc::new(store::Store::in_memory());
        let mut rng = StdRng::seed_from_u64(11);
        let a = ResNet::new(ResNetConfig::tiny(3), &mut rng);
        assert!(!load_params_from_store(&a, &store, "ck").unwrap(), "empty store misses");
        save_params_to_store(&a, &store, "ck");
        let mut rng2 = StdRng::seed_from_u64(12);
        let b = ResNet::new(ResNetConfig::tiny(3), &mut rng2);
        assert!(load_params_from_store(&b, &store, "ck").unwrap());
        for (pa, pb) in a.params().iter().zip(b.params()) {
            assert_eq!(pa.get(), pb.get(), "param {} differs", pa.name());
        }
    }
}
