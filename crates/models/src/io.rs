//! Minimal weight serialisation so benchmark harnesses can train a model
//! once and reuse it (format: magic, then per-parameter name + shape +
//! little-endian f32 payload).

use nn::Module;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;
use tensor::Tensor;

const MAGIC: &[u8; 8] = b"GERSWTS1";

/// Saves all parameters of `model` to `path`.
///
/// # Errors
///
/// Returns any underlying I/O error.
pub fn save_params(model: &dyn Module, path: impl AsRef<Path>) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(MAGIC)?;
    let params = model.params();
    w.write_all(&(params.len() as u32).to_le_bytes())?;
    for p in params {
        let name = p.name().as_bytes();
        w.write_all(&(name.len() as u32).to_le_bytes())?;
        w.write_all(name)?;
        let t = p.get();
        w.write_all(&(t.ndim() as u32).to_le_bytes())?;
        for &d in t.dims() {
            w.write_all(&(d as u32).to_le_bytes())?;
        }
        for &v in t.as_slice() {
            w.write_all(&v.to_le_bytes())?;
        }
    }
    w.flush()
}

/// Loads parameters saved by [`save_params`] into `model`, matching by
/// parameter name.
///
/// # Errors
///
/// Returns an error if the file is malformed, a parameter is missing, or a
/// shape disagrees.
pub fn load_params(model: &dyn Module, path: impl AsRef<Path>) -> io::Result<()> {
    let mut r = BufReader::new(File::open(path)?);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "bad magic in weight file"));
    }
    let count = read_u32(&mut r)? as usize;
    let mut loaded = std::collections::HashMap::new();
    for _ in 0..count {
        let name_len = read_u32(&mut r)? as usize;
        let mut name = vec![0u8; name_len];
        r.read_exact(&mut name)?;
        let name = String::from_utf8(name)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-utf8 parameter name"))?;
        let ndim = read_u32(&mut r)? as usize;
        let mut dims = Vec::with_capacity(ndim);
        for _ in 0..ndim {
            dims.push(read_u32(&mut r)? as usize);
        }
        let n: usize = dims.iter().product();
        let mut data = vec![0.0f32; n];
        let mut buf = [0u8; 4];
        for v in &mut data {
            r.read_exact(&mut buf)?;
            *v = f32::from_le_bytes(buf);
        }
        loaded.insert(name, Tensor::from_vec(data, dims));
    }
    let mut missing = Vec::new();
    model.visit_params(&mut |p| match loaded.get(p.name()) {
        Some(t) if t.shape() == &p.get().shape().clone() => p.set(t.clone()),
        Some(_) => missing.push(format!("{} (shape mismatch)", p.name())),
        None => missing.push(p.name().to_string()),
    });
    if missing.is_empty() {
        Ok(())
    } else {
        Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("parameters not found/compatible in weight file: {missing:?}"),
        ))
    }
}

fn read_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resnet::{ResNet, ResNetConfig};
    use nn::Module;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn save_load_roundtrip() {
        let dir = std::env::temp_dir().join("goldeneye_rs_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("weights.bin");
        let mut rng = StdRng::seed_from_u64(1);
        let a = ResNet::new(ResNetConfig::tiny(3), &mut rng);
        save_params(&a, &path).unwrap();
        let mut rng2 = StdRng::seed_from_u64(999);
        let b = ResNet::new(ResNetConfig::tiny(3), &mut rng2);
        // Different init → different params; after load they must match.
        load_params(&b, &path).unwrap();
        for (pa, pb) in a.params().iter().zip(b.params()) {
            assert_eq!(pa.get(), pb.get(), "param {} differs", pa.name());
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn save_load_preserves_batchnorm_running_stats() {
        // Regression test: running statistics are not trainable, but they
        // are model state — losing them on save/load silently destroys
        // inference accuracy for CNNs.
        use crate::data::SyntheticDataset;
        use crate::trainer::{evaluate, train, TrainConfig};
        let dir = std::env::temp_dir().join("goldeneye_rs_io_test3");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("weights.bin");
        let mut rng = StdRng::seed_from_u64(2);
        let a = ResNet::new(ResNetConfig::tiny(4), &mut rng);
        let data = SyntheticDataset::generate(64, 16, 4, 3);
        train(
            &a,
            &data,
            &TrainConfig { epochs: 6, batch_size: 16, lr: 3e-3, ..Default::default() },
        );
        let acc_before = evaluate(&a, &data, 32, 16);
        save_params(&a, &path).unwrap();
        let mut rng2 = StdRng::seed_from_u64(555);
        let b = ResNet::new(ResNetConfig::tiny(4), &mut rng2);
        load_params(&b, &path).unwrap();
        let acc_after = evaluate(&b, &data, 32, 16);
        assert_eq!(acc_before, acc_after, "reload changed accuracy");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn load_into_wrong_architecture_errors() {
        let dir = std::env::temp_dir().join("goldeneye_rs_io_test2");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("weights.bin");
        let mut rng = StdRng::seed_from_u64(1);
        let a = ResNet::new(ResNetConfig::tiny(3), &mut rng);
        save_params(&a, &path).unwrap();
        let b = ResNet::new(ResNetConfig::resnet18(4, 3), &mut rng);
        assert!(load_params(&b, &path).is_err());
        std::fs::remove_file(path).ok();
    }
}
