//! Training loop producing the "pretrained" models the paper's use cases
//! evaluate, plus a plain-inference helper.

use crate::data::SyntheticDataset;
use nn::{Adam, Ctx, Module};
use rand::rngs::StdRng;
use rand::SeedableRng;
use tensor::Tensor;

/// Training hyperparameters.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Number of passes over the dataset.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// RNG seed for batch shuffling.
    pub seed: u64,
    /// Print progress to stderr.
    pub verbose: bool,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig { epochs: 5, batch_size: 32, lr: 1e-3, seed: 0, verbose: false }
    }
}

/// Per-epoch training record.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochLog {
    /// 0-based epoch index.
    pub epoch: usize,
    /// Mean training loss over the epoch.
    pub loss: f32,
    /// Training accuracy over the epoch.
    pub accuracy: f32,
}

/// Trains `model` on `data` with Adam, returning per-epoch logs.
pub fn train(model: &dyn Module, data: &SyntheticDataset, cfg: &TrainConfig) -> Vec<EpochLog> {
    let mut opt = Adam::new(cfg.lr);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut logs = Vec::with_capacity(cfg.epochs);
    for epoch in 0..cfg.epochs {
        let mut loss_sum = 0.0;
        let mut correct = 0usize;
        let mut seen = 0usize;
        for (x, y) in data.shuffled_batches(cfg.batch_size, &mut rng) {
            let mut ctx = Ctx::training();
            let xv = ctx.input(x);
            let logits = model.forward(&xv, &mut ctx);
            let loss = logits.cross_entropy(&y);
            let grads = loss.backward();
            opt.step(&ctx, &grads);
            loss_sum += loss.value().item() * y.len() as f32;
            let lv = logits.value();
            correct += (metrics_argmax(&lv).iter().zip(&y)).filter(|(p, t)| p == t).count();
            seen += y.len();
        }
        let log = EpochLog {
            epoch,
            loss: loss_sum / seen as f32,
            accuracy: correct as f32 / seen as f32,
        };
        if cfg.verbose {
            eprintln!(
                "epoch {:>3}: loss {:.4}  acc {:.1}%",
                log.epoch,
                log.loss,
                log.accuracy * 100.0
            );
        }
        logs.push(log);
    }
    logs
}

fn metrics_argmax(logits: &Tensor) -> Vec<usize> {
    tensor::ops::argmax_rows(logits)
}

/// Runs an uninstrumented inference pass and returns the logits.
pub fn forward_logits(model: &dyn Module, x: Tensor) -> Tensor {
    let mut ctx = Ctx::inference();
    let xv = ctx.input(x);
    model.forward(&xv, &mut ctx).value()
}

/// Top-1 accuracy of `model` on the first `k` samples of `data`, evaluated
/// in batches of `batch_size`.
pub fn evaluate(model: &dyn Module, data: &SyntheticDataset, k: usize, batch_size: usize) -> f32 {
    let k = k.min(data.len());
    let mut correct = 0usize;
    let mut start = 0usize;
    while start < k {
        let end = (start + batch_size).min(k);
        let idx: Vec<usize> = (start..end).collect();
        let (x, y) = data.batch(&idx);
        let logits = forward_logits(model, x);
        correct += metrics_argmax(&logits).iter().zip(&y).filter(|(p, t)| p == t).count();
        start = end;
    }
    correct as f32 / k as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deit::{DeitConfig, VisionTransformer};
    use crate::resnet::{ResNet, ResNetConfig};

    #[test]
    fn tiny_resnet_learns_synthetic_task() {
        let mut rng = StdRng::seed_from_u64(1);
        let net = ResNet::new(ResNetConfig::tiny(4), &mut rng);
        let data = SyntheticDataset::generate(64, 16, 4, 11);
        let cfg = TrainConfig { epochs: 6, batch_size: 16, lr: 3e-3, ..Default::default() };
        let logs = train(&net, &data, &cfg);
        let first = logs.first().unwrap();
        let last = logs.last().unwrap();
        assert!(last.loss < first.loss * 0.8, "loss should fall: {} → {}", first.loss, last.loss);
        assert!(last.accuracy > 0.5, "final train acc {}", last.accuracy);
    }

    #[test]
    fn tiny_deit_learns_synthetic_task() {
        let mut rng = StdRng::seed_from_u64(2);
        let net = VisionTransformer::new(DeitConfig::tiny_test(16, 4), &mut rng);
        let data = SyntheticDataset::generate(64, 16, 4, 12);
        let cfg = TrainConfig { epochs: 8, batch_size: 16, lr: 2e-3, ..Default::default() };
        let logs = train(&net, &data, &cfg);
        assert!(
            logs.last().unwrap().loss < logs.first().unwrap().loss,
            "transformer loss should fall"
        );
    }

    #[test]
    fn evaluate_on_held_out_split() {
        let mut rng = StdRng::seed_from_u64(3);
        let net = ResNet::new(ResNetConfig::tiny(4), &mut rng);
        let train_data = SyntheticDataset::generate(96, 16, 4, 21);
        let test_data = SyntheticDataset::generate(32, 16, 4, 22);
        let cfg = TrainConfig { epochs: 8, batch_size: 16, lr: 3e-3, ..Default::default() };
        train(&net, &train_data, &cfg);
        let acc = evaluate(&net, &test_data, 32, 16);
        assert!(acc > 0.4, "held-out accuracy {acc} too low (chance = 0.25)");
    }
}
