#![warn(missing_docs)]

//! # models — the evaluation workloads
//!
//! The CNNs (ResNet-18/50 style) and vision transformers (DeiT-tiny/base
//! style) the paper evaluates, a deterministic synthetic dataset standing
//! in for ImageNet (DESIGN.md §2), a training loop, and weight I/O so
//! benchmark harnesses can cache trained models.
//!
//! # Examples
//!
//! ```no_run
//! use models::{ResNet, ResNetConfig, SyntheticDataset, TrainConfig};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! let net = ResNet::new(ResNetConfig::resnet18(8, 10), &mut rng);
//! let data = SyntheticDataset::generate(512, 32, 10, 7);
//! let logs = models::train(&net, &data, &TrainConfig::default());
//! println!("final accuracy: {:.1}%", logs.last().unwrap().accuracy * 100.0);
//! ```

mod data;
mod deit;
mod io;
mod resnet;
mod trainer;

pub use data::SyntheticDataset;
pub use deit::{DeitConfig, VisionTransformer};
pub use io::{
    load_params, load_params_from_store, params_from_bytes, params_to_bytes, save_params,
    save_params_to_store,
};
pub use resnet::{BlockKind, ResNet, ResNetConfig};
pub use trainer::{evaluate, forward_logits, train, EpochLog, TrainConfig};
