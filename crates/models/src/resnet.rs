//! ResNet-style CNNs (He et al.), CIFAR-shaped and width-scaled so the
//! paper's ResNet18/ResNet50 experiments run on a CPU (see DESIGN.md §2).
//!
//! `resnet18` uses BasicBlocks with layout [2,2,2,2]; `resnet50` uses
//! Bottleneck blocks with layout [3,4,6,3] and 4× expansion, preserving the
//! architectural contrast the paper's figures rely on.

use nn::{BatchNorm2d, Conv2d, Ctx, GlobalAvgPool, Linear, Module, Param, Relu};
use rand::Rng;
use tensor::Var;

/// Block flavour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockKind {
    /// Two 3×3 convolutions (ResNet-18/34 style).
    Basic,
    /// 1×1 → 3×3 → 1×1 with 4× channel expansion (ResNet-50 style).
    Bottleneck,
}

impl BlockKind {
    fn expansion(self) -> usize {
        match self {
            BlockKind::Basic => 1,
            BlockKind::Bottleneck => 4,
        }
    }
}

/// Architecture description for [`ResNet`].
#[derive(Debug, Clone)]
pub struct ResNetConfig {
    /// Model name (used in layer names and weight files).
    pub name: String,
    /// Block flavour.
    pub block: BlockKind,
    /// Blocks per stage.
    pub layers: Vec<usize>,
    /// Channel width of the first stage.
    pub base_width: usize,
    /// Number of output classes.
    pub num_classes: usize,
    /// Input channels.
    pub in_channels: usize,
}

impl ResNetConfig {
    /// A width-scaled ResNet-18 (BasicBlock ×`[2,2,2,2]`).
    pub fn resnet18(base_width: usize, num_classes: usize) -> Self {
        ResNetConfig {
            name: "resnet18".into(),
            block: BlockKind::Basic,
            layers: vec![2, 2, 2, 2],
            base_width,
            num_classes,
            in_channels: 3,
        }
    }

    /// A width-scaled ResNet-50 (Bottleneck ×`[3,4,6,3]`).
    pub fn resnet50(base_width: usize, num_classes: usize) -> Self {
        ResNetConfig {
            name: "resnet50".into(),
            block: BlockKind::Bottleneck,
            layers: vec![3, 4, 6, 3],
            base_width,
            num_classes,
            in_channels: 3,
        }
    }

    /// A two-stage toy ResNet for fast tests.
    pub fn tiny(num_classes: usize) -> Self {
        ResNetConfig {
            name: "resnet_tiny".into(),
            block: BlockKind::Basic,
            layers: vec![1, 1],
            base_width: 8,
            num_classes,
            in_channels: 3,
        }
    }
}

/// One residual block.
#[derive(Debug)]
struct ResBlock {
    convs: Vec<(Conv2d, BatchNorm2d)>,
    downsample: Option<(Conv2d, BatchNorm2d)>,
    relu: Relu,
}

impl ResBlock {
    fn new(
        name: &str,
        kind: BlockKind,
        in_ch: usize,
        width: usize,
        stride: usize,
        rng: &mut impl Rng,
    ) -> (Self, usize) {
        let out_ch = width * kind.expansion();
        let mut convs = Vec::new();
        match kind {
            BlockKind::Basic => {
                convs.push((
                    Conv2d::new(format!("{name}.conv1"), in_ch, width, 3, stride, 1, false, rng),
                    BatchNorm2d::new(format!("{name}.bn1"), width),
                ));
                convs.push((
                    Conv2d::new(format!("{name}.conv2"), width, width, 3, 1, 1, false, rng),
                    BatchNorm2d::new(format!("{name}.bn2"), width),
                ));
            }
            BlockKind::Bottleneck => {
                convs.push((
                    Conv2d::new(format!("{name}.conv1"), in_ch, width, 1, 1, 0, false, rng),
                    BatchNorm2d::new(format!("{name}.bn1"), width),
                ));
                convs.push((
                    Conv2d::new(format!("{name}.conv2"), width, width, 3, stride, 1, false, rng),
                    BatchNorm2d::new(format!("{name}.bn2"), width),
                ));
                convs.push((
                    Conv2d::new(format!("{name}.conv3"), width, out_ch, 1, 1, 0, false, rng),
                    BatchNorm2d::new(format!("{name}.bn3"), out_ch),
                ));
            }
        }
        let downsample = (stride != 1 || in_ch != out_ch).then(|| {
            (
                Conv2d::new(format!("{name}.down"), in_ch, out_ch, 1, stride, 0, false, rng),
                BatchNorm2d::new(format!("{name}.down_bn"), out_ch),
            )
        });
        (ResBlock { convs, downsample, relu: Relu::new(format!("{name}.relu")) }, out_ch)
    }
}

impl Module for ResBlock {
    fn forward(&self, x: &Var, ctx: &mut Ctx) -> Var {
        let mut h = x.clone();
        let last = self.convs.len() - 1;
        for (i, (conv, bn)) in self.convs.iter().enumerate() {
            h = bn.forward(&conv.forward(&h, ctx), ctx);
            if i != last {
                h = self.relu.forward(&h, ctx);
            }
        }
        let skip = match &self.downsample {
            Some((conv, bn)) => bn.forward(&conv.forward(x, ctx), ctx),
            None => x.clone(),
        };
        self.relu.forward(&h.add(&skip), ctx)
    }

    fn visit_params(&self, f: &mut dyn FnMut(&Param)) {
        for (c, b) in &self.convs {
            c.visit_params(f);
            b.visit_params(f);
        }
        if let Some((c, b)) = &self.downsample {
            c.visit_params(f);
            b.visit_params(f);
        }
    }
}

/// A residual CNN built from a [`ResNetConfig`].
#[derive(Debug)]
pub struct ResNet {
    config: ResNetConfig,
    stem: (Conv2d, BatchNorm2d, Relu),
    blocks: Vec<ResBlock>,
    gap: GlobalAvgPool,
    head: Linear,
}

impl ResNet {
    /// Builds the network with fresh random weights.
    pub fn new(config: ResNetConfig, rng: &mut impl Rng) -> Self {
        let w0 = config.base_width;
        let stem = (
            Conv2d::new("stem.conv", config.in_channels, w0, 3, 1, 1, false, rng),
            BatchNorm2d::new("stem.bn", w0),
            Relu::new("stem.relu"),
        );
        let mut blocks = Vec::new();
        let mut in_ch = w0;
        for (stage, &n) in config.layers.iter().enumerate() {
            let width = w0 << stage;
            for b in 0..n {
                let stride = if stage > 0 && b == 0 { 2 } else { 1 };
                let (blk, out_ch) = ResBlock::new(
                    &format!("s{stage}b{b}"),
                    config.block,
                    in_ch,
                    width,
                    stride,
                    rng,
                );
                blocks.push(blk);
                in_ch = out_ch;
            }
        }
        let head = Linear::new("head", in_ch, config.num_classes, true, rng);
        ResNet { config, stem, blocks, gap: GlobalAvgPool::new("gap"), head }
    }

    /// The architecture description.
    pub fn config(&self) -> &ResNetConfig {
        &self.config
    }
}

impl Module for ResNet {
    fn forward(&self, x: &Var, ctx: &mut Ctx) -> Var {
        // Exactly the segment chain, so the checkpoint/replay contract of
        // `forward_segment` (bit-identical outputs and layer numbering)
        // holds by construction.
        let mut h = x.clone();
        for s in 0..self.num_segments() {
            h = self.forward_segment(s, &h, ctx);
        }
        h
    }

    /// Stem, one segment per residual block, then pool + head. Residual
    /// skip connections live entirely inside a block, so block boundaries
    /// are valid checkpoint cuts: the block input is the only live tensor.
    fn num_segments(&self) -> usize {
        self.blocks.len() + 2
    }

    fn forward_segment(&self, segment: usize, x: &Var, ctx: &mut Ctx) -> Var {
        let n = self.blocks.len();
        if segment == 0 {
            let (conv, bn, relu) = &self.stem;
            relu.forward(&bn.forward(&conv.forward(x, ctx), ctx), ctx)
        } else if segment <= n {
            self.blocks[segment - 1].forward(x, ctx)
        } else {
            assert_eq!(segment, n + 1, "ResNet has {} segments", n + 2);
            let pooled = self.gap.forward(x, ctx);
            self.head.forward(&pooled, ctx)
        }
    }

    fn visit_params(&self, f: &mut dyn FnMut(&Param)) {
        self.stem.0.visit_params(f);
        self.stem.1.visit_params(f);
        for b in &self.blocks {
            b.visit_params(f);
        }
        self.head.visit_params(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tensor::Tensor;

    #[test]
    fn resnet18_shapes() {
        let mut rng = StdRng::seed_from_u64(1);
        let net = ResNet::new(ResNetConfig::resnet18(4, 10), &mut rng);
        let mut ctx = Ctx::inference();
        let x = ctx.input(Tensor::randn([2, 3, 32, 32], &mut rng));
        let y = net.forward(&x, &mut ctx);
        assert_eq!(y.shape().dims(), &[2, 10]);
    }

    #[test]
    fn resnet50_shapes_and_expansion() {
        let mut rng = StdRng::seed_from_u64(2);
        let net = ResNet::new(ResNetConfig::resnet50(2, 7), &mut rng);
        let mut ctx = Ctx::inference();
        let x = ctx.input(Tensor::randn([1, 3, 16, 16], &mut rng));
        let y = net.forward(&x, &mut ctx);
        assert_eq!(y.shape().dims(), &[1, 7]);
    }

    #[test]
    fn tiny_resnet_trains_one_step() {
        let mut rng = StdRng::seed_from_u64(3);
        let net = ResNet::new(ResNetConfig::tiny(3), &mut rng);
        let mut ctx = Ctx::training();
        let x = ctx.input(Tensor::randn([2, 3, 8, 8], &mut rng));
        let logits = net.forward(&x, &mut ctx);
        let loss = logits.cross_entropy(&[0, 2]);
        let grads = loss.backward();
        let with_grads = ctx.bindings().iter().filter(|(_, v)| grads.get(v).is_some()).count();
        assert_eq!(with_grads, ctx.bindings().len(), "all params need grads");
        assert!(loss.value().item().is_finite());
    }

    #[test]
    fn param_counts_scale_with_width() {
        let mut rng = StdRng::seed_from_u64(4);
        let small = ResNet::new(ResNetConfig::resnet18(4, 10), &mut rng);
        let large = ResNet::new(ResNetConfig::resnet18(8, 10), &mut rng);
        assert!(large.param_count() > small.param_count() * 3);
    }

    #[test]
    fn segments_chain_bit_identically_to_forward() {
        let mut rng = StdRng::seed_from_u64(6);
        let net = ResNet::new(ResNetConfig::resnet18(4, 10), &mut rng);
        assert_eq!(net.num_segments(), net.blocks.len() + 2);
        let x = Tensor::randn([2, 3, 16, 16], &mut rng);

        let mut ctx = Ctx::inference();
        let xv = ctx.input(x.clone());
        let whole = net.forward(&xv, &mut ctx);
        let layers = ctx.layers_seen();

        let mut seg_ctx = Ctx::inference();
        let mut h = seg_ctx.input(x);
        for s in 0..net.num_segments() {
            h = net.forward_segment(s, &h, &mut seg_ctx);
        }
        assert_eq!(seg_ctx.layers_seen(), layers, "segment chain must number layers identically");
        let (a, b) = (whole.value(), h.value());
        assert_eq!(a.shape().dims(), b.shape().dims());
        for (p, q) in a.as_slice().iter().zip(b.as_slice().iter()) {
            assert_eq!(p.to_bits(), q.to_bits(), "segment chain must be bit-identical");
        }
    }

    #[test]
    fn downsample_blocks_present_where_needed() {
        let mut rng = StdRng::seed_from_u64(5);
        let net = ResNet::new(ResNetConfig::resnet18(4, 10), &mut rng);
        // Stage 0 block 0 has no downsample (stride 1, same width); stage 1
        // block 0 must have one.
        assert!(net.blocks[0].downsample.is_none());
        assert!(net.blocks[2].downsample.is_some());
    }
}
