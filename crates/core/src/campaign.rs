//! Use case C (§IV-C): resiliency analysis — layer-granularity error
//! injection campaigns measuring ΔLoss (and mismatch) per layer, for value
//! and metadata faults.

use crate::instrument::{GoldenEye, InjectionPlan};
use inject::SiteKind;
use metrics::{compare_outcomes, RunningStats};
use nn::Module;
use tensor::Tensor;

/// Campaign parameters.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Injections per layer.
    pub injections_per_layer: usize,
    /// Value-bit or metadata-bit faults.
    pub kind: SiteKind,
    /// Base RNG seed; injection `i` at layer `l` uses seed
    /// `base + l·injections + i`.
    pub seed: u64,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig { injections_per_layer: 100, kind: SiteKind::Value, seed: 0 }
    }
}

/// Per-layer campaign result.
#[derive(Debug, Clone)]
pub struct LayerResult {
    /// Instrumented-layer index.
    pub layer: usize,
    /// Layer name.
    pub name: String,
    /// ΔLoss statistics over the injections.
    pub delta_loss: RunningStats,
    /// Mismatch-rate statistics over the injections.
    pub mismatch: RunningStats,
    /// Number of injections that actually fired.
    pub injections: usize,
}

/// The full campaign result.
#[derive(Debug, Clone)]
pub struct CampaignResult {
    /// Format name the campaign ran under.
    pub format: String,
    /// Fault site kind.
    pub kind: SiteKind,
    /// Per-layer results, in execution order.
    pub layers: Vec<LayerResult>,
}

impl CampaignResult {
    /// Mean ΔLoss averaged across layers — the paper's single-value
    /// resilience summary used in Figure 9.
    pub fn avg_delta_loss(&self) -> f32 {
        if self.layers.is_empty() {
            return 0.0;
        }
        self.layers.iter().map(|l| l.delta_loss.mean()).sum::<f32>() / self.layers.len() as f32
    }
}

/// Runs a layer-by-layer injection campaign.
///
/// For each instrumented layer, performs `cfg.injections_per_layer` unique
/// single-bit flips (per `cfg.kind`), each in a fresh inference over
/// `(x, targets)`, and compares against the error-free emulated run.
///
/// # Panics
///
/// Panics if the format lacks metadata but `cfg.kind` is
/// [`SiteKind::Metadata`].
pub fn run_campaign(
    ge: &GoldenEye,
    model: &dyn Module,
    x: &Tensor,
    targets: &[usize],
    cfg: &CampaignConfig,
) -> CampaignResult {
    if cfg.kind == SiteKind::Metadata {
        assert!(
            ge.format().supports_metadata_injection(),
            "{} has no injectable metadata",
            ge.format().name()
        );
    }
    let layers = ge.discover_layers(model, x.clone());
    let golden = ge.run(model, x.clone());
    let mut results = Vec::with_capacity(layers.len());
    for layer in &layers {
        let mut delta_loss = RunningStats::new();
        let mut mismatch = RunningStats::new();
        let mut fired = 0usize;
        for i in 0..cfg.injections_per_layer {
            let seed = cfg
                .seed
                .wrapping_add((layer.index * cfg.injections_per_layer + i) as u64);
            let plan = InjectionPlan::single(layer.index, cfg.kind);
            let (faulty, rec) = ge.run_with_injection(model, x.clone(), plan, seed);
            if rec.is_none() {
                continue;
            }
            fired += 1;
            let outcome = compare_outcomes(&golden, &faulty, targets);
            delta_loss.push(outcome.delta_loss);
            mismatch.push(outcome.mismatch_rate);
        }
        results.push(LayerResult {
            layer: layer.index,
            name: layer.name.clone(),
            delta_loss,
            mismatch,
            injections: fired,
        });
    }
    CampaignResult {
        format: ge.format().name(),
        kind: cfg.kind,
        layers: results,
    }
}

/// Runs a **weight**-fault campaign (§V-B: injections in weights as well
/// as neurons): for each weight parameter (`*.weight`), performs
/// `cfg.injections_per_layer` single-bit flips in the stored, quantised
/// weight, each evaluated in a fresh inference and compared against the
/// error-free run over quantised weights.
///
/// Weights are quantised into the format up front (the paper's offline
/// conversion), and fully restored before returning. `cfg.kind` is
/// ignored: stored weights are data values.
pub fn run_weight_campaign(
    ge: &GoldenEye,
    model: &dyn Module,
    x: &Tensor,
    targets: &[usize],
    cfg: &CampaignConfig,
) -> CampaignResult {
    use crate::instrument::ParamSnapshot;
    let snapshot = ParamSnapshot::capture(model);
    ge.quantize_weights(model);
    let golden = ge.run(model, x.clone());
    let mut weight_params: Vec<(String, usize)> = Vec::new();
    model.visit_params(&mut |p| {
        if p.name().ends_with(".weight") {
            weight_params.push((p.name().to_string(), p.numel()));
        }
    });
    let width = ge.format().bit_width() as usize;
    let mut results = Vec::with_capacity(weight_params.len());
    for (li, (name, numel)) in weight_params.iter().enumerate() {
        let mut injector = inject::Injector::new(cfg.seed.wrapping_add(li as u64));
        let mut delta_loss = RunningStats::new();
        let mut mismatch = RunningStats::new();
        // Remember the clean quantised weight so each flip starts fresh.
        let mut clean: Option<Tensor> = None;
        model.visit_params(&mut |p| {
            if p.name() == name {
                clean = Some(p.get());
            }
        });
        let clean = clean.expect("weight parameter present");
        for _ in 0..cfg.injections_per_layer {
            let fault = injector.sample_value_fault(*numel, width);
            ge.inject_weight_fault(model, name, fault.index, fault.bit);
            let faulty = ge.run(model, x.clone());
            let outcome = compare_outcomes(&golden, &faulty, targets);
            delta_loss.push(outcome.delta_loss);
            mismatch.push(outcome.mismatch_rate);
            // Restore the clean quantised weight.
            model.visit_params(&mut |p| {
                if p.name() == name {
                    p.set(clean.clone());
                }
            });
        }
        results.push(LayerResult {
            layer: li,
            name: name.clone(),
            delta_loss,
            mismatch,
            injections: cfg.injections_per_layer,
        });
    }
    snapshot.restore(model);
    CampaignResult {
        format: ge.format().name(),
        kind: SiteKind::Value,
        layers: results,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use models::{train, ResNet, ResNetConfig, SyntheticDataset, TrainConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (ResNet, Tensor, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(1);
        let model = ResNet::new(ResNetConfig::tiny(4), &mut rng);
        let data = SyntheticDataset::generate(48, 16, 4, 5);
        train(
            &model,
            &data,
            &TrainConfig { epochs: 4, batch_size: 16, lr: 3e-3, ..Default::default() },
        );
        let (x, y) = data.head_batch(8);
        (model, x, y)
    }

    #[test]
    fn value_campaign_covers_all_layers() {
        let (model, x, y) = setup();
        let ge = GoldenEye::parse("bfp:e5m5:b16").unwrap();
        let cfg = CampaignConfig { injections_per_layer: 5, kind: SiteKind::Value, seed: 7 };
        let result = run_campaign(&ge, &model, &x, &y, &cfg);
        assert_eq!(result.layers.len(), 7); // tiny resnet instrumented layers
        for l in &result.layers {
            assert_eq!(l.injections, 5, "layer {} fired {}", l.name, l.injections);
            assert!(l.delta_loss.mean() >= 0.0);
        }
        assert!(result.avg_delta_loss() >= 0.0);
    }

    #[test]
    fn metadata_campaign_on_bfp() {
        let (model, x, y) = setup();
        let ge = GoldenEye::parse("bfp:e5m5:b16").unwrap();
        let cfg = CampaignConfig { injections_per_layer: 5, kind: SiteKind::Metadata, seed: 7 };
        let result = run_campaign(&ge, &model, &x, &y, &cfg);
        assert!(result.layers.iter().all(|l| l.injections == 5));
    }

    #[test]
    fn bfp_metadata_flips_hurt_more_than_value_flips() {
        // The paper's headline Figure 7 finding: BFP metadata errors are
        // "much more egregious across the board" than value errors,
        // because one shared-exponent bit corrupts a whole block.
        let (model, x, y) = setup();
        let ge = GoldenEye::parse("bfp:e5m5:b16").unwrap();
        let value = run_campaign(
            &ge,
            &model,
            &x,
            &y,
            &CampaignConfig { injections_per_layer: 30, kind: SiteKind::Value, seed: 3 },
        );
        let meta = run_campaign(
            &ge,
            &model,
            &x,
            &y,
            &CampaignConfig { injections_per_layer: 30, kind: SiteKind::Metadata, seed: 3 },
        );
        assert!(
            meta.avg_delta_loss() > value.avg_delta_loss(),
            "metadata ΔLoss {} should exceed value ΔLoss {}",
            meta.avg_delta_loss(),
            value.avg_delta_loss()
        );
    }

    #[test]
    #[should_panic(expected = "no injectable metadata")]
    fn metadata_campaign_on_fp_panics() {
        let (model, x, y) = setup();
        let ge = GoldenEye::parse("fp16").unwrap();
        run_campaign(
            &ge,
            &model,
            &x,
            &y,
            &CampaignConfig { injections_per_layer: 1, kind: SiteKind::Metadata, seed: 0 },
        );
    }

    #[test]
    fn weight_campaign_covers_weight_params_and_restores() {
        let (model, x, y) = setup();
        let before = models::forward_logits(&model, x.clone());
        let ge = GoldenEye::parse("fp:e4m3").unwrap();
        let cfg = CampaignConfig { injections_per_layer: 4, kind: SiteKind::Value, seed: 1 };
        let result = run_weight_campaign(&ge, &model, &x, &y, &cfg);
        // tiny resnet: stem + 4 block convs + 1 downsample + head = 7
        // weight tensors.
        assert_eq!(result.layers.len(), 7);
        assert!(result.layers.iter().all(|l| l.injections == 4));
        assert!(result.layers.iter().any(|l| l.name == "head.weight"));
        let after = models::forward_logits(&model, x);
        assert!(before.allclose(&after, 0.0), "weights not restored");
    }

    #[test]
    fn weight_campaign_is_deterministic() {
        let (model, x, y) = setup();
        let ge = GoldenEye::parse("int:8").unwrap();
        let cfg = CampaignConfig { injections_per_layer: 3, kind: SiteKind::Value, seed: 9 };
        let a = run_weight_campaign(&ge, &model, &x, &y, &cfg);
        let b = run_weight_campaign(&ge, &model, &x, &y, &cfg);
        for (la, lb) in a.layers.iter().zip(&b.layers) {
            assert_eq!(la.delta_loss.mean(), lb.delta_loss.mean(), "layer {}", la.name);
        }
    }

    #[test]
    fn campaign_is_deterministic() {
        let (model, x, y) = setup();
        let ge = GoldenEye::parse("int:8").unwrap();
        let cfg = CampaignConfig { injections_per_layer: 3, kind: SiteKind::Value, seed: 11 };
        let a = run_campaign(&ge, &model, &x, &y, &cfg);
        let b = run_campaign(&ge, &model, &x, &y, &cfg);
        for (la, lb) in a.layers.iter().zip(&b.layers) {
            assert_eq!(la.delta_loss.mean(), lb.delta_loss.mean());
        }
    }
}
