//! Use case C (§IV-C): resiliency analysis — layer-granularity error
//! injection campaigns measuring ΔLoss (and mismatch) per layer, for value
//! and metadata faults.
//!
//! Observability: every trial produces a replayable [`trace::TrialRecord`]
//! (site, bit, ΔLoss, mismatch) tagged with the worker id that ran it;
//! workers emit the records as `trial` events on the active trace sinks,
//! and the canonical `(layer, trial)`-ordered records are byte-identical
//! between serial and parallel runs (see `TrialRecord::canonical_line`).

use crate::instrument::{GoldenEye, InjectionPlan, InjectionRecord};
use inject::{BitSampler, BitStrata, SiteKind};
use metrics::{compare_outcomes, ConvergenceTrace, EarlyStop, RunningStats, StratifiedStats};
use nn::Module;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;
use tensor::Tensor;
use trace::{names, Json, Progress, RunManifest, TrialRecord};

/// Process-global counter of executed campaign trials.
fn trials_counter() -> &'static trace::Metric {
    static C: OnceLock<&'static trace::Metric> = OnceLock::new();
    C.get_or_init(|| trace::counter(names::CAMPAIGN_TRIALS))
}

/// Early-stopping decisions are taken only at multiples of this many
/// completed trials per injection site, in canonical trial order — so the
/// set of executed trials is a function of the statistics alone, never of
/// `trials_per_batch` or `jobs`. Batches are clipped to wave boundaries.
pub const EARLY_STOP_WAVE: usize = 32;

/// Campaign parameters.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Injections per layer.
    pub injections_per_layer: usize,
    /// Value-bit or metadata-bit faults.
    pub kind: SiteKind,
    /// Base RNG seed. Each trial derives its own seed with a SplitMix64
    /// counter hash over `(seed, layer, trial)` — see [`trial_seed`] —
    /// so results do not depend on trial execution order.
    pub seed: u64,
    /// Worker threads for the campaign executor: `1` runs serial, `N > 1`
    /// runs `N` scoped threads, `0` uses the machine's available
    /// parallelism. Results are **bit-identical** for every value.
    pub jobs: usize,
    /// Trials packed into one batched forward: `1` re-runs the whole
    /// network per trial (the classic per-trial engine), `N > 1` replays
    /// batches of `N` trials from the checkpoint preceding the injection
    /// layer, and `0` auto-sizes the batch from the kernel workspace
    /// pool's budget. Trial records are **bit-identical** for every
    /// value — batching changes only the execution schedule.
    pub trials_per_batch: usize,
    /// When set, stop injecting into a site once the 95% confidence
    /// interval of its ΔLoss mean has half-width ≤ this (checked every
    /// [`EARLY_STOP_WAVE`] trials, after at least
    /// [`metrics::EarlyStop`]'s minimum trial count).
    pub early_stop: Option<f32>,
    /// Bit-position sampling policy for value faults.
    /// [`BitSampler::Uniform`] reproduces the historical uniform draws;
    /// [`BitSampler::Stratified`] oversamples the exponent-bit stratum
    /// and reweights the statistics ([`metrics::StratifiedStats`]).
    pub sampler: BitSampler,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            injections_per_layer: 100,
            kind: SiteKind::Value,
            seed: 0,
            jobs: 1,
            trials_per_batch: 1,
            early_stop: None,
            sampler: BitSampler::Uniform,
        }
    }
}

impl CampaignConfig {
    /// Returns the config with `jobs` worker threads.
    #[must_use]
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs;
        self
    }

    /// Returns the config with `n` trials per batched forward
    /// (`0` = auto-size, `1` = per-trial).
    #[must_use]
    pub fn with_trials_per_batch(mut self, n: usize) -> Self {
        self.trials_per_batch = n;
        self
    }

    /// Returns the config with per-site ΔLoss early stopping at the given
    /// 95% CI half-width.
    #[must_use]
    pub fn with_early_stop(mut self, ci_half_width: f32) -> Self {
        self.early_stop = Some(ci_half_width);
        self
    }

    /// Returns the config with the given bit-position sampling policy.
    #[must_use]
    pub fn with_sampler(mut self, sampler: BitSampler) -> Self {
        self.sampler = sampler;
        self
    }

    /// Resolves `trials_per_batch` for an input of `x_numel` elements:
    /// `0` auto-sizes so the batched activations stay within the kernel
    /// workspace pool's per-buffer budget (assuming activations peak
    /// around an order of magnitude over the input), clamped to `2..=32`.
    pub fn effective_batch(&self, x_numel: usize) -> usize {
        match self.trials_per_batch {
            0 => (tensor::workspace::pooled_budget_elems() / (x_numel.max(1) * 9)).clamp(2, 32),
            n => n,
        }
    }
}

/// The per-trial RNG seed: a SplitMix64 counter hash over
/// `(base, layer, trial)`.
///
/// Every trial gets a statistically independent seed regardless of which
/// worker thread runs it, which is what makes the parallel executor
/// bit-identical to the serial one (and is a better seeding scheme than
/// the old `base + layer·n + trial`, whose adjacent seeds correlate).
pub fn trial_seed(base: u64, layer: u64, trial: u64) -> u64 {
    rand::mix64(rand::mix64(rand::mix64(base) ^ layer) ^ trial)
}

/// Resolves a `jobs` knob: `0` means "all available cores".
fn effective_jobs(jobs: usize) -> usize {
    if jobs == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    } else {
        jobs
    }
}

/// Runs `trials` independent trial closures and returns their results in
/// trial-index order. `f` receives `(worker, index)` — the worker id is
/// 0 in serial runs and the executor-thread index otherwise, so trial
/// records can be tagged with who ran them (auditing parallel runs
/// against the serial bit-identity guarantee).
///
/// With `jobs <= 1` this is a plain serial loop. Otherwise `jobs` scoped
/// worker threads pull trial indices from a shared atomic counter, and
/// the results are re-sorted into index order afterwards — so any
/// deterministic per-index `f` yields output independent of `jobs`
/// (the worker id must not feed back into the computation).
///
/// # Panics
///
/// Propagates a panic from any trial (the remaining workers finish their
/// current trial first).
pub(crate) fn run_trials<T, F>(jobs: usize, trials: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, usize) -> T + Sync,
{
    let jobs = effective_jobs(jobs).min(trials.max(1));
    if jobs <= 1 {
        return (0..trials).map(|i| f(0, i)).collect();
    }
    let next = AtomicUsize::new(0);
    // Workers inherit the spawning thread's span path (e.g. `campaign`)
    // so their spans nest under it in the self-profiler tree.
    let prof_path = trace::profile_path();
    let mut collected: Vec<(usize, T)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..jobs)
            .map(|worker| {
                let f = &f;
                let next = &next;
                let prof_path = prof_path.as_str();
                s.spawn(move || {
                    let _prof = trace::with_profile_path(prof_path);
                    // Trial-level parallelism already owns the cores: pin
                    // the intra-op kernel pool (GEMM row panels, chunked
                    // quantise) to one thread per worker. Safe because
                    // kernel results are bit-identical for every thread
                    // count — this only avoids oversubscription.
                    let _intra_op = tensor::parallel::with_threads(1);
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= trials {
                            break;
                        }
                        local.push((i, f(worker, i)));
                    }
                    local
                })
            })
            .collect();
        let mut all = Vec::with_capacity(trials);
        let mut panicked = None;
        for h in handles {
            match h.join() {
                Ok(local) => all.extend(local),
                Err(payload) => panicked = Some(payload),
            }
        }
        if let Some(payload) = panicked {
            std::panic::resume_unwind(payload);
        }
        all
    });
    collected.sort_unstable_by_key(|(i, _)| *i);
    collected.into_iter().map(|(_, t)| t).collect()
}

/// Per-layer campaign result.
#[derive(Debug, Clone)]
pub struct LayerResult {
    /// Instrumented-layer index.
    pub layer: usize,
    /// Layer name.
    pub name: String,
    /// ΔLoss statistics over the injections.
    pub delta_loss: RunningStats,
    /// Mismatch-rate statistics over the injections.
    pub mismatch: RunningStats,
    /// Number of injections that actually fired.
    pub injections: usize,
    /// Population-reweighted ΔLoss statistics when the campaign sampled
    /// bit positions with [`BitSampler::Stratified`] (`None` under
    /// uniform sampling): the unbiased estimator despite the critical
    /// stratum being oversampled.
    pub stratified: Option<StratifiedStats>,
}

impl LayerResult {
    /// The layer's unbiased ΔLoss mean: the stratified estimator when
    /// importance sampling was on, the plain mean otherwise.
    pub fn delta_loss_mean(&self) -> f32 {
        self.stratified.as_ref().map_or_else(|| self.delta_loss.mean(), StratifiedStats::mean)
    }
}

/// The full campaign result.
#[derive(Debug, Clone)]
pub struct CampaignResult {
    /// Format name the campaign ran under.
    pub format: String,
    /// Fault site kind.
    pub kind: SiteKind,
    /// Per-layer results, in execution order.
    pub layers: Vec<LayerResult>,
    /// Every trial's replayable record, in canonical `(layer, trial)`
    /// order; each is tagged with the executor worker that ran it.
    pub trials: Vec<TrialRecord>,
    /// Trials the config asked for (`layers × injections_per_layer`);
    /// `trials.len() < planned_trials` measures early-stop savings.
    pub planned_trials: usize,
}

impl CampaignResult {
    /// Mean ΔLoss averaged across layers — the paper's single-value
    /// resilience summary used in Figure 9. Uses each layer's unbiased
    /// estimator ([`LayerResult::delta_loss_mean`]).
    pub fn avg_delta_loss(&self) -> f32 {
        if self.layers.is_empty() {
            return 0.0;
        }
        self.layers.iter().map(LayerResult::delta_loss_mean).sum::<f32>() / self.layers.len() as f32
    }

    /// Fraction of planned trials skipped by early stopping (0.0 when it
    /// never triggered or was off).
    pub fn early_stop_savings(&self) -> f64 {
        if self.planned_trials == 0 {
            return 0.0;
        }
        1.0 - self.trials.len() as f64 / self.planned_trials as f64
    }

    /// The canonical per-trial JSONL block: one line per trial in
    /// `(layer, trial)` order, worker ids and timestamps excluded — the
    /// serialization under which parallel and serial runs are
    /// byte-identical.
    pub fn canonical_trial_jsonl(&self) -> String {
        let mut out = String::new();
        for t in &self.trials {
            out.push_str(&t.canonical_line());
            out.push('\n');
        }
        out
    }

    /// Builds the run manifest for this campaign: config, per-layer
    /// statistics, the ΔLoss running-mean convergence trace over the
    /// canonical trial order, and a snapshot of the trace counters.
    pub fn to_manifest(&self, tool: &str, cfg: &CampaignConfig, wall_time_s: f64) -> RunManifest {
        let mut conv = ConvergenceTrace::new();
        for t in &self.trials {
            if let Some(d) = t.delta_loss {
                conv.push(d);
            }
        }
        let mut m = RunManifest::new(tool)
            .with_config("format", self.format.as_str())
            .with_config("site", cfg.kind.as_str())
            .with_config("injections_per_layer", cfg.injections_per_layer)
            .with_config("seed", cfg.seed)
            .with_config("jobs", cfg.jobs)
            .with_config("trials_per_batch", cfg.trials_per_batch)
            .with_config("sampler", cfg.sampler.as_str())
            .with_extra("avg_delta_loss", self.avg_delta_loss())
            .with_extra("planned_trials", self.planned_trials)
            .with_extra("early_stop_savings", self.early_stop_savings())
            .with_extra("trials", self.trials.len());
        if let Some(ci) = cfg.early_stop {
            m = m.with_config("early_stop", ci);
        }
        m.wall_time_s = wall_time_s;
        if wall_time_s > 0.0 {
            m = m.with_extra("trials_per_sec", self.trials.len() as f64 / wall_time_s);
        }
        m.layers = self
            .layers
            .iter()
            .map(|l| trace::LayerRecord {
                layer: l.layer,
                name: l.name.clone(),
                injections: l.injections,
                delta_loss: l.delta_loss.summary(),
                mismatch: l.mismatch.summary(),
            })
            .collect();
        m.convergence = conv.running_means().to_vec();
        m.snapshot_counters();
        m.snapshot_profile();
        m
    }
}

/// Builds one trial's replayable record and emits it as a `trial` event
/// on the active trace sinks (tagged with the worker id).
#[allow(clippy::too_many_arguments)]
fn trial_record(
    layer: usize,
    layer_name: &str,
    trial: usize,
    kind: SiteKind,
    site: Option<(usize, usize)>,
    outcome: Option<&metrics::InjectionOutcome>,
    worker: usize,
) -> TrialRecord {
    let record = TrialRecord {
        layer,
        layer_name: layer_name.to_string(),
        trial,
        site: kind.as_str().to_string(),
        element: site.map(|(e, _)| e),
        bit: site.map(|(_, b)| b),
        delta_loss: outcome.map(|o| o.delta_loss),
        mismatch: outcome.map(|o| o.mismatch_rate),
        worker,
    };
    trials_counter().add(1);
    if trace::recording() {
        let mut fields: Vec<(&'static str, Json)> = Vec::with_capacity(9);
        if let Json::Obj(obj) = record.to_json() {
            // Re-borrow the payload with static keys for the event API.
            for (k, v) in obj {
                let key: &'static str = match k.as_str() {
                    "type" => continue,
                    "layer" => "layer",
                    "name" => "name",
                    "trial" => "trial",
                    "site" => "site",
                    "element" => "element",
                    "bit" => "bit",
                    "delta_loss" => "delta_loss",
                    "mismatch" => "mismatch",
                    "worker" => "worker",
                    _ => continue,
                };
                fields.push((key, v));
            }
        }
        trace::emit(trace::Level::Info, "trial", fields);
    }
    record
}

/// Per-site accumulator for the wave scheduler: canonical-order records
/// plus the running statistics the early-stop rule reads.
struct SiteState {
    done: usize,
    stopped: bool,
    records: Vec<TrialRecord>,
    delta_loss: RunningStats,
    mismatch: RunningStats,
    fired: usize,
    stratified: Option<StratifiedStats>,
    strata: BitStrata,
}

impl SiteState {
    fn fold(&mut self, record: TrialRecord) {
        if let (Some(d), Some(m)) = (record.delta_loss, record.mismatch) {
            self.fired += 1;
            self.delta_loss.push(d);
            self.mismatch.push(m);
            if let (Some(strat), Some(bit)) = (&mut self.stratified, record.bit) {
                strat.push(self.strata.stratum_of(bit), d);
            }
        }
        self.done += 1;
        self.records.push(record);
    }

    fn should_stop(&self, rule: &EarlyStop) -> bool {
        match &self.stratified {
            Some(s) => rule.should_stop_stratified(s),
            None => rule.should_stop(&self.delta_loss),
        }
    }
}

/// Runs a layer-by-layer injection campaign.
///
/// For each instrumented layer, performs up to `cfg.injections_per_layer`
/// single-bit flips (per `cfg.kind`), each compared against the
/// error-free emulated run over `(x, targets)`.
///
/// **Execution schedule.** With `cfg.trials_per_batch == 1` every trial
/// is a fresh full inference (the classic engine). With a larger batch,
/// the clean run is captured once as per-segment checkpoints
/// ([`GoldenEye::capture_clean_run`]) and trials replay only the network
/// suffix from the checkpoint preceding their injection layer, packed
/// `N` replicas to a forward ([`GoldenEye::run_replay_batch`]). With
/// `cfg.early_stop` set, each site's trials run in canonical waves of
/// [`EARLY_STOP_WAVE`] and stop once the site's ΔLoss confidence
/// interval is tight enough.
///
/// **Determinism.** Per-trial seeds come from [`trial_seed`], batched
/// replicas reproduce their serial trials draw-for-draw, outcomes fold in
/// canonical `(layer, trial)` order, and early-stop decisions happen only
/// at wave boundaries — so the executed trial set and every record are
/// bit-identical across all `jobs` *and* `trials_per_batch` values.
///
/// # Panics
///
/// Panics if the format lacks metadata but `cfg.kind` is
/// [`SiteKind::Metadata`].
pub fn run_campaign(
    ge: &GoldenEye,
    model: &dyn Module,
    x: &Tensor,
    targets: &[usize],
    cfg: &CampaignConfig,
) -> CampaignResult {
    if cfg.kind == SiteKind::Metadata {
        assert!(
            ge.format().supports_metadata_injection(),
            "{} has no injectable metadata",
            ge.format().name()
        );
    }
    let batch = cfg.effective_batch(x.numel()).max(1);
    let _campaign_span = trace::span!(
        "campaign",
        format = ge.format().name(),
        site = cfg.kind.as_str(),
        jobs = cfg.jobs,
        batch = batch
    );
    let layers = ge.discover_layers(model, x.clone());
    let n = cfg.injections_per_layer;
    // Checkpointed clean run only when batching pays for it; its golden
    // logits are bit-identical to `ge.run` either way.
    let clean = (batch > 1).then(|| ge.capture_clean_run(model, x.clone()));
    let golden = match &clean {
        Some(c) => c.golden().clone(),
        None => ge.run(model, x.clone()),
    };
    let rule = cfg.early_stop.map(EarlyStop::new);
    let mut states: Vec<SiteState> = layers
        .iter()
        .map(|l| {
            let strata = BitStrata::for_format(ge.format_for_layer(l.index));
            let stratified = match (cfg.kind, cfg.sampler) {
                (SiteKind::Value, BitSampler::Stratified { .. }) => Some(StratifiedStats::new(&[
                    strata.population_weight(0),
                    strata.population_weight(1),
                ])),
                _ => None,
            };
            SiteState {
                done: 0,
                stopped: false,
                records: Vec::new(),
                delta_loss: RunningStats::new(),
                mismatch: RunningStats::new(),
                fired: 0,
                stratified,
                strata,
            }
        })
        .collect();
    // Streaming progress: workers tick the live status line per unit;
    // heartbeat *events* fire only at wave-round boundaries, which are
    // schedule-invariant, so heartbeat content is byte-deterministic
    // across `jobs` and `trials_per_batch` (modulo the volatile timing
    // fields listed in `trace::names::PROGRESS_VOLATILE_FIELDS`).
    let progress = Progress::new("campaign", (layers.len() * n) as u64);
    let mut round: u64 = 0;
    // Rounds of one wave per unstopped site; each wave splits into
    // batches that never cross the wave boundary.
    loop {
        let mut units: Vec<(usize, usize, usize)> = Vec::new();
        for (li, st) in states.iter().enumerate() {
            if st.stopped || st.done >= n {
                continue;
            }
            // Without early stopping there are no decisions to take, so
            // one wave covers the whole site (fewer scheduling barriers).
            let wave = if rule.is_some() { EARLY_STOP_WAVE } else { n };
            let wave_end = st.done + wave.min(n - st.done);
            let mut t = st.done;
            while t < wave_end {
                let len = batch.min(wave_end - t);
                units.push((li, t, len));
                t += len;
            }
        }
        if units.is_empty() {
            break;
        }
        let results: Vec<Vec<TrialRecord>> = run_trials(cfg.jobs, units.len(), |worker, u| {
            let (li, start, len) = units[u];
            let layer = &layers[li];
            let plan = InjectionPlan::single(layer.index, cfg.kind);
            let run_one = |trial: usize, faulty: &Tensor, rec: Option<&InjectionRecord>| {
                let outcome = rec.map(|_| compare_outcomes(&golden, faulty, targets));
                let site = rec.map(|r| match r {
                    InjectionRecord::Value { flip, .. } => (flip.element, flip.bit),
                    InjectionRecord::Metadata { flip, .. } => (flip.word, flip.bit),
                });
                trial_record(
                    layer.index,
                    &layer.name,
                    trial,
                    cfg.kind,
                    site,
                    outcome.as_ref(),
                    worker,
                )
            };
            let recs: Vec<TrialRecord> = match &clean {
                Some(clean) => {
                    let _span = trace::span!("batch", layer = layer.index, trials = len);
                    let seeds: Vec<u64> = (start..start + len)
                        .map(|t| trial_seed(cfg.seed, layer.index as u64, t as u64))
                        .collect();
                    let outs = ge.run_replay_batch(model, clean, plan, cfg.sampler, &seeds);
                    outs.iter()
                        .enumerate()
                        .map(|(i, (faulty, rec))| run_one(start + i, faulty, rec.as_ref()))
                        .collect()
                }
                None => (start..start + len)
                    .map(|trial| {
                        let _span = trace::span!("trial", layer = layer.index, trial = trial);
                        let seed = trial_seed(cfg.seed, layer.index as u64, trial as u64);
                        let (faulty, rec) = ge.run_with_injection_sampled(
                            model,
                            x.clone(),
                            plan,
                            seed,
                            cfg.sampler,
                        );
                        run_one(trial, &faulty, rec.as_ref())
                    })
                    .collect(),
            };
            progress.tick(recs.len() as u64);
            recs
        });
        for ((li, _, _), recs) in units.iter().zip(results) {
            for r in recs {
                states[*li].fold(r);
            }
        }
        if let Some(rule) = &rule {
            for st in &mut states {
                if !st.stopped && st.done < n && st.should_stop(rule) {
                    st.stopped = true;
                }
            }
        }
        round += 1;
        // Deterministic content first (wave index, site states), volatile
        // schedule/timing fields last.
        let stopped = states.iter().filter(|s| s.stopped).count();
        let mut extra: Vec<(&'static str, Json)> = vec![
            ("wave", Json::from(round)),
            ("stopped_sites", Json::from(stopped)),
            ("jobs", Json::from(cfg.jobs)),
            ("batch", Json::from(batch)),
        ];
        let seg_total = trace::counter(names::CAMPAIGN_REPLAY_SEG_TOTAL).count();
        if seg_total > 0 {
            let skipped = trace::counter(names::CAMPAIGN_REPLAY_SEG_SKIPPED).count();
            extra.push(("cache_hit_rate", Json::Num(skipped as f64 / seg_total as f64)));
        }
        progress.heartbeat(extra);
    }
    progress.finish();
    let mut results = Vec::with_capacity(layers.len());
    let mut trials = Vec::new();
    for (layer, st) in layers.iter().zip(states) {
        trials.extend(st.records);
        results.push(LayerResult {
            layer: layer.index,
            name: layer.name.clone(),
            delta_loss: st.delta_loss,
            mismatch: st.mismatch,
            injections: st.fired,
            stratified: st.stratified,
        });
    }
    CampaignResult {
        format: ge.format().name(),
        kind: cfg.kind,
        layers: results,
        trials,
        planned_trials: layers.len() * n,
    }
}

/// Runs a **weight**-fault campaign (§V-B: injections in weights as well
/// as neurons): for each weight parameter (`*.weight`), performs
/// `cfg.injections_per_layer` single-bit flips in the stored, quantised
/// weight, each evaluated in a fresh inference and compared against the
/// error-free run over quantised weights.
///
/// Weights are quantised into the format up front (the paper's offline
/// conversion), and fully restored before returning. `cfg.kind` is
/// ignored: stored weights are data values.
///
/// Each trial perturbs its weight through a **thread-local** parameter
/// override ([`nn::Param::override_local`]) instead of mutating the
/// shared storage, so with `cfg.jobs > 1` concurrent trials never
/// observe each other's faults; the shared model holds the clean
/// quantised weights throughout. As in [`run_campaign`], per-trial
/// seeding plus canonical fold order make the result bit-identical for
/// every `jobs` value.
pub fn run_weight_campaign(
    ge: &GoldenEye,
    model: &dyn Module,
    x: &Tensor,
    targets: &[usize],
    cfg: &CampaignConfig,
) -> CampaignResult {
    use crate::instrument::ParamSnapshot;
    let snapshot = ParamSnapshot::capture(model);
    ge.quantize_weights(model);
    let golden = ge.run(model, x.clone());
    // Clean quantised weights, captured once: each trial flips a bit in a
    // private copy derived from these.
    let mut weights: Vec<(nn::Param, Tensor)> = Vec::new();
    model.visit_params(&mut |p| {
        if p.name().ends_with(".weight") {
            weights.push((p.clone(), p.get()));
        }
    });
    let width = ge.format().bit_width() as usize;
    let n = cfg.injections_per_layer;
    // Clean weights quantise to the same codes every trial: convert each
    // once (through the artifact store when attached) and hand trials a
    // private clone to flip, instead of re-running the offline conversion
    // per trial.
    let clean_quantized: Vec<formats::Quantized> =
        weights.iter().map(|(_, clean)| ge.quantize_tensor_cached(clean)).collect();
    let _campaign_span =
        trace::span!("campaign", format = ge.format().name(), site = "weight", jobs = cfg.jobs);
    let progress = Progress::new("weight_campaign", (weights.len() * n) as u64);
    let trials = run_trials(cfg.jobs, weights.len() * n, |worker, idx| {
        let (param, clean) = &weights[idx / n];
        let trial = idx % n;
        let _trial_span = trace::span!("trial", layer = idx / n, trial = trial);
        let seed = trial_seed(cfg.seed, (idx / n) as u64, trial as u64);
        let mut injector = inject::Injector::new(seed);
        let fault = injector.sample_value_fault(clean.numel(), width);
        let mut q = clean_quantized[idx / n].clone();
        inject::flip_value(ge.format(), &mut q, fault.index, fault.bit);
        let faulty_weight = ge.format().format_to_real_tensor(&q);
        let _guard = param.override_local(faulty_weight);
        let faulty = ge.run(model, x.clone());
        let outcome = compare_outcomes(&golden, &faulty, targets);
        let record = trial_record(
            idx / n,
            param.name(),
            trial,
            SiteKind::Value,
            Some((fault.index, fault.bit)),
            Some(&outcome),
            worker,
        );
        progress.tick(1);
        record
    });
    progress.heartbeat(vec![("jobs", Json::from(cfg.jobs))]);
    progress.finish();
    let mut results = Vec::with_capacity(weights.len());
    for (li, (param, _)) in weights.iter().enumerate() {
        let mut delta_loss = RunningStats::new();
        let mut mismatch = RunningStats::new();
        for record in &trials[li * n..(li + 1) * n] {
            if let (Some(d), Some(m)) = (record.delta_loss, record.mismatch) {
                delta_loss.push(d);
                mismatch.push(m);
            }
        }
        results.push(LayerResult {
            layer: li,
            name: param.name().to_string(),
            delta_loss,
            mismatch,
            injections: n,
            stratified: None,
        });
    }
    snapshot.restore(model);
    let planned_trials = trials.len();
    CampaignResult {
        format: ge.format().name(),
        kind: SiteKind::Value,
        layers: results,
        trials,
        planned_trials,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use models::{train, ResNet, ResNetConfig, SyntheticDataset, TrainConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (ResNet, Tensor, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(1);
        let model = ResNet::new(ResNetConfig::tiny(4), &mut rng);
        let data = SyntheticDataset::generate(48, 16, 4, 5);
        train(
            &model,
            &data,
            &TrainConfig { epochs: 4, batch_size: 16, lr: 3e-3, ..Default::default() },
        );
        let (x, y) = data.head_batch(8);
        (model, x, y)
    }

    #[test]
    fn value_campaign_covers_all_layers() {
        let (model, x, y) = setup();
        let ge = GoldenEye::parse("bfp:e5m5:b16").unwrap();
        let cfg = CampaignConfig {
            injections_per_layer: 5,
            kind: SiteKind::Value,
            seed: 7,
            jobs: 1,
            ..Default::default()
        };
        let result = run_campaign(&ge, &model, &x, &y, &cfg);
        assert_eq!(result.layers.len(), 7); // tiny resnet instrumented layers
        for l in &result.layers {
            assert_eq!(l.injections, 5, "layer {} fired {}", l.name, l.injections);
            assert!(l.delta_loss.mean() >= 0.0);
        }
        assert!(result.avg_delta_loss() >= 0.0);
    }

    #[test]
    fn metadata_campaign_on_bfp() {
        let (model, x, y) = setup();
        let ge = GoldenEye::parse("bfp:e5m5:b16").unwrap();
        let cfg = CampaignConfig {
            injections_per_layer: 5,
            kind: SiteKind::Metadata,
            seed: 7,
            jobs: 1,
            ..Default::default()
        };
        let result = run_campaign(&ge, &model, &x, &y, &cfg);
        assert!(result.layers.iter().all(|l| l.injections == 5));
    }

    #[test]
    fn bfp_metadata_flips_hurt_more_than_value_flips() {
        // The paper's headline Figure 7 finding: BFP metadata errors are
        // "much more egregious across the board" than value errors,
        // because one shared-exponent bit corrupts a whole block.
        let (model, x, y) = setup();
        let ge = GoldenEye::parse("bfp:e5m5:b16").unwrap();
        let value = run_campaign(
            &ge,
            &model,
            &x,
            &y,
            &CampaignConfig {
                injections_per_layer: 30,
                kind: SiteKind::Value,
                seed: 3,
                jobs: 1,
                ..Default::default()
            },
        );
        let meta = run_campaign(
            &ge,
            &model,
            &x,
            &y,
            &CampaignConfig {
                injections_per_layer: 30,
                kind: SiteKind::Metadata,
                seed: 3,
                jobs: 1,
                ..Default::default()
            },
        );
        assert!(
            meta.avg_delta_loss() > value.avg_delta_loss(),
            "metadata ΔLoss {} should exceed value ΔLoss {}",
            meta.avg_delta_loss(),
            value.avg_delta_loss()
        );
    }

    #[test]
    #[should_panic(expected = "no injectable metadata")]
    fn metadata_campaign_on_fp_panics() {
        let (model, x, y) = setup();
        let ge = GoldenEye::parse("fp16").unwrap();
        run_campaign(
            &ge,
            &model,
            &x,
            &y,
            &CampaignConfig {
                injections_per_layer: 1,
                kind: SiteKind::Metadata,
                seed: 0,
                jobs: 1,
                ..Default::default()
            },
        );
    }

    #[test]
    fn weight_campaign_covers_weight_params_and_restores() {
        let (model, x, y) = setup();
        let before = models::forward_logits(&model, x.clone());
        let ge = GoldenEye::parse("fp:e4m3").unwrap();
        let cfg = CampaignConfig {
            injections_per_layer: 4,
            kind: SiteKind::Value,
            seed: 1,
            jobs: 1,
            ..Default::default()
        };
        let result = run_weight_campaign(&ge, &model, &x, &y, &cfg);
        // tiny resnet: stem + 4 block convs + 1 downsample + head = 7
        // weight tensors.
        assert_eq!(result.layers.len(), 7);
        assert!(result.layers.iter().all(|l| l.injections == 4));
        assert!(result.layers.iter().any(|l| l.name == "head.weight"));
        let after = models::forward_logits(&model, x);
        assert!(before.allclose(&after, 0.0), "weights not restored");
    }

    #[test]
    fn weight_campaign_is_deterministic() {
        let (model, x, y) = setup();
        let ge = GoldenEye::parse("int:8").unwrap();
        let cfg = CampaignConfig {
            injections_per_layer: 3,
            kind: SiteKind::Value,
            seed: 9,
            jobs: 1,
            ..Default::default()
        };
        let a = run_weight_campaign(&ge, &model, &x, &y, &cfg);
        let b = run_weight_campaign(&ge, &model, &x, &y, &cfg);
        for (la, lb) in a.layers.iter().zip(&b.layers) {
            assert_eq!(la.delta_loss.mean(), lb.delta_loss.mean(), "layer {}", la.name);
        }
    }

    #[test]
    fn campaign_is_deterministic() {
        let (model, x, y) = setup();
        let ge = GoldenEye::parse("int:8").unwrap();
        let cfg = CampaignConfig {
            injections_per_layer: 3,
            kind: SiteKind::Value,
            seed: 11,
            jobs: 1,
            ..Default::default()
        };
        let a = run_campaign(&ge, &model, &x, &y, &cfg);
        let b = run_campaign(&ge, &model, &x, &y, &cfg);
        for (la, lb) in a.layers.iter().zip(&b.layers) {
            assert_eq!(la.delta_loss.mean(), lb.delta_loss.mean());
        }
    }

    #[test]
    fn batched_campaign_is_byte_identical_to_per_trial() {
        let (model, x, y) = setup();
        for spec in ["fp:e4m3", "bfp:e5m5:b16"] {
            let ge = GoldenEye::parse(spec).unwrap();
            let base = CampaignConfig {
                injections_per_layer: 7,
                kind: SiteKind::Value,
                seed: 13,
                jobs: 1,
                ..Default::default()
            };
            let serial = run_campaign(&ge, &model, &x, &y, &base);
            for batch in [2, 3, 7, 16] {
                let cfg = base.clone().with_trials_per_batch(batch);
                let batched = run_campaign(&ge, &model, &x, &y, &cfg);
                assert_eq!(
                    serial.canonical_trial_jsonl(),
                    batched.canonical_trial_jsonl(),
                    "{spec}: batch {batch} diverged from per-trial"
                );
            }
        }
    }

    #[test]
    fn batched_metadata_campaign_matches_per_trial() {
        let (model, x, y) = setup();
        let ge = GoldenEye::parse("bfp:e5m5:b16").unwrap();
        let base = CampaignConfig {
            injections_per_layer: 5,
            kind: SiteKind::Metadata,
            seed: 17,
            jobs: 1,
            ..Default::default()
        };
        let serial = run_campaign(&ge, &model, &x, &y, &base);
        let batched = run_campaign(&ge, &model, &x, &y, &base.clone().with_trials_per_batch(5));
        assert_eq!(serial.canonical_trial_jsonl(), batched.canonical_trial_jsonl());
    }

    #[test]
    fn early_stopping_skips_trials_and_is_schedule_invariant() {
        let (model, x, y) = setup();
        let ge = GoldenEye::parse("fp:e4m3").unwrap();
        // A loose CI bound stops converged sites after the first wave.
        let base = CampaignConfig {
            injections_per_layer: 3 * EARLY_STOP_WAVE,
            kind: SiteKind::Value,
            seed: 19,
            jobs: 1,
            ..Default::default()
        }
        .with_early_stop(5.0);
        let a = run_campaign(&ge, &model, &x, &y, &base);
        assert!(
            a.trials.len() < a.planned_trials,
            "loose CI should stop early ({} of {} trials ran)",
            a.trials.len(),
            a.planned_trials
        );
        assert!(a.early_stop_savings() > 0.0);
        // The executed trial set is identical across batch sizes and jobs.
        for (batch, jobs) in [(4, 1), (16, 2), (EARLY_STOP_WAVE, 3)] {
            let cfg = base.clone().with_trials_per_batch(batch).with_jobs(jobs);
            let b = run_campaign(&ge, &model, &x, &y, &cfg);
            assert_eq!(
                a.canonical_trial_jsonl(),
                b.canonical_trial_jsonl(),
                "batch {batch} jobs {jobs} changed the early-stopped trial set"
            );
        }
    }

    #[test]
    fn early_stopped_sites_report_converged_ci() {
        let (model, x, y) = setup();
        let ge = GoldenEye::parse("fp:e4m3").unwrap();
        let cfg = CampaignConfig {
            injections_per_layer: 4 * EARLY_STOP_WAVE,
            kind: SiteKind::Value,
            seed: 23,
            jobs: 1,
            ..Default::default()
        }
        .with_early_stop(0.8)
        .with_trials_per_batch(8);
        let result = run_campaign(&ge, &model, &x, &y, &cfg);
        for l in &result.layers {
            if l.delta_loss.count() < (4 * EARLY_STOP_WAVE) as u64 {
                assert!(
                    l.delta_loss.ci95_half_width() <= 0.8,
                    "layer {} stopped at CI {}",
                    l.name,
                    l.delta_loss.ci95_half_width()
                );
            }
        }
    }

    #[test]
    fn stratified_campaign_reports_reweighted_stats() {
        let (model, x, y) = setup();
        let ge = GoldenEye::parse("fp:e4m3").unwrap();
        let cfg = CampaignConfig {
            injections_per_layer: 40,
            kind: SiteKind::Value,
            seed: 29,
            jobs: 1,
            ..Default::default()
        }
        .with_sampler(BitSampler::Stratified { critical_mass: 0.75 })
        .with_trials_per_batch(8);
        let result = run_campaign(&ge, &model, &x, &y, &cfg);
        let mut critical_total = 0u64;
        for l in &result.layers {
            let strat = l.stratified.as_ref().expect("stratified stats present");
            assert_eq!(strat.count(), l.delta_loss.count());
            critical_total += strat.stratum(0).count();
            // The unbiased estimator is what delta_loss_mean exposes.
            assert_eq!(l.delta_loss_mean(), strat.mean());
        }
        // fp:e4m3 has a 4-bit exponent field out of 8 bits; uniform
        // sampling would land ~50% of faults there, the stratified
        // sampler ~75%.
        let frac = critical_total as f64 / result.trials.len() as f64;
        assert!(frac > 0.62, "critical stratum fraction {frac} not oversampled");
    }

    #[test]
    fn uniform_campaign_has_no_stratified_stats() {
        let (model, x, y) = setup();
        let ge = GoldenEye::parse("int:8").unwrap();
        let cfg = CampaignConfig {
            injections_per_layer: 2,
            kind: SiteKind::Value,
            seed: 31,
            jobs: 1,
            ..Default::default()
        };
        let result = run_campaign(&ge, &model, &x, &y, &cfg);
        assert!(result.layers.iter().all(|l| l.stratified.is_none()));
        assert_eq!(result.planned_trials, result.trials.len());
        assert_eq!(result.early_stop_savings(), 0.0);
    }

    #[test]
    fn effective_batch_auto_sizes_from_pool_budget() {
        let cfg = CampaignConfig::default().with_trials_per_batch(0);
        // Tiny inputs hit the upper clamp…
        assert_eq!(cfg.effective_batch(16), 32);
        // …huge inputs the lower one.
        assert_eq!(cfg.effective_batch(usize::MAX / 16), 2);
        // Explicit batch sizes pass through.
        assert_eq!(cfg.clone().with_trials_per_batch(6).effective_batch(16), 6);
        assert_eq!(CampaignConfig::default().effective_batch(16), 1);
    }
}
