//! Reduced-precision accumulation — the paper's named future-work item
//! (§V-C: mixed-precision operations "would require detailed attention to
//! accumulation error and rounding error during computations").
//!
//! Real accelerators don't just *store* activations in a reduced format;
//! their MAC arrays accumulate partial sums in a (possibly wider, but
//! still finite) accumulator register. This module simulates a dot
//! product / GEMM whose accumulator is rounded into a target format after
//! every multiply-accumulate step, and quantifies the resulting error as
//! a function of reduction length — the data an accelerator designer
//! needs to size accumulators.
//!
//! Only formats without tensor-level metadata (FP, FxP, posit) make sense
//! as accumulators; metadata-bearing formats are rejected.

use formats::NumberFormat;
use rand::rngs::StdRng;
use rand::SeedableRng;
use tensor::Tensor;

fn check_accumulator(format: &dyn NumberFormat) {
    assert!(
        !format.supports_metadata_injection(),
        "{} carries tensor-level metadata and cannot model a scalar accumulator",
        format.name()
    );
}

/// Dot product with every product and partial sum rounded into `acc`.
///
/// # Panics
///
/// Panics if lengths differ or `acc` carries tensor-level metadata.
pub fn quantized_dot(a: &[f32], b: &[f32], acc: &dyn NumberFormat) -> f32 {
    assert_eq!(a.len(), b.len(), "dot-product length mismatch");
    check_accumulator(acc);
    let mut s = 0.0f32;
    for (&x, &y) in a.iter().zip(b) {
        let prod = acc.quantize_value(x * y);
        s = acc.quantize_value(s + prod);
    }
    s
}

/// `[m,k] × [k,n]` GEMM with a reduced-precision accumulator.
///
/// # Panics
///
/// Panics on shape mismatch or a metadata-bearing accumulator format.
pub fn quantized_matmul(a: &Tensor, b: &Tensor, acc: &dyn NumberFormat) -> Tensor {
    assert_eq!(a.ndim(), 2, "lhs must be 2-D");
    assert_eq!(b.ndim(), 2, "rhs must be 2-D");
    let (m, k) = (a.dims()[0], a.dims()[1]);
    let (k2, n) = (b.dims()[0], b.dims()[1]);
    assert_eq!(k, k2, "inner dimensions disagree");
    check_accumulator(acc);
    let mut out = vec![0.0f32; m * n];
    // Column-major access of b per output element keeps the semantics of
    // a sequential MAC pipeline (one accumulator per output).
    for i in 0..m {
        for j in 0..n {
            let row = &a.as_slice()[i * k..(i + 1) * k];
            let mut s = 0.0f32;
            for (kk, &x) in row.iter().enumerate() {
                let prod = acc.quantize_value(x * b.as_slice()[kk * n + j]);
                s = acc.quantize_value(s + prod);
            }
            out[i * n + j] = s;
        }
    }
    Tensor::from_vec(out, [m, n])
}

/// One row of an accumulation-error study.
#[derive(Debug, Clone, PartialEq)]
pub struct AccumulationErrorPoint {
    /// Reduction length (number of MACs per output).
    pub length: usize,
    /// Mean relative error versus an f64 reference accumulator.
    pub mean_rel_error: f64,
}

/// Measures mean relative accumulation error versus reduction length for
/// an accumulator format, over `trials` random unit-scale dot products
/// per length.
///
/// # Panics
///
/// Panics if `trials == 0` or the format carries tensor-level metadata.
pub fn accumulation_error_study(
    acc: &dyn NumberFormat,
    lengths: &[usize],
    trials: usize,
    seed: u64,
) -> Vec<AccumulationErrorPoint> {
    assert!(trials > 0, "need at least one trial");
    check_accumulator(acc);
    let mut rng = StdRng::seed_from_u64(seed);
    lengths
        .iter()
        .map(|&len| {
            let mut total = 0.0f64;
            for _ in 0..trials {
                let a = Tensor::randn([len], &mut rng);
                let b = Tensor::randn([len], &mut rng);
                let exact: f64 =
                    a.as_slice().iter().zip(b.as_slice()).map(|(&x, &y)| x as f64 * y as f64).sum();
                let got = quantized_dot(a.as_slice(), b.as_slice(), acc) as f64;
                // Relative to the RMS magnitude of the sum (≈√len) so the
                // metric is stable when the exact sum is near zero.
                let scale = (len as f64).sqrt().max(1.0);
                total += (got - exact).abs() / scale;
            }
            AccumulationErrorPoint { length: len, mean_rel_error: total / trials as f64 }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use formats::{FloatingPoint, IntQuant};
    use rand::Rng;

    #[test]
    fn fp32_accumulator_is_exact_wrt_sequential_reference() {
        let mut rng = StdRng::seed_from_u64(1);
        let a: Vec<f32> = (0..64).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let b: Vec<f32> = (0..64).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let fp32 = FloatingPoint::fp32();
        let got = quantized_dot(&a, &b, &fp32);
        let mut reference = 0.0f32;
        for (x, y) in a.iter().zip(&b) {
            reference += x * y;
        }
        assert_eq!(got, reference, "fp32 accumulator must be transparent");
    }

    #[test]
    fn narrower_accumulators_accumulate_more_error() {
        let lengths = [256usize];
        let e_fp16 =
            accumulation_error_study(&FloatingPoint::fp16(), &lengths, 10, 3)[0].mean_rel_error;
        let e_fp8 =
            accumulation_error_study(&FloatingPoint::fp8_e4m3(), &lengths, 10, 3)[0].mean_rel_error;
        let e_fp32 =
            accumulation_error_study(&FloatingPoint::fp32(), &lengths, 10, 3)[0].mean_rel_error;
        assert!(e_fp32 < e_fp16, "fp32 {e_fp32} vs fp16 {e_fp16}");
        assert!(e_fp16 < e_fp8, "fp16 {e_fp16} vs fp8 {e_fp8}");
    }

    #[test]
    fn error_grows_with_reduction_length() {
        let pts = accumulation_error_study(&FloatingPoint::fp16(), &[16, 1024], 12, 5);
        assert!(
            pts[1].mean_rel_error > pts[0].mean_rel_error,
            "len 1024 ({}) should out-err len 16 ({})",
            pts[1].mean_rel_error,
            pts[0].mean_rel_error
        );
    }

    #[test]
    fn quantized_matmul_matches_quantized_dot() {
        let mut rng = StdRng::seed_from_u64(7);
        let a = Tensor::randn([3, 8], &mut rng);
        let b = Tensor::randn([8, 2], &mut rng);
        let fp8 = FloatingPoint::fp8_e4m3();
        let c = quantized_matmul(&a, &b, &fp8);
        // Check one output element against the scalar routine.
        let row: Vec<f32> = a.as_slice()[8..16].to_vec();
        let col: Vec<f32> = (0..8).map(|k| b.at(&[k, 1])).collect();
        assert_eq!(c.at(&[1, 1]), quantized_dot(&row, &col, &fp8));
    }

    #[test]
    #[should_panic(expected = "tensor-level metadata")]
    fn metadata_formats_rejected_as_accumulators() {
        quantized_dot(&[1.0], &[1.0], &IntQuant::new(8));
    }
}
