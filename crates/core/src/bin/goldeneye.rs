//! The `goldeneye` command-line tool — the paper's "set of command line
//! arguments for hyperparameter tuning" (§IV-B), exposing the simulator
//! without writing Rust:
//!
//! ```text
//! goldeneye ranges
//! goldeneye inspect bfp:e5m5:tensor
//! goldeneye quantize fp:e4m3 0.1,1.0,300
//! goldeneye evaluate --model cnn --spec int:8 [--epochs 8]
//! goldeneye campaign --model cnn --spec bfp:e5m5:tensor --site metadata --injections 20
//! goldeneye dse --model cnn --family afp [--drop 0.02]
//! ```
//!
//! Models are tiny synthetic-task networks trained on the spot (seconds),
//! so every subcommand is self-contained; the bench binaries cover the
//! paper-scale experiments.

use goldeneye::dse::{accuracy_eval, search, DseFamily};
use goldeneye::{evaluate_accuracy_jobs, run_campaign, CampaignConfig, GoldenEye};
use inject::SiteKind;
use models::{
    train, DeitConfig, ResNet, ResNetConfig, SyntheticDataset, TrainConfig, VisionTransformer,
};
use nn::Module;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("ranges") => cmd_ranges(),
        Some("inspect") => cmd_inspect(&args[1..]),
        Some("quantize") => cmd_quantize(&args[1..]),
        Some("evaluate") => cmd_evaluate(&args[1..]),
        Some("campaign") => cmd_campaign(&args[1..]),
        Some("dse") => cmd_dse(&args[1..]),
        Some("help") | Some("--help") | Some("-h") | None => {
            print_usage();
            Ok(())
        }
        Some(other) => Err(format!("unknown subcommand `{other}` (try `goldeneye help`)")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn print_usage() {
    println!(
        "goldeneye — functional simulator for numerical data formats in DNN accelerators\n\n\
         USAGE:\n  goldeneye <SUBCOMMAND> [OPTIONS]\n\n\
         SUBCOMMANDS:\n\
           ranges                                  print Table I (dynamic ranges)\n\
           inspect <spec>                          describe a number format\n\
           quantize <spec> <v1,v2,...>             quantise values; show bit images\n\
           evaluate --model cnn|vit --spec <spec>  accuracy under an emulated format\n\
                    [--jobs N]\n\
           campaign --model cnn|vit --spec <spec>  per-layer delta-loss injection campaign\n\
                    [--site value|metadata] [--injections N] [--jobs N]\n\
           dse --model cnn|vit --family <fam>      binary-tree format search\n\
               [--drop 0.02] [--jobs N]  fam: fp|fxp|int|bfp|afp\n\n\
         --jobs N runs on N worker threads (0 = all cores); results are\n\
         bit-identical to --jobs 1.\n\n\
         FORMAT SPECS: fp:eXmY[:nodn] fxp:1:I:F int:B bfp:eXmY:(bN|tensor) afp:eXmY posit:N:ES\n\
                       fp32 fp16 bfloat16 tf32 dlfloat16 fp8 int8 int16 posit8 posit16"
    );
}

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).cloned()
}

/// Parses `--jobs N` (default 1 = serial; 0 = all cores).
fn jobs_flag(args: &[String]) -> Result<usize, String> {
    match flag(args, "--jobs") {
        None => Ok(1),
        Some(v) => v.parse().map_err(|_| format!("bad --jobs value `{v}`")),
    }
}

fn cmd_ranges() -> Result<(), String> {
    print!("{}", formats::ranges::table1_text());
    Ok(())
}

fn cmd_inspect(args: &[String]) -> Result<(), String> {
    let spec = args.first().ok_or("inspect needs a format spec")?;
    let ge = GoldenEye::parse(spec).map_err(|e| e.to_string())?;
    let f = ge.format();
    let r = f.dynamic_range();
    println!("format:          {}", f.name());
    println!("data bits/value: {}", f.bit_width());
    println!("abs max:         {:.4e}", r.max_abs);
    println!("abs min (≠0):    {:.4e}", r.min_abs);
    println!("range:           {:.2} dB", r.db());
    println!(
        "metadata:        {}",
        if f.supports_metadata_injection() { "injectable" } else { "none" }
    );
    Ok(())
}

fn cmd_quantize(args: &[String]) -> Result<(), String> {
    let spec = args.first().ok_or("quantize needs a format spec")?;
    let values = args.get(1).ok_or("quantize needs comma-separated values")?;
    let values: Vec<f32> = values
        .split(',')
        .map(|v| v.trim().parse::<f32>().map_err(|_| format!("bad value `{v}`")))
        .collect::<Result<_, _>>()?;
    let ge = GoldenEye::parse(spec).map_err(|e| e.to_string())?;
    let f = ge.format();
    let n = values.len();
    let q = f.real_to_format_tensor(&tensor::Tensor::from_vec(values.clone(), [n]));
    println!("{:>14} {:>14} {:>20}", "input", "quantised", "bits");
    for (i, &x) in values.iter().enumerate() {
        let v = q.values.as_slice()[i];
        let bits = f.real_to_format(v, &q.meta, i);
        println!("{x:>14.6} {v:>14.6} {:>20}", bits.to_string());
    }
    if q.meta.word_count() > 0 {
        println!(
            "\nmetadata ({} word(s), {} bits each):",
            q.meta.word_count(),
            q.meta.word_width()
        );
        for w in 0..q.meta.word_count().min(8) {
            println!("  word {w}: {}", q.meta.word_bits(w).expect("in range"));
        }
    }
    Ok(())
}

/// Builds and trains the CLI's small demonstration model.
fn demo_model(
    kind: &str,
    epochs: usize,
) -> Result<(Box<dyn Module>, SyntheticDataset, f32), String> {
    let mut rng = StdRng::seed_from_u64(1);
    let model: Box<dyn Module> = match kind {
        "cnn" => Box::new(ResNet::new(ResNetConfig::tiny(8), &mut rng)),
        "vit" => Box::new(VisionTransformer::new(DeitConfig::tiny_test(16, 4), &mut rng)),
        other => return Err(format!("unknown model `{other}` (cnn|vit)")),
    };
    let data = SyntheticDataset::generate(128, 16, 4, 7);
    eprintln!("training {kind} ({epochs} epochs on the synthetic task)...");
    train(
        model.as_ref(),
        &data,
        &TrainConfig { epochs, batch_size: 16, lr: 3e-3, ..Default::default() },
    );
    let baseline = models::evaluate(model.as_ref(), &data, 64, 32);
    Ok((model, data, baseline))
}

fn cmd_evaluate(args: &[String]) -> Result<(), String> {
    let model_kind = flag(args, "--model").unwrap_or_else(|| "cnn".into());
    let spec = flag(args, "--spec").ok_or("evaluate needs --spec")?;
    let epochs = flag(args, "--epochs").and_then(|e| e.parse().ok()).unwrap_or(8);
    let jobs = jobs_flag(args)?;
    let ge = GoldenEye::parse(&spec).map_err(|e| e.to_string())?;
    let (model, data, baseline) = demo_model(&model_kind, epochs)?;
    let acc = evaluate_accuracy_jobs(&ge, model.as_ref(), &data, 64, 32, jobs);
    println!("native FP32 accuracy: {:.1}%", baseline * 100.0);
    println!("{} accuracy:     {:.1}%", ge.format().name(), acc * 100.0);
    Ok(())
}

fn cmd_campaign(args: &[String]) -> Result<(), String> {
    let model_kind = flag(args, "--model").unwrap_or_else(|| "cnn".into());
    let spec = flag(args, "--spec").ok_or("campaign needs --spec")?;
    let site = flag(args, "--site").unwrap_or_else(|| "value".into());
    let injections = flag(args, "--injections").and_then(|n| n.parse().ok()).unwrap_or(20);
    let jobs = jobs_flag(args)?;
    let kind = match site.as_str() {
        "value" => SiteKind::Value,
        "metadata" => SiteKind::Metadata,
        other => return Err(format!("unknown site `{other}` (value|metadata)")),
    };
    let ge = GoldenEye::parse(&spec).map_err(|e| e.to_string())?;
    if kind == SiteKind::Metadata && !ge.format().supports_metadata_injection() {
        return Err(format!("{} has no injectable metadata", ge.format().name()));
    }
    let (model, data, _) = demo_model(&model_kind, 8)?;
    let (x, y) = data.head_batch(8);
    let result = run_campaign(
        &ge,
        model.as_ref(),
        &x,
        &y,
        &CampaignConfig { injections_per_layer: injections, kind, seed: 0, jobs },
    );
    println!("{:<6} {:<18} {:>12} {:>12}", "layer", "name", "dLoss", "mismatch");
    for l in &result.layers {
        println!(
            "{:<6} {:<18} {:>12.4} {:>11.1}%",
            l.layer,
            l.name,
            l.delta_loss.mean(),
            l.mismatch.mean() * 100.0
        );
    }
    println!("\navg delta-loss across layers: {:.4}", result.avg_delta_loss());
    Ok(())
}

fn cmd_dse(args: &[String]) -> Result<(), String> {
    let model_kind = flag(args, "--model").unwrap_or_else(|| "cnn".into());
    let family = flag(args, "--family").ok_or("dse needs --family")?;
    let drop = flag(args, "--drop").and_then(|d| d.parse().ok()).unwrap_or(0.02);
    let jobs = jobs_flag(args)?;
    let family = match family.as_str() {
        "fp" => DseFamily::Fp,
        "fxp" => DseFamily::Fxp,
        "int" => DseFamily::Int,
        "bfp" => DseFamily::Bfp { block: usize::MAX },
        "afp" => DseFamily::Afp,
        other => return Err(format!("unknown family `{other}` (fp|fxp|int|bfp|afp)")),
    };
    let (model, data, baseline) = demo_model(&model_kind, 8)?;
    println!("baseline accuracy: {:.1}%, allowed drop {:.1}%", baseline * 100.0, drop * 100.0);
    let result = search(family, accuracy_eval(model.as_ref(), &data, 64, 32, jobs), baseline, drop);
    for n in &result.nodes {
        println!(
            "node {:>2}: {:<18} acc {:>5.1}%  {}",
            n.index,
            n.spec.to_string(),
            n.accuracy * 100.0,
            if n.accepted { "ok" } else { "reject" }
        );
    }
    match result.best {
        Some(best) => println!("suggested design point: {best}"),
        None => println!("no acceptable configuration at this threshold"),
    }
    Ok(())
}
