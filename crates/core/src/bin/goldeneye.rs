//! The `goldeneye` command-line tool — the paper's "set of command line
//! arguments for hyperparameter tuning" (§IV-B), exposing the simulator
//! without writing Rust:
//!
//! ```text
//! goldeneye ranges
//! goldeneye inspect bfp:e5m5:tensor
//! goldeneye quantize fp:e4m3 0.1,1.0,300
//! goldeneye evaluate --model cnn --spec int:8 [--epochs 8]
//! goldeneye campaign --model cnn --spec bfp:e5m5:tensor --site metadata --injections 20
//! goldeneye dse --model cnn --family afp [--drop 0.02]
//! goldeneye conformance --all [--report out.jsonl]
//! goldeneye validate-trace run.jsonl
//! ```
//!
//! Models are tiny synthetic-task networks trained on the spot (seconds),
//! so every subcommand is self-contained; the bench binaries cover the
//! paper-scale experiments.
//!
//! Observability flags (valid on every subcommand): `--trace-out <path>`
//! appends structured JSONL events (spans, per-trial records, the run
//! manifest); `--manifest <path>` writes the run manifest as pretty JSON;
//! `--log-level <error|warn|info|debug|trace>`, `-v` (debug), and
//! `--quiet` (warn) gate both terminal output and event verbosity.

use goldeneye::dse::{accuracy_eval_stored, search, DseFamily};
use goldeneye::{evaluate_accuracy_jobs, run_campaign, CampaignConfig, GoldenEye};
use inject::{BitSampler, SiteKind};
use models::{
    train, DeitConfig, ResNet, ResNetConfig, SyntheticDataset, TrainConfig, VisionTransformer,
};
use nn::Module;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;
use trace::{logln, outln, Level, RunManifest};

/// Observability flags shared by every subcommand, stripped from the
/// argument list before dispatch.
struct GlobalFlags {
    /// `--manifest <path>`: write the run manifest as pretty JSON.
    manifest: Option<std::path::PathBuf>,
    /// `--store <dir>`: content-addressed artifact store shared across
    /// runs (and across concurrent processes pointing at the same
    /// directory). Caches trained demo checkpoints, quantised weights,
    /// and dequantise LUTs; results stay bit-identical with or without it.
    store: Option<Arc<store::Store>>,
}

impl GlobalFlags {
    /// Extracts `--trace-out`, `--manifest`, `--log-level`, `-v`, and
    /// `--quiet` from `args` (removing them), configures the global
    /// tracer accordingly, and returns the remaining flags.
    fn extract(args: &mut Vec<String>) -> Result<GlobalFlags, String> {
        let mut take_value = |name: &str| -> Result<Option<String>, String> {
            match args.iter().position(|a| a == name) {
                None => Ok(None),
                Some(i) => {
                    if i + 1 >= args.len() {
                        return Err(format!("{name} needs a value"));
                    }
                    let v = args.remove(i + 1);
                    args.remove(i);
                    Ok(Some(v))
                }
            }
        };
        let trace_out = take_value("--trace-out")?;
        let manifest = take_value("--manifest")?;
        let store_dir = take_value("--store")?;
        let log_level = take_value("--log-level")?;
        let mut level = match log_level {
            None => Level::Info,
            Some(s) => Level::parse(&s)
                .ok_or_else(|| format!("bad --log-level `{s}` (error|warn|info|debug|trace)"))?,
        };
        if let Some(i) = args.iter().position(|a| a == "-v" || a == "--verbose") {
            args.remove(i);
            level = Level::Debug;
        }
        if let Some(i) = args.iter().position(|a| a == "-q" || a == "--quiet") {
            args.remove(i);
            level = Level::Warn;
        }
        if let Some(i) = args.iter().position(|a| a == "--progress") {
            args.remove(i);
            trace::set_status_line(true);
        }
        trace::set_level(level);
        if let Some(path) = &trace_out {
            trace::open_jsonl(std::path::Path::new(path))
                .map_err(|e| format!("cannot open --trace-out `{path}`: {e}"))?;
        }
        let store = match store_dir {
            None => None,
            Some(dir) => Some(Arc::new(
                store::Store::open(&dir)
                    .map_err(|e| format!("cannot open --store `{dir}`: {e}"))?,
            )),
        };
        Ok(GlobalFlags { manifest: manifest.map(Into::into), store })
    }

    /// Finishes a run: emits `m` on the active trace sinks and writes it
    /// to the `--manifest` path, if one was given.
    fn finish(&self, mut m: RunManifest) -> Result<(), String> {
        if let Some(store) = &self.store {
            let s = store.stats();
            m = m
                .with_extra("store_generation", store.generation())
                .with_extra("store_hits", s.hits)
                .with_extra("store_misses", s.misses)
                .with_extra("store_bytes_reused", s.bytes_reused)
                .with_extra("store_bytes_written", s.bytes_written)
                .with_extra("store_hit_rate", s.hit_rate());
        }
        m.snapshot_counters();
        m.snapshot_profile();
        m.emit();
        if let Some(path) = &self.manifest {
            m.write(path)
                .map_err(|e| format!("cannot write manifest `{}`: {e}", path.display()))?;
            logln!(Level::Info, "manifest written to {}", path.display());
        }
        Ok(())
    }
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let global = match GlobalFlags::extract(&mut args) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let result = match args.first().map(String::as_str) {
        Some("ranges") => cmd_ranges(),
        Some("inspect") => cmd_inspect(&args[1..]),
        Some("quantize") => cmd_quantize(&args[1..]),
        Some("evaluate") => cmd_evaluate(&args[1..], &global),
        Some("campaign") => cmd_campaign(&args[1..], &global),
        Some("dse") => cmd_dse(&args[1..], &global),
        Some("conformance") => cmd_conformance(&args[1..], &global),
        Some("store") => cmd_store(&args[1..], &global),
        Some("validate-trace") => cmd_validate_trace(&args[1..]),
        Some("trace") => match cmd_trace(&args[1..]) {
            Ok(clean) if !clean => {
                trace::flush();
                trace::close_jsonl();
                return ExitCode::FAILURE;
            }
            Ok(_) => Ok(()),
            Err(e) => Err(e),
        },
        Some("help") | Some("--help") | Some("-h") | None => {
            print_usage();
            Ok(())
        }
        Some(other) => Err(format!("unknown subcommand `{other}` (try `goldeneye help`)")),
    };
    trace::flush();
    trace::close_jsonl();
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn print_usage() {
    println!(
        "goldeneye — functional simulator for numerical data formats in DNN accelerators\n\n\
         USAGE:\n  goldeneye <SUBCOMMAND> [OPTIONS]\n\n\
         SUBCOMMANDS:\n\
           ranges                                  print Table I (dynamic ranges)\n\
           inspect <spec>                          describe a number format\n\
           quantize <spec> <v1,v2,...>             quantise values; show bit images\n\
           evaluate --model cnn|vit --spec <spec>  accuracy under an emulated format\n\
                    [--jobs N]\n\
           campaign --model cnn|vit --spec <spec>  per-layer delta-loss injection campaign\n\
                    [--site value|metadata] [--injections N] [--jobs N]\n\
                    [--trials-per-batch N]  trials packed per batched forward\n\
                                            (default 0 = auto-size, 1 = per-trial)\n\
                    [--early-stop CI]       stop a layer once its delta-loss 95% CI\n\
                                            half-width falls to CI\n\
                    [--sampler uniform|stratified]  bit-position sampling policy\n\
           dse --model cnn|vit --family <fam>      binary-tree format search\n\
               [--drop 0.02] [--jobs N]  fam: fp|fxp|int|bfp|afp|mx\n\
           conformance [--all | <spec>...]         bit-exact format conformance oracle\n\
                       [--report <file.jsonl>]     (exhaustive for data widths ≤ 16 bits)\n\
                       [--write-golden <dir>]      regenerate golden vectors\n\
           store ls|verify|gc --store <dir>        inspect/validate/sweep an artifact store\n\
           validate-trace <file.jsonl>             check a --trace-out file line by line\n\
           trace stats <file.jsonl>                summarize a trace: spans, throughput,\n\
                                                   slowest trials/layers, profile tree\n\
           trace diff <a> <b> [--threshold R]      compare two run manifests; exits\n\
                                                   non-zero when wall_time_s or\n\
                                                   trials_per_sec regresses past R (0.10)\n\
           trace export --folded <manifest>        profile tree as flamegraph folded stacks\n\n\
         OBSERVABILITY (any subcommand):\n\
           --trace-out <path>   append structured JSONL events (spans, trials, manifest)\n\
           --manifest <path>    write the run manifest as pretty JSON\n\
           --store <dir>        content-addressed artifact store: caches trained demo\n\
                                checkpoints, quantised weights, and dequantise LUTs\n\
                                across runs/processes (results stay bit-identical)\n\
           --progress           live status line on stderr (heartbeats go to --trace-out)\n\
           --log-level <lvl>    error|warn|info|debug|trace (default info)\n\
           -v | --verbose       shorthand for --log-level debug\n\
           -q | --quiet         shorthand for --log-level warn (suppresses result output)\n\n\
         --jobs N runs on N worker threads (0 = all cores); results are\n\
         bit-identical to --jobs 1.\n\n\
         FORMAT SPECS: fp:eXmY[:nodn] fxp:1:I:F int:B bfp:eXmY:(bN|tensor) afp:eXmY posit:N:ES\n\
                       mx:<elem>:bN (elem: fp4e2m1 fp6e2m3 fp6e3m2 fp8e4m3 fp8e5m2)\n\
                       p3109:eXmY (1+X+Y = 8) gf:N (N: 8|16|32)\n\
                       fp32 fp16 bfloat16 tf32 dlfloat16 fp8 int8 int16 posit8 posit16\n\
                       mxfp4 mxfp6 mxfp8 (block-32 shorthands)"
    );
}

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).cloned()
}

/// Parses `--jobs N` (default 1 = serial; 0 = all cores).
fn jobs_flag(args: &[String]) -> Result<usize, String> {
    match flag(args, "--jobs") {
        None => Ok(1),
        Some(v) => v.parse().map_err(|_| format!("bad --jobs value `{v}`")),
    }
}

fn cmd_ranges() -> Result<(), String> {
    print!("{}", formats::ranges::table1_text());
    Ok(())
}

fn cmd_inspect(args: &[String]) -> Result<(), String> {
    let spec = args.first().ok_or("inspect needs a format spec")?;
    let ge = GoldenEye::parse(spec).map_err(|e| e.to_string())?;
    let f = ge.format();
    let r = f.dynamic_range();
    outln!("format:          {}", f.name());
    outln!("data bits/value: {}", f.bit_width());
    outln!("abs max:         {:.4e}", r.max_abs);
    outln!("abs min (≠0):    {:.4e}", r.min_abs);
    outln!("range:           {:.2} dB", r.db());
    outln!(
        "metadata:        {}",
        if f.supports_metadata_injection() { "injectable" } else { "none" }
    );
    Ok(())
}

fn cmd_quantize(args: &[String]) -> Result<(), String> {
    let spec = args.first().ok_or("quantize needs a format spec")?;
    let values = args.get(1).ok_or("quantize needs comma-separated values")?;
    let values: Vec<f32> = values
        .split(',')
        .map(|v| v.trim().parse::<f32>().map_err(|_| format!("bad value `{v}`")))
        .collect::<Result<_, _>>()?;
    let ge = GoldenEye::parse(spec).map_err(|e| e.to_string())?;
    let f = ge.format();
    let n = values.len();
    let q = f.real_to_format_tensor(&tensor::Tensor::from_vec(values.clone(), [n]));
    outln!("{:>14} {:>14} {:>20}", "input", "quantised", "bits");
    for (i, &x) in values.iter().enumerate() {
        let v = q.values.as_slice()[i];
        let bits = f.real_to_format(v, &q.meta, i);
        outln!("{x:>14.6} {v:>14.6} {:>20}", bits.to_string());
    }
    if q.meta.word_count() > 0 {
        outln!("\nmetadata ({} word(s), {} bits each):", q.meta.word_count(), q.meta.word_width());
        for w in 0..q.meta.word_count().min(8) {
            outln!("  word {w}: {}", q.meta.word_bits(w).expect("in range"));
        }
    }
    Ok(())
}

/// Builds and trains the CLI's small demonstration model. With an
/// artifact store attached, the trained checkpoint is cached under
/// `demo:{kind}:{epochs}` — training is fully deterministic (fixed seed,
/// fixed data), so a warm run loads the bit-identical weights and skips
/// the on-the-spot training entirely.
fn demo_model(
    kind: &str,
    epochs: usize,
    store: Option<&Arc<store::Store>>,
) -> Result<(Box<dyn Module>, SyntheticDataset, f32), String> {
    let mut rng = StdRng::seed_from_u64(1);
    let model: Box<dyn Module> = match kind {
        "cnn" => Box::new(ResNet::new(ResNetConfig::tiny(8), &mut rng)),
        "vit" => Box::new(VisionTransformer::new(DeitConfig::tiny_test(16, 4), &mut rng)),
        other => return Err(format!("unknown model `{other}` (cnn|vit)")),
    };
    let data = SyntheticDataset::generate(128, 16, 4, 7);
    let ckpt_name = format!("demo:{kind}:{epochs}");
    let cached = match store {
        Some(store) => models::load_params_from_store(model.as_ref(), store, &ckpt_name)
            .map_err(|e| format!("corrupt checkpoint `{ckpt_name}` in store: {e}"))?,
        None => false,
    };
    if cached {
        logln!(Level::Info, "loaded trained {kind} from store ({ckpt_name})");
    } else {
        logln!(Level::Info, "training {kind} ({epochs} epochs on the synthetic task)...");
        let _span = trace::span!("train", epochs = epochs);
        train(
            model.as_ref(),
            &data,
            &TrainConfig { epochs, batch_size: 16, lr: 3e-3, ..Default::default() },
        );
        if let Some(store) = store {
            models::save_params_to_store(model.as_ref(), store, &ckpt_name);
        }
    }
    let baseline = models::evaluate(model.as_ref(), &data, 64, 32);
    Ok((model, data, baseline))
}

fn cmd_evaluate(args: &[String], global: &GlobalFlags) -> Result<(), String> {
    let model_kind = flag(args, "--model").unwrap_or_else(|| "cnn".into());
    let spec = flag(args, "--spec").ok_or("evaluate needs --spec")?;
    let epochs = flag(args, "--epochs").and_then(|e| e.parse().ok()).unwrap_or(8);
    let jobs = jobs_flag(args)?;
    let mut ge = GoldenEye::parse(&spec).map_err(|e| e.to_string())?;
    if let Some(store) = &global.store {
        ge = ge.with_store(store.clone());
    }
    let (model, data, baseline) = demo_model(&model_kind, epochs, global.store.as_ref())?;
    let t0 = Instant::now();
    let acc = evaluate_accuracy_jobs(&ge, model.as_ref(), &data, 64, 32, jobs);
    let wall = t0.elapsed().as_secs_f64();
    outln!("native FP32 accuracy: {:.1}%", baseline * 100.0);
    outln!("{} accuracy:     {:.1}%", ge.format().name(), acc * 100.0);
    let mut m = RunManifest::new("goldeneye evaluate")
        .with_config("model", model_kind.as_str())
        .with_config("spec", ge.format().name())
        .with_config("jobs", jobs)
        .with_extra("baseline_accuracy", baseline)
        .with_extra("accuracy", acc);
    m.wall_time_s = wall;
    global.finish(m)
}

fn cmd_campaign(args: &[String], global: &GlobalFlags) -> Result<(), String> {
    let model_kind = flag(args, "--model").unwrap_or_else(|| "cnn".into());
    let spec = flag(args, "--spec").ok_or("campaign needs --spec")?;
    let site = flag(args, "--site").unwrap_or_else(|| "value".into());
    let injections = flag(args, "--injections").and_then(|n| n.parse().ok()).unwrap_or(20);
    let jobs = jobs_flag(args)?;
    let trials_per_batch = match flag(args, "--trials-per-batch") {
        None => 0, // auto-size from the workspace pool budget
        Some(v) => v.parse().map_err(|_| format!("bad --trials-per-batch value `{v}`"))?,
    };
    let early_stop = match flag(args, "--early-stop") {
        None => None,
        Some(v) => {
            let ci: f32 = v.parse().map_err(|_| format!("bad --early-stop value `{v}`"))?;
            if ci.is_nan() || ci <= 0.0 {
                return Err(format!("--early-stop needs a positive CI half-width, got `{v}`"));
            }
            Some(ci)
        }
    };
    let sampler = match flag(args, "--sampler").as_deref() {
        None | Some("uniform") => BitSampler::Uniform,
        Some("stratified") => BitSampler::Stratified { critical_mass: 0.5 },
        Some(other) => return Err(format!("unknown sampler `{other}` (uniform|stratified)")),
    };
    let kind = match site.as_str() {
        "value" => SiteKind::Value,
        "metadata" => SiteKind::Metadata,
        other => return Err(format!("unknown site `{other}` (value|metadata)")),
    };
    let mut ge = GoldenEye::parse(&spec).map_err(|e| e.to_string())?;
    if let Some(store) = &global.store {
        ge = ge.with_store(store.clone());
    }
    if kind == SiteKind::Metadata && !ge.format().supports_metadata_injection() {
        return Err(format!("{} has no injectable metadata", ge.format().name()));
    }
    let (model, data, _) = demo_model(&model_kind, 8, global.store.as_ref())?;
    let (x, y) = data.head_batch(8);
    let cfg = CampaignConfig {
        injections_per_layer: injections,
        kind,
        seed: 0,
        jobs,
        trials_per_batch,
        early_stop,
        sampler,
    };
    let t0 = Instant::now();
    let result = run_campaign(&ge, model.as_ref(), &x, &y, &cfg);
    let wall = t0.elapsed().as_secs_f64();
    outln!("{:<6} {:<18} {:>12} {:>12}", "layer", "name", "dLoss", "mismatch");
    for l in &result.layers {
        outln!(
            "{:<6} {:<18} {:>12.4} {:>11.1}%",
            l.layer,
            l.name,
            l.delta_loss_mean(),
            l.mismatch.mean() * 100.0
        );
    }
    outln!("\navg delta-loss across layers: {:.4}", result.avg_delta_loss());
    if result.early_stop_savings() > 0.0 {
        outln!(
            "early stopping skipped {} of {} planned trials ({:.0}%)",
            result.planned_trials - result.trials.len(),
            result.planned_trials,
            result.early_stop_savings() * 100.0
        );
    }
    let mut m = result.to_manifest("goldeneye campaign", &cfg, wall);
    m.config.push(("model".to_string(), trace::Json::from(model_kind.as_str())));
    global.finish(m)
}

fn cmd_dse(args: &[String], global: &GlobalFlags) -> Result<(), String> {
    let model_kind = flag(args, "--model").unwrap_or_else(|| "cnn".into());
    let family = flag(args, "--family").ok_or("dse needs --family")?;
    let drop = flag(args, "--drop").and_then(|d| d.parse().ok()).unwrap_or(0.02);
    let jobs = jobs_flag(args)?;
    let family = match family.as_str() {
        "fp" => DseFamily::Fp,
        "fxp" => DseFamily::Fxp,
        "int" => DseFamily::Int,
        "bfp" => DseFamily::Bfp { block: usize::MAX },
        "afp" => DseFamily::Afp,
        "mx" => DseFamily::Mx { block: 32 },
        other => return Err(format!("unknown family `{other}` (fp|fxp|int|bfp|afp|mx)")),
    };
    let (model, data, baseline) = demo_model(&model_kind, 8, global.store.as_ref())?;
    outln!("baseline accuracy: {:.1}%, allowed drop {:.1}%", baseline * 100.0, drop * 100.0);
    let t0 = Instant::now();
    let result = search(
        family,
        accuracy_eval_stored(model.as_ref(), &data, 64, 32, jobs, global.store.clone()),
        baseline,
        drop,
    );
    let wall = t0.elapsed().as_secs_f64();
    for n in &result.nodes {
        outln!(
            "node {:>2}: {:<18} acc {:>5.1}%  {}",
            n.index,
            n.spec.to_string(),
            n.accuracy * 100.0,
            if n.accepted { "ok" } else { "reject" }
        );
    }
    match &result.best {
        Some(best) => outln!("suggested design point: {best}"),
        None => outln!("no acceptable configuration at this threshold"),
    }
    let mut m = result.to_manifest("goldeneye dse", wall);
    m.config.push(("model".to_string(), trace::Json::from(model_kind.as_str())));
    m.config.push(("family".to_string(), trace::Json::from(format!("{family:?}"))));
    global.finish(m)
}

fn cmd_conformance(args: &[String], global: &GlobalFlags) -> Result<(), String> {
    let report_path = flag(args, "--report");
    let write_golden = flag(args, "--write-golden");
    let all = args.iter().any(|a| a == "--all");
    let specs: Vec<formats::FormatSpec> = {
        let named: Vec<&String> = args
            .iter()
            .enumerate()
            .filter(|&(i, a)| {
                !a.starts_with("--")
                    && args
                        .get(i.wrapping_sub(1))
                        .is_none_or(|p| p != "--report" && p != "--write-golden")
            })
            .map(|(_, a)| a)
            .collect();
        if all || (named.is_empty() && write_golden.is_none()) {
            conformance::standard_zoo()
        } else {
            named
                .iter()
                .map(|s| s.parse().map_err(|e| format!("bad spec `{s}`: {e}")))
                .collect::<Result<_, String>>()?
        }
    };

    if let Some(dir) = &write_golden {
        let dir = std::path::Path::new(dir);
        std::fs::create_dir_all(dir)
            .map_err(|e| format!("cannot create `{}`: {e}", dir.display()))?;
        for spec in conformance::vectors::golden_specs() {
            let path = dir.join(conformance::vectors::golden_file_name(&spec));
            std::fs::write(&path, conformance::vectors::generate(&spec))
                .map_err(|e| format!("cannot write `{}`: {e}", path.display()))?;
            outln!("wrote {}", path.display());
        }
        return Ok(());
    }

    let t0 = Instant::now();
    let mut reports = Vec::with_capacity(specs.len());
    for spec in &specs {
        let r = conformance::check_format(spec);
        outln!("{}", conformance::report::summarize(&r));
        for v in &r.violations {
            outln!("  {v}");
        }
        reports.push(r);
    }

    // Golden-vector diffs for the specs that have checked-in vectors.
    let mut golden_failures = 0usize;
    for spec in conformance::vectors::golden_specs() {
        if !specs.contains(&spec) {
            continue;
        }
        match conformance::vectors::diff(&spec) {
            Ok(()) => outln!("golden {:<18} ok", spec.to_string()),
            Err(e) => {
                golden_failures += 1;
                outln!("golden {:<18} MISMATCH\n  {e}", spec.to_string());
            }
        }
    }
    let wall = t0.elapsed().as_secs_f64();

    if let Some(path) = &report_path {
        std::fs::write(path, conformance::report::to_jsonl(&reports))
            .map_err(|e| format!("cannot write `{path}`: {e}"))?;
        logln!(Level::Info, "report written to {path}");
    }

    let checks: u64 = reports.iter().map(|r| r.checks).sum();
    let codes: u64 = reports.iter().map(|r| r.codes_checked).sum();
    let violations: usize = reports.iter().map(|r| r.violations.len()).sum();
    outln!(
        "\n{} format(s), {} code(s) enumerated, {} check(s), {} violation(s) in {:.1}s",
        reports.len(),
        codes,
        checks,
        violations,
        wall
    );
    let mut m = RunManifest::new("goldeneye conformance")
        .with_config("formats", reports.len() as u64)
        .with_extra("codes_checked", codes as f64)
        .with_extra("checks", checks as f64)
        .with_extra("violations", violations as f64);
    m.wall_time_s = wall;
    global.finish(m)?;
    if violations > 0 || golden_failures > 0 {
        return Err(format!(
            "{violations} law violation(s), {golden_failures} golden mismatch(es)"
        ));
    }
    Ok(())
}

/// `goldeneye store <ls|verify|gc>` — artifact-store maintenance. All
/// three act on the directory given by the global `--store` flag.
fn cmd_store(args: &[String], global: &GlobalFlags) -> Result<(), String> {
    let action = args.first().map(String::as_str);
    let store = global
        .store
        .as_ref()
        .ok_or("store subcommands need --store <dir> (the store to act on)")?;
    match action {
        Some("ls") => {
            let entries = store.ls().map_err(|e| format!("cannot list store: {e}"))?;
            outln!("{:<10} {:<28} {:>18} {:>12}", "kind", "spec", "content", "bytes");
            let mut total = 0u64;
            for e in &entries {
                outln!(
                    "{:<10} {:<28} {:>18} {:>12}",
                    e.kind.as_str(),
                    e.spec,
                    format!("{:016x}", e.content),
                    e.payload_bytes
                );
                total += e.payload_bytes;
            }
            outln!(
                "\n{} artifact(s), {} payload byte(s), generation {}",
                entries.len(),
                total,
                store.generation()
            );
            Ok(())
        }
        Some("verify") => {
            let report = store.verify().map_err(|e| format!("cannot verify store: {e}"))?;
            for (file, reason) in &report.corrupt {
                outln!("CORRUPT {file}: {reason}");
            }
            outln!("{} ok, {} corrupt", report.ok, report.corrupt.len());
            if report.is_clean() {
                Ok(())
            } else {
                Err(format!(
                    "{} corrupt artifact(s) (run `store gc` to sweep)",
                    report.corrupt.len()
                ))
            }
        }
        Some("gc") => {
            let report = store.gc().map_err(|e| format!("cannot gc store: {e}"))?;
            outln!(
                "kept {}, removed {} corrupt + {} temp file(s); generation now {}",
                report.kept,
                report.removed_corrupt,
                report.removed_tmp,
                report.generation
            );
            Ok(())
        }
        _ => Err("store needs an action: ls | verify | gc".into()),
    }
}

/// `goldeneye trace <stats|diff|export>` — the offline trace analysis
/// toolchain (`goldeneye::tracetool`). Returns `Ok(false)` when a diff
/// found a regression: the run itself succeeded but the process must
/// exit non-zero for CI.
fn cmd_trace(args: &[String]) -> Result<bool, String> {
    use goldeneye::tracetool;
    match args.first().map(String::as_str) {
        Some("stats") => {
            let path = args.get(1).ok_or("trace stats needs a JSONL file path")?;
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
            let report = tracetool::stats_report(path, &text)?;
            outln!("{}", report.trim_end());
            Ok(true)
        }
        Some("diff") => {
            let mut rest: Vec<String> = args[1..].to_vec();
            let threshold = match rest.iter().position(|a| a == "--threshold") {
                None => 0.10,
                Some(i) => {
                    if i + 1 >= rest.len() {
                        return Err("--threshold needs a value (e.g. 0.10)".into());
                    }
                    let v = rest.remove(i + 1);
                    rest.remove(i);
                    let t: f64 =
                        v.parse().map_err(|_| format!("bad --threshold value `{v}`"))?;
                    if !t.is_finite() || t < 0.0 {
                        return Err(format!("--threshold must be a non-negative ratio, got `{v}`"));
                    }
                    t
                }
            };
            let [a, b] = rest.as_slice() else {
                return Err("trace diff needs two manifest paths (and optional --threshold R)".into());
            };
            let ma = tracetool::load_manifest(a)?;
            let mb = tracetool::load_manifest(b)?;
            let report = tracetool::diff_manifests(&ma, &mb, threshold);
            outln!("{}", report.text.trim_end());
            Ok(!report.has_regression())
        }
        Some("export") => {
            let folded = args.iter().any(|a| a == "--folded");
            let path = args
                .iter()
                .skip(1)
                .find(|a| !a.starts_with("--"))
                .ok_or("trace export needs a manifest path")?;
            if !folded {
                return Err("trace export supports --folded (flamegraph folded stacks)".into());
            }
            let m = tracetool::load_manifest(path)?;
            print!("{}", tracetool::export_folded(&m)?);
            Ok(true)
        }
        Some(other) => Err(format!("unknown trace subcommand `{other}` (stats|diff|export)")),
        None => Err("trace needs a subcommand: stats <file.jsonl> | diff <a> <b> [--threshold R] | export --folded <manifest>".into()),
    }
}

fn cmd_validate_trace(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("validate-trace needs a JSONL file path")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    let summary = trace::validate_trace(&text).map_err(|e| format!("{path}: {e}"))?;
    outln!(
        "{path}: ok — {} line(s): {} trial(s), {} span(s), {} progress, {} manifest(s), {} log(s)",
        summary.lines,
        summary.trials,
        summary.spans,
        summary.progress,
        summary.manifests,
        summary.logs
    );
    Ok(())
}
