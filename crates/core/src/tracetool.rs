//! The `goldeneye trace` analysis toolchain: offline inspection of
//! `--trace-out` JSONL files and run manifests.
//!
//! Three tools, all pure functions over parsed traces so the test suite
//! drives them without a subprocess:
//!
//! * [`stats_report`] — what a trace contains: per-kind event counts, the
//!   span profile (by name and, when a manifest is embedded, the full
//!   path tree), the progress-heartbeat throughput timeline, and the
//!   slowest trials / layers.
//! * [`diff_manifests`] — metric and profile deltas between two run
//!   manifests, with a relative-threshold regression rule on
//!   `wall_time_s` and `trials_per_sec` (CI fails a PR on a non-empty
//!   [`DiffReport::regressions`]).
//! * [`export_folded`] — the manifest's profile tree in the flamegraph
//!   *folded stack* format (`path;to;span <exclusive_ns>` per line).

use std::collections::HashMap;
use std::fmt::Write as _;

use trace::{profile_folded, Json, ProfileNode, RunManifest};

/// How many rows the per-section leaderboards in [`stats_report`] and
/// [`diff_manifests`] print.
const TOP_N: usize = 10;

/// Renders `ns` as a human-readable duration.
fn fmt_ns(ns: u64) -> String {
    let s = ns as f64 / 1e9;
    if s >= 1.0 {
        format!("{s:.3}s")
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Signed relative change `a → b` rendered as `+12.3%` (or `n/a` when the
/// baseline is zero).
fn fmt_rel(a: f64, b: f64) -> String {
    if a == 0.0 {
        if b == 0.0 {
            "+0.0%".to_string()
        } else {
            "n/a".to_string()
        }
    } else {
        format!("{:+.1}%", (b - a) / a * 100.0)
    }
}

// ---------------------------------------------------------------------------
// trace stats
// ---------------------------------------------------------------------------

/// Aggregate of all spans sharing one name in a JSONL trace.
#[derive(Debug, Default, Clone)]
struct SpanAgg {
    count: u64,
    total_ns: u64,
    max_ns: u64,
}

/// Validates a JSONL trace and renders the full `trace stats` report.
///
/// `source` is only used to label the report (a path, usually).
pub fn stats_report(source: &str, jsonl: &str) -> Result<String, String> {
    let summary = trace::validate_trace(jsonl)?;
    let mut out = String::new();
    let _ = writeln!(out, "trace stats: {source}");
    let _ = writeln!(
        out,
        "  {} line(s): {} trial(s), {} span(s), {} progress, {} log(s), {} manifest(s)",
        summary.lines,
        summary.trials,
        summary.spans,
        summary.progress,
        summary.logs,
        summary.manifests
    );

    // One decode pass; validate_trace has already guaranteed shape.
    let mut spans: HashMap<String, SpanAgg> = HashMap::new();
    let mut trial_spans: Vec<(u64, u64, u64)> = Vec::new(); // (dur, layer, trial)
    let mut layer_ns: HashMap<u64, (u64, u64)> = HashMap::new(); // layer -> (ns, count)
    let mut heartbeats: Vec<(u64, String, u64, u64)> = Vec::new(); // (ts, phase, done, planned)
    let mut manifests: Vec<RunManifest> = Vec::new();
    for line in jsonl.lines().map(str::trim).filter(|l| !l.is_empty()) {
        let v = trace::parse(line).map_err(|e| e.to_string())?;
        match v.get("type").and_then(Json::as_str) {
            Some("span") => {
                let name = v.get("name").and_then(Json::as_str).unwrap_or("?");
                let dur = v.get("dur_ns").and_then(Json::as_u64).unwrap_or(0);
                let agg = spans.entry(name.to_string()).or_default();
                agg.count += 1;
                agg.total_ns += dur;
                agg.max_ns = agg.max_ns.max(dur);
                if name == "trial" {
                    let layer = v.get("layer").and_then(Json::as_u64).unwrap_or(0);
                    let trial = v.get("trial").and_then(Json::as_u64).unwrap_or(0);
                    trial_spans.push((dur, layer, trial));
                    let slot = layer_ns.entry(layer).or_default();
                    slot.0 += dur;
                    slot.1 += 1;
                }
            }
            Some("progress") => {
                heartbeats.push((
                    v.get("ts_ns").and_then(Json::as_u64).unwrap_or(0),
                    v.get("phase").and_then(Json::as_str).unwrap_or("?").to_string(),
                    v.get("done").and_then(Json::as_u64).unwrap_or(0),
                    v.get("planned").and_then(Json::as_u64).unwrap_or(0),
                ));
            }
            Some("manifest") => {
                let inner = v.get("manifest").unwrap_or(&v);
                manifests.push(RunManifest::from_json(inner)?);
            }
            _ => {}
        }
    }

    if !spans.is_empty() {
        let mut rows: Vec<(&String, &SpanAgg)> = spans.iter().collect();
        rows.sort_by(|a, b| b.1.total_ns.cmp(&a.1.total_ns).then(a.0.cmp(b.0)));
        let _ = writeln!(out, "\n  spans (by total time):");
        let _ = writeln!(
            out,
            "    {:<20} {:>8} {:>12} {:>12} {:>12}",
            "name", "count", "total", "mean", "max"
        );
        for (name, agg) in rows.iter().take(TOP_N) {
            let _ = writeln!(
                out,
                "    {:<20} {:>8} {:>12} {:>12} {:>12}",
                name,
                agg.count,
                fmt_ns(agg.total_ns),
                fmt_ns(agg.total_ns / agg.count.max(1)),
                fmt_ns(agg.max_ns)
            );
        }
    }

    if !trial_spans.is_empty() {
        trial_spans.sort_by(|a, b| b.0.cmp(&a.0).then((a.1, a.2).cmp(&(b.1, b.2))));
        let _ = writeln!(out, "\n  slowest trials:");
        for (dur, layer, trial) in trial_spans.iter().take(TOP_N.min(5)) {
            let _ = writeln!(out, "    layer {layer:>3} trial {trial:>4}  {}", fmt_ns(*dur));
        }
        let mut layers: Vec<(u64, (u64, u64))> = layer_ns.into_iter().collect();
        layers.sort_by(|a, b| b.1 .0.cmp(&a.1 .0).then(a.0.cmp(&b.0)));
        let _ = writeln!(out, "\n  slowest layers (summed trial spans):");
        for (layer, (ns, count)) in layers.iter().take(TOP_N.min(5)) {
            let _ = writeln!(
                out,
                "    layer {layer:>3}  {:>12} over {count} trial(s)  ({} mean)",
                fmt_ns(*ns),
                fmt_ns(ns / count.max(&1))
            );
        }
    }

    if heartbeats.len() > 1 {
        let _ = writeln!(out, "\n  throughput timeline (from progress heartbeats):");
        let t0 = heartbeats[0].0;
        let mut prev: Option<(u64, u64)> = None; // (ts, done)
        for (ts, phase, done, planned) in &heartbeats {
            let elapsed = ts.saturating_sub(t0) as f64 / 1e9;
            let rate = match prev {
                Some((pts, pdone)) if *ts > pts && *done >= pdone => {
                    format!("{:>10.1}/s", (done - pdone) as f64 / ((ts - pts) as f64 / 1e9))
                }
                _ => format!("{:>12}", "-"),
            };
            let _ =
                writeln!(out, "    +{elapsed:>8.3}s  {phase:<16} {done:>8}/{planned:<8} {rate}");
            prev = Some((*ts, *done));
        }
    } else if let Some((_, phase, done, planned)) = heartbeats.first() {
        let _ = writeln!(out, "\n  progress: {phase} {done}/{planned} (single heartbeat)");
    }

    for m in &manifests {
        let _ =
            writeln!(out, "\n  manifest: {} ({}), wall {:.3}s", m.tool, m.version, m.wall_time_s);
        if !m.profile.is_empty() {
            let _ = writeln!(out, "  profile (inclusive time per span path):");
            render_profile(&mut out, &m.profile, "    ", m.wall_time_s);
        }
    }
    Ok(out)
}

/// Renders a profile tree with inclusive/exclusive times, indented two
/// spaces per level; `wall_s > 0` adds a percent-of-wall column.
fn render_profile(out: &mut String, roots: &[ProfileNode], indent: &str, wall_s: f64) {
    for node in roots {
        let pct = if wall_s > 0.0 {
            format!("  ({:.1}% of wall)", node.inclusive_ns as f64 / 1e9 / wall_s * 100.0)
        } else {
            String::new()
        };
        let _ = writeln!(
            out,
            "{indent}{:<24} x{:<6} incl {:>12}  excl {:>12}{pct}",
            node.name,
            node.count,
            fmt_ns(node.inclusive_ns),
            fmt_ns(node.exclusive_ns)
        );
        let deeper = format!("{indent}  ");
        render_profile(out, &node.children, &deeper, 0.0);
    }
}

// ---------------------------------------------------------------------------
// trace diff
// ---------------------------------------------------------------------------

/// The outcome of [`diff_manifests`]: a rendered report plus the list of
/// threshold-crossing regressions (empty = pass; CI keys its exit code
/// off [`DiffReport::has_regression`]).
#[derive(Debug, Clone)]
pub struct DiffReport {
    /// The human-readable diff, one section per compared dimension.
    pub text: String,
    /// One line per regression: a headline metric moved the wrong way by
    /// more than the threshold.
    pub regressions: Vec<String>,
}

impl DiffReport {
    /// Whether any headline metric regressed beyond the threshold.
    pub fn has_regression(&self) -> bool {
        !self.regressions.is_empty()
    }
}

/// Numeric extras worth diffing, in display order. The first two are
/// *headline* metrics: moving past the threshold in the bad direction
/// (slower / fewer trials per second) is a regression.
const HEADLINE: [(&str, bool); 2] = [
    // (key, higher_is_better)
    ("wall_time_s", false),
    ("trials_per_sec", true),
];

/// Looks up a numeric field by key in a manifest's extras.
fn extra_num(m: &RunManifest, key: &str) -> Option<f64> {
    m.extra.iter().find(|(k, _)| k == key).and_then(|(_, v)| v.as_f64())
}

/// Flattens a profile tree into `path -> inclusive_ns` (folded-stack path
/// keys, `;`-joined).
fn flatten_profile(roots: &[ProfileNode], prefix: &str, out: &mut Vec<(String, u64)>) {
    for node in roots {
        let path =
            if prefix.is_empty() { node.name.clone() } else { format!("{prefix};{}", node.name) };
        out.push((path.clone(), node.inclusive_ns));
        flatten_profile(&node.children, &path, out);
    }
}

/// Compares two run manifests: headline metrics (with the regression
/// rule), shared numeric extras, counters, and the profile tree.
///
/// `threshold` is the allowed relative change of a headline metric in
/// its bad direction (e.g. `0.10` = 10% slower fails).
pub fn diff_manifests(a: &RunManifest, b: &RunManifest, threshold: f64) -> DiffReport {
    let mut text = String::new();
    let mut regressions = Vec::new();
    let _ = writeln!(
        text,
        "trace diff: {} vs {} (threshold {:.1}%)",
        a.tool,
        b.tool,
        threshold * 100.0
    );

    // Headline metrics drive the exit code. wall_time_s lives on the
    // struct; the rest are numeric extras.
    let mut headline_row = |key: &str, higher_is_better: bool, va: Option<f64>, vb: Option<f64>| {
        let (va, vb) = match (va, vb) {
            (Some(x), Some(y)) => (x, y),
            _ => return,
        };
        let bad = if va > 0.0 {
            if higher_is_better {
                (va - vb) / va > threshold
            } else {
                (vb - va) / va > threshold
            }
        } else {
            false
        };
        let marker = if bad { "  ** REGRESSION **" } else { "" };
        let _ = writeln!(text, "  {key:<20} {va:>12.4} -> {vb:>12.4}  {}{marker}", fmt_rel(va, vb));
        if bad {
            regressions.push(format!("{key}: {va:.4} -> {vb:.4} ({})", fmt_rel(va, vb)));
        }
    };
    for (key, higher_is_better) in HEADLINE {
        let (va, vb) = if key == "wall_time_s" {
            (Some(a.wall_time_s), Some(b.wall_time_s))
        } else {
            (extra_num(a, key), extra_num(b, key))
        };
        headline_row(key, higher_is_better, va, vb);
    }

    // Informational numeric extras shared by both manifests.
    let mut shown = false;
    for (key, va) in &a.extra {
        if HEADLINE.iter().any(|(h, _)| h == key) {
            continue;
        }
        let (va, vb) = match (va.as_f64(), extra_num(b, key)) {
            (Some(x), Some(y)) => (x, y),
            _ => continue,
        };
        if !shown {
            let _ = writeln!(text, "  metrics:");
            shown = true;
        }
        let _ = writeln!(text, "    {key:<20} {va:>12.4} -> {vb:>12.4}  {}", fmt_rel(va, vb));
    }

    // Counters: shared keys whose counts changed, largest relative move
    // first.
    let counters_b: HashMap<&str, f64> = b
        .counters
        .iter()
        .filter_map(|(k, v)| {
            v.get("count").or(Some(v)).and_then(Json::as_f64).map(|n| (k.as_str(), n))
        })
        .collect();
    let mut counter_rows: Vec<(String, f64, f64)> = a
        .counters
        .iter()
        .filter_map(|(k, v)| {
            let va = v.get("count").or(Some(v)).and_then(Json::as_f64)?;
            let vb = *counters_b.get(k.as_str())?;
            (va != vb).then(|| (k.clone(), va, vb))
        })
        .collect();
    counter_rows.sort_by(|x, y| {
        let rx = if x.1 != 0.0 { ((x.2 - x.1) / x.1).abs() } else { f64::INFINITY };
        let ry = if y.1 != 0.0 { ((y.2 - y.1) / y.1).abs() } else { f64::INFINITY };
        ry.partial_cmp(&rx).unwrap_or(std::cmp::Ordering::Equal).then(x.0.cmp(&y.0))
    });
    if !counter_rows.is_empty() {
        let _ = writeln!(text, "  counters (changed):");
        for (k, va, vb) in counter_rows.iter().take(TOP_N) {
            let _ = writeln!(text, "    {k:<36} {va:>12} -> {vb:>12}  {}", fmt_rel(*va, *vb));
        }
    }

    // Profile: inclusive-time deltas on shared span paths.
    let (mut fa, mut fb) = (Vec::new(), Vec::new());
    flatten_profile(&a.profile, "", &mut fa);
    flatten_profile(&b.profile, "", &mut fb);
    let fb: HashMap<String, u64> = fb.into_iter().collect();
    let mut prof_rows: Vec<(String, u64, u64)> =
        fa.into_iter().filter_map(|(path, na)| fb.get(&path).map(|&nb| (path, na, nb))).collect();
    prof_rows.sort_by(|x, y| {
        let dx = x.2.abs_diff(x.1);
        let dy = y.2.abs_diff(y.1);
        dy.cmp(&dx).then(x.0.cmp(&y.0))
    });
    if !prof_rows.is_empty() {
        let _ = writeln!(text, "  profile (inclusive ns, shared paths):");
        for (path, na, nb) in prof_rows.iter().take(TOP_N) {
            let _ = writeln!(
                text,
                "    {path:<36} {:>12} -> {:>12}  {}",
                fmt_ns(*na),
                fmt_ns(*nb),
                fmt_rel(*na as f64, *nb as f64)
            );
        }
    }

    if regressions.is_empty() {
        let _ = writeln!(text, "  result: ok (no headline metric moved past the threshold)");
    } else {
        let _ = writeln!(text, "  result: {} regression(s)", regressions.len());
    }
    DiffReport { text, regressions }
}

// ---------------------------------------------------------------------------
// trace export
// ---------------------------------------------------------------------------

/// The manifest's profile tree as flamegraph folded stacks (one
/// `path;to;span <exclusive_ns>` line per node with self time).
///
/// Returns an error when the manifest carries no profile (nothing to
/// export is almost always a pipeline mistake worth failing loudly).
pub fn export_folded(m: &RunManifest) -> Result<String, String> {
    if m.profile.is_empty() {
        return Err(format!(
            "manifest for `{}` has no profile tree (was it written by an older build?)",
            m.tool
        ));
    }
    Ok(profile_folded(&m.profile))
}

/// Loads a run manifest from a file: either a plain manifest JSON (the
/// `--manifest` artifact) or a JSONL trace whose last manifest event is
/// used (the `--trace-out` artifact).
pub fn load_manifest(path: &str) -> Result<RunManifest, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    // A pretty-printed manifest parses as one JSON document.
    if let Ok(v) = trace::parse(&text) {
        let inner = v.get("manifest").cloned().unwrap_or(v);
        return RunManifest::from_json(&inner).map_err(|e| format!("{path}: {e}"));
    }
    // Otherwise treat it as JSONL and take the last manifest event.
    let mut last = None;
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let v = trace::parse(line).map_err(|e| format!("{path}: line {}: {e}", i + 1))?;
        if v.get("type").and_then(Json::as_str) == Some("manifest") {
            let inner = v.get("manifest").cloned().unwrap_or(v);
            last = Some(RunManifest::from_json(&inner).map_err(|e| format!("{path}: {e}"))?);
        }
    }
    last.ok_or_else(|| format!("{path}: no manifest found (plain JSON or JSONL event)"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use trace::TrialRecord;

    fn manifest(wall: f64, tps: f64) -> RunManifest {
        let mut m = RunManifest::new("goldeneye campaign")
            .with_config("seed", 0u64)
            .with_extra("avg_delta_loss", 0.25)
            .with_extra("trials_per_sec", tps);
        m.wall_time_s = wall;
        m.counters = vec![("campaign.trials".into(), Json::obj([("count", Json::from(100u64))]))];
        m.profile = vec![ProfileNode {
            name: "campaign".into(),
            count: 1,
            inclusive_ns: (wall * 1e9) as u64,
            exclusive_ns: 1000,
            children: vec![ProfileNode {
                name: "trial".into(),
                count: 100,
                inclusive_ns: (wall * 0.9e9) as u64,
                exclusive_ns: (wall * 0.9e9) as u64,
                children: Vec::new(),
            }],
        }];
        m
    }

    #[test]
    fn diff_identical_manifests_is_clean() {
        let m = manifest(2.0, 50.0);
        let report = diff_manifests(&m, &m, 0.10);
        assert!(!report.has_regression(), "{}", report.text);
        assert!(report.text.contains("wall_time_s"));
        assert!(report.text.contains("result: ok"));
    }

    #[test]
    fn diff_flags_wall_time_regression() {
        let a = manifest(2.0, 50.0);
        let b = manifest(3.0, 50.0); // 50% slower
        let report = diff_manifests(&a, &b, 0.10);
        assert!(report.has_regression(), "{}", report.text);
        assert!(report.regressions[0].contains("wall_time_s"), "{:?}", report.regressions);
        assert!(report.text.contains("** REGRESSION **"));
        // The other direction (faster) is not a regression.
        assert!(!diff_manifests(&b, &a, 0.10).has_regression());
    }

    #[test]
    fn diff_flags_throughput_regression() {
        let a = manifest(2.0, 50.0);
        let b = manifest(2.0, 30.0); // 40% fewer trials/sec
        let report = diff_manifests(&a, &b, 0.10);
        assert!(report.has_regression());
        assert!(report.regressions.iter().any(|r| r.contains("trials_per_sec")));
        // Within threshold: 5% slower passes at 10%.
        let c = manifest(2.1, 48.0);
        assert!(!diff_manifests(&a, &c, 0.10).has_regression());
    }

    #[test]
    fn diff_reports_profile_and_counter_deltas() {
        let a = manifest(2.0, 50.0);
        let mut b = manifest(2.0, 50.0);
        b.counters = vec![("campaign.trials".into(), Json::obj([("count", Json::from(200u64))]))];
        let report = diff_manifests(&a, &b, 0.10);
        assert!(report.text.contains("campaign.trials"), "{}", report.text);
        assert!(report.text.contains("campaign;trial"), "{}", report.text);
    }

    #[test]
    fn export_folded_round_trips_profile() {
        let m = manifest(1.0, 100.0);
        let folded = export_folded(&m).unwrap();
        assert!(folded.contains("campaign 1000\n"), "{folded}");
        assert!(folded.contains("campaign;trial"), "{folded}");
        let empty = RunManifest::new("bare");
        assert!(export_folded(&empty).is_err());
    }

    #[test]
    fn stats_report_covers_spans_progress_and_manifest() {
        let mut m = manifest(2.0, 50.0);
        m.snapshot_counters();
        let trial = TrialRecord {
            layer: 1,
            layer_name: "conv".into(),
            trial: 0,
            site: "value".into(),
            element: Some(3),
            bit: Some(4),
            delta_loss: Some(0.5),
            mismatch: Some(0.1),
            worker: 0,
        };
        let jsonl = format!(
            "{}\n{}\n{}\n{}\n{}\n{}\n",
            r#"{"ts_ns":1000,"level":"debug","type":"span","name":"trial","layer":1,"trial":0,"dur_ns":4000}"#,
            r#"{"ts_ns":2000,"level":"debug","type":"span","name":"trial","layer":2,"trial":1,"dur_ns":9000}"#,
            r#"{"ts_ns":3000,"level":"debug","type":"span","name":"campaign","dur_ns":20000}"#,
            r#"{"ts_ns":1000000,"level":"info","type":"progress","phase":"campaign","done":8,"planned":16}"#,
            r#"{"ts_ns":2000000,"level":"info","type":"progress","phase":"campaign","done":16,"planned":16}"#,
            trial.to_json().to_compact(),
        );
        let jsonl = format!("{jsonl}{}\n", m.to_json().to_compact());
        let report = stats_report("test.jsonl", &jsonl).unwrap();
        assert!(report.contains("2 span(s)") || report.contains("3 span(s)"), "{report}");
        assert!(report.contains("slowest trials"), "{report}");
        assert!(report.contains("layer   2 trial    1"), "{report}");
        assert!(report.contains("throughput timeline"), "{report}");
        assert!(report.contains("goldeneye campaign"), "{report}");
        assert!(report.contains("% of wall"), "{report}");
    }

    #[test]
    fn stats_report_rejects_malformed_traces() {
        assert!(stats_report("x", "not json\n").is_err());
        assert!(stats_report("x", "{\"type\":\"wormhole\"}\n").is_err());
    }
}
