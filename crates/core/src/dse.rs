//! Use case B (§IV-B): design-space exploration — the paper's approximate,
//! accuracy-preserving recursive binary-tree heuristic for number-format
//! selection.
//!
//! Phase 1 binary-searches the total bit width (4..=32) for the shortest
//! width whose accuracy stays within the threshold of baseline; phase 2
//! binary-searches the radix (mantissa/fraction/exponent split) at that
//! width. Both traversals go *left* (more aggressive) while accuracy holds
//! and *right* (more conservative) when it drops, exactly the tree walk of
//! the paper's Figure 5; the whole search visits at most 16 nodes.

use formats::{FormatSpec, MxElem};

/// Builds the standard accuracy-evaluation closure for [`search`]:
/// each candidate format is scored with
/// [`evaluate_accuracy_jobs`](crate::evaluate_accuracy_jobs) over the
/// first `k` samples of `data`, spreading evaluation batches over `jobs`
/// worker threads (`0` = all cores, `1` = serial).
///
/// The DSE tree walk itself is inherently sequential — each node's
/// accept/reject decides the next candidate — so parallelism lives
/// inside each node's evaluation.
pub fn accuracy_eval<'a>(
    model: &'a dyn nn::Module,
    data: &'a models::SyntheticDataset,
    k: usize,
    batch_size: usize,
    jobs: usize,
) -> impl FnMut(&FormatSpec) -> f32 + 'a {
    accuracy_eval_stored(model, data, k, batch_size, jobs, None)
}

/// [`accuracy_eval`] backed by an artifact store: every candidate's
/// offline weight conversion goes through `store`, so tree nodes that
/// revisit a `(weights × format)` pair — and whole repeated searches —
/// reuse the cached conversion instead of recomputing it. Accuracies are
/// bit-identical to the store-less evaluator.
pub fn accuracy_eval_stored<'a>(
    model: &'a dyn nn::Module,
    data: &'a models::SyntheticDataset,
    k: usize,
    batch_size: usize,
    jobs: usize,
    store: Option<std::sync::Arc<store::Store>>,
) -> impl FnMut(&FormatSpec) -> f32 + 'a {
    move |spec| {
        let mut ge = crate::GoldenEye::new(spec.build());
        if let Some(store) = &store {
            ge = ge.with_store(store.clone());
        }
        crate::evaluate_accuracy_jobs(&ge, model, data, k, batch_size, jobs)
    }
}

/// The format family being explored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DseFamily {
    /// Floating point (`fp:eXmY`).
    Fp,
    /// Fixed point (`fxp:1:I:F`).
    Fxp,
    /// Integer quantisation (`int:B`).
    Int,
    /// Block floating point with the given block size.
    Bfp {
        /// Elements per shared exponent.
        block: usize,
    },
    /// AdaptivFloat.
    Afp,
    /// OCP Microscaling with the given block size: the width phase walks
    /// the MXFP8 → MXFP6 → MXFP4 element ladder.
    Mx {
        /// Elements per shared E8M0 scale.
        block: usize,
    },
}

impl DseFamily {
    /// The default format spec the heuristic uses at total width `w`
    /// during the bit-width phase.
    fn spec_for_width(&self, w: u32) -> FormatSpec {
        match *self {
            DseFamily::Fp => {
                let e = (w / 4).clamp(2, 8);
                FormatSpec::Fp { exp: e, man: (w - 1 - e).max(1), denormals: true }
            }
            DseFamily::Fxp => {
                let i = (w / 2).max(1);
                FormatSpec::Fxp { int: i, frac: (w - 1 - i).max(1) }
            }
            DseFamily::Int => FormatSpec::Int { bits: w.max(2) },
            DseFamily::Bfp { block } => {
                FormatSpec::Bfp { exp: 8, man: (w - 1).clamp(1, 23), block }
            }
            DseFamily::Afp => {
                let e = (w / 4).clamp(2, 8);
                FormatSpec::Afp { exp: e, man: (w - 1 - e).max(1) }
            }
            DseFamily::Mx { block } => {
                // MX element widths are discrete (4, 6, 8): snap down.
                let elem = if w >= 8 {
                    MxElem::Fp8E4m3
                } else if w >= 6 {
                    MxElem::Fp6E2m3
                } else {
                    MxElem::Fp4E2m1
                };
                FormatSpec::Mx { elem, block }
            }
        }
    }

    /// Valid radix range `(lo, hi)` at total width `w`, and a constructor
    /// from radix to spec. Returns `None` for families without a radix
    /// phase (INT).
    #[allow(clippy::type_complexity)]
    fn radix_phase(&self, w: u32) -> Option<(u32, u32, Box<dyn Fn(u32) -> FormatSpec>)> {
        match *self {
            DseFamily::Fp => {
                // radix = mantissa bits; exponent takes the rest (2..=8).
                let lo = w.saturating_sub(9).max(1);
                let hi = w.saturating_sub(3);
                (lo <= hi).then(|| {
                    (
                        lo,
                        hi,
                        Box::new(move |m: u32| FormatSpec::Fp {
                            exp: w - 1 - m,
                            man: m,
                            denormals: true,
                        }) as Box<dyn Fn(u32) -> FormatSpec>,
                    )
                })
            }
            DseFamily::Afp => {
                let lo = w.saturating_sub(9).max(1);
                let hi = w.saturating_sub(3);
                (lo <= hi).then(|| {
                    (
                        lo,
                        hi,
                        Box::new(move |m: u32| FormatSpec::Afp { exp: w - 1 - m, man: m })
                            as Box<dyn Fn(u32) -> FormatSpec>,
                    )
                })
            }
            DseFamily::Fxp => {
                // radix = fraction bits; integer part takes the rest (≥1).
                let lo = 1;
                let hi = w.saturating_sub(2);
                (lo <= hi).then(|| {
                    (
                        lo,
                        hi,
                        Box::new(move |f: u32| FormatSpec::Fxp { int: w - 1 - f, frac: f })
                            as Box<dyn Fn(u32) -> FormatSpec>,
                    )
                })
            }
            DseFamily::Bfp { block } => {
                // radix = shared-exponent width (2..=8); data width fixed.
                let m = (w - 1).clamp(1, 23);
                Some((2, 8, Box::new(move |e: u32| FormatSpec::Bfp { exp: e, man: m, block })))
            }
            DseFamily::Mx { block } => {
                // radix = element exponent width at the snapped width: the
                // OCP pairs e4m3/e5m2 (8-bit) and e2m3/e3m2 (6-bit). MXFP4
                // has a single element type, so no radix phase.
                let pick = move |e: u32| {
                    let elem = match (w >= 8, w >= 6, e) {
                        (true, _, 4) => MxElem::Fp8E4m3,
                        (true, _, _) => MxElem::Fp8E5m2,
                        (false, true, 2) => MxElem::Fp6E2m3,
                        (false, true, _) => MxElem::Fp6E3m2,
                        _ => MxElem::Fp4E2m1,
                    };
                    FormatSpec::Mx { elem, block }
                };
                match w {
                    _ if w >= 8 => Some((4, 5, Box::new(pick) as Box<dyn Fn(u32) -> FormatSpec>)),
                    _ if w >= 6 => Some((2, 3, Box::new(pick) as Box<dyn Fn(u32) -> FormatSpec>)),
                    _ => None,
                }
            }
            DseFamily::Int => None,
        }
    }
}

/// One visited node of the DSE tree.
#[derive(Debug, Clone, PartialEq)]
pub struct DseNode {
    /// Visit order (0-based).
    pub index: usize,
    /// The configuration evaluated at this node.
    pub spec: FormatSpec,
    /// Measured accuracy.
    pub accuracy: f32,
    /// Whether the accuracy stayed within the allowed drop.
    pub accepted: bool,
}

/// The outcome of a DSE run.
#[derive(Debug, Clone)]
pub struct DseResult {
    /// Baseline (native FP32) accuracy the threshold is relative to.
    pub baseline_accuracy: f32,
    /// Minimum acceptable accuracy.
    pub threshold: f32,
    /// Every node visited, in traversal order (≤ 16).
    pub nodes: Vec<DseNode>,
    /// The accepted configuration with the fewest total bits, if any.
    pub best: Option<FormatSpec>,
}

impl DseResult {
    /// Nodes that met the accuracy threshold.
    pub fn accepted_nodes(&self) -> impl Iterator<Item = &DseNode> {
        self.nodes.iter().filter(|n| n.accepted)
    }

    /// Builds the run manifest for this search: threshold config, the
    /// per-node visit trail (spec, accuracy, accepted), the node-accuracy
    /// sequence as the convergence trace, and the chosen format.
    pub fn to_manifest(&self, tool: &str, wall_time_s: f64) -> trace::RunManifest {
        use trace::Json;
        let trail: Vec<Json> = self
            .nodes
            .iter()
            .map(|n| {
                Json::Obj(vec![
                    ("index".into(), Json::from(n.index)),
                    ("spec".into(), Json::from(n.spec.to_string())),
                    ("accuracy".into(), Json::from_f32(n.accuracy)),
                    ("accepted".into(), Json::from(n.accepted)),
                ])
            })
            .collect();
        let mut m = trace::RunManifest::new(tool)
            .with_config("baseline_accuracy", self.baseline_accuracy)
            .with_config("threshold", self.threshold)
            .with_extra("nodes_visited", self.nodes.len())
            .with_extra("nodes", Json::Arr(trail))
            .with_extra("best", self.best.as_ref().map(|s| s.to_string()));
        m.wall_time_s = wall_time_s;
        m.convergence = self.nodes.iter().map(|n| n.accuracy).collect();
        m.snapshot_counters();
        m.snapshot_profile();
        m
    }
}

fn total_bits(spec: &FormatSpec) -> u32 {
    match *spec {
        FormatSpec::Fp { exp, man, .. } => 1 + exp + man,
        FormatSpec::Fxp { int, frac } => 1 + int + frac,
        FormatSpec::Int { bits } => bits,
        FormatSpec::Bfp { man, .. } => 1 + man,
        FormatSpec::Afp { exp, man } => 1 + exp + man,
        FormatSpec::Posit { n, .. } => n,
        FormatSpec::Mx { elem, .. } => elem.bit_width(),
        FormatSpec::P3109 { exp, man } => 1 + exp + man,
        FormatSpec::Gf { n } => n,
    }
}

/// Runs the binary-tree DSE heuristic for one format family.
///
/// `eval` measures the model's accuracy under a candidate format (over the
/// whole evaluation set, as in the paper); `baseline_accuracy` is the
/// native FP32 accuracy and `max_drop` the acceptable loss (the paper's
/// example: 1% → 0.01).
///
/// Visits at most 16 nodes; each candidate is evaluated once.
pub fn search(
    family: DseFamily,
    mut eval: impl FnMut(&FormatSpec) -> f32,
    baseline_accuracy: f32,
    max_drop: f32,
) -> DseResult {
    const MAX_NODES: usize = 16;
    let _span = trace::span!("dse", family = format!("{family:?}"));
    let threshold = baseline_accuracy - max_drop;
    let mut nodes: Vec<DseNode> = Vec::new();
    // The traversal is sequential, so a heartbeat per visited node is
    // already schedule-invariant.
    let progress = trace::Progress::new("dse", MAX_NODES as u64);
    let visit = |spec: FormatSpec,
                 nodes: &mut Vec<DseNode>,
                 eval: &mut dyn FnMut(&FormatSpec) -> f32|
     -> bool {
        if let Some(prev) = nodes.iter().find(|n| n.spec == spec) {
            return prev.accepted;
        }
        let accuracy = eval(&spec);
        let accepted = accuracy >= threshold;
        if trace::recording() {
            trace::emit(
                trace::Level::Debug,
                "dse_node",
                vec![
                    ("index", trace::Json::from(nodes.len())),
                    ("spec", trace::Json::from(spec.to_string())),
                    ("accuracy", trace::Json::from_f32(accuracy)),
                    ("accepted", trace::Json::from(accepted)),
                ],
            );
        }
        nodes.push(DseNode { index: nodes.len(), spec, accuracy, accepted });
        progress.add(1);
        progress.heartbeat(vec![
            ("node", trace::Json::from(nodes.len() - 1)),
            ("accepted", trace::Json::from(accepted)),
        ]);
        accepted
    };

    // Phase 1 — bit-width binary search on [4, 32]: go left (halve the
    // width) while accuracy holds, right (back up) when it breaks.
    let (mut lo, mut hi) = (4u32, 32u32);
    let mut best_width: Option<u32> = None;
    // Root of the tree: check the widest configuration first; if even it
    // fails, the family is hopeless for this model.
    if visit(family.spec_for_width(hi), &mut nodes, &mut eval) {
        best_width = Some(hi);
        while lo < hi && nodes.len() < MAX_NODES {
            let mid = (lo + hi) / 2;
            if visit(family.spec_for_width(mid), &mut nodes, &mut eval) {
                best_width = Some(mid);
                hi = mid; // left child: try even shorter
            } else {
                lo = mid + 1; // right child: back toward wider
            }
        }
    }

    // Phase 2 — radix binary search at the chosen width.
    let mut best_spec = best_width.map(|w| family.spec_for_width(w));
    if let Some(w) = best_width {
        if let Some((rlo, rhi, make)) = family.radix_phase(w) {
            let (mut lo, mut hi) = (rlo, rhi);
            let mut best_radix: Option<u32> = None;
            if nodes.len() < MAX_NODES && visit(make(hi), &mut nodes, &mut eval) {
                best_radix = Some(hi);
                while lo < hi && nodes.len() < MAX_NODES {
                    let mid = (lo + hi) / 2;
                    if visit(make(mid), &mut nodes, &mut eval) {
                        best_radix = Some(mid);
                        hi = mid;
                    } else {
                        lo = mid + 1;
                    }
                }
            }
            if let Some(r) = best_radix {
                // Prefer the radix-phase result if it is no wider.
                let cand = make(r);
                if total_bits(&cand) <= total_bits(best_spec.as_ref().unwrap()) {
                    best_spec = Some(cand);
                }
            }
        }
    }

    debug_assert!(nodes.len() <= MAX_NODES);
    progress.finish();
    DseResult { baseline_accuracy, threshold, nodes, best: best_spec }
}

/// Result of a [`mixed_precision_search`].
#[derive(Debug, Clone)]
pub struct MixedPrecisionResult {
    /// Chosen candidate index per layer (into the `candidates` slice),
    /// keyed by layer index.
    pub assignments: std::collections::HashMap<usize, usize>,
    /// Total number of evaluations performed.
    pub evaluations: usize,
}

impl MixedPrecisionResult {
    /// Mean data bit width of the assignment, given the candidate widths.
    pub fn mean_bits(&self, candidates: &[FormatSpec]) -> f32 {
        if self.assignments.is_empty() {
            return 0.0;
        }
        let total: u32 = self.assignments.values().map(|&i| total_bits(&candidates[i])).sum();
        total as f32 / self.assignments.len() as f32
    }
}

/// Mixed-precision DSE — an extension beyond the paper (which lists
/// mixed-precision support as future work, §V-C): greedily assigns each
/// instrumented layer the narrowest candidate format that keeps accuracy
/// within the threshold, holding the other layers at their current
/// assignment (earlier layers: already chosen; later layers: the widest
/// candidate).
///
/// `candidates` must be ordered widest → narrowest; `eval` measures
/// accuracy for a full per-layer assignment (candidate index per layer).
///
/// # Panics
///
/// Panics if `candidates` is empty.
pub fn mixed_precision_search(
    layers: &[usize],
    candidates: &[FormatSpec],
    mut eval: impl FnMut(&std::collections::HashMap<usize, usize>) -> f32,
    baseline_accuracy: f32,
    max_drop: f32,
) -> MixedPrecisionResult {
    assert!(!candidates.is_empty(), "no candidate formats");
    let threshold = baseline_accuracy - max_drop;
    let mut assignments: std::collections::HashMap<usize, usize> =
        layers.iter().map(|&l| (l, 0)).collect();
    let mut evaluations = 0;
    for &layer in layers {
        // Binary search the narrowest acceptable candidate for this layer.
        let (mut lo, mut hi) = (0usize, candidates.len() - 1);
        let mut best = 0usize;
        while lo <= hi {
            let mid = (lo + hi) / 2;
            assignments.insert(layer, mid);
            evaluations += 1;
            if eval(&assignments) >= threshold {
                best = mid;
                if mid == candidates.len() - 1 {
                    break;
                }
                lo = mid + 1; // try narrower
            } else {
                if mid == 0 {
                    break;
                }
                hi = mid - 1; // back toward wider
            }
        }
        assignments.insert(layer, best);
    }
    MixedPrecisionResult { assignments, evaluations }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic accuracy surface: accuracy degrades smoothly as bits
    /// shrink; formats with ≥ `knee` total bits are near-baseline.
    fn surface(knee: u32) -> impl FnMut(&FormatSpec) -> f32 {
        move |spec: &FormatSpec| {
            let bits = total_bits(spec);
            if bits >= knee {
                0.9
            } else {
                0.9 - 0.05 * (knee - bits) as f32
            }
        }
    }

    #[test]
    fn finds_the_knee() {
        let res = search(DseFamily::Int, surface(8), 0.9, 0.01);
        assert_eq!(res.best, Some(FormatSpec::Int { bits: 8 }));
    }

    #[test]
    fn visits_at_most_16_nodes() {
        for knee in [4, 7, 13, 21, 32] {
            for fam in [
                DseFamily::Fp,
                DseFamily::Fxp,
                DseFamily::Int,
                DseFamily::Bfp { block: 16 },
                DseFamily::Afp,
                DseFamily::Mx { block: 32 },
            ] {
                let res = search(fam, surface(knee), 0.9, 0.01);
                assert!(res.nodes.len() <= 16, "{fam:?} knee {knee}: {} nodes", res.nodes.len());
                assert!(!res.nodes.is_empty());
            }
        }
    }

    #[test]
    fn hopeless_family_returns_none() {
        let res = search(DseFamily::Fp, |_| 0.1, 0.9, 0.01);
        assert!(res.best.is_none());
        // Only the root was worth probing.
        assert_eq!(res.nodes.len(), 1);
    }

    #[test]
    fn node_indices_are_visit_ordered() {
        let res = search(DseFamily::Fp, surface(10), 0.9, 0.01);
        for (i, n) in res.nodes.iter().enumerate() {
            assert_eq!(n.index, i);
        }
    }

    #[test]
    fn no_duplicate_evaluations() {
        let mut calls = Vec::new();
        let res = search(
            DseFamily::Fxp,
            |s| {
                calls.push(s.clone());
                0.9
            },
            0.9,
            0.01,
        );
        for (i, a) in calls.iter().enumerate() {
            for b in &calls[i + 1..] {
                assert_ne!(a, b, "spec {a} evaluated twice");
            }
        }
        assert!(res.best.is_some());
    }

    #[test]
    fn accepted_nodes_all_meet_threshold() {
        let res = search(DseFamily::Afp, surface(12), 0.9, 0.01);
        for n in res.accepted_nodes() {
            assert!(n.accuracy >= res.threshold);
        }
        // More than half the visited nodes should be acceptable design
        // points (the paper's observation for its Figure 6).
        let accepted = res.accepted_nodes().count();
        assert!(accepted * 2 >= res.nodes.len(), "{accepted}/{}", res.nodes.len());
    }

    #[test]
    fn mixed_precision_search_finds_per_layer_knees() {
        // Layer 0 is sensitive (needs ≥ 8 bits); layer 1 tolerates 4.
        let candidates: Vec<FormatSpec> =
            [16u32, 12, 8, 4].iter().map(|&b| FormatSpec::Int { bits: b }).collect();
        let layers = [0usize, 1];
        let eval = |a: &std::collections::HashMap<usize, usize>| {
            let bits = |l: usize| match a[&l] {
                0 => 16,
                1 => 12,
                2 => 8,
                _ => 4,
            };
            let ok0 = bits(0) >= 8;
            let ok1 = bits(1) >= 4;
            if ok0 && ok1 {
                0.9
            } else {
                0.5
            }
        };
        let res = mixed_precision_search(&layers, &candidates, eval, 0.9, 0.01);
        assert_eq!(res.assignments[&0], 2, "layer 0 should stop at 8 bits");
        assert_eq!(res.assignments[&1], 3, "layer 1 should reach 4 bits");
        assert!((res.mean_bits(&candidates) - 6.0).abs() < 1e-6);
        assert!(res.evaluations <= 2 * 3 + 2);
    }

    #[test]
    fn mixed_precision_hopeless_layer_keeps_widest() {
        let candidates: Vec<FormatSpec> =
            [16u32, 8].iter().map(|&b| FormatSpec::Int { bits: b }).collect();
        let res = mixed_precision_search(&[0], &candidates, |_| 0.1, 0.9, 0.01);
        assert_eq!(res.assignments[&0], 0);
    }

    #[test]
    fn tighter_threshold_prunes_more() {
        let loose = search(DseFamily::Int, surface(8), 0.9, 0.2);
        let tight = search(DseFamily::Int, surface(8), 0.9, 0.001);
        let loose_bits = total_bits(loose.best.as_ref().unwrap());
        let tight_bits = total_bits(tight.best.as_ref().unwrap());
        assert!(loose_bits <= tight_bits);
    }
}
