//! The GoldenEye simulator: instruments a model with number-format
//! emulation hooks, optional fault injection, and the range detector.
//!
//! Mirrors the paper's Figure 2 pipeline: read each layer's FP32 output →
//! convert to the emulated format (extracting hardware metadata) → maybe
//! flip a bit in a value or a metadata register → write the result back as
//! the nearest FP32 value → continue the inference.

use formats::{NumberFormat, Quantized};
use inject::{
    flip_metadata, flip_value, BitSampler, BitStrata, Injector, MetadataFlip, RangeProfile,
    SiteKind, ValueFlip,
};
use nn::{Ctx, ForwardHook, LayerInfo, LayerKind, Module, Param};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;
use tensor::Tensor;

/// Hot-path metrics for the emulation hook, resolved once. Every timing
/// below is gated on [`trace::recording`] — with tracing off the hook
/// pays a single relaxed atomic load and no clock reads.
struct HookMetrics {
    /// Per-call FP32 → format conversion time.
    quantize_ns: &'static trace::Metric,
    /// Per-call format → FP32 conversion time.
    dequantize_ns: &'static trace::Metric,
    /// Elements converted (ratio `sum(ns) / sum(elements)` is the
    /// format-conversion cost in ns/element).
    convert_elems: &'static trace::Metric,
    /// Time a hook spent blocked on contended internal locks.
    lock_wait_ns: &'static trace::Metric,
}

fn hook_metrics() -> &'static HookMetrics {
    static M: OnceLock<HookMetrics> = OnceLock::new();
    M.get_or_init(|| HookMetrics {
        quantize_ns: trace::histogram(trace::names::HOOK_QUANTIZE_NS),
        dequantize_ns: trace::histogram(trace::names::HOOK_DEQUANTIZE_NS),
        convert_elems: trace::counter(trace::names::HOOK_CONVERT_ELEMS),
        lock_wait_ns: trace::histogram(trace::names::HOOK_LOCK_WAIT_NS),
    })
}

/// Fused-quantise toggle: 0 = unset (consult `GOLDENEYE_FUSED` once),
/// 1 = on, 2 = off.
static FUSED_QUANTIZE: std::sync::atomic::AtomicU8 = std::sync::atomic::AtomicU8::new(0);

/// Enables or disables the fused single-pass quantise→dequantise hook
/// path (overrides the `GOLDENEYE_FUSED` environment variable).
///
/// Fused and two-pass are bit-identical by the
/// [`formats::NumberFormat::elementwise_quantizer`] contract; the toggle
/// exists so benchmarks can A/B the two routes and so a suspect run can
/// be re-executed on the legacy path (`GOLDENEYE_FUSED=0`).
pub fn set_fused_quantize(on: bool) {
    FUSED_QUANTIZE.store(if on { 1 } else { 2 }, std::sync::atomic::Ordering::Relaxed);
}

/// Whether hooks may take the fused round-trip fast path. Defaults to on;
/// `GOLDENEYE_FUSED=0` / `off` / `false` disables it at startup.
fn fused_quantize_enabled() -> bool {
    match FUSED_QUANTIZE.load(std::sync::atomic::Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => {
            static FROM_ENV: OnceLock<bool> = OnceLock::new();
            *FROM_ENV.get_or_init(|| {
                !matches!(
                    std::env::var("GOLDENEYE_FUSED").as_deref(),
                    Ok("0") | Ok("off") | Ok("false")
                )
            })
        }
    }
}

/// Locks a mutex, ignoring poisoning: hook state is only ever replaced
/// wholesale, so a panicked trial cannot leave it torn.
///
/// When tracing is on, time spent blocked on a contended lock is recorded
/// in the `hook.lock_wait_ns` histogram (the uncontended `try_lock`
/// fast path costs nothing extra).
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match m.try_lock() {
        Ok(g) => return g,
        Err(std::sync::TryLockError::Poisoned(p)) => return p.into_inner(),
        Err(std::sync::TryLockError::WouldBlock) => {}
    }
    if trace::recording() {
        let t0 = Instant::now();
        let g = m.lock().unwrap_or_else(|p| p.into_inner());
        hook_metrics().lock_wait_ns.record(t0.elapsed().as_nanos() as u64);
        g
    } else {
        m.lock().unwrap_or_else(|p| p.into_inner())
    }
}

/// Which layer kinds get instrumented.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LayerFilter {
    /// CONV and LINEAR only — the paper's default (§V-B).
    ConvLinear,
    /// Every layer type.
    All,
}

impl LayerFilter {
    /// Whether `kind` is instrumented under this filter.
    pub fn matches(&self, kind: LayerKind) -> bool {
        match self {
            LayerFilter::ConvLinear => matches!(kind, LayerKind::Conv | LayerKind::Linear),
            LayerFilter::All => true,
        }
    }
}

/// Where to inject during an instrumented run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InjectionPlan {
    /// Index of the instrumented layer to corrupt (execution order among
    /// *instrumented* layers).
    pub layer: usize,
    /// Value-bit or metadata-bit flip.
    pub kind: SiteKind,
    /// Number of distinct bits to flip in the chosen value/word (1 =
    /// the classic single-bit model; >1 models multi-bit upsets).
    pub bits: u32,
}

impl InjectionPlan {
    /// A single-bit fault at `layer`.
    pub fn single(layer: usize, kind: SiteKind) -> Self {
        InjectionPlan { layer, kind, bits: 1 }
    }

    /// A `bits`-bit multi-bit upset at `layer`.
    ///
    /// # Panics
    ///
    /// Panics if `bits == 0`.
    pub fn multi(layer: usize, kind: SiteKind, bits: u32) -> Self {
        assert!(bits > 0, "a fault must flip at least one bit");
        InjectionPlan { layer, kind, bits }
    }
}

/// What an injection actually did.
#[derive(Debug, Clone, PartialEq)]
pub enum InjectionRecord {
    /// A data-value flip.
    Value {
        /// The instrumented layer it landed in.
        layer: LayerInfo,
        /// The executed flip.
        flip: ValueFlip,
    },
    /// A metadata-register flip.
    Metadata {
        /// The instrumented layer it landed in.
        layer: LayerInfo,
        /// The executed flip.
        flip: MetadataFlip,
    },
}

/// Range-detector mode for a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RangeMode {
    Off,
    Profile,
    Detect,
}

impl RangeMode {
    /// Applies this mode's range handling to a hooked layer output.
    /// Element-wise per layer, so it commutes with replica slicing —
    /// clamping a packed batch tensor equals clamping each replica slice.
    fn apply(self, range: &RangeProfile, layer: usize, values: Tensor) -> Tensor {
        match self {
            RangeMode::Off => values,
            RangeMode::Profile => {
                range.observe(layer, &values);
                values
            }
            RangeMode::Detect => range.clamp(layer, &values),
        }
    }
}

/// The number-format emulation hook (with optional injection), installed
/// on every instrumented layer.
struct EmulationHook {
    formats: Arc<FormatTable>,
    filter: LayerFilter,
    plan: Option<InjectionPlan>,
    sampler: BitSampler,
    injector: Mutex<Injector>,
    record: Mutex<Option<InjectionRecord>>,
    range: Arc<RangeProfile>,
    range_mode: RangeMode,
}

/// Default format plus per-layer overrides (mixed precision).
struct FormatTable {
    default: Arc<dyn NumberFormat>,
    per_layer: std::collections::HashMap<usize, Arc<dyn NumberFormat>>,
}

impl FormatTable {
    fn resolve(&self, layer: usize) -> &dyn NumberFormat {
        self.per_layer.get(&layer).map(Arc::as_ref).unwrap_or(self.default.as_ref())
    }
}

impl ForwardHook for EmulationHook {
    fn on_output(&self, layer: &LayerInfo, output: &Tensor) -> Option<Tensor> {
        let format = self.formats.resolve(layer.index);
        let fault_here = self.plan.as_ref().is_some_and(|p| p.layer == layer.index);
        // Fused fast path: no fault lands in this layer, so the quantised
        // intermediate is never inspected and the round-trip collapses to
        // one elementwise pass (bit-identical by the quantizer contract).
        if !fault_here && fused_quantize_enabled() {
            let timing = trace::recording().then(Instant::now);
            if let Some(values) = formats::fused_roundtrip(format, output) {
                if let Some(t0) = timing {
                    let m = hook_metrics();
                    m.quantize_ns.record(t0.elapsed().as_nanos() as u64);
                    m.convert_elems.add(output.numel() as u64);
                }
                return Some(self.range_mode.apply(&self.range, layer.index, values));
            }
        }
        let timing = trace::recording().then(Instant::now);
        let mut q = format.real_to_format_tensor(output);
        if let Some(t0) = timing {
            let m = hook_metrics();
            m.quantize_ns.record(t0.elapsed().as_nanos() as u64);
            m.convert_elems.add(output.numel() as u64);
        }
        if let Some(plan) = &self.plan {
            if plan.layer == layer.index {
                let mut inj = lock(&self.injector);
                let record = apply_fault(format, layer, plan, &self.sampler, &mut inj, &mut q);
                *lock(&self.record) = Some(record);
            }
        }
        let timing = trace::recording().then(Instant::now);
        let values = format.format_to_real_tensor(&q);
        if let Some(t0) = timing {
            hook_metrics().dequantize_ns.record(t0.elapsed().as_nanos() as u64);
        }
        Some(self.range_mode.apply(&self.range, layer.index, values))
    }

    fn applies_to(&self, kind: LayerKind) -> bool {
        self.filter.matches(kind)
    }
}

/// Samples and executes one planned fault on an already-quantised tensor,
/// drawing locations from `inj`. Shared by the serial and batched hooks,
/// which is what makes a batched replica reproduce its serial trial
/// draw-for-draw: both paths consume the trial's RNG identically.
fn apply_fault(
    format: &dyn NumberFormat,
    layer: &LayerInfo,
    plan: &InjectionPlan,
    sampler: &BitSampler,
    inj: &mut Injector,
    q: &mut Quantized,
) -> InjectionRecord {
    match plan.kind {
        SiteKind::Value => {
            let width = format.bit_width() as usize;
            let strata = BitStrata::for_format(format);
            let (f, _) = inj
                .try_sample_value_fault_with(q.values.numel(), sampler, &strata)
                .unwrap_or_else(|e| panic!("{e}"));
            let flip = if plan.bits <= 1 {
                flip_value(format, q, f.index, f.bit)
            } else {
                let bits = sample_distinct_bits(inj, width, plan.bits, f.bit);
                inject::flip_value_multi(format, q, f.index, &bits)
            };
            InjectionRecord::Value { layer: layer.clone(), flip }
        }
        SiteKind::Metadata => {
            let words = q.meta.word_count();
            let width = q.meta.word_width();
            let f = inj.sample_metadata_fault(words, width);
            let mut flip = flip_metadata(format, q, f.index, f.bit);
            for &b in sample_distinct_bits(inj, width, plan.bits, f.bit).iter().skip(1) {
                flip = flip_metadata(format, q, f.index, b);
            }
            InjectionRecord::Metadata { layer: layer.clone(), flip }
        }
    }
}

/// The batch-aware emulation hook: one forward pass carries N trial
/// replicas stacked along the batch dimension (replica `r` in rows
/// `r·B..(r+1)·B`), and every replica slice is quantised **independently**.
/// Per-tensor formats derive tensor-wide state (BFP shared exponents, INT
/// scales, AFP biases) during quantisation, so slicing is what keeps each
/// replica's metadata layout — and therefore its fault's element/word
/// addressing — bit-identical to a serial single-trial run over the same
/// `[B, ...]` tensor.
struct BatchEmulationHook {
    formats: Arc<FormatTable>,
    filter: LayerFilter,
    plan: InjectionPlan,
    sampler: BitSampler,
    /// Per-replica injector and the record of what its fault did.
    state: Mutex<Vec<(Injector, Option<InjectionRecord>)>>,
    range: Arc<RangeProfile>,
    range_mode: RangeMode,
}

impl ForwardHook for BatchEmulationHook {
    fn on_output(&self, layer: &LayerInfo, output: &Tensor) -> Option<Tensor> {
        self.on_output_batched(layer, output, 1)
    }

    fn on_output_batched(
        &self,
        layer: &LayerInfo,
        output: &Tensor,
        replicas: usize,
    ) -> Option<Tensor> {
        let format = self.formats.resolve(layer.index);
        let rows = output.dims()[0];
        assert_eq!(rows % replicas, 0, "{rows} rows do not split into {replicas} replicas");
        let per = rows / replicas;
        let inject_here = self.plan.layer == layer.index;
        // Fused fast path: away from the fault layer every replica gets the
        // same pure elementwise round-trip, which commutes with replica
        // slicing — one whole-tensor pass replaces narrow → quantise →
        // dequantise → concat, bit-identically.
        if !inject_here && fused_quantize_enabled() {
            let timing = trace::recording().then(Instant::now);
            if let Some(values) = formats::fused_roundtrip(format, output) {
                if let Some(t0) = timing {
                    let m = hook_metrics();
                    m.quantize_ns.record(t0.elapsed().as_nanos() as u64);
                    m.convert_elems.add(output.numel() as u64);
                }
                return Some(self.range_mode.apply(&self.range, layer.index, values));
            }
        }
        let timing = trace::recording().then(Instant::now);
        let mut slices = Vec::with_capacity(replicas);
        {
            let mut state = inject_here.then(|| lock(&self.state));
            if let Some(state) = &state {
                assert_eq!(state.len(), replicas, "one injector per replica");
            }
            for r in 0..replicas {
                let slice = if replicas == 1 {
                    output.clone()
                } else {
                    tensor::ops::narrow(output, 0, r * per, per)
                };
                let mut q = format.real_to_format_tensor(&slice);
                if let Some(state) = state.as_mut() {
                    let (inj, rec) = &mut state[r];
                    *rec = Some(apply_fault(format, layer, &self.plan, &self.sampler, inj, &mut q));
                }
                slices.push(format.format_to_real_tensor(&q));
            }
        }
        if let Some(t0) = timing {
            let m = hook_metrics();
            m.quantize_ns.record(t0.elapsed().as_nanos() as u64);
            m.convert_elems.add(output.numel() as u64);
        }
        let values = if replicas == 1 {
            slices.pop().unwrap()
        } else {
            let refs: Vec<&Tensor> = slices.iter().collect();
            tensor::ops::concat(&refs, 0)
        };
        Some(self.range_mode.apply(&self.range, layer.index, values))
    }

    fn applies_to(&self, kind: LayerKind) -> bool {
        self.filter.matches(kind)
    }
}

/// Samples `count` distinct bit positions in `0..width`, the first being
/// `first` (already drawn by the caller).
fn sample_distinct_bits(inj: &mut Injector, width: usize, count: u32, first: usize) -> Vec<usize> {
    use rand::seq::SliceRandom;
    let count = (count as usize).min(width);
    let mut rest: Vec<usize> = (0..width).filter(|&b| b != first).collect();
    rest.shuffle(inj.rng());
    let mut bits = vec![first];
    bits.extend(rest.into_iter().take(count - 1));
    bits
}

/// Hook that only records which layers would be instrumented.
struct DiscoveryHook {
    filter: LayerFilter,
    layers: Mutex<Vec<LayerInfo>>,
}

impl ForwardHook for DiscoveryHook {
    fn on_output(&self, layer: &LayerInfo, _output: &Tensor) -> Option<Tensor> {
        lock(&self.layers).push(layer.clone());
        None
    }

    fn applies_to(&self, kind: LayerKind) -> bool {
        self.filter.matches(kind)
    }
}

/// The cached state of one clean (fault-free) emulated inference, captured
/// by [`GoldenEye::capture_clean_run`]: the activation entering each model
/// segment, the hook-point count at each segment boundary, and the golden
/// logits. [`GoldenEye::run_replay_batch`] replays faulty trials from the
/// deepest checkpoint preceding the injection layer instead of re-running
/// the whole network.
pub struct CleanRun {
    seg_inputs: Vec<Tensor>,
    seg_layer_offset: Vec<usize>,
    total_layers: usize,
    golden: Tensor,
}

impl CleanRun {
    /// The fault-free logits — bit-identical to [`GoldenEye::run`] on the
    /// same input.
    pub fn golden(&self) -> &Tensor {
        &self.golden
    }

    /// Number of hook points (instrumented layers) in the clean forward.
    pub fn layers_seen(&self) -> usize {
        self.total_layers
    }

    /// The deepest segment whose first hook point is ≤ `layer` — i.e. the
    /// checkpoint a trial injecting at `layer` replays from.
    pub fn segment_for_layer(&self, layer: usize) -> usize {
        match self.seg_layer_offset.binary_search(&layer) {
            Ok(s) => s,
            Err(0) => 0,
            Err(s) => s - 1,
        }
    }
}

/// The GoldenEye functional simulator for one number format.
///
/// # Examples
///
/// ```
/// use goldeneye::GoldenEye;
/// use models::{ResNet, ResNetConfig};
/// use rand::{rngs::StdRng, SeedableRng};
/// use tensor::Tensor;
///
/// let mut rng = StdRng::seed_from_u64(0);
/// let model = ResNet::new(ResNetConfig::tiny(4), &mut rng);
/// let ge = GoldenEye::parse("fp:e4m3").unwrap();
/// let logits = ge.run(&model, Tensor::zeros([1, 3, 8, 8]));
/// assert_eq!(logits.dims(), &[1, 4]);
/// ```
pub struct GoldenEye {
    format: Arc<dyn NumberFormat>,
    layer_formats: std::collections::HashMap<usize, Arc<dyn NumberFormat>>,
    filter: LayerFilter,
    range: Arc<RangeProfile>,
    detect: bool,
    store: Option<Arc<store::Store>>,
}

impl std::fmt::Debug for GoldenEye {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "GoldenEye(format={}, overrides={}, filter={:?}, detect={})",
            self.format.name(),
            self.layer_formats.len(),
            self.filter,
            self.detect
        )
    }
}

impl GoldenEye {
    /// Creates a simulator for `format` with the paper's default layer
    /// filter (CONV + LINEAR) and the range detector disabled.
    pub fn new(format: Box<dyn NumberFormat>) -> Self {
        GoldenEye {
            format: Arc::from(format),
            layer_formats: std::collections::HashMap::new(),
            filter: LayerFilter::ConvLinear,
            range: Arc::new(RangeProfile::new()),
            detect: false,
            store: None,
        }
    }

    /// Creates a simulator from a format spec string (see
    /// [`formats::FormatSpec`]).
    ///
    /// # Errors
    ///
    /// Returns the parse error for invalid specs.
    pub fn parse(spec: &str) -> Result<Self, formats::ParseFormatError> {
        Ok(Self::new(spec.parse::<formats::FormatSpec>()?.build()))
    }

    /// Sets the layer filter.
    pub fn with_filter(mut self, filter: LayerFilter) -> Self {
        self.filter = filter;
        self
    }

    /// Enables the range detector (after [`GoldenEye::profile_ranges`] has
    /// been called, faulty activations are clamped into profiled ranges).
    pub fn with_range_detector(mut self, on: bool) -> Self {
        self.detect = on;
        self
    }

    /// Overrides the format for one instrumented layer (mixed precision —
    /// an extension beyond the paper, which lists mixed-precision support
    /// as future work in §V-C). Layer indices are those reported by
    /// [`GoldenEye::discover_layers`].
    pub fn with_layer_format(mut self, layer: usize, format: Box<dyn NumberFormat>) -> Self {
        self.layer_formats.insert(layer, Arc::from(format));
        self
    }

    /// The format used for a given instrumented layer (the default unless
    /// overridden).
    pub fn format_for_layer(&self, layer: usize) -> &dyn NumberFormat {
        self.layer_formats.get(&layer).map(Arc::as_ref).unwrap_or(self.format.as_ref())
    }

    /// Attaches a content-addressed artifact store: offline weight
    /// conversions ([`GoldenEye::quantize_weights`] and the weight-campaign
    /// clean pass) are served from the store when the same
    /// `(weights × format)` pair was converted before — by this run, an
    /// earlier one, or a concurrent process sharing the directory. Also
    /// seeds the format's dequantise LUT from the store when one is cached.
    ///
    /// Results are bit-identical with and without a store; only the work
    /// is shared.
    pub fn with_store(mut self, store: Arc<store::Store>) -> Self {
        store.ensure_lut(self.format.as_ref());
        self.store = Some(store);
        self
    }

    /// The attached artifact store, if any.
    pub fn store(&self) -> Option<&Arc<store::Store>> {
        self.store.as_ref()
    }

    /// Quantises one tensor under the default format, through the store
    /// when one is attached (bit-identical either way).
    pub fn quantize_tensor_cached(&self, t: &Tensor) -> Quantized {
        match &self.store {
            Some(store) => store.get_or_quantize(self.format.as_ref(), t),
            None => self.format.real_to_format_tensor(t),
        }
    }

    /// The emulated format.
    pub fn format(&self) -> &dyn NumberFormat {
        self.format.as_ref()
    }

    /// Shared handle to the default format (for custom hooks).
    pub(crate) fn format_arc(&self) -> Arc<dyn NumberFormat> {
        self.format.clone()
    }

    /// Lists the layers that will be instrumented for `model` (by running
    /// one discovery pass on `sample`).
    pub fn discover_layers(&self, model: &dyn Module, sample: Tensor) -> Vec<LayerInfo> {
        let hook = Arc::new(DiscoveryHook { filter: self.filter, layers: Mutex::new(Vec::new()) });
        let mut ctx = Ctx::inference();
        ctx.add_hook(hook.clone());
        let x = ctx.input(sample);
        model.forward(&x, &mut ctx);
        let layers = lock(&hook.layers).clone();
        layers
    }

    /// Runs an emulated inference (no injection) and returns the logits.
    pub fn run(&self, model: &dyn Module, x: Tensor) -> Tensor {
        self.run_inner(model, x, None, 0, BitSampler::Uniform).0
    }

    /// Runs an emulated inference with one fault injected per `plan`,
    /// sampling the fault location from `seed`.
    ///
    /// Returns the logits and the record of what was flipped (None if the
    /// planned layer never executed).
    pub fn run_with_injection(
        &self,
        model: &dyn Module,
        x: Tensor,
        plan: InjectionPlan,
        seed: u64,
    ) -> (Tensor, Option<InjectionRecord>) {
        self.run_inner(model, x, Some(plan), seed, BitSampler::Uniform)
    }

    /// [`GoldenEye::run_with_injection`] with an explicit bit-position
    /// sampling policy for value faults. `BitSampler::Uniform` reproduces
    /// `run_with_injection` draw-for-draw.
    pub fn run_with_injection_sampled(
        &self,
        model: &dyn Module,
        x: Tensor,
        plan: InjectionPlan,
        seed: u64,
        sampler: BitSampler,
    ) -> (Tensor, Option<InjectionRecord>) {
        self.run_inner(model, x, Some(plan), seed, sampler)
    }

    fn format_table(&self) -> Arc<FormatTable> {
        Arc::new(FormatTable {
            default: self.format.clone(),
            per_layer: self.layer_formats.clone(),
        })
    }

    fn run_inner(
        &self,
        model: &dyn Module,
        x: Tensor,
        plan: Option<InjectionPlan>,
        seed: u64,
        sampler: BitSampler,
    ) -> (Tensor, Option<InjectionRecord>) {
        let hook = Arc::new(EmulationHook {
            formats: self.format_table(),
            filter: self.filter,
            plan,
            sampler,
            injector: Mutex::new(Injector::new(seed)),
            record: Mutex::new(None),
            range: self.range.clone(),
            range_mode: self.trial_range_mode(),
        });
        let mut ctx = Ctx::inference();
        ctx.add_hook(hook.clone());
        let xv = ctx.input(x);
        let logits = model.forward(&xv, &mut ctx).value();
        let record = lock(&hook.record).clone();
        (logits, record)
    }

    fn trial_range_mode(&self) -> RangeMode {
        if self.detect && !self.range.is_empty() {
            RangeMode::Detect
        } else {
            RangeMode::Off
        }
    }

    /// Runs one clean (fault-free) emulated inference segment by segment,
    /// caching the activation entering each [`Module`] segment and the
    /// hook-point count at each boundary. The cached activations are the
    /// checkpoints batched trials replay from: a trial injecting at layer
    /// `L` re-executes only the segments from `L`'s onward.
    ///
    /// Since `Module::forward` is contractually the segment chain, the
    /// returned golden logits are bit-identical to [`GoldenEye::run`].
    pub fn capture_clean_run(&self, model: &dyn Module, x: Tensor) -> CleanRun {
        let hook = Arc::new(EmulationHook {
            formats: self.format_table(),
            filter: self.filter,
            plan: None,
            sampler: BitSampler::Uniform,
            injector: Mutex::new(Injector::new(0)),
            record: Mutex::new(None),
            range: self.range.clone(),
            range_mode: self.trial_range_mode(),
        });
        let mut ctx = Ctx::inference();
        ctx.add_hook(hook);
        let segments = model.num_segments();
        let mut seg_inputs = Vec::with_capacity(segments);
        let mut seg_layer_offset = Vec::with_capacity(segments);
        let mut h = ctx.input(x);
        for s in 0..segments {
            seg_inputs.push(h.value());
            seg_layer_offset.push(ctx.layers_seen());
            h = model.forward_segment(s, &h, &mut ctx);
        }
        CleanRun {
            seg_inputs,
            seg_layer_offset,
            total_layers: ctx.layers_seen(),
            golden: h.value(),
        }
    }

    /// Replays a batch of fault trials from the checkpoint preceding the
    /// injection layer: the cached clean activation is tiled into
    /// `seeds.len()` contiguous replicas, the remaining segments run as
    /// **one** batched forward, and replica `r`'s fault is drawn from
    /// `Injector::new(seeds[r])` at the injection site — so each returned
    /// `(logits, record)` pair is bit-identical to
    /// [`GoldenEye::run_with_injection_sampled`] with that seed.
    ///
    /// # Panics
    ///
    /// Panics if `seeds` is empty (an empty batch has no trials to replay;
    /// sample faults through `Injector::try_sample_value_fault_batch` to
    /// get the typed empty-space errors instead).
    pub fn run_replay_batch(
        &self,
        model: &dyn Module,
        clean: &CleanRun,
        plan: InjectionPlan,
        sampler: BitSampler,
        seeds: &[u64],
    ) -> Vec<(Tensor, Option<InjectionRecord>)> {
        assert!(!seeds.is_empty(), "a replay batch needs at least one trial seed");
        let n = seeds.len();
        let seg = clean.segment_for_layer(plan.layer);
        // Checkpoint-cache accounting: of the `num_segments` a full
        // forward would run, this batch skips the `seg` before the
        // checkpoint (the progress heartbeat reports the ratio as the
        // cache hit rate).
        trace::counter(trace::names::CAMPAIGN_REPLAY_BATCHES).add(1);
        trace::counter(trace::names::CAMPAIGN_REPLAY_SEG_SKIPPED).add(seg as u64);
        trace::counter(trace::names::CAMPAIGN_REPLAY_SEG_TOTAL).add(model.num_segments() as u64);
        let hook = Arc::new(BatchEmulationHook {
            formats: self.format_table(),
            filter: self.filter,
            plan,
            sampler,
            state: Mutex::new(seeds.iter().map(|&s| (Injector::new(s), None)).collect()),
            range: self.range.clone(),
            range_mode: self.trial_range_mode(),
        });
        let mut ctx = Ctx::inference();
        ctx.add_hook(hook.clone());
        ctx.set_base_layer(clean.seg_layer_offset[seg]);
        ctx.set_replicas(n);
        let mut h = ctx.input(tensor::ops::tile_batch(&clean.seg_inputs[seg], n));
        for s in seg..model.num_segments() {
            h = model.forward_segment(s, &h, &mut ctx);
        }
        let logits = h.value();
        let per = logits.dims()[0] / n;
        let state = lock(&hook.state);
        (0..n)
            .map(|r| (tensor::ops::narrow(&logits, 0, r * per, per), state[r].1.clone()))
            .collect()
    }

    /// Profiles per-layer activation ranges on clean emulated runs, for
    /// the range detector.
    ///
    /// When tracing is on, emits a `range_profile` event carrying the
    /// resulting `(layer, min, max)` snapshot.
    pub fn profile_ranges(&self, model: &dyn Module, batches: &[Tensor]) {
        let _span = trace::span!("profile_ranges", batches = batches.len());
        for x in batches {
            let hook = Arc::new(EmulationHook {
                formats: self.format_table(),
                filter: self.filter,
                plan: None,
                sampler: BitSampler::Uniform,
                injector: Mutex::new(Injector::new(0)),
                record: Mutex::new(None),
                range: self.range.clone(),
                range_mode: RangeMode::Profile,
            });
            let mut ctx = Ctx::inference();
            ctx.add_hook(hook);
            let xv = ctx.input(x.clone());
            model.forward(&xv, &mut ctx);
        }
        if trace::recording() {
            let ranges: Vec<trace::Json> = self
                .range
                .snapshot()
                .into_iter()
                .map(|(layer, lo, hi)| {
                    trace::Json::Arr(vec![
                        trace::Json::from(layer),
                        trace::Json::from_f32(lo),
                        trace::Json::from_f32(hi),
                    ])
                })
                .collect();
            trace::emit(
                trace::Level::Debug,
                "range_profile",
                vec![
                    ("format", trace::Json::from(self.format.name())),
                    ("layers", trace::Json::from(ranges.len())),
                    ("ranges", trace::Json::Arr(ranges)),
                ],
            );
        }
    }

    /// The range profile built by [`GoldenEye::profile_ranges`].
    pub fn range_profile(&self) -> &RangeProfile {
        &self.range
    }

    /// Quantises the model's weight tensors (parameters named `*.weight`,
    /// i.e. conv/linear kernels) into the emulated format, in place.
    ///
    /// The paper performs weight conversion offline for the same reason —
    /// it needs no runtime hook. Returns the number of parameters touched.
    pub fn quantize_weights(&self, model: &dyn Module) -> usize {
        let mut touched = 0;
        model.visit_params(&mut |p: &Param| {
            if p.name().ends_with(".weight") {
                let q = self.quantize_tensor_cached(&p.get());
                p.set(self.format.format_to_real_tensor(&q));
                touched += 1;
            }
        });
        touched
    }

    /// Injects one bit flip into a stored weight (offline weight
    /// injection). Returns the record, or `None` if no parameter matches
    /// `param_name`.
    ///
    /// # Panics
    ///
    /// Panics if `element`/`bit` is out of range for the parameter/format.
    pub fn inject_weight_fault(
        &self,
        model: &dyn Module,
        param_name: &str,
        element: usize,
        bit: usize,
    ) -> Option<ValueFlip> {
        let mut result = None;
        model.visit_params(&mut |p: &Param| {
            if p.name() == param_name && result.is_none() {
                let mut q = self.format.real_to_format_tensor(&p.get());
                let flip = flip_value(self.format.as_ref(), &mut q, element, bit);
                p.set(self.format.format_to_real_tensor(&q));
                result = Some(flip);
            }
        });
        result
    }
}

/// A forward hook for **fault-aware training** (§V-D: GoldenEye "can
/// potentially be used to build resilient models via novel training
/// routines"): on every instrumented layer of every training pass, the
/// output is quantised into the format and, with probability
/// `fault_prob`, one random value bit is flipped.
///
/// Install it on a training [`Ctx`]; gradients flow through the
/// straight-through estimator, so the model learns under the fault model
/// it will face at inference.
///
/// # Examples
///
/// ```
/// use goldeneye::FaultyTrainingHook;
/// use nn::Ctx;
/// use std::sync::Arc;
///
/// let hook = FaultyTrainingHook::parse("int:8", 0.1, 42)?;
/// let mut ctx = Ctx::training();
/// ctx.add_hook(Arc::new(hook));
/// # Ok::<(), formats::ParseFormatError>(())
/// ```
pub struct FaultyTrainingHook {
    format: Arc<dyn NumberFormat>,
    injector: Mutex<Injector>,
    fault_prob: f64,
    injections: Mutex<u64>,
}

impl std::fmt::Debug for FaultyTrainingHook {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "FaultyTrainingHook(format={}, p={}, fired={})",
            self.format.name(),
            self.fault_prob,
            lock(&self.injections)
        )
    }
}

impl FaultyTrainingHook {
    /// Creates a hook that quantises into `format` and injects one random
    /// value-bit flip per instrumented layer with probability
    /// `fault_prob`.
    ///
    /// # Panics
    ///
    /// Panics if `fault_prob ∉ [0, 1]`.
    pub fn new(format: Box<dyn NumberFormat>, fault_prob: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&fault_prob), "fault_prob must be a probability");
        FaultyTrainingHook {
            format: Arc::from(format),
            injector: Mutex::new(Injector::new(seed)),
            fault_prob,
            injections: Mutex::new(0),
        }
    }

    /// Creates the hook from a format spec string.
    ///
    /// # Errors
    ///
    /// Returns the parse error for invalid specs.
    pub fn parse(
        spec: &str,
        fault_prob: f64,
        seed: u64,
    ) -> Result<Self, formats::ParseFormatError> {
        Ok(Self::new(spec.parse::<formats::FormatSpec>()?.build(), fault_prob, seed))
    }

    /// Number of faults injected so far.
    pub fn injections_fired(&self) -> u64 {
        *lock(&self.injections)
    }
}

impl ForwardHook for FaultyTrainingHook {
    fn on_output(&self, _layer: &LayerInfo, output: &Tensor) -> Option<Tensor> {
        let mut q = self.format.real_to_format_tensor(output);
        let mut inj = lock(&self.injector);
        if rand::Rng::gen_bool(inj.rng(), self.fault_prob) {
            let f = inj.sample_value_fault(q.values.numel(), self.format.bit_width() as usize);
            flip_value(self.format.as_ref(), &mut q, f.index, f.bit);
            *lock(&self.injections) += 1;
        }
        Some(self.format.format_to_real_tensor(&q))
    }
}

/// A snapshot of all model parameters, for restoring after weight
/// quantisation or weight-fault experiments.
#[derive(Debug)]
pub struct ParamSnapshot {
    values: Vec<(String, Tensor)>,
}

impl ParamSnapshot {
    /// Captures the current values of every parameter.
    pub fn capture(model: &dyn Module) -> Self {
        let mut values = Vec::new();
        model.visit_params(&mut |p: &Param| values.push((p.name().to_string(), p.get())));
        ParamSnapshot { values }
    }

    /// Restores the captured values (matched positionally by name).
    ///
    /// # Panics
    ///
    /// Panics if the model's parameter set changed since capture.
    pub fn restore(&self, model: &dyn Module) {
        let mut i = 0;
        model.visit_params(&mut |p: &Param| {
            let (name, value) = &self.values[i];
            assert_eq!(p.name(), name, "parameter order changed since snapshot");
            // Overwrite wholesale rather than `Param::set`: restore is the
            // recovery path after a failed trial, and must succeed even if
            // a panicking worker left the current value torn (wrong shape,
            // poisoned lock).
            p.update(|t| *t = value.clone());
            i += 1;
        });
        assert_eq!(i, self.values.len(), "parameter count changed since snapshot");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use models::{ResNet, ResNetConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_model(seed: u64) -> ResNet {
        let mut rng = StdRng::seed_from_u64(seed);
        ResNet::new(ResNetConfig::tiny(4), &mut rng)
    }

    fn sample(seed: u64) -> Tensor {
        let mut rng = StdRng::seed_from_u64(seed);
        Tensor::randn([2, 3, 8, 8], &mut rng)
    }

    #[test]
    fn fp32_emulation_is_transparent() {
        let model = tiny_model(1);
        let x = sample(2);
        let native = models::forward_logits(&model, x.clone());
        let ge = GoldenEye::parse("fp32").unwrap();
        let emulated = ge.run(&model, x);
        assert!(native.allclose(&emulated, 1e-6), "FP32 emulation must be lossless");
    }

    #[test]
    fn low_precision_changes_logits() {
        let model = tiny_model(1);
        let x = sample(2);
        let native = models::forward_logits(&model, x.clone());
        let ge = GoldenEye::parse("fp:e2m2").unwrap();
        let emulated = ge.run(&model, x);
        assert!(!native.allclose(&emulated, 1e-6), "e2m2 should perturb logits");
        assert!(emulated.all_finite());
    }

    #[test]
    fn fused_hook_path_is_bit_identical_to_two_pass() {
        let model = tiny_model(1);
        let x = sample(2);
        // fp:e4m3 has an elementwise quantizer (fused path taken); bfp does
        // not (both runs take the two-pass route — the toggle is inert).
        for spec in ["fp:e4m3", "bfp:e5m5:b16"] {
            let ge = GoldenEye::parse(spec).unwrap();
            set_fused_quantize(true);
            let fused = ge.run(&model, x.clone());
            set_fused_quantize(false);
            let two_pass = ge.run(&model, x.clone());
            set_fused_quantize(true);
            assert_eq!(fused.as_slice().len(), two_pass.as_slice().len(), "{spec}: shape mismatch");
            for (i, (a, b)) in fused.as_slice().iter().zip(two_pass.as_slice()).enumerate() {
                assert!(
                    a.to_bits() == b.to_bits() || (a.is_nan() && b.is_nan()),
                    "{spec} logit {i}: fused {a} vs two-pass {b}"
                );
            }
        }
    }

    #[test]
    fn discover_layers_conv_linear_default() {
        let model = tiny_model(1);
        let ge = GoldenEye::parse("fp16").unwrap();
        let layers = ge.discover_layers(&model, sample(2));
        // tiny resnet: stem conv + 2 blocks × 2 convs + 1 downsample conv
        // + head linear = 1 + 4 + 1 + 1 = 7.
        assert_eq!(layers.len(), 7);
        assert!(layers.iter().all(|l| matches!(l.kind, LayerKind::Conv | LayerKind::Linear)));
        // Indices are execution-ordered (global hook-point counters, so
        // strictly increasing but not necessarily contiguous).
        for w in layers.windows(2) {
            assert!(w[0].index < w[1].index);
        }
    }

    #[test]
    fn all_filter_sees_more_layers() {
        let model = tiny_model(1);
        let ge = GoldenEye::parse("fp16").unwrap().with_filter(LayerFilter::All);
        let all = ge.discover_layers(&model, sample(2));
        let ge2 = GoldenEye::parse("fp16").unwrap();
        let convlinear = ge2.discover_layers(&model, sample(2));
        assert!(all.len() > convlinear.len());
    }

    #[test]
    fn injection_is_deterministic_per_seed() {
        let model = tiny_model(3);
        let x = sample(4);
        let ge = GoldenEye::parse("fp:e4m3").unwrap();
        let layers = ge.discover_layers(&model, x.clone());
        let plan = InjectionPlan::single(layers[2].index, SiteKind::Value);
        let (l1, r1) = ge.run_with_injection(&model, x.clone(), plan, 99);
        let (l2, r2) = ge.run_with_injection(&model, x, plan, 99);
        assert_eq!(l1, l2);
        assert_eq!(r1, r2);
        assert!(r1.is_some());
    }

    #[test]
    fn injection_record_names_right_layer() {
        let model = tiny_model(3);
        let x = sample(4);
        let ge = GoldenEye::parse("int:8").unwrap();
        let layers = ge.discover_layers(&model, x.clone());
        let target = layers[1].index;
        let plan = InjectionPlan::single(target, SiteKind::Metadata);
        let (_, rec) = ge.run_with_injection(&model, x, plan, 5);
        match rec.expect("injection must fire") {
            InjectionRecord::Metadata { layer, .. } => assert_eq!(layer.index, target),
            other => panic!("expected metadata record, got {other:?}"),
        }
    }

    #[test]
    fn plan_beyond_layer_count_never_fires() {
        let model = tiny_model(3);
        let x = sample(4);
        let ge = GoldenEye::parse("fp16").unwrap();
        let plan = InjectionPlan::single(999, SiteKind::Value);
        let (_, rec) = ge.run_with_injection(&model, x, plan, 5);
        assert!(rec.is_none());
    }

    #[test]
    fn range_detector_clamps_faulty_runs() {
        let model = tiny_model(7);
        let x = sample(8);
        let ge = GoldenEye::parse("fp16").unwrap().with_range_detector(true);
        ge.profile_ranges(&model, std::slice::from_ref(&x));
        assert!(!ge.range_profile().is_empty());
        // Find a seed whose injection produces a huge value without the
        // detector, then verify the detector tames it.
        let plain = GoldenEye::parse("fp16").unwrap();
        let plan = InjectionPlan::single(0, SiteKind::Value);
        let mut tamed = 0;
        for seed in 0..40 {
            let (lf, _) = plain.run_with_injection(&model, x.clone(), plan, seed);
            let (ld, _) = ge.run_with_injection(&model, x.clone(), plan, seed);
            assert!(ld.all_finite(), "detector output must be finite");
            if lf.max_abs() > ld.max_abs() {
                tamed += 1;
            }
        }
        assert!(tamed > 0, "detector never reduced corruption over 40 seeds");
    }

    #[test]
    fn weight_quantization_and_snapshot_restore() {
        let model = tiny_model(11);
        let x = sample(12);
        let before = models::forward_logits(&model, x.clone());
        let snap = ParamSnapshot::capture(&model);
        let ge = GoldenEye::parse("fp:e3m2").unwrap();
        let touched = ge.quantize_weights(&model);
        assert!(touched >= 6, "should quantize all conv/linear weights");
        let after = models::forward_logits(&model, x.clone());
        assert!(!before.allclose(&after, 1e-7), "weight quantisation must act");
        snap.restore(&model);
        let restored = models::forward_logits(&model, x);
        assert!(before.allclose(&restored, 0.0), "snapshot restore must be exact");
    }

    #[test]
    fn faulty_training_hook_fires_proportionally() {
        let model = tiny_model(29);
        let hook = Arc::new(FaultyTrainingHook::parse("int:8", 1.0, 1).unwrap());
        let mut ctx = nn::Ctx::training();
        ctx.add_hook(hook.clone());
        let x = ctx.input(sample(30));
        model.forward(&x, &mut ctx);
        // p = 1.0 → every instrumented layer fires.
        assert_eq!(hook.injections_fired(), 7);
        let silent = Arc::new(FaultyTrainingHook::parse("int:8", 0.0, 1).unwrap());
        let mut ctx = nn::Ctx::training();
        ctx.add_hook(silent.clone());
        let x = ctx.input(sample(30));
        model.forward(&x, &mut ctx);
        assert_eq!(silent.injections_fired(), 0);
    }

    #[test]
    fn faulty_training_still_backpropagates() {
        let model = tiny_model(31);
        let hook = Arc::new(FaultyTrainingHook::parse("fp:e4m3", 0.5, 2).unwrap());
        let mut ctx = nn::Ctx::training();
        ctx.add_hook(hook);
        let x = ctx.input(sample(32));
        let logits = model.forward(&x, &mut ctx);
        let loss = logits.cross_entropy(&[0, 1]);
        let grads = loss.backward();
        for (p, v) in ctx.bindings() {
            assert!(grads.get(v).is_some(), "no grad for {}", p.name());
        }
    }

    #[test]
    fn multi_bit_upsets_are_at_least_as_damaging_on_average() {
        let model = tiny_model(23);
        let x = sample(24);
        let ge = GoldenEye::parse("int:8").unwrap();
        let layers = ge.discover_layers(&model, x.clone());
        let golden = ge.run(&model, x.clone());
        let damage = |bits: u32| {
            let mut total = 0.0f32;
            for seed in 0..30 {
                let plan = InjectionPlan::multi(layers[0].index, SiteKind::Value, bits);
                let (faulty, rec) = ge.run_with_injection(&model, x.clone(), plan, seed);
                assert!(rec.is_some());
                total += tensor::ops::sub(&golden, &faulty).map(f32::abs).sum_all();
            }
            total
        };
        let single = damage(1);
        let triple = damage(3);
        assert!(
            triple >= single * 0.5,
            "3-bit upsets ({triple}) unexpectedly tiny vs single ({single})"
        );
        assert!(triple > 0.0);
    }

    #[test]
    fn multi_bit_flip_record_is_deterministic() {
        let model = tiny_model(23);
        let x = sample(24);
        let ge = GoldenEye::parse("fp16").unwrap();
        let layers = ge.discover_layers(&model, x.clone());
        let plan = InjectionPlan::multi(layers[1].index, SiteKind::Value, 4);
        let (a, ra) = ge.run_with_injection(&model, x.clone(), plan, 77);
        let (b, rb) = ge.run_with_injection(&model, x, plan, 77);
        assert_eq!(a, b);
        assert_eq!(ra, rb);
    }

    #[test]
    fn mixed_precision_override_applies_per_layer() {
        let model = tiny_model(17);
        let x = sample(18);
        // FP32 everywhere is lossless…
        let pure = GoldenEye::parse("fp32").unwrap();
        let lossless = pure.run(&model, x.clone());
        // …but overriding one layer with a 4-bit float perturbs the output.
        let layers = pure.discover_layers(&model, x.clone());
        let mixed = GoldenEye::parse("fp32").unwrap().with_layer_format(
            layers[1].index,
            "fp:e2m1".parse::<formats::FormatSpec>().unwrap().build(),
        );
        let perturbed = mixed.run(&model, x.clone());
        assert!(!lossless.allclose(&perturbed, 1e-7), "override had no effect");
        // And it is milder than quantising every layer to 4 bits.
        let all4 = GoldenEye::parse("fp:e2m1").unwrap().run(&model, x.clone());
        let d_mixed = tensor::ops::sub(&lossless, &perturbed).map(f32::abs).sum_all();
        let d_all = tensor::ops::sub(&lossless, &all4).map(f32::abs).sum_all();
        assert!(d_mixed < d_all, "single-layer override should hurt less");
        assert_eq!(mixed.format_for_layer(layers[1].index).name(), "fp_e2m1");
        assert_eq!(mixed.format_for_layer(layers[0].index).name(), "fp_e8m23");
    }

    #[test]
    fn mixed_precision_injection_uses_layer_format() {
        let model = tiny_model(19);
        let x = sample(20);
        let pure = GoldenEye::parse("fp32").unwrap();
        let layers = pure.discover_layers(&model, x.clone());
        let target = layers[0].index;
        // Override the target layer with INT8 (metadata-capable); the
        // default FP32 has no metadata, so a metadata injection only
        // works because the per-layer format is used.
        let mixed = GoldenEye::parse("fp32")
            .unwrap()
            .with_layer_format(target, Box::new(formats::IntQuant::new(8)));
        let plan = InjectionPlan::single(target, SiteKind::Metadata);
        let (_, rec) = mixed.run_with_injection(&model, x, plan, 3);
        assert!(matches!(rec, Some(InjectionRecord::Metadata { .. })));
    }

    #[test]
    fn weight_fault_injection() {
        let model = tiny_model(13);
        let ge = GoldenEye::parse("fp16").unwrap();
        let snap = ParamSnapshot::capture(&model);
        let flip = ge.inject_weight_fault(&model, "head.weight", 0, 0);
        let flip = flip.expect("head.weight exists");
        assert_ne!(flip.old, flip.new);
        snap.restore(&model);
        assert!(ge.inject_weight_fault(&model, "nonexistent", 0, 0).is_none());
    }

    fn assert_bits_equal(a: &Tensor, b: &Tensor, what: &str) {
        assert_eq!(a.dims(), b.dims(), "{what}: shape mismatch");
        for (i, (x, y)) in a.as_slice().iter().zip(b.as_slice().iter()).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "{what}: element {i} differs");
        }
    }

    #[test]
    fn clean_run_golden_matches_whole_forward() {
        let model = tiny_model(21);
        let x = sample(22);
        let ge = GoldenEye::parse("fp:e4m3").unwrap();
        let clean = ge.capture_clean_run(&model, x.clone());
        assert_bits_equal(clean.golden(), &ge.run(&model, x), "golden logits");
        assert!(clean.layers_seen() >= 7);
        // Offsets are sorted and start at 0, so layer→segment lookup works.
        assert_eq!(clean.seg_layer_offset[0], 0);
        assert!(clean.seg_layer_offset.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn replay_batch_is_bit_identical_to_per_trial_runs() {
        let model = tiny_model(23);
        let x = sample(24);
        for spec in ["fp:e4m3", "bfp:e5m2:b8", "int:8"] {
            let ge = GoldenEye::parse(spec).unwrap();
            let layers = ge.discover_layers(&model, x.clone());
            let clean = ge.capture_clean_run(&model, x.clone());
            // A shallow and a deep layer exercise different checkpoints.
            for &target in &[layers[1].index, layers[layers.len() - 1].index] {
                let plan = InjectionPlan::single(target, SiteKind::Value);
                let seeds = [101u64, 102, 103];
                let batch = ge.run_replay_batch(&model, &clean, plan, BitSampler::Uniform, &seeds);
                assert_eq!(batch.len(), seeds.len());
                for (&seed, (logits, record)) in seeds.iter().zip(&batch) {
                    let (sl, sr) = ge.run_with_injection(&model, x.clone(), plan, seed);
                    assert_bits_equal(logits, &sl, &format!("{spec} seed {seed}"));
                    assert_eq!(format!("{record:?}"), format!("{sr:?}"), "{spec} seed {seed}");
                }
            }
        }
    }

    #[test]
    fn replay_batch_of_one_matches_serial_path() {
        let model = tiny_model(25);
        let x = sample(26);
        let ge = GoldenEye::parse("afp:e4m3").unwrap();
        let layers = ge.discover_layers(&model, x.clone());
        let clean = ge.capture_clean_run(&model, x.clone());
        let plan = InjectionPlan::single(layers[2].index, SiteKind::Value);
        let batch = ge.run_replay_batch(&model, &clean, plan, BitSampler::Uniform, &[7]);
        let (sl, sr) = ge.run_with_injection(&model, x, plan, 7);
        assert_bits_equal(&batch[0].0, &sl, "batch of one");
        assert_eq!(format!("{:?}", batch[0].1), format!("{sr:?}"));
    }

    #[test]
    fn replay_batch_stratified_matches_serial_stratified() {
        let model = tiny_model(27);
        let x = sample(28);
        let ge = GoldenEye::parse("fp:e4m3").unwrap();
        let layers = ge.discover_layers(&model, x.clone());
        let clean = ge.capture_clean_run(&model, x.clone());
        let plan = InjectionPlan::single(layers[1].index, SiteKind::Value);
        let sampler = BitSampler::Stratified { critical_mass: 0.75 };
        let batch = ge.run_replay_batch(&model, &clean, plan, sampler, &[11, 12]);
        for (&seed, (logits, record)) in [11u64, 12].iter().zip(&batch) {
            let (sl, sr) = ge.run_with_injection_sampled(&model, x.clone(), plan, seed, sampler);
            assert_bits_equal(logits, &sl, &format!("stratified seed {seed}"));
            assert_eq!(format!("{record:?}"), format!("{sr:?}"));
        }
    }

    #[test]
    fn replay_batch_metadata_faults_match_serial() {
        let model = tiny_model(29);
        let x = sample(30);
        let ge = GoldenEye::parse("bfp:e5m2:b8").unwrap();
        let layers = ge.discover_layers(&model, x.clone());
        let clean = ge.capture_clean_run(&model, x.clone());
        let plan = InjectionPlan::single(layers[3].index, SiteKind::Metadata);
        let batch = ge.run_replay_batch(&model, &clean, plan, BitSampler::Uniform, &[31, 32]);
        for (&seed, (logits, record)) in [31u64, 32].iter().zip(&batch) {
            let (sl, sr) = ge.run_with_injection(&model, x.clone(), plan, seed);
            assert_bits_equal(logits, &sl, &format!("metadata seed {seed}"));
            assert_eq!(format!("{record:?}"), format!("{sr:?}"));
        }
    }

    #[test]
    fn segment_for_layer_picks_deepest_checkpoint() {
        let clean = CleanRun {
            seg_inputs: vec![],
            seg_layer_offset: vec![0, 1, 3, 5],
            total_layers: 7,
            golden: Tensor::zeros([1, 1]),
        };
        assert_eq!(clean.segment_for_layer(0), 0);
        assert_eq!(clean.segment_for_layer(1), 1);
        assert_eq!(clean.segment_for_layer(2), 1);
        assert_eq!(clean.segment_for_layer(3), 2);
        assert_eq!(clean.segment_for_layer(4), 2);
        assert_eq!(clean.segment_for_layer(6), 3);
        assert_eq!(clean.layers_seen(), 7);
    }
}
