//! The GoldenEye simulator: instruments a model with number-format
//! emulation hooks, optional fault injection, and the range detector.
//!
//! Mirrors the paper's Figure 2 pipeline: read each layer's FP32 output →
//! convert to the emulated format (extracting hardware metadata) → maybe
//! flip a bit in a value or a metadata register → write the result back as
//! the nearest FP32 value → continue the inference.

use formats::NumberFormat;
use inject::{
    flip_metadata, flip_value, Injector, MetadataFlip, RangeProfile, SiteKind, ValueFlip,
};
use nn::{Ctx, ForwardHook, LayerInfo, LayerKind, Module, Param};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;
use tensor::Tensor;

/// Hot-path metrics for the emulation hook, resolved once. Every timing
/// below is gated on [`trace::recording`] — with tracing off the hook
/// pays a single relaxed atomic load and no clock reads.
struct HookMetrics {
    /// Per-call FP32 → format conversion time.
    quantize_ns: &'static trace::Metric,
    /// Per-call format → FP32 conversion time.
    dequantize_ns: &'static trace::Metric,
    /// Elements converted (ratio `sum(ns) / sum(elements)` is the
    /// format-conversion cost in ns/element).
    convert_elems: &'static trace::Metric,
    /// Time a hook spent blocked on contended internal locks.
    lock_wait_ns: &'static trace::Metric,
}

fn hook_metrics() -> &'static HookMetrics {
    static M: OnceLock<HookMetrics> = OnceLock::new();
    M.get_or_init(|| HookMetrics {
        quantize_ns: trace::histogram("hook.quantize_ns"),
        dequantize_ns: trace::histogram("hook.dequantize_ns"),
        convert_elems: trace::counter("hook.convert_elems"),
        lock_wait_ns: trace::histogram("hook.lock_wait_ns"),
    })
}

/// Locks a mutex, ignoring poisoning: hook state is only ever replaced
/// wholesale, so a panicked trial cannot leave it torn.
///
/// When tracing is on, time spent blocked on a contended lock is recorded
/// in the `hook.lock_wait_ns` histogram (the uncontended `try_lock`
/// fast path costs nothing extra).
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match m.try_lock() {
        Ok(g) => return g,
        Err(std::sync::TryLockError::Poisoned(p)) => return p.into_inner(),
        Err(std::sync::TryLockError::WouldBlock) => {}
    }
    if trace::recording() {
        let t0 = Instant::now();
        let g = m.lock().unwrap_or_else(|p| p.into_inner());
        hook_metrics().lock_wait_ns.record(t0.elapsed().as_nanos() as u64);
        g
    } else {
        m.lock().unwrap_or_else(|p| p.into_inner())
    }
}

/// Which layer kinds get instrumented.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LayerFilter {
    /// CONV and LINEAR only — the paper's default (§V-B).
    ConvLinear,
    /// Every layer type.
    All,
}

impl LayerFilter {
    /// Whether `kind` is instrumented under this filter.
    pub fn matches(&self, kind: LayerKind) -> bool {
        match self {
            LayerFilter::ConvLinear => matches!(kind, LayerKind::Conv | LayerKind::Linear),
            LayerFilter::All => true,
        }
    }
}

/// Where to inject during an instrumented run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InjectionPlan {
    /// Index of the instrumented layer to corrupt (execution order among
    /// *instrumented* layers).
    pub layer: usize,
    /// Value-bit or metadata-bit flip.
    pub kind: SiteKind,
    /// Number of distinct bits to flip in the chosen value/word (1 =
    /// the classic single-bit model; >1 models multi-bit upsets).
    pub bits: u32,
}

impl InjectionPlan {
    /// A single-bit fault at `layer`.
    pub fn single(layer: usize, kind: SiteKind) -> Self {
        InjectionPlan { layer, kind, bits: 1 }
    }

    /// A `bits`-bit multi-bit upset at `layer`.
    ///
    /// # Panics
    ///
    /// Panics if `bits == 0`.
    pub fn multi(layer: usize, kind: SiteKind, bits: u32) -> Self {
        assert!(bits > 0, "a fault must flip at least one bit");
        InjectionPlan { layer, kind, bits }
    }
}

/// What an injection actually did.
#[derive(Debug, Clone, PartialEq)]
pub enum InjectionRecord {
    /// A data-value flip.
    Value {
        /// The instrumented layer it landed in.
        layer: LayerInfo,
        /// The executed flip.
        flip: ValueFlip,
    },
    /// A metadata-register flip.
    Metadata {
        /// The instrumented layer it landed in.
        layer: LayerInfo,
        /// The executed flip.
        flip: MetadataFlip,
    },
}

/// Range-detector mode for a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RangeMode {
    Off,
    Profile,
    Detect,
}

/// The number-format emulation hook (with optional injection), installed
/// on every instrumented layer.
struct EmulationHook {
    formats: Arc<FormatTable>,
    filter: LayerFilter,
    plan: Option<InjectionPlan>,
    injector: Mutex<Injector>,
    record: Mutex<Option<InjectionRecord>>,
    range: Arc<RangeProfile>,
    range_mode: RangeMode,
}

/// Default format plus per-layer overrides (mixed precision).
struct FormatTable {
    default: Arc<dyn NumberFormat>,
    per_layer: std::collections::HashMap<usize, Arc<dyn NumberFormat>>,
}

impl FormatTable {
    fn resolve(&self, layer: usize) -> &dyn NumberFormat {
        self.per_layer.get(&layer).map(Arc::as_ref).unwrap_or(self.default.as_ref())
    }
}

impl ForwardHook for EmulationHook {
    fn on_output(&self, layer: &LayerInfo, output: &Tensor) -> Option<Tensor> {
        let format = self.formats.resolve(layer.index);
        let timing = trace::recording().then(Instant::now);
        let mut q = format.real_to_format_tensor(output);
        if let Some(t0) = timing {
            let m = hook_metrics();
            m.quantize_ns.record(t0.elapsed().as_nanos() as u64);
            m.convert_elems.add(output.numel() as u64);
        }
        if let Some(plan) = &self.plan {
            if plan.layer == layer.index {
                let mut inj = lock(&self.injector);
                let record = match plan.kind {
                    SiteKind::Value => {
                        let numel = q.values.numel();
                        let width = format.bit_width() as usize;
                        let f = inj.sample_value_fault(numel, width);
                        let flip = if plan.bits <= 1 {
                            flip_value(format, &mut q, f.index, f.bit)
                        } else {
                            let bits = sample_distinct_bits(&mut inj, width, plan.bits, f.bit);
                            inject::flip_value_multi(format, &mut q, f.index, &bits)
                        };
                        InjectionRecord::Value { layer: layer.clone(), flip }
                    }
                    SiteKind::Metadata => {
                        let words = q.meta.word_count();
                        let width = q.meta.word_width();
                        let f = inj.sample_metadata_fault(words, width);
                        let mut flip = flip_metadata(format, &mut q, f.index, f.bit);
                        for &b in
                            sample_distinct_bits(&mut inj, width, plan.bits, f.bit).iter().skip(1)
                        {
                            flip = flip_metadata(format, &mut q, f.index, b);
                        }
                        InjectionRecord::Metadata { layer: layer.clone(), flip }
                    }
                };
                *lock(&self.record) = Some(record);
            }
        }
        let timing = trace::recording().then(Instant::now);
        let values = format.format_to_real_tensor(&q);
        if let Some(t0) = timing {
            hook_metrics().dequantize_ns.record(t0.elapsed().as_nanos() as u64);
        }
        let values = match self.range_mode {
            RangeMode::Off => values,
            RangeMode::Profile => {
                self.range.observe(layer.index, &values);
                values
            }
            RangeMode::Detect => self.range.clamp(layer.index, &values),
        };
        Some(values)
    }

    fn applies_to(&self, kind: LayerKind) -> bool {
        self.filter.matches(kind)
    }
}

/// Samples `count` distinct bit positions in `0..width`, the first being
/// `first` (already drawn by the caller).
fn sample_distinct_bits(inj: &mut Injector, width: usize, count: u32, first: usize) -> Vec<usize> {
    use rand::seq::SliceRandom;
    let count = (count as usize).min(width);
    let mut rest: Vec<usize> = (0..width).filter(|&b| b != first).collect();
    rest.shuffle(inj.rng());
    let mut bits = vec![first];
    bits.extend(rest.into_iter().take(count - 1));
    bits
}

/// Hook that only records which layers would be instrumented.
struct DiscoveryHook {
    filter: LayerFilter,
    layers: Mutex<Vec<LayerInfo>>,
}

impl ForwardHook for DiscoveryHook {
    fn on_output(&self, layer: &LayerInfo, _output: &Tensor) -> Option<Tensor> {
        lock(&self.layers).push(layer.clone());
        None
    }

    fn applies_to(&self, kind: LayerKind) -> bool {
        self.filter.matches(kind)
    }
}

/// The GoldenEye functional simulator for one number format.
///
/// # Examples
///
/// ```
/// use goldeneye::GoldenEye;
/// use models::{ResNet, ResNetConfig};
/// use rand::{rngs::StdRng, SeedableRng};
/// use tensor::Tensor;
///
/// let mut rng = StdRng::seed_from_u64(0);
/// let model = ResNet::new(ResNetConfig::tiny(4), &mut rng);
/// let ge = GoldenEye::parse("fp:e4m3").unwrap();
/// let logits = ge.run(&model, Tensor::zeros([1, 3, 8, 8]));
/// assert_eq!(logits.dims(), &[1, 4]);
/// ```
pub struct GoldenEye {
    format: Arc<dyn NumberFormat>,
    layer_formats: std::collections::HashMap<usize, Arc<dyn NumberFormat>>,
    filter: LayerFilter,
    range: Arc<RangeProfile>,
    detect: bool,
}

impl std::fmt::Debug for GoldenEye {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "GoldenEye(format={}, overrides={}, filter={:?}, detect={})",
            self.format.name(),
            self.layer_formats.len(),
            self.filter,
            self.detect
        )
    }
}

impl GoldenEye {
    /// Creates a simulator for `format` with the paper's default layer
    /// filter (CONV + LINEAR) and the range detector disabled.
    pub fn new(format: Box<dyn NumberFormat>) -> Self {
        GoldenEye {
            format: Arc::from(format),
            layer_formats: std::collections::HashMap::new(),
            filter: LayerFilter::ConvLinear,
            range: Arc::new(RangeProfile::new()),
            detect: false,
        }
    }

    /// Creates a simulator from a format spec string (see
    /// [`formats::FormatSpec`]).
    ///
    /// # Errors
    ///
    /// Returns the parse error for invalid specs.
    pub fn parse(spec: &str) -> Result<Self, formats::ParseFormatError> {
        Ok(Self::new(spec.parse::<formats::FormatSpec>()?.build()))
    }

    /// Sets the layer filter.
    pub fn with_filter(mut self, filter: LayerFilter) -> Self {
        self.filter = filter;
        self
    }

    /// Enables the range detector (after [`GoldenEye::profile_ranges`] has
    /// been called, faulty activations are clamped into profiled ranges).
    pub fn with_range_detector(mut self, on: bool) -> Self {
        self.detect = on;
        self
    }

    /// Overrides the format for one instrumented layer (mixed precision —
    /// an extension beyond the paper, which lists mixed-precision support
    /// as future work in §V-C). Layer indices are those reported by
    /// [`GoldenEye::discover_layers`].
    pub fn with_layer_format(mut self, layer: usize, format: Box<dyn NumberFormat>) -> Self {
        self.layer_formats.insert(layer, Arc::from(format));
        self
    }

    /// The format used for a given instrumented layer (the default unless
    /// overridden).
    pub fn format_for_layer(&self, layer: usize) -> &dyn NumberFormat {
        self.layer_formats.get(&layer).map(Arc::as_ref).unwrap_or(self.format.as_ref())
    }

    /// The emulated format.
    pub fn format(&self) -> &dyn NumberFormat {
        self.format.as_ref()
    }

    /// Shared handle to the default format (for custom hooks).
    pub(crate) fn format_arc(&self) -> Arc<dyn NumberFormat> {
        self.format.clone()
    }

    /// Lists the layers that will be instrumented for `model` (by running
    /// one discovery pass on `sample`).
    pub fn discover_layers(&self, model: &dyn Module, sample: Tensor) -> Vec<LayerInfo> {
        let hook = Arc::new(DiscoveryHook { filter: self.filter, layers: Mutex::new(Vec::new()) });
        let mut ctx = Ctx::inference();
        ctx.add_hook(hook.clone());
        let x = ctx.input(sample);
        model.forward(&x, &mut ctx);
        let layers = lock(&hook.layers).clone();
        layers
    }

    /// Runs an emulated inference (no injection) and returns the logits.
    pub fn run(&self, model: &dyn Module, x: Tensor) -> Tensor {
        self.run_inner(model, x, None, 0).0
    }

    /// Runs an emulated inference with one fault injected per `plan`,
    /// sampling the fault location from `seed`.
    ///
    /// Returns the logits and the record of what was flipped (None if the
    /// planned layer never executed).
    pub fn run_with_injection(
        &self,
        model: &dyn Module,
        x: Tensor,
        plan: InjectionPlan,
        seed: u64,
    ) -> (Tensor, Option<InjectionRecord>) {
        self.run_inner(model, x, Some(plan), seed)
    }

    fn format_table(&self) -> Arc<FormatTable> {
        Arc::new(FormatTable {
            default: self.format.clone(),
            per_layer: self.layer_formats.clone(),
        })
    }

    fn run_inner(
        &self,
        model: &dyn Module,
        x: Tensor,
        plan: Option<InjectionPlan>,
        seed: u64,
    ) -> (Tensor, Option<InjectionRecord>) {
        let hook = Arc::new(EmulationHook {
            formats: self.format_table(),
            filter: self.filter,
            plan,
            injector: Mutex::new(Injector::new(seed)),
            record: Mutex::new(None),
            range: self.range.clone(),
            range_mode: if self.detect && !self.range.is_empty() {
                RangeMode::Detect
            } else {
                RangeMode::Off
            },
        });
        let mut ctx = Ctx::inference();
        ctx.add_hook(hook.clone());
        let xv = ctx.input(x);
        let logits = model.forward(&xv, &mut ctx).value();
        let record = lock(&hook.record).clone();
        (logits, record)
    }

    /// Profiles per-layer activation ranges on clean emulated runs, for
    /// the range detector.
    ///
    /// When tracing is on, emits a `range_profile` event carrying the
    /// resulting `(layer, min, max)` snapshot.
    pub fn profile_ranges(&self, model: &dyn Module, batches: &[Tensor]) {
        let _span = trace::span!("profile_ranges", batches = batches.len());
        for x in batches {
            let hook = Arc::new(EmulationHook {
                formats: self.format_table(),
                filter: self.filter,
                plan: None,
                injector: Mutex::new(Injector::new(0)),
                record: Mutex::new(None),
                range: self.range.clone(),
                range_mode: RangeMode::Profile,
            });
            let mut ctx = Ctx::inference();
            ctx.add_hook(hook);
            let xv = ctx.input(x.clone());
            model.forward(&xv, &mut ctx);
        }
        if trace::recording() {
            let ranges: Vec<trace::Json> = self
                .range
                .snapshot()
                .into_iter()
                .map(|(layer, lo, hi)| {
                    trace::Json::Arr(vec![
                        trace::Json::from(layer),
                        trace::Json::from_f32(lo),
                        trace::Json::from_f32(hi),
                    ])
                })
                .collect();
            trace::emit(
                trace::Level::Debug,
                "range_profile",
                vec![
                    ("format", trace::Json::from(self.format.name())),
                    ("layers", trace::Json::from(ranges.len())),
                    ("ranges", trace::Json::Arr(ranges)),
                ],
            );
        }
    }

    /// The range profile built by [`GoldenEye::profile_ranges`].
    pub fn range_profile(&self) -> &RangeProfile {
        &self.range
    }

    /// Quantises the model's weight tensors (parameters named `*.weight`,
    /// i.e. conv/linear kernels) into the emulated format, in place.
    ///
    /// The paper performs weight conversion offline for the same reason —
    /// it needs no runtime hook. Returns the number of parameters touched.
    pub fn quantize_weights(&self, model: &dyn Module) -> usize {
        let mut touched = 0;
        model.visit_params(&mut |p: &Param| {
            if p.name().ends_with(".weight") {
                let q = self.format.real_to_format_tensor(&p.get());
                p.set(self.format.format_to_real_tensor(&q));
                touched += 1;
            }
        });
        touched
    }

    /// Injects one bit flip into a stored weight (offline weight
    /// injection). Returns the record, or `None` if no parameter matches
    /// `param_name`.
    ///
    /// # Panics
    ///
    /// Panics if `element`/`bit` is out of range for the parameter/format.
    pub fn inject_weight_fault(
        &self,
        model: &dyn Module,
        param_name: &str,
        element: usize,
        bit: usize,
    ) -> Option<ValueFlip> {
        let mut result = None;
        model.visit_params(&mut |p: &Param| {
            if p.name() == param_name && result.is_none() {
                let mut q = self.format.real_to_format_tensor(&p.get());
                let flip = flip_value(self.format.as_ref(), &mut q, element, bit);
                p.set(self.format.format_to_real_tensor(&q));
                result = Some(flip);
            }
        });
        result
    }
}

/// A forward hook for **fault-aware training** (§V-D: GoldenEye "can
/// potentially be used to build resilient models via novel training
/// routines"): on every instrumented layer of every training pass, the
/// output is quantised into the format and, with probability
/// `fault_prob`, one random value bit is flipped.
///
/// Install it on a training [`Ctx`]; gradients flow through the
/// straight-through estimator, so the model learns under the fault model
/// it will face at inference.
///
/// # Examples
///
/// ```
/// use goldeneye::FaultyTrainingHook;
/// use nn::Ctx;
/// use std::sync::Arc;
///
/// let hook = FaultyTrainingHook::parse("int:8", 0.1, 42)?;
/// let mut ctx = Ctx::training();
/// ctx.add_hook(Arc::new(hook));
/// # Ok::<(), formats::ParseFormatError>(())
/// ```
pub struct FaultyTrainingHook {
    format: Arc<dyn NumberFormat>,
    injector: Mutex<Injector>,
    fault_prob: f64,
    injections: Mutex<u64>,
}

impl std::fmt::Debug for FaultyTrainingHook {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "FaultyTrainingHook(format={}, p={}, fired={})",
            self.format.name(),
            self.fault_prob,
            lock(&self.injections)
        )
    }
}

impl FaultyTrainingHook {
    /// Creates a hook that quantises into `format` and injects one random
    /// value-bit flip per instrumented layer with probability
    /// `fault_prob`.
    ///
    /// # Panics
    ///
    /// Panics if `fault_prob ∉ [0, 1]`.
    pub fn new(format: Box<dyn NumberFormat>, fault_prob: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&fault_prob), "fault_prob must be a probability");
        FaultyTrainingHook {
            format: Arc::from(format),
            injector: Mutex::new(Injector::new(seed)),
            fault_prob,
            injections: Mutex::new(0),
        }
    }

    /// Creates the hook from a format spec string.
    ///
    /// # Errors
    ///
    /// Returns the parse error for invalid specs.
    pub fn parse(
        spec: &str,
        fault_prob: f64,
        seed: u64,
    ) -> Result<Self, formats::ParseFormatError> {
        Ok(Self::new(spec.parse::<formats::FormatSpec>()?.build(), fault_prob, seed))
    }

    /// Number of faults injected so far.
    pub fn injections_fired(&self) -> u64 {
        *lock(&self.injections)
    }
}

impl ForwardHook for FaultyTrainingHook {
    fn on_output(&self, _layer: &LayerInfo, output: &Tensor) -> Option<Tensor> {
        let mut q = self.format.real_to_format_tensor(output);
        let mut inj = lock(&self.injector);
        if rand::Rng::gen_bool(inj.rng(), self.fault_prob) {
            let f = inj.sample_value_fault(q.values.numel(), self.format.bit_width() as usize);
            flip_value(self.format.as_ref(), &mut q, f.index, f.bit);
            *lock(&self.injections) += 1;
        }
        Some(self.format.format_to_real_tensor(&q))
    }
}

/// A snapshot of all model parameters, for restoring after weight
/// quantisation or weight-fault experiments.
#[derive(Debug)]
pub struct ParamSnapshot {
    values: Vec<(String, Tensor)>,
}

impl ParamSnapshot {
    /// Captures the current values of every parameter.
    pub fn capture(model: &dyn Module) -> Self {
        let mut values = Vec::new();
        model.visit_params(&mut |p: &Param| values.push((p.name().to_string(), p.get())));
        ParamSnapshot { values }
    }

    /// Restores the captured values (matched positionally by name).
    ///
    /// # Panics
    ///
    /// Panics if the model's parameter set changed since capture.
    pub fn restore(&self, model: &dyn Module) {
        let mut i = 0;
        model.visit_params(&mut |p: &Param| {
            let (name, value) = &self.values[i];
            assert_eq!(p.name(), name, "parameter order changed since snapshot");
            // Overwrite wholesale rather than `Param::set`: restore is the
            // recovery path after a failed trial, and must succeed even if
            // a panicking worker left the current value torn (wrong shape,
            // poisoned lock).
            p.update(|t| *t = value.clone());
            i += 1;
        });
        assert_eq!(i, self.values.len(), "parameter count changed since snapshot");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use models::{ResNet, ResNetConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_model(seed: u64) -> ResNet {
        let mut rng = StdRng::seed_from_u64(seed);
        ResNet::new(ResNetConfig::tiny(4), &mut rng)
    }

    fn sample(seed: u64) -> Tensor {
        let mut rng = StdRng::seed_from_u64(seed);
        Tensor::randn([2, 3, 8, 8], &mut rng)
    }

    #[test]
    fn fp32_emulation_is_transparent() {
        let model = tiny_model(1);
        let x = sample(2);
        let native = models::forward_logits(&model, x.clone());
        let ge = GoldenEye::parse("fp32").unwrap();
        let emulated = ge.run(&model, x);
        assert!(native.allclose(&emulated, 1e-6), "FP32 emulation must be lossless");
    }

    #[test]
    fn low_precision_changes_logits() {
        let model = tiny_model(1);
        let x = sample(2);
        let native = models::forward_logits(&model, x.clone());
        let ge = GoldenEye::parse("fp:e2m2").unwrap();
        let emulated = ge.run(&model, x);
        assert!(!native.allclose(&emulated, 1e-6), "e2m2 should perturb logits");
        assert!(emulated.all_finite());
    }

    #[test]
    fn discover_layers_conv_linear_default() {
        let model = tiny_model(1);
        let ge = GoldenEye::parse("fp16").unwrap();
        let layers = ge.discover_layers(&model, sample(2));
        // tiny resnet: stem conv + 2 blocks × 2 convs + 1 downsample conv
        // + head linear = 1 + 4 + 1 + 1 = 7.
        assert_eq!(layers.len(), 7);
        assert!(layers.iter().all(|l| matches!(l.kind, LayerKind::Conv | LayerKind::Linear)));
        // Indices are execution-ordered (global hook-point counters, so
        // strictly increasing but not necessarily contiguous).
        for w in layers.windows(2) {
            assert!(w[0].index < w[1].index);
        }
    }

    #[test]
    fn all_filter_sees_more_layers() {
        let model = tiny_model(1);
        let ge = GoldenEye::parse("fp16").unwrap().with_filter(LayerFilter::All);
        let all = ge.discover_layers(&model, sample(2));
        let ge2 = GoldenEye::parse("fp16").unwrap();
        let convlinear = ge2.discover_layers(&model, sample(2));
        assert!(all.len() > convlinear.len());
    }

    #[test]
    fn injection_is_deterministic_per_seed() {
        let model = tiny_model(3);
        let x = sample(4);
        let ge = GoldenEye::parse("fp:e4m3").unwrap();
        let layers = ge.discover_layers(&model, x.clone());
        let plan = InjectionPlan::single(layers[2].index, SiteKind::Value);
        let (l1, r1) = ge.run_with_injection(&model, x.clone(), plan, 99);
        let (l2, r2) = ge.run_with_injection(&model, x, plan, 99);
        assert_eq!(l1, l2);
        assert_eq!(r1, r2);
        assert!(r1.is_some());
    }

    #[test]
    fn injection_record_names_right_layer() {
        let model = tiny_model(3);
        let x = sample(4);
        let ge = GoldenEye::parse("int:8").unwrap();
        let layers = ge.discover_layers(&model, x.clone());
        let target = layers[1].index;
        let plan = InjectionPlan::single(target, SiteKind::Metadata);
        let (_, rec) = ge.run_with_injection(&model, x, plan, 5);
        match rec.expect("injection must fire") {
            InjectionRecord::Metadata { layer, .. } => assert_eq!(layer.index, target),
            other => panic!("expected metadata record, got {other:?}"),
        }
    }

    #[test]
    fn plan_beyond_layer_count_never_fires() {
        let model = tiny_model(3);
        let x = sample(4);
        let ge = GoldenEye::parse("fp16").unwrap();
        let plan = InjectionPlan::single(999, SiteKind::Value);
        let (_, rec) = ge.run_with_injection(&model, x, plan, 5);
        assert!(rec.is_none());
    }

    #[test]
    fn range_detector_clamps_faulty_runs() {
        let model = tiny_model(7);
        let x = sample(8);
        let ge = GoldenEye::parse("fp16").unwrap().with_range_detector(true);
        ge.profile_ranges(&model, std::slice::from_ref(&x));
        assert!(!ge.range_profile().is_empty());
        // Find a seed whose injection produces a huge value without the
        // detector, then verify the detector tames it.
        let plain = GoldenEye::parse("fp16").unwrap();
        let plan = InjectionPlan::single(0, SiteKind::Value);
        let mut tamed = 0;
        for seed in 0..40 {
            let (lf, _) = plain.run_with_injection(&model, x.clone(), plan, seed);
            let (ld, _) = ge.run_with_injection(&model, x.clone(), plan, seed);
            assert!(ld.all_finite(), "detector output must be finite");
            if lf.max_abs() > ld.max_abs() {
                tamed += 1;
            }
        }
        assert!(tamed > 0, "detector never reduced corruption over 40 seeds");
    }

    #[test]
    fn weight_quantization_and_snapshot_restore() {
        let model = tiny_model(11);
        let x = sample(12);
        let before = models::forward_logits(&model, x.clone());
        let snap = ParamSnapshot::capture(&model);
        let ge = GoldenEye::parse("fp:e3m2").unwrap();
        let touched = ge.quantize_weights(&model);
        assert!(touched >= 6, "should quantize all conv/linear weights");
        let after = models::forward_logits(&model, x.clone());
        assert!(!before.allclose(&after, 1e-7), "weight quantisation must act");
        snap.restore(&model);
        let restored = models::forward_logits(&model, x);
        assert!(before.allclose(&restored, 0.0), "snapshot restore must be exact");
    }

    #[test]
    fn faulty_training_hook_fires_proportionally() {
        let model = tiny_model(29);
        let hook = Arc::new(FaultyTrainingHook::parse("int:8", 1.0, 1).unwrap());
        let mut ctx = nn::Ctx::training();
        ctx.add_hook(hook.clone());
        let x = ctx.input(sample(30));
        model.forward(&x, &mut ctx);
        // p = 1.0 → every instrumented layer fires.
        assert_eq!(hook.injections_fired(), 7);
        let silent = Arc::new(FaultyTrainingHook::parse("int:8", 0.0, 1).unwrap());
        let mut ctx = nn::Ctx::training();
        ctx.add_hook(silent.clone());
        let x = ctx.input(sample(30));
        model.forward(&x, &mut ctx);
        assert_eq!(silent.injections_fired(), 0);
    }

    #[test]
    fn faulty_training_still_backpropagates() {
        let model = tiny_model(31);
        let hook = Arc::new(FaultyTrainingHook::parse("fp:e4m3", 0.5, 2).unwrap());
        let mut ctx = nn::Ctx::training();
        ctx.add_hook(hook);
        let x = ctx.input(sample(32));
        let logits = model.forward(&x, &mut ctx);
        let loss = logits.cross_entropy(&[0, 1]);
        let grads = loss.backward();
        for (p, v) in ctx.bindings() {
            assert!(grads.get(v).is_some(), "no grad for {}", p.name());
        }
    }

    #[test]
    fn multi_bit_upsets_are_at_least_as_damaging_on_average() {
        let model = tiny_model(23);
        let x = sample(24);
        let ge = GoldenEye::parse("int:8").unwrap();
        let layers = ge.discover_layers(&model, x.clone());
        let golden = ge.run(&model, x.clone());
        let damage = |bits: u32| {
            let mut total = 0.0f32;
            for seed in 0..30 {
                let plan = InjectionPlan::multi(layers[0].index, SiteKind::Value, bits);
                let (faulty, rec) = ge.run_with_injection(&model, x.clone(), plan, seed);
                assert!(rec.is_some());
                total += tensor::ops::sub(&golden, &faulty).map(f32::abs).sum_all();
            }
            total
        };
        let single = damage(1);
        let triple = damage(3);
        assert!(
            triple >= single * 0.5,
            "3-bit upsets ({triple}) unexpectedly tiny vs single ({single})"
        );
        assert!(triple > 0.0);
    }

    #[test]
    fn multi_bit_flip_record_is_deterministic() {
        let model = tiny_model(23);
        let x = sample(24);
        let ge = GoldenEye::parse("fp16").unwrap();
        let layers = ge.discover_layers(&model, x.clone());
        let plan = InjectionPlan::multi(layers[1].index, SiteKind::Value, 4);
        let (a, ra) = ge.run_with_injection(&model, x.clone(), plan, 77);
        let (b, rb) = ge.run_with_injection(&model, x, plan, 77);
        assert_eq!(a, b);
        assert_eq!(ra, rb);
    }

    #[test]
    fn mixed_precision_override_applies_per_layer() {
        let model = tiny_model(17);
        let x = sample(18);
        // FP32 everywhere is lossless…
        let pure = GoldenEye::parse("fp32").unwrap();
        let lossless = pure.run(&model, x.clone());
        // …but overriding one layer with a 4-bit float perturbs the output.
        let layers = pure.discover_layers(&model, x.clone());
        let mixed = GoldenEye::parse("fp32").unwrap().with_layer_format(
            layers[1].index,
            "fp:e2m1".parse::<formats::FormatSpec>().unwrap().build(),
        );
        let perturbed = mixed.run(&model, x.clone());
        assert!(!lossless.allclose(&perturbed, 1e-7), "override had no effect");
        // And it is milder than quantising every layer to 4 bits.
        let all4 = GoldenEye::parse("fp:e2m1").unwrap().run(&model, x.clone());
        let d_mixed = tensor::ops::sub(&lossless, &perturbed).map(f32::abs).sum_all();
        let d_all = tensor::ops::sub(&lossless, &all4).map(f32::abs).sum_all();
        assert!(d_mixed < d_all, "single-layer override should hurt less");
        assert_eq!(mixed.format_for_layer(layers[1].index).name(), "fp_e2m1");
        assert_eq!(mixed.format_for_layer(layers[0].index).name(), "fp_e8m23");
    }

    #[test]
    fn mixed_precision_injection_uses_layer_format() {
        let model = tiny_model(19);
        let x = sample(20);
        let pure = GoldenEye::parse("fp32").unwrap();
        let layers = pure.discover_layers(&model, x.clone());
        let target = layers[0].index;
        // Override the target layer with INT8 (metadata-capable); the
        // default FP32 has no metadata, so a metadata injection only
        // works because the per-layer format is used.
        let mixed = GoldenEye::parse("fp32")
            .unwrap()
            .with_layer_format(target, Box::new(formats::IntQuant::new(8)));
        let plan = InjectionPlan::single(target, SiteKind::Metadata);
        let (_, rec) = mixed.run_with_injection(&model, x, plan, 3);
        assert!(matches!(rec, Some(InjectionRecord::Metadata { .. })));
    }

    #[test]
    fn weight_fault_injection() {
        let model = tiny_model(13);
        let ge = GoldenEye::parse("fp16").unwrap();
        let snap = ParamSnapshot::capture(&model);
        let flip = ge.inject_weight_fault(&model, "head.weight", 0, 0);
        let flip = flip.expect("head.weight exists");
        assert_ne!(flip.old, flip.new);
        snap.restore(&model);
        assert!(ge.inject_weight_fault(&model, "nonexistent", 0, 0).is_none());
    }
}
