//! Per-bit-position vulnerability analysis.
//!
//! §IV-C of the paper drills into *which* bit a flip lands in: exponent
//! bits of FP dominate, and "the sign bit in BFP is more vulnerable than
//! in FP, since the bitwidth of the data value is now shorter … BFP
//! magnifies the importance of the sign bit via the shared exponent
//! design". This module measures ΔLoss as a function of the flipped bit
//! position, holding everything else fixed.

use crate::instrument::GoldenEye;
use inject::flip_value;
use metrics::{compare_outcomes, RunningStats};
use nn::{Ctx, ForwardHook, LayerInfo, LayerKind, Module};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use tensor::Tensor;

/// ΔLoss statistics for one bit position of a format's value encoding.
#[derive(Debug, Clone)]
pub struct BitPositionResult {
    /// Bit position (0 = MSB of the bit image; for sign-magnitude and
    /// IEEE-style layouts this is the sign bit).
    pub bit: usize,
    /// ΔLoss statistics across trials.
    pub delta_loss: RunningStats,
    /// Mismatch statistics across trials.
    pub mismatch: RunningStats,
}

/// Hook that flips a *fixed* bit of a randomly chosen element at one layer.
struct FixedBitHook {
    format: Arc<dyn formats::NumberFormat>,
    layer: usize,
    bit: usize,
    element_seed: Mutex<inject::Injector>,
    fired: AtomicBool,
}

impl ForwardHook for FixedBitHook {
    fn on_output(&self, layer: &LayerInfo, output: &Tensor) -> Option<Tensor> {
        let mut q = self.format.real_to_format_tensor(output);
        if layer.index == self.layer {
            let f = self
                .element_seed
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .sample_value_fault(q.values.numel(), self.format.bit_width() as usize);
            flip_value(self.format.as_ref(), &mut q, f.index, self.bit);
            self.fired.store(true, Ordering::Relaxed);
        }
        Some(self.format.format_to_real_tensor(&q))
    }

    fn applies_to(&self, kind: LayerKind) -> bool {
        matches!(kind, LayerKind::Conv | LayerKind::Linear)
    }
}

/// Measures ΔLoss per bit position for value flips at one layer.
///
/// For every bit position of `ge`'s format, runs `trials` inferences over
/// `(x, targets)`, each flipping that bit of one random element of layer
/// `layer`'s output, and compares against the error-free run.
///
/// # Panics
///
/// Panics if `trials == 0`.
pub fn bit_position_campaign(
    ge: &GoldenEye,
    model: &dyn Module,
    x: &Tensor,
    targets: &[usize],
    layer: usize,
    trials: usize,
    seed: u64,
) -> Vec<BitPositionResult> {
    assert!(trials > 0, "need at least one trial per bit");
    let golden = ge.run(model, x.clone());
    let width = ge.format().bit_width() as usize;
    let format = ge.format_arc();
    let mut out = Vec::with_capacity(width);
    for bit in 0..width {
        let mut delta_loss = RunningStats::new();
        let mut mismatch = RunningStats::new();
        for t in 0..trials {
            let hook = Arc::new(FixedBitHook {
                format: format.clone(),
                layer,
                bit,
                element_seed: Mutex::new(inject::Injector::new(
                    seed.wrapping_add((bit * trials + t) as u64),
                )),
                fired: AtomicBool::new(false),
            });
            let mut ctx = Ctx::inference();
            ctx.add_hook(hook.clone());
            let xv = ctx.input(x.clone());
            let faulty = model.forward(&xv, &mut ctx).value();
            assert!(hook.fired.load(Ordering::Relaxed), "layer {layer} never executed");
            let o = compare_outcomes(&golden, &faulty, targets);
            delta_loss.push(o.delta_loss);
            mismatch.push(o.mismatch_rate);
        }
        out.push(BitPositionResult { bit, delta_loss, mismatch });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use models::{train, ResNet, ResNetConfig, SyntheticDataset, TrainConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (ResNet, Tensor, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(31);
        let model = ResNet::new(ResNetConfig::tiny(8), &mut rng);
        let data = SyntheticDataset::generate(64, 16, 4, 33);
        train(
            &model,
            &data,
            &TrainConfig { epochs: 6, batch_size: 16, lr: 3e-3, ..Default::default() },
        );
        let (x, y) = data.head_batch(8);
        (model, x, y)
    }

    #[test]
    fn covers_every_bit_position() {
        let (model, x, y) = setup();
        let ge = GoldenEye::parse("fp:e4m3").unwrap();
        let layers = ge.discover_layers(&model, x.clone());
        let res = bit_position_campaign(&ge, &model, &x, &y, layers[0].index, 3, 0);
        assert_eq!(res.len(), 8);
        for (i, r) in res.iter().enumerate() {
            assert_eq!(r.bit, i);
            assert_eq!(r.delta_loss.count(), 3);
        }
    }

    #[test]
    fn fp_exponent_msb_dominates_mantissa_lsb() {
        let (model, x, y) = setup();
        let ge = GoldenEye::parse("fp16").unwrap();
        let layers = ge.discover_layers(&model, x.clone());
        let res = bit_position_campaign(&ge, &model, &x, &y, layers[1].index, 10, 1);
        // fp16 layout: [sign | e4..e0... wait e5 | m10]: bit 1 = exponent
        // MSB, bit 15 = mantissa LSB.
        let exp_msb = res[1].delta_loss.mean();
        let man_lsb = res[15].delta_loss.mean();
        assert!(
            exp_msb >= man_lsb,
            "exponent MSB ({exp_msb}) should dominate mantissa LSB ({man_lsb})"
        );
    }

    #[test]
    fn bfp_sign_bit_more_vulnerable_than_fp_sign_bit() {
        // The paper's §IV-C claim: removing the exponent from BFP data
        // values shortens them, magnifying the sign bit's share of damage
        // relative to FP (where most flips land in low mantissa bits).
        let (model, x, y) = setup();
        let layer_probe = GoldenEye::parse("fp16").unwrap();
        let layers = layer_probe.discover_layers(&model, x.clone());
        let target = layers[1].index;

        let fp = GoldenEye::parse("fp:e5m10").unwrap();
        let fp_res = bit_position_campaign(&fp, &model, &x, &y, target, 12, 2);
        let bfp = GoldenEye::parse("bfp:e5m10:tensor").unwrap();
        let bfp_res = bit_position_campaign(&bfp, &model, &x, &y, target, 12, 2);

        // Sign-bit damage as a fraction of the format's total per-bit damage.
        let share = |res: &[BitPositionResult]| {
            let total: f32 = res.iter().map(|r| r.delta_loss.mean()).sum();
            if total == 0.0 {
                0.0
            } else {
                res[0].delta_loss.mean() / total
            }
        };
        let fp_share = share(&fp_res);
        let bfp_share = share(&bfp_res);
        assert!(
            bfp_share > fp_share,
            "BFP sign share {bfp_share} should exceed FP sign share {fp_share}"
        );
    }
}
