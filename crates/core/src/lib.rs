#![warn(missing_docs)]

//! # goldeneye — a functional simulator for numerical data formats in DNN
//! accelerators, with fault injection
//!
//! A from-scratch Rust reproduction of *GoldenEye: A Platform for
//! Evaluating Emerging Numerical Data Formats in DNN Accelerators*
//! (Mahmoud et al., DSN 2022). The simulator emulates arbitrary number
//! systems ([`formats`]) on top of an FP32 compute fabric ([`tensor`]) by
//! hooking every CONV/LINEAR layer of a model ([`nn`], [`models`]),
//! and supports single-/multi-bit fault injection in both data values and
//! hardware metadata ([`inject`]).
//!
//! The three use cases of the paper's §IV map to:
//!
//! - accuracy evaluation → [`evaluate_accuracy`] / [`accuracy_sweep`]
//! - design-space exploration → [`dse::search`]
//! - resiliency analysis → [`run_campaign`] (ΔLoss and mismatch metrics
//!   from the [`metrics`] crate)
//!
//! # Examples
//!
//! Emulate BFP on a CNN and inject a shared-exponent fault:
//!
//! ```
//! use goldeneye::{GoldenEye, InjectionPlan};
//! use inject::SiteKind;
//! use models::{ResNet, ResNetConfig};
//! use rand::{rngs::StdRng, SeedableRng};
//! use tensor::Tensor;
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! let model = ResNet::new(ResNetConfig::tiny(4), &mut rng);
//! let ge = GoldenEye::parse("bfp:e5m5:b16")?;
//! let x = Tensor::randn([1, 3, 8, 8], &mut rng);
//! let plan = InjectionPlan::single(0, SiteKind::Metadata);
//! let (logits, record) = ge.run_with_injection(&model, x, plan, 42);
//! assert!(record.is_some());
//! assert_eq!(logits.dims(), &[1, 4]);
//! # Ok::<(), formats::ParseFormatError>(())
//! ```

pub mod accum;
pub mod bitpos;
mod campaign;
pub mod dse;
mod evaluate;
mod instrument;
pub mod tracetool;

pub use campaign::{
    run_campaign, run_weight_campaign, trial_seed, CampaignConfig, CampaignResult, LayerResult,
    EARLY_STOP_WAVE,
};
pub use evaluate::{accuracy_sweep, evaluate_accuracy, evaluate_accuracy_jobs, AccuracyPoint};
pub use instrument::{
    set_fused_quantize, CleanRun, FaultyTrainingHook, GoldenEye, InjectionPlan, InjectionRecord,
    LayerFilter, ParamSnapshot,
};
