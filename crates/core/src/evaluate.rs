//! Use case A (§IV-A): the functional simulator for accuracy — measure a
//! model's classification accuracy as a function of the emulated number
//! format.

use crate::instrument::GoldenEye;
use models::SyntheticDataset;
use nn::Module;
use tensor::ops;

/// Accuracy of `model` under `ge`'s emulated format, over the first `k`
/// samples of `data` in batches of `batch_size`.
///
/// Weights are quantised for the duration of the evaluation and restored
/// afterwards, so the measurement covers both weights and neurons (§V-B).
pub fn evaluate_accuracy(
    ge: &GoldenEye,
    model: &dyn Module,
    data: &SyntheticDataset,
    k: usize,
    batch_size: usize,
) -> f32 {
    evaluate_accuracy_jobs(ge, model, data, k, batch_size, 1)
}

/// [`evaluate_accuracy`] with the evaluation batches spread over `jobs`
/// worker threads (`0` = all available cores).
///
/// Batches are independent emulated inferences over fixed data, so the
/// measured accuracy is identical for every `jobs` value.
pub fn evaluate_accuracy_jobs(
    ge: &GoldenEye,
    model: &dyn Module,
    data: &SyntheticDataset,
    k: usize,
    batch_size: usize,
    jobs: usize,
) -> f32 {
    let snap = crate::instrument::ParamSnapshot::capture(model);
    ge.quantize_weights(model);
    let k = k.min(data.len());
    let batches = k.div_ceil(batch_size);
    let _span = trace::span!("evaluate", format = ge.format().name(), jobs = jobs);
    // Live ticks per batch from the workers; one deterministic heartbeat
    // when the (fixed) batch set completes.
    let progress = trace::Progress::new("evaluate", batches as u64);
    let per_batch = crate::campaign::run_trials(jobs, batches, |_worker, b| {
        let start = b * batch_size;
        let end = (start + batch_size).min(k);
        let idx: Vec<usize> = (start..end).collect();
        let (x, y) = data.batch(&idx);
        let logits = ge.run(model, x);
        let correct = ops::argmax_rows(&logits).iter().zip(&y).filter(|(p, t)| p == t).count();
        progress.tick(1);
        correct
    });
    progress.heartbeat(vec![("jobs", trace::Json::from(jobs))]);
    progress.finish();
    snap.restore(model);
    per_batch.iter().sum::<usize>() as f32 / k as f32
}

/// One row of an accuracy-vs-format sweep (Figure 4).
#[derive(Debug, Clone, PartialEq)]
pub struct AccuracyPoint {
    /// The format spec evaluated.
    pub spec: String,
    /// Data bit width of the format.
    pub bit_width: u32,
    /// Measured top-1 accuracy.
    pub accuracy: f32,
}

/// Sweeps a list of format specs, measuring accuracy for each.
///
/// # Panics
///
/// Panics if any spec fails to parse.
pub fn accuracy_sweep(
    model: &dyn Module,
    data: &SyntheticDataset,
    specs: &[&str],
    k: usize,
    batch_size: usize,
) -> Vec<AccuracyPoint> {
    specs
        .iter()
        .map(|s| {
            let ge = GoldenEye::parse(s).unwrap_or_else(|e| panic!("{e}"));
            let accuracy = evaluate_accuracy(&ge, model, data, k, batch_size);
            AccuracyPoint { spec: s.to_string(), bit_width: ge.format().bit_width(), accuracy }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use models::{train, ResNet, ResNetConfig, TrainConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn trained_tiny() -> (ResNet, SyntheticDataset) {
        let mut rng = StdRng::seed_from_u64(1);
        let model = ResNet::new(ResNetConfig::tiny(4), &mut rng);
        let data = SyntheticDataset::generate(64, 16, 4, 5);
        train(
            &model,
            &data,
            &TrainConfig { epochs: 6, batch_size: 16, lr: 3e-3, ..Default::default() },
        );
        (model, data)
    }

    #[test]
    fn high_precision_preserves_accuracy_low_destroys_it() {
        let (model, data) = trained_tiny();
        let native = models::evaluate(&model, &data, 32, 16);
        assert!(native > 0.5, "model failed to train (acc {native})");
        let fp32 = GoldenEye::parse("fp32").unwrap();
        let acc32 = evaluate_accuracy(&fp32, &model, &data, 32, 16);
        assert!((acc32 - native).abs() < 1e-6, "fp32 emulation must match native");
        // 4-bit float (e2m1): drastic precision loss.
        let fp4 = GoldenEye::parse("fp:e2m1").unwrap();
        let acc4 = evaluate_accuracy(&fp4, &model, &data, 32, 16);
        assert!(acc4 <= acc32, "4-bit acc {acc4} vs fp32 {acc32}");
    }

    #[test]
    fn evaluation_restores_weights() {
        let (model, data) = trained_tiny();
        let before = models::forward_logits(&model, data.head_batch(2).0);
        let fp4 = GoldenEye::parse("fp:e2m1").unwrap();
        evaluate_accuracy(&fp4, &model, &data, 8, 8);
        let after = models::forward_logits(&model, data.head_batch(2).0);
        assert!(before.allclose(&after, 0.0), "weights must be restored");
    }

    #[test]
    fn sweep_reports_bit_widths() {
        let (model, data) = trained_tiny();
        let points = accuracy_sweep(&model, &data, &["fp16", "int:8"], 8, 8);
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].bit_width, 16);
        assert_eq!(points[1].bit_width, 8);
    }
}
