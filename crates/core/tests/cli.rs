//! Smoke tests of the `goldeneye` CLI (fast subcommands only — the
//! model-training subcommands are exercised by examples and benches).

use std::process::Command;

fn run(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_goldeneye"))
        .args(args)
        .output()
        .expect("failed to launch CLI");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn help_lists_subcommands() {
    let (ok, stdout, _) = run(&["help"]);
    assert!(ok);
    for sub in ["ranges", "inspect", "quantize", "evaluate", "campaign", "dse"] {
        assert!(stdout.contains(sub), "help missing `{sub}`");
    }
}

#[test]
fn ranges_prints_table1() {
    let (ok, stdout, _) = run(&["ranges"]);
    assert!(ok);
    assert!(stdout.contains("FP32 w/ DN"));
    assert!(stdout.contains("AFP8"));
    assert_eq!(stdout.lines().count(), 14); // header + rule + 12 rows
}

#[test]
fn inspect_reports_format_properties() {
    let (ok, stdout, _) = run(&["inspect", "bfp:e5m5:tensor"]);
    assert!(ok);
    assert!(stdout.contains("bfp_e5m5_btensor"));
    assert!(stdout.contains("injectable"));
    let (ok, stdout, _) = run(&["inspect", "fp16"]);
    assert!(ok);
    assert!(stdout.contains("none"), "fp16 has no metadata: {stdout}");
}

#[test]
fn quantize_shows_values_and_bits() {
    let (ok, stdout, _) = run(&["quantize", "fp:e4m3", "0.1,1.0,300"]);
    assert!(ok);
    assert!(stdout.contains("240"), "300 must saturate to 240: {stdout}");
    assert!(stdout.contains("0b"), "bit images missing");
}

#[test]
fn quantize_int8_shows_scale_metadata() {
    let (ok, stdout, _) = run(&["quantize", "int:8", "1.0,-2.0,0.5"]);
    assert!(ok);
    assert!(stdout.contains("metadata"), "scale register missing: {stdout}");
}

#[test]
fn bad_spec_fails_cleanly() {
    let (ok, _, stderr) = run(&["inspect", "nonsense:42"]);
    assert!(!ok);
    assert!(stderr.contains("error"), "stderr: {stderr}");
}

#[test]
fn unknown_subcommand_fails_cleanly() {
    let (ok, _, stderr) = run(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("unknown subcommand"));
}
