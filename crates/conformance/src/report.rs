//! JSONL conformance reports, built on the deterministic JSON writer in
//! `crates/trace`. One header line, then one line per format checked — the
//! artifact the CI conformance job uploads.

use crate::laws::Violation;
use crate::oracle::{family_name, FormatReport};
use trace::Json;

fn violation_json(v: &Violation) -> Json {
    Json::obj([
        ("law", Json::Str(v.law.name().into())),
        ("context", Json::Str(v.context.clone())),
        ("detail", Json::Str(v.detail.clone())),
    ])
}

fn format_json(r: &FormatReport) -> Json {
    Json::obj([
        ("spec", Json::Str(r.spec.to_string())),
        ("format", Json::Str(r.name.clone())),
        ("family", Json::Str(family_name(&r.spec).into())),
        ("bit_width", Json::Num(r.bit_width as f64)),
        ("exhaustive", Json::Bool(r.exhaustive)),
        ("codes_checked", Json::Num(r.codes_checked as f64)),
        ("checks", Json::Num(r.checks as f64)),
        ("violations", Json::Arr(r.violations.iter().map(violation_json).collect())),
    ])
}

/// Serializes a batch of format reports as JSONL: a header line with the
/// schema id and totals, then one line per format.
pub fn to_jsonl(reports: &[FormatReport]) -> String {
    let checks: u64 = reports.iter().map(|r| r.checks).sum();
    let codes: u64 = reports.iter().map(|r| r.codes_checked).sum();
    let violations: usize = reports.iter().map(|r| r.violations.len()).sum();
    let header = Json::obj([
        ("schema", Json::Str("goldeneye.conformance.report.v1".into())),
        ("formats", Json::Num(reports.len() as f64)),
        ("codes_checked", Json::Num(codes as f64)),
        ("checks", Json::Num(checks as f64)),
        ("violations", Json::Num(violations as f64)),
    ]);
    let mut out = header.to_compact();
    out.push('\n');
    for r in reports {
        out.push_str(&format_json(r).to_compact());
        out.push('\n');
    }
    out
}

/// One-line human summary per format, for terminal output.
pub fn summarize(r: &FormatReport) -> String {
    format!(
        "{:<18} {:>2}-bit  {}  codes {:>6}  checks {:>8}  {}",
        r.name,
        r.bit_width,
        if r.exhaustive { "exhaustive" } else { "grid      " },
        r.codes_checked,
        r.checks,
        if r.violations.is_empty() {
            "ok".to_string()
        } else {
            format!("{} VIOLATIONS", r.violations.len())
        }
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::check_format;
    use formats::FormatSpec;

    #[test]
    fn report_jsonl_parses_and_counts() {
        let spec: FormatSpec = "int:8".parse().unwrap();
        let reports = vec![check_format(&spec)];
        let text = to_jsonl(&reports);
        let mut lines = text.lines();
        let header = trace::parse(lines.next().unwrap()).unwrap();
        assert_eq!(header.get("formats").and_then(Json::as_u64), Some(1));
        assert_eq!(header.get("violations").and_then(Json::as_u64), Some(0));
        let row = trace::parse(lines.next().unwrap()).unwrap();
        assert_eq!(row.get("spec").and_then(Json::as_str), Some("int:8"));
        assert_eq!(row.get("family").and_then(Json::as_str), Some("int"));
        assert!(row.get("checks").and_then(Json::as_u64).unwrap() > 0);
    }

    #[test]
    fn summary_flags_violation_count() {
        let spec: FormatSpec = "fp:e4m3".parse().unwrap();
        let r = check_format(&spec);
        let s = summarize(&r);
        assert!(s.contains("fp_e4m3") && s.contains("ok"), "{s}");
    }
}
