//! The standard format zoo: every parameterisation the paper's Table I and
//! §IV experiments use, as [`FormatSpec`]s. `goldeneye conformance --all`
//! and the CI conformance job run the oracle over exactly this list.

use formats::FormatSpec;

/// Spec strings of the standard zoo, in report order.
///
/// Formats with data width ≤ 16 bits get the exhaustive code-space oracle;
/// the three wider ones (FP32, TF32, FxP(1,15,16)) get grid + sweep
/// coverage only.
pub const ZOO_SPECS: &[&str] = &[
    // Floating point (Table I rows + §IV-B hyperparameter sweeps).
    "fp:e4m3",
    "fp:e4m3:nodn",
    "fp:e5m2",
    "fp:e5m10",
    "fp:e5m10:nodn",
    "fp:e8m7",
    "fp:e8m7:nodn",
    "fp:e6m9",
    "fp:e8m10",
    "fp:e8m23",
    // Fixed point.
    "fxp:1:3:4",
    "fxp:1:7:8",
    "fxp:1:15:16",
    // Integer quantisation.
    "int:8",
    "int:16",
    // Block floating point.
    "bfp:e5m5:b16",
    "bfp:e8m7:b16",
    "bfp:e5m5:tensor",
    // AdaptivFloat.
    "afp:e4m3",
    "afp:e3m4",
    // Posits.
    "posit:8:0",
    "posit:16:1",
    // OCP Microscaling (MX): E8M0 block scale over narrow FP elements.
    "mx:fp4e2m1:b32",
    "mx:fp6e2m3:b32",
    "mx:fp6e3m2:b32",
    "mx:fp8e4m3:b32",
    "mx:fp8e5m2:b32",
    // P3109-style saturating FP8 profiles (no Inf, single NaN, no −0).
    "p3109:e3m4",
    "p3109:e4m3",
    "p3109:e5m2",
    // GoldenFloat static φ-splits.
    "gf:8",
    "gf:16",
    "gf:32",
];

/// Parses the zoo. Panics only if a `ZOO_SPECS` literal is invalid, which
/// the tests pin.
pub fn standard_zoo() -> Vec<FormatSpec> {
    ZOO_SPECS.iter().map(|s| s.parse().expect("zoo spec parses")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zoo_parses_and_covers_all_families() {
        let zoo = standard_zoo();
        assert_eq!(zoo.len(), ZOO_SPECS.len());
        let mut families: Vec<&str> = zoo.iter().map(crate::oracle::family_name).collect();
        families.sort_unstable();
        families.dedup();
        assert_eq!(families, ["afp", "bfp", "fp", "fxp", "gf", "int", "mx", "p3109", "posit"]);
    }

    #[test]
    fn zoo_has_both_exhaustive_and_wide_formats() {
        let zoo = standard_zoo();
        let widths: Vec<u32> = zoo.iter().map(|s| s.build().bit_width()).collect();
        assert!(widths.iter().any(|&w| w <= 16));
        assert!(widths.iter().any(|&w| w > 16));
    }
}
